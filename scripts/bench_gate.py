#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_*.json against the
committed baseline.

Rows are flat JSON objects; a row's identity is every field that is not
a measurement (section, d, n, f, engine, workload, pipeline, ...).
Measurements fall into tolerance classes:

- exact: deterministic counters (rounds, delivered, ring lengths, node
  and cycle counts, campaign success splits, verification booleans) —
  these are seeded and domain-invariant, so any drift is a real
  behaviour change;
- ratio: machine-dependent figures (wall_s, speedups, live heap) —
  allowed to move within a generous factor;
- percent: everything else numeric, +/-25% by default.

Rows whose engine mentions "domains" are skipped outright (the domain
count is machine-dependent).  A baseline row with no counterpart in the
fresh run fails the gate (coverage loss); extra fresh rows only warn.

Collective rows are additionally cross-checked within the fresh run:
every row whose engine ends in " fastpath" must agree on ALL exact
counters (rounds, delivered, wire words, link/port load, checksum, ...)
with its netsim sibling — the row with the same identity minus the
" fastpath" suffix — because the two executors implement one spec.
Fastpath-only rows (the at-scale instances netsim cannot touch) have no
sibling and are windowed against the baseline like everything else.

Both files are also schema-linted: every row must carry the uniform
measurement triple — wall_s plus a minor- and a major-heap allocation
figure (minor_words/major_words or their _per_trial variants) — so no
section can silently drop out of the regression window.  Sections whose
name ends in "-speedup" are derived ratios of other rows and are exempt.

Usage: bench_gate.py BASELINE.json FRESH.json
"""

import json
import sys

EXACT = {
    "rounds", "delivered", "ring_length", "nodes", "psi",
    "successes", "via_construction", "via_disjoint", "masked_fallbacks",
    "verified", "same_output",
    # ffc-campaign: seeded and domain/reuse-invariant by contract
    "trials", "embedded", "bound_applicable", "bound_ok", "min_ring_length",
    "errors",
    # live churn: same contract — event outcomes are pure functions of
    # (seed, target, trials, events)
    "cfaults", "crepairs", "patched", "recomputed", "cunchanged", "cerrors",
    # collective: schedule arithmetic and exact integer reductions —
    # rings/ranks/phases fix the plan, rounds/delivered/wire_words the
    # simulator execution, checksum the bit-exact payload contents
    "rings", "ranks", "phases", "wire_words", "payload_words",
    "max_link_load", "max_port_load", "checksum",
}
# measurement -> allowed factor in either direction
RATIO = {
    "wall_s": 4.0,
    "speedup_vs_reference": 3.0,
    "speedup_vs_fresh": 3.0,
    "live_heap_words": 3.0,
    "top_heap_words": 3.0,
    # allocation counters: deterministic in the code but sensitive to
    # compiler/runtime version, so windowed rather than exact
    "minor_words": 4.0,
    "major_words": 4.0,
    "minor_words_per_trial": 4.0,
    "major_words_per_trial": 4.0,
    "minor_words_per_event": 4.0,
    "major_words_per_event": 4.0,
    # per-event latencies: wall-clock figures, same window as wall_s
    "median_event_s": 4.0,
    "max_event_s": 4.0,
    # peak resident set: dominated by the off-heap arenas, but the OS
    # high-water mark also counts transient heap, so windowed
    "max_rss_kb": 4.0,
    # derived multicore speedups: rows carry "domains" in the engine so
    # they are skipped anyway; listed here to keep the field out of row
    # identity if that ever changes
    "speedup_vs_x1": 8.0,
    # collective throughput: wire_words is exact but the divisor is
    # wall-clock, so same window as wall_s
    "bytes_per_s": 4.0,
}
PERCENT_DEFAULT = 0.25

MEASUREMENTS = EXACT | set(RATIO) | {
    "mean_ring_length", "mean_bstar_size", "mean_ecc", "mean_live_faults",
    # derived from payload_words/rounds, both exact — the +/-25% window
    # only absorbs float formatting drift
    "bytes_per_step",
}


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASUREMENTS))


def skip(row):
    return "domains" in str(row.get("engine", ""))


SCHEMA = [
    ("wall_s", ("wall_s",)),
    ("minor words", ("minor_words", "minor_words_per_trial", "minor_words_per_event")),
    ("major words", ("major_words", "major_words_per_trial", "major_words_per_event")),
    ("max_rss_kb", ("max_rss_kb",)),
]


def schema_lint(path, rows, failures):
    """Every row reports the uniform wall/minor/major triple (derived
    "-speedup" sections excepted).  Runs on all rows, including the
    engine="... domains" ones the comparison skips."""
    for i, row in enumerate(rows):
        section = str(row.get("section", ""))
        if section.endswith("-speedup"):
            continue
        for label, accepted in SCHEMA:
            if not any(k in row for k in accepted):
                failures.append(
                    f"{path}: row {i} (section {section!r}) lacks a {label} field")


def load(path, failures):
    with open(path) as fh:
        rows = json.load(fh)
    schema_lint(path, rows, failures)
    table = {}
    for row in rows:
        if skip(row):
            continue
        key = identity(row)
        if key in table:
            print(f"warning: duplicate row identity in {path}: {key}")
        table[key] = row
    return table


def compare(key, base, fresh, failures):
    for field, want in base.items():
        if field not in MEASUREMENTS:
            continue
        if field not in fresh:
            failures.append(f"{dict(key)}: field {field} missing from fresh run")
            continue
        got = fresh[field]
        if field in EXACT:
            if got != want:
                failures.append(
                    f"{dict(key)}: {field} = {got}, baseline {want} (exact match required)")
        elif field in RATIO:
            factor = RATIO[field]
            if want > 0 and got > 0:
                if got > want * factor or got < want / factor:
                    failures.append(
                        f"{dict(key)}: {field} = {got}, baseline {want} "
                        f"(outside x{factor} window)")
        else:
            tol = PERCENT_DEFAULT
            if abs(got - want) > tol * max(abs(want), 1e-9):
                failures.append(
                    f"{dict(key)}: {field} = {got}, baseline {want} (outside +/-{tol:.0%})")


def cross_check(fresh, failures):
    """Fastpath rows must carry byte-identical exact counters to their
    netsim siblings within the same fresh run.  The sibling is the row
    whose identity matches after stripping the trailing " fastpath" from
    the engine; at-scale fastpath-only rows have none and are skipped."""
    checked = 0
    for key, row in fresh.items():
        engine = str(row.get("engine", ""))
        if not engine.endswith(" fastpath"):
            continue
        sibling_row = dict(row)
        sibling_row["engine"] = engine[: -len(" fastpath")]
        sibling = fresh.get(identity(sibling_row))
        if sibling is None:
            continue
        checked += 1
        for field in sorted(EXACT):
            if field in row and field in sibling and row[field] != sibling[field]:
                failures.append(
                    f"{dict(key)}: fastpath {field} = {row[field]} but netsim "
                    f"sibling has {sibling[field]} (engines must agree exactly)")
    print(f"bench gate: {checked} fastpath rows cross-checked against netsim siblings")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    base_path, fresh_path = sys.argv[1], sys.argv[2]
    failures = []
    base = load(base_path, failures)
    fresh = load(fresh_path, failures)
    cross_check(fresh, failures)
    for key, row in base.items():
        if key not in fresh:
            failures.append(f"baseline row missing from fresh run: {dict(key)}")
        else:
            compare(key, row, fresh[key], failures)
    for key in fresh:
        if key not in base:
            print(f"note: new row not in baseline: {dict(key)}")
    compared = sum(1 for k in base if k in fresh)
    print(f"bench gate: {compared} rows compared against {base_path}")
    if failures:
        print(f"FAILED ({len(failures)} problems):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("ok")


if __name__ == "__main__":
    main()
