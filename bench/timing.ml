(* Bechamel micro-benchmarks: one Test.make per table / figure family.

   These time the kernels that regenerate each experiment; the printed
   number is the OLS-estimated wall time per run. *)

open Bechamel
open Toolkit

module W = Debruijn.Word

let table_2_1_kernel () =
  (* one Table 2.1 cell: B(2,10), f = 10, component + eccentricity *)
  let p = W.params ~d:2 ~n:10 in
  let rng = Util.Rng.create 1 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:10 ~bound:p.W.size in
      ignore (Ffc.Bstar.compute p ~faults))

let table_2_2_kernel () =
  let p = W.params ~d:4 ~n:5 in
  let rng = Util.Rng.create 2 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:10 ~bound:p.W.size in
      ignore (Ffc.Bstar.compute p ~faults))

let ffc_embed_kernel () =
  (* the full FFC pipeline on B(4,5) with 5 faults *)
  let p = W.params ~d:4 ~n:5 in
  let rng = Util.Rng.create 3 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:5 ~bound:p.W.size in
      ignore (Ffc.Embed.embed p ~faults))

let ffc_distributed_kernel () =
  let p = W.params ~d:3 ~n:4 in
  let rng = Util.Rng.create 4 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:2 ~bound:p.W.size in
      match Ffc.Bstar.compute p ~faults with
      | Some b -> ignore (Ffc.Distributed.run b)
      | None -> ())

let table_3_1_kernel () =
  Staged.stage (fun () ->
      for d = 2 to 38 do
        ignore (Dhc.Psi.psi d)
      done)

let table_3_2_kernel () =
  Staged.stage (fun () ->
      for d = 2 to 35 do
        ignore (Dhc.Psi.max_tolerance d)
      done)

let disjoint_hcs_kernel () =
  Staged.stage (fun () -> ignore (Dhc.Compose.disjoint_hamiltonian_cycles ~d:8 ~n:2))

let edge_fault_kernel () =
  let p = W.params ~d:9 ~n:2 in
  let rng = Util.Rng.create 5 in
  Staged.stage (fun () ->
      let u = Util.Rng.int rng p.W.size in
      let v = W.snoc p (W.suffix p u) (Util.Rng.int rng 9) in
      let faults = if u = v then [] else [ (u, v) ] in
      ignore (Dhc.Edge_fault.hc_avoiding ~d:9 ~n:2 ~faults))

let mdb_kernel () = Staged.stage (fun () -> ignore (Dhc.Mdb.build ~d:5 ~n:2))

let butterfly_kernel () =
  let bf = Butterfly.Graph.create ~d:3 ~n:4 in
  Staged.stage (fun () -> ignore (Butterfly.Embed.hamiltonian_cycle bf))

let chapter_4_kernel () =
  Staged.stage (fun () ->
      ignore (Necklace_count.Count.total ~d:2 ~n:12);
      for k = 0 to 12 do
        ignore (Necklace_count.Count.of_weight ~d:2 ~n:12 ~k)
      done)

let hypercube_kernel () =
  let rng = Util.Rng.create 6 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:3 ~bound:1024 in
      ignore (Hypercube.Ring.embed ~n:10 ~faults))

let selftimed_kernel () =
  let p = W.params ~d:4 ~n:4 in
  let rng = Util.Rng.create 7 in
  Staged.stage (fun () ->
      let faults = Util.Rng.sample_distinct rng ~k:2 ~bound:p.W.size in
      match Ffc.Bstar.compute p ~faults with
      | Some b -> ignore (Ffc.Selftimed.run b)
      | None -> ())

let routing_kernel () =
  let p = W.params ~d:4 ~n:6 in
  let rng = Util.Rng.create 8 in
  let faults = Util.Rng.sample_distinct rng ~k:2 ~bound:p.W.size in
  let flags = Debruijn.Necklace.mark_faulty_necklaces p faults in
  Staged.stage (fun () ->
      let x = Util.Rng.int rng p.W.size and y = Util.Rng.int rng p.W.size in
      if not (flags.(x) || flags.(y)) then
        ignore (Ffc.Routing.route p ~faulty_necklace:(fun v -> flags.(v)) x y))

let connectivity_kernel () =
  let p = W.params ~d:3 ~n:2 in
  let g = Debruijn.Graph.b p in
  Staged.stage (fun () -> ignore (Graphlib.Connectivity.node_connectivity g))

let hamsearch_kernel () =
  let p = W.params ~d:3 ~n:3 in
  let g = Debruijn.Graph.b p in
  Staged.stage (fun () -> ignore (Hamsearch.Search.hamiltonian ~budget:500_000 g))

let de_bruijn_sequence_kernel () =
  Staged.stage (fun () -> ignore (Core.de_bruijn_sequence ~d:2 ~n:12))

(* Simulator engine comparison: the same protocol round loop on B(4,7)
   (16384 nodes) under the seed full-scan engine and the worklist
   engine — the speedup recorded in EXPERIMENTS.md "netsim at scale". *)

let netsim_b47 () =
  let p = W.params ~d:4 ~n:7 in
  let g = Debruijn.Graph.b p in
  let sends v = List.map (fun w -> (w, ())) (Graphlib.Digraph.succs g v) in
  let flood =
    Netsim.Simulator.
      {
        initial = (fun v -> v = 0);
        step =
          (fun ~round v informed inbox ->
            if round = 0 then (informed, if v = 0 then sends v else [])
            else if informed || List.is_empty inbox then (informed, [])
            else (true, sends v));
        wants_step = (fun _ -> false);
      }
  in
  (g, flood)

let netsim_token_b47 () =
  let p = W.params ~d:4 ~n:7 in
  let g = Debruijn.Graph.b p in
  let next =
    Array.init p.W.size (fun v ->
        match Graphlib.Digraph.succs g v with w :: _ -> w | [] -> v)
  in
  let token =
    Netsim.Simulator.
      {
        initial = (fun v -> if v = 1 then 256 else -1);
        step =
          (fun ~round:_ v st inbox ->
            let st = List.fold_left (fun _ (_, m) -> m) st inbox in
            if st > 0 then (-1, [ (next.(v), st - 1) ]) else (st, []));
        wants_step = (fun _ -> false);
      }
  in
  (g, token)

let netsim_seed_kernel () =
  let g, flood = netsim_b47 () in
  Staged.stage (fun () ->
      ignore (Netsim.Reference.run ~topology:g ~faulty:(fun _ -> false) flood))

let netsim_worklist_kernel () =
  let g, flood = netsim_b47 () in
  Staged.stage (fun () ->
      ignore (Netsim.Simulator.run ~topology:g ~faulty:(fun _ -> false) flood))

let netsim_domains_kernel () =
  let g, flood = netsim_b47 () in
  Staged.stage (fun () ->
      ignore
        (Netsim.Simulator.run ~domains:4 ~topology:g ~faulty:(fun _ -> false)
           flood))

let netsim_token_seed_kernel () =
  let g, token = netsim_token_b47 () in
  Staged.stage (fun () ->
      ignore (Netsim.Reference.run ~topology:g ~faulty:(fun _ -> false) token))

let netsim_token_worklist_kernel () =
  let g, token = netsim_token_b47 () in
  Staged.stage (fun () ->
      ignore (Netsim.Simulator.run ~topology:g ~faulty:(fun _ -> false) token))

(* Centralized-pipeline comparison: the implicit/flat rewrite against
   the frozen list-based reference on B(2,14) (16384 nodes, one fault)
   — the bechamel-grade version of `scale`'s speedup measurement. *)

let ffc_implicit_b214 () =
  let p = W.params ~d:2 ~n:14 in
  Staged.stage (fun () -> ignore (Ffc.Embed.embed p ~faults:[ 1 ]))

let ffc_implicit_domains_b214 () =
  let p = W.params ~d:2 ~n:14 in
  Staged.stage (fun () -> ignore (Ffc.Embed.embed ~domains:2 p ~faults:[ 1 ]))

let ffc_reference_b214 () =
  let p = W.params ~d:2 ~n:14 in
  Staged.stage (fun () -> ignore (Ffc.Reference.embed p ~faults:[ 1 ]))

let ffc_bstar_implicit_b214 () =
  let p = W.params ~d:2 ~n:14 in
  Staged.stage (fun () -> ignore (Ffc.Bstar.compute p ~faults:[ 1 ]))

let tests () =
  Test.make_grouped ~name:"repro"
    [
      Test.make ~name:"table2.1/bstar-B(2,10)-f10" (table_2_1_kernel ());
      Test.make ~name:"table2.2/bstar-B(4,5)-f10" (table_2_2_kernel ());
      Test.make ~name:"prop2.2/ffc-embed-B(4,5)-f5" (ffc_embed_kernel ());
      Test.make ~name:"prop2.2/ffc-distributed-B(3,4)" (ffc_distributed_kernel ());
      Test.make ~name:"table3.1/psi-2..38" (table_3_1_kernel ());
      Test.make ~name:"table3.2/max-tolerance-2..35" (table_3_2_kernel ());
      Test.make ~name:"fig3.x/disjoint-hcs-B(8,2)" (disjoint_hcs_kernel ());
      Test.make ~name:"prop3.3/edge-fault-B(9,2)" (edge_fault_kernel ());
      Test.make ~name:"fig3.3/mdb-B(5,2)" (mdb_kernel ());
      Test.make ~name:"prop3.5/butterfly-hc-F(3,4)" (butterfly_kernel ());
      Test.make ~name:"ch4/necklace-counts-B(2,12)" (chapter_4_kernel ());
      Test.make ~name:"comparison/hypercube-ring-Q10-f3" (hypercube_kernel ());
      Test.make ~name:"misc/de-bruijn-sequence-B(2,12)" (de_bruijn_sequence_kernel ());
      Test.make ~name:"prop2.2/selftimed-B(4,4)" (selftimed_kernel ());
      Test.make ~name:"prop2.2/routing-B(4,6)" (routing_kernel ());
      Test.make ~name:"ch1/connectivity-B(3,2)" (connectivity_kernel ());
      Test.make ~name:"ch5/hamsearch-B(3,3)" (hamsearch_kernel ());
      Test.make ~name:"ffc/embed-B(2,14)-implicit" (ffc_implicit_b214 ());
      Test.make ~name:"ffc/embed-B(2,14)-implicit-x2" (ffc_implicit_domains_b214 ());
      Test.make ~name:"ffc/embed-B(2,14)-reference" (ffc_reference_b214 ());
      Test.make ~name:"ffc/bstar-B(2,14)-implicit" (ffc_bstar_implicit_b214 ());
      Test.make ~name:"netsim/flood-B(4,7)-seed" (netsim_seed_kernel ());
      Test.make ~name:"netsim/flood-B(4,7)-worklist" (netsim_worklist_kernel ());
      Test.make ~name:"netsim/flood-B(4,7)-worklist-x4" (netsim_domains_kernel ());
      Test.make ~name:"netsim/token256-B(4,7)-seed" (netsim_token_seed_kernel ());
      Test.make ~name:"netsim/token256-B(4,7)-worklist"
        (netsim_token_worklist_kernel ());
    ]

let run () =
  print_endline (String.make 78 '-');
  print_endline "BECHAMEL TIMINGS - one benchmark per table/figure family (ns per run)";
  print_endline (String.make 78 '-');
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (n1, t1) (n2, t2) ->
           match String.compare n1 n2 with 0 -> Float.compare t1 t2 | c -> c)
  in
  Printf.printf "%-44s %16s %14s\n" "benchmark" "time/run" "runs/sec";
  List.iter
    (fun (name, ns) ->
      let human =
        if ns < 1e3 then Printf.sprintf "%.1f ns" ns
        else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.2f s" (ns /. 1e9)
      in
      Printf.printf "%-44s %16s %14.1f\n" name human (1e9 /. ns))
    rows;
  print_newline ()
