(* Reproduction of the thesis's figures and worked examples, as data. *)

module W = Debruijn.Word
module DG = Graphlib.Digraph
module A = Ffc.Adjacency
module Sp = Ffc.Spanning

let hr = String.make 78 '-'

let print_adjacency p g =
  List.iter
    (fun v ->
      Printf.printf "  %s -> %s\n" (W.to_string p v)
        (String.concat " " (List.map (W.to_string p) (DG.succs g v))))
    (W.all p)

let figure_1_1 () =
  print_endline hr;
  print_endline "FIGURE 1.1 - binary De Bruijn digraphs B(2,3) and B(2,4)";
  print_endline hr;
  let p23 = W.params ~d:2 ~n:3 in
  print_endline "B(2,3):";
  print_adjacency p23 (Debruijn.Graph.b p23);
  let p24 = W.params ~d:2 ~n:4 in
  Printf.printf "B(2,4): %d nodes, %d edges (adjacency omitted)\n" p24.W.size
    (DG.n_edges (Debruijn.Graph.b p24))

let figure_1_2 () =
  print_endline hr;
  print_endline "FIGURE 1.2 - undirected UB(2,3): loops deleted, parallels merged";
  print_endline hr;
  let p = W.params ~d:2 ~n:3 in
  let ub = Debruijn.Graph.ub p in
  let seen = Hashtbl.create 16 in
  DG.iter_edges
    (fun u v ->
      if u < v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        Printf.printf "  %s -- %s\n" (W.to_string p u) (W.to_string p v)
      end)
    ub;
  Printf.printf "degree census (degree, count): %s   [PR82: d of 2d-2, d(d-1) of 2d-1, rest 2d]\n"
    (String.concat ", "
       (List.map (fun (d, c) -> Printf.sprintf "(%d,%d)" d c)
          (Debruijn.Graph.degree_census ub)))

let example_2_1 () =
  print_endline hr;
  print_endline "FIGURES 2.3/2.4 + EXAMPLE 2.1 - FFC on B(3,3) minus {N(020), N(112)}";
  print_endline hr;
  let p = W.params ~d:3 ~n:3 in
  let p2 = W.params ~d:3 ~n:2 in
  let faults = [ W.of_string p "020"; W.of_string p "112" ] in
  let b = Option.get (Ffc.Bstar.compute ~root_hint:0 p ~faults) in
  let adj = A.build b in
  Printf.printf "N* has %d necklaces (Figure 2.3 edges, labels w):\n"
    (Array.length adj.A.reps);
  let printed = Hashtbl.create 32 in
  List.iter
    (fun (i, j, w) ->
      let key = (min i j, max i j, w) in
      if not (Hashtbl.mem printed key) then begin
        Hashtbl.add printed key ();
        Printf.printf "  [%s] <-%s-> [%s]\n"
          (W.to_string p adj.A.reps.(min i j))
          (W.to_string p2 w)
          (W.to_string p adj.A.reps.(max i j))
      end)
    (A.edges adj);
  let tree = Sp.build adj in
  print_endline "spanning tree T (Figure 2.4a), child <- parent with label:";
  List.iter
    (fun (par, child, w) ->
      Printf.printf "  [%s] --%s--> [%s]\n"
        (W.to_string p adj.A.reps.(par))
        (W.to_string p2 w)
        (W.to_string p adj.A.reps.(child)))
    (Sp.tree_edges tree);
  let m = Sp.modify tree in
  print_endline "modified tree D (Figure 2.4b), w-cycles:";
  List.iter
    (fun (w, members) ->
      Printf.printf "  %s: %s\n" (W.to_string p2 w)
        (String.concat " -> "
           (List.map (fun i -> "[" ^ W.to_string p adj.A.reps.(i) ^ "]") members)))
    (Sp.groups m);
  let e = Ffc.Embed.of_bstar b in
  Printf.printf "H (%d nodes): %s\n"
    (Array.length e.Ffc.Embed.cycle)
    (String.concat " " (List.map (W.to_string p) (Array.to_list e.Ffc.Embed.cycle)));
  print_endline
    "(thesis: 000 001 011 111 110 101 012 122 222 221 212 120 201 010 102 022 220 202 021 210 100)"

let example_3_1 () =
  print_endline hr;
  print_endline "FIGURE 3.1 / EXAMPLE 3.1 - maximal cycle in B(5,2) from x^2 - x - 3";
  print_endline hr;
  let gf5 = Galois.Gf.create 5 in
  let poly = Galois.Gf_poly.of_coeffs gf5 [ Galois.Gf.of_int gf5 (-3); Galois.Gf.of_int gf5 (-1); 1 ] in
  let lfsr = Dhc.Lfsr.of_poly gf5 poly in
  let c = Dhc.Lfsr.maximal_cycle ~init:[| 0; 1 |] lfsr in
  Printf.printf "C = [%s]\n" (String.concat "," (List.map string_of_int (Array.to_list c)));
  print_endline "(thesis: [0,1,1,4,2,4,0,2,2,3,4,3,0,4,4,1,3,1,0,3,3,2,1,2])";
  (* Figure 3.1 inserts s^n by replacing the edge a s^{n-1} -> s^{n-1} a^ *)
  let t = Dhc.Shift_cycles.make_with_poly ~d:5 ~n:2 poly in
  let h = Dhc.Shift_cycles.hamiltonize t ~s:0 ~k:1 in
  Printf.printf "H_0 (k=1) = [%s]\n"
    (String.concat "," (List.map string_of_int (Array.to_list h)))

let example_3_4 () =
  print_endline hr;
  print_endline "EXAMPLE 3.4 - two disjoint Hamiltonian cycles in B(5,2)";
  print_endline hr;
  let gf5 = Galois.Gf.create 5 in
  let poly = Galois.Gf_poly.of_coeffs gf5 [ Galois.Gf.of_int gf5 (-3); Galois.Gf.of_int gf5 (-1); 1 ] in
  let t = Dhc.Shift_cycles.make_with_poly ~d:5 ~n:2 poly in
  let choice = Dhc.Strategies.choose ~p:5 in
  let f = Dhc.Strategies.replacement_function t choice in
  let shifts = Dhc.Strategies.selected_shifts gf5 choice in
  Printf.printf "selected shifts: {%s}\n"
    (String.concat "," (List.map string_of_int shifts));
  List.iter
    (fun s ->
      let h = Dhc.Shift_cycles.hamiltonize t ~s ~k:(f s) in
      Printf.printf "H_%d = [%s]\n" s
        (String.concat "," (List.map string_of_int (Array.to_list h))))
    shifts;
  print_endline "(thesis: H1 = [1,2,2,0,3,0,1,1,3,3,4,0,4,1,0,0,2,4,2,1,4,4,3,2,3],";
  print_endline "         H4 = [4,0,0,3,1,3,4,1,1,2,3,2,4,3,3,0,2,0,4,4,2,2,1,0,1])"

let figure_3_2 () =
  print_endline hr;
  print_endline "FIGURE 3.2 - conflict structure of {H_x} in B(13,n)";
  print_endline hr;
  let t = Dhc.Shift_cycles.make ~d:13 ~n:2 in
  let choice = Dhc.Strategies.choose ~p:13 in
  let f = Dhc.Strategies.replacement_function t choice in
  (match choice with
  | Dhc.Strategies.S2 { lambda; a; b } ->
      Printf.printf "strategy 2 with lambda=%d, 2 = %d^%d + %d^%d (mod 13)\n" lambda lambda
        a lambda b
  | _ -> print_endline "unexpected strategy");
  (* conflict degree census: each nonzero H_x should conflict with 4
     others {l^A x, l^B x, l^-A x, l^-B x}, H_0 with 2 *)
  let census = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let deg =
        List.length
          (List.filter
             (fun y -> y <> x && Dhc.Shift_cycles.hs_conflicts t ~f x y)
             (List.init 13 Fun.id))
      in
      Hashtbl.replace census deg (1 + Option.value ~default:0 (Hashtbl.find_opt census deg)))
    (List.init 13 Fun.id);
  Hashtbl.iter
    (fun deg count -> Printf.printf "  %d cycles with %d conflicts\n" count deg)
    census;
  let shifts = Dhc.Strategies.selected_shifts t.Dhc.Shift_cycles.lfsr.Dhc.Lfsr.field choice in
  Printf.printf "disjoint set of %d shifts: {%s}  (thesis: 7 = (13+1)/2)\n"
    (List.length shifts)
    (String.concat "," (List.map string_of_int shifts))

let figure_3_3 () =
  print_endline hr;
  print_endline "FIGURE 3.3 / EXAMPLE 3.6 - Hamiltonian decomposition of UMB(2,3)";
  print_endline hr;
  let t = Dhc.Mdb.build ~d:2 ~n:3 in
  let p = t.Dhc.Mdb.p in
  List.iteri
    (fun i c ->
      Printf.printf "  H_%d: %s\n" i
        (String.concat " " (List.map (W.to_string p) (Array.to_list c))))
    t.Dhc.Mdb.cycles;
  Printf.printf "  verified decomposition: %b; rerouted (non-B) edges: %d\n"
    (Dhc.Mdb.verify t) (Dhc.Mdb.new_edge_count t)

let figure_3_4_3_5 () =
  print_endline hr;
  print_endline "FIGURES 3.4/3.5 - butterfly F(2,3) and its De Bruijn partition";
  print_endline hr;
  let bf = Butterfly.Graph.create ~d:2 ~n:3 in
  let p = bf.Butterfly.Graph.p in
  Printf.printf "F(2,3): %d nodes; sample edges from level 0:\n" (Butterfly.Graph.n_nodes bf);
  List.iter
    (fun x ->
      let v = Butterfly.Graph.encode bf ~level:0 ~column:x in
      Printf.printf "  %s -> %s\n"
        (Butterfly.Graph.to_string bf v)
        (String.concat " "
           (List.map (Butterfly.Graph.to_string bf) (Butterfly.Graph.successors bf v))))
    (W.all p);
  print_endline "classes S_x (Figure 3.5):";
  List.iter
    (fun x ->
      Printf.printf "  S_%s = { %s }\n" (W.to_string p x)
        (String.concat ", "
           (List.map (Butterfly.Graph.to_string bf)
              (List.init 3 (fun i -> Butterfly.Graph.s_node bf i x)))))
    (W.all p)

let chapter_4 () =
  print_endline hr;
  print_endline "CHAPTER 4 - necklace counting examples (closed form vs enumeration vs paper)";
  print_endline hr;
  let module NC = Necklace_count.Count in
  let row label formula enum paper =
    Printf.printf "  %-44s %8d %8d %8d\n" label formula enum paper
  in
  Printf.printf "  %-44s %8s %8s %8s\n" "" "formula" "enum" "paper";
  row "necklaces of length 6 in B(2,12)"
    (NC.of_length ~d:2 ~n:12 ~t:6)
    (NC.enumerate_of_length ~d:2 ~n:12 ~t:6)
    9;
  row "total necklaces in B(2,12)" (NC.total ~d:2 ~n:12) (NC.enumerate_total ~d:2 ~n:12) 352;
  row "weight-4 length-6 necklaces in B(2,12)"
    (NC.of_weight_and_length ~d:2 ~n:12 ~k:4 ~t:6)
    (NC.enumerate_of_weight_and_length ~d:2 ~n:12 ~k:4 ~t:6)
    2;
  row "weight-4 necklaces in B(2,12)"
    (NC.of_weight ~d:2 ~n:12 ~k:4)
    (NC.enumerate_of_weight ~d:2 ~n:12 ~k:4)
    43;
  row "weight-4 length-4 necklaces in B(3,4)"
    (NC.of_weight_and_length ~d:3 ~n:4 ~k:4 ~t:4)
    (NC.enumerate_of_weight_and_length ~d:3 ~n:4 ~k:4 ~t:4)
    4;
  row "tuples of type [0;3;2;1] (multinomial)" (NC.tuples_of_type [ 0; 3; 2; 1 ]) 60 60

let run () =
  figure_1_1 ();
  print_newline ();
  figure_1_2 ();
  print_newline ();
  example_2_1 ();
  print_newline ();
  example_3_1 ();
  print_newline ();
  example_3_4 ();
  print_newline ();
  figure_3_2 ();
  print_newline ();
  figure_3_3 ();
  print_newline ();
  figure_3_4_3_5 ();
  print_newline ();
  chapter_4 ();
  print_newline ()
