(* Benchmark harness: regenerates every table and figure of the thesis,
   runs the proposition-level sweeps, the design ablations, and the
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe              run everything
     dune exec bench/main.exe -- tables    only the tables
     (sections: tables figures sweeps ablations open-problems timing scale) *)

let sections =
  [ ("tables", Tables.run); ("figures", Figures.run); ("sweeps", Sweeps.run);
    ("ablations", Ablations.run); ("open-problems", Open_problems.run);
    ("timing", Timing.run); ("scale", Scale.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (available: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
