(* Benchmark harness: regenerates every table and figure of the thesis,
   runs the proposition-level sweeps, the design ablations, and the
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe              run everything
     dune exec bench/main.exe -- tables    only the tables
     (sections: tables figures sweeps ablations open-problems timing scale dhc
      ffc-campaign live multicore collective)

   Flags (consumed by the scale, dhc, ffc-campaign, live, multicore and
   collective sections):
     --json    also write the measurements to BENCH_scale.json /
               BENCH_dhc.json / BENCH_ffc_campaign.json / BENCH_live.json /
               BENCH_multicore.json / BENCH_collective.json
     --smoke   smallest instances only (CI smoke run) *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let sections =
    [ ("tables", Tables.run); ("figures", Figures.run); ("sweeps", Sweeps.run);
      ("ablations", Ablations.run); ("open-problems", Open_problems.run);
      ("timing", Timing.run); ("scale", Scale.run ~json ~smoke);
      ("dhc", Dhc_bench.run ~json ~smoke);
      ("ffc-campaign", Ffc_campaign.run ~json ~smoke);
      ("live", Live_bench.run ~json ~smoke);
      ("multicore", Multicore.run ~json ~smoke);
      ("collective", Collective_bench.run ~json ~smoke) ]
  in
  let requested =
    match List.filter (fun a -> not (String.starts_with ~prefix:"--" a)) args with
    | [] -> List.map fst sections
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (available: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
