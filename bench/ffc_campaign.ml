(* Node-fault campaigns at scale (EXPERIMENTS.md "Node faults at
   scale"): the Table 2.1/2.2 experiment re-run at the thesis's size and
   then far past it, through the arena-pooled FFC pipeline.

   Three studies:

   - the thesis tables: B(2,10) (Table 2.1) and B(4,5) (Table 2.2),
     mean |B*| / ring length / ecc(R) per fault count, plus the
     Proposition 2.2/2.3 bound checks the thesis argues by;
   - workspace vs fresh allocation on B(2,17): same seeded trials
     through both paths — statistics bit-identical, wall and GC
     allocation counters the difference.  [speedup_vs_fresh] and the
     per-trial minor words are the arena's headline numbers;
   - the scale sweep: the same campaign out to B(2,22) (4.2M nodes).

   Everything except wall_s and the GC figures is deterministic
   (seeded splitmix64 substreams, domain- and reuse-invariant), which
   is what lets CI gate on the campaign statistics. *)

module W = Debruijn.Word
module Ca = Ffc.Campaign

let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let record = Jrec.record

let point_fields (pt : Ca.point) =
  [
    ("f", jint pt.Ca.f);
    ("trials", jint pt.Ca.trials);
    ("embedded", jint pt.Ca.embedded);
    ("verified", jint pt.Ca.verified);
    ("errors", jint pt.Ca.errors);
    ("bound_applicable", jint pt.Ca.bound_applicable);
    ("bound_ok", jint pt.Ca.bound_ok);
    ("mean_bstar_size", jnum pt.Ca.mean_bstar_size);
    ("mean_ring_length", jnum pt.Ca.mean_ring_length);
    ("mean_ecc", jnum pt.Ca.mean_ecc);
    ("min_ring_length", jint pt.Ca.min_ring_length);
    ("wall_s", jnum pt.Ca.wall_s);
    ("minor_words_per_trial", jnum pt.Ca.minor_words_per_trial);
    ("major_words_per_trial", jnum pt.Ca.major_words_per_trial);
    ("max_rss_kb", jint (Jrec.max_rss_kb ()));
  ]

let print_point (pt : Ca.point) =
  Printf.printf
    "  f=%3d  embedded %2d/%2d  verified %2d  bound %s  |B*| %10.1f  ring \
     %10.1f  ecc %6.2f  min %9d  %7.4f s/trial  minor %7.0f w/trial\n"
    pt.Ca.f pt.Ca.embedded pt.Ca.trials pt.Ca.verified
    (if pt.Ca.bound_applicable = 0 then "  -  "
     else Printf.sprintf "%2d/%-2d" pt.Ca.bound_ok pt.Ca.bound_applicable)
    pt.Ca.mean_bstar_size pt.Ca.mean_ring_length pt.Ca.mean_ecc
    pt.Ca.min_ring_length
    (pt.Ca.wall_s /. float_of_int pt.Ca.trials)
    pt.Ca.minor_words_per_trial

let bounds_hold (pts : Ca.point list) =
  List.for_all (fun pt -> pt.Ca.bound_ok = pt.Ca.bound_applicable) pts

(* One campaign table; every point becomes a JSON row keyed by
   (d, n, f, engine). *)
let table ~engine ?domains ?reuse ~trials ?fs ~d ~n () =
  let size = (W.params ~d ~n).W.size in
  Printf.printf " campaign: B(%d,%d) (%d nodes), %d trials/point [%s]\n" d n size
    trials engine;
  let pts = Ca.run ?domains ?reuse ~trials ?fs ~d ~n () in
  List.iter
    (fun pt ->
      print_point pt;
      record
        ([
           ("section", jstr "ffc-campaign");
           ("d", jint d);
           ("n", jint n);
           ("engine", jstr engine);
         ]
        @ point_fields pt))
    pts;
  if not (bounds_hold pts) then
    failwith "ffc-campaign: a Proposition 2.2/2.3 bound failed";
  pts

let total_wall pts =
  List.fold_left (fun acc (pt : Ca.point) -> acc +. pt.Ca.wall_s) 0. pts

(* The arena's accounting: identical seeded trials through the fresh
   and the pooled path, sequentially (gated rows), then the pooled path
   striding its trials over 4 domains (machine-dependent, so the engine
   name makes the gate skip it). *)
let ws_vs_fresh ~smoke () =
  (* B(2,12) in smoke, not B(2,10): distinct from the Table-2.1 instance
     so every JSON row identity (d, n, engine, f) stays unique. *)
  let d = 2 and n = if smoke then 12 else 17 in
  let trials = if smoke then 5 else 10 in
  let fs = [ 5 ] in
  Printf.printf " workspace vs fresh allocation on B(%d,%d), f=5:\n" d n;
  let fresh = table ~engine:"fresh" ~reuse:false ~trials ~fs ~d ~n () in
  let ws = table ~engine:"workspace" ~trials ~fs ~d ~n () in
  let speedup = total_wall fresh /. total_wall ws in
  Printf.printf "  sequential speedup (fresh/workspace): %5.2fx\n" speedup;
  record
    [
      ("section", jstr "ffc-campaign-speedup");
      ("d", jint d);
      ("n", jint n);
      ("engine", jstr "workspace");
      ("speedup_vs_fresh", jnum speedup);
      ("top_heap_words", jint (Jrec.top_heap_words ()));
    ];
  let domains = 4 in
  let par =
    table
      ~engine:(Printf.sprintf "workspace x%d domains" domains)
      ~domains ~trials ~fs ~d ~n ()
  in
  let par_speedup = total_wall fresh /. total_wall par in
  Printf.printf "  speedup vs fresh at %d domains: %5.2fx (%d cores available)\n"
    domains par_speedup
    (Domain.recommended_domain_count ());
  record
    [
      ("section", jstr "ffc-campaign-speedup");
      ("d", jint d);
      ("n", jint n);
      ("engine", jstr (Printf.sprintf "workspace x%d domains" domains));
      ("speedup_vs_fresh", jnum par_speedup);
      ("cores", jint (Domain.recommended_domain_count ()));
    ]

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "NODE-FAULT CAMPAIGNS - Tables 2.1/2.2 shape, arena-pooled FFC pipeline";
  print_endline (String.make 78 '-');
  (* The thesis's own instances. *)
  let trials = if smoke then 5 else 50 in
  ignore (table ~engine:"workspace" ~trials ~d:2 ~n:10 ());
  ignore (table ~engine:"workspace" ~trials ~d:4 ~n:5 ());
  ws_vs_fresh ~smoke ();
  if not smoke then begin
    print_endline " scale sweep (one workspace, reused across every trial):";
    ignore (table ~engine:"workspace" ~trials:5 ~d:2 ~n:20 ());
    ignore (table ~engine:"workspace" ~trials:3 ~d:2 ~n:22 ())
  end;
  print_newline ();
  if json then Jrec.write "BENCH_ffc_campaign.json"
