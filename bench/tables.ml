(* Reproduction of the thesis's tables.

   Tables 2.1/2.2: size of the component containing R = 0…01 and the
   eccentricity of R, under f randomly distributed faulty necklaces, in
   B(2,10) and B(4,5).  The thesis does not give its RNG or trial count;
   we use a seeded splitmix64 and 200 trials per row, which reproduces
   the shape (and the deterministic dⁿ − nf column exactly).

   Tables 3.1/3.2: the ψ(d) and MAX(ψ(d)−1, φ(d)) functions — exact. *)

module W = Debruijn.Word
module B = Ffc.Bstar
module Tr = Graphlib.Traversal

let hr = String.make 78 '-'

(* eccentricity of [node] within its (strongly connected) component *)
let ecc_of (b : B.t) node =
  Graphlib.Itopo.eccentricity ~n:b.B.p.W.size
    ~succs:(fun x f -> W.iter_succs b.B.p x f)
    ~keep:(fun v -> b.B.in_bstar.{v} <> 0)
    node

(* R = 0…01, replaced by a live neighbor when its necklace is faulty. *)
let observation_point p faults =
  let faulty = Debruijn.Necklace.mark_faulty_necklaces p faults in
  let r = 1 (* 0…01 *) in
  if not faulty.(r) then Some r
  else
    List.find_opt
      (fun v -> not faulty.(v))
      (W.successors p r @ W.predecessors p r)

let simulate_row p rng ~f ~trials =
  let sizes = ref [] and eccs = ref [] in
  let completed = ref 0 in
  while !completed < trials do
    let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
    match Option.bind (observation_point p faults) (fun r -> B.component_of p ~faults r) with
    | None -> ()  (* the observation point itself died; resample *)
    | Some b ->
        let r =
          match observation_point p faults with Some r -> r | None -> assert false
        in
        sizes := b.B.size :: !sizes;
        eccs := ecc_of b r :: !eccs;
        incr completed
  done;
  let stats xs =
    let n = List.length xs in
    let sum = List.fold_left ( + ) 0 xs in
    ( float_of_int sum /. float_of_int n,
      List.fold_left max min_int xs,
      List.fold_left min max_int xs )
  in
  (stats !sizes, stats !eccs)

let node_fault_table ~d ~n ~seed ~trials ~paper_avg_size =
  let p = W.params ~d ~n in
  let rng = Util.Rng.create seed in
  Printf.printf "%6s %10s %9s %9s %9s | %8s %8s %8s | %10s\n" "f" "Avg.Size"
    "Max.Size" "Min.Size" "d^n-nf" "Avg.Ecc" "Max.Ecc" "Min.Ecc" "paperAvg";
  List.iter
    (fun f ->
      let (avg_s, max_s, min_s), (avg_e, max_e, min_e) = simulate_row p rng ~f ~trials in
      let paper =
        match List.assoc_opt f paper_avg_size with
        | Some v -> Printf.sprintf "%10.2f" v
        | None -> Printf.sprintf "%10s" "-"
      in
      Printf.printf "%6d %10.2f %9d %9d %9d | %8.2f %8d %8d | %s\n" f avg_s max_s min_s
        (p.W.size - (n * f))
        avg_e max_e min_e paper)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 20; 30; 40; 50 ]

let table_2_1 () =
  print_endline hr;
  print_endline
    "TABLE 2.1 - component of R = 0000000001 and ecc(R) in B(2,10), f random faulty";
  print_endline "necklaces (200 seeded trials per row; 'paperAvg' = thesis Avg.Size column)";
  print_endline hr;
  node_fault_table ~d:2 ~n:10 ~seed:20101 ~trials:200
    ~paper_avg_size:
      [ (0, 1024.00); (1, 1014.13); (2, 1004.48); (3, 994.66); (4, 985.03);
        (5, 975.79); (6, 966.35); (7, 956.61); (8, 948.41); (9, 938.02);
        (10, 928.97); (20, 843.14); (30, 762.55); (40, 686.16); (50, 622.75) ]

let table_2_2 () =
  print_endline hr;
  print_endline
    "TABLE 2.2 - component of R = 00001 and ecc(R) in B(4,5), f random faulty";
  print_endline "necklaces (200 seeded trials per row; 'paperAvg' = thesis Avg.Size column)";
  print_endline hr;
  node_fault_table ~d:4 ~n:5 ~seed:4501 ~trials:200
    ~paper_avg_size:
      [ (0, 1024.00); (1, 1019.00); (2, 1014.07); (3, 1009.24); (4, 1004.35);
        (5, 999.33); (6, 994.47); (7, 989.66); (8, 984.80); (9, 979.79);
        (10, 975.07); (20, 928.14); (30, 882.88); (40, 840.39); (50, 798.07) ]

let paper_psi =
  [ (2, 1); (3, 1); (4, 3); (5, 2); (6, 1); (7, 3); (8, 7); (9, 4); (10, 2);
    (11, 5); (12, 3); (13, 7); (14, 3); (15, 2); (16, 15); (17, 9); (18, 4);
    (19, 9); (20, 6); (21, 3); (22, 5); (23, 11); (24, 7); (25, 12); (26, 7);
    (27, 13); (28, 9); (29, 15); (30, 2); (31, 15); (32, 31); (33, 5);
    (34, 9); (35, 6); (36, 12); (37, 19); (38, 9) ]

let table_3_1 () =
  print_endline hr;
  print_endline "TABLE 3.1 - psi(d), the number of disjoint Hamiltonian cycles, 2 <= d <= 38";
  print_endline "('constructed' = cycles actually built and verified disjoint, for d^2 <= 200)";
  print_endline hr;
  Printf.printf "%4s %8s %8s %6s %14s\n" "d" "psi(d)" "paper" "match" "constructed";
  List.iter
    (fun (d, paper) ->
      let psi = Dhc.Psi.psi d in
      let constructed =
        if d * d <= 200 then begin
          let p = W.params ~d ~n:2 in
          let hcs = Dhc.Compose.disjoint_hamiltonian_cycles ~d ~n:2 in
          let cycles = List.map (Debruijn.Sequence.cycle_of_sequence p) hcs in
          let ok =
            List.for_all (fun c -> Graphlib.Cycle.is_hamiltonian (Debruijn.Graph.b p) c) cycles
            && Graphlib.Cycle.pairwise_edge_disjoint cycles
          in
          Printf.sprintf "%d %s" (List.length hcs) (if ok then "(verified)" else "(INVALID)")
        end
        else "-"
      in
      Printf.printf "%4d %8d %8d %6s %14s\n" d psi paper
        (if psi = paper then "yes" else "NO")
        constructed)
    paper_psi

let table_3_2 () =
  print_endline hr;
  print_endline "TABLE 3.2 - MAX(psi(d)-1, phi(d)), the edge-fault tolerance, 2 <= d <= 35";
  print_endline hr;
  Printf.printf "%4s %8s %8s %10s %10s\n" "d" "psi-1" "phi(d)" "MAX" "winner";
  for d = 2 to 35 do
    let a = Dhc.Psi.psi d - 1 and b = Dhc.Psi.phi_bound d in
    Printf.printf "%4d %8d %8d %10d %10s\n" d a b (max a b)
      (if a > b then "psi (!)" else if b > a then "phi" else "tie")
  done;
  print_endline
    "(the thesis notes d = 28 as the sole psi-dominated value in this range)"

let run () =
  table_2_1 ();
  print_newline ();
  table_2_2 ();
  print_newline ();
  table_3_1 ();
  print_newline ();
  table_3_2 ();
  print_newline ()
