(* Shared --json recorder for the bench sections.

   Each section accumulates flat JSON objects with [record] and dumps
   them with [write] (which also clears the buffer, so sections running
   in one process never leak rows into each other's files).  Values are
   pre-encoded strings, so no JSON library is needed.

   [time_gc] is the uniform measurement wrapper: wall clock plus the
   minor/major-heap words allocated by the thunk (from [Gc.counters],
   so promotion is not double-counted), letting every section report
   allocation next to speed and the CI gate window both. *)

let rows : string list ref = ref []
[@@lint.domain_safe
  "sections record from the coordinating domain only, after worker joins"]
let jstr s = Printf.sprintf "%S" s
let jint (i : int) = string_of_int i
let jnum f = Printf.sprintf "%.6f" f
let jbool = string_of_bool

let record fields =
  rows :=
    ("  {"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
    ^ "}")
    :: !rows

let write path =
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length !rows);
  rows := []

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

type gc_timed = {
  wall_s : float;
  minor_words : float;
  major_words : float;
  max_rss_kb : int;
}

(* Peak resident set size (VmHWM) in kB, from /proc/self/status; 0 on
   platforms without procfs.  Monotone over the process lifetime, so
   the recorded value is the peak up to the end of the measured thunk —
   off-heap Bigarray arenas show up here but not in the GC words. *)
let max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line -> (
            match String.split_on_char ':' line with
            | "VmHWM" :: rest ->
                let toks = String.split_on_char ' ' (String.trim (String.concat ":" rest)) in
                List.fold_left
                  (fun acc tok ->
                    match acc with 0 -> Option.value ~default:0 (int_of_string_opt tok) | n -> n)
                  0 toks
            | _ -> scan ())
      in
      let kb = scan () in
      close_in ic;
      kb

let time_gc f =
  let mn0, _, mj0 = Gc.counters () in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let mn1, _, mj1 = Gc.counters () in
  ( x,
    {
      wall_s;
      minor_words = mn1 -. mn0;
      major_words = mj1 -. mj0;
      max_rss_kb = max_rss_kb ();
    } )

let gc_fields g =
  [
    ("wall_s", jnum g.wall_s);
    ("minor_words", jnum g.minor_words);
    ("major_words", jnum g.major_words);
    ("max_rss_kb", jint g.max_rss_kb);
  ]

let top_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words
