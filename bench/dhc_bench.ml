(* Chapter-3 engine at scale (EXPERIMENTS.md "Edge faults at scale").

   Three studies on the streaming LFSR engine:

   - streaming vs the frozen seed engine (Dhc.Reference): wall time to
     produce a fault-avoiding Hamiltonian ring.  The seed materializes
     dⁿ-length arrays and scans the fault list per probe; the stream is
     a handful of closures and O(1) bitset probes.
   - ring walks at million-node scale: the B(2,22) acceptance walk
     (4.2M-node ring checked Hamiltonian and De Bruijn edge-by-edge in
     O(1) memory), a faulted B(4,11) run, and pairwise edge-disjointness
     of the ψ(4) streams on B(4,10) by walk + successor probe.
   - randomized edge-fault campaigns (Dhc.Campaign) sweeping f past
     MAX(ψ−1, φ): success rates per route and mean ring lengths.

   All statistics except wall_s are deterministic (seeded PRNG,
   domain-invariant), which is what lets CI gate on them. *)

module W = Debruijn.Word
module EF = Dhc.Edge_fault
module R = Dhc.Reference
module Str = Dhc.Stream
module Ca = Dhc.Campaign

let time = Jrec.time
let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let jbool = Jrec.jbool
let record = Jrec.record

let random_faults ~d ~n ~f ~seed =
  let p = W.params ~d ~n in
  let rng = Util.Rng.create seed in
  List.map (W.edge_of_code p)
    (Util.Rng.sample_distinct rng ~k:f ~bound:(p.W.size * p.W.d))

(* Seed engine vs streaming engine on the same fault sets; outputs are
   compared digit-for-digit while we're at it. *)
let streaming_vs_reference ~smoke () =
  print_endline " streaming engine vs frozen seed (best_hc_avoiding):";
  let cases = if smoke then [ (4, 8, 2) ] else [ (4, 8, 2); (6, 6, 1); (3, 10, 1) ] in
  List.iter
    (fun (d, n, f) ->
      let faults = random_faults ~d ~n ~f ~seed:((100 * d) + n) in
      let ref_hc, gt_ref =
        Jrec.time_gc (fun () -> Option.get (R.best_hc_avoiding ~d ~n ~faults))
      in
      let st, gt_stream =
        Jrec.time_gc (fun () -> Option.get (EF.best_hc_avoiding_stream ~d ~n ~faults))
      in
      let t_ref = gt_ref.Jrec.wall_s and t_stream = gt_stream.Jrec.wall_s in
      let same = Str.to_sequence st = ref_hc in
      Printf.printf
        "  B(%d,%2d) f=%d  seed %8.3f s  stream %8.6f s  speedup %9.1fx  same output %b\n"
        d n f t_ref t_stream (t_ref /. t_stream) same;
      record
        ([
           ("section", jstr "dhc-engine");
           ("d", jint d);
           ("n", jint n);
           ("f", jint f);
           ("engine", jstr "reference");
         ]
        @ Jrec.gc_fields gt_ref
        @ [ ("speedup_vs_reference", jnum 1.0) ]);
      record
        ([
           ("section", jstr "dhc-engine");
           ("d", jint d);
           ("n", jint n);
           ("f", jint f);
           ("engine", jstr "stream");
         ]
        @ Jrec.gc_fields gt_stream
        @ [
            ("speedup_vs_reference", jnum (t_ref /. t_stream));
            ("same_output", jbool same);
          ]);
      if not same then failwith "dhc: streaming engine diverged from Reference")
    cases

(* The acceptance run: a fault-free ring of B(2,22) built and walked
   entirely through successor arithmetic.  The live-heap column (major
   heap after compaction, stream still referenced) is the bounded-memory
   claim made measurable — the materialized ring alone would be 4.2M
   words. *)
let acceptance_walk () =
  Gc.compact ();
  let d = 2 and n = 22 in
  let p = W.params ~d ~n in
  let (st, t_build, ham, t_ham, db, t_db), gt =
    Jrec.time_gc (fun () ->
        let st, t_build =
          time (fun () -> Option.get (EF.best_hc_avoiding_stream ~d ~n ~faults:[]))
        in
        let ham, t_ham = time (fun () -> Str.is_hamiltonian st) in
        let db, t_db = time (fun () -> Str.is_de_bruijn_walk st) in
        (st, t_build, ham, t_ham, db, t_db))
  in
  Gc.compact ();
  let heap = (Gc.stat ()).Gc.live_words in
  Printf.printf
    " acceptance: B(2,22) %d-node ring  build %8.6f s  hamiltonian walk %6.3f s  \
     edge walk %6.3f s  ok %b  live heap %.2f Mwords\n"
    p.W.size t_build t_ham t_db (ham && db)
    (float_of_int heap /. 1e6);
  record
    ([
       ("section", jstr "dhc-acceptance");
       ("d", jint d);
       ("n", jint n);
       ("nodes", jint p.W.size);
       ("ring_length", jint st.Str.length);
     ]
    @ Jrec.gc_fields gt
    @ [ ("verified", jbool (ham && db)); ("live_heap_words", jint heap) ]);
  if not (ham && db) then failwith "dhc: B(2,22) streaming ring failed verification"

(* Faults at the same scale: φ(4) = 2 random faults on the 4.2M-node
   B(4,11), ring checked fault-free against the bitset. *)
let faulted_walk () =
  let d = 4 and n = 11 in
  let p = W.params ~d ~n in
  let faults = random_faults ~d ~n ~f:2 ~seed:411 in
  let (st, t_build, ok, t_walk), gt =
    Jrec.time_gc (fun () ->
        let st, t_build =
          time (fun () -> Option.get (EF.best_hc_avoiding_stream ~d ~n ~faults))
        in
        let fs = EF.Faults.make p faults in
        let ok, t_walk =
          time (fun () -> Str.is_hamiltonian st && Str.avoids st (EF.Faults.mem fs))
        in
        (st, t_build, ok, t_walk))
  in
  Printf.printf
    " faulted: B(4,11) %d nodes, f=2  build %8.6f s  walks %6.3f s  fault-free \
     hamiltonian %b\n"
    p.W.size t_build t_walk ok;
  record
    ([
       ("section", jstr "dhc-faulted");
       ("d", jint d);
       ("n", jint n);
       ("f", jint 2);
       ("ring_length", jint st.Str.length);
     ]
    @ Jrec.gc_fields gt
    @ [ ("verified", jbool ok) ]);
  if not ok then failwith "dhc: faulted B(4,11) ring failed verification"

(* ψ(4) = 3 disjoint Hamiltonian streams of the million-node B(4,10):
   pairwise disjointness by walking one stream and probing the other's
   successor — the O(1)-memory form of Lemma 3.3/Proposition 3.2. *)
let disjoint_walks () =
  let d = 4 and n = 10 in
  let streams = Dhc.Compose.disjoint_hamiltonian_streams ~d ~n in
  let ok, gt =
    Jrec.time_gc (fun () ->
        let rec pairs = function
          | [] -> true
          | a :: rest -> List.for_all (Str.edge_disjoint a) rest && pairs rest
        in
        pairs streams)
  in
  Printf.printf " disjoint: B(4,10) psi=%d streams pairwise edge-disjoint %b  %6.3f s\n"
    (List.length streams) ok gt.Jrec.wall_s;
  record
    ([
       ("section", jstr "dhc-disjoint");
       ("d", jint d);
       ("n", jint n);
       ("psi", jint (List.length streams));
     ]
    @ Jrec.gc_fields gt
    @ [ ("verified", jbool ok) ]);
  if not ok then failwith "dhc: disjoint streams share an edge"

let campaign_specs ~smoke =
  (* d = 6: the weakest composite (φ = 1, ψ = 1); d = 12: mixed; d = 28:
     the sole d ≤ 35 where the ψ route beats the construction. *)
  if smoke then [ (6, 2, 10) ] else [ (6, 3, 40); (12, 2, 40); (28, 2, 40) ]

let campaigns ~smoke () =
  let domains = min 4 (Domain.recommended_domain_count ()) in
  List.iter
    (fun (d, n, trials) ->
      let size = (W.params ~d ~n).W.size in
      Printf.printf " campaign: B(%d,%d) (%d nodes), %d trials/point, MAX=%d\n" d n size
        trials (Dhc.Psi.max_tolerance d);
      let points, gt = Jrec.time_gc (fun () -> Ca.run ~domains ~trials ~d ~n ()) in
      (* Whole-campaign allocation summary, next to the per-point
         steady-state counters the points now carry themselves.
         Gc.counters is per-domain, so this figure depends on the domain
         count — the engine name keeps the gate off this row. *)
      record
        ([
           ("section", jstr "dhc-campaign-gc");
           ("d", jint d);
           ("n", jint n);
           ("engine", jstr (Printf.sprintf "x%d domains" domains));
         ]
        @ Jrec.gc_fields gt);
      List.iter
        (fun (pt : Ca.point) ->
          Printf.printf
            "   f=%2d  success %2d/%2d (construction %2d, disjoint %2d, masked %2d)  \
             mean ring %8.1f\n"
            pt.Ca.f pt.Ca.successes pt.Ca.trials pt.Ca.via_construction
            pt.Ca.via_disjoint pt.Ca.masked_fallbacks pt.Ca.mean_ring_length;
          record
            [
              ("section", jstr "dhc-campaign");
              ("d", jint d);
              ("n", jint n);
              ("f", jint pt.Ca.f);
              ("trials", jint pt.Ca.trials);
              ("successes", jint pt.Ca.successes);
              ("via_construction", jint pt.Ca.via_construction);
              ("via_disjoint", jint pt.Ca.via_disjoint);
              ("masked_fallbacks", jint pt.Ca.masked_fallbacks);
              ("mean_ring_length", jnum pt.Ca.mean_ring_length);
              ("wall_s", jnum pt.Ca.wall_s);
              ("minor_words_per_trial", jnum pt.Ca.minor_words_per_trial);
              ("major_words_per_trial", jnum pt.Ca.major_words_per_trial);
              ("max_rss_kb", jint (Jrec.max_rss_kb ()));
            ])
        points)
    (campaign_specs ~smoke)

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "CHAPTER-3 STREAMING ENGINE - successor-function rings vs materialized seed";
  print_endline (String.make 78 '-');
  streaming_vs_reference ~smoke ();
  acceptance_walk ();
  if not smoke then begin
    faulted_walk ();
    disjoint_walks ()
  end;
  campaigns ~smoke ();
  print_newline ();
  if json then Jrec.write "BENCH_dhc.json"
