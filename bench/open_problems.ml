(* Empirical probes of the thesis's Chapter 5 open questions, on small
   instances, using the bounded backtracking searcher.  An answer is
   conclusive only when the search swept its space without hitting the
   budget; exhausted runs are reported as "unknown". *)

module W = Debruijn.Word
module H = Hamsearch.Search

let hr = String.make 78 '-'

let show_outcome = function
  | H.Found _ -> "YES"
  | H.Not_found -> "NO (exhaustive)"
  | H.Exhausted -> "unknown (budget)"

(* Q1: does B(d,n) admit a fault-free HC under d−2 edge failures for
   composite d (beyond the prime-power guarantee)? *)
let question_1 () =
  print_endline hr;
  print_endline
    "QUESTION 1 - fault-free HC under d-2 edge failures for composite d?";
  print_endline "(the constructive guarantee is only phi(d); targeted faults at node 0^n)";
  print_endline hr;
  Printf.printf "%10s %6s %8s | %18s %14s\n" "graph" "phi(d)" "faults" "search verdict"
    "construction";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let faults = Dhc.Edge_fault.worst_case_edge_faults ~d ~n f in
      let verdict =
        H.hamiltonian ~budget:5_000_000 ~avoid_edges:(fun e -> List.mem e faults) g
      in
      (match verdict with
      | H.Found c ->
          assert (
            Graphlib.Cycle.is_hamiltonian g c
            && Graphlib.Cycle.avoids_edges c (fun e -> List.mem e faults))
      | _ -> ());
      let constructive =
        match Dhc.Edge_fault.best_hc_avoiding ~d ~n ~faults with
        | Some _ -> "succeeds"
        | None -> "fails"
      in
      Printf.printf "%10s %6d %8d | %18s %14s\n"
        (Printf.sprintf "B(%d,%d)" d n)
        (Dhc.Psi.phi_bound d) f (show_outcome verdict) constructive)
    [ (6, 2, 1); (6, 2, 2); (6, 2, 3); (6, 2, 4); (10, 2, 8); (6, 3, 4) ];
  print_endline
    "(search says YES at the full d-2 even where the phi-construction gives up ->";
  print_endline " evidence for Question 1 on these instances)"

(* Q2: does B(d,n) admit d−1 disjoint HCs (beyond powers of 2)? *)
let question_2 () =
  print_endline hr;
  print_endline "QUESTION 2 - does B(d,n) admit d-1 disjoint Hamiltonian cycles?";
  print_endline hr;
  Printf.printf "%10s %8s %8s | %s\n" "graph" "psi(d)" "d-1" "verdict";
  List.iter
    (fun (d, n, budget) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let found, exhausted = H.disjoint_hamiltonian_cycles ~budget ~k:(d - 1) g in
      let verdict =
        match found with
        | Some cs ->
            assert (Graphlib.Cycle.pairwise_edge_disjoint cs);
            assert (List.for_all (fun c -> Graphlib.Cycle.is_hamiltonian g c) cs);
            "YES (constructed & verified)"
        | None when not exhausted -> "NO (exhaustive)"
        | None -> "unknown (budget)"
      in
      Printf.printf "%10s %8d %8d | %s\n"
        (Printf.sprintf "B(%d,%d)" d n)
        (Dhc.Psi.psi d) (d - 1) verdict)
    [ (3, 2, 1_000_000); (3, 3, 5_000_000); (5, 2, 20_000_000); (6, 2, 20_000_000) ]

(* Q3/Q4: the undirected UB(d,n) under node / edge failures. *)
let questions_3_4 () =
  print_endline hr;
  print_endline "QUESTIONS 3/4 - undirected UB(d,n): cycles beating the directed bounds?";
  print_endline hr;
  (* Q3: fault-free cycle of length >= d^n − nf with f up to 2(d−1)−1
     node faults (twice the directed tolerance). *)
  let rng = Util.Rng.create 54 in
  Printf.printf "Q3: random node faults, f up to 2(d-1)-1, cycle of >= d^n - nf in UB?\n";
  Printf.printf "%10s %4s %8s | %10s\n" "graph" "f" "trials" "successes";
  List.iter
    (fun (d, n, trials) ->
      let p = W.params ~d ~n in
      let ub = Debruijn.Graph.ub p in
      let f = (2 * (d - 1)) - 1 in
      let ok = ref 0 in
      for _ = 1 to trials do
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        let target = p.W.size - (n * f) in
        match
          H.cycle ~budget:3_000_000
            ~avoid_nodes:(fun v -> List.mem v faults)
            ~length:target ub
        with
        | H.Found c ->
            assert (Graphlib.Cycle.is_cycle ub c);
            incr ok
        | _ -> ()
      done;
      Printf.printf "%10s %4d %8d | %10d\n" (Printf.sprintf "UB(%d,%d)" d n) f trials !ok)
    [ (3, 3, 10); (4, 2, 10) ];
  (* Q4: Hamiltonian cycle under 2(d−2) edge faults in UB. *)
  Printf.printf "\nQ4: random UB edge faults, f = 2(d-2), Hamiltonian cycle?\n";
  Printf.printf "%10s %4s %8s | %5s %5s %8s\n" "graph" "f" "trials" "yes" "no" "unknown";
  List.iter
    (fun (d, n, trials, budget) ->
      let p = W.params ~d ~n in
      let ub = Debruijn.Graph.ub p in
      let f = 2 * (d - 2) in
      if f >= 1 then begin
        let yes = ref 0 and no = ref 0 and unknown = ref 0 in
        for _ = 1 to trials do
          (* sample undirected faults as unordered pairs *)
          let edges = Graphlib.Digraph.edges ub in
          let arr = Array.of_list (List.filter (fun (u, v) -> u < v) edges) in
          Util.Rng.shuffle rng arr;
          let faults = Array.to_list (Array.sub arr 0 f) in
          let bad (u, v) = List.mem (u, v) faults || List.mem (v, u) faults in
          match H.hamiltonian ~budget ~avoid_edges:bad ub with
          | H.Found c ->
              assert (Graphlib.Cycle.is_hamiltonian ub c);
              incr yes
          | H.Not_found -> incr no
          | H.Exhausted -> incr unknown
        done;
        Printf.printf "%10s %4d %8d | %5d %5d %8d\n"
          (Printf.sprintf "UB(%d,%d)" d n)
          f trials !yes !no !unknown
      end)
    [ (3, 3, 10, 60_000_000); (4, 2, 10, 3_000_000); (5, 2, 10, 3_000_000) ]

(* Chapter 5 also asks about other bounded-degree graphs: Kautz. *)
let kautz_probe () =
  print_endline hr;
  print_endline "CHAPTER 5 (last paragraph) - disjoint HCs in Kautz graphs K(d,n)";
  print_endline hr;
  Printf.printf "%10s %8s | %-28s\n" "graph" "target k" "verdict";
  List.iter
    (fun (d, n, k, budget) ->
      let kz = Kautz.create ~d ~n in
      let found, exhausted = H.disjoint_hamiltonian_cycles ~budget ~k kz.Kautz.graph in
      let verdict =
        match found with
        | Some cs ->
            assert (Graphlib.Cycle.pairwise_edge_disjoint cs);
            Printf.sprintf "YES: %d disjoint HCs" (List.length cs)
        | None when not exhausted -> "NO (exhaustive)"
        | None -> "unknown (budget)"
      in
      Printf.printf "%10s %8d | %-28s\n" (Printf.sprintf "K(%d,%d)" d n) k verdict)
    [ (2, 2, 2, 2_000_000); (2, 2, 1, 2_000_000); (2, 3, 2, 5_000_000);
      (2, 3, 1, 2_000_000); (3, 2, 3, 5_000_000); (2, 4, 2, 20_000_000) ];
  print_endline
    "(K(3,2) decomposes into d = 3 disjoint HCs - no loop obstruction in Kautz -";
  print_endline " while binary Kautz graphs top out at a single HC on these sizes)"

(* Pancyclicity ([Lem71], quoted in section 2.5's best case). *)
let pancyclicity () =
  print_endline hr;
  print_endline "PANCYCLICITY (section 2.5 best case) - cycles of every length 1..d^n";
  print_endline hr;
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let missing =
        List.filter
          (fun t ->
            match H.cycle ~budget:2_000_000 ~length:t g with
            | H.Found c ->
                assert (Array.length c = t && Graphlib.Cycle.is_cycle g c);
                false
            | _ -> true)
          (List.init p.W.size (fun i -> i + 1))
      in
      Printf.printf "  B(%d,%d): cycle of every length t in 1..%d: %s\n" d n p.W.size
        (if List.is_empty missing then "yes"
         else
           "MISSING "
           ^ String.concat "," (List.map string_of_int missing)))
    [ (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (4, 2) ]

(* Machine certificate for the worst-case optimality claim of §2.5:
   under the adversarial faults {α^{n−1}(d−1)}, no fault-free cycle
   longer than dⁿ − nf exists.  The FFC algorithm attains the bound;
   exhaustive search certifies that no length above it is feasible. *)
let worst_case_certificates () =
  print_endline hr;
  print_endline
    "WORST-CASE OPTIMALITY (section 2.5) - exhaustive certificates on small graphs";
  print_endline hr;
  Printf.printf "%10s %4s %8s %8s | %s\n" "graph" "f" "bound" "FFC len" "lengths above the bound";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let faults = Ffc.Embed.worst_case_faults p f in
      let bound = Ffc.Embed.length_lower_bound p f in
      let ffc = Option.get (Ffc.Embed.embed p ~faults) in
      (* candidate cycles may use ANY non-faulty node (d^n - f of them),
         not just the nodes off faulty necklaces *)
      let live = p.W.size - f in
      let verdicts =
        List.map
          (fun t ->
            match
              H.cycle ~budget:8_000_000 ~avoid_nodes:(fun v -> List.mem v faults) ~length:t g
            with
            | H.Found _ -> Printf.sprintf "%d:EXISTS(!)" t
            | H.Not_found -> Printf.sprintf "%d:none" t
            | H.Exhausted -> Printf.sprintf "%d:?" t)
          (List.init (live - bound) (fun i -> bound + 1 + i))
      in
      Printf.printf "%10s %4d %8d %8d | %s\n"
        (Printf.sprintf "B(%d,%d)" d n)
        f bound (Ffc.Embed.length ffc)
        (if List.is_empty verdicts then "(bound = all live nodes)" else String.concat " " verdicts))
    [ (3, 2, 1); (4, 2, 1); (4, 2, 2); (3, 3, 1); (5, 2, 3) ];
  print_endline
    "(note: the adversarial cycles avoid the FAULTY NODES only - the certificate";
  print_endline " shows even non-necklace-based algorithms cannot beat d^n - nf)"

let run () =
  question_1 ();
  print_newline ();
  question_2 ();
  print_newline ();
  questions_3_4 ();
  print_newline ();
  kautz_probe ();
  print_newline ();
  pancyclicity ();
  print_newline ();
  worst_case_certificates ();
  print_newline ()
