(* Ablations of the design choices called out in DESIGN.md. *)

module W = Debruijn.Word
module B = Ffc.Bstar
module A = Ffc.Adjacency
module Tr = Graphlib.Traversal
module DG = Graphlib.Digraph

let hr = String.make 78 '-'

(* Ablation (a): the FFC parent rule.  The thesis picks the MINIMAL
   predecessor at the previous BFS level; any rule that is a function of
   the predecessor set alone keeps the height-one property of T_w,
   because siblings wα and wβ share their whole predecessor set.  A
   node-dependent rule (here: the (v mod k)-th predecessor) breaks the
   proof — this ablation counts how often it also breaks the property. *)
let parent_rule_ablation () =
  print_endline hr;
  print_endline "ABLATION (a) - FFC parent tie-break rule vs the height-one property of T_w";
  print_endline hr;
  let count_violations p faults rule =
    match B.compute p ~faults with
    | None -> 0
    | Some b ->
        let g = Lazy.force b.B.graph in
        let in_bstar v = b.B.in_bstar.{v} <> 0 in
        let dist = Tr.bfs_dist_restricted g in_bstar b.B.root in
        let parent_of v =
          let preds =
            List.filter (fun u -> in_bstar u && dist.(u) = dist.(v) - 1) (DG.preds g v)
          in
          rule v (List.sort Int.compare preds)
        in
        let adj = A.build b in
        (* chosen node per necklace and its parent label, as in Step 1.2 *)
        let label_parent = Hashtbl.create 32 in
        let violations = ref 0 in
        Array.iteri
          (fun i rep ->
            if i <> adj.A.idx_of_node.{b.B.root} then begin
              let members = List.sort Int.compare (Debruijn.Necklace.nodes p rep) in
              let y =
                List.fold_left
                  (fun best v ->
                    match best with
                    | None -> Some v
                    | Some bv ->
                        if dist.(v) < dist.(bv) || (dist.(v) = dist.(bv) && v < bv) then Some v
                        else best)
                  None members
              in
              match y with
              | Some y when dist.(y) > 0 ->
                  let par = parent_of y in
                  let w = W.prefix p y in
                  let par_neck = adj.A.idx_of_node.{par} in
                  (match Hashtbl.find_opt label_parent w with
                  | None -> Hashtbl.add label_parent w par_neck
                  | Some q -> if q <> par_neck then incr violations)
              | _ -> ()
            end)
          adj.A.reps;
        !violations
  in
  let minimal _v = function [] -> assert false | p :: _ -> p in
  let skewed v preds = List.nth preds (v mod List.length preds) in
  let rng = Util.Rng.create 808 in
  Printf.printf "%10s %8s | %18s %18s\n" "graph" "trials" "minimal-rule viol." "skewed-rule viol.";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let trials = 60 in
      let v_min = ref 0 and v_skew = ref 0 in
      for _ = 1 to trials do
        let f = 1 + Util.Rng.int rng (d + 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        v_min := !v_min + count_violations p faults minimal;
        v_skew := !v_skew + count_violations p faults skewed
      done;
      Printf.printf "%10s %8d | %18d %18d\n"
        (Printf.sprintf "B(%d,%d)" d n)
        trials !v_min !v_skew)
    [ (3, 4); (4, 3); (2, 7); (5, 2) ]

(* Ablation (b): distributed protocol round budget O(K + n). *)
let distributed_rounds_ablation () =
  print_endline hr;
  print_endline
    "ABLATION (b) - orchestrated vs self-timed distributed FFC rounds (O(K+n) vs 5n+4)";
  print_endline hr;
  let rng = Util.Rng.create 811 in
  Printf.printf "%10s %4s | %6s %6s %6s %5s %5s | %6s %11s %6s\n" "graph" "f" "probe"
    "bcast" "choose" "exch" "memb" "total" "ecc + 3n + 4" "ports";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
      match B.compute p ~faults with
      | None -> ()
      | Some b ->
          let r = Ffc.Distributed.run b in
          let s = r.Ffc.Distributed.stats in
          let ecc = B.eccentricity_of_root b in
          Printf.printf "%10s %4d | %6d %6d %6d %5d %5d | %6d %11d %6d\n"
            (Printf.sprintf "B(%d,%d)" d n)
            f s.Ffc.Distributed.probe_rounds s.Ffc.Distributed.broadcast_rounds
            s.Ffc.Distributed.choose_rounds s.Ffc.Distributed.exchange_rounds
            s.Ffc.Distributed.membership_rounds s.Ffc.Distributed.total_rounds
            (ecc + (3 * n) + 4)
            s.Ffc.Distributed.port_load;
          (match Ffc.Selftimed.run b with
          | st ->
              Printf.printf "%10s %4s | self-timed single program: %d rounds (schedule %d), agree=%b\n"
                "" "" st.Ffc.Selftimed.total_rounds
                (Ffc.Selftimed.schedule_length ~n)
                (st.Ffc.Selftimed.successor = r.Ffc.Distributed.successor)
          | exception _ ->
              Printf.printf "%10s %4s | self-timed: schedule too short for this f\n" "" ""))
    [ (2, 8, 2); (2, 10, 4); (3, 5, 1); (4, 5, 2); (4, 5, 10); (5, 4, 3) ]

(* Ablation (c): Strategy 2 vs Strategy 3 where both conditions hold. *)
let strategy_ablation () =
  print_endline hr;
  print_endline "ABLATION (c) - Strategy 2 vs Strategy 3 for odd primes (disjoint HC counts)";
  print_endline hr;
  Printf.printf "%4s %10s %10s %12s %10s\n" "p" "(p-1)/2" "cond (b)" "chosen" "|L|";
  List.iter
    (fun p ->
      let choice = Dhc.Strategies.choose ~p in
      let name =
        match choice with
        | Dhc.Strategies.S1 -> "S1"
        | Dhc.Strategies.S2 _ -> "S2"
        | Dhc.Strategies.S3 _ -> "S3"
      in
      let field = Galois.Gf.create p in
      let count = List.length (Dhc.Strategies.selected_shifts field choice) in
      Printf.printf "%4d %10s %10b %12s %10d\n" p
        (if (p - 1) / 2 mod 2 = 0 then "even" else "odd")
        (Dhc.Strategies.condition_b_holds ~p)
        name count)
    [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

(* Ablation (d): the two edge-fault routes beyond their guarantees. *)
let edge_route_ablation () =
  print_endline hr;
  print_endline "ABLATION (d) - phi-construction vs psi-route at and beyond the guarantee";
  print_endline hr;
  let rng = Util.Rng.create 812 in
  Printf.printf "%6s %4s %8s | %14s %14s\n" "d" "n" "faults" "phi-route ok" "psi-route ok";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let phi = Dhc.Psi.phi_bound d in
      List.iter
        (fun extra ->
          let f = phi + extra in
          if f >= 1 then begin
            let trials = 30 in
            let ok_phi = ref 0 and ok_psi = ref 0 in
            for _ = 1 to trials do
              let rec pick acc =
                if List.length acc >= f then acc
                else begin
                  let u = Util.Rng.int rng p.W.size in
                  let a = Util.Rng.int rng d in
                  let v = W.snoc p (W.suffix p u) a in
                  if u <> v && not (List.mem (u, v) acc) then pick ((u, v) :: acc)
                  else pick acc
                end
              in
              let faults = pick [] in
              let check = function
                | Some hc ->
                    let c = Debruijn.Sequence.cycle_of_sequence p hc in
                    Graphlib.Cycle.is_hamiltonian (Debruijn.Graph.b p) c
                    && Graphlib.Cycle.avoids_edges c (fun e -> List.mem e faults)
                | None -> false
              in
              if check (Dhc.Edge_fault.hc_avoiding ~d ~n ~faults) then incr ok_phi;
              if check (Dhc.Edge_fault.hc_avoiding_via_disjoint ~d ~n ~faults) then
                incr ok_psi
            done;
            Printf.printf "%6d %4d %8d | %11d/%2d %11d/%2d\n" d n f !ok_phi trials !ok_psi
              trials
          end)
        [ 0; 2; 4 ])
    [ (5, 2); (8, 2); (9, 2) ]

(* Ablation (e): Chapter 3's opening strawman — masking the endpoints of
   faulty links as faulty nodes and reusing Chapter 2 — versus the real
   edge-fault construction.  The strawman needlessly drops live
   processors (up to ~2n per fault); the construction keeps them all. *)
let node_masking_ablation () =
  print_endline hr;
  print_endline
    "ABLATION (e) - edge faults via node masking (Ch. 3 opening) vs the Prop 3.3 HC";
  print_endline hr;
  let rng = Util.Rng.create 813 in
  Printf.printf "%10s %4s %8s | %14s %14s %8s\n" "graph" "f" "trials" "mask ring(avg)"
    "Prop 3.3 ring" "d^n";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let f = max 1 (Dhc.Psi.phi_bound d) in
      let trials = 25 in
      let mask_total = ref 0 and hc_ok = ref 0 in
      for _ = 1 to trials do
        let rec pick acc =
          if List.length acc >= f then acc
          else begin
            let u = Util.Rng.int rng p.W.size in
            let a = Util.Rng.int rng d in
            let v = W.snoc p (W.suffix p u) a in
            if u <> v && not (List.mem (u, v) acc) then pick ((u, v) :: acc) else pick acc
          end
        in
        let faults = pick [] in
        (match Dhc.Edge_fault.via_node_masking ~d ~n ~faults with
        | Some ring -> mask_total := !mask_total + Array.length ring
        | None -> ());
        match Dhc.Edge_fault.best_hc_avoiding ~d ~n ~faults with
        | Some _ -> incr hc_ok
        | None -> ()
      done;
      Printf.printf "%10s %4d %8d | %14.1f %14s %8d\n"
        (Printf.sprintf "B(%d,%d)" d n)
        f trials
        (float_of_int !mask_total /. float_of_int trials)
        (Printf.sprintf "%d/%d Hamiltonian" !hc_ok trials)
        p.W.size)
    [ (4, 3); (5, 3); (8, 2); (9, 2) ]

let run () =
  parent_rule_ablation ();
  print_newline ();
  distributed_rounds_ablation ();
  print_newline ();
  strategy_ablation ();
  print_newline ();
  edge_route_ablation ();
  print_newline ();
  node_masking_ablation ();
  print_newline ()
