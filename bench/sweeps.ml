(* Proposition-level sweeps and the hypercube comparison. *)

module W = Debruijn.Word
module E = Ffc.Embed
module B = Ffc.Bstar

let hr = String.make 78 '-'

let prop_2_2 () =
  print_endline hr;
  print_endline
    "PROPOSITION 2.2 - cycle length >= d^n - nf and Theta(n) rounds for f <= d-2";
  print_endline hr;
  let rng = Util.Rng.create 221 in
  Printf.printf "%10s %4s %8s %12s %12s %10s %10s\n" "graph" "f" "trials" "min length"
    "bound" "max rounds" "2n";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for f = 1 to d - 2 do
        let trials = 50 in
        let min_len = ref max_int and max_rounds = ref 0 in
        for _ = 1 to trials do
          let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
          let b = Option.get (B.compute p ~faults) in
          let e = E.of_bstar b in
          assert (E.verify e);
          min_len := min !min_len (E.length e);
          let dist = Ffc.Distributed.run b in
          assert (
            dist.Ffc.Distributed.successor
            = Graphlib.Flatarr.to_array e.E.successor);
          max_rounds :=
            max !max_rounds dist.Ffc.Distributed.stats.Ffc.Distributed.broadcast_rounds
        done;
        Printf.printf "%10s %4d %8d %12d %12d %10d %10d\n"
          (Printf.sprintf "B(%d,%d)" d n)
          f trials !min_len
          (E.length_lower_bound p f)
          !max_rounds (2 * n)
      done)
    [ (4, 3); (5, 3); (6, 2); (7, 2) ];
  print_endline "worst-case fault packs (cycle length must equal the bound exactly):";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let e = Option.get (E.embed p ~faults:(E.worst_case_faults p f)) in
      Printf.printf "  B(%d,%d), f=%d: length %d = bound %d: %b\n" d n f (E.length e)
        (E.length_lower_bound p f)
        (E.length e = E.length_lower_bound p f))
    [ (4, 3, 2); (5, 3, 3); (6, 2, 4); (7, 2, 5) ]

let prop_2_3 () =
  print_endline hr;
  print_endline "PROPOSITION 2.3 - binary case, one fault: length >= 2^n - (n+1), exhaustive";
  print_endline hr;
  Printf.printf "%6s %12s %12s %12s\n" "n" "min length" "bound" "worst fault";
  List.iter
    (fun n ->
      let p = W.params ~d:2 ~n in
      let worst = ref (-1) and min_len = ref max_int in
      for fault = 0 to p.W.size - 1 do
        let e = Option.get (E.embed p ~faults:[ fault ]) in
        if E.length e < !min_len then begin
          min_len := E.length e;
          worst := fault
        end
      done;
      Printf.printf "%6d %12d %12d %12s\n" n !min_len
        (p.W.size - (n + 1))
        (W.to_string p !worst))
    [ 4; 5; 6; 7; 8; 9; 10 ]

let prop_3_3 () =
  print_endline hr;
  print_endline "PROPOSITIONS 3.3/3.4 - Hamiltonian cycles under f = tolerance edge faults";
  print_endline hr;
  let rng = Util.Rng.create 333 in
  Printf.printf "%6s %6s %6s %8s %10s\n" "d" "n" "f" "trials" "successes";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let f = Dhc.Psi.max_tolerance d in
      if f >= 1 then begin
        let trials = 40 in
        let ok = ref 0 in
        for _ = 1 to trials do
          let rec pick acc =
            if List.length acc >= f then acc
            else begin
              let u = Util.Rng.int rng p.W.size in
              let a = Util.Rng.int rng d in
              let v = W.snoc p (W.suffix p u) a in
              if u <> v && not (List.mem (u, v) acc) then pick ((u, v) :: acc) else pick acc
            end
          in
          let faults = pick [] in
          match Dhc.Edge_fault.best_hc_avoiding ~d ~n ~faults with
          | Some hc
            when Graphlib.Cycle.is_hamiltonian g (Debruijn.Sequence.cycle_of_sequence p hc)
                 && Graphlib.Cycle.avoids_edges
                      (Debruijn.Sequence.cycle_of_sequence p hc)
                      (fun e -> List.mem e faults) ->
              incr ok
          | _ -> ()
        done;
        Printf.printf "%6d %6d %6d %8d %10d\n" d n f trials !ok
      end)
    [ (3, 3); (4, 3); (5, 2); (6, 2); (8, 2); (9, 2); (10, 2); (12, 2); (15, 2) ]

let prop_3_5 () =
  print_endline hr;
  print_endline "PROPOSITIONS 3.5/3.6 - butterflies F(d,n), gcd(d,n) = 1";
  print_endline hr;
  Printf.printf "%10s %8s %14s %16s\n" "graph" "nodes" "disjoint HCs" "HC w/ max faults";
  let rng = Util.Rng.create 355 in
  List.iter
    (fun (d, n) ->
      let bf = Butterfly.Graph.create ~d ~n in
      let hcs = Butterfly.Embed.disjoint_hamiltonian_cycles bf in
      let disjoint_ok =
        List.for_all (fun c -> Graphlib.Cycle.is_hamiltonian bf.Butterfly.Graph.graph c) hcs
        && Graphlib.Cycle.pairwise_edge_disjoint hcs
      in
      let f = Dhc.Psi.max_tolerance d in
      let fault_ok =
        if f = 0 then "f=0"
        else begin
          let rec pick acc =
            if List.length acc >= f then acc
            else begin
              let u = Util.Rng.int rng (Butterfly.Graph.n_nodes bf) in
              let succs = Butterfly.Graph.successors bf u in
              let v = List.nth succs (Util.Rng.int rng (List.length succs)) in
              if List.mem (u, v) acc then pick acc else pick ((u, v) :: acc)
            end
          in
          let faults = pick [] in
          match Butterfly.Embed.hc_avoiding bf ~faults with
          | Some hc
            when Graphlib.Cycle.is_hamiltonian bf.Butterfly.Graph.graph hc
                 && Graphlib.Cycle.avoids_edges hc (fun e -> List.mem e faults) ->
              Printf.sprintf "ok (f=%d)" f
          | _ -> "FAILED"
        end
      in
      Printf.printf "%10s %8d %8d %s %16s\n"
        (Printf.sprintf "F(%d,%d)" d n)
        (Butterfly.Graph.n_nodes bf)
        (List.length hcs)
        (if disjoint_ok then "(verified)" else "(INVALID)")
        fault_ok)
    [ (2, 3); (3, 2); (2, 5); (3, 4); (4, 3); (5, 2); (5, 3) ]

let comparison () =
  print_endline hr;
  print_endline "COMPARISON (Chapter 2 intro) - 4096-node hypercube vs De Bruijn, f = 2 faults";
  print_endline hr;
  (* Hypercube Q12: constructive ring of 4092. *)
  let faults_q = [ 0b000011110000; 0b101010101010 ] in
  let ring_q = Option.get (Hypercube.Ring.embed ~n:12 ~faults:faults_q) in
  assert (Hypercube.Ring.verify ~n:12 ~faults:faults_q ring_q);
  (* De Bruijn B(4,6): ring >= 4084. *)
  let p = W.params ~d:4 ~n:6 in
  let rng = Util.Rng.create 46 in
  let faults_b = Util.Rng.sample_distinct rng ~k:2 ~bound:p.W.size in
  let e = Option.get (E.embed p ~faults:faults_b) in
  assert (E.verify e);
  Printf.printf "%22s %12s %12s %12s %14s\n" "network" "nodes" "edges" "ring(f=2)" "paper says";
  Printf.printf "%22s %12d %12d %12d %14s\n" "hypercube Q12" 4096
    (Hypercube.Cube.n_edges_undirected 12)
    (Array.length ring_q) ">= 4092";
  Printf.printf "%22s %12d %12d %12d %14s\n" "De Bruijn B(4,6)" p.W.size
    (Graphlib.Digraph.n_edges (Debruijn.Graph.b p))
    (E.length e) ">= 4084";
  print_endline
    "(the thesis: the hypercube has 50% more edges - 24,576 vs 16,384 - in this instance)";
  (* sweep: who wins at which f, B(4,6) vs Q12 *)
  Printf.printf "\n%4s %16s %16s %16s\n" "f" "Q12 ring" "B(4,6) ring" "B(4,6) bound";
  List.iter
    (fun f ->
      let fq = Util.Rng.sample_distinct rng ~k:f ~bound:4096 in
      let q =
        match Hypercube.Ring.embed ~n:12 ~faults:fq with
        | Some c when Hypercube.Ring.verify ~n:12 ~faults:fq c -> Array.length c
        | _ -> -1
      in
      let fb = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
      let b = E.length (Option.get (E.embed p ~faults:fb)) in
      Printf.printf "%4d %16d %16d %16d\n" f q b (E.length_lower_bound p f))
    [ 1; 2; 4; 6; 8; 10 ]

let scaling () =
  print_endline hr;
  print_endline "SCALING - FFC work and round counts vs network size (Theta(n) rounds)";
  print_endline hr;
  let rng = Util.Rng.create 888 in
  Printf.printf "%10s %8s %4s | %10s %8s %8s %8s %10s\n" "graph" "nodes" "f" "ring"
    "rounds" "ecc(R)" "3n" "msgs";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
      match B.compute p ~faults with
      | None -> ()
      | Some b ->
          let r = Ffc.Distributed.run b in
          let s = r.Ffc.Distributed.stats in
          Printf.printf "%10s %8d %4d | %10d %8d %8d %8d %10d\n"
            (Printf.sprintf "B(%d,%d)" d n)
            p.W.size f
            (Array.length r.Ffc.Distributed.cycle)
            s.Ffc.Distributed.total_rounds (B.eccentricity_of_root b) (3 * n)
            s.Ffc.Distributed.messages)
    [ (2, 6, 1); (2, 8, 1); (2, 10, 1); (2, 12, 1); (3, 5, 1); (3, 7, 1);
      (4, 4, 2); (4, 5, 2); (4, 6, 2); (5, 5, 3) ];
  (* centralized pipeline at larger scale (wall-clock per embed) *)
  Printf.printf "\ncentralized FFC at scale:\n";
  Printf.printf "%10s %8s %4s | %10s %10s\n" "graph" "nodes" "f" "ring" "seconds";
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
      let t0 = Sys.time () in
      match E.embed p ~faults with
      | None -> ()
      | Some e ->
          assert (E.verify e);
          Printf.printf "%10s %8d %4d | %10d %10.3f\n"
            (Printf.sprintf "B(%d,%d)" d n)
            p.W.size f (E.length e)
            (Sys.time () -. t0))
    [ (2, 14, 1); (2, 16, 1); (4, 8, 2); (3, 10, 1); (6, 6, 4) ]

let run () =
  prop_2_2 ();
  print_newline ();
  prop_2_3 ();
  print_newline ();
  prop_3_3 ();
  print_newline ();
  prop_3_5 ();
  print_newline ();
  comparison ();
  print_newline ();
  scaling ();
  print_newline ()
