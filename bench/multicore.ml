(* Multicore scaling of a single FFC embed — the work-stealing BFS
   (Graphlib.Sched) and the off-heap workspace arena together.

   Smoke: B(2,16); full: B(2,22).  Domain sweep 1/2/4/8 with wall
   clock, GC words and peak RSS per embed; every parallel result is
   checked bit-identical to the sequential fresh-allocation run (the
   qcheck determinism contract, exercised at scale).  Wall times and
   speedups are machine-dependent, so their rows carry "domains" in the
   engine name — the CI gate schema-checks them but does not window
   them.  The steady-state row measures GC words per embed once the
   arena is warm: the near-zero-allocation claim of the Bigarray
   workspace, and it IS gated. *)

module W = Debruijn.Word
module E = Ffc.Embed
module Fa = Graphlib.Flatarr

let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let jbool = Jrec.jbool
let record = Jrec.record

let domain_counts = [ 1; 2; 4; 8 ]

let sweep ~d ~n =
  let p = W.params ~d ~n in
  let faults = [ 1 ] in
  Printf.printf " single-embed scaling: B(%d,%d) (%d nodes), f = 1\n" d n p.W.size;
  (* Sequential fresh-allocation reference: the bit-identity oracle and
     the x1 denominator come from here. *)
  let seq, gseq = Jrec.time_gc (fun () -> Option.get (E.embed p ~faults)) in
  let seq_succ = Fa.to_array seq.E.successor in
  let seq_cycle = seq.E.cycle in
  Printf.printf "  sequential fresh        %8.3f s  minor %12.0f w\n" gseq.Jrec.wall_s
    gseq.Jrec.minor_words;
  record
    ([
       ("section", jstr "multicore");
       ("d", jint d);
       ("n", jint n);
       ("nodes", jint p.W.size);
       ("engine", jstr "sequential fresh");
     ]
    @ Jrec.gc_fields gseq
    @ [ ("verified", jbool (E.verify seq)); ("ring_length", jint (E.length seq)) ]);
  let ws = Ffc.Workspace.create p in
  let t1 = ref gseq.Jrec.wall_s in
  List.iter
    (fun domains ->
      let e, gt =
        Jrec.time_gc (fun () -> Option.get (E.embed ~domains ~ws p ~faults))
      in
      (* The ws embed aliases arena storage, so compare before the next
         trial reuses it. *)
      let same = Fa.to_array e.E.successor = seq_succ && e.E.cycle = seq_cycle in
      let ok = E.verify ~ws e in
      if domains = 1 then t1 := gt.Jrec.wall_s;
      Printf.printf "  arena x%d domains        %8.3f s  minor %12.0f w  identical %b\n"
        domains gt.Jrec.wall_s gt.Jrec.minor_words same;
      record
        ([
           ("section", jstr "multicore");
           ("d", jint d);
           ("n", jint n);
           ("nodes", jint p.W.size);
           ("engine", jstr (Printf.sprintf "arena x%d domains" domains));
         ]
        @ Jrec.gc_fields gt
        @ [
            ("verified", jbool ok);
            ("same_output", jbool same);
            ("ring_length", jint (E.length e));
          ]);
      record
        [
          ("section", jstr "multicore-speedup");
          ("d", jint d);
          ("n", jint n);
          ("engine", jstr (Printf.sprintf "arena x%d domains" domains));
          ("speedup_vs_x1", jnum (!t1 /. gt.Jrec.wall_s));
        ];
      if not (ok && same) then failwith "multicore: parallel embed diverged")
    domain_counts;
  (* Steady state: one warm arena, repeated embeds.  GC words per embed
     must stay near zero — only the result cycle array and the small
     pipeline records are heap-allocated. *)
  let reps = 5 in
  ignore (Option.get (E.embed ~ws p ~faults));
  let _, gsteady =
    Jrec.time_gc (fun () ->
        for _ = 1 to reps do
          ignore (Option.get (E.embed ~ws p ~faults))
        done)
  in
  let per = float_of_int reps in
  Printf.printf
    "  steady-state workspace  %8.3f s/embed  minor %10.1f w/embed  major %10.1f \
     w/embed\n"
    (gsteady.Jrec.wall_s /. per)
    (gsteady.Jrec.minor_words /. per)
    (gsteady.Jrec.major_words /. per);
  record
    [
      ("section", jstr "multicore-steady");
      ("d", jint d);
      ("n", jint n);
      ("nodes", jint p.W.size);
      ("engine", jstr "workspace steady");
      ("wall_s", jnum (gsteady.Jrec.wall_s /. per));
      ("minor_words", jnum (gsteady.Jrec.minor_words /. per));
      ("major_words", jnum (gsteady.Jrec.major_words /. per));
      ("max_rss_kb", jint gsteady.Jrec.max_rss_kb);
    ]

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "MULTICORE - work-stealing BFS + off-heap arena, single-embed domain sweep";
  print_endline (String.make 78 '-');
  if smoke then sweep ~d:2 ~n:16 else sweep ~d:2 ~n:22;
  print_newline ();
  if json then Jrec.write "BENCH_multicore.json"
