(* Live churn benchmarks (EXPERIMENTS.md "Live repair under churn"):
   the Ffc.Live incremental engine under sustained fault/repair
   arrivals, against the batch pipeline it must stay bit-identical to.

   Three studies:

   - workspace vs fresh on B(2,10): the same seeded churn through both
     allocation paths — event outcomes bit-identical, per-event GC
     figures the difference;
   - the headline latency table: B(2,17) and B(2,22) churn, median and
     max Live.apply latency per event versus the cost of one full
     recompute at that size.  The patched path's point is precisely
     that an event costs µs–ms where the batch pipeline costs seconds;
   - the ratio row: full-recompute seconds / median event seconds.

   Every field except the wall/latency/GC figures is a pure function of
   (seed, target, trials, events) — domain- and reuse-invariant, which
   is what the CI gate pins. *)

module W = Debruijn.Word
module Ca = Ffc.Campaign

let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let record = Jrec.record

let churn_fields (cp : Ca.churn_point) =
  [
    ("target_f", jint cp.Ca.target_f);
    ("ctrials", jint cp.Ca.ctrials);
    ("events", jint cp.Ca.events);
    ("cfaults", jint cp.Ca.cfaults);
    ("crepairs", jint cp.Ca.crepairs);
    ("patched", jint cp.Ca.patched);
    ("recomputed", jint cp.Ca.recomputed);
    ("cunchanged", jint cp.Ca.cunchanged);
    ("cerrors", jint cp.Ca.cerrors);
    ("mean_ring_length", jnum cp.Ca.mean_ring_length);
    ("min_ring_length", jint cp.Ca.min_ring_length);
    ("mean_live_faults", jnum cp.Ca.mean_live_faults);
    ("wall_s", jnum cp.Ca.cwall_s);
    ("median_event_s", jnum cp.Ca.median_event_s);
    ("max_event_s", jnum cp.Ca.max_event_s);
    ("minor_words_per_event", jnum cp.Ca.minor_words_per_event);
    ("major_words_per_event", jnum cp.Ca.major_words_per_event);
    ("max_rss_kb", jint (Jrec.max_rss_kb ()));
  ]

let print_point (cp : Ca.churn_point) =
  Printf.printf
    "  target=%3d  %3d+%-3d ev  patched %4d  recomputed %4d  unchanged %4d  \
     errors %d  ring %10.1f  median %9.6f s/ev  max %9.6f s  minor %7.0f w/ev\n"
    cp.Ca.target_f cp.Ca.cfaults cp.Ca.crepairs cp.Ca.patched cp.Ca.recomputed
    cp.Ca.cunchanged cp.Ca.cerrors cp.Ca.mean_ring_length cp.Ca.median_event_s
    cp.Ca.max_event_s cp.Ca.minor_words_per_event

(* One churn table; every point becomes a JSON row keyed by
   (d, n, engine, target_f). *)
let table ~engine ?domains ?reuse ~trials ~events ~targets ~d ~n () =
  let size = (W.params ~d ~n).W.size in
  Printf.printf " churn: B(%d,%d) (%d nodes), %d trials x %d events [%s]\n" d n
    size trials events engine;
  let pts = Ca.churn ?domains ?reuse ~trials ~targets ~events ~d ~n () in
  List.iter
    (fun cp ->
      print_point cp;
      record
        ([
           ("section", jstr "live");
           ("d", jint d);
           ("n", jint n);
           ("engine", jstr engine);
         ]
        @ churn_fields cp))
    pts;
  if List.exists (fun cp -> cp.Ca.cerrors > 0) pts then
    failwith "live: a churn trial aborted with a pipeline error";
  pts

(* The headline comparison: median event latency against one full batch
   recompute of the same instance (the cost Live.apply avoids). *)
let recompute_baseline ~d ~n =
  let p = W.params ~d ~n in
  let r, s =
    Jrec.time (fun () -> Ffc.Embed.embed ~root_hint:1 p ~faults:[ 1 ])
  in
  match r with
  | Some _ -> s
  | None -> failwith "live: baseline embed failed"

let latency_vs_recompute ~trials ~events ~targets ~d ~n () =
  let pts = table ~engine:"workspace" ~trials ~events ~targets ~d ~n () in
  let recompute_s = recompute_baseline ~d ~n in
  let median =
    List.fold_left (fun acc cp -> Float.max acc cp.Ca.median_event_s) 0. pts
  in
  let speedup = if median > 0. then recompute_s /. median else 0. in
  Printf.printf
    "  one full recompute: %.3f s; worst median event: %.6f s (%.0fx); \
     thesis target median <= 10 ms: %s\n"
    recompute_s median speedup
    (if median <= 0.010 then "met" else "MISSED");
  record
    [
      ("section", jstr "live-speedup");
      ("d", jint d);
      ("n", jint n);
      ("engine", jstr "workspace");
      ("recompute_s", jnum recompute_s);
      ("speedup_vs_recompute", jnum speedup);
    ]

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline "LIVE CHURN - incremental ring repair vs the batch FFC pipeline";
  print_endline (String.make 78 '-');
  (* Workspace vs fresh: identical seeded events through both paths. *)
  let trials = if smoke then 4 else 10 in
  let events = if smoke then 60 else 200 in
  let targets = [ 2; 8 ] in
  ignore (table ~engine:"workspace" ~trials ~events ~targets ~d:2 ~n:10 ());
  ignore (table ~engine:"fresh" ~reuse:false ~trials ~events ~targets ~d:2 ~n:10 ());
  if not smoke then begin
    print_endline " latency at scale (one live engine, reused workspace):";
    latency_vs_recompute ~trials:3 ~events:100 ~targets:[ 8 ] ~d:2 ~n:17 ();
    latency_vs_recompute ~trials:2 ~events:50 ~targets:[ 8 ] ~d:2 ~n:22 ()
  end;
  print_newline ();
  if json then Jrec.write "BENCH_live.json"
