(* Collective traffic over embedded rings — ring reduce-scatter,
   all-gather and allreduce driven on (a) the FFC-embedded ring under
   node faults (Chapter 2) and (b) up to psi(d) edge-disjoint
   Hamiltonian rings under link faults (Chapter 3), each through BOTH
   executors: the message-by-message netsim engine and the compiled
   zero-copy fastpath.

   Smoke: B(2,10) for the FFC cases, B(4,5) for striping, plus a
   full-scale B(2,16) bidirectional fastpath allreduce (the PR lane
   proves the compiled engine at real size on every PR); full adds
   B(2,16)/B(4,8) on both engines and the B(2,22) fastpath rows with
   their bytes/second figures (nightly big-instances).

   Every run exact-verifies the reduced integer payloads against the
   rank-space reference execution, and every fastpath run is asserted
   counter-identical to its netsim sibling here (the CI gate
   re-checks the pair from the JSON).  Wall times are machine-
   dependent; rows with "domains" in the engine are schema-checked
   only, their checksum/rounds asserted bit-identical to the
   sequential run here instead.

   Two claims are enforced, not just reported: the k-ring striped
   allreduce must move >= 0.8k times the bytes per step of one ring,
   and (full mode, where runs are long enough to time meaningfully)
   the fastpath allreduce must beat netsim by >= 20x wall-clock and
   >= 100x minor words on every matrix point. *)

let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let jbool = Jrec.jbool
let record = Jrec.record

let ops = [ Core.Collective_schedule.Reduce_scatter; All_gather; Allreduce ]

(* Accounted wire throughput of the whole driver call (embed/stream
   construction included): 8 x wire_words / wall.  The figure the
   B(2,22) nightly rows exist for. *)
let bytes_per_s (r : Core.Collective_exec.report) (g : Jrec.gc_timed) =
  8.0
  *. float_of_int r.Core.Collective_exec.wire_words
  /. Float.max 1e-9 g.Jrec.wall_s

let row ~engine ~d ~n ~f ~op (r : Core.Collective_exec.report) g =
  record
    ([
       ("section", jstr "collective");
       ("d", jint d);
       ("n", jint n);
       ("op", jstr (Core.Collective_schedule.op_to_string op));
       ("engine", jstr engine);
       ("f", jint f);
     ]
    @ Jrec.gc_fields g
    @ [
        ("rings", jint r.Core.Collective_exec.rings);
        ("ranks", jint r.Core.Collective_exec.ranks);
        ("phases", jint r.Core.Collective_exec.phases);
        ("rounds", jint r.Core.Collective_exec.rounds);
        ("delivered", jint r.Core.Collective_exec.delivered);
        ("wire_words", jint r.Core.Collective_exec.wire_words);
        ("payload_words", jint r.Core.Collective_exec.payload_words);
        ("max_link_load", jint r.Core.Collective_exec.max_link_load);
        ("max_port_load", jint r.Core.Collective_exec.max_port_load);
        ("checksum", jint r.Core.Collective_exec.checksum);
        ("verified", jbool r.Core.Collective_exec.verified);
        ("bytes_per_step", jnum r.Core.Collective_exec.bytes_per_step);
        ("bytes_per_s", jnum (bytes_per_s r g));
      ])

let show ~engine ~op (r : Core.Collective_exec.report) g =
  Printf.printf
    "  %-13s %-26s rounds %7d  delivered %10d  B/step %8.1f  link<=%3d  ok %b  %6.2fs\n"
    (Core.Collective_schedule.op_to_string op)
    engine r.Core.Collective_exec.rounds r.Core.Collective_exec.delivered
    r.Core.Collective_exec.bytes_per_step r.Core.Collective_exec.max_link_load
    r.Core.Collective_exec.verified g.Jrec.wall_s

let check_verified ~what (r : Core.Collective_exec.report) =
  if not r.Core.Collective_exec.verified then
    failwith ("collective: exact verification failed: " ^ what)

(* The two executors implement one spec: every deterministic counter
   must agree bit-for-bit. *)
let check_agreement ~what (a : Core.Collective_exec.report)
    (b : Core.Collective_exec.report) =
  let ok =
    a.Core.Collective_exec.rings = b.Core.Collective_exec.rings
    && a.Core.Collective_exec.ranks = b.Core.Collective_exec.ranks
    && a.Core.Collective_exec.phases = b.Core.Collective_exec.phases
    && a.Core.Collective_exec.rounds = b.Core.Collective_exec.rounds
    && a.Core.Collective_exec.delivered = b.Core.Collective_exec.delivered
    && a.Core.Collective_exec.wire_words = b.Core.Collective_exec.wire_words
    && a.Core.Collective_exec.payload_words
       = b.Core.Collective_exec.payload_words
    && a.Core.Collective_exec.max_link_load
       = b.Core.Collective_exec.max_link_load
    && a.Core.Collective_exec.max_port_load
       = b.Core.Collective_exec.max_port_load
    && a.Core.Collective_exec.checksum = b.Core.Collective_exec.checksum
  in
  if not ok then
    failwith ("collective: fastpath diverged from netsim: " ^ what)

(* The tentpole acceptance floors, enforced where runs are long enough
   to time meaningfully (full mode); always reported. *)
let speedup ~what ~enforce (gn : Jrec.gc_timed) (gf : Jrec.gc_timed) =
  let wall = gn.Jrec.wall_s /. Float.max 1e-9 gf.Jrec.wall_s in
  let minor = gn.Jrec.minor_words /. Float.max 1.0 gf.Jrec.minor_words in
  Printf.printf
    "  fastpath vs netsim [%s]: wall x%.1f (floor 20), minor-words x%.1f (floor 100)%s\n"
    what wall minor
    (if enforce then "" else " [reported only]");
  if enforce && wall < 20.0 then
    failwith
      (Printf.sprintf "collective: fastpath wall speedup x%.1f below 20x (%s)"
         wall what);
  if enforce && minor < 100.0 then
    failwith
      (Printf.sprintf
         "collective: fastpath minor-words ratio x%.1f below 100x (%s)" minor
         what)

(* Chapter-2 side: the FFC-embedded ring under seeded random node
   faults, both engines on every point. *)
let ffc_side ~d ~n ~ranks ~chunk_words ~fault_counts ~enforce =
  let p = Core.Word.params ~d ~n in
  Printf.printf " FFC ring of B(%d,%d) (%d nodes), ranks %d, chunk %d words\n" d n
    p.Core.Word.size ranks chunk_words;
  List.iter
    (fun f ->
      let rng = Core.Rng.create 0x5eed in
      let faults = Core.Rng.sample_distinct rng ~k:f ~bound:p.Core.Word.size in
      List.iter
        (fun op ->
          let run engine =
            Jrec.time_gc (fun () ->
                Option.get
                  (Core.collective_over_fault_free_ring ~engine ~d ~n ~faults
                     ~op ~ranks ~chunk_words ()))
          in
          let r, g = run Core.Netsim in
          check_verified ~what:(Printf.sprintf "ffc f=%d" f) r;
          show ~engine:(Printf.sprintf "ffc-ring f=%d" f) ~op r g;
          row ~engine:"ffc-ring" ~d ~n ~f ~op r g;
          let rf, gf = run Core.Fastpath in
          check_verified ~what:(Printf.sprintf "ffc fastpath f=%d" f) rf;
          check_agreement ~what:(Printf.sprintf "ffc f=%d" f) r rf;
          show ~engine:(Printf.sprintf "ffc-ring fastpath f=%d" f) ~op rf gf;
          row ~engine:"ffc-ring fastpath" ~d ~n ~f ~op rf gf;
          if op = Core.Collective_schedule.Allreduce then
            speedup ~what:(Printf.sprintf "ffc f=%d" f) ~enforce g gf)
        ops)
    fault_counts

(* Chapter-3 side: striping across k edge-disjoint rings, plus the
   bidirectional and parallel-stepping variants, plus link faults. *)
let striped_side ~d ~n ~ranks ~chunk_words ~enforce =
  let k = Core.Psi.psi d in
  let p = Core.Word.params ~d ~n in
  Printf.printf
    " striped rings of B(%d,%d) (%d nodes), psi(%d) = %d, ranks %d, chunk %d words\n"
    d n p.Core.Word.size d k ranks chunk_words;
  let run ?(engine = Core.Netsim) ?domains ?(bidirectional = false)
      ?(edge_faults = []) ~k op =
    Jrec.time_gc (fun () ->
        Option.get
          (Core.striped_collective_over_disjoint_rings ~engine ?domains
             ~bidirectional ~edge_faults ~d ~n ~k ~op ~ranks ~chunk_words ()))
  in
  (* Every netsim point paired with its fastpath sibling. *)
  let pair ?bidirectional ?edge_faults ~what ~label ~k ~f op =
    let r, g = run ?bidirectional ?edge_faults ~k op in
    check_verified ~what r;
    show ~engine:label ~op r g;
    row ~engine:label ~d ~n ~f ~op r g;
    let rf, gf =
      run ~engine:Core.Fastpath ?bidirectional ?edge_faults ~k op
    in
    check_verified ~what:(what ^ " fastpath") rf;
    check_agreement ~what rf r;
    show ~engine:(label ^ " fastpath") ~op rf gf;
    row ~engine:(label ^ " fastpath") ~d ~n ~f ~op rf gf;
    if op = Core.Collective_schedule.Allreduce then speedup ~what ~enforce g gf;
    (r, rf)
  in
  (* k = 1 vs k = psi(d), fault-free: the striping contract. *)
  List.iter
    (fun op ->
      let r1, _ = pair ~what:"striped k=1" ~label:"striped x1" ~k:1 ~f:0 op in
      let rk, rkf =
        pair
          ~what:(Printf.sprintf "striped k=%d" k)
          ~label:(Printf.sprintf "striped x%d" k)
          ~k ~f:0 op
      in
      if op = Core.Collective_schedule.Allreduce then begin
        let gain =
          rk.Core.Collective_exec.bytes_per_step
          /. r1.Core.Collective_exec.bytes_per_step
        in
        Printf.printf "  striping gain x%.2f over one ring (floor %.2f)\n" gain
          (0.8 *. float_of_int k);
        if gain < 0.8 *. float_of_int k then
          failwith
            (Printf.sprintf
               "collective: striped allreduce gain x%.2f below the 0.8k floor"
               gain)
      end;
      (* Parallel stepping must be bit-identical to the sequential run,
         on both engines. *)
      if op = Core.Collective_schedule.Allreduce then begin
        let rd, gd = run ~domains:2 ~k op in
        if
          rd.Core.Collective_exec.checksum <> rk.Core.Collective_exec.checksum
          || rd.Core.Collective_exec.rounds <> rk.Core.Collective_exec.rounds
          || rd.Core.Collective_exec.delivered
             <> rk.Core.Collective_exec.delivered
        then failwith "collective: domains=2 run diverged from sequential";
        check_verified ~what:"striped domains=2" rd;
        show ~engine:(Printf.sprintf "striped x%d domains x2" k) ~op rd gd;
        row ~engine:(Printf.sprintf "striped x%d domains x2" k) ~d ~n ~f:0 ~op rd
          gd;
        let rfd, gfd = run ~engine:Core.Fastpath ~domains:2 ~k op in
        check_agreement ~what:"fastpath domains=2" rfd rkf;
        check_verified ~what:"fastpath domains=2" rfd;
        show ~engine:(Printf.sprintf "striped x%d fastpath domains x2" k) ~op
          rfd gfd;
        row ~engine:(Printf.sprintf "striped x%d fastpath domains x2" k) ~d ~n
          ~f:0 ~op rfd gfd;
        ignore
          (pair ~bidirectional:true ~what:"striped bidir"
             ~label:(Printf.sprintf "striped x%d bidir" k)
             ~k ~f:0 op)
      end)
    ops;
  (* Link faults: kill one ring's edge and stripe over the survivors. *)
  let st = List.hd (Core.Compose.disjoint_streams_upto ~d ~n ~k:1) in
  let u = st.Core.Stream.start in
  let edge_faults = [ (u, st.Core.Stream.succ u) ] in
  let rf, _ =
    pair ~edge_faults ~what:"striped survivors" ~label:"striped survivors" ~k
      ~f:1 Core.Collective_schedule.Allreduce
  in
  if rf.Core.Collective_exec.rings <> k - 1 then
    failwith "collective: one link fault should kill exactly one ring"

(* The at-scale fastpath rows: instances the netsim engine cannot touch
   in CI time, with their bytes/second figures.  The smoke lane runs a
   full B(2,16) bidirectional allreduce on every PR; full mode adds the
   B(2,22) (4.2M-node) FFC rows for the nightly artifact. *)
let fastpath_scale ~d ~n ~ranks ~chunk_words ~bidirectional ~fault_counts =
  let p = Core.Word.params ~d ~n in
  Printf.printf
    " fastpath at scale: FFC ring of B(%d,%d) (%d nodes), ranks %d, chunk %d words%s\n"
    d n p.Core.Word.size ranks chunk_words
    (if bidirectional then ", bidirectional" else "");
  let op = Core.Collective_schedule.Allreduce in
  List.iter
    (fun f ->
      let rng = Core.Rng.create 0x5eed in
      let faults = Core.Rng.sample_distinct rng ~k:f ~bound:p.Core.Word.size in
      let r, g =
        Jrec.time_gc (fun () ->
            Option.get
              (Core.collective_over_fault_free_ring ~engine:Core.Fastpath
                 ~bidirectional ~d ~n ~faults ~op ~ranks ~chunk_words ()))
      in
      check_verified ~what:(Printf.sprintf "fastpath scale f=%d" f) r;
      let label =
        if bidirectional then "ffc-ring bidir fastpath" else "ffc-ring fastpath"
      in
      show ~engine:(Printf.sprintf "%s f=%d" label f) ~op r g;
      Printf.printf "    bytes/second %.3e (8 x %d wire words / %.2fs)\n"
        (bytes_per_s r g) r.Core.Collective_exec.wire_words g.Jrec.wall_s;
      row ~engine:label ~d ~n ~f ~op r g)
    fault_counts

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "COLLECTIVE - ring reduce-scatter / all-gather / allreduce over embedded rings";
  print_endline (String.make 78 '-');
  if smoke then begin
    ffc_side ~d:2 ~n:10 ~ranks:16 ~chunk_words:4 ~fault_counts:[ 0; 2 ]
      ~enforce:false;
    striped_side ~d:4 ~n:5 ~ranks:16 ~chunk_words:4 ~enforce:false;
    fastpath_scale ~d:2 ~n:16 ~ranks:64 ~chunk_words:8 ~bidirectional:true
      ~fault_counts:[ 0 ]
  end
  else begin
    ffc_side ~d:2 ~n:16 ~ranks:64 ~chunk_words:8 ~fault_counts:[ 0; 8 ]
      ~enforce:true;
    striped_side ~d:4 ~n:8 ~ranks:64 ~chunk_words:8 ~enforce:true;
    fastpath_scale ~d:2 ~n:16 ~ranks:64 ~chunk_words:8 ~bidirectional:true
      ~fault_counts:[ 0 ];
    fastpath_scale ~d:2 ~n:22 ~ranks:64 ~chunk_words:1024 ~bidirectional:false
      ~fault_counts:[ 0; 8 ]
  end;
  print_newline ();
  if json then Jrec.write "BENCH_collective.json"
