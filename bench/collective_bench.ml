(* Collective traffic over embedded rings — ring reduce-scatter,
   all-gather and allreduce driven through the network simulator on (a)
   the FFC-embedded ring under node faults (Chapter 2) and (b) up to
   psi(d) edge-disjoint Hamiltonian rings under link faults (Chapter 3).

   Smoke: B(2,10) for the FFC cases and B(4,5) for striping; full:
   B(2,16) and B(4,8).  Every run exact-verifies the reduced integer
   payloads against the rank-space reference execution, so the gated
   counters (rounds, delivered, wire words, link load, checksum) are
   deterministic.  Wall times are machine-dependent; the one domain-
   sweep row carries "domains" in its engine name so the CI gate
   schema-checks it without windowing, and its checksum/rounds are
   asserted bit-identical to the sequential run here instead.

   The headline claim is enforced, not just reported: on the fault-free
   instance the k-ring striped allreduce must move at least 0.8 k times
   the application bytes per simulator step of the single-ring run. *)

let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let jbool = Jrec.jbool
let record = Jrec.record

let ops = [ Core.Collective_schedule.Reduce_scatter; All_gather; Allreduce ]

let row ~engine ~d ~n ~f ~op (r : Core.Collective_exec.report) g =
  record
    ([
       ("section", jstr "collective");
       ("d", jint d);
       ("n", jint n);
       ("op", jstr (Core.Collective_schedule.op_to_string op));
       ("engine", jstr engine);
       ("f", jint f);
     ]
    @ Jrec.gc_fields g
    @ [
        ("rings", jint r.Core.Collective_exec.rings);
        ("ranks", jint r.Core.Collective_exec.ranks);
        ("phases", jint r.Core.Collective_exec.phases);
        ("rounds", jint r.Core.Collective_exec.rounds);
        ("delivered", jint r.Core.Collective_exec.delivered);
        ("wire_words", jint r.Core.Collective_exec.wire_words);
        ("payload_words", jint r.Core.Collective_exec.payload_words);
        ("max_link_load", jint r.Core.Collective_exec.max_link_load);
        ("max_port_load", jint r.Core.Collective_exec.max_port_load);
        ("checksum", jint r.Core.Collective_exec.checksum);
        ("verified", jbool r.Core.Collective_exec.verified);
        ("bytes_per_step", jnum r.Core.Collective_exec.bytes_per_step);
      ])

let show ~engine ~op (r : Core.Collective_exec.report) g =
  Printf.printf
    "  %-13s %-22s rounds %6d  delivered %9d  B/step %8.1f  link<=%2d  ok %b  %6.2fs\n"
    (Core.Collective_schedule.op_to_string op)
    engine r.Core.Collective_exec.rounds r.Core.Collective_exec.delivered
    r.Core.Collective_exec.bytes_per_step r.Core.Collective_exec.max_link_load
    r.Core.Collective_exec.verified g.Jrec.wall_s

let check_verified ~what (r : Core.Collective_exec.report) =
  if not r.Core.Collective_exec.verified then
    failwith ("collective: exact verification failed: " ^ what)

(* Chapter-2 side: the FFC-embedded ring under seeded random node
   faults. *)
let ffc_side ~d ~n ~ranks ~chunk_words ~fault_counts =
  let p = Core.Word.params ~d ~n in
  Printf.printf " FFC ring of B(%d,%d) (%d nodes), ranks %d, chunk %d words\n" d n
    p.Core.Word.size ranks chunk_words;
  List.iter
    (fun f ->
      let rng = Core.Rng.create 0x5eed in
      let faults = Core.Rng.sample_distinct rng ~k:f ~bound:p.Core.Word.size in
      List.iter
        (fun op ->
          let r, g =
            Jrec.time_gc (fun () ->
                Option.get
                  (Core.collective_over_fault_free_ring ~d ~n ~faults ~op ~ranks
                     ~chunk_words ()))
          in
          check_verified ~what:(Printf.sprintf "ffc f=%d" f) r;
          show ~engine:(Printf.sprintf "ffc-ring f=%d" f) ~op r g;
          row ~engine:"ffc-ring" ~d ~n ~f ~op r g)
        ops)
    fault_counts

(* Chapter-3 side: striping across k edge-disjoint rings, plus the
   bidirectional and parallel-stepping variants, plus link faults. *)
let striped_side ~d ~n ~ranks ~chunk_words =
  let k = Core.Psi.psi d in
  let p = Core.Word.params ~d ~n in
  Printf.printf
    " striped rings of B(%d,%d) (%d nodes), psi(%d) = %d, ranks %d, chunk %d words\n"
    d n p.Core.Word.size d k ranks chunk_words;
  let run ?domains ?(bidirectional = false) ?(edge_faults = []) ~k op =
    Jrec.time_gc (fun () ->
        Option.get
          (Core.striped_collective_over_disjoint_rings ?domains ~bidirectional
             ~edge_faults ~d ~n ~k ~op ~ranks ~chunk_words ()))
  in
  (* k = 1 vs k = psi(d), fault-free: the striping contract. *)
  List.iter
    (fun op ->
      let r1, g1 = run ~k:1 op in
      check_verified ~what:"striped k=1" r1;
      show ~engine:"striped x1" ~op r1 g1;
      row ~engine:"striped x1" ~d ~n ~f:0 ~op r1 g1;
      let rk, gk = run ~k op in
      check_verified ~what:(Printf.sprintf "striped k=%d" k) rk;
      show ~engine:(Printf.sprintf "striped x%d" k) ~op rk gk;
      row ~engine:(Printf.sprintf "striped x%d" k) ~d ~n ~f:0 ~op rk gk;
      if op = Core.Collective_schedule.Allreduce then begin
        let gain =
          rk.Core.Collective_exec.bytes_per_step
          /. r1.Core.Collective_exec.bytes_per_step
        in
        Printf.printf "  striping gain x%.2f over one ring (floor %.2f)\n" gain
          (0.8 *. float_of_int k);
        if gain < 0.8 *. float_of_int k then
          failwith
            (Printf.sprintf
               "collective: striped allreduce gain x%.2f below the 0.8k floor"
               gain)
      end;
      (* Parallel stepping must be bit-identical to the sequential run. *)
      if op = Core.Collective_schedule.Allreduce then begin
        let rd, gd = run ~domains:2 ~k op in
        if
          rd.Core.Collective_exec.checksum <> rk.Core.Collective_exec.checksum
          || rd.Core.Collective_exec.rounds <> rk.Core.Collective_exec.rounds
          || rd.Core.Collective_exec.delivered
             <> rk.Core.Collective_exec.delivered
        then failwith "collective: domains=2 run diverged from sequential";
        check_verified ~what:"striped domains=2" rd;
        show ~engine:(Printf.sprintf "striped x%d domains x2" k) ~op rd gd;
        row ~engine:(Printf.sprintf "striped x%d domains x2" k) ~d ~n ~f:0 ~op rd
          gd;
        let rb, gb = run ~bidirectional:true ~k op in
        check_verified ~what:"striped bidir" rb;
        show ~engine:(Printf.sprintf "striped x%d bidir" k) ~op rb gb;
        row ~engine:(Printf.sprintf "striped x%d bidir" k) ~d ~n ~f:0 ~op rb gb
      end)
    ops;
  (* Link faults: kill one ring's edge and stripe over the survivors. *)
  let st = List.hd (Core.Compose.disjoint_streams_upto ~d ~n ~k:1) in
  let u = st.Core.Stream.start in
  let edge_faults = [ (u, st.Core.Stream.succ u) ] in
  let rf, gf = run ~edge_faults ~k Core.Collective_schedule.Allreduce in
  check_verified ~what:"striped survivors" rf;
  show
    ~engine:(Printf.sprintf "striped survivors/%d" k)
    ~op:Core.Collective_schedule.Allreduce rf gf;
  row ~engine:"striped survivors" ~d ~n ~f:1 ~op:Core.Collective_schedule.Allreduce
    rf gf;
  if rf.Core.Collective_exec.rings <> k - 1 then
    failwith "collective: one link fault should kill exactly one ring"

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "COLLECTIVE - ring reduce-scatter / all-gather / allreduce over embedded rings";
  print_endline (String.make 78 '-');
  if smoke then begin
    ffc_side ~d:2 ~n:10 ~ranks:16 ~chunk_words:4 ~fault_counts:[ 0; 2 ];
    striped_side ~d:4 ~n:5 ~ranks:16 ~chunk_words:4
  end
  else begin
    ffc_side ~d:2 ~n:16 ~ranks:64 ~chunk_words:8 ~fault_counts:[ 0; 8 ];
    striped_side ~d:4 ~n:8 ~ranks:64 ~chunk_words:8
  end;
  print_newline ();
  if json then Jrec.write "BENCH_collective.json"
