(* Simulator scale study (EXPERIMENTS.md "netsim at scale").

   Two workloads on fault-free B(d,n), run under the seed full-scan
   engine (Netsim.Reference) and the worklist engine (Netsim.Simulator,
   sequential and on OCaml domains):

   - flood: BFS broadcast from node 0 — each node forwards once, so
     per-round activity is only the BFS frontier.  This is the sparse
     regime the worklist engine was built for.
   - spin k: every node XOR-accumulates its inbox and forwards along
     its rotl edge for k rounds — all nodes active every round, a pure
     throughput measurement (rounds/sec with n nodes stepping).

   The section ends with the million-node acceptance run: distributed
   FFC on B(2,17) with one fault must produce the very successor map
   and cycle of the centralized Ffc.Embed construction. *)

module W = Debruijn.Word
module DG = Graphlib.Digraph
module S = Netsim.Simulator
module R = Netsim.Reference

let time = Jrec.time

(* Best-of-k wall time: scale numbers go into EXPERIMENTS.md, and min
   over a few runs is the usual way to shed scheduler noise. *)
let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let _, wall = time f in
    if wall < !best then best := wall
  done;
  !best

let no_fault _ = false

(* --json support is shared ({!Jrec}): every printed measurement is
   also recorded as a flat JSON object — wall clock and GC allocation
   counters uniformly — and dumped to BENCH_scale.json. *)
let jstr = Jrec.jstr
let jint = Jrec.jint
let jnum = Jrec.jnum
let jbool = Jrec.jbool
let record = Jrec.record

(* BFS broadcast: a node forwards to all out-neighbors on first
   receipt; node 0 kicks off in round 0 (where every node steps once,
   so the uninformed must stay silent on an empty inbox). *)
let flood g =
  {
    S.initial = (fun v -> v = 0);
    step =
      (fun ~round v informed inbox ->
        if round = 0 then
          (informed, if v = 0 then List.map (fun w -> (w, ())) (DG.succs g v) else [])
        else if informed || List.is_empty inbox then (informed, [])
        else (true, List.map (fun w -> (w, ())) (DG.succs g v)));
    wants_step = (fun _ -> false);
  }

(* Single token hopping along rotl edges for k rounds — one active
   node per round, the regime where the seed's per-round full scan is
   pure overhead.  State is the remaining hop count for the holder,
   −1 for everyone else. *)
let token g k =
  let next =
    Array.init (DG.n_nodes g) (fun v ->
        match DG.succs g v with w :: _ -> w | [] -> v)
  in
  {
    S.initial = (fun v -> if v = 1 then k else -1);
    step =
      (fun ~round:_ v st inbox ->
        let st = List.fold_left (fun _ (_, m) -> m) st inbox in
        if st > 0 then (-1, [ (next.(v), st - 1) ]) else (st, []));
    wants_step = (fun _ -> false);
  }

(* All-nodes-active round loop: k rounds of send-along-rotl. *)
let spin g k =
  let next =
    Array.init (DG.n_nodes g) (fun v ->
        match DG.succs g v with w :: _ -> w | [] -> v)
  in
  {
    S.initial = (fun v -> (v, k));
    step =
      (fun ~round:_ v (acc, rem) inbox ->
        let acc = List.fold_left (fun a (s, m) -> a lxor (s + m)) acc inbox in
        if rem = 0 then ((acc, 0), [])
        else ((acc, rem - 1), [ (next.(v), acc) ]));
    wants_step = (fun (_, rem) -> rem > 0);
  }

let row ~ctx:(d, n, workload) name (g : Jrec.gc_timed) rounds delivered =
  Printf.printf "  %-24s %8.3f s %6d rounds %10.0f rounds/s %8.2f Mmsg/s\n" name
    g.Jrec.wall_s rounds
    (float_of_int rounds /. g.Jrec.wall_s)
    (float_of_int delivered /. g.Jrec.wall_s /. 1e6);
  record
    ([
       ("section", jstr "netsim");
       ("d", jint d);
       ("n", jint n);
       ("workload", jstr workload);
       ("engine", jstr name);
     ]
    @ Jrec.gc_fields g
    @ [ ("rounds", jint rounds); ("delivered", jint delivered) ])

let engines ~ctx ~domains ~with_seed ~g proto_s proto_r =
  if with_seed then begin
    let r, gt =
      Jrec.time_gc (fun () ->
          R.run ~max_rounds:10_000 ~topology:g ~faulty:no_fault proto_r)
    in
    row ~ctx "seed full-scan" gt r.R.rounds r.R.delivered
  end
  else print_endline "  seed full-scan               (skipped: too slow at this size)";
  let r, gt = Jrec.time_gc (fun () -> proto_s ~domains:1) in
  row ~ctx "worklist" gt r.S.rounds r.S.delivered;
  if domains > 1 then begin
    let r, gt = Jrec.time_gc (fun () -> proto_s ~domains) in
    row ~ctx
      (Printf.sprintf "worklist x%d domains" domains)
      gt r.S.rounds r.S.delivered
  end

let workload ~domains ~with_seed ~d ~n ~k =
  let p = W.params ~d ~n in
  let g = Debruijn.Graph.b p in
  Printf.printf "B(%d,%d): %d nodes, %d edges\n" d n p.W.size (DG.n_edges g);
  Printf.printf " flood (frontier-sparse)\n";
  engines ~ctx:(d, n, "flood") ~domains ~with_seed ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (flood g))
    (flood g);
  Printf.printf " spin k=%d (all nodes active)\n" k;
  engines ~ctx:(d, n, "spin") ~domains ~with_seed ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (spin g k))
    (spin g k);
  let tk = 512 in
  Printf.printf " token k=%d (one node active per round)\n" tk;
  engines ~ctx:(d, n, "token") ~domains
    ~with_seed:(with_seed && p.W.size <= 20_000)
    ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (token g tk))
    (token g tk)

let distributed_acceptance ~domains =
  let p = W.params ~d:2 ~n:17 in
  let faults = [ 1 ] in
  print_endline (String.make 78 '-');
  Printf.printf
    "acceptance: distributed FFC on B(2,17) (%d nodes, f = %d) vs Ffc.Embed\n"
    p.W.size (List.length faults);
  match Ffc.Bstar.compute p ~faults with
  | None -> print_endline "  no live necklace (unexpected)"
  | Some b ->
      let emb, t_emb = time (fun () -> Ffc.Embed.of_bstar b) in
      Printf.printf "  centralized Embed.of_bstar      %8.3f s (ring length %d)\n"
        t_emb (Array.length emb.Ffc.Embed.cycle);
      let dist, t_dist = time (fun () -> Ffc.Distributed.run ~domains b) in
      let st = dist.Ffc.Distributed.stats in
      Printf.printf
        "  distributed run (x%d domains)    %8.3f s (%d rounds, %d messages)\n"
        domains t_dist st.Ffc.Distributed.total_rounds
        st.Ffc.Distributed.messages;
      let same_succ =
        dist.Ffc.Distributed.successor
        = Graphlib.Flatarr.to_array emb.Ffc.Embed.successor
      in
      let same_cycle = dist.Ffc.Distributed.cycle = emb.Ffc.Embed.cycle in
      Printf.printf "  successor maps identical: %b, cycles identical: %b\n"
        same_succ same_cycle;
      if not (same_succ && same_cycle) then
        failwith "scale: distributed FFC diverged from centralized Embed"

(* Centralized FFC at scale (EXPERIMENTS.md "centralized FFC at
   scale"): the implicit/flat pipeline sweeps B(2,17) → B(2,22) with one
   fault, each ring verified arithmetically; the frozen list-based
   reference is timed at B(2,17) only (its Digraph/Hashtbl state makes
   larger instances pointless) and the speedup is the number the
   rewrite is accountable to.  The heap column is the live major heap
   after a compaction with the embedding still referenced — the
   O(size)-words claim made measurable (the process-wide
   [top_heap_words] would be dominated by whatever section ran
   before). *)
let ffc_scale ~smoke () =
  print_endline (String.make 78 '-');
  print_endline
    "CENTRALIZED FFC AT SCALE - implicit/flat pipeline vs list-based reference";
  print_endline (String.make 78 '-');
  (* Shed the previous section's heap so GC pressure doesn't bleed into
     these timings. *)
  Gc.compact ();
  let faults = [ 1 ] in
  let p17 = W.params ~d:2 ~n:17 in
  let reps = if smoke then 2 else 5 in
  let t_imp =
    best_of reps (fun () -> ignore (Option.get (Ffc.Embed.embed p17 ~faults)))
  in
  let t_ref = best_of reps (fun () -> ignore (Ffc.Reference.embed p17 ~faults)) in
  Printf.printf
    "B(2,17), f = 1 (best of %d):\n\
    \  implicit pipeline        %8.3f s\n\
    \  list-based reference     %8.3f s\n\
    \  speedup                  %7.1fx\n"
    reps t_imp t_ref (t_ref /. t_imp);
  (* Allocation is deterministic per run, so one extra instrumented run
     per pipeline puts GC counters next to the best-of wall times. *)
  let _, gc_imp =
    Jrec.time_gc (fun () -> ignore (Option.get (Ffc.Embed.embed p17 ~faults)))
  in
  let _, gc_ref = Jrec.time_gc (fun () -> ignore (Ffc.Reference.embed p17 ~faults)) in
  record
    [
      ("section", jstr "ffc");
      ("d", jint 2);
      ("n", jint 17);
      ("pipeline", jstr "reference");
      ("wall_s", jnum t_ref);
      ("minor_words", jnum gc_ref.Jrec.minor_words);
      ("major_words", jnum gc_ref.Jrec.major_words);
      ("max_rss_kb", jint gc_ref.Jrec.max_rss_kb);
      ("speedup_vs_reference", jnum 1.0);
    ];
  record
    [
      ("section", jstr "ffc");
      ("d", jint 2);
      ("n", jint 17);
      ("pipeline", jstr "implicit");
      ("wall_s", jnum t_imp);
      ("minor_words", jnum gc_imp.Jrec.minor_words);
      ("major_words", jnum gc_imp.Jrec.major_words);
      ("max_rss_kb", jint gc_imp.Jrec.max_rss_kb);
      ("speedup_vs_reference", jnum (t_ref /. t_imp));
    ];
  let sweep = if smoke then [ 17 ] else [ 17; 18; 19; 20; 21; 22 ] in
  print_endline " implicit pipeline, one fault, ring verified arithmetically:";
  List.iter
    (fun n ->
      let p = W.params ~d:2 ~n in
      let e, gt = Jrec.time_gc (fun () -> Option.get (Ffc.Embed.embed p ~faults)) in
      let ok = Ffc.Embed.verify e in
      Gc.compact ();
      let heap = (Gc.stat ()).Gc.live_words in
      Printf.printf
        "  B(2,%2d) %9d nodes  embed %8.3f s  verify %b  live heap %6.1f Mwords\n"
        n p.W.size gt.Jrec.wall_s ok
        (float_of_int heap /. 1e6);
      record
        ([
           ("section", jstr "ffc-sweep");
           ("d", jint 2);
           ("n", jint n);
           ("nodes", jint p.W.size);
           ("pipeline", jstr "implicit");
         ]
        @ Jrec.gc_fields gt
        @ [
            ("verified", jbool ok);
            ("ring_length", jint (Ffc.Embed.length e));
            ("live_heap_words", jint heap);
          ]);
      if not ok then failwith "scale: implicit FFC ring failed verification")
    sweep

let run ?(json = false) ?(smoke = false) () =
  print_endline (String.make 78 '-');
  print_endline
    "SIMULATOR AT SCALE - seed full-scan vs worklist engine, B(4,7) .. B(2,20)";
  print_endline (String.make 78 '-');
  let domains = min 4 (Domain.recommended_domain_count ()) in
  workload ~domains ~with_seed:true ~d:4 ~n:7 ~k:32;
  if not smoke then begin
    workload ~domains ~with_seed:true ~d:2 ~n:14 ~k:32;
    workload ~domains ~with_seed:true ~d:2 ~n:17 ~k:16;
    workload ~domains ~with_seed:false ~d:2 ~n:20 ~k:8
  end;
  ffc_scale ~smoke ();
  if not smoke then distributed_acceptance ~domains;
  print_newline ();
  if json then Jrec.write "BENCH_scale.json"
