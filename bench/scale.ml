(* Simulator scale study (EXPERIMENTS.md "netsim at scale").

   Two workloads on fault-free B(d,n), run under the seed full-scan
   engine (Netsim.Reference) and the worklist engine (Netsim.Simulator,
   sequential and on OCaml domains):

   - flood: BFS broadcast from node 0 — each node forwards once, so
     per-round activity is only the BFS frontier.  This is the sparse
     regime the worklist engine was built for.
   - spin k: every node XOR-accumulates its inbox and forwards along
     its rotl edge for k rounds — all nodes active every round, a pure
     throughput measurement (rounds/sec with n nodes stepping).

   The section ends with the million-node acceptance run: distributed
   FFC on B(2,17) with one fault must produce the very successor map
   and cycle of the centralized Ffc.Embed construction. *)

module W = Debruijn.Word
module DG = Graphlib.Digraph
module S = Netsim.Simulator
module R = Netsim.Reference

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let no_fault _ = false

(* BFS broadcast: a node forwards to all out-neighbors on first
   receipt; node 0 kicks off in round 0 (where every node steps once,
   so the uninformed must stay silent on an empty inbox). *)
let flood g =
  {
    S.initial = (fun v -> v = 0);
    step =
      (fun ~round v informed inbox ->
        if round = 0 then
          (informed, if v = 0 then List.map (fun w -> (w, ())) (DG.succs g v) else [])
        else if informed || inbox = [] then (informed, [])
        else (true, List.map (fun w -> (w, ())) (DG.succs g v)));
    wants_step = (fun _ -> false);
  }

(* Single token hopping along rotl edges for k rounds — one active
   node per round, the regime where the seed's per-round full scan is
   pure overhead.  State is the remaining hop count for the holder,
   −1 for everyone else. *)
let token g k =
  let next =
    Array.init (DG.n_nodes g) (fun v ->
        match DG.succs g v with w :: _ -> w | [] -> v)
  in
  {
    S.initial = (fun v -> if v = 1 then k else -1);
    step =
      (fun ~round:_ v st inbox ->
        let st = List.fold_left (fun _ (_, m) -> m) st inbox in
        if st > 0 then (-1, [ (next.(v), st - 1) ]) else (st, []));
    wants_step = (fun _ -> false);
  }

(* All-nodes-active round loop: k rounds of send-along-rotl. *)
let spin g k =
  let next =
    Array.init (DG.n_nodes g) (fun v ->
        match DG.succs g v with w :: _ -> w | [] -> v)
  in
  {
    S.initial = (fun v -> (v, k));
    step =
      (fun ~round:_ v (acc, rem) inbox ->
        let acc = List.fold_left (fun a (s, m) -> a lxor (s + m)) acc inbox in
        if rem = 0 then ((acc, 0), [])
        else ((acc, rem - 1), [ (next.(v), acc) ]));
    wants_step = (fun (_, rem) -> rem > 0);
  }

let row name wall rounds delivered =
  Printf.printf "  %-24s %8.3f s %6d rounds %10.0f rounds/s %8.2f Mmsg/s\n" name
    wall rounds
    (float_of_int rounds /. wall)
    (float_of_int delivered /. wall /. 1e6)

let engines ~domains ~with_seed ~g proto_s proto_r =
  if with_seed then begin
    let r, wall =
      time (fun () ->
          R.run ~max_rounds:10_000 ~topology:g ~faulty:no_fault proto_r)
    in
    row "seed full-scan" wall r.R.rounds r.R.delivered
  end
  else print_endline "  seed full-scan               (skipped: too slow at this size)";
  let r, wall = time (fun () -> proto_s ~domains:1) in
  row "worklist" wall r.S.rounds r.S.delivered;
  if domains > 1 then begin
    let r, wall = time (fun () -> proto_s ~domains) in
    row (Printf.sprintf "worklist x%d domains" domains) wall r.S.rounds r.S.delivered
  end

let workload ~domains ~with_seed ~d ~n ~k =
  let p = W.params ~d ~n in
  let g = Debruijn.Graph.b p in
  Printf.printf "B(%d,%d): %d nodes, %d edges\n" d n p.W.size (DG.n_edges g);
  Printf.printf " flood (frontier-sparse)\n";
  engines ~domains ~with_seed ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (flood g))
    (flood g);
  Printf.printf " spin k=%d (all nodes active)\n" k;
  engines ~domains ~with_seed ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (spin g k))
    (spin g k);
  let tk = 512 in
  Printf.printf " token k=%d (one node active per round)\n" tk;
  engines ~domains
    ~with_seed:(with_seed && p.W.size <= 20_000)
    ~g
    (fun ~domains ->
      S.run ~max_rounds:10_000 ~domains ~topology:g ~faulty:no_fault (token g tk))
    (token g tk)

let distributed_acceptance ~domains =
  let p = W.params ~d:2 ~n:17 in
  let faults = [ 1 ] in
  print_endline (String.make 78 '-');
  Printf.printf
    "acceptance: distributed FFC on B(2,17) (%d nodes, f = %d) vs Ffc.Embed\n"
    p.W.size (List.length faults);
  match Ffc.Bstar.compute p ~faults with
  | None -> print_endline "  no live necklace (unexpected)"
  | Some b ->
      let emb, t_emb = time (fun () -> Ffc.Embed.of_bstar b) in
      Printf.printf "  centralized Embed.of_bstar      %8.3f s (ring length %d)\n"
        t_emb (Array.length emb.Ffc.Embed.cycle);
      let dist, t_dist = time (fun () -> Ffc.Distributed.run ~domains b) in
      let st = dist.Ffc.Distributed.stats in
      Printf.printf
        "  distributed run (x%d domains)    %8.3f s (%d rounds, %d messages)\n"
        domains t_dist st.Ffc.Distributed.total_rounds
        st.Ffc.Distributed.messages;
      let same_succ = dist.Ffc.Distributed.successor = emb.Ffc.Embed.successor in
      let same_cycle = dist.Ffc.Distributed.cycle = emb.Ffc.Embed.cycle in
      Printf.printf "  successor maps identical: %b, cycles identical: %b\n"
        same_succ same_cycle;
      if not (same_succ && same_cycle) then
        failwith "scale: distributed FFC diverged from centralized Embed"

let run () =
  print_endline (String.make 78 '-');
  print_endline
    "SIMULATOR AT SCALE - seed full-scan vs worklist engine, B(4,7) .. B(2,20)";
  print_endline (String.make 78 '-');
  let domains = min 4 (Domain.recommended_domain_count ()) in
  workload ~domains ~with_seed:true ~d:4 ~n:7 ~k:32;
  workload ~domains ~with_seed:true ~d:2 ~n:14 ~k:32;
  workload ~domains ~with_seed:true ~d:2 ~n:17 ~k:16;
  workload ~domains ~with_seed:false ~d:2 ~n:20 ~k:8;
  distributed_acceptance ~domains;
  print_newline ()
