(* SARIF 2.1.0 emitter for the findings, so `debruijn-lint --sarif`
   output uploads directly as a GitHub code-scanning artifact.  The
   emitter is deliberately minimal and deterministic: tool metadata
   from the rule registry (plus the synthetic R0 for malformed
   attributes), one [result] per finding, 1-based columns as the
   format requires. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rule_meta =
  ("R0", "malformed lint attribute")
  :: List.map (fun (r : Lint_rules.rule) -> (r.Lint_rules.id, r.Lint_rules.summary)) Lint_rules.all

let print (findings : Lint_rules.finding list) =
  print_string "{\n";
  print_string "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  print_string "  \"version\": \"2.1.0\",\n";
  print_string "  \"runs\": [\n";
  print_string "    {\n";
  print_string "      \"tool\": {\n";
  print_string "        \"driver\": {\n";
  print_string "          \"name\": \"debruijn-lint\",\n";
  print_string "          \"rules\": [\n";
  List.iteri
    (fun i (id, summary) ->
      Printf.printf
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}%s\n" id
        (json_escape summary)
        (if i < List.length rule_meta - 1 then "," else ""))
    rule_meta;
  print_string "          ]\n";
  print_string "        }\n";
  print_string "      },\n";
  print_string "      \"results\": [\n";
  List.iteri
    (fun i (f : Lint_rules.finding) ->
      Printf.printf
        "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
         \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
         {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d, \"startColumn\": %d}}}]}%s\n"
        f.rule_id (json_escape f.msg) (json_escape f.file) f.line (f.col + 1)
        (if i < List.length findings - 1 then "," else ""))
    findings;
  print_string "      ]\n";
  print_string "    }\n";
  print_string "  ]\n";
  print_string "}\n"
