(* Project model for the R3 reachability analysis: which compilation
   unit does a file belong to, and which units are reachable from the
   [Domain.]-using ones?

   Units are read from the dune files under the scanned roots:
   [(library (name ...) (libraries ...))] and
   [(executable/executables (name/names ...) (libraries ...))] stanzas.
   A unit's members are every .ml in its directory (nobody in this repo
   uses [(modules ...)] partitioning except bench, whose modules all
   belong to the single executable anyway).

   Reachability goes in the calling direction: code spawned by
   [Domain.spawn] in unit U can execute anything U depends on, so the
   R3 scope is the dependency closure of the units that mention
   [Domain.] — plus, for robustness when dune context is missing (lint
   fixtures, ad-hoc files), any single file that itself mentions
   [Domain.]. *)

type unit_info = {
  uname : string;  (* library name, or "exe:<dir>" for executables *)
  udir : string;  (* directory holding the dune file, '/'-normalized *)
  deps : string list;  (* values of (libraries ...), internal or not *)
}

type t = {
  units : unit_info list;
  mutable domain_units : string list;  (* units referencing Domain. *)
}

let normalize path =
  let path = if String.length path > 2 && String.sub path 0 2 = "./" then String.sub path 2 (String.length path - 2) else path in
  String.concat "/" (String.split_on_char '\\' path)

(* ---- project-root-relative path matching --------------------------- *)

(* Allowlists name files relative to the project root, but the lint
   roots may be absolute, ./-prefixed, or handed in from a parent
   directory (a dune sandbox root, `debruijn-lint ../lib`).  So a
   root-relative entry matches a scanned path when it is the whole path
   or a suffix starting at a '/' segment boundary. *)
let same_path rel path =
  let rel = normalize rel and path = normalize path in
  rel = path
  ||
  let lr = String.length rel and lp = String.length path in
  lp > lr + 1 && String.sub path (lp - lr) lr = rel && path.[lp - lr - 1] = '/'

(* [under_dir "lib" path]: is [path] inside a root-relative directory,
   wherever the root sits in the absolute path? *)
let under_dir dir path =
  let path = normalize path in
  let prefix = dir ^ "/" in
  let lpre = String.length prefix and lp = String.length path in
  (lp > lpre && String.sub path 0 lpre = prefix)
  ||
  let probe = "/" ^ prefix in
  let lpr = String.length probe in
  let rec scan i =
    i + lpr <= lp && (String.sub path i lpr = probe || scan (i + 1))
  in
  scan 0

(* ---- dune-file mining ---------------------------------------------- *)

let field name = function
  | Lint_sexp.List (Lint_sexp.Atom a :: rest) when a = name -> Some rest
  | _ -> None

let atoms l =
  List.filter_map (function Lint_sexp.Atom a -> Some a | _ -> None) l

let find_field name items = List.find_map (field name) items

let units_of_dune ~dir sexps =
  List.filter_map
    (function
      | Lint_sexp.List (Lint_sexp.Atom kind :: body)
        when kind = "library" || kind = "executable" || kind = "executables" ->
          let deps =
            match find_field "libraries" body with Some l -> atoms l | None -> []
          in
          let name =
            if kind = "library" then
              match find_field "name" body with
              | Some [ Lint_sexp.Atom n ] -> Some n
              | _ -> None
            else Some ("exe:" ^ dir)
          in
          Option.map (fun uname -> { uname; udir = dir; deps }) name
      | _ -> None)
    sexps

let rec scan_dir acc dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then scan_dir acc path
      else if entry = "dune" then
        match Lint_sexp.parse_file path with
        | sexps -> units_of_dune ~dir:(normalize dir) sexps @ acc
        | exception Lint_sexp.Error _ -> acc
      else acc)
    acc entries

let scan roots =
  let units =
    List.fold_left
      (fun acc root -> if Sys.is_directory root then scan_dir acc root else acc)
      [] roots
  in
  { units; domain_units = [] }

(* ---- membership and reachability ----------------------------------- *)

let unit_of_file t path =
  let path = normalize path in
  let dir = Filename.dirname path in
  (* the unit whose directory is the longest prefix of [dir] *)
  List.fold_left
    (fun best u ->
      let matches = dir = u.udir || String.length dir > String.length u.udir && String.sub dir 0 (String.length u.udir + 1) = u.udir ^ "/" in
      match (matches, best) with
      | false, _ -> best
      | true, Some b when String.length b.udir >= String.length u.udir -> best
      | true, _ -> Some u)
    None t.units

let mark_domain_user t path =
  match unit_of_file t path with
  | Some u when not (List.mem u.uname t.domain_units) ->
      t.domain_units <- u.uname :: t.domain_units
  | _ -> ()

(* Dependency closure of the Domain-using units, over internal units
   only (external libraries like [unix] have no entry in [t.units]). *)
let domain_reachable_units t =
  let rec close seen = function
    | [] -> seen
    | u :: rest when List.mem u seen -> close seen rest
    | u :: rest ->
        let deps =
          match List.find_opt (fun i -> i.uname = u) t.units with
          | Some i -> i.deps
          | None -> []
        in
        close (u :: seen) (deps @ rest)
  in
  close [] t.domain_units

let in_domain_scope t path =
  match unit_of_file t path with
  | Some u -> List.mem u.uname (domain_reachable_units t)
  | None -> false
