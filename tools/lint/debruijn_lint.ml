(* debruijn-lint: the invariant-enforcing static-analysis pass.

   Usage: debruijn-lint [--json] [--list-rules] PATH...

   Walks every .ml under the given paths (files or directories) with
   the rules of Lint_rules (R1-R5) and reports findings as

     file:line:col: [Rn] message

   (or a JSON array with --json).  Exit status: 0 clean, 1 findings,
   2 usage / parse errors.  Suppressions: [@lint.allow "Rn reason"] on
   an expression, [@@lint.allow ...] on a binding or structure item,
   [@@@lint.allow ...] for the rest of a module, and
   [@@lint.domain_safe "why"] for R3 (reason mandatory).

   `dune build @lint` runs this over lib/, bench/ and bin/. *)

open Ppxlib

(* ---- file collection ----------------------------------------------- *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect_ml acc (Filename.concat path entry))
      acc
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_impl path =
  let ic = open_in_bin path in
  let lexbuf = Lexing.from_channel ic in
  Lexing.set_filename lexbuf path;
  let result =
    try Ok (Parse.implementation lexbuf)
    with exn -> Error (Printexc.to_string exn)
  in
  close_in ic;
  result

(* ---- pass 1: Domain.-use detection --------------------------------- *)

let uses_domain (str : structure) =
  let found = ref false in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! longident lid =
        (match Lint_rules.flat lid with
        | "Domain" :: _ :: _ -> found := true
        | _ -> ());
        super#longident lid
    end
  in
  scan#structure str;
  !found

let mutable_labels (str : structure) =
  let tbl = Hashtbl.create 8 in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! label_declaration ld =
        if ld.pld_mutable = Mutable then Hashtbl.replace tbl ld.pld_name.txt ();
        super#label_declaration ld
    end
  in
  scan#structure str;
  tbl

(* ---- suppression-aware walker -------------------------------------- *)

let payload_string (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

class walker (rules : Lint_rules.rule list) (ctx : Lint_rules.file_ctx)
  (add : Lint_rules.finding -> unit) =
  object (self)
    inherit Ast_traverse.iter as super

    val mutable stack : string list list = []

    method private suppressed id = List.exists (fun ids -> List.mem id ids) stack

    method private emit : Lint_rules.emit =
      fun ~id ~loc msg ->
        if not (self#suppressed id) then
          add
            {
              Lint_rules.rule_id = id;
              file = ctx.Lint_rules.path;
              line = loc.loc_start.pos_lnum;
              col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              msg;
            }

    (* Rule ids suppressed by one attribute, or [] if it is not a lint
       attribute.  A [@lint.domain_safe] without a reason is itself a
       finding (the reason is the documentation R3 trades safety for). *)
    method private attr_ids (a : attribute) =
      match a.attr_name.txt with
      | "lint.allow" -> (
          match payload_string a with
          | Some s when String.trim s <> "" ->
              String.split_on_char ','
                (List.hd (String.split_on_char ' ' (String.trim s)))
          | _ ->
              self#emit ~id:"R0" ~loc:a.attr_loc
                "[@lint.allow] needs a payload: \"R1\" or \"R1,R2 reason...\"";
              [])
      | "lint.domain_safe" -> (
          match payload_string a with
          | Some s when String.trim s <> "" -> [ "R3" ]
          | _ ->
              self#emit ~id:"R3" ~loc:a.attr_loc
                "[@lint.domain_safe] requires a non-empty reason string";
              [])
      | _ -> []

    method private collect attrs = List.concat_map (fun a -> self#attr_ids a) attrs

    method private with_suppressions ids (f : unit -> unit) =
      stack <- ids :: stack;
      f ();
      stack <- List.tl stack

    method! expression e =
      self#with_suppressions (self#collect e.pexp_attributes) (fun () ->
          List.iter (fun (r : Lint_rules.rule) -> r.on_expr self#emit ctx e) rules;
          super#expression e)

    method! structure_item it =
      let inner_attrs =
        match it.pstr_desc with
        | Pstr_value (_, vbs) -> List.concat_map (fun vb -> vb.pvb_attributes) vbs
        | Pstr_module mb -> mb.pmb_attributes
        | Pstr_primitive vd -> vd.pval_attributes
        | _ -> []
      in
      self#with_suppressions (self#collect inner_attrs) (fun () ->
          List.iter (fun (r : Lint_rules.rule) -> r.on_str_item self#emit ctx it) rules;
          super#structure_item it)

    (* Floating [@@@lint.allow "..."] applies to the rest of the
       enclosing structure. *)
    method! structure items =
      let depth = List.length stack in
      List.iter
        (fun (it : structure_item) ->
          match it.pstr_desc with
          | Pstr_attribute a -> stack <- self#attr_ids a :: stack
          | _ -> self#structure_item it)
        items;
      let rec unwind l = if List.length l > depth then unwind (List.tl l) else l in
      stack <- unwind stack
  end

(* ---- reporting ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_human (f : Lint_rules.finding) =
  Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule_id f.msg

let print_json findings =
  print_string "[";
  List.iteri
    (fun i (f : Lint_rules.finding) ->
      if i > 0 then print_string ",";
      Printf.printf "\n  {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \"message\": \"%s\"}"
        f.rule_id (json_escape f.file) f.line f.col (json_escape f.msg))
    findings;
  print_string (if findings = [] then "]\n" else "\n]\n")

(* ---- driver --------------------------------------------------------- *)

let usage = "usage: debruijn-lint [--json] [--list-rules] PATH..."

let () =
  let json = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--list-rules" -> list_rules := true
        | "--help" | "-h" ->
            print_endline usage;
            exit 0
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            prerr_endline ("debruijn-lint: unknown option " ^ arg);
            prerr_endline usage;
            exit 2
        | path -> paths := path :: !paths)
    Sys.argv;
  if !list_rules then begin
    List.iter
      (fun (r : Lint_rules.rule) -> Printf.printf "%s  %s\n" r.Lint_rules.id r.Lint_rules.summary)
      Lint_rules.all;
    exit 0
  end;
  let roots = List.rev !paths in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("debruijn-lint: no such path " ^ r);
        exit 2
      end)
    roots;
  let files = List.sort String.compare (List.fold_left collect_ml [] roots) in
  (* parse everything once *)
  let parsed =
    List.filter_map
      (fun path ->
        match parse_impl path with
        | Ok str -> Some (Lint_project.normalize path, str)
        | Error msg ->
            Printf.eprintf "debruijn-lint: cannot parse %s: %s\n" path msg;
            exit 2)
      files
  in
  (* pass 1: build the unit graph and mark Domain users *)
  let project = Lint_project.scan roots in
  let file_domain = Hashtbl.create 64 in
  List.iter
    (fun (path, str) ->
      let d = uses_domain str in
      Hashtbl.replace file_domain path d;
      if d then Lint_project.mark_domain_user project path)
    parsed;
  (* pass 2: run the rules *)
  let findings = ref [] in
  List.iter
    (fun (path, str) ->
      let ctx =
        {
          Lint_rules.path;
          in_lib = String.length path >= 4 && String.sub path 0 4 = "lib/";
          domain_scope =
            Lint_project.in_domain_scope project path
            || Hashtbl.find file_domain path;
          mutable_labels = mutable_labels str;
        }
      in
      let w = new walker Lint_rules.all ctx (fun f -> findings := f :: !findings) in
      w#structure str)
    parsed;
  let findings =
    List.sort
      (fun (a : Lint_rules.finding) (b : Lint_rules.finding) ->
        match String.compare a.file b.file with
        | 0 -> (
            match Int.compare a.line b.line with
            | 0 -> (
                match Int.compare a.col b.col with
                | 0 -> String.compare a.rule_id b.rule_id
                | c -> c)
            | c -> c)
        | c -> c)
      !findings
  in
  if !json then print_json findings
  else begin
    List.iter print_human findings;
    Printf.printf "debruijn-lint: %d file(s), %d finding(s)\n" (List.length parsed)
      (List.length findings)
  end;
  exit (if findings = [] then 0 else 1)
