(* debruijn-lint: the invariant-enforcing static-analysis pass.

   Usage: debruijn-lint [--json|--sarif] [--list-rules] PATH...

   Walks every .ml under the given paths (files or directories) with
   the rules of Lint_rules (R1-R8) and reports findings as

     file:line:col: [Rn] message

   (or a JSON array with --json, or SARIF 2.1.0 with --sarif).  Exit
   status: 0 clean, 1 findings, 2 usage / parse errors.  Suppressions:
   [@lint.allow "Rn reason"] on an expression, [@@lint.allow ...] on a
   binding or structure item, [@@@lint.allow ...] for the rest of a
   module, [@@lint.domain_safe "why"] for R3 and [@lint.par_write
   "proof"] for R6 (reasons mandatory for both).  Every suppression
   must silence a live finding or the R8 audit flags it.

   `dune build @lint` runs this over lib/, bench/ and bin/. *)

open Ppxlib

(* ---- file collection ----------------------------------------------- *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect_ml acc (Filename.concat path entry))
      acc
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_impl path =
  let ic = open_in_bin path in
  let lexbuf = Lexing.from_channel ic in
  Lexing.set_filename lexbuf path;
  let result =
    try Ok (Parse.implementation lexbuf)
    with exn -> Error (Printexc.to_string exn)
  in
  close_in ic;
  result

(* ---- pass 1: per-file facts ----------------------------------------- *)

let uses_domain (str : structure) =
  let found = ref false in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! longident lid =
        (match Lint_rules.flat lid with
        | "Domain" :: _ :: _ -> found := true
        | _ -> ());
        super#longident lid
    end
  in
  scan#structure str;
  !found

let mutable_labels (str : structure) =
  let tbl = Hashtbl.create 8 in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! label_declaration ld =
        if ld.pld_mutable = Mutable then Hashtbl.replace tbl ld.pld_name.txt ();
        super#label_declaration ld
    end
  in
  scan#structure str;
  tbl

(* File-local module aliases ([module Fa = Graphlib.Flatarr] maps
   "Fa" -> "Flatarr"), so the R6/R7 vocabularies resolve aliased calls
   the way the R1-R3 path matching already resolves qualified ones. *)
let module_aliases (str : structure) =
  let tbl = Hashtbl.create 8 in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! module_binding mb =
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some alias, Pmod_ident { txt; _ } -> (
            match List.rev (Lint_rules.flat txt) with
            | target :: _ -> Hashtbl.replace tbl alias target
            | [] -> ())
        | _ -> ());
        super#module_binding mb
    end
  in
  scan#structure str;
  tbl

(* ---- suppression-aware walker -------------------------------------- *)

class walker (rules : Lint_rules.rule list) (ctx : Lint_rules.file_ctx)
  (add : Lint_rules.finding -> unit) =
  object (self)
    inherit Ast_traverse.iter as super

    (* Innermost frame first; each frame holds the suppression records
       attached to one node.  Consulting a record marks it fired — the
       R8 audit's liveness signal. *)
    val mutable stack : Lint_rules.suppression list list = []

    method private suppressed id =
      let rec go = function
        | [] -> false
        | frame :: rest -> (
            match
              List.find_opt
                (fun (s : Lint_rules.suppression) -> List.mem id s.Lint_rules.sids)
                frame
            with
            | Some s ->
                Lint_rules.fire s id;
                true
            | None -> go rest)
      in
      go stack

    method private emit : Lint_rules.emit =
      fun ~id ~loc msg ->
        if not (self#suppressed id) then
          add
            {
              Lint_rules.rule_id = id;
              file = ctx.Lint_rules.path;
              line = loc.loc_start.pos_lnum;
              col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              msg;
            }

    method private collect attrs =
      List.filter_map
        (fun a ->
          match Lint_rules.suppression_of_attr self#emit ctx a with
          | Some s when s.Lint_rules.swellformed -> Some s
          | _ -> None)
        attrs

    method private with_suppressions frame (f : unit -> unit) =
      stack <- frame :: stack;
      f ();
      stack <- List.tl stack

    method! expression e =
      let saved_ws = ctx.Lint_rules.ws_fun in
      (match e.pexp_desc with
      | Pexp_function (params, _, _) when Lint_rules.has_optional_ws_param params ->
          ctx.Lint_rules.ws_fun <- true
      | _ -> ());
      self#with_suppressions (self#collect e.pexp_attributes) (fun () ->
          List.iter (fun (r : Lint_rules.rule) -> r.on_expr self#emit ctx e) rules;
          super#expression e);
      ctx.Lint_rules.ws_fun <- saved_ws

    method! value_binding vb =
      self#with_suppressions (self#collect vb.pvb_attributes) (fun () ->
          super#value_binding vb)

    method! structure_item it =
      let inner_attrs =
        match it.pstr_desc with
        | Pstr_value (_, vbs) -> List.concat_map (fun vb -> vb.pvb_attributes) vbs
        | Pstr_module mb -> mb.pmb_attributes
        | Pstr_primitive vd -> vd.pval_attributes
        | _ -> []
      in
      self#with_suppressions (self#collect inner_attrs) (fun () ->
          List.iter (fun (r : Lint_rules.rule) -> r.on_str_item self#emit ctx it) rules;
          super#structure_item it)

    (* Floating [@@@lint.allow "..."] applies to the rest of the
       enclosing structure. *)
    method! structure items =
      let depth = List.length stack in
      List.iter
        (fun (it : structure_item) ->
          match it.pstr_desc with
          | Pstr_attribute a -> stack <- self#collect [ a ] :: stack
          | _ -> self#structure_item it)
        items;
      let rec unwind l = if List.length l > depth then unwind (List.tl l) else l in
      stack <- unwind stack
  end

(* ---- reporting ------------------------------------------------------ *)

let json_escape = Lint_sarif.json_escape

let print_human (f : Lint_rules.finding) =
  Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule_id f.msg

let print_json findings =
  print_string "[";
  List.iteri
    (fun i (f : Lint_rules.finding) ->
      if i > 0 then print_string ",";
      Printf.printf "\n  {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \"message\": \"%s\"}"
        f.rule_id (json_escape f.file) f.line f.col (json_escape f.msg))
    findings;
  print_string (if findings = [] then "]\n" else "\n]\n")

let print_rules_json () =
  print_string "[";
  List.iteri
    (fun i (r : Lint_rules.rule) ->
      if i > 0 then print_string ",";
      Printf.printf "\n  {\"id\": \"%s\", \"summary\": \"%s\"}" r.Lint_rules.id
        (json_escape r.Lint_rules.summary))
    Lint_rules.all;
  print_string "\n]\n"

(* ---- driver --------------------------------------------------------- *)

let usage = "usage: debruijn-lint [--json|--sarif] [--list-rules] PATH..."

let () =
  let json = ref false in
  let sarif = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--sarif" -> sarif := true
        | "--list-rules" -> list_rules := true
        | "--help" | "-h" ->
            print_endline usage;
            exit 0
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            prerr_endline ("debruijn-lint: unknown option " ^ arg);
            prerr_endline usage;
            exit 2
        | path -> paths := path :: !paths)
    Sys.argv;
  if !list_rules then begin
    if !json then print_rules_json ()
    else
      List.iter
        (fun (r : Lint_rules.rule) ->
          Printf.printf "%s  %s\n" r.Lint_rules.id r.Lint_rules.summary)
        Lint_rules.all;
    exit 0
  end;
  let roots = List.rev !paths in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("debruijn-lint: no such path " ^ r);
        exit 2
      end)
    roots;
  let files = List.sort String.compare (List.fold_left collect_ml [] roots) in
  (* parse everything once *)
  let parsed =
    List.filter_map
      (fun path ->
        match parse_impl path with
        | Ok str -> Some (Lint_project.normalize path, str)
        | Error msg ->
            Printf.eprintf "debruijn-lint: cannot parse %s: %s\n" path msg;
            exit 2)
      files
  in
  (* pass 1: build the unit graph and mark Domain users *)
  let project = Lint_project.scan roots in
  let file_domain = Hashtbl.create 64 in
  List.iter
    (fun (path, str) ->
      let d = uses_domain str in
      Hashtbl.replace file_domain path d;
      if d then Lint_project.mark_domain_user project path)
    parsed;
  (* pass 2: run the rules, then audit each file's suppressions (R8) *)
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (path, str) ->
      let ctx =
        {
          Lint_rules.path;
          in_lib = Lint_project.under_dir "lib" path;
          domain_scope =
            Lint_project.in_domain_scope project path
            || Hashtbl.find file_domain path;
          mutable_labels = mutable_labels str;
          aliases = module_aliases str;
          suppressions = Hashtbl.create 16;
          ws_fun = false;
        }
      in
      let w = new walker Lint_rules.all ctx add in
      w#structure str;
      Lint_rules.audit_suppressions ctx add)
    parsed;
  let findings =
    (* the R6/R7 sub-scans and the walker can meet the same node twice
       (e.g. a [@lint.hot] closure inside another hot scope); identical
       findings collapse *)
    List.sort_uniq
      (fun (a : Lint_rules.finding) (b : Lint_rules.finding) ->
        match String.compare a.file b.file with
        | 0 -> (
            match Int.compare a.line b.line with
            | 0 -> (
                match Int.compare a.col b.col with
                | 0 -> (
                    match String.compare a.rule_id b.rule_id with
                    | 0 -> String.compare a.msg b.msg
                    | c -> c)
                | c -> c)
            | c -> c)
        | c -> c)
      !findings
  in
  if !sarif then Lint_sarif.print findings
  else if !json then print_json findings
  else begin
    List.iter print_human findings;
    Printf.printf "debruijn-lint: %d file(s), %d finding(s)\n" (List.length parsed)
      (List.length findings)
  end;
  exit (if findings = [] then 0 else 1)
