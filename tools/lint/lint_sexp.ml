(* A minimal s-expression reader, just enough for dune files: atoms,
   double-quoted strings, nested lists, and [;] line comments.  No
   attempt at dune's %{...} forms beyond treating them as atoms. *)

type t = Atom of string | List of t list

exception Error of string

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blanks () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blanks ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_blanks ()
    | _ -> ()
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None -> stop := true
      | Some _ -> advance ()
    done;
    Atom (String.sub src start (!pos - start))
  in
  let read_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let stop = ref false in
    while not !stop do
      match peek () with
      | None -> raise (Error "unterminated string")
      | Some '"' ->
          advance ();
          stop := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> raise (Error "unterminated escape"))
      | Some c ->
          Buffer.add_char buf c;
          advance ()
    done;
    Atom (Buffer.contents buf)
  in
  let rec read_one () =
    skip_blanks ();
    match peek () with
    | None -> raise (Error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let stop = ref false in
        while not !stop do
          skip_blanks ();
          match peek () with
          | Some ')' ->
              advance ();
              stop := true
          | None -> raise (Error "unbalanced parenthesis")
          | Some _ -> items := read_one () :: !items
        done;
        List (List.rev !items)
    | Some ')' -> raise (Error "unexpected )")
    | Some '"' -> read_quoted ()
    | Some _ -> read_atom ()
  in
  let items = ref [] in
  skip_blanks ();
  while !pos < n do
    items := read_one () :: !items;
    skip_blanks ()
  done;
  List.rev !items

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
