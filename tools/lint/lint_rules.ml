(* The rule registry: each project invariant is a [rule] with hooks the
   AST walker calls at every expression / structure item.  Rules are
   purely syntactic (no type information), so each one errs on the side
   of flagging and offers an escape hatch:

   - any finding can be silenced with [@lint.allow "Rn reason"] (on the
     expression), [@@lint.allow "Rn reason"] (on the enclosing binding /
     item) or [@@@lint.allow "Rn reason"] (rest of the module), where
     the first token of the payload is a comma-separated rule-id list;
   - R3 additionally accepts the dedicated [@@lint.domain_safe "why"],
     whose reason string is mandatory.

   See DESIGN.md "Enforced invariants" for each rule's rationale. *)

open Ppxlib

type finding = {
  rule_id : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type file_ctx = {
  path : string;  (* normalized, relative to the lint root *)
  in_lib : bool;
  domain_scope : bool;  (* file is in R3's reachability scope *)
  mutable_labels : (string, unit) Hashtbl.t;
      (* record labels declared [mutable] anywhere in this file *)
}

type emit = id:string -> loc:Location.t -> string -> unit

type rule = {
  id : string;
  summary : string;
  on_expr : emit -> file_ctx -> expression -> unit;
  on_str_item : emit -> file_ctx -> structure_item -> unit;
}

let no_expr (_ : emit) (_ : file_ctx) (_ : expression) = ()
let no_str_item (_ : emit) (_ : file_ctx) (_ : structure_item) = ()

(* Longident components, [Lapply]-safe: [Stdlib.Random.int] ->
   ["Stdlib"; "Random"; "int"]. *)
let rec flat = function
  | Lident s -> [ s ]
  | Ldot (l, s) -> flat l @ [ s ]
  | Lapply (l, _) -> flat l

let last_exn comps = List.nth comps (List.length comps - 1)
let dotted comps = String.concat "." comps

(* ------------------------------------------------------------------ *)
(* R1 — determinism: no ambient randomness or wall clock.  Seeded
   campaigns (Util.Rng substreams) are the only randomness source and
   bench/jrec.ml the only timing wrapper, so every reported statistic
   is reproducible (PR 1's bit-identical [?domains] contract). *)

let r1_allowed_files = [ "lib/util/rng.ml"; "bench/jrec.ml" ]

let r1_banned comps =
  if List.mem "Random" comps then
    Some (Printf.sprintf "%s: ambient PRNG breaks seeded reproducibility; use Util.Rng" (dotted comps))
  else
    match comps with
    | [ "Unix"; ("gettimeofday" | "time") ] ->
        Some
          (Printf.sprintf
             "%s: wall clock outside bench/jrec.ml makes runs non-reproducible" (dotted comps))
    | _ -> None

let r1 =
  {
    id = "R1";
    summary = "no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml";
    on_expr =
      (fun emit ctx e ->
        if not (List.mem ctx.path r1_allowed_files) then
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match r1_banned (flat txt) with
              | Some msg -> emit ~id:"R1" ~loc msg
              | None -> ())
          | _ -> ());
    on_str_item =
      (fun emit ctx it ->
        if not (List.mem ctx.path r1_allowed_files) then
          let check_mod (m : module_expr) =
            match m.pmod_desc with
            | Pmod_ident { txt; loc } when List.mem "Random" (flat txt) ->
                emit ~id:"R1" ~loc
                  (Printf.sprintf "aliasing/opening %s smuggles the ambient PRNG in" (dotted (flat txt)))
            | _ -> ()
          in
          match it.pstr_desc with
          | Pstr_module mb -> check_mod mb.pmb_expr
          | Pstr_open od -> check_mod od.popen_expr
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R2 — no polymorphic compare / hash on structured values.  PR 1's
   inbox-sort bug: polymorphic [compare] over [(src, payload)] pairs
   raised on closure payloads and ordered records by declaration
   accident.  Syntactic approximation: ban the bare [compare] /
   [Hashtbl.hash] identifiers everywhere, and [=] / [<>] whenever one
   operand is syntactically structured (list, option, tuple, record,
   array, string/float constant, constructor with arguments). *)

(* The frozen seed oracles keep their documented polymorphic-compare
   semantics verbatim. *)
let r2_allowed_files =
  [ "lib/netsim/reference.ml"; "lib/ffc/reference.ml"; "lib/dhc/reference.ml" ]

let rec structured e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> structured e
  | Pexp_construct ({ txt = Lident ("::" | "[]" | "None" | "Some"); _ }, _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_lazy _ -> true
  | Pexp_constant (Pconst_string _ | Pconst_float _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let r2 =
  {
    id = "R2";
    summary = "no polymorphic =/compare/Hashtbl.hash on structured values";
    on_expr =
      (fun emit ctx e ->
        if not (List.mem ctx.path r2_allowed_files) then
          match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc }; _ },
                [ (_, a); (_, b) ] )
            when structured a || structured b ->
              emit ~id:"R2" ~loc
                (Printf.sprintf
                   "polymorphic (%s) on a structured value; pattern-match or use a typed \
                    equality" op)
          | Pexp_ident { txt; loc } -> (
              match flat txt with
              | [ "compare" ] | [ "Stdlib"; "compare" ] ->
                  emit ~id:"R2" ~loc
                    "bare polymorphic compare; use a typed comparator (Int.compare, ...)"
              | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
                  emit ~id:"R2" ~loc "polymorphic Hashtbl.hash; use a typed hash function"
              | _ -> ())
          | _ -> ());
    on_str_item = no_str_item;
  }

(* ------------------------------------------------------------------ *)
(* R3 — no mutable toplevel state in code reachable from the
   [Domain.]-using units (Graphlib.Itopo, Ffc.Campaign, Dhc.Campaign,
   Netsim.Simulator, and the bench executable): shared toplevel cells
   race under [Domain.spawn], and toplevel [lazy] forcing raises
   across domains.  Annotate genuinely safe state with
   [@@lint.domain_safe "why"]. *)

let mutable_modules =
  [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Bytes"; "Array"; "Weak"; "Dynarray";
    "Atomic"; "Flatarr"; "Sched" ]

let mutable_makers =
  [ "create"; "make"; "init"; "of_list"; "of_seq"; "of_array"; "make_matrix"; "copy";
    "append"; "concat"; "sub" ]

let rec r3_init_shape ctx e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> r3_init_shape ctx e
  | Pexp_lazy _ -> Some "a toplevel lazy (concurrent Lazy.force raises across domains)"
  | Pexp_array _ -> Some "a toplevel array literal"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : longident_loc), _) ->
             Hashtbl.mem ctx.mutable_labels (last_exn (flat txt)))
           fields ->
      Some "a record with mutable fields"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flat txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
      | comps -> (
          (* Strip one qualifying prefix so [Stdlib.Atomic.make],
             [Graphlib.Flatarr.create] and the bare aliases all land on
             the same module-path + maker shape. *)
          let comps =
            match comps with ("Stdlib" | "Graphlib") :: rest -> rest | _ -> comps
          in
          match comps with
          | [ m; f ] when List.mem m mutable_modules && List.mem f mutable_makers ->
              Some (Printf.sprintf "a mutable %s.%s" m f)
          | [ "Flatarr"; (("Byte" | "Arena") as sub); f ] when List.mem f mutable_makers ->
              Some (Printf.sprintf "an off-heap Flatarr.%s.%s" sub f)
          | [ "Bigarray"; "Array1"; f ] when List.mem f mutable_makers ->
              Some (Printf.sprintf "a mutable Bigarray.Array1.%s" f)
          | _ -> None))
  | _ -> None

let r3 =
  {
    id = "R3";
    summary = "no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])";
    on_expr = no_expr;
    on_str_item =
      (fun emit ctx it ->
        if ctx.domain_scope then
          match it.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match r3_init_shape ctx vb.pvb_expr with
                  | Some what ->
                      emit ~id:"R3" ~loc:vb.pvb_loc
                        (Printf.sprintf
                           "toplevel binding holds %s, shared under Domain.spawn; hoist it \
                            into the runtime state or annotate [@@lint.domain_safe \
                            \"why\"]" what)
                  | None -> ())
                vbs
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R4 — arena confinement (DESIGN.md §5): [Ffc.Workspace] internals are
   private to the pipeline stages, and a function taking [?ws] may
   thread the arena along or project its fields, but must not package
   the handle itself into returned/stored data (that silently extends
   arena lifetime past the aliasing contract).  The Bigarray backing
   has the same lifetime discipline: [Flatarr.Arena.carve]/[carve_byte]
   hand out aliasing views, so carving is confined to the workspace and
   Itopo scratch constructors (and Flatarr itself). *)

let r4_arena_file path =
  String.length path >= 8 && String.sub path 0 8 = "lib/ffc/" || path = "lib/graphlib/itopo.ml"

let r4_carve_files =
  [ "lib/ffc/workspace.ml"; "lib/graphlib/itopo.ml"; "lib/graphlib/flatarr.ml" ]

(* Alias-robust: matches [Flatarr.Arena.carve], [Fa.Arena.carve_byte],
   [Graphlib.Flatarr.Arena.carve], ... *)
let r4_carve_access comps =
  match List.rev comps with
  | (("carve" | "carve_byte") as f) :: "Arena" :: _ -> Some f
  | _ -> None

let r4_public_workspace_values = [ "create"; "check" ]

let r4_workspace_access comps =
  match List.rev comps with
  | value :: "Workspace" :: _ when not (List.mem value r4_public_workspace_values) -> Some value
  | _ -> None

let rec is_ws_ident e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> is_ws_ident e
  | Pexp_ident { txt = Lident "ws"; _ } -> true
  | _ -> false

let has_optional_ws_param params =
  List.exists
    (fun p ->
      match p.pparam_desc with
      | Pparam_val (Optional "ws", _, _) -> true
      | _ -> false)
    params

(* Packaging shapes: the arena handle appearing as a component of a
   tuple / record / constructor argument / array literal. *)
let r4_packaging e =
  match e.pexp_desc with
  | Pexp_tuple parts | Pexp_array parts -> List.exists is_ws_ident parts
  | Pexp_record (fields, _) -> List.exists (fun (_, v) -> is_ws_ident v) fields
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> (
      is_ws_ident arg
      || match arg.pexp_desc with Pexp_tuple parts -> List.exists is_ws_ident parts | _ -> false)
  | _ -> false

let r4 =
  {
    id = "R4";
    summary =
      "arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws \
       never escapes into data";
    on_expr =
      (fun emit ctx e ->
        (if not (List.mem ctx.path r4_carve_files) then
           match e.pexp_desc with
           | Pexp_ident { txt; loc } -> (
               match r4_carve_access (flat txt) with
               | Some f ->
                   emit ~id:"R4" ~loc
                     (Printf.sprintf
                        "Arena.%s: carving hands out aliasing views; arenas are carved only \
                         by the Workspace and Itopo scratch constructors" f)
               | None -> ())
           | _ -> ());
        if not (r4_arena_file ctx.path) then
          match e.pexp_desc with
          | Pexp_ident { txt; loc } | Pexp_field (_, { txt; loc }) -> (
              match r4_workspace_access (flat txt) with
              | Some value ->
                  emit ~id:"R4" ~loc
                    (Printf.sprintf
                       "Workspace.%s: arena internals are private to the FFC pipeline; \
                        consume results through the documented record fields" value)
              | None -> ())
          | Pexp_function (params, _, Pfunction_body body) when has_optional_ws_param params ->
              let scan =
                object
                  inherit Ast_traverse.iter as super

                  method! expression inner =
                    (if r4_packaging inner then
                       let silenced =
                         List.exists
                           (fun (a : attribute) ->
                             a.attr_name.txt = "lint.allow" || a.attr_name.txt = "lint.domain_safe")
                           inner.pexp_attributes
                       in
                       if not silenced then
                         emit ~id:"R4" ~loc:inner.pexp_loc
                           "the ?ws arena handle escapes into a data structure; pass it as \
                            an argument or project the documented fields instead");
                    super#expression inner
                end
              in
              scan#expression body
          | _ -> ());
    on_str_item = no_str_item;
  }

(* ------------------------------------------------------------------ *)
(* R5 — no unsafe casts anywhere; no Printf in libraries (Fmt/Logs
   only, so output is composable and silenceable). *)

let r5 =
  {
    id = "R5";
    summary = "no Obj.magic/%identity; no Printf in lib/";
    on_expr =
      (fun emit ctx e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match flat txt with
            | "Obj" :: _ :: _ | "Stdlib" :: "Obj" :: _ ->
                emit ~id:"R5" ~loc (Printf.sprintf "%s: Obj breaks type safety" (dotted (flat txt)))
            | ("Printf" :: _ :: _ | "Stdlib" :: "Printf" :: _) when ctx.in_lib ->
                emit ~id:"R5" ~loc
                  (Printf.sprintf "%s in a library; use Fmt (or Logs) instead" (dotted (flat txt)))
            | _ -> ())
        | _ -> ());
    on_str_item =
      (fun emit _ctx it ->
        match it.pstr_desc with
        | Pstr_primitive vd when List.exists (fun p -> p = "%identity") vd.pval_prim ->
            emit ~id:"R5" ~loc:vd.pval_loc "external %identity is an unchecked cast"
        | _ -> ());
  }

let all = [ r1; r2; r3; r4; r5 ]
