(* The rule registry: each project invariant is a [rule] with hooks the
   AST walker calls at every expression / structure item.  Rules are
   purely syntactic (no type information), so each one errs on the side
   of flagging and offers an escape hatch:

   - any finding can be silenced with [@lint.allow "Rn reason"] (on the
     expression), [@@lint.allow "Rn reason"] (on the enclosing binding /
     item) or [@@@lint.allow "Rn reason"] (rest of the module), where
     the first token of the payload is a comma-separated rule-id list;
   - R3 additionally accepts the dedicated [@@lint.domain_safe "why"],
     whose reason string is mandatory;
   - R6 additionally accepts the dedicated [@lint.par_write "proof"]
     (any of the three attribute positions), reason mandatory.

   Every suppression is registered in the per-file [file_ctx] and must
   silence at least one live finding per listed rule id, or the R8
   audit reports the attribute itself (see the driver).

   See DESIGN.md "Enforced invariants" for each rule's rationale. *)

open Ppxlib
module SS = Set.Make (String)

type finding = {
  rule_id : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

(* One suppression attribute: which rule ids it may silence, and which
   of them it actually silenced ([sfired]) — the R8 audit's input.
   Malformed attributes ([swellformed] = false) silence nothing; their
   own finding is emitted once, at registration. *)
type suppression = {
  skind : string;  (* "lint.allow" | "lint.domain_safe" | "lint.par_write" *)
  sloc : Location.t;
  sids : string list;
  swellformed : bool;
  mutable sfired : string list;
}

type file_ctx = {
  path : string;  (* normalized, relative to the lint root *)
  in_lib : bool;
  domain_scope : bool;  (* file is in R3's reachability scope *)
  mutable_labels : (string, unit) Hashtbl.t;
      (* record labels declared [mutable] anywhere in this file *)
  aliases : (string, string) Hashtbl.t;
      (* module aliases in this file: [module Fa = Graphlib.Flatarr]
         maps "Fa" -> "Flatarr", so R6/R7 resolve aliased calls the way
         R1-R3 resolve qualified paths *)
  suppressions : (int, suppression) Hashtbl.t;
      (* every lint suppression attribute seen in this file, keyed by
         its start offset (unique per attribute) *)
  mutable ws_fun : bool;  (* inside a function taking ?ws (R4 scope) *)
}

type emit = id:string -> loc:Location.t -> string -> unit

type rule = {
  id : string;
  summary : string;
  on_expr : emit -> file_ctx -> expression -> unit;
  on_str_item : emit -> file_ctx -> structure_item -> unit;
}

let no_expr (_ : emit) (_ : file_ctx) (_ : expression) = ()
let no_str_item (_ : emit) (_ : file_ctx) (_ : structure_item) = ()

(* Longident components, [Lapply]-safe: [Stdlib.Random.int] ->
   ["Stdlib"; "Random"; "int"]. *)
let rec flat = function
  | Lident s -> [ s ]
  | Ldot (l, s) -> flat l @ [ s ]
  | Lapply (l, _) -> flat l

let last_exn comps = List.nth comps (List.length comps - 1)
let dotted comps = String.concat "." comps

(* ---- suppression attributes ---------------------------------------- *)

let payload_string (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let fire s id = if not (List.mem id s.sfired) then s.sfired <- id :: s.sfired

(* Parse-and-register one attribute.  Returns [None] for non-lint
   attributes.  The walker and the R6/R7 sub-scans may both visit the
   same attribute; the registry keeps one record per source location,
   so a malformed attribute is reported exactly once. *)
let suppression_of_attr (emit : emit) ctx (a : attribute) : suppression option =
  let kind = a.attr_name.txt in
  if kind <> "lint.allow" && kind <> "lint.domain_safe" && kind <> "lint.par_write"
  then None
  else
    let key = a.attr_loc.loc_start.pos_cnum in
    match Hashtbl.find_opt ctx.suppressions key with
    | Some s -> Some s
    | None ->
        let register sids swellformed =
          let s = { skind = kind; sloc = a.attr_loc; sids; swellformed; sfired = [] } in
          Hashtbl.replace ctx.suppressions key s;
          Some s
        in
        let reason =
          match payload_string a with Some s -> String.trim s | None -> ""
        in
        (match kind with
        | "lint.allow" ->
            if reason <> "" then
              register
                (String.split_on_char ',' (List.hd (String.split_on_char ' ' reason)))
                true
            else begin
              emit ~id:"R0" ~loc:a.attr_loc
                "[@lint.allow] needs a payload: \"R1\" or \"R1,R2 reason...\"";
              register [] false
            end
        | "lint.domain_safe" ->
            if reason <> "" then register [ "R3" ] true
            else begin
              emit ~id:"R3" ~loc:a.attr_loc
                "[@lint.domain_safe] requires a non-empty reason string";
              register [] false
            end
        | _ (* lint.par_write *) ->
            if reason <> "" then register [ "R6" ] true
            else begin
              emit ~id:"R6" ~loc:a.attr_loc
                "[@lint.par_write] requires a non-empty reason string";
              register [] false
            end)

let has_attr name attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = name) attrs

(* ---- small AST helpers shared by R6/R7 ----------------------------- *)

let pat_vars p =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !acc

(* Does [e] mention any of [names] as a bare identifier? *)
let mentions names e =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident s; _ } when SS.mem s names -> found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !found

(* The root variable of a write target: [exp.bufs.(slot)] roots at
   [exp], [a.(i).(j)] at [a].  [None] for module-qualified or computed
   targets — those are captured by definition. *)
let rec target_root e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident s; _ } -> Some s
  | Pexp_constraint (e, _) | Pexp_field (e, _) -> target_root e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _)
    when (match List.rev (flat txt) with
         | ("get" | "unsafe_get" | "!") :: _ -> true
         | _ -> false) ->
      target_root a
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R1 — determinism: no ambient randomness or wall clock.  Seeded
   campaigns (Util.Rng substreams) are the only randomness source and
   bench/jrec.ml the only timing wrapper, so every reported statistic
   is reproducible (PR 1's bit-identical [?domains] contract). *)

let r1_allowed_files = [ "lib/util/rng.ml"; "bench/jrec.ml" ]
let path_allowed files path = List.exists (fun f -> Lint_project.same_path f path) files

let r1_banned comps =
  if List.mem "Random" comps then
    Some (Printf.sprintf "%s: ambient PRNG breaks seeded reproducibility; use Util.Rng" (dotted comps))
  else
    match comps with
    | [ "Unix"; ("gettimeofday" | "time") ] ->
        Some
          (Printf.sprintf
             "%s: wall clock outside bench/jrec.ml makes runs non-reproducible" (dotted comps))
    | _ -> None

let r1 =
  {
    id = "R1";
    summary = "no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml";
    on_expr =
      (fun emit ctx e ->
        if not (path_allowed r1_allowed_files ctx.path) then
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match r1_banned (flat txt) with
              | Some msg -> emit ~id:"R1" ~loc msg
              | None -> ())
          | _ -> ());
    on_str_item =
      (fun emit ctx it ->
        if not (path_allowed r1_allowed_files ctx.path) then
          let check_mod (m : module_expr) =
            match m.pmod_desc with
            | Pmod_ident { txt; loc } when List.mem "Random" (flat txt) ->
                emit ~id:"R1" ~loc
                  (Printf.sprintf "aliasing/opening %s smuggles the ambient PRNG in" (dotted (flat txt)))
            | _ -> ()
          in
          match it.pstr_desc with
          | Pstr_module mb -> check_mod mb.pmb_expr
          | Pstr_open od -> check_mod od.popen_expr
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R2 — no polymorphic compare / hash on structured values.  PR 1's
   inbox-sort bug: polymorphic [compare] over [(src, payload)] pairs
   raised on closure payloads and ordered records by declaration
   accident.  Syntactic approximation: ban the bare [compare] /
   [Hashtbl.hash] identifiers everywhere, and [=] / [<>] whenever one
   operand is syntactically structured (list, option, tuple, record,
   array, string/float constant, constructor with arguments). *)

(* The frozen seed oracles keep their documented polymorphic-compare
   semantics verbatim. *)
let r2_allowed_files =
  [ "lib/netsim/reference.ml"; "lib/ffc/reference.ml"; "lib/dhc/reference.ml" ]

let rec structured e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> structured e
  | Pexp_construct ({ txt = Lident ("::" | "[]" | "None" | "Some"); _ }, _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_lazy _ -> true
  | Pexp_constant (Pconst_string _ | Pconst_float _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let r2 =
  {
    id = "R2";
    summary = "no polymorphic =/compare/Hashtbl.hash on structured values";
    on_expr =
      (fun emit ctx e ->
        if not (path_allowed r2_allowed_files ctx.path) then
          match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc }; _ },
                [ (_, a); (_, b) ] )
            when structured a || structured b ->
              emit ~id:"R2" ~loc
                (Printf.sprintf
                   "polymorphic (%s) on a structured value; pattern-match or use a typed \
                    equality" op)
          | Pexp_ident { txt; loc } -> (
              match flat txt with
              | [ "compare" ] | [ "Stdlib"; "compare" ] ->
                  emit ~id:"R2" ~loc
                    "bare polymorphic compare; use a typed comparator (Int.compare, ...)"
              | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
                  emit ~id:"R2" ~loc "polymorphic Hashtbl.hash; use a typed hash function"
              | _ -> ())
          | _ -> ());
    on_str_item = no_str_item;
  }

(* ------------------------------------------------------------------ *)
(* R3 — no mutable toplevel state in code reachable from the
   [Domain.]-using units (Graphlib.Itopo, Ffc.Campaign, Dhc.Campaign,
   Netsim.Simulator, and the bench executable): shared toplevel cells
   race under [Domain.spawn], and toplevel [lazy] forcing raises
   across domains.  Annotate genuinely safe state with
   [@@lint.domain_safe "why"]. *)

let mutable_modules =
  [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Bytes"; "Array"; "Weak"; "Dynarray";
    "Atomic"; "Flatarr"; "Sched" ]

let mutable_makers =
  [ "create"; "make"; "init"; "of_list"; "of_seq"; "of_array"; "make_matrix"; "copy";
    "append"; "concat"; "sub" ]

let rec r3_init_shape ctx e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> r3_init_shape ctx e
  | Pexp_lazy _ -> Some "a toplevel lazy (concurrent Lazy.force raises across domains)"
  | Pexp_array _ -> Some "a toplevel array literal"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : longident_loc), _) ->
             Hashtbl.mem ctx.mutable_labels (last_exn (flat txt)))
           fields ->
      Some "a record with mutable fields"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flat txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
      | comps -> (
          (* Strip one qualifying prefix so [Stdlib.Atomic.make],
             [Graphlib.Flatarr.create] and the bare aliases all land on
             the same module-path + maker shape. *)
          let comps =
            match comps with ("Stdlib" | "Graphlib") :: rest -> rest | _ -> comps
          in
          match comps with
          | [ m; f ] when List.mem m mutable_modules && List.mem f mutable_makers ->
              Some (Printf.sprintf "a mutable %s.%s" m f)
          | [ "Flatarr"; (("Byte" | "Arena") as sub); f ] when List.mem f mutable_makers ->
              Some (Printf.sprintf "an off-heap Flatarr.%s.%s" sub f)
          | [ "Bigarray"; "Array1"; f ] when List.mem f mutable_makers ->
              Some (Printf.sprintf "a mutable Bigarray.Array1.%s" f)
          | _ -> None))
  | _ -> None

let r3 =
  {
    id = "R3";
    summary = "no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])";
    on_expr = no_expr;
    on_str_item =
      (fun emit ctx it ->
        if ctx.domain_scope then
          match it.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match r3_init_shape ctx vb.pvb_expr with
                  | Some what ->
                      emit ~id:"R3" ~loc:vb.pvb_loc
                        (Printf.sprintf
                           "toplevel binding holds %s, shared under Domain.spawn; hoist it \
                            into the runtime state or annotate [@@lint.domain_safe \
                            \"why\"]" what)
                  | None -> ())
                vbs
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R4 — arena confinement (DESIGN.md §5): [Ffc.Workspace] internals are
   private to the pipeline stages, and a function taking [?ws] may
   thread the arena along or project its fields, but must not package
   the handle itself into returned/stored data (that silently extends
   arena lifetime past the aliasing contract).  The Bigarray backing
   has the same lifetime discipline: [Flatarr.Arena.carve]/[carve_byte]
   hand out aliasing views, so carving is confined to the workspace and
   Itopo scratch constructors (and Flatarr itself). *)

let r4_arena_file path =
  Lint_project.under_dir "lib/ffc" path
  || Lint_project.same_path "lib/graphlib/itopo.ml" path

let r4_carve_files =
  [ "lib/ffc/workspace.ml"; "lib/graphlib/itopo.ml"; "lib/graphlib/flatarr.ml" ]

(* Alias-robust: matches [Flatarr.Arena.carve], [Fa.Arena.carve_byte],
   [Graphlib.Flatarr.Arena.carve], ... *)
let r4_carve_access comps =
  match List.rev comps with
  | (("carve" | "carve_byte") as f) :: "Arena" :: _ -> Some f
  | _ -> None

let r4_public_workspace_values = [ "create"; "check" ]

let r4_workspace_access comps =
  match List.rev comps with
  | value :: "Workspace" :: _ when not (List.mem value r4_public_workspace_values) -> Some value
  | _ -> None

let rec is_ws_ident e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> is_ws_ident e
  | Pexp_ident { txt = Lident "ws"; _ } -> true
  | _ -> false

let has_optional_ws_param params =
  List.exists
    (fun p ->
      match p.pparam_desc with
      | Pparam_val (Optional "ws", _, _) -> true
      | _ -> false)
    params

(* Packaging shapes: the arena handle appearing as a component of a
   tuple / record / constructor argument / array literal. *)
let r4_packaging e =
  match e.pexp_desc with
  | Pexp_tuple parts | Pexp_array parts -> List.exists is_ws_ident parts
  | Pexp_record (fields, _) -> List.exists (fun (_, v) -> is_ws_ident v) fields
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> (
      is_ws_ident arg
      || match arg.pexp_desc with Pexp_tuple parts -> List.exists is_ws_ident parts | _ -> false)
  | _ -> false

let r4 =
  {
    id = "R4";
    summary =
      "arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws \
       never escapes into data";
    on_expr =
      (fun emit ctx e ->
        (if not (path_allowed r4_carve_files ctx.path) then
           match e.pexp_desc with
           | Pexp_ident { txt; loc } -> (
               match r4_carve_access (flat txt) with
               | Some f ->
                   emit ~id:"R4" ~loc
                     (Printf.sprintf
                        "Arena.%s: carving hands out aliasing views; arenas are carved only \
                         by the Workspace and Itopo scratch constructors" f)
               | None -> ())
           | _ -> ());
        if not (r4_arena_file ctx.path) then
          match e.pexp_desc with
          | Pexp_ident { txt; loc } | Pexp_field (_, { txt; loc }) -> (
              match r4_workspace_access (flat txt) with
              | Some value ->
                  emit ~id:"R4" ~loc
                    (Printf.sprintf
                       "Workspace.%s: arena internals are private to the FFC pipeline; \
                        consume results through the documented record fields" value)
              | None -> ())
          | _ when ctx.ws_fun && r4_packaging e ->
              (* The walker flips [ws_fun] inside any function taking
                 [?ws]; packaging the handle anywhere in that scope is
                 the escape R4 exists to stop. *)
              emit ~id:"R4" ~loc:e.pexp_loc
                "the ?ws arena handle escapes into a data structure; pass it as an \
                 argument or project the documented fields instead"
          | _ -> ());
    on_str_item = no_str_item;
  }

(* ------------------------------------------------------------------ *)
(* R5 — no unsafe casts anywhere; no Printf in libraries (Fmt/Logs
   only, so output is composable and silenceable). *)

let r5 =
  {
    id = "R5";
    summary = "no Obj.magic/%identity; no Printf in lib/";
    on_expr =
      (fun emit ctx e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match flat txt with
            | "Obj" :: _ :: _ | "Stdlib" :: "Obj" :: _ ->
                emit ~id:"R5" ~loc (Printf.sprintf "%s: Obj breaks type safety" (dotted (flat txt)))
            | ("Printf" :: _ :: _ | "Stdlib" :: "Printf" :: _) when ctx.in_lib ->
                emit ~id:"R5" ~loc
                  (Printf.sprintf "%s in a library; use Fmt (or Logs) instead" (dotted (flat txt)))
            | _ -> ())
        | _ -> ());
    on_str_item =
      (fun emit _ctx it ->
        match it.pstr_desc with
        | Pstr_primitive vd when List.exists (fun p -> p = "%identity") vd.pval_prim ->
            emit ~id:"R5" ~loc:vd.pval_loc "external %identity is an unchecked cast"
        | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R6 — parallel disjoint-write: the body of every
   [Sched.parallel_for] call may mutate only (a) state bound inside the
   body (worker-local) or (b) captured arrays/bigarrays at indices
   syntactically derived from the chunk-range parameters the scheduler
   hands the body.  Everything else — captured refs, fixed indices,
   calls to captured helpers that could hide writes — needs a
   [@lint.par_write "proof"] with the disjointness argument spelled
   out.  This is the static form of the chunk-partition proofs of
   DESIGN.md §6: tsan checks them dynamically in the nightly lane, R6
   checks them at every build. *)

(* Unqualified callees that cannot write captured state: arithmetic
   operators are excluded by spelling (symbolic), these are the
   alphabetic ones a kernel legitimately uses.  [ref] is here because
   [ref x] only creates — the binding it lands in is worker-local, and
   writes to it go through (:=)/incr/decr which are checked. *)
let r6_pure_calls =
  SS.of_list
    [ "min"; "max"; "abs"; "not"; "ignore"; "fst"; "snd"; "succ"; "pred";
      "ref"; "compare"; "float_of_int"; "int_of_float"; "truncate";
      "char_of_int"; "int_of_char"; "string_of_int"; "land"; "lor"; "lxor";
      "lnot"; "lsl"; "lsr"; "asr"; "mod"; "raise"; "raise_notrace";
      "failwith"; "invalid_arg"; "exit" ]

(* Mutators by final path component, alias- and open-proof: the
   indexed ones take [target; index; value], the bulk ones mutate their
   first argument wholesale. *)
let r6_set_like = [ "set"; "unsafe_set" ]

let r6_bulk_mutators =
  [ "fill"; "fill_prefix"; "blit"; "unsafe_blit"; "clear"; "reset"; "add";
    "replace"; "remove"; "push"; "pop"; "transfer"; "add_seq" ]

let scan_parallel_body (emit : emit) ctx ~params (closure : expression) =
  let scan =
    object (self)
      inherit Ast_traverse.iter as super

      (* [locals]: names bound inside the body (writes to them are
         worker-local).  [derived]: names whose value is chunk-derived
         (the body parameters, and bindings computed from them). *)
      val mutable locals : SS.t = params
      val mutable derived : SS.t = params
      val mutable frames : suppression list = []

      method private report ~loc msg =
        match List.find_opt (fun s -> List.mem "R6" s.sids) frames with
        | Some s -> fire s "R6"
        | None -> emit ~id:"R6" ~loc msg

      method private push_attrs attrs =
        let fs =
          List.filter_map
            (fun a ->
              match suppression_of_attr emit ctx a with
              | Some s when s.swellformed -> Some s
              | _ -> None)
            attrs
        in
        frames <- fs @ frames;
        List.length fs

      method private pop n =
        for _ = 1 to n do
          frames <- List.tl frames
        done

      method private scoped f =
        let l = locals and d = derived in
        f ();
        locals <- l;
        derived <- d

      method private bind ?(derived_too = false) names =
        locals <- List.fold_left (fun s n -> SS.add n s) locals names;
        if derived_too then
          derived <- List.fold_left (fun s n -> SS.add n s) derived names

      method private local_root e =
        match target_root e with Some r -> SS.mem r locals | None -> false

      method private flag_write ~loc ~what ~target ~index =
        if not (self#local_root target) then
          match index with
          | Some ix when mentions derived ix -> ()
          | Some _ ->
              self#report ~loc
                (Printf.sprintf
                   "%s writes captured state at an index not derived from the chunk \
                    parameters; prove disjointness with [@lint.par_write \"proof\"]"
                   what)
          | None ->
              self#report ~loc
                (Printf.sprintf
                   "%s mutates state captured by the parallel_for body; keep writes \
                    worker-local or annotate [@lint.par_write \"proof\"]" what)

      method private opaque_call ~loc name =
        if
          (not (SS.mem name locals))
          && (not (SS.mem name r6_pure_calls))
          && String.length name > 0
          && ((name.[0] >= 'a' && name.[0] <= 'z') || name.[0] = '_')
        then
          self#report ~loc
            (Printf.sprintf
               "call to captured helper [%s] hides its writes from the disjointness \
                check; inline it or annotate [@lint.par_write \"proof\"]" name)

      method private check_mutation e =
        match e.pexp_desc with
        | Pexp_setfield (lhs, { txt; _ }, _) ->
            if not (self#local_root lhs) then
              self#report ~loc:e.pexp_loc
                (Printf.sprintf
                   "[%s <-] mutates a field of state captured by the parallel_for \
                    body; keep writes worker-local or annotate [@lint.par_write \
                    \"proof\"]" (last_exn (flat txt)))
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            let pos =
              List.filter_map
                (fun (l, a) -> match l with Nolabel -> Some a | _ -> None)
                args
            in
            let comps = flat txt in
            match (List.rev comps, comps, pos) with
            | f :: _ :: _, _, target :: index :: _ :: _ when List.mem f r6_set_like ->
                self#flag_write ~loc:e.pexp_loc ~what:(dotted comps) ~target
                  ~index:(Some index)
            | f :: _ :: _, _, target :: _
              when List.mem f r6_set_like || List.mem f r6_bulk_mutators ->
                self#flag_write ~loc:e.pexp_loc ~what:(dotted comps) ~target
                  ~index:None
            | _, [ ":=" ], target :: _ ->
                self#flag_write ~loc:e.pexp_loc ~what:"(:=)" ~target ~index:None
            | _, [ (("incr" | "decr") as f) ], target :: _ ->
                self#flag_write ~loc:e.pexp_loc ~what:f ~target ~index:None
            | _, [ "|>" ], [ _; { pexp_desc = Pexp_ident { txt = Lident n; _ }; _ } ]
            | _, [ "@@" ], [ { pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }; _ ] ->
                self#opaque_call ~loc:e.pexp_loc n
            | _, [ name ], _ -> self#opaque_call ~loc:e.pexp_loc name
            | _ -> ())
        | _ -> ()

      method private scan_case ?(derived_too = false) c =
        self#scoped (fun () ->
            self#bind ~derived_too (pat_vars c.pc_lhs);
            Option.iter self#expression c.pc_guard;
            self#expression c.pc_rhs)

      method! expression e =
        let n = self#push_attrs e.pexp_attributes in
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when last_exn (flat txt) = "parallel_for" ->
            (* a nested parallel_for is analyzed on its own by the rule *)
            ()
        | Pexp_let (rf, vbs, rest) ->
            let rec_names = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
            self#scoped (fun () ->
                if rf = Recursive then self#bind rec_names;
                List.iter
                  (fun vb ->
                    let m = self#push_attrs vb.pvb_attributes in
                    self#expression vb.pvb_expr;
                    self#pop m)
                  vbs);
            self#scoped (fun () ->
                List.iter
                  (fun vb ->
                    self#bind
                      ~derived_too:(mentions derived vb.pvb_expr)
                      (pat_vars vb.pvb_pat))
                  vbs;
                self#expression rest)
        | Pexp_function (ps, _, fbody) ->
            self#scoped (fun () ->
                List.iter
                  (fun pr ->
                    match pr.pparam_desc with
                    | Pparam_val (_, dflt, pat) ->
                        Option.iter self#expression dflt;
                        self#bind (pat_vars pat)
                    | Pparam_newtype _ -> ())
                  ps;
                match fbody with
                | Pfunction_body b -> self#expression b
                | Pfunction_cases (cases, _, _) ->
                    List.iter (fun c -> self#scan_case c) cases)
        | Pexp_for (pat, e1, e2, _, fbody) ->
            self#expression e1;
            self#expression e2;
            self#scoped (fun () ->
                self#bind
                  ~derived_too:(mentions derived e1 || mentions derived e2)
                  (pat_vars pat);
                self#expression fbody)
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            self#expression scrut;
            let dt = mentions derived scrut in
            List.iter (fun c -> self#scan_case ~derived_too:dt c) cases
        | Pexp_apply _ | Pexp_setfield _ ->
            self#check_mutation e;
            super#expression e
        | _ -> super#expression e);
        self#pop n
    end
  in
  scan#expression closure

let r6 =
  {
    id = "R6";
    summary =
      "parallel_for bodies write only worker-local state or chunk-derived indices \
       ([@lint.par_write \"proof\"] to override)";
    on_expr =
      (fun emit ctx e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
          when last_exn (flat txt) = "parallel_for" -> (
            let pos =
              List.filter_map
                (fun (l, a) -> match l with Nolabel -> Some a | _ -> None)
                args
            in
            match List.rev pos with
            | body :: _ :: _ -> (
                match body.pexp_desc with
                | Pexp_function (ps, _, Pfunction_body _) ->
                    let params =
                      List.concat_map
                        (fun pr ->
                          match pr.pparam_desc with
                          | Pparam_val (_, _, pat) -> pat_vars pat
                          | Pparam_newtype _ -> [])
                        ps
                    in
                    scan_parallel_body emit ctx ~params:(SS.of_list params) body
                | _ ->
                    emit ~id:"R6" ~loc:body.pexp_loc
                      "parallel_for body is not a literal closure, so its writes cannot \
                       be checked; inline the closure or annotate [@lint.par_write \
                       \"proof\"]")
            | _ -> ())
        | _ -> ());
    on_str_item = no_str_item;
  }

(* ------------------------------------------------------------------ *)
(* R7 — zero-allocation hot paths: the scope under a [@lint.hot] /
   [@@lint.hot] annotation (the steady-state relay of Collective.Exec,
   the Fastpath phase kernels, Live event patching, the BFS chunk
   gather) must contain no allocation construct.  The check is
   intraprocedural and syntactic — a portable, project-level analogue
   of flambda's [@zero_alloc]: closures, tuples, records, boxed
   constructors, list cells, [ref], (@)/(^), and the Stdlib/Flatarr
   allocator entry points are flagged; calls to other functions are
   trusted (annotate them too if they are hot).  Every deliberate
   allocation carries its own [@lint.allow "R7 why"]. *)

let r7_alloc_mods = [ "Printf"; "Format"; "Fmt"; "Scanf"; "Seq" ]

let r7_alloc_table =
  [
    ( "Array",
      [ "make"; "init"; "append"; "concat"; "copy"; "sub"; "of_list"; "to_list";
        "of_seq"; "to_seq"; "to_seqi"; "map"; "mapi"; "map2"; "split"; "combine";
        "make_matrix" ] );
    ( "List",
      [ "init"; "map"; "mapi"; "map2"; "rev"; "rev_append"; "rev_map"; "append";
        "concat"; "concat_map"; "flatten"; "filter"; "filteri"; "filter_map";
        "partition"; "split"; "combine"; "cons"; "sort"; "stable_sort";
        "fast_sort"; "sort_uniq"; "merge"; "of_seq"; "to_seq" ] );
    ( "Bytes",
      [ "create"; "make"; "init"; "copy"; "of_string"; "to_string"; "sub";
        "sub_string"; "extend"; "cat"; "concat" ] );
    ( "String",
      [ "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "split_on_char";
        "of_bytes"; "to_bytes"; "trim"; "escaped" ] );
    ("Buffer", [ "create"; "contents"; "to_bytes"; "sub" ]);
    ("Hashtbl", [ "create"; "copy"; "of_seq" ]);
    ("Queue", [ "create"; "copy"; "of_seq" ]);
    ("Stack", [ "create"; "copy"; "of_seq" ]);
    ("Option", [ "some"; "map"; "bind"; "join"; "to_list"; "to_seq" ]);
    ("Result", [ "ok"; "error"; "map"; "bind" ]);
    ("Flatarr", [ "create"; "make"; "of_array"; "to_array"; "sub_to_array" ]);
    ("Byte", [ "create"; "make"; "to_bool_array" ]);
    ("Arena", [ "create"; "carve"; "carve_byte" ]);
    ("Array1", [ "create"; "of_array"; "sub" ]);
    ("Array2", [ "create"; "of_array" ]);
    ("Atomic", [ "make" ]);
    ("Domain", [ "spawn" ]);
    ("Bitset", [ "create" ]);
  ]

let r7_alloc_call ctx comps =
  match comps with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref cell allocation"
  | [ "@" ] -> Some "(@) copies its first list"
  | [ "^" ] -> Some "(^) allocates a fresh string"
  | _ -> (
      match List.rev comps with
      | f :: m :: _ ->
          (* Resolve a file-local module alias ([module Fa = Flatarr])
             to its target's final component, so aliased allocator
             calls are caught like qualified ones. *)
          let m =
            match Hashtbl.find_opt ctx.aliases m with Some c -> c | None -> m
          in
          if List.mem m r7_alloc_mods then
            Some (Printf.sprintf "%s.%s builds closures and intermediate strings" m f)
          else (
            match List.assoc_opt m r7_alloc_table with
            | Some fns when List.mem f fns -> Some (Printf.sprintf "%s.%s allocates" m f)
            | _ -> None)
      | _ -> None)

let scan_hot (emit : emit) ctx (scope : expression) =
  let scan =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable frames : suppression list = []

      method private report ~loc what =
        match List.find_opt (fun s -> List.mem "R7" s.sids) frames with
        | Some s -> fire s "R7"
        | None ->
            emit ~id:"R7" ~loc
              (Printf.sprintf
                 "%s inside a [@lint.hot] scope; hoist it out of the hot path or \
                  annotate [@lint.allow \"R7 why\"]" what)

      method private push_attrs attrs =
        let fs =
          List.filter_map
            (fun a ->
              match suppression_of_attr emit ctx a with
              | Some s when s.swellformed -> Some s
              | _ -> None)
            attrs
        in
        frames <- fs @ frames;
        List.length fs

      method private pop n =
        for _ = 1 to n do
          frames <- List.tl frames
        done

      method! expression e =
        let n = self#push_attrs e.pexp_attributes in
        (match e.pexp_desc with
        | Pexp_function _ ->
            self#report ~loc:e.pexp_loc "closure creation";
            super#expression e
        | Pexp_construct
            ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
          ->
            (* one finding per cons cell, not a second one for its
               ghost argument tuple *)
            self#report ~loc:e.pexp_loc "list cons";
            self#expression hd;
            self#expression tl
        | Pexp_construct (_, Some _) ->
            self#report ~loc:e.pexp_loc "constructor application (boxed)";
            super#expression e
        | Pexp_variant (_, Some _) ->
            self#report ~loc:e.pexp_loc "polymorphic-variant payload (boxed)";
            super#expression e
        | Pexp_tuple _ ->
            self#report ~loc:e.pexp_loc "tuple construction";
            super#expression e
        | Pexp_record _ ->
            self#report ~loc:e.pexp_loc "record construction";
            super#expression e
        | Pexp_array _ ->
            self#report ~loc:e.pexp_loc "array literal";
            super#expression e
        | Pexp_lazy _ ->
            self#report ~loc:e.pexp_loc "lazy suspension";
            super#expression e
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            (match r7_alloc_call ctx (flat txt) with
            | Some what -> self#report ~loc:e.pexp_loc what
            | None -> ());
            super#expression e
        | _ -> super#expression e);
        self#pop n

      method! value_binding vb =
        let n = self#push_attrs vb.pvb_attributes in
        super#value_binding vb;
        self#pop n
    end
  in
  scan#expression scope

(* The hot scope of an annotated value: the body under the (single,
   n-ary) outer abstraction — the parameters themselves are not
   allocation sites. *)
let r7_scope e =
  match e.pexp_desc with
  | Pexp_function (_, _, Pfunction_body b) -> b
  | _ -> e

let r7 =
  {
    id = "R7";
    summary = "[@lint.hot] scopes stay allocation-free (escape: [@lint.allow \"R7 why\"])";
    on_expr =
      (fun emit ctx e ->
        if has_attr "lint.hot" e.pexp_attributes then scan_hot emit ctx (r7_scope e);
        (* [let f ... = ... [@@lint.hot] in ...]: hot annotations on
           function-local bindings, not just toplevel ones *)
        match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                if has_attr "lint.hot" vb.pvb_attributes then
                  scan_hot emit ctx (r7_scope vb.pvb_expr))
              vbs
        | _ -> ());
    on_str_item =
      (fun emit ctx it ->
        match it.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                if has_attr "lint.hot" vb.pvb_attributes then
                  scan_hot emit ctx (r7_scope vb.pvb_expr))
              vbs
        | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R8 — suppression audit: every [@lint.allow] / [@@lint.domain_safe] /
   [@lint.par_write] must silence at least one live finding for every
   rule id it lists, or the attribute itself is an error.  The walker
   and the R6/R7 scans mark the suppressions they consult ([sfired]);
   the driver sweeps the per-file registry after the walk, so the
   suppression inventory can never rot.  R8 findings carry no escape
   hatch — the fix is deleting or narrowing the attribute. *)

let r8 =
  {
    id = "R8";
    summary =
      "suppression audit: every lint attribute must silence a live finding (no escape \
       hatch)";
    on_expr = no_expr;
    on_str_item = no_str_item;
  }

(* Called by the driver after a file's walk: one finding per rule id a
   well-formed suppression listed but never silenced. *)
let audit_suppressions ctx (add : finding -> unit) =
  Hashtbl.iter
    (fun _ s ->
      if s.swellformed then
        List.iter
          (fun id ->
            if not (List.mem id s.sfired) then
              add
                {
                  rule_id = "R8";
                  file = ctx.path;
                  line = s.sloc.loc_start.pos_lnum;
                  col = s.sloc.loc_start.pos_cnum - s.sloc.loc_start.pos_bol;
                  msg =
                    Printf.sprintf
                      "dead suppression: this [@%s] never silences a live %s finding; \
                       delete the attribute or narrow its rule list" s.skind id;
                })
          (List.sort_uniq String.compare s.sids))
    ctx.suppressions

let all = [ r1; r2; r3; r4; r5; r6; r7; r8 ]
