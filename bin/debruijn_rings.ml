(* debruijn-rings: command-line front end to the library.

   Subcommands:
     ffc       fault-free ring under node failures (Chapter 2)
     edge      Hamiltonian ring under link failures (Chapter 3)
     dhc       streaming Chapter-3 engine: rings and edge-fault campaigns
     disjoint  edge-disjoint Hamiltonian rings
     collective ring reduce-scatter / all-gather / allreduce over embedded rings
     count     necklace counts (Chapter 4)
     psi       the tolerance functions psi / phi / MAX
     butterfly fault-free ring in a butterfly network (section 3.4)   *)

open Cmdliner

let d_arg =
  Arg.(required & opt (some int) None & info [ "d" ] ~docv:"D" ~doc:"Alphabet size (degree).")

let n_arg =
  Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Word length; the network has $(b,d^n) nodes.")

let words_conv d n =
  let p = Core.Word.params ~d ~n in
  fun s ->
    match Core.Word.of_string p s with
    | w -> w
    | exception _ -> failwith (Printf.sprintf "bad node %S (expected %d digits < %d)" s n d)

let render p ring =
  String.concat " " (List.map (Core.Word.to_string p) (Array.to_list ring))

let ffc_cmd =
  let faults =
    Arg.(value & pos_all string [] & info [] ~docv:"FAULT" ~doc:"Faulty nodes as digit strings, e.g. 020 112.")
  in
  let run d n fault_strs distributed domains trace campaign churn events trials seed fcounts =
    let p = Core.Word.params ~d ~n in
    if churn then begin
      Printf.printf
        "# churn campaign on B(%d,%d): %d trials x %d events per target, one live engine per domain\n"
        d n trials events;
      Printf.printf
        "# target  faults  repairs  patched  recomp  unchg  errors  mean-ring  min-ring  live-f\n";
      List.iter
        (fun (cp : Core.Ffc_campaign.churn_point) ->
          Printf.printf "%8d  %6d  %7d  %7d  %6d  %5d  %6d  %9.1f  %8d  %6.1f\n"
            cp.Core.Ffc_campaign.target_f cp.Core.Ffc_campaign.cfaults
            cp.Core.Ffc_campaign.crepairs cp.Core.Ffc_campaign.patched
            cp.Core.Ffc_campaign.recomputed cp.Core.Ffc_campaign.cunchanged
            cp.Core.Ffc_campaign.cerrors cp.Core.Ffc_campaign.mean_ring_length
            cp.Core.Ffc_campaign.min_ring_length
            cp.Core.Ffc_campaign.mean_live_faults)
        (Core.Ffc_campaign.churn ~domains ~trials ~seed ?targets:fcounts ~events ~d ~n ())
    end
    else if campaign then begin
      Printf.printf
        "# node-fault campaign on B(%d,%d): %d trials per point, one workspace per domain\n"
        d n trials;
      Printf.printf
        "#   f  embedded  verified     bound  mean-|B*|  mean-ring  mean-ecc  min-ring\n";
      List.iter
        (fun (pt : Core.Ffc_campaign.point) ->
          let bound =
            if pt.Core.Ffc_campaign.bound_applicable = 0 then "-"
            else
              Printf.sprintf "%d/%d" pt.Core.Ffc_campaign.bound_ok
                pt.Core.Ffc_campaign.bound_applicable
          in
          Printf.printf "%5d  %4d/%-4d  %8d  %8s  %9.1f  %9.1f  %8.2f  %8d\n"
            pt.Core.Ffc_campaign.f pt.Core.Ffc_campaign.embedded
            pt.Core.Ffc_campaign.trials pt.Core.Ffc_campaign.verified bound
            pt.Core.Ffc_campaign.mean_bstar_size
            pt.Core.Ffc_campaign.mean_ring_length pt.Core.Ffc_campaign.mean_ecc
            pt.Core.Ffc_campaign.min_ring_length)
        (Core.Ffc_campaign.run ~domains ~trials ~seed ?fs:fcounts ~d ~n ())
    end
    else begin
    let faults = List.map (words_conv d n) fault_strs in
    let result =
      if distributed then
        Option.map
          (fun (ring, stats) ->
            Printf.printf "# distributed run: %d rounds, %d messages\n"
              stats.Core.Distributed.total_rounds stats.Core.Distributed.messages;
            if trace then
              List.iter
                (fun (phase, t) ->
                  Printf.printf "# %-10s  %4s %8s %9s %10s\n" phase "rnd" "active"
                    "delivered" "wall";
                  Array.iteri
                    (fun r (m : Core.Simulator.round_metrics) ->
                      Printf.printf "# %-10s  %4d %8d %9d %8.1fus\n" "" r m.active
                        m.delivered_in_round (m.wall_ns /. 1e3))
                    t)
                stats.Core.Distributed.phase_traces;
            ring)
          (Core.fault_free_ring_distributed ~domains ~d ~n ~faults ())
      else Core.fault_free_ring ~d ~n ~faults
    in
    match result with
    | None ->
        prerr_endline "no fault-free ring: every necklace is faulty";
        exit 1
    | Some ring ->
        Printf.printf "# ring length %d of %d nodes (guarantee %d for f = %d)\n"
          (Array.length ring) p.Core.Word.size
          (Core.ring_length_guarantee ~d ~n ~f:(List.length faults))
          (List.length faults);
        print_endline (render p ring)
    end
  in
  let distributed =
    Arg.(value & flag & info [ "distributed" ] ~doc:"Run the network-level protocol on the simulator.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc:"Run on $(docv) OCaml domains: simulator rounds with --distributed, trials with --campaign.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print per-phase round-by-round metrics (with --distributed).")
  in
  let campaign =
    Arg.(value & flag & info [ "campaign" ] ~doc:"Run a seeded randomized node-fault campaign instead of embedding a given fault set.")
  in
  let churn =
    Arg.(value & flag & info [ "churn" ] ~doc:"Run a seeded fault/repair churn campaign through the incremental live engine.")
  in
  let events =
    Arg.(value & opt int 100 & info [ "events" ] ~docv:"E" ~doc:"Events per trial (with --churn).")
  in
  let trials =
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"T" ~doc:"Trials per fault count (with --campaign or --churn).")
  in
  let seed =
    Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed; trial outcomes depend only on (seed, f, trial).")
  in
  let fcounts =
    Arg.(value & opt (some (list int)) None & info [ "fcounts" ] ~docv:"F,..." ~doc:"Comma-separated fault counts to sweep with --campaign (equilibrium targets with --churn); default 1,5,10,30,50 clipped to the node count.")
  in
  Cmd.v
    (Cmd.info "ffc" ~doc:"Fault-free ring under node failures (Chapter 2).")
    Term.(const run $ d_arg $ n_arg $ faults $ distributed $ domains $ trace
          $ campaign $ churn $ events $ trials $ seed $ fcounts)

let parse_edge d n s =
  match String.split_on_char '-' s with
  | [ u; v ] -> (words_conv d n u, words_conv d n v)
  | _ -> failwith (Printf.sprintf "bad edge %S (expected U-V)" s)

let edge_cmd =
  let faults =
    Arg.(value & pos_all string [] & info [] ~docv:"EDGE" ~doc:"Faulty links as U-V, e.g. 01-12.")
  in
  let run d n fault_strs =
    let p = Core.Word.params ~d ~n in
    let faults = List.map (parse_edge d n) fault_strs in
    Printf.printf "# tolerance MAX(psi-1, phi) = %d\n" (Core.edge_fault_tolerance d);
    match Core.hamiltonian_ring_avoiding_edge_faults ~d ~n ~faults with
    | None ->
        prerr_endline "no fault-free Hamiltonian ring found";
        exit 1
    | Some ring -> print_endline (render p ring)
  in
  Cmd.v
    (Cmd.info "edge" ~doc:"Hamiltonian ring under link failures (Chapter 3).")
    Term.(const run $ d_arg $ n_arg $ faults)

let dhc_cmd =
  let faults =
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"U-V" ~doc:"A faulty link as U-V, e.g. 01-12 (repeatable).")
  in
  let campaign =
    Arg.(value & flag & info [ "campaign" ] ~doc:"Run a randomized edge-fault campaign sweeping f from 0 past MAX(psi-1, phi).")
  in
  let trials =
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"T" ~doc:"Trials per fault count (with --campaign).")
  in
  let fmax =
    Arg.(value & opt (some int) None & info [ "fmax" ] ~docv:"F" ~doc:"Largest fault count to sweep (default 2 MAX + 2).")
  in
  let seed =
    Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"S" ~doc:"Campaign PRNG seed.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc:"Parallelize campaign trials on $(docv) OCaml domains (statistics unchanged).")
  in
  let run d n fault_strs campaign trials fmax seed domains =
    let p = Core.Word.params ~d ~n in
    if campaign then begin
      Printf.printf "# campaign on B(%d,%d): %d trials per point, tolerance MAX(psi-1, phi) = %d\n"
        d n trials (Core.Psi.max_tolerance d);
      Printf.printf "#   f  success  construction  disjoint  masked  mean-ring-length\n";
      List.iter
        (fun (pt : Core.Campaign.point) ->
          Printf.printf "%5d  %3d/%-3d  %12d  %8d  %6d  %16.1f\n" pt.Core.Campaign.f
            pt.Core.Campaign.successes pt.Core.Campaign.trials
            pt.Core.Campaign.via_construction pt.Core.Campaign.via_disjoint
            pt.Core.Campaign.masked_fallbacks pt.Core.Campaign.mean_ring_length)
        (Core.Campaign.run ~domains ~trials ~seed ?fmax ~d ~n ())
    end
    else begin
      let faults = List.map (parse_edge d n) fault_strs in
      match Core.Edge_fault.best_hc_avoiding_stream ~d ~n ~faults with
      | None ->
          prerr_endline "no fault-free Hamiltonian ring found";
          exit 1
      | Some st ->
          let route =
            match Core.Edge_fault.hc_avoiding_stream ~d ~n ~faults with
            | Some _ -> "construction"
            | None -> "psi-family"
          in
          let fs = Core.Edge_fault.Faults.make p faults in
          let ok =
            Core.Stream.is_hamiltonian st
            && Core.Stream.avoids st (Core.Edge_fault.Faults.mem fs)
          in
          Printf.printf
            "# streaming ring of B(%d,%d): %d nodes via %s, verified fault-free hamiltonian %b\n"
            d n st.Core.Stream.length route ok;
          if p.Core.Word.size <= 4096 then
            print_endline (render p (Core.Stream.to_nodes st))
    end
  in
  Cmd.v
    (Cmd.info "dhc" ~doc:"Streaming Chapter-3 engine: O(n)-memory fault-avoiding rings and edge-fault campaigns.")
    Term.(const run $ d_arg $ n_arg $ faults $ campaign $ trials $ fmax $ seed $ domains)

let disjoint_cmd =
  let run d n =
    let p = Core.Word.params ~d ~n in
    let rings = Core.disjoint_rings ~d ~n in
    Printf.printf "# %d edge-disjoint Hamiltonian rings (psi(%d) = %d)\n"
      (List.length rings) d (Core.Psi.psi d);
    List.iter (fun r -> print_endline (render p r)) rings
  in
  Cmd.v
    (Cmd.info "disjoint" ~doc:"Edge-disjoint Hamiltonian rings of B(d,n).")
    Term.(const run $ d_arg $ n_arg)

let count_cmd =
  let length =
    Arg.(value & opt (some int) None & info [ "length" ] ~docv:"T" ~doc:"Restrict to necklaces of length $(docv).")
  in
  let weight =
    Arg.(value & opt (some int) None & info [ "weight" ] ~docv:"K" ~doc:"Restrict to nodes of weight $(docv).")
  in
  let run d n length weight =
    let c =
      match (length, weight) with
      | None, None -> Core.Count.total ~d ~n
      | Some t, None -> Core.Count.of_length ~d ~n ~t
      | None, Some k -> Core.Count.of_weight ~d ~n ~k
      | Some t, Some k -> Core.Count.of_weight_and_length ~d ~n ~k ~t
    in
    print_int c;
    print_newline ()
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Necklace counts (Chapter 4).")
    Term.(const run $ d_arg $ n_arg $ length $ weight)

let psi_cmd =
  let d_pos = Arg.(required & pos 0 (some int) None & info [] ~docv:"D") in
  let run d =
    Printf.printf "psi(%d) = %d\nphi(%d) = %d\nMAX(psi-1, phi) = %d\n" d (Core.Psi.psi d) d
      (Core.Psi.phi_bound d) (Core.Psi.max_tolerance d)
  in
  Cmd.v (Cmd.info "psi" ~doc:"Tolerance functions of Chapter 3.") Term.(const run $ d_pos)

let butterfly_cmd =
  let faults =
    Arg.(value & pos_all string [] & info [] ~docv:"EDGE"
           ~doc:"Faulty butterfly links as L,COL-L,COL e.g. 0,010-1,110.")
  in
  let run d n fault_strs =
    let bf = Core.Butterfly_graph.create ~d ~n in
    let parse s =
      let node part =
        match String.split_on_char ',' part with
        | [ l; c ] ->
            Core.Butterfly_graph.encode bf ~level:(int_of_string l)
              ~column:(words_conv d n c)
        | _ -> failwith (Printf.sprintf "bad butterfly node %S" part)
      in
      match String.split_on_char '-' s with
      | [ u; v ] -> (node u, node v)
      | _ -> failwith (Printf.sprintf "bad edge %S" s)
    in
    let faults = List.map parse fault_strs in
    match Core.butterfly_ring_avoiding_edge_faults ~d ~n ~faults with
    | None ->
        prerr_endline "no Hamiltonian ring (is gcd(d,n) = 1 and f within tolerance?)";
        exit 1
    | Some ring ->
        Printf.printf "# Hamiltonian ring of F(%d,%d), %d nodes\n" d n (Array.length ring);
        print_endline
          (String.concat " " (List.map (Core.Butterfly_graph.to_string bf) (Array.to_list ring)))
  in
  Cmd.v
    (Cmd.info "butterfly" ~doc:"Fault-free ring in a butterfly network (section 3.4).")
    Term.(const run $ d_arg $ n_arg $ faults)

let collective_cmd =
  let op_arg =
    Arg.(value & opt string "allreduce" & info [ "op" ] ~docv:"OP"
           ~doc:"Collective operation: reduce-scatter (rs), all-gather (ag) or allreduce (ar).")
  in
  let rings =
    Arg.(value & opt int 0 & info [ "rings" ] ~docv:"K"
           ~doc:"Stripe the payload across $(docv) edge-disjoint Hamiltonian rings (Chapter 3); 0 (the default) runs on the FFC-embedded ring (Chapter 2).")
  in
  let ranks =
    Arg.(value & opt int 8 & info [ "ranks" ] ~docv:"R"
           ~doc:"Logical participants per ring (an error when above the ring length unless $(b,--clamp-ranks) is passed).")
  in
  let engine_arg =
    Arg.(value & opt string "netsim" & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Executor: netsim (message-by-message simulation) or fastpath (compiled zero-copy kernel; identical counters).")
  in
  let clamp_ranks =
    Arg.(value & flag & info [ "clamp-ranks" ]
           ~doc:"Clamp $(b,--ranks) to the ring length instead of erroring when it exceeds it.")
  in
  let chunk_words =
    Arg.(value & opt int 4 & info [ "chunk-words" ] ~docv:"W" ~doc:"Words per message chunk.")
  in
  let faults =
    Arg.(value & opt int 0 & info [ "faults" ] ~docv:"F"
           ~doc:"Sample $(docv) random faults from the seed: nodes in FFC mode, links in striped mode.")
  in
  let seed =
    Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"S" ~doc:"Fault-sampling seed.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc:"Step the simulator on $(docv) OCaml domains (bit-identical results).")
  in
  let bidir =
    Arg.(value & flag & info [ "bidir" ] ~doc:"Also drive every ring in the reverse direction with its own payload stripe.")
  in
  let run d n op_str rings_k ranks chunk_words faults seed domains bidir
      engine_str clamp_ranks =
    let op =
      match Core.Collective_schedule.op_of_string op_str with
      | Some op -> op
      | None -> failwith (Printf.sprintf "bad op %S (want rs | ag | ar)" op_str)
    in
    let engine =
      match engine_str with
      | "netsim" -> Core.Netsim
      | "fastpath" -> Core.Fastpath
      | s -> failwith (Printf.sprintf "bad engine %S (want netsim | fastpath)" s)
    in
    let p = Core.Word.params ~d ~n in
    let rng = Core.Rng.create seed in
    let report =
      try
        if rings_k = 0 then begin
          let fault_nodes =
            Core.Rng.sample_distinct rng ~k:faults ~bound:p.Core.Word.size
          in
          Printf.printf "# %s over the FFC ring of B(%d,%d), %d node fault(s)\n"
            (Core.Collective_schedule.op_to_string op) d n faults;
          Core.collective_over_fault_free_ring ~domains ~engine
            ~bidirectional:bidir ~clamp_ranks ~d ~n ~faults:fault_nodes ~op
            ~ranks ~chunk_words ()
        end
        else begin
          let rec sample k acc =
            if k = 0 then List.rev acc
            else
              let u = Core.Rng.int rng p.Core.Word.size in
              let succs = Core.Word.successors p u in
              let v = List.nth succs (Core.Rng.int rng (List.length succs)) in
              sample (k - 1) ((u, v) :: acc)
          in
          let edge_faults = sample faults [] in
          Printf.printf
            "# %s striped over %d edge-disjoint ring(s) of B(%d,%d), %d link fault(s)\n"
            (Core.Collective_schedule.op_to_string op) rings_k d n faults;
          Core.striped_collective_over_disjoint_rings ~domains ~engine
            ~bidirectional:bidir ~clamp_ranks ~edge_faults ~d ~n ~k:rings_k ~op
            ~ranks ~chunk_words ()
        end
      with Invalid_argument msg ->
        prerr_endline ("error: " ^ msg);
        exit 2
    in
    match report with
    | None ->
        prerr_endline "no ring survives the fault set";
        exit 1
    | Some r ->
        Printf.printf "# rings %d  ranks %d  phases %d  rounds %d\n"
          r.Core.Collective_exec.rings r.Core.Collective_exec.ranks
          r.Core.Collective_exec.phases r.Core.Collective_exec.rounds;
        Printf.printf
          "# delivered %d  wire-words %d  payload-words %d  max-link-load %d  max-port-load %d\n"
          r.Core.Collective_exec.delivered r.Core.Collective_exec.wire_words
          r.Core.Collective_exec.payload_words r.Core.Collective_exec.max_link_load
          r.Core.Collective_exec.max_port_load;
        Printf.printf "verified %b  checksum %d\n" r.Core.Collective_exec.verified
          r.Core.Collective_exec.checksum;
        if not r.Core.Collective_exec.verified then exit 1
  in
  Cmd.v
    (Cmd.info "collective"
       ~doc:"Ring collectives (reduce-scatter / all-gather / allreduce) over embedded rings.")
    Term.(const run $ d_arg $ n_arg $ op_arg $ rings $ ranks $ chunk_words $ faults
          $ seed $ domains $ bidir $ engine_arg $ clamp_ranks)

let route_cmd =
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some string) None & info [] ~docv:"DST") in
  let faults =
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"NODE" ~doc:"A faulty node (repeatable).")
  in
  let run d n src dst fault_strs =
    let p = Core.Word.params ~d ~n in
    let conv = words_conv d n in
    let faults = List.map conv fault_strs in
    match Core.route ~d ~n ~faults (conv src) (conv dst) with
    | None ->
        prerr_endline "no fault-free route (endpoint on a faulty necklace?)";
        exit 1
    | Some path ->
        Printf.printf "# %d hops (bound 2n = %d)\n" (List.length path - 1) (2 * n);
        print_endline (String.concat " -> " (List.map (Core.Word.to_string p) path))
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Fault-free routing through faulty necklaces (Prop 2.2).")
    Term.(const run $ d_arg $ n_arg $ src $ dst $ faults)

let () =
  let doc = "fault-tolerant ring embedding in De Bruijn networks (Rowley & Bose)" in
  let info = Cmd.info "debruijn-rings" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ ffc_cmd; edge_cmd; dhc_cmd; disjoint_cmd; collective_cmd; count_cmd; psi_cmd; butterfly_cmd; route_cmd ]))
