bench/ablations.ml: Array Debruijn Dhc Ffc Galois Graphlib Hashtbl List Printf String Util
