bench/main.ml: Ablations Array Figures List Open_problems Printf String Sweeps Sys Tables Timing
