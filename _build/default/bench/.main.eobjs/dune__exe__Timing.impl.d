bench/timing.ml: Analyze Array Bechamel Benchmark Butterfly Core Debruijn Dhc Ffc Graphlib Hamsearch Hashtbl Hypercube Instance List Measure Necklace_count Printf Staged String Test Time Toolkit Util
