bench/open_problems.ml: Array Debruijn Dhc Ffc Graphlib Hamsearch Kautz List Option Printf String Util
