bench/tables.ml: Array Debruijn Dhc Ffc Graphlib List Option Printf String Util
