bench/figures.ml: Array Butterfly Debruijn Dhc Ffc Fun Galois Graphlib Hashtbl List Necklace_count Option Printf String
