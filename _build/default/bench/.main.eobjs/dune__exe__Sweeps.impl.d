bench/sweeps.ml: Array Butterfly Debruijn Dhc Ffc Graphlib Hypercube List Option Printf String Sys Util
