bench/main.mli:
