(* De Bruijn sequences three ways.

   The thesis connects ring embedding to De Bruijn sequences: a
   Hamiltonian cycle of B(d,n) IS a De Bruijn sequence, and a set of
   disjoint Hamiltonian cycles is a set of De Bruijn sequences in which
   every (n+1)-window is globally distinct.

   This example generates sequences by (a) necklace joining (the FFC
   algorithm with no faults, in the style of Fredricksen–Maiorana), and
   (b) the LFSR constructions of Chapter 3, then checks the windows.

   Run with:  dune exec examples/sequences.exe *)

module W = Core.Word
module Seq_ = Core.Sequence

let show seq =
  String.concat "" (List.map string_of_int (Array.to_list seq)) |> fun s ->
  if String.length s <= 70 then s else String.sub s 0 67 ^ "..."

let () =
  (* (a) necklace joining *)
  print_endline "De Bruijn sequences by necklace joining (FFC, no faults):";
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let seq = Core.de_bruijn_sequence ~d ~n in
      assert (Seq_.is_de_bruijn_sequence p seq);
      Printf.printf "  B(%d,%d): %s\n" d n (show seq))
    [ (2, 4); (2, 5); (3, 3); (4, 2); (10, 2) ];
  (* a big one, validated *)
  let p16 = W.params ~d:2 ~n:16 in
  let big = Core.de_bruijn_sequence ~d:2 ~n:16 in
  assert (Seq_.is_de_bruijn_sequence p16 big);
  Printf.printf "  B(2,16): %d-bit sequence generated and validated\n\n"
    (Array.length big);
  (* (b) LFSR shift cycles: d sequences with globally distinct windows *)
  print_endline "Disjoint De Bruijn sequences (every 3-window distinct across all):";
  let d = 4 and n = 2 in
  let p = W.params ~d ~n in
  let seqs = List.map (Seq_.sequence_of_cycle p) (Core.disjoint_rings ~d ~n) in
  List.iteri (fun i s -> Printf.printf "  #%d: %s\n" i (show s)) seqs;
  let all_windows =
    List.concat_map (fun s -> Seq_.edge_windows p s) seqs
  in
  let distinct = List.sort_uniq compare all_windows in
  Printf.printf "  %d windows of length %d, all distinct: %b\n"
    (List.length all_windows) (n + 1)
    (List.length distinct = List.length all_windows)
