examples/quickstart.mli:
