examples/fault_injection.ml: Array Core List Printf Sys
