examples/sequences.mli:
