examples/routing_demo.ml: Core List Printf String
