examples/sequences.ml: Array Core List Printf String
