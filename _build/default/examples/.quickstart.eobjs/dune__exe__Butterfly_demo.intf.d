examples/butterfly_demo.mli:
