examples/quickstart.ml: Array Core List Option Printf String
