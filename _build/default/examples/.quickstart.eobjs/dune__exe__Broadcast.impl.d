examples/broadcast.ml: Array Core Graphlib Hashtbl List Netsim Printf Queue
