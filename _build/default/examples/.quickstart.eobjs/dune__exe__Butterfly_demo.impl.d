examples/butterfly_demo.ml: Array Core List Printf String
