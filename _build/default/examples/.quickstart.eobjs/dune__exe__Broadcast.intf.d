examples/broadcast.mli:
