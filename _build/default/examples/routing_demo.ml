(* Routing around failures.

   Proposition 2.2's proof is secretly a routing algorithm: between any
   two live processors there are d necklace-disjoint "drain" paths into
   the constant nodes and d−1 disjoint "fill" paths back out, so up to
   d−2 faulty necklaces can always be detoured around within 2n hops.

   This demo routes a fixed message pair across B(4,4) while processors
   keep failing, printing each detour.

   Run with:  dune exec examples/routing_demo.exe *)

module W = Core.Word

let () =
  let d = 4 and n = 4 in
  let p = W.params ~d ~n in
  let src = W.of_string p "1230" and dst = W.of_string p "3021" in
  Printf.printf "B(%d,%d): routing %s -> %s while processors fail (tolerance d-2 = %d)\n\n"
    d n (W.to_string p src) (W.to_string p dst) (d - 2);
  (* an adversary always kills a processor ON the current route (but
     spares the endpoints' own necklaces), forcing a detour each time *)
  let protected_ = Core.Necklace.nodes p src @ Core.Necklace.nodes p dst in
  let faults = ref [] in
  let stop = ref false in
  while not !stop do
    (match Core.route ~d ~n ~faults:!faults src dst with
    | Some path ->
        Printf.printf "%d faults: %2d hops   %s\n" (List.length !faults)
          (List.length path - 1)
          (String.concat " -> " (List.map (W.to_string p) path));
        (match
           List.find_opt
             (fun v -> not (List.mem v protected_ || List.mem v !faults))
             (List.rev path)
         with
        | Some victim when List.length !faults <= d - 2 ->
            Printf.printf "          adversary kills %s\n" (W.to_string p victim);
            faults := victim :: !faults
        | _ -> stop := true)
    | None ->
        Printf.printf "%d faults: no 2n-hop route survives\n" (List.length !faults);
        stop := true)
  done;
  print_newline ();
  Printf.printf
    "Beyond d-2 = %d faults the 2n-hop guarantee lapses, though routes often\n\
     still exist; the FFC ring of Chapter 2 degrades the same way.\n"
    (d - 2)
