(* Butterfly networks: the section 3.4 extension.

   Shows (a) the [ABR90] partition under which F(2,3) contracts to
   B(2,3) (Figure 3.5), and (b) fault-tolerant Hamiltonian ring
   embedding in F(3,4) with faulty links, via the Phi map.

   Run with:  dune exec examples/butterfly_demo.exe *)

module W = Core.Word
module BG = Core.Butterfly_graph
module BE = Core.Butterfly_embed

let () =
  (* Part 1: Figure 3.5 — the classes S_x of F(2,3). *)
  let f23 = BG.create ~d:2 ~n:3 in
  let p = f23.BG.p in
  print_endline "F(2,3) partitioned into De Bruijn classes (Figure 3.5):";
  List.iter
    (fun x ->
      let members = List.init 3 (fun i -> BG.s_node f23 i x) in
      Printf.printf "  S_%s = { %s }\n" (W.to_string p x)
        (String.concat ", " (List.map (BG.to_string f23) members)))
    (W.all p);
  (* Part 2: fault-tolerant ring in F(3,4): gcd(3,4) = 1. *)
  let d = 3 and n = 4 in
  let bf = BG.create ~d ~n in
  Printf.printf "\nF(%d,%d): %d nodes; tolerating up to MAX(psi-1, phi) = %d faulty links\n"
    d n (BG.n_nodes bf) (Core.edge_fault_tolerance d);
  let rng = Core.Rng.create 7 in
  let random_edge () =
    let u = Core.Rng.int rng (BG.n_nodes bf) in
    let succs = BG.successors bf u in
    (u, List.nth succs (Core.Rng.int rng (List.length succs)))
  in
  let faults = [ random_edge () ] in
  List.iter
    (fun (u, v) ->
      Printf.printf "  faulty link: %s -> %s\n" (BG.to_string bf u) (BG.to_string bf v))
    faults;
  match BE.hc_avoiding bf ~faults with
  | None -> print_endline "no fault-free Hamiltonian ring found"
  | Some ring ->
      assert (Core.Cycle.is_hamiltonian bf.BG.graph ring);
      assert (Core.Cycle.avoids_edges ring (fun e -> List.mem e faults));
      Printf.printf "  fault-free Hamiltonian ring of all %d butterfly nodes found\n"
        (Array.length ring);
      Printf.printf "  first stops: %s ...\n"
        (String.concat " -> "
           (List.map (BG.to_string bf) (Array.to_list (Array.sub ring 0 6))));
      (* Part 3: disjoint rings in the butterfly (Proposition 3.6). *)
      let disjoint = BE.disjoint_hamiltonian_cycles bf in
      Printf.printf "\nF(%d,%d) also admits %d edge-disjoint Hamiltonian rings (psi(%d))\n" d
        n (List.length disjoint) d;
      assert (Core.Cycle.pairwise_edge_disjoint disjoint)
