  $ debruijn-rings psi 28
  $ debruijn-rings psi 13
  $ debruijn-rings count -d 2 -n 12
  $ debruijn-rings count -d 2 -n 12 --length 6
  $ debruijn-rings count -d 2 -n 12 --weight 4
  $ debruijn-rings count -d 2 -n 12 --weight 4 --length 6
  $ debruijn-rings ffc -d 3 -n 3 020 112
  $ debruijn-rings ffc -d 3 -n 3 --distributed 020 112 | tail -n 1
  $ debruijn-rings edge -d 5 -n 2 01-12 12-21 | head -n 1
  $ debruijn-rings disjoint -d 4 -n 2 | head -n 1
  $ debruijn-rings route -d 3 -n 3 012 221 --fault 020
  $ debruijn-rings route -d 3 -n 3 020 111
  $ debruijn-rings route -d 3 -n 3 020 111 --fault 020 2>&1
