(* Tests for the synchronous message-passing simulator. *)

module D = Graphlib.Digraph
module T = Graphlib.Traversal
module S = Netsim.Simulator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_faults _ = false

(* A flooding protocol computing BFS distance from a root: state is the
   best-known distance (max_int = unknown); the root seeds at round 0
   and every improvement is re-broadcast to all out-neighbors. *)
let flood_protocol root g : (int, int) S.protocol =
  {
    initial = (fun v -> if v = root then 0 else max_int);
    step =
      (fun ~round v state inbox ->
        let best = List.fold_left (fun acc (_, d) -> min acc (d + 1)) state inbox in
        let improved = best < state in
        let should_broadcast = improved || (round = 0 && v = root) in
        let sends =
          if should_broadcast then List.map (fun w -> (w, best)) (D.succs g v) else []
        in
        (best, sends));
    wants_step = (fun _ -> false);
  }

let ring n = D.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_flood_ring () =
  let g = ring 8 in
  let r = S.run ~topology:g ~faulty:no_faults (flood_protocol 0 g) in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5; 6; 7 |] r.S.states;
  (* Node 7 improves in round 7 (= eccentricity) and re-broadcasts; its
     message is delivered back to node 0 in round 8, which is therefore
     the last round with activity. *)
  check_int "rounds = eccentricity + 1" 8 r.S.rounds

let test_flood_matches_bfs () =
  (* Random-ish graph, compare protocol result with centralized BFS. *)
  let edges =
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (4, 0); (2, 5); (5, 6); (6, 2); (4, 7); (7, 8); (8, 9); (9, 4); (1, 9) ]
  in
  let g = D.of_edges 10 edges in
  let r = S.run ~topology:g ~faulty:no_faults (flood_protocol 0 g) in
  let expected = T.bfs_dist g 0 in
  Array.iteri
    (fun v d ->
      let got = if r.S.states.(v) = max_int then -1 else r.S.states.(v) in
      check_int (Printf.sprintf "node %d" v) d got)
    expected

let test_flood_with_fault () =
  (* Killing node 3 on a line 0->1->2->3->4 stops the flood at 2. *)
  let g = D.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let r = S.run ~topology:g ~faulty:(fun v -> v = 3) (flood_protocol 0 g) in
  check_int "node 2 reached" 2 r.S.states.(2);
  check_bool "node 4 not reached" true (r.S.states.(4) = max_int);
  (* Faulty node's state stays initial. *)
  check_bool "faulty state untouched" true (r.S.states.(3) = max_int)

let test_faulty_source_sends_nothing () =
  let g = ring 4 in
  let r = S.run ~topology:g ~faulty:(fun v -> v = 0) (flood_protocol 0 g) in
  check_bool "nobody reached" true (Array.for_all (fun s -> s = max_int || s = 0) r.S.states);
  check_int "no deliveries" 0 r.S.delivered

let test_illegal_send () =
  let g = D.of_edges 3 [ (0, 1) ] in
  let proto : (unit, int) S.protocol =
    {
      initial = (fun _ -> ());
      step = (fun ~round:_ v () _ -> if v = 0 then ((), [ (2, 0) ]) else ((), []));
      wants_step = (fun _ -> false);
    }
  in
  check_bool "raises" true
    (match S.run ~topology:g ~faulty:no_faults proto with
    | exception S.Illegal_send { src = 0; dst = 2; _ } -> true
    | _ -> false)

let test_divergence_guard () =
  let g = ring 3 in
  (* A protocol that always wants to step never quiesces. *)
  let proto : (unit, int) S.protocol =
    {
      initial = (fun _ -> ());
      step = (fun ~round:_ _ () _ -> ((), []));
      wants_step = (fun _ -> true);
    }
  in
  check_bool "did not converge" true
    (match S.run ~max_rounds:10 ~topology:g ~faulty:no_faults proto with
    | exception S.Did_not_converge 10 -> true
    | _ -> false)

let test_message_accounting () =
  (* Token passing once around a ring of 5: exactly 5 deliveries. *)
  let g = ring 5 in
  let proto : (bool, unit) S.protocol =
    {
      initial = (fun _ -> false);
      step =
        (fun ~round v seen inbox ->
          if round = 0 && v = 0 then (true, [ (1, ()) ])
          else
            match inbox with
            | [] -> (seen, [])
            | _ :: _ ->
                if seen then (seen, [])  (* token returned to the start *)
                else (true, [ ((v + 1) mod 5, ()) ]));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  check_int "deliveries" 5 r.S.delivered;
  check_int "max inflight" 1 r.S.max_inflight;
  check_int "port load 1 (single-port compatible)" 1 r.S.max_port_load;
  check_bool "all saw token" true (Array.for_all Fun.id r.S.states)

let test_multiport () =
  (* A star center sending to all leaves in one round: multi-port
     semantics deliver all k messages in the same round. *)
  let k = 6 in
  let g = D.of_edges (k + 1) (List.init k (fun i -> (0, i + 1))) in
  let proto : (bool, unit) S.protocol =
    {
      initial = (fun v -> v = 0);
      step =
        (fun ~round v seen inbox ->
          if round = 0 && v = 0 then (true, List.init k (fun i -> (i + 1, ())))
          else if inbox <> [] then (true, [])
          else (seen, []));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  check_bool "all leaves got it" true (Array.for_all Fun.id r.S.states);
  check_int "one round of delivery" 1 r.S.rounds;
  check_int "k messages in one round" k r.S.max_inflight;
  (* the star center used k ports at once; under single-port hardware
     the same protocol would need k rounds (the thesis's factor-d) *)
  check_int "port load" k r.S.max_port_load

let test_inbox_sorted_by_source () =
  (* Node 3 receives from 0,1,2 simultaneously; inbox must be sorted. *)
  let g = D.of_edges 4 [ (0, 3); (1, 3); (2, 3) ] in
  let proto : (int list, int) S.protocol =
    {
      initial = (fun _ -> []);
      step =
        (fun ~round v state inbox ->
          if round = 0 && v < 3 then (state, [ (3, v * 10) ])
          else if inbox <> [] then (List.map fst inbox, [])
          else (state, []));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  Alcotest.(check (list int)) "sources in order" [ 0; 1; 2 ] r.S.states.(3)

let () =
  Alcotest.run "netsim"
    [
      ( "simulator",
        [
          Alcotest.test_case "flood on ring" `Quick test_flood_ring;
          Alcotest.test_case "flood matches BFS" `Quick test_flood_matches_bfs;
          Alcotest.test_case "fault blocks flood" `Quick test_flood_with_fault;
          Alcotest.test_case "faulty source is silent" `Quick test_faulty_source_sends_nothing;
          Alcotest.test_case "illegal send" `Quick test_illegal_send;
          Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
          Alcotest.test_case "message accounting" `Quick test_message_accounting;
          Alcotest.test_case "multi-port star" `Quick test_multiport;
          Alcotest.test_case "inbox sorted" `Quick test_inbox_sorted_by_source;
        ] );
    ]
