(* Tests for shuffle-exchange graphs. *)

module SE = Shuffle.Shuffle_exchange
module W = Debruijn.Word
module D = Graphlib.Digraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sizes = [ (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (4, 2) ]

let test_symmetric () =
  List.iter
    (fun (d, n) ->
      let se = SE.create ~d ~n in
      D.iter_edges
        (fun u v -> check_bool "symmetric" true (D.mem_edge se.SE.graph v u))
        se.SE.graph)
    sizes

let test_every_edge_classified () =
  List.iter
    (fun (d, n) ->
      let se = SE.create ~d ~n in
      D.iter_edges
        (fun u v ->
          check_bool "shuffle or exchange" true
            (SE.is_shuffle_edge se (u, v) || SE.is_exchange_edge se (u, v)))
        se.SE.graph)
    sizes

let test_binary_degrees () =
  (* in the binary SE every node has one exchange partner and at most
     two shuffle partners *)
  let se = SE.create ~d:2 ~n:4 in
  let mn, mx = SE.degree_bounds se in
  check_bool "min degree >= 1" true (mn >= 1);
  check_bool "max degree <= 3" true (mx <= 3)

let test_orbit_is_necklace () =
  List.iter
    (fun (d, n) ->
      let se = SE.create ~d ~n in
      let p = se.SE.p in
      List.iter
        (fun x ->
          Alcotest.(check (list int))
            (Printf.sprintf "orbit of %s" (W.to_string p x))
            (Debruijn.Necklace.nodes p x) (SE.shuffle_orbit se x))
        (W.all p))
    [ (2, 4); (3, 3) ]

let test_necklace_count_matches_chapter_4 () =
  List.iter
    (fun (d, n) ->
      let se = SE.create ~d ~n in
      check_int
        (Printf.sprintf "SE(%d,%d)" d n)
        (Necklace_count.Count.total ~d ~n)
        (SE.necklace_count se))
    sizes

let test_connected () =
  List.iter
    (fun (d, n) ->
      let se = SE.create ~d ~n in
      let _, components = Graphlib.Traversal.weak_components se.SE.graph in
      check_int "connected" 1 components)
    sizes

let test_exchange_edges_complete_on_last_digit () =
  (* nodes sharing a prefix form an exchange clique *)
  let se = SE.create ~d:3 ~n:2 in
  let p = se.SE.p in
  List.iter
    (fun x ->
      let base = x - W.last_digit p x in
      for a = 0 to 2 do
        if base + a <> x then
          check_bool "exchange edge present" true (D.mem_edge se.SE.graph x (base + a))
      done)
    (W.all p)

let () =
  Alcotest.run "shuffle"
    [
      ( "structure",
        [
          Alcotest.test_case "symmetric" `Quick test_symmetric;
          Alcotest.test_case "edges classified" `Quick test_every_edge_classified;
          Alcotest.test_case "binary degrees" `Quick test_binary_degrees;
          Alcotest.test_case "orbit = necklace" `Quick test_orbit_is_necklace;
          Alcotest.test_case "necklace counts (Ch. 4)" `Quick test_necklace_count_matches_chapter_4;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "exchange cliques" `Quick test_exchange_edges_complete_on_last_digit;
        ] );
    ]
