test/test_hamsearch.ml: Alcotest Array Debruijn Dhc Fun Graphlib Hamsearch List Numtheory Printf QCheck QCheck_alcotest Test
