test/test_dhc.mli:
