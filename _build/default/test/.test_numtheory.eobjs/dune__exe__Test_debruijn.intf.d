test/test_debruijn.mli:
