test/test_hypercube.ml: Alcotest Array Debruijn Graphlib Hypercube List Printf QCheck QCheck_alcotest Test Util
