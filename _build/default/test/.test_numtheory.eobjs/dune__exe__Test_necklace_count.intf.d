test/test_necklace_count.mli:
