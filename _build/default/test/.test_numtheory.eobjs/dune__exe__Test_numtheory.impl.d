test/test_numtheory.ml: Alcotest List Numtheory Printf QCheck QCheck_alcotest Test
