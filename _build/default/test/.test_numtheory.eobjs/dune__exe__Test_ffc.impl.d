test/test_ffc.ml: Alcotest Array Debruijn Ffc Fun Gen Graphlib Hashtbl List Option Printf QCheck QCheck_alcotest Test Util
