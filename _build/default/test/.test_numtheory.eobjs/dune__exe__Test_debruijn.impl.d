test/test_debruijn.ml: Alcotest Array Debruijn Fun Galois Graphlib List Printf QCheck QCheck_alcotest Test
