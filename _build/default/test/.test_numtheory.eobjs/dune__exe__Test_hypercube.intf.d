test/test_hypercube.mli:
