test/test_galois.ml: Alcotest Galois Gen Hashtbl List Numtheory Printf QCheck QCheck_alcotest Test
