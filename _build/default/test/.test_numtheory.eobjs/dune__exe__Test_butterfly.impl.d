test/test_butterfly.ml: Alcotest Array Butterfly Debruijn Dhc Graphlib Hashtbl List Numtheory Option Printf QCheck QCheck_alcotest Test Util
