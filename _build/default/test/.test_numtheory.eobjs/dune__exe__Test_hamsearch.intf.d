test/test_hamsearch.mli:
