test/test_necklace_count.ml: Alcotest Fun List Necklace_count Numtheory Printf QCheck QCheck_alcotest String Test
