test/test_netsim.ml: Alcotest Array Fun Graphlib List Netsim Printf
