test/test_shuffle.mli:
