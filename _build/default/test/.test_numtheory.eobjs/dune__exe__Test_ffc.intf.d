test/test_ffc.mli:
