test/test_kautz.ml: Alcotest Array Fun Graphlib Hamsearch Hashtbl Kautz List Numtheory Printf QCheck QCheck_alcotest Test
