test/test_shuffle.ml: Alcotest Debruijn Graphlib List Necklace_count Printf Shuffle
