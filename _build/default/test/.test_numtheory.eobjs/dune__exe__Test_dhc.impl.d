test/test_dhc.ml: Alcotest Array Debruijn Dhc Fun Galois Graphlib List Numtheory Printf QCheck QCheck_alcotest Test Util
