test/test_kautz.mli:
