test/test_graphlib.ml: Alcotest Array Debruijn Fun Graphlib List Printf QCheck QCheck_alcotest Test
