test/test_butterfly.mli:
