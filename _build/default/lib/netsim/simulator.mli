(** A synchronous, round-based message-passing network simulator.

    This is the machine model the thesis assumes for its network-level
    algorithm: processors are graph nodes; in each communication step a
    node may send one message to {e each} of its neighbors (multi-port
    communication) and receives everything sent to it in the previous
    step; faulty processors are total failures — they neither compute
    nor route (their in- and out-edges are dead).

    The simulator charges one round per communication step, so a
    protocol's [rounds] statistic is directly comparable with the
    thesis's step bounds (Θ(n) for the FFC algorithm under f ≤ d−2
    faults, O(K + n) in general).

    Execution model:
    - Round 0: every live node runs [step] with an empty inbox (it may
      send its first messages).
    - Round r ≥ 1: messages sent in round r−1 are delivered; each live
      node with a nonempty inbox — plus any node that [wants_step] —
      runs [step].
    - The run ends when no messages are in flight and no node wants to
      step, or when [max_rounds] is hit. *)

type 'm outgoing = int * 'm
(** (destination, payload).  The destination must be an out-neighbor of
    the sender in the topology, else the send is rejected. *)

type ('s, 'm) protocol = {
  initial : int -> 's;  (** initial state per node id *)
  step : round:int -> int -> 's -> (int * 'm) list -> 's * 'm outgoing list;
      (** [step ~round v state inbox] — inbox is [(source, payload)]
          sorted by source; returns the new state and sends. *)
  wants_step : 's -> bool;
      (** Request a step next round even with an empty inbox — used for
          spontaneous phase transitions (e.g. a timeout after n rounds). *)
}

type 's result = {
  rounds : int;  (** rounds executed (the last round with activity) *)
  states : 's array;  (** final state of every node (faulty included, at their initial state) *)
  delivered : int;  (** total messages delivered over the run *)
  max_inflight : int;  (** peak messages delivered in a single round *)
  max_port_load : int;
      (** peak messages sent by one node in one round — 1 under
          single-port communication; the thesis's "factor of d" remark
          (§2.4) corresponds to a multi-port protocol with load d being
          serialized over d single-port rounds *)
}

exception Illegal_send of { round : int; src : int; dst : int }
(** Raised when a node tries to send to a non-neighbor. *)

exception Did_not_converge of int
(** Raised when [max_rounds] is exceeded; carries the limit. *)

val run :
  ?max_rounds:int ->
  topology:Graphlib.Digraph.t ->
  faulty:(int -> bool) ->
  ('s, 'm) protocol ->
  's result
(** Execute the protocol on all non-faulty nodes of the topology.
    [max_rounds] defaults to [4 * n_nodes + 64].  Messages sent to or
    from faulty nodes are silently dropped — receivers cannot tell a
    dead neighbor from a silent one, exactly as in the thesis's fault
    model. *)
