lib/netsim/simulator.mli: Graphlib
