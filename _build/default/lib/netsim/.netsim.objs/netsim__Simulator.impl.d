lib/netsim/simulator.ml: Array Graphlib List Option
