(** The n-dimensional hypercube Q_n — the comparison network of the
    Chapter 2 introduction ([WC92, CL91a]: a fault-free cycle of length
    2ⁿ − 2f exists under f ≤ n−2 node faults). *)

val graph : int -> Graphlib.Digraph.t
(** Q_n as a symmetric digraph on 2ⁿ nodes (edges in both directions). *)

val neighbors : n:int -> int -> int list
(** The n nodes at Hamming distance 1. *)

val n_edges_undirected : int -> int
(** n·2^{n−1} — the edge count quoted in the thesis's comparison
    (24,576 for Q₁₂ vs 16,384 for B(4,6)). *)

val gray_cycle : int -> int array
(** The reflected binary Gray code as a Hamiltonian cycle of Q_n,
    n ≥ 2. *)

val gray_cycle_through : n:int -> int * int -> int array
(** A Hamiltonian cycle containing the given (Hamming-adjacent) edge as
    a consecutive pair, obtained from the Gray cycle by a coordinate
    automorphism.  @raise Invalid_argument if the pair is not an edge. *)
