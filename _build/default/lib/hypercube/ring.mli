(** Fault-tolerant ring embedding in hypercubes — the baseline the
    thesis compares against ([WC92, CL91a]: with f ≤ n−2 faulty nodes,
    Q_n contains a fault-free cycle of length 2ⁿ − 2f).

    The implementation is the classic divide-and-merge: split along a
    dimension that separates the faults, recursively embed a ring in
    each (n−1)-subcube, and splice the rings along a matching pair of
    cross edges.  All dimensions are tried before giving up, and the
    fault-free base case is a Gray code (optionally routed through a
    required edge so the merge can always anchor). *)

val target_length : n:int -> f:int -> int
(** 2ⁿ − 2f: the guaranteed cycle length for f ≤ n−2. *)

val embed : n:int -> faults:int list -> int array option
(** A fault-free cycle of length ≥ 2ⁿ − 2|faults| when |faults| ≤ n−2
    (the search can also succeed beyond the bound).  Nodes are cube
    codes in [0, 2ⁿ).  [None] if the construction fails. *)

val verify : n:int -> faults:int list -> int array -> bool
(** The cycle is a simple cycle of Q_n avoiding all faults. *)
