lib/hypercube/ring.ml: Array Cube Fun Graphlib Hashtbl List Option
