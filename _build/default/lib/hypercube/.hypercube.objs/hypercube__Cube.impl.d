lib/hypercube/cube.ml: Array Graphlib List
