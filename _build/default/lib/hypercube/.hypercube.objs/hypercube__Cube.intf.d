lib/hypercube/cube.mli: Graphlib
