lib/hypercube/ring.mli:
