let neighbors ~n x = List.init n (fun i -> x lxor (1 lsl i))

let graph n =
  if n < 1 then invalid_arg "Cube.graph: n < 1";
  Graphlib.Digraph.of_successors (1 lsl n) (neighbors ~n)

let n_edges_undirected n = n * (1 lsl (n - 1))

let gray_cycle n =
  if n < 2 then invalid_arg "Cube.gray_cycle: n < 2";
  Array.init (1 lsl n) (fun i -> i lxor (i lsr 1))

let swap_bits x i j =
  if i = j then x
  else
    let bi = (x lsr i) land 1 and bj = (x lsr j) land 1 in
    if bi = bj then x else x lxor ((1 lsl i) lor (1 lsl j))

let gray_cycle_through ~n (u, v) =
  let diff = u lxor v in
  if diff = 0 || diff land (diff - 1) <> 0 then
    invalid_arg "Cube.gray_cycle_through: not a hypercube edge";
  let b =
    let rec go i = if diff lsr i = 1 then i else go (i + 1) in
    go 0
  in
  (* The Gray cycle starts 0, 1, …: push it through the automorphism
     x ↦ u xor swap₀ᵦ(x), which sends the edge (0,1) to (u,v). *)
  Array.map (fun x -> u lxor swap_bits x 0 b) (gray_cycle n)
