(** Chapter 4: counting necklaces by Möbius inversion.

    Propositions 4.1/4.2: if Γ(m) counts the m-tuples satisfying a
    rotation-invariant, period-compatible predicate (Conditions A/B),
    then the necklaces of length t through such nodes in B(d,n) number
    (1/t)·Σ_{j | t} Γ(j)·μ(t/j), and in total
    (1/n)·Σ_{j | n} Γ(j)·φ(n/j).

    Instantiations: all nodes (counting by length), nodes of a given
    weight (binary and d-ary), and nodes of a given type. *)

val of_length_generic : gamma:(int -> int) -> int -> int
(** [of_length_generic ~gamma t] — Proposition 4.1's formula; [gamma j]
    must be #Γ(j). *)

val total_generic : gamma:(int -> int) -> int -> int
(** [total_generic ~gamma n] — Proposition 4.2's formula. *)

val of_length : d:int -> n:int -> t:int -> int
(** Number of necklaces of length [t] in B(d,n); 0 unless t divides n. *)

val total : d:int -> n:int -> int
(** Total number of necklaces in B(d,n). *)

val tuples_of_weight : d:int -> n:int -> k:int -> int
(** c_d(n,k): the number of d-ary n-tuples of weight k, by the
    inclusion–exclusion closed form
    Σᵢ (−1)ⁱ C(n,i) C(n−1+k−di, n−1). *)

val of_weight_and_length : d:int -> n:int -> k:int -> t:int -> int
(** Necklaces of length [t] in B(d,n) whose nodes have weight [k]. *)

val of_weight : d:int -> n:int -> k:int -> int
(** All necklaces of weight [k] in B(d,n). *)

val tuples_of_type : int list -> int
(** Number of tuples of type K = [k₀;…;k_{d−1}]: (Σkᵢ)!/∏kᵢ!. *)

val of_type_and_length : n:int -> counts:int list -> t:int -> int
(** Necklaces of length [t] in B(d,n) of type [counts] (which must sum
    to n). *)

val of_type : n:int -> counts:int list -> int
(** All necklaces of the given type. *)

(* Brute-force references (exhaustive enumeration) used by the tests and
   benches to validate the closed forms. *)

val enumerate_of_length : d:int -> n:int -> t:int -> int
val enumerate_total : d:int -> n:int -> int
val enumerate_of_weight : d:int -> n:int -> k:int -> int
val enumerate_of_weight_and_length : d:int -> n:int -> k:int -> t:int -> int
val enumerate_of_type : d:int -> n:int -> counts:int list -> int
