module N = Numtheory
module W = Debruijn.Word
module Nk = Debruijn.Necklace

let of_length_generic ~gamma t =
  N.sum_over_divisors t (fun j -> gamma j * N.mobius (t / j)) / t

let total_generic ~gamma n =
  N.sum_over_divisors n (fun j -> gamma j * N.euler_phi (n / j)) / n

let of_length ~d ~n ~t =
  if t < 1 || n mod t <> 0 then 0
  else of_length_generic ~gamma:(fun j -> N.pow d j) t

let total ~d ~n = total_generic ~gamma:(fun j -> N.pow d j) n

let tuples_of_weight ~d ~n ~k =
  if k < 0 || k > n * (d - 1) then 0
  else begin
    (* Inclusion–exclusion over digits forced ≥ d ([Knu73] generating
       function (1 + z + … + z^{d−1})ⁿ). *)
    let acc = ref 0 in
    for i = 0 to k / d do
      let term = N.binomial n i * N.binomial (n - 1 + k - (d * i)) (n - 1) in
      acc := !acc + (if i mod 2 = 0 then term else -term)
    done;
    !acc
  end

(* Weight-k nodes satisfy Conditions A/B with g(m) = km/n: Γ(j) counts
   j-tuples of weight jk/n, which is zero unless jk/n is integral. *)
let weight_gamma ~d ~n ~k j =
  if j * k mod n <> 0 then 0 else tuples_of_weight ~d ~n:j ~k:(j * k / n)

let of_weight_and_length ~d ~n ~k ~t =
  if t < 1 || n mod t <> 0 then 0
  else of_length_generic ~gamma:(weight_gamma ~d ~n ~k) t

let of_weight ~d ~n ~k = total_generic ~gamma:(weight_gamma ~d ~n ~k) n

let tuples_of_type counts = N.multinomial counts

let type_gamma ~n ~counts j =
  (* Γ(j) = number of j-tuples of type (j·k₀/n, …); zero unless all the
     scaled counts are integral. *)
  if List.exists (fun k -> j * k mod n <> 0) counts then 0
  else tuples_of_type (List.map (fun k -> j * k / n) counts)

let of_type_and_length ~n ~counts ~t =
  if List.fold_left ( + ) 0 counts <> n then invalid_arg "Count.of_type: counts must sum to n";
  if t < 1 || n mod t <> 0 then 0
  else of_length_generic ~gamma:(type_gamma ~n ~counts) t

let of_type ~n ~counts =
  if List.fold_left ( + ) 0 counts <> n then invalid_arg "Count.of_type: counts must sum to n";
  total_generic ~gamma:(type_gamma ~n ~counts) n

(* ------------------------------------------------------------------ *)
(* Exhaustive references *)

let enumerate_filtered ~d ~n pred =
  let p = W.params ~d ~n in
  List.length
    (List.filter (fun r -> pred p r) (Nk.all_representatives p))

let enumerate_of_length ~d ~n ~t =
  enumerate_filtered ~d ~n (fun p r -> Nk.length p r = t)

let enumerate_total ~d ~n = enumerate_filtered ~d ~n (fun _ _ -> true)

let enumerate_of_weight ~d ~n ~k =
  enumerate_filtered ~d ~n (fun p r -> W.weight p r = k)

let enumerate_of_weight_and_length ~d ~n ~k ~t =
  enumerate_filtered ~d ~n (fun p r -> W.weight p r = k && Nk.length p r = t)

let enumerate_of_type ~d ~n ~counts =
  let counts = Array.of_list counts in
  enumerate_filtered ~d ~n (fun p r ->
      Array.for_all Fun.id
        (Array.mapi (fun a k -> W.count_digit p a r = k) counts))
