lib/necklace_count/count.ml: Array Debruijn Fun List Numtheory
