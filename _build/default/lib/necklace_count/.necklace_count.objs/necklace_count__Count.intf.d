lib/necklace_count/count.mli:
