(** Bounded backtracking search for cycles in digraphs.

    The constructions of Chapters 2–3 are certificate-producing and run
    in polynomial time; this module is the complementary {e search}
    tool used to probe the thesis's Chapter 5 open questions on small
    instances (does B(d,n) admit a fault-free HC under d−2 edge faults
    for composite d?  does it admit d−1 disjoint HCs?  what about the
    undirected UB(d,n)?), and to exercise the pancyclicity remark of
    §2.5.

    All searches carry an explicit step [budget] (number of backtracking
    node expansions); exceeding it yields [`Exhausted] rather than an
    answer, so callers can report "unknown" honestly. *)

type outcome = Found of int array | Not_found | Exhausted

val cycle :
  ?budget:int ->
  ?avoid_nodes:(int -> bool) ->
  ?avoid_edges:(int * int -> bool) ->
  ?length:int ->
  Graphlib.Digraph.t ->
  outcome
(** [cycle g] searches for a simple cycle of [g]:
    - [length]: exact cycle length required (default: Hamiltonian on the
      non-avoided nodes);
    - [avoid_nodes] / [avoid_edges]: constraints;
    - [budget]: maximum expansions (default 2,000,000).

    The search starts from the smallest usable node, tries successors in
    increasing order, and prunes when a non-visited node loses all its
    usable in- or out-edges (a standard degree argument). *)

val hamiltonian :
  ?budget:int ->
  ?avoid_nodes:(int -> bool) ->
  ?avoid_edges:(int * int -> bool) ->
  Graphlib.Digraph.t ->
  outcome
(** [cycle] with the Hamiltonian default made explicit. *)

val count_cycles :
  ?budget:int ->
  ?avoid_nodes:(int -> bool) ->
  ?avoid_edges:(int * int -> bool) ->
  ?length:int ->
  Graphlib.Digraph.t ->
  int option
(** Exhaustively count the simple cycles (default: Hamiltonian) —
    [None] when the budget ran out before the sweep completed.  Used to
    check the BEST-theorem corollary that B(d,n) has exactly
    (d!)^(d^{n−1}) / dⁿ Hamiltonian cycles. *)

val disjoint_hamiltonian_cycles :
  ?budget:int -> k:int -> Graphlib.Digraph.t -> int array list option * bool
(** Try to accumulate [k] pairwise edge-disjoint Hamiltonian cycles by
    backtracking across levels (each level forbids the edges of the
    cycles already chosen, and on failure the previous level resumes
    from its next cycle).  Returns [(Some cycles, exhausted?)] on
    success and [(None, exhausted?)] otherwise, where the flag reports
    whether any branch hit the budget (so "no" is only conclusive when
    it is [false]). *)
