module DG = Graphlib.Digraph

type outcome = Found of int array | Not_found | Exhausted

(* Core enumerator.  Cycles are produced in canonical form: rooted at
   their minimal node, so each simple cycle is seen exactly once.  The
   callback returns [true] to continue enumerating.  [steps] persists
   across calls so that nested searches share one budget.  The result
   says whether the space was fully swept. *)
type sweep = Complete | Stopped | Ran_out

let count_usable g usable_node =
  let n = DG.n_nodes g in
  let rec go v acc = if v >= n then acc else go (v + 1) (if usable_node v then acc + 1 else acc) in
  go 0 0

let enumerate ~steps ~budget ~usable_node ~usable_edge ~length g ~on_found =
  let n = DG.n_nodes g in
  let visited = Array.make n false in
  let path = Array.make (max 1 (min length n)) 0 in
  let exception Stop in
  let exception Out_of_budget in
  let rec extend start depth u =
    incr steps;
    if !steps > budget then raise Out_of_budget;
    if depth = length then begin
      if usable_edge (u, start) && DG.mem_edge g u start then
        if not (on_found (Array.sub path 0 length)) then raise Stop
    end
    else
      List.iter
        (fun v ->
          (* canonicity: only nodes above the root may appear *)
          if v > start && usable_node v && (not visited.(v)) && usable_edge (u, v)
          then begin
            visited.(v) <- true;
            path.(depth) <- v;
            extend start (depth + 1) v;
            visited.(v) <- false
          end)
        (DG.succs g u)
  in
  let hamiltonian = length = count_usable g usable_node in
  let result = ref Complete in
  (try
     if length = 1 then
       for v = 0 to n - 1 do
         incr steps;
         if !steps > budget then raise Out_of_budget;
         if usable_node v && usable_edge (v, v) && DG.mem_edge g v v then begin
           path.(0) <- v;
           if not (on_found [| v |]) then raise Stop
         end
       done
     else begin
       let tried_one = ref false in
       for start = 0 to n - 1 do
         (* a Hamiltonian cycle must contain the minimal usable node, so
            only the first start can succeed in that case *)
         if usable_node start && not (hamiltonian && !tried_one) then begin
           tried_one := true;
           visited.(start) <- true;
           path.(0) <- start;
           extend start 1 start;
           visited.(start) <- false
         end
       done
     end
   with
  | Stop -> result := Stopped
  | Out_of_budget -> result := Ran_out);
  !result

let default_budget = 2_000_000

let cycle ?(budget = default_budget) ?(avoid_nodes = fun _ -> false)
    ?(avoid_edges = fun _ -> false) ?length g =
  let usable_node v = not (avoid_nodes v) in
  let usable_edge e = not (avoid_edges e) in
  let total = count_usable g usable_node in
  let length = Option.value length ~default:total in
  if length < 1 || length > total then Not_found
  else begin
    let answer = ref None in
    let steps = ref 0 in
    let sweep =
      enumerate ~steps ~budget ~usable_node ~usable_edge ~length g ~on_found:(fun c ->
          answer := Some c;
          false)
    in
    match (!answer, sweep) with
    | Some c, _ -> Found c
    | None, Complete -> Not_found
    | None, (Ran_out | Stopped) -> Exhausted
  end

let count_cycles ?(budget = default_budget) ?(avoid_nodes = fun _ -> false)
    ?(avoid_edges = fun _ -> false) ?length g =
  let usable_node v = not (avoid_nodes v) in
  let usable_edge e = not (avoid_edges e) in
  let total = count_usable g usable_node in
  let length = Option.value length ~default:total in
  if length < 1 || length > total then Some 0
  else begin
    let count = ref 0 in
    let steps = ref 0 in
    match
      enumerate ~steps ~budget ~usable_node ~usable_edge ~length g ~on_found:(fun _ ->
          incr count;
          true)
    with
    | Complete | Stopped -> Some !count
    | Ran_out -> None
  end

let hamiltonian ?budget ?avoid_nodes ?avoid_edges g =
  cycle ?budget ?avoid_nodes ?avoid_edges g

let disjoint_hamiltonian_cycles ?(budget = default_budget) ~k g =
  let steps = ref 0 in
  let exhausted = ref false in
  (* Edge set already used by chosen cycles. *)
  let used = Hashtbl.create 1024 in
  let with_cycle c body =
    let es = Graphlib.Cycle.edges_of_cycle c in
    List.iter (fun e -> Hashtbl.replace used e ()) es;
    let r = body () in
    List.iter (fun e -> Hashtbl.remove used e) es;
    r
  in
  let rec level i acc =
    if i = k then Some (List.rev acc)
    else begin
      let found = ref None in
      let sweep =
        enumerate ~steps ~budget
          ~usable_node:(fun _ -> true)
          ~usable_edge:(fun e -> not (Hashtbl.mem used e))
          ~length:(DG.n_nodes g) g
          ~on_found:(fun c ->
            match with_cycle c (fun () -> level (i + 1) (c :: acc)) with
            | Some _ as r ->
                found := r;
                false
            | None -> true)
      in
      (match sweep with
      | Ran_out -> exhausted := true
      | Complete | Stopped -> ());
      !found
    end
  in
  let r = level 0 [] in
  (r, !exhausted)
