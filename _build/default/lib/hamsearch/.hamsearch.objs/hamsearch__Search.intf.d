lib/hamsearch/search.mli: Graphlib
