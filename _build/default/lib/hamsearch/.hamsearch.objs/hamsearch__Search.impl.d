lib/hamsearch/search.ml: Array Graphlib Hashtbl List Option
