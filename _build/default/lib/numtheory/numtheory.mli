(** Elementary number theory.

    This module is the arithmetic substrate for Chapters 3 and 4 of the
    thesis: Euler's totient and the Möbius function drive the necklace
    counting formulas (Propositions 4.1/4.2), factorization and primitive
    roots drive the disjoint-Hamiltonian-cycle strategies (Lemma 3.5,
    Propositions 3.1–3.4).

    All functions operate on OCaml [int]s and assume their results fit;
    the sizes used by the reproduction (d ≤ 64, dⁿ ≤ ~10⁷) are far below
    overflow territory on a 63-bit [int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor of [a] and [b].
    [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple, non-negative; [lcm 0 _ = 0]. *)

val pow : int -> int -> int
(** [pow b e] is [b]{^ [e]} by binary exponentiation.
    @raise Invalid_argument if [e < 0]. *)

val pow_mod : int -> int -> int -> int
(** [pow_mod b e m] is [b]{^ [e]} mod [m] for [m ≥ 1], [e ≥ 0].
    Intermediate products are taken mod [m]; [m] must satisfy
    [m*m ≤ max_int]. *)

val is_prime : int -> bool
(** Deterministic primality by trial division; intended range ≤ 10¹². *)

val factorize : int -> (int * int) list
(** [factorize n] is the prime factorization of [n ≥ 1] as
    [(p₁,e₁); …; (p_k,e_k)] with p₁ < p₂ < …; [factorize 1 = []]. *)

val divisors : int -> int list
(** All positive divisors of [n ≥ 1], sorted increasingly. *)

val num_distinct_prime_factors : int -> int
(** ω(n): the number of distinct primes dividing [n ≥ 1]. *)

val mobius : int -> int
(** Möbius μ(n) for [n ≥ 1]: 1 if n = 1, (−1)^k for squarefree n with k
    prime factors, 0 otherwise. *)

val euler_phi : int -> int
(** Euler totient φ(n) for [n ≥ 1]. *)

val is_prime_power : int -> (int * int) option
(** [is_prime_power d] is [Some (p, e)] when [d = p^e] with [p] prime and
    [e ≥ 1], [None] otherwise (including d ≤ 1). *)

val primitive_root : int -> int
(** [primitive_root p] is the least primitive root of ℤ_p for prime [p].
    @raise Invalid_argument if [p] is not prime. *)

val is_primitive_root : int -> int -> bool
(** [is_primitive_root g p] tests whether [g] generates ℤ_p^*. *)

val discrete_log : int -> int -> int -> int option
(** [discrete_log g y p] is the least [k ≥ 0] with [g^k ≡ y (mod p)],
    searching k < p−1 by enumeration (fine for the small p used here). *)

val order_mod : int -> int -> int
(** [order_mod a m] is the multiplicative order of [a] modulo [m] for
    [gcd a m = 1], [m ≥ 2].
    @raise Invalid_argument if [gcd a m ≠ 1]. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k); 0 when [k < 0] or [k > n]. *)

val multinomial : int list -> int
(** [multinomial [k₀;…;k_{m−1}]] = (Σkᵢ)! / ∏ kᵢ!; all kᵢ must be ≥ 0. *)

val quadratic_residue : int -> int -> bool
(** [quadratic_residue a p] for odd prime [p] and [a] not ≡ 0: true iff
    [a] is a QR mod [p] (Euler's criterion). *)

val sum_over_divisors : int -> (int -> int) -> int
(** [sum_over_divisors n f] is the sum of [f t] over all divisors t of n. *)
