lib/util/rng.mli:
