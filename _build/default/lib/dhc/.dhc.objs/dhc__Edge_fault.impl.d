lib/dhc/edge_fault.ml: Array Compose Debruijn Ffc Fun Graphlib List Numtheory Option Psi Shift_cycles
