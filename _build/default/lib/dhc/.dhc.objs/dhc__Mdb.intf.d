lib/dhc/mdb.mli: Debruijn Graphlib
