lib/dhc/psi.mli:
