lib/dhc/shift_cycles.ml: Array Debruijn Galois Lfsr
