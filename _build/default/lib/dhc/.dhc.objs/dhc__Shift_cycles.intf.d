lib/dhc/shift_cycles.mli: Debruijn Galois Lfsr
