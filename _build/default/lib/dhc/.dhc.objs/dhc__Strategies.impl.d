lib/dhc/strategies.ml: Galois Hashtbl Lfsr List Numtheory Option Shift_cycles
