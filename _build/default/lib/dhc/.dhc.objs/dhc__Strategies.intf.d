lib/dhc/strategies.mli: Galois Shift_cycles
