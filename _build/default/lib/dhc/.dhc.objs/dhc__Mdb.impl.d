lib/dhc/mdb.ml: Array Debruijn Fun Galois Graphlib List Numtheory Option Shift_cycles
