lib/dhc/psi.ml: List Numtheory Strategies
