lib/dhc/lfsr.mli: Galois
