lib/dhc/lfsr.ml: Array Galois Numtheory
