lib/dhc/compose.mli:
