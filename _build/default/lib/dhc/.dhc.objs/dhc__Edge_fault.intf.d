lib/dhc/edge_fault.mli:
