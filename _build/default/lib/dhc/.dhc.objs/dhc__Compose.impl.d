lib/dhc/compose.ml: Array List Numtheory Strategies
