(** Fault-free Hamiltonian cycles under edge failures (§3.3).

    Proposition 3.3 (constructive): B(d,n) admits an HC avoiding any
    f ≤ φ(d) = Σpᵢᵉⁱ − 2k faulty edges.
    - Prime-power d: the d cycles s + C are edge-disjoint, so some s + C
      is fault-free; of its d−1 insertion pairs {αᵢsⁿ, sⁿα̂ᵢ} a fault
      kills at most one, so some pair survives and H_s is fault-free.
    - Composite d = s·t (coprime): every edge of (A,B) projects to an
      edge of A and an edge of B; route each fault to one side, at most
      φ(s) to A and φ(t) to B, and recurse.

    Proposition 3.4 adds the alternative of picking a fault-free member
    of the ψ(d) disjoint HCs, tolerating ψ(d)−1 faults. *)

type fault = int * int
(** A faulty edge as a node pair of B(d,n). *)

val hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** The Proposition 3.3 construction; returns the HC as a sequence of
    length dⁿ, or [None] if the search fails (guaranteed to succeed for
    |faults| ≤ φ(d); may also succeed beyond).  Requires n ≥ 2.
    Non-De-Bruijn-edge faults are rejected with [Invalid_argument]. *)

val hc_avoiding_via_disjoint : d:int -> n:int -> faults:fault list -> int array option
(** Pick a fault-free cycle among the ψ(d) disjoint HCs — handles up to
    ψ(d)−1 faults. *)

val best_hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** Try {!hc_avoiding}, falling back to {!hc_avoiding_via_disjoint} —
    realizes the MAX(ψ(d)−1, φ(d)) bound of Proposition 3.4. *)

val via_node_masking : d:int -> n:int -> faults:fault list -> int array option
(** The strawman the chapter opens with: declare every endpoint of a
    faulty link faulty and fall back to the Chapter 2 node-fault
    algorithm.  Always succeeds when anything survives, but needlessly
    drops live processors — the ring is not Hamiltonian.  Exposed for
    the ablation benchmark comparing it against {!hc_avoiding}. *)

val worst_case_edge_faults : d:int -> n:int -> int -> fault list
(** [worst_case_edge_faults ~d ~n f] gives f of the d−1 non-loop edges
    terminating at node 0ⁿ — removing all d−1 of them makes the graph
    non-Hamiltonian, so d−2 is the best possible tolerance. *)
