(** Breadth-first traversal, distances, components.

    The FFC algorithm's Step 1.1 is a BFS broadcast whose parent rule is
    "the predecessor from which the node first received the message,
    ties broken by the minimal predecessor" — {!bfs_tree} implements
    exactly that rule. *)

val bfs_dist : Digraph.t -> int -> int array
(** [bfs_dist g src] gives directed distances from [src]; unreachable
    nodes get [-1]. *)

val bfs_dist_restricted : Digraph.t -> (int -> bool) -> int -> int array
(** BFS over the subgraph induced by nodes satisfying the predicate
    ([src] must satisfy it). *)

val bfs_tree : Digraph.t -> int -> int array * int array
(** [bfs_tree g src] is [(dist, parent)] where [parent.(v)] is the
    minimal predecessor of [v] at depth [dist.(v) − 1]; [parent.(src)]
    and unreachable nodes are [-1]. *)

val eccentricity : Digraph.t -> int -> int
(** Maximum finite BFS distance from the node (directed). *)

val diameter_from_all : Digraph.t -> int
(** Maximum eccentricity over all nodes that can reach every other node
    of their component; intended for small graphs (O(V·E)). *)

val weak_components : Digraph.t -> int array * int
(** [weak_components g] labels every node with a component id in the
    symmetric closure, returning [(label, count)].  Isolated nodes form
    their own components. *)

val largest_weak_component : Digraph.t -> (int -> bool) -> int list
(** Largest weakly-connected node set of the subgraph induced by the
    predicate (ties broken toward the component of the smallest node).
    Nodes failing the predicate are excluded entirely. *)

val strongly_connected_components : Digraph.t -> int list list
(** Tarjan's SCC; components in reverse topological order. *)

val is_strongly_connected : Digraph.t -> (int -> bool) -> bool
(** Is the induced subgraph on the predicate's nodes strongly connected?
    (Vacuously true on ≤ 1 node.) *)
