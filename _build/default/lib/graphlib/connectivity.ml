(* Unit-capacity max-flow (Edmonds–Karp) on an adjacency-hashtable
   residual network.  Sizes here are experiment-scale, so clarity wins
   over asymptotics. *)

let infinity_cap = max_int / 4

type network = {
  n : int;
  cap : (int * int, int) Hashtbl.t;
  adj : int list array;  (* neighbors in either direction (residual arcs) *)
}

let make_network n =
  { n; cap = Hashtbl.create (8 * n); adj = Array.make n [] }

let add_cap net u v c =
  let cur = Option.value ~default:0 (Hashtbl.find_opt net.cap (u, v)) in
  if cur = 0 && c > 0 && not (List.mem v net.adj.(u)) then begin
    net.adj.(u) <- v :: net.adj.(u);
    net.adj.(v) <- u :: net.adj.(v)  (* residual arc *)
  end;
  Hashtbl.replace net.cap (u, v) (cur + c)

let cap_of net u v = Option.value ~default:0 (Hashtbl.find_opt net.cap (u, v))

let max_flow net s t =
  let flow = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* BFS for an augmenting path in the residual graph *)
    let parent = Array.make net.n (-1) in
    parent.(s) <- s;
    let q = Queue.create () in
    Queue.push s q;
    while (not (Queue.is_empty q)) && parent.(t) < 0 do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) < 0 && cap_of net u v > 0 then begin
            parent.(v) <- u;
            Queue.push v q
          end)
        net.adj.(u)
    done;
    if parent.(t) < 0 then continue_ := false
    else begin
      (* bottleneck *)
      let rec bottleneck v acc =
        if v = s then acc else bottleneck parent.(v) (min acc (cap_of net parent.(v) v))
      in
      let b = bottleneck t infinity_cap in
      let rec push v =
        if v <> s then begin
          let u = parent.(v) in
          Hashtbl.replace net.cap (u, v) (cap_of net u v - b);
          Hashtbl.replace net.cap (v, u) (cap_of net v u + b);
          push u
        end
      in
      push t;
      flow := !flow + b
    end
  done;
  !flow

let max_edge_disjoint_paths g u v =
  if u = v then invalid_arg "Connectivity: u = v";
  let n = Digraph.n_nodes g in
  let net = make_network n in
  Digraph.iter_edges (fun a b -> if a <> b then add_cap net a b 1) g;
  max_flow net u v

let max_node_disjoint_paths g u v =
  if u = v then invalid_arg "Connectivity: u = v";
  let n = Digraph.n_nodes g in
  (* split w into w_in = w and w_out = w + n, capacity 1; u and v keep
     infinite internal capacity *)
  let net = make_network (2 * n) in
  for w = 0 to n - 1 do
    add_cap net w (w + n) (if w = u || w = v then infinity_cap else 1)
  done;
  (* Unit edge capacities: internal nodes already bound every shared
     edge, and a direct u→v edge must count as exactly one path rather
     than slip past both splits with infinite capacity. *)
  Digraph.iter_edges (fun a b -> if a <> b then add_cap net (a + n) b 1) g;
  max_flow net (u + n) v

let edge_connectivity g =
  let n = Digraph.n_nodes g in
  if n < 2 then 0
  else begin
    let best = ref max_int in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then best := min !best (max_edge_disjoint_paths g u v)
      done
    done;
    !best
  end

let node_connectivity g =
  let n = Digraph.n_nodes g in
  if n < 2 then 0
  else begin
    let best = ref max_int in
    let nonadjacent_found = ref false in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && not (Digraph.mem_edge g u v) then begin
          nonadjacent_found := true;
          best := min !best (max_node_disjoint_paths g u v)
        end
      done
    done;
    if !nonadjacent_found then !best else n - 1
  end
