(** Connectivity via unit-capacity max-flow (Menger's theorem).

    Chapter 1 frames network reliability through connectivity — the
    d-ary De Bruijn digraph has (node-)connectivity d−1 and UB(d,n) has
    2(d−1) [EH85], which is why "f ≤ d−2 faults" is the natural fault
    regime.  This module computes those quantities exactly on small
    graphs with BFS-augmenting max-flow (Edmonds–Karp) over the
    standard node-splitting construction. *)

val max_edge_disjoint_paths : Digraph.t -> int -> int -> int
(** Maximum number of pairwise edge-disjoint u→v paths (u ≠ v). *)

val max_node_disjoint_paths : Digraph.t -> int -> int -> int
(** Maximum number of internally node-disjoint u→v paths (u ≠ v,
    counting a direct edge as one path). *)

val edge_connectivity : Digraph.t -> int
(** λ(G) = min over ordered pairs of {!max_edge_disjoint_paths} — 0 for
    graphs that are not strongly connected.  O(V²) flow computations;
    for experiment-sized graphs. *)

val node_connectivity : Digraph.t -> int
(** κ(G): minimum over non-adjacent ordered pairs of internally
    node-disjoint paths (standard convention; complete digraphs get
    n−1).  Loops are ignored. *)
