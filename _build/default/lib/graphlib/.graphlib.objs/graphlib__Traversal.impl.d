lib/graphlib/traversal.ml: Array Digraph Fun List Queue
