lib/graphlib/euler.mli: Digraph
