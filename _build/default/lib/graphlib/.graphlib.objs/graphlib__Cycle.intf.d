lib/graphlib/cycle.mli: Digraph Hashtbl
