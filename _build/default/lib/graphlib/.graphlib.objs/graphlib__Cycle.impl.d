lib/graphlib/cycle.ml: Array Digraph Hashtbl List
