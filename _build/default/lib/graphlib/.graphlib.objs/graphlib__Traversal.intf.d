lib/graphlib/traversal.mli: Digraph
