lib/graphlib/digraph.mli:
