lib/graphlib/connectivity.mli: Digraph
