lib/graphlib/euler.ml: Array Digraph Hashtbl List Option Traversal
