lib/graphlib/connectivity.ml: Array Digraph Hashtbl List Option Queue
