lib/graphlib/digraph.ml: Array List
