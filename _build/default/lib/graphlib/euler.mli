(** Eulerian circuits in digraphs.

    The worst-case optimality argument of §2.5 rests on the fact that a
    connected balanced digraph is Eulerian and that removing a circuit
    from a balanced digraph leaves balanced components; this module
    provides the constructive side (Hierholzer's algorithm) and the
    circuit-partition of a balanced digraph's edges. *)

val is_eulerian : Digraph.t -> bool
(** Balanced and all edges lie in one weak component. *)

val euler_circuit : Digraph.t -> int list option
(** A closed walk traversing every edge exactly once, as the node
    sequence [v₀; v₁; …; v_m] with [v₀ = v_m]; [None] when the graph is
    not Eulerian.  Nodes without edges are ignored.  The empty graph
    yields [Some []]. *)

val circuit_partition : Digraph.t -> int list list
(** Partition the edge set of a balanced digraph into edge-disjoint
    closed walks (one Euler circuit per weakly-connected piece with
    edges).  @raise Invalid_argument if the graph is not balanced. *)

val is_circuit : Digraph.t -> int list -> bool
(** [is_circuit g [v₀;…;v_m]] checks that consecutive pairs are edges,
    [v₀ = v_m], and no directed edge is used more often than its
    multiplicity in the graph. *)
