(** Directed graphs on integer nodes [0 .. n−1].

    The representation is a frozen adjacency structure (arrays of
    successor lists, with predecessor lists built on demand); build one
    with {!Builder}.  Parallel edges and loops are allowed — De Bruijn
    digraphs have loops at the d constant nodes. *)

type t

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  (** [create n] starts an empty graph on nodes [0 .. n−1]. *)

  val add_edge : t -> int -> int -> unit
  (** Append a directed edge; duplicates are kept. *)

  val build : t -> graph
end

val of_edges : int -> (int * int) list -> t
val of_successors : int -> (int -> int list) -> t
(** [of_successors n succ] builds the graph with edge set
    {(v, w) | v ∈ [0,n), w ∈ succ v}. *)

val n_nodes : t -> int
val n_edges : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : ('a -> int -> int -> 'a) -> 'a -> t -> 'a
val edges : t -> (int * int) list

val remove_nodes : t -> (int -> bool) -> t
(** [remove_nodes g faulty] keeps the node ids but drops every edge
    incident to a node satisfying [faulty] — the thesis's total-failure
    model (faulty processors neither compute nor route). *)

val remove_edges : t -> ((int * int) -> bool) -> t
(** Drop every edge satisfying the predicate. *)

val reverse : t -> t
val undirected_view : t -> t
(** Symmetric closure (each edge doubled); loops kept single per copy. *)

val is_balanced : t -> bool
(** Every node has equal in- and out-degree (counting multiplicity). *)
