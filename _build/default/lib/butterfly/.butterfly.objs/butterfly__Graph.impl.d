lib/butterfly/graph.ml: Array Debruijn Graphlib List Printf
