lib/butterfly/embed.ml: Array Debruijn Dhc Graph List Numtheory Option
