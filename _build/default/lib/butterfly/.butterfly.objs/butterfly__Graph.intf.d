lib/butterfly/graph.mli: Debruijn Graphlib
