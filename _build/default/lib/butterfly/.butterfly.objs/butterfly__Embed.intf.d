lib/butterfly/embed.mli: Graph
