(** The d-ary butterfly digraph F(d,n) (§3.4).

    Nodes are pairs (k, x) ∈ ℤ_n × ℤ_dⁿ — level k, column x — with
    edges (k, x₀…x_{n−1}) → (k+1 mod n, x₀…x_{k−1} a x_{k+1}…x_{n−1})
    for every digit a.  A node is encoded as the integer k·dⁿ + x.  Accessed as [Butterfly.Graph]. *)

type t = {
  p : Debruijn.Word.params;  (** column parameters (d, n) *)
  graph : Graphlib.Digraph.t;  (** n·dⁿ nodes *)
}

val create : d:int -> n:int -> t
(** @raise Invalid_argument unless d ≥ 2, n ≥ 2. *)

val encode : t -> level:int -> column:int -> int
val level : t -> int -> int
val column : t -> int -> int

val n_nodes : t -> int

val successors : t -> int -> int list
(** The d out-neighbors at the next level. *)

val s_node : t -> int -> int -> int
(** [s_node t i x] is S{_x}{^i} = (i, π{^−i}(x)): the level-i butterfly
    node in the class of the De Bruijn node x (the partition of
    [ABR90] under which F(d,n) contracts to B(d,n)). *)

val de_bruijn_class : t -> int -> int
(** Inverse: the De Bruijn node x with [s_node t (level v) x = v],
    namely π{^level}(column). *)

val edge_to_de_bruijn : t -> int * int -> int * int
(** Every butterfly edge S{_U}{^r} → S{_V}{^{r+1}} projects to the
    De Bruijn edge (U, V) (Lemma 3.8's converse direction).
    @raise Invalid_argument if the pair is not a butterfly edge. *)

val to_string : t -> int -> string
(** "(k,x₀x₁…)" rendering. *)
