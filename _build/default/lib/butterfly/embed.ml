module W = Debruijn.Word

let phi (t : Graph.t) cycle =
  let k = Array.length cycle in
  if k = 0 then invalid_arg "Butterfly.Embed.phi: empty cycle";
  let n = t.Graph.p.W.n in
  let len = Numtheory.lcm k n in
  Array.init len (fun i -> Graph.s_node t (i mod n) cycle.(i mod k))

let coprime (t : Graph.t) = Numtheory.gcd t.Graph.p.W.d t.Graph.p.W.n = 1

let hamiltonian_cycle t =
  if not (coprime t) then None
  else begin
    let p = t.Graph.p in
    let seq = Dhc.Compose.disjoint_hamiltonian_cycles ~d:p.W.d ~n:p.W.n in
    match seq with
    | [] -> None
    | hc :: _ -> Some (phi t (Debruijn.Sequence.cycle_of_sequence p hc))
  end

let disjoint_hamiltonian_cycles t =
  if not (coprime t) then []
  else begin
    let p = t.Graph.p in
    Dhc.Compose.disjoint_hamiltonian_cycles ~d:p.W.d ~n:p.W.n
    |> List.map (fun hc -> phi t (Debruijn.Sequence.cycle_of_sequence p hc))
  end

let hc_avoiding t ~faults =
  if not (coprime t) then None
  else begin
    let p = t.Graph.p in
    let projected = List.map (Graph.edge_to_de_bruijn t) faults in
    Option.map
      (fun hc -> phi t (Debruijn.Sequence.cycle_of_sequence p hc))
      (Dhc.Edge_fault.best_hc_avoiding ~d:p.W.d ~n:p.W.n ~faults:projected)
  end
