(** The Φ embedding of De Bruijn cycles into butterflies and its
    fault-tolerance consequences (Lemmas 3.9/3.10, Propositions
    3.5/3.6).

    A k-cycle C = (v₀,…,v_{k−1}) of B(d,n) maps to the
    LCM(k,n)-cycle Φ(C) = (S{_{v₀}}{^0}, S{_{v₁}}{^1}, …) of F(d,n);
    when gcd(d,n) = 1 this takes Hamiltonian cycles to Hamiltonian
    cycles (LCM(dⁿ,n) = n·dⁿ), edge-disjoint cycles to edge-disjoint
    cycles, and a De Bruijn HC avoiding the projections of f faulty
    butterfly edges to a fault-free butterfly HC. *)

val phi : Graph.t -> int array -> int array
(** Φ(C) for a cycle C of B(d,n) given as node codes; the result is a
    cycle of F(d,n) of length LCM(|C|, n). *)

val hamiltonian_cycle : Graph.t -> int array option
(** A Hamiltonian cycle of F(d,n), via Φ of a De Bruijn HC; [None]
    when gcd(d,n) ≠ 1 (Φ then yields shorter cycles). *)

val disjoint_hamiltonian_cycles : Graph.t -> int array list
(** ψ(d) pairwise edge-disjoint HCs of F(d,n) (Proposition 3.6).
    Empty when gcd(d,n) ≠ 1. *)

val hc_avoiding : Graph.t -> faults:(int * int) list -> int array option
(** Proposition 3.5: a fault-free HC of F(d,n) under at most
    MAX(ψ(d)−1, φ(d)) faulty butterfly edges, for gcd(d,n) = 1.
    Faults must be butterfly edges. *)
