(** Shuffle-exchange graphs SE(d,n).

    Chapter 4's necklace-counting results are stated for both De Bruijn
    and shuffle-exchange graphs (the [LMR88] routing scheme and the
    [Lei83] VLSI layout both organize SE by necklaces); this module
    provides the graph so the necklace machinery can be exercised on
    it.

    SE(d,n) has the dⁿ words over ℤ_d as nodes, undirected {e shuffle}
    edges {x, π(x)} (cyclic left shift) and {e exchange} edges between
    words differing only in the last digit.  The shuffle orbits are
    exactly the necklaces of B(d,n). *)

type t = {
  p : Debruijn.Word.params;
  graph : Graphlib.Digraph.t;  (** symmetric digraph *)
}

val create : d:int -> n:int -> t

val is_shuffle_edge : t -> int * int -> bool
val is_exchange_edge : t -> int * int -> bool

val shuffle_orbit : t -> int -> int list
(** The shuffle orbit of a node = its De Bruijn necklace. *)

val necklace_count : t -> int
(** Number of shuffle orbits — must agree with Chapter 4's formula. *)

val degree_bounds : t -> int * int
(** (min, max) degree; at most d+1 (shuffle in/out merged + exchange). *)
