lib/shuffle/shuffle_exchange.ml: Debruijn Graphlib Hashtbl
