lib/shuffle/shuffle_exchange.mli: Debruijn Graphlib
