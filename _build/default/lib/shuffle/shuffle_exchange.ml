module W = Debruijn.Word
module DG = Graphlib.Digraph

type t = {
  p : W.params;
  graph : DG.t;
}

let create ~d ~n =
  let p = W.params ~d ~n in
  let bld = DG.Builder.create p.W.size in
  let add_undirected u v =
    if u <> v then begin
      DG.Builder.add_edge bld u v;
      DG.Builder.add_edge bld v u
    end
  in
  let seen = Hashtbl.create (4 * p.W.size) in
  let add_once u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      add_undirected u v
    end
  in
  for x = 0 to p.W.size - 1 do
    (* shuffle: x — π(x) *)
    add_once x (W.rotl p x);
    (* exchange: x — (x with a different last digit) *)
    let base = x - W.last_digit p x in
    for a = 0 to d - 1 do
      add_once x (base + a)
    done
  done;
  { p; graph = DG.Builder.build bld }

let is_shuffle_edge t (u, v) =
  u <> v && (W.rotl t.p u = v || W.rotl t.p v = u)

let is_exchange_edge t (u, v) =
  u <> v && W.prefix t.p u = W.prefix t.p v

let shuffle_orbit t x = Debruijn.Necklace.nodes t.p x

let necklace_count t = Debruijn.Necklace.count t.p

let degree_bounds t =
  let n = DG.n_nodes t.graph in
  let rec go v mn mx =
    if v >= n then (mn, mx)
    else
      let d = DG.out_degree t.graph v in
      go (v + 1) (min mn d) (max mx d)
  in
  go 0 max_int 0
