(** Fault-tolerant routing through faulty necklaces — the constructive
    content of Proposition 2.2's proof.

    For any nodes x, y of B(d,n):
    - the d paths P_a : x → x₂…xₙa → x₃…xₙaa → … → aⁿ (a ∈ ℤ_d) are
      pairwise {e necklace-disjoint} in their interior, and
    - the d−1 paths Q_i : aⁿ → aⁿ⁻¹(a+i) → … → (a+i)y₁…y_{n−1} → y
      (1 ≤ i ≤ d−1) are also pairwise necklace-disjoint,

    so with f ≤ d−2 faulty necklaces some P_a and some Q_i survive, and
    splicing them (skipping aⁿ via the edge xₙa…a → a…a(a+i)) yields a
    fault-free x→y path of length ≤ 2n.  This is both the diameter
    bound for B\u{2217} and a routing algorithm. *)

val path_p : Debruijn.Word.params -> int -> int -> int list
(** [path_p p x a]: the n+1 nodes x, x₂…xₙa, …, aⁿ. *)

val path_q : Debruijn.Word.params -> int -> int -> int -> int list
(** [path_q p a i y] for 1 ≤ i ≤ d−1: the n+2 nodes aⁿ, aⁿ⁻¹(a+i), …,
    (a+i)y₁…y_{n−1}, y. *)

val interior_necklaces : Debruijn.Word.params -> int list -> int list
(** The necklace representatives of a path's interior (endpoints
    excluded) — the Sₚ of the thesis. *)

val route :
  Debruijn.Word.params -> faulty_necklace:(int -> bool) -> int -> int -> int list option
(** A fault-free x→y path of length ≤ 2n through live necklaces only
    (both endpoints must be live).  Guaranteed to exist when at most
    d−2 necklaces are faulty; [None] if every splice is blocked. *)

val verify_path : Debruijn.Word.params -> int list -> bool
(** Consecutive elements are De Bruijn edges. *)
