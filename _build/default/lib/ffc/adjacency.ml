module W = Debruijn.Word
module Nk = Debruijn.Necklace
module DG = Graphlib.Digraph

type t = {
  bstar : Bstar.t;
  reps : int array;
  idx_of_node : int array;
  graph : DG.t;
  edges : (int * int * int) list;
}

let build (bstar : Bstar.t) =
  let p = bstar.Bstar.p in
  let reps =
    Array.of_list
      (List.filter (fun r -> bstar.Bstar.in_bstar.(r)) (Nk.all_representatives p))
  in
  let index = Hashtbl.create (2 * Array.length reps) in
  Array.iteri (fun i r -> Hashtbl.add index r i) reps;
  let idx_of_node = Array.make p.W.size (-1) in
  Array.iter
    (fun r -> List.iter (fun x -> idx_of_node.(x) <- Hashtbl.find index r) (Nk.nodes p r))
    reps;
  (* Group live nodes by their (n−1)-suffix w: the nodes {αw} with a
     common w induce a w-labeled clique (all pairs, both directions)
     between their — necessarily distinct — necklaces. *)
  let wsize = p.W.size / p.W.d in
  let edges = ref [] in
  let bld = DG.Builder.create (Array.length reps) in
  for w = 0 to wsize - 1 do
    let members = ref [] in
    for a = p.W.d - 1 downto 0 do
      let x = W.cons p a w in
      if bstar.Bstar.in_bstar.(x) then members := idx_of_node.(x) :: !members
    done;
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter
            (fun j ->
              edges := (i, j, w) :: (j, i, w) :: !edges;
              DG.Builder.add_edge bld i j;
              DG.Builder.add_edge bld j i)
            rest;
          pairs rest
    in
    pairs !members
  done;
  {
    bstar;
    reps;
    idx_of_node;
    graph = DG.Builder.build bld;
    edges = List.rev !edges;
  }

let index_of_rep t rep =
  let rec go i =
    if i >= Array.length t.reps then raise Not_found
    else if t.reps.(i) = rep then i
    else go (i + 1)
  in
  go 0

let rep_of_index t i = t.reps.(i)

let node_with_suffix t idx w =
  let p = t.bstar.Bstar.p in
  let rec go a =
    if a >= p.W.d then None
    else
      let x = W.cons p a w in
      if t.idx_of_node.(x) = idx then Some x else go (a + 1)
  in
  go 0

let node_with_prefix t idx w =
  let p = t.bstar.Bstar.p in
  let rec go b =
    if b >= p.W.d then None
    else
      let x = W.snoc p w b in
      if t.idx_of_node.(x) = idx then Some x else go (b + 1)
  in
  go 0

let labels_between t i j =
  List.sort compare
    (List.filter_map (fun (a, b, w) -> if a = i && b = j then Some w else None) t.edges)

let is_connected t =
  Array.length t.reps <= 1
  || Graphlib.Traversal.is_strongly_connected t.graph (fun _ -> true)
