module W = Debruijn.Word
module Nk = Debruijn.Necklace
module DG = Graphlib.Digraph
module Tr = Graphlib.Traversal

type t = {
  p : W.params;
  graph : DG.t;
  faults : int list;
  necklace_faulty : bool array;
  in_bstar : bool array;
  size : int;
  root : int;
}

let finish p graph faults necklace_faulty members root_hint =
  match members with
  | [] -> None
  | _ ->
      let in_bstar = Array.make p.W.size false in
      List.iter (fun v -> in_bstar.(v) <- true) members;
      let root =
        match root_hint with
        | Some h when h >= 0 && h < p.W.size && in_bstar.(Nk.canonical p h) ->
            Nk.canonical p h
        | _ ->
            (* Smallest representative in the component; representatives
               are minimal on their necklaces so the smallest member is
               itself a representative. *)
            List.fold_left min max_int members
      in
      Some
        {
          p;
          graph;
          faults;
          necklace_faulty;
          in_bstar;
          size = List.length members;
          root;
        }

let compute ?root_hint p ~faults =
  let graph = Debruijn.Graph.b p in
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  let members = Tr.largest_weak_component graph (fun v -> not (necklace_faulty.(v))) in
  finish p graph faults necklace_faulty members root_hint

let component_of p ~faults node =
  let graph = Debruijn.Graph.b p in
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  if necklace_faulty.(node) then None
  else begin
    (* BFS in the symmetric closure restricted to live nodes. *)
    let live v = not necklace_faulty.(v) in
    let seen = Array.make p.W.size false in
    let q = Queue.create () in
    seen.(node) <- true;
    Queue.push node q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let push v =
        if live v && not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end
      in
      List.iter push (DG.succs graph u);
      List.iter push (DG.preds graph u)
    done;
    let members = List.filter (fun v -> seen.(v)) (W.all p) in
    finish p graph faults necklace_faulty members (Some node)
  end

let nodes t = List.filter (fun v -> t.in_bstar.(v)) (W.all t.p)

let necklace_count t =
  List.length (List.filter (fun r -> t.in_bstar.(r)) (Nk.all_representatives t.p))

let eccentricity_of_root t =
  let dist = Tr.bfs_dist_restricted t.graph (fun v -> t.in_bstar.(v)) t.root in
  Array.fold_left max 0 dist

let diameter t =
  List.fold_left
    (fun acc v ->
      let dist = Tr.bfs_dist_restricted t.graph (fun u -> t.in_bstar.(u)) v in
      max acc (Array.fold_left max 0 dist))
    0 (nodes t)

let is_strongly_connected t =
  Tr.is_strongly_connected t.graph (fun v -> t.in_bstar.(v))
