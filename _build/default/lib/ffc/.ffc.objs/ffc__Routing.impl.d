lib/ffc/routing.ml: Array Debruijn Fun Hashtbl List Option
