lib/ffc/selftimed.mli: Bstar
