lib/ffc/routing.mli: Debruijn
