lib/ffc/spanning.mli: Adjacency Hashtbl
