lib/ffc/bstar.ml: Array Debruijn Graphlib List Queue
