lib/ffc/distributed.mli: Bstar
