lib/ffc/spanning.ml: Adjacency Array Bstar Debruijn Fun Graphlib Hashtbl List Option
