lib/ffc/distributed.ml: Array Bstar Debruijn Graphlib List Netsim Option
