lib/ffc/embed.ml: Adjacency Array Bstar Debruijn Graphlib Hashtbl List Option Spanning
