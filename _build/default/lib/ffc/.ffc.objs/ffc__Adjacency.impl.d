lib/ffc/adjacency.ml: Array Bstar Debruijn Graphlib Hashtbl List
