lib/ffc/adjacency.mli: Bstar Graphlib
