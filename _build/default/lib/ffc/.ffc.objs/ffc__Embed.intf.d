lib/ffc/embed.mli: Bstar Debruijn Spanning
