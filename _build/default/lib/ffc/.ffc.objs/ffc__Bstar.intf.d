lib/ffc/bstar.mli: Debruijn Graphlib
