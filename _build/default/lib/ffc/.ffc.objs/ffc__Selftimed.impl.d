lib/ffc/selftimed.ml: Array Bstar Debruijn Graphlib List Netsim Option
