module W = Debruijn.Word
module DG = Graphlib.Digraph
module Tr = Graphlib.Traversal

type tree = {
  adj : Adjacency.t;
  root_idx : int;
  dist : int array;
  node_parent : int array;
  parent : int array;
  label : int array;
  chosen : int array;
}

let build (adj : Adjacency.t) =
  let bstar = adj.Adjacency.bstar in
  let p = bstar.Bstar.p in
  let g = bstar.Bstar.graph in
  let in_bstar v = bstar.Bstar.in_bstar.(v) in
  let root = bstar.Bstar.root in
  let dist = Tr.bfs_dist_restricted g in_bstar root in
  (* T′ parent: minimal predecessor one BFS level up, inside B*. *)
  let node_parent = Array.make p.W.size (-1) in
  for v = 0 to p.W.size - 1 do
    if in_bstar v && v <> root && dist.(v) > 0 then begin
      let best = ref max_int in
      List.iter
        (fun u -> if in_bstar u && dist.(u) = dist.(v) - 1 && u < !best then best := u)
        (DG.preds g v);
      if !best < max_int then node_parent.(v) <- !best
    end
  done;
  let m = Array.length adj.Adjacency.reps in
  let root_idx = adj.Adjacency.idx_of_node.(root) in
  let parent = Array.make m (-1) in
  let label = Array.make m (-1) in
  let chosen = Array.make m (-1) in
  for i = 0 to m - 1 do
    let members = Debruijn.Necklace.nodes p adj.Adjacency.reps.(i) in
    (* Earliest receipt, ties toward the minimal node: necklace nodes
       are visited in increasing order so the first minimum wins. *)
    let y =
      List.fold_left
        (fun best v ->
          match best with
          | None -> Some v
          | Some b -> if dist.(v) < dist.(b) || (dist.(v) = dist.(b) && v < b) then Some v else Some b)
        None (List.sort compare members)
    in
    match y with
    | None -> assert false
    | Some y ->
        chosen.(i) <- y;
        if i <> root_idx then begin
          let par_node = node_parent.(y) in
          assert (par_node >= 0);
          parent.(i) <- adj.Adjacency.idx_of_node.(par_node);
          label.(i) <- W.prefix p y
        end
  done;
  (* The root's chosen node is R itself (distance 0). *)
  chosen.(root_idx) <- root;
  { adj; root_idx; dist; node_parent; parent; label; chosen }

let tree_edges t =
  let m = Array.length t.adj.Adjacency.reps in
  List.filter_map
    (fun i -> if i = t.root_idx then None else Some (t.parent.(i), i, t.label.(i)))
    (List.init m Fun.id)

let check_height_one t =
  let by_label = Hashtbl.create 16 in
  List.for_all
    (fun (par, _, w) ->
      match Hashtbl.find_opt by_label w with
      | None ->
          Hashtbl.add by_label w par;
          true
      | Some par' -> par = par')
    (tree_edges t)

type modified = {
  tree : tree;
  groups : (int * int list) list;
  out_edge : (int * int, int) Hashtbl.t;
}

let modify t =
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (par, child, w) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_label w) in
      let cur = if List.mem par cur then cur else par :: cur in
      Hashtbl.replace by_label w (child :: cur))
    (tree_edges t);
  let rep i = t.adj.Adjacency.reps.(i) in
  let groups =
    Hashtbl.fold
      (fun w members acc ->
        (w, List.sort (fun a b -> compare (rep a) (rep b)) members) :: acc)
      by_label []
    |> List.sort compare
  in
  let out_edge = Hashtbl.create 64 in
  List.iter
    (fun (w, members) ->
      let arr = Array.of_list members in
      let k = Array.length arr in
      Array.iteri (fun i idx -> Hashtbl.replace out_edge (idx, w) arr.((i + 1) mod k)) arr)
    groups;
  { tree = t; groups; out_edge }

let is_spanning_subgraph m =
  let adj = m.tree.adj in
  Hashtbl.fold
    (fun (src, w) dst acc ->
      acc
      && Option.is_some (Adjacency.node_with_suffix adj src w)
      && Option.is_some (Adjacency.node_with_prefix adj dst w)
      && src <> dst)
    m.out_edge true
