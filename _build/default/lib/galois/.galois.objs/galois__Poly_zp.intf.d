lib/galois/poly_zp.mli:
