lib/galois/poly_zp.ml: Array List Numtheory Printf String
