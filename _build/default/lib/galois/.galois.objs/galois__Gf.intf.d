lib/galois/gf.mli: Poly_zp
