lib/galois/gf.ml: Array Fun List Numtheory Poly_zp
