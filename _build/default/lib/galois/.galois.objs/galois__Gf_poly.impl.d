lib/galois/gf_poly.ml: Array Gf List Numtheory Printf String
