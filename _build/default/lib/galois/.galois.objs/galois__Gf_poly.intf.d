lib/galois/gf_poly.mli: Gf
