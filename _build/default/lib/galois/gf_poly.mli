(** Dense polynomials over GF(q).

    Used to find the primitive characteristic polynomials of degree n
    over GF(d) that define maximal cycles in B(d,n) (§3.1 of the thesis).
    Representation mirrors {!Poly_zp}: an [int array] of field-element
    codes in ascending degree order, normalized. *)

type t = int array

val zero : t
val one : t
val x : t

val of_coeffs : Gf.t -> int list -> t
val normalize : Gf.t -> t -> t
val degree : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val coeff : t -> int -> int
val leading : t -> int

val add : Gf.t -> t -> t -> t
val sub : Gf.t -> t -> t -> t
val mul : Gf.t -> t -> t -> t
val scale : Gf.t -> int -> t -> t

val divmod : Gf.t -> t -> t -> t * t
(** @raise Division_by_zero on a zero divisor. *)

val rem : Gf.t -> t -> t -> t
val mul_mod : Gf.t -> t -> t -> t -> t
val pow_mod : Gf.t -> t -> t -> int -> t
val gcd : Gf.t -> t -> t -> t
val monic : Gf.t -> t -> t
val eval : Gf.t -> t -> int -> int

val is_irreducible : Gf.t -> t -> bool
(** Rabin's test over GF(q). *)

val order_of_x : Gf.t -> t -> int
(** [order_of_x f m] is the multiplicative order of the class of x in
    GF(q)[x]/(m), for [m] with nonzero constant term.  The order divides
    q{^deg m} − 1 when [m] is irreducible; for the reducible case the
    function still terminates by scanning divisors of q{^deg m} − 1 and
    raises [Not_found] if none matches. *)

val is_primitive : Gf.t -> t -> bool
(** Monic, irreducible, constant term nonzero, and x has order
    q{^n} − 1 — the defining property of the characteristic polynomial
    of a maximal-period linear recurrence (De Bruijn §3.1). *)

val all_monic : Gf.t -> int -> t list

val find_primitive : Gf.t -> int -> t
(** Least monic primitive polynomial of the given degree over GF(q).
    @raise Not_found if none exists (cannot happen for n ≥ 1). *)

val to_string : Gf.t -> t -> string
