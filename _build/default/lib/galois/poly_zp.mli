(** Dense polynomials over the prime field ℤ_p.

    A polynomial is an [int array] of coefficients in ascending degree
    order, normalized so that the last coefficient is nonzero (the zero
    polynomial is the empty array).  All operations take the prime [p]
    explicitly; coefficients are kept in [0, p). *)

type t = int array

val zero : t
val one : t
val x : t

val of_coeffs : int -> int list -> t
(** [of_coeffs p cs] builds the polynomial with ascending coefficients
    [cs], reduced mod [p] and normalized. *)

val normalize : int -> t -> t
(** Reduce coefficients mod [p] and strip trailing zeros. *)

val degree : t -> int
(** Degree; the zero polynomial has degree [-1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val leading : t -> int

val coeff : t -> int -> int
(** [coeff f i] is the coefficient of x^i (0 beyond the degree). *)

val add : int -> t -> t -> t
val sub : int -> t -> t -> t
val neg : int -> t -> t
val mul : int -> t -> t -> t
val scale : int -> int -> t -> t

val divmod : int -> t -> t -> t * t
(** [divmod p a b] is the (quotient, remainder) of [a] by [b] in ℤ_p[x].
    @raise Division_by_zero if [b] is the zero polynomial. *)

val rem : int -> t -> t -> t
val mul_mod : int -> t -> t -> t -> t
(** [mul_mod p m a b] is [a·b mod m]. *)

val pow_mod : int -> t -> t -> int -> t
(** [pow_mod p m f e] is [f^e mod m] by binary exponentiation, [e ≥ 0]. *)

val gcd : int -> t -> t -> t
(** Monic greatest common divisor. *)

val eval : int -> t -> int -> int

val monic : int -> t -> t
(** Divide by the leading coefficient. *)

val is_irreducible : int -> t -> bool
(** Rabin's irreducibility test over ℤ_p: [f] of degree n ≥ 1 is
    irreducible iff x^(p^n) ≡ x (mod f) and gcd(x^(p^(n/q)) − x, f) = 1
    for every prime q dividing n. *)

val is_primitive : int -> t -> bool
(** [is_primitive p f]: [f] monic irreducible of degree n and the class
    of x generates the multiplicative group of ℤ_p[x]/(f), i.e. the
    order of x is p^n − 1. *)

val find_primitive : int -> int -> t
(** [find_primitive p n] is the lexicographically least monic primitive
    polynomial of degree [n] over ℤ_p.
    @raise Not_found if none exists (cannot happen for prime p, n ≥ 1). *)

val all_monic : int -> int -> t list
(** All monic polynomials of the given degree over ℤ_p, in lexicographic
    order of coefficient vectors (constant term varies fastest). *)

val to_string : t -> string
(** Human-readable form like ["x^2 + 2x + 1"]. *)
