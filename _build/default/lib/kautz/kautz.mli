(** Kautz digraphs K(d,n).

    Chapter 5 of the thesis singles out Kautz graphs (with butterflies)
    as the next topologies whose disjoint-Hamiltonian-cycle structure
    should be determined; this module provides the graphs themselves
    plus the structural facts needed to probe that question with
    {!Hamsearch}.

    K(d,n) has nodes x₁…xₙ over a (d+1)-letter alphabet with adjacent
    letters distinct, and edges x₁…xₙ → x₂…xₙa for every a ≠ xₙ; it has
    (d+1)·d^{n−1} nodes, in- and out-degree d, diameter n, and satisfies
    K(d,n+1) = L(K(d,n)).  Nodes are encoded as integers: the leading
    letter in [0,d] followed by n−1 "relative" digits δ ∈ [0,d) meaning
    xᵢ₊₁ = (xᵢ + 1 + δ) mod (d+1). *)

type t = {
  d : int;  (** degree; the alphabet has d+1 letters *)
  n : int;
  size : int;  (** (d+1)·d^{n−1} *)
  graph : Graphlib.Digraph.t;
}

val create : d:int -> n:int -> t
(** @raise Invalid_argument unless d ≥ 2 and n ≥ 1 and the size fits. *)

val encode : t -> int array -> int
(** Letters x₁…xₙ (adjacent distinct) to the node code.
    @raise Invalid_argument on a repeated adjacent letter. *)

val decode : t -> int -> int array

val successors : t -> int -> int list
(** The d out-neighbors, in increasing letter order. *)

val to_string : t -> int -> string

val edge_as_higher_node : t -> int * int -> int
(** Line-graph correspondence: an edge of K(d,n) is a node of K(d,n+1)
    (the concatenated word). *)

val diameter : t -> int
(** Computed exactly (BFS from every node); equals n. *)
