module DG = Graphlib.Digraph

type t = {
  d : int;
  n : int;
  size : int;
  graph : DG.t;
}

(* code = x₁·d^{n−1} + Σ δᵢ·d^{n−1−i} with x_{i+1} = (x_i + 1 + δ_i) mod (d+1) *)

let decode_letters ~d ~n code =
  let pow = Array.make n 1 in
  for i = 1 to n - 1 do
    pow.(i) <- pow.(i - 1) * d
  done;
  let letters = Array.make n 0 in
  letters.(0) <- code / pow.(n - 1);
  let rest = ref (code mod pow.(n - 1)) in
  for i = 1 to n - 1 do
    let delta = !rest / pow.(n - 1 - i) in
    rest := !rest mod pow.(n - 1 - i);
    letters.(i) <- (letters.(i - 1) + 1 + delta) mod (d + 1)
  done;
  letters

let encode_letters ~d letters =
  let n = Array.length letters in
  Array.iteri
    (fun i x ->
      if x < 0 || x > d then invalid_arg "Kautz.encode: letter out of range";
      if i > 0 && x = letters.(i - 1) then
        invalid_arg "Kautz.encode: adjacent letters equal")
    letters;
  let code = ref letters.(0) in
  for i = 1 to n - 1 do
    let delta = ((letters.(i) - letters.(i - 1) - 1) mod (d + 1) + (d + 1)) mod (d + 1) in
    code := (!code * d) + delta
  done;
  !code

let successors_code ~d ~n code =
  let letters = decode_letters ~d ~n code in
  let last = letters.(n - 1) in
  let shifted = Array.append (Array.sub letters 1 (n - 1)) [| 0 |] in
  List.filter_map
    (fun a ->
      if a = last then None
      else begin
        shifted.(n - 1) <- a;
        Some (encode_letters ~d shifted)
      end)
    (List.init (d + 1) Fun.id)

let create ~d ~n =
  if d < 2 then invalid_arg "Kautz.create: d < 2";
  if n < 1 then invalid_arg "Kautz.create: n < 1";
  let size = (d + 1) * Numtheory.pow d (n - 1) in
  if size > 1 lsl 22 then invalid_arg "Kautz.create: too large";
  let graph =
    if n = 1 then
      (* K(d,1) is the complete digraph on d+1 nodes without loops. *)
      DG.of_successors (d + 1) (fun v ->
          List.filter (fun w -> w <> v) (List.init (d + 1) Fun.id))
    else DG.of_successors size (successors_code ~d ~n)
  in
  { d; n; size; graph }

let encode t letters =
  if Array.length letters <> t.n then invalid_arg "Kautz.encode: wrong length";
  if t.n = 1 then letters.(0) else encode_letters ~d:t.d letters

let decode t code =
  if code < 0 || code >= t.size then invalid_arg "Kautz.decode: out of range";
  if t.n = 1 then [| code |] else decode_letters ~d:t.d ~n:t.n code

let successors t code = DG.succs t.graph code

let to_string t code =
  String.concat "" (Array.to_list (Array.map string_of_int (decode t code)))

let edge_as_higher_node t (u, v) =
  if not (DG.mem_edge t.graph u v) then invalid_arg "Kautz.edge_as_higher_node: not an edge";
  let lu = decode t u and lv = decode t v in
  encode_letters ~d:t.d (Array.append lu [| lv.(t.n - 1) |])

let diameter t = Graphlib.Traversal.diameter_from_all t.graph
