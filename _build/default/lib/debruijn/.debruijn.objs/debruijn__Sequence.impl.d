lib/debruijn/sequence.ml: Array Fun Hashtbl List Word
