lib/debruijn/necklace.ml: Array List Word
