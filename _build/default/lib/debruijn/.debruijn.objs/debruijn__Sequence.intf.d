lib/debruijn/sequence.mli: Word
