lib/debruijn/graph.mli: Graphlib Word
