lib/debruijn/word.mli:
