lib/debruijn/necklace.mli: Word
