lib/debruijn/word.ml: Array Char Fun List Numtheory String
