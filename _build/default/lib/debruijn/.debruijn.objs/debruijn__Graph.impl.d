lib/debruijn/graph.ml: Array Graphlib Hashtbl List Option Word
