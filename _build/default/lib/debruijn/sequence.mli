(** Circular sequences and their correspondence with cycles (§3.1).

    The circular sequence C = [c₀, c₁, …, c_{k−1}] denotes the closed
    path of length k in B(d,n) in which node cᵢc_{i+1}…c_{i+n−1} is
    followed by c_{i+1}…c_{i+n} (indices mod k).  C is a cycle iff all
    the n-windows are distinct; two sequences are edge-disjoint iff
    their (n+1)-window sets are disjoint.  A sequence of length dⁿ whose
    windows exhaust ℤ_dⁿ is a De Bruijn sequence (Hamiltonian cycle). *)

val window : Word.params -> int array -> int -> int
(** [window p c i] is the node cᵢ…c_{i+n−1} (indices mod length). *)

val nodes_of_sequence : Word.params -> int array -> int array
(** All k node codes, in order. *)

val is_cycle_sequence : Word.params -> int array -> bool
(** All n-windows distinct (and the sequence nonempty). *)

val is_de_bruijn_sequence : Word.params -> int array -> bool
(** Length dⁿ and Hamiltonian. *)

val cycle_of_sequence : Word.params -> int array -> int array
(** The cycle as node codes. @raise Invalid_argument if windows repeat. *)

val sequence_of_cycle : Word.params -> int array -> int array
(** Inverse: cᵢ = first digit of vᵢ.  Any cycle of B(d,n) qualifies. *)

val edge_windows : Word.params -> int array -> int list
(** The k (n+1)-windows (edge codes in the line-graph sense), sorted. *)

val edge_disjoint : Word.params -> int array -> int array -> bool
(** Disjoint (n+1)-window sets. *)

val add_scalar : (int -> int -> int) -> int array -> int -> int array
(** [add_scalar add c s] is the sequence s + C = [s+c₀, …] under the
    supplied addition (field addition for Chapter 3). *)

val rotate : int array -> int -> int array
(** Rotate a sequence left by i positions (cyclic re-indexing). *)

val equal_cyclically : int array -> int array -> bool
(** Are two sequences equal up to rotation? *)
