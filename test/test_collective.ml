(* Tests for lib/collective: the arithmetic ring-collective schedule,
   its rank-space reference executor, and the network execution over
   embedded rings of B(d,n). *)

module S = Collective.Schedule
module E = Collective.Exec
module W = Debruijn.Word
module Co = Dhc.Compose
module P = Dhc.Psi
module Str = Dhc.Stream

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A deterministic but irregular integer payload. *)
let init ~rank ~chunk ~word = 1 + (((rank * 37) + (chunk * 11) + word) mod 53)

(* ------------------------------------------------------------------ *)
(* Schedule arithmetic *)

let test_schedule_indices () =
  List.iter
    (fun ranks ->
      List.iter
        (fun op ->
          let ph = S.phases op ~ranks in
          check_int "phase count"
            (match op with S.Allreduce -> 2 * (ranks - 1) | _ -> ranks - 1)
            ph;
          for phase = 0 to ph - 1 do
            for r = 0 to ranks - 1 do
              (* What r's predecessor sends in this phase is exactly what
                 r receives. *)
              check_int "recv = predecessor's send"
                (S.send_chunk ~ranks ~rank:((r - 1 + ranks) mod ranks) ~phase)
                (S.recv_chunk ~ranks ~rank:r ~phase)
            done;
            (* The ranks send pairwise distinct chunks each phase. *)
            let sent =
              List.init ranks (fun r -> S.send_chunk ~ranks ~rank:r ~phase)
            in
            check_int "all chunks in flight" ranks
              (List.length (List.sort_uniq Int.compare sent))
          done)
        [ S.Reduce_scatter; S.All_gather; S.Allreduce ])
    [ 2; 3; 5; 8 ]

let test_schedule_boundaries () =
  let b = S.boundaries ~ranks:4 ~length:10 in
  Alcotest.(check (array int)) "evenly spread" [| 0; 2; 5; 7 |] b;
  let b = S.boundaries ~ranks:5 ~length:5 in
  Alcotest.(check (array int)) "dense ring" [| 0; 1; 2; 3; 4 |] b;
  Alcotest.check_raises "ranks > length rejected"
    (Invalid_argument "Schedule.boundaries: ranks > ring length") (fun () ->
      ignore (S.boundaries ~ranks:6 ~length:5))

(* The rank-space executor against closed-form expectations: the
   sequential fold is the ground truth for every reducing chunk. *)
let test_simulate_oracle () =
  List.iter
    (fun (ranks, cw) ->
      let fold ~chunk ~word =
        let acc = ref 0 in
        for r = 0 to ranks - 1 do
          acc := !acc + init ~rank:r ~chunk ~word
        done;
        !acc
      in
      (* Allreduce: every rank ends with the full reduced vector. *)
      let buf = S.simulate S.Allreduce ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        for c = 0 to ranks - 1 do
          for w = 0 to cw - 1 do
            check_int "allreduce word" (fold ~chunk:c ~word:w)
              buf.(r).((c * cw) + w)
          done
        done
      done;
      (* Reduce-scatter: rank r owns the fully reduced owned_chunk. *)
      let buf = S.simulate S.Reduce_scatter ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        let c = S.owned_chunk ~ranks ~rank:r in
        for w = 0 to cw - 1 do
          check_int "reduce-scatter owned word" (fold ~chunk:c ~word:w)
            buf.(r).((c * cw) + w)
        done
      done;
      (* All-gather: every rank ends with chunk c = rank c's own data. *)
      let buf = S.simulate S.All_gather ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        for c = 0 to ranks - 1 do
          for w = 0 to cw - 1 do
            check_int "all-gather word"
              (init ~rank:c ~chunk:c ~word:w)
              buf.(r).((c * cw) + w)
          done
        done
      done)
    [ (2, 1); (3, 2); (8, 3) ]

(* ------------------------------------------------------------------ *)
(* Network execution *)

let hamiltonian_ring ~d ~n =
  Str.to_nodes (List.hd (Co.disjoint_streams_upto ~d ~n ~k:1))

let run_ring ?domains ?(bidirectional = false) ?rings ~d ~n ~ranks ~chunk_words op =
  let p = W.params ~d ~n in
  let rings =
    match rings with Some r -> r | None -> [ hamiltonian_ring ~d ~n ]
  in
  E.run ?domains ~p
    ~faulty:(fun _ -> false)
    ~rings
    { E.op; ranks; chunk_words; bidirectional }

let test_exec_verifies () =
  List.iter
    (fun op ->
      List.iter
        (fun (d, n, ranks, cw) ->
          let p = W.params ~d ~n in
          let r = run_ring ~d ~n ~ranks ~chunk_words:cw op in
          check_bool "exact verification" true r.E.verified;
          (* Each of the [phases] chunk waves crosses every ring edge
             exactly once end to end: delivered = phases · L · rings. *)
          check_int "delivered = phases x L x rings"
            (r.E.phases * p.W.size * r.E.rings)
            r.E.delivered;
          check_int "wire accounting" (r.E.delivered * cw) r.E.wire_words;
          check_int "edge-disjoint load" r.E.phases r.E.max_link_load)
        [ (2, 4, 4, 2); (2, 5, 8, 1); (3, 3, 5, 3) ])
    [ S.Reduce_scatter; S.All_gather; S.Allreduce ]

let test_exec_striped_and_bidir () =
  let d = 4 and n = 3 in
  let k = P.psi d in
  let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k) in
  let r1 = run_ring ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  let rk = run_ring ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  check_bool "striped verified" true rk.E.verified;
  check_int "k rings" k rk.E.rings;
  check_int "same rounds as one ring" r1.E.rounds rk.E.rounds;
  check_int "k x payload" (k * r1.E.payload_words) rk.E.payload_words;
  check_bool "k x goodput" true
    (rk.E.bytes_per_step > 0.99 *. float_of_int k *. r1.E.bytes_per_step);
  let rb =
    run_ring ~bidirectional:true ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce
  in
  check_bool "bidirectional verified" true rb.E.verified;
  check_int "both directions" (2 * k) rb.E.rings

let test_exec_domains_bit_identical () =
  let d = 4 and n = 3 in
  let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k:3) in
  let a = run_ring ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  let b = run_ring ~domains:2 ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  check_bool "domains=2 verified" true b.E.verified;
  check_int "same rounds" a.E.rounds b.E.rounds;
  check_int "same delivered" a.E.delivered b.E.delivered;
  check_int "same checksum" a.E.checksum b.E.checksum

let test_exec_validation () =
  let d = 2 and n = 4 in
  let p = W.params ~d ~n in
  let ring = hamiltonian_ring ~d ~n in
  let spec = { E.op = S.Allreduce; ranks = 4; chunk_words = 1; bidirectional = false } in
  Alcotest.check_raises "no rings" (Invalid_argument "Collective.Exec.run: no rings")
    (fun () -> ignore (E.run ~p ~faulty:(fun _ -> false) ~rings:[] spec));
  Alcotest.check_raises "faulty node on ring"
    (Invalid_argument "Collective.Exec.run: ring touches a faulty node") (fun () ->
      ignore (E.run ~p ~faulty:(fun v -> v = ring.(3)) ~rings:[ ring ] spec));
  Alcotest.check_raises "unequal lengths"
    (Invalid_argument "Collective.Exec.run: rings of unequal length") (fun () ->
      ignore
        (E.run ~p ~faulty:(fun _ -> false)
           ~rings:[ ring; Array.sub ring 0 (Array.length ring - 2) ]
           spec));
  (* A ring crossing a dead link is rejected by the simulator itself —
     a clean run proves the rings avoid the fault set. *)
  let u = ring.(0) and v = ring.(1) in
  check_bool "illegal send on faulted link" true
    (match E.run ~edge_faults:[ (u, v) ] ~p ~faulty:(fun _ -> false) ~rings:[ ring ] spec with
    | exception Netsim.Simulator.Illegal_send _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"striped = single ring = sequential fold" ~count:30
      (triple (int_range 0 2) (int_range 2 8) (int_range 1 3))
      (fun (opi, ranks, cw) ->
        let op = List.nth [ S.Reduce_scatter; S.All_gather; S.Allreduce ] opi in
        let d = 4 and n = 2 in
        let k = 1 + (ranks mod P.psi d) in
        let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k) in
        let p = W.params ~d ~n in
        let seeded ~ring ~rank ~chunk ~word =
          1 + (((ring * 101) + (rank * 13) + (chunk * 7) + (word * 3)) mod 89)
        in
        let r =
          E.run ~init:seeded ~p
            ~faulty:(fun _ -> false)
            ~rings
            { E.op; ranks; chunk_words = cw; bidirectional = false }
        in
        (* verified = exact equality against Schedule.simulate, itself
           checked against the sequential fold in the unit tests. *)
        r.E.verified && r.E.rings = k);
    Test.make ~name:"random surviving rings verify under link faults" ~count:20
      (pair (int_range 0 2) small_nat)
      (fun (nf, seed) ->
        let d = 4 and n = 2 in
        let all = Co.disjoint_hamiltonian_streams ~d ~n in
        let rng = Util.Rng.split seed 7 in
        (* Fault nf distinct rings' first edges. *)
        let victims =
          List.filteri (fun i _ -> i < nf)
            (List.map (fun st ->
                 let u = Util.Rng.int rng st.Str.p.W.size in
                 (u, st.Str.succ u))
                all)
        in
        let survivors =
          Dhc.Edge_fault.surviving_disjoint_streams ~d ~n ~faults:victims
        in
        match survivors with
        | [] -> true
        | sts ->
            let p = W.params ~d ~n in
            let r =
              E.run ~edge_faults:victims ~p
                ~faulty:(fun _ -> false)
                ~rings:(List.map Str.to_nodes sts)
                {
                  E.op = S.Allreduce;
                  ranks = 4;
                  chunk_words = 2;
                  bidirectional = false;
                }
            in
            r.E.verified);
    Test.make ~name:"domains stepping is bit-identical" ~count:10
      (pair (int_range 2 4) (int_range 1 2))
      (fun (domains, cw) ->
        let d = 2 and n = 5 in
        let a = run_ring ~d ~n ~ranks:6 ~chunk_words:cw S.Allreduce in
        let b = run_ring ~domains ~d ~n ~ranks:6 ~chunk_words:cw S.Allreduce in
        a.E.checksum = b.E.checksum
        && a.E.rounds = b.E.rounds
        && a.E.delivered = b.E.delivered
        && b.E.verified);
  ]

let () =
  Alcotest.run "collective"
    [
      ( "schedule",
        [
          Alcotest.test_case "send/recv indices" `Quick test_schedule_indices;
          Alcotest.test_case "rank boundaries" `Quick test_schedule_boundaries;
          Alcotest.test_case "reference executor vs fold oracle" `Quick
            test_simulate_oracle;
        ] );
      ( "exec",
        [
          Alcotest.test_case "exact verification + invariants" `Quick
            test_exec_verifies;
          Alcotest.test_case "striping and bidirectional" `Quick
            test_exec_striped_and_bidir;
          Alcotest.test_case "domains bit-identity" `Quick
            test_exec_domains_bit_identical;
          Alcotest.test_case "validation" `Quick test_exec_validation;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
