(* Tests for lib/collective: the arithmetic ring-collective schedule,
   its rank-space reference executor, and the network execution over
   embedded rings of B(d,n). *)

module S = Collective.Schedule
module E = Collective.Exec
module W = Debruijn.Word
module Co = Dhc.Compose
module P = Dhc.Psi
module Str = Dhc.Stream

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A deterministic but irregular integer payload. *)
let init ~rank ~chunk ~word = 1 + (((rank * 37) + (chunk * 11) + word) mod 53)

(* ------------------------------------------------------------------ *)
(* Schedule arithmetic *)

let test_schedule_indices () =
  List.iter
    (fun ranks ->
      List.iter
        (fun op ->
          let ph = S.phases op ~ranks in
          check_int "phase count"
            (match op with S.Allreduce -> 2 * (ranks - 1) | _ -> ranks - 1)
            ph;
          for phase = 0 to ph - 1 do
            for r = 0 to ranks - 1 do
              (* What r's predecessor sends in this phase is exactly what
                 r receives. *)
              check_int "recv = predecessor's send"
                (S.send_chunk ~ranks ~rank:((r - 1 + ranks) mod ranks) ~phase)
                (S.recv_chunk ~ranks ~rank:r ~phase)
            done;
            (* The ranks send pairwise distinct chunks each phase. *)
            let sent =
              List.init ranks (fun r -> S.send_chunk ~ranks ~rank:r ~phase)
            in
            check_int "all chunks in flight" ranks
              (List.length (List.sort_uniq Int.compare sent))
          done)
        [ S.Reduce_scatter; S.All_gather; S.Allreduce ])
    [ 2; 3; 5; 8 ]

let test_schedule_boundaries () =
  let b = S.boundaries ~ranks:4 ~length:10 in
  Alcotest.(check (array int)) "evenly spread" [| 0; 2; 5; 7 |] b;
  let b = S.boundaries ~ranks:5 ~length:5 in
  Alcotest.(check (array int)) "dense ring" [| 0; 1; 2; 3; 4 |] b;
  Alcotest.check_raises "ranks > length rejected"
    (Invalid_argument "Schedule.boundaries: ranks > ring length") (fun () ->
      ignore (S.boundaries ~ranks:6 ~length:5))

(* The rank-space executor against closed-form expectations: the
   sequential fold is the ground truth for every reducing chunk. *)
let test_simulate_oracle () =
  List.iter
    (fun (ranks, cw) ->
      let fold ~chunk ~word =
        let acc = ref 0 in
        for r = 0 to ranks - 1 do
          acc := !acc + init ~rank:r ~chunk ~word
        done;
        !acc
      in
      (* Allreduce: every rank ends with the full reduced vector. *)
      let buf = S.simulate S.Allreduce ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        for c = 0 to ranks - 1 do
          for w = 0 to cw - 1 do
            check_int "allreduce word" (fold ~chunk:c ~word:w)
              buf.(r).((c * cw) + w)
          done
        done
      done;
      (* Reduce-scatter: rank r owns the fully reduced owned_chunk. *)
      let buf = S.simulate S.Reduce_scatter ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        let c = S.owned_chunk ~ranks ~rank:r in
        for w = 0 to cw - 1 do
          check_int "reduce-scatter owned word" (fold ~chunk:c ~word:w)
            buf.(r).((c * cw) + w)
        done
      done;
      (* All-gather: every rank ends with chunk c = rank c's own data. *)
      let buf = S.simulate S.All_gather ~ranks ~chunk_words:cw ~init in
      for r = 0 to ranks - 1 do
        for c = 0 to ranks - 1 do
          for w = 0 to cw - 1 do
            check_int "all-gather word"
              (init ~rank:c ~chunk:c ~word:w)
              buf.(r).((c * cw) + w)
          done
        done
      done)
    [ (2, 1); (3, 2); (8, 3) ]

(* ------------------------------------------------------------------ *)
(* Network execution *)

let hamiltonian_ring ~d ~n =
  Str.to_nodes (List.hd (Co.disjoint_streams_upto ~d ~n ~k:1))

let run_ring ?domains ?(bidirectional = false) ?rings ~d ~n ~ranks ~chunk_words op =
  let p = W.params ~d ~n in
  let rings =
    match rings with Some r -> r | None -> [ hamiltonian_ring ~d ~n ]
  in
  E.run ?domains ~p
    ~faulty:(fun _ -> false)
    ~rings
    { E.op; ranks; chunk_words; bidirectional }

let test_exec_verifies () =
  List.iter
    (fun op ->
      List.iter
        (fun (d, n, ranks, cw) ->
          let p = W.params ~d ~n in
          let r = run_ring ~d ~n ~ranks ~chunk_words:cw op in
          check_bool "exact verification" true r.E.verified;
          (* Each of the [phases] chunk waves crosses every ring edge
             exactly once end to end: delivered = phases · L · rings. *)
          check_int "delivered = phases x L x rings"
            (r.E.phases * p.W.size * r.E.rings)
            r.E.delivered;
          check_int "wire accounting" (r.E.delivered * cw) r.E.wire_words;
          check_int "edge-disjoint load" r.E.phases r.E.max_link_load)
        [ (2, 4, 4, 2); (2, 5, 8, 1); (3, 3, 5, 3) ])
    [ S.Reduce_scatter; S.All_gather; S.Allreduce ]

let test_exec_striped_and_bidir () =
  let d = 4 and n = 3 in
  let k = P.psi d in
  let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k) in
  let r1 = run_ring ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  let rk = run_ring ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  check_bool "striped verified" true rk.E.verified;
  check_int "k rings" k rk.E.rings;
  check_int "same rounds as one ring" r1.E.rounds rk.E.rounds;
  check_int "k x payload" (k * r1.E.payload_words) rk.E.payload_words;
  check_bool "k x goodput" true
    (rk.E.bytes_per_step > 0.99 *. float_of_int k *. r1.E.bytes_per_step);
  let rb =
    run_ring ~bidirectional:true ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce
  in
  check_bool "bidirectional verified" true rb.E.verified;
  check_int "both directions" (2 * k) rb.E.rings

let test_exec_domains_bit_identical () =
  let d = 4 and n = 3 in
  let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k:3) in
  let a = run_ring ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  let b = run_ring ~domains:2 ~rings ~d ~n ~ranks:8 ~chunk_words:2 S.Allreduce in
  check_bool "domains=2 verified" true b.E.verified;
  check_int "same rounds" a.E.rounds b.E.rounds;
  check_int "same delivered" a.E.delivered b.E.delivered;
  check_int "same checksum" a.E.checksum b.E.checksum

let test_exec_validation () =
  let d = 2 and n = 4 in
  let p = W.params ~d ~n in
  let ring = hamiltonian_ring ~d ~n in
  let spec = { E.op = S.Allreduce; ranks = 4; chunk_words = 1; bidirectional = false } in
  Alcotest.check_raises "no rings" (Invalid_argument "Collective.Exec.run: no rings")
    (fun () -> ignore (E.run ~p ~faulty:(fun _ -> false) ~rings:[] spec));
  Alcotest.check_raises "faulty node on ring"
    (Invalid_argument "Collective.Exec.run: ring touches a faulty node") (fun () ->
      ignore (E.run ~p ~faulty:(fun v -> v = ring.(3)) ~rings:[ ring ] spec));
  Alcotest.check_raises "unequal lengths"
    (Invalid_argument "Collective.Exec.run: rings of unequal length") (fun () ->
      ignore
        (E.run ~p ~faulty:(fun _ -> false)
           ~rings:[ ring; Array.sub ring 0 (Array.length ring - 2) ]
           spec));
  (* A ring crossing a dead link is rejected by the simulator itself —
     a clean run proves the rings avoid the fault set. *)
  let u = ring.(0) and v = ring.(1) in
  check_bool "illegal send on faulted link" true
    (match E.run ~edge_faults:[ (u, v) ] ~p ~faulty:(fun _ -> false) ~rings:[ ring ] spec with
    | exception Netsim.Simulator.Illegal_send _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fastpath: the compiled executor against the netsim oracle *)

module F = Collective.Fastpath

let same_report (a : E.report) (b : E.report) =
  a.E.rings = b.E.rings && a.E.ranks = b.E.ranks && a.E.phases = b.E.phases
  && a.E.rounds = b.E.rounds
  && a.E.delivered = b.E.delivered
  && a.E.wire_words = b.E.wire_words
  && a.E.payload_words = b.E.payload_words
  && Float.equal a.E.bytes_per_step b.E.bytes_per_step
  && a.E.max_link_load = b.E.max_link_load
  && a.E.max_port_load = b.E.max_port_load
  && a.E.verified && b.E.verified
  && a.E.checksum = b.E.checksum

let same_payload a b =
  Array.length a = Array.length b && Array.for_all2 Int.equal a b

(* The FFC-embedded ring under node faults: relay-lengthened,
   non-uniform segments — the geometry the closed-form accounting has
   to get right. *)
let ffc_ring_and_faulty ~d ~n ~faults =
  let p = W.params ~d ~n in
  let flags = Debruijn.Necklace.mark_faulty_necklaces p faults in
  match Ffc.Embed.embed p ~faults with
  | Some e -> (e.Ffc.Embed.cycle, fun v -> flags.(v))
  | None -> Alcotest.fail "FFC embed failed"

let agree ?edge_faults ?(faulty = fun _ -> false) ~what ~p ~rings spec =
  let re, pe = E.run_with_payload ?edge_faults ~p ~faulty ~rings spec in
  let rf, pf = F.run_with_payload ?edge_faults ~p ~faulty ~rings spec in
  check_bool (what ^ ": reports agree") true (same_report re rf);
  check_bool (what ^ ": payload arenas agree") true (same_payload pe pf)

let test_fastpath_matches_netsim () =
  List.iter
    (fun op ->
      (* Fault-free Hamiltonian ring, uniform segments. *)
      let p = W.params ~d:2 ~n:4 in
      agree ~what:"B(2,4) hamiltonian" ~p
        ~rings:[ hamiltonian_ring ~d:2 ~n:4 ]
        { E.op; ranks = 4; chunk_words = 2; bidirectional = false };
      (* FFC ring under node faults: relay-lengthened segments. *)
      let ring, faulty = ffc_ring_and_faulty ~d:2 ~n:5 ~faults:[ 3; 17 ] in
      agree ~faulty ~what:"B(2,5) FFC f=2" ~p:(W.params ~d:2 ~n:5)
        ~rings:[ ring ]
        { E.op; ranks = 6; chunk_words = 1; bidirectional = false };
      agree ~faulty ~what:"B(2,5) FFC f=2 bidir" ~p:(W.params ~d:2 ~n:5)
        ~rings:[ ring ]
        { E.op; ranks = 6; chunk_words = 2; bidirectional = true };
      (* Striped edge-disjoint rings, shared relay nodes. *)
      let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d:4 ~n:2 ~k:3) in
      agree ~what:"B(4,2) striped x3" ~p:(W.params ~d:4 ~n:2) ~rings
        { E.op; ranks = 8; chunk_words = 2; bidirectional = false };
      agree ~what:"B(4,2) striped x3 bidir" ~p:(W.params ~d:4 ~n:2) ~rings
        { E.op; ranks = 5; chunk_words = 1; bidirectional = true })
    [ S.Reduce_scatter; S.All_gather; S.Allreduce ];
  (* Survivors of link faults, with the faults actually removed. *)
  let sts =
    Dhc.Edge_fault.surviving_disjoint_streams ~d:4 ~n:2 ~faults:[ (0, 1) ]
  in
  agree ~edge_faults:[ (0, 1) ] ~what:"B(4,2) survivors"
    ~p:(W.params ~d:4 ~n:2)
    ~rings:(List.map Str.to_nodes sts)
    { E.op = S.Allreduce; ranks = 4; chunk_words = 2; bidirectional = false }

(* The closed-form rounds formula against hand-computed pipeline
   timings on a uniform ring: every segment has length L/R, so the
   last phase-(ph−1) receive lands at round ph·(L/R) and the simulator
   counts one more executed round. *)
let test_fastpath_closed_form () =
  let d = 2 and n = 4 in
  let p = W.params ~d ~n in
  let ring = hamiltonian_ring ~d ~n in
  let run op =
    F.run ~p ~faulty:(fun _ -> false) ~rings:[ ring ]
      { E.op; ranks = 4; chunk_words = 1; bidirectional = false }
  in
  let ar = run S.Allreduce in
  check_int "allreduce rounds = 2(R-1)(L/R)+1" ((6 * 4) + 1) ar.E.rounds;
  check_int "allreduce delivered = ph*L" (6 * 16) ar.E.delivered;
  check_int "single ring port load" 1 ar.E.max_port_load;
  check_int "single ring link load = phases" 6 ar.E.max_link_load;
  let rs = run S.Reduce_scatter in
  check_int "reduce-scatter rounds" ((3 * 4) + 1) rs.E.rounds;
  (* And the same figures from the measuring executor. *)
  let ns op =
    E.run ~p ~faulty:(fun _ -> false) ~rings:[ ring ]
      { E.op; ranks = 4; chunk_words = 1; bidirectional = false }
  in
  check_int "netsim agrees (ar)" (ns S.Allreduce).E.rounds ar.E.rounds;
  check_int "netsim agrees (rs)" (ns S.Reduce_scatter).E.rounds rs.E.rounds

let test_clamp_ranks () =
  let d = 2 and n = 4 in
  let p = W.params ~d ~n in
  let ring = hamiltonian_ring ~d ~n in
  let spec ranks =
    { E.op = S.Allreduce; ranks; chunk_words = 1; bidirectional = false }
  in
  Alcotest.check_raises "exec rejects ranks > length"
    (Invalid_argument
       "Collective.Exec.run: spec.ranks 99 > ring length 16 (pass \
        ~clamp_ranks:true to clamp)") (fun () ->
      ignore (E.run ~p ~faulty:(fun _ -> false) ~rings:[ ring ] (spec 99)));
  Alcotest.check_raises "fastpath rejects ranks > length"
    (Invalid_argument
       "Collective.Fastpath.run: spec.ranks 99 > ring length 16 (pass \
        ~clamp_ranks:true to clamp)") (fun () ->
      ignore (F.run ~p ~faulty:(fun _ -> false) ~rings:[ ring ] (spec 99)));
  let re = E.run ~clamp_ranks:true ~p ~faulty:(fun _ -> false) ~rings:[ ring ] (spec 99) in
  let rf = F.run ~clamp_ranks:true ~p ~faulty:(fun _ -> false) ~rings:[ ring ] (spec 99) in
  check_int "exec clamps to length" 16 re.E.ranks;
  check_bool "clamped runs agree" true (same_report re rf)

let test_fastpath_illegal_send () =
  let d = 2 and n = 4 in
  let p = W.params ~d ~n in
  let ring = hamiltonian_ring ~d ~n in
  let spec =
    { E.op = S.Allreduce; ranks = 4; chunk_words = 1; bidirectional = false }
  in
  (* Faulting the edge at ring position i kills the phase-0 wave at
     segment offset i mod (L/R) — the compile-time raise carries the
     round the simulator would first attempt that send. *)
  List.iter
    (fun pos ->
      match
        F.run
          ~edge_faults:[ (ring.(pos), ring.(pos + 1)) ]
          ~p ~faulty:(fun _ -> false) ~rings:[ ring ] spec
      with
      | exception Netsim.Simulator.Illegal_send { round; src; dst } ->
          check_int "illegal send round = segment offset" (pos mod 4) round;
          check_int "illegal send src" ring.(pos) src;
          check_int "illegal send dst" ring.(pos + 1) dst
      | _ -> Alcotest.fail "expected Illegal_send")
    [ 0; 1; 6 ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"striped = single ring = sequential fold" ~count:30
      (triple (int_range 0 2) (int_range 2 8) (int_range 1 3))
      (fun (opi, ranks, cw) ->
        let op = List.nth [ S.Reduce_scatter; S.All_gather; S.Allreduce ] opi in
        let d = 4 and n = 2 in
        let k = 1 + (ranks mod P.psi d) in
        let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k) in
        let p = W.params ~d ~n in
        let seeded ~ring ~rank ~chunk ~word =
          1 + (((ring * 101) + (rank * 13) + (chunk * 7) + (word * 3)) mod 89)
        in
        let r =
          E.run ~init:seeded ~p
            ~faulty:(fun _ -> false)
            ~rings
            { E.op; ranks; chunk_words = cw; bidirectional = false }
        in
        (* verified = exact equality against Schedule.simulate, itself
           checked against the sequential fold in the unit tests. *)
        r.E.verified && r.E.rings = k);
    Test.make ~name:"random surviving rings verify under link faults" ~count:20
      (pair (int_range 0 2) small_nat)
      (fun (nf, seed) ->
        let d = 4 and n = 2 in
        let all = Co.disjoint_hamiltonian_streams ~d ~n in
        let rng = Util.Rng.split seed 7 in
        (* Fault nf distinct rings' first edges. *)
        let victims =
          List.filteri (fun i _ -> i < nf)
            (List.map (fun st ->
                 let u = Util.Rng.int rng st.Str.p.W.size in
                 (u, st.Str.succ u))
                all)
        in
        let survivors =
          Dhc.Edge_fault.surviving_disjoint_streams ~d ~n ~faults:victims
        in
        match survivors with
        | [] -> true
        | sts ->
            let p = W.params ~d ~n in
            let r =
              E.run ~edge_faults:victims ~p
                ~faulty:(fun _ -> false)
                ~rings:(List.map Str.to_nodes sts)
                {
                  E.op = S.Allreduce;
                  ranks = 4;
                  chunk_words = 2;
                  bidirectional = false;
                }
            in
            r.E.verified);
    Test.make ~name:"domains stepping is bit-identical" ~count:10
      (pair (int_range 2 4) (int_range 1 2))
      (fun (domains, cw) ->
        let d = 2 and n = 5 in
        let a = run_ring ~d ~n ~ranks:6 ~chunk_words:cw S.Allreduce in
        let b = run_ring ~domains ~d ~n ~ranks:6 ~chunk_words:cw S.Allreduce in
        a.E.checksum = b.E.checksum
        && a.E.rounds = b.E.rounds
        && a.E.delivered = b.E.delivered
        && b.E.verified);
    (* The tentpole pin: identical report counters and word-identical
       payload arenas across ops x ranks x chunk_words x bidirectional
       x node-fault draws (FFC rings, relay-lengthened segments). *)
    Test.make ~name:"fastpath = netsim (reports + payload arenas)" ~count:25
      (quad (int_range 0 2) (int_range 2 10) (int_range 1 3)
         (pair bool (int_range 0 3)))
      (fun (opi, ranks, cw, (bidir, nf)) ->
        let op = List.nth [ S.Reduce_scatter; S.All_gather; S.Allreduce ] opi in
        let d = 2 and n = 5 in
        let faults = List.filteri (fun i _ -> i < nf) [ 5; 11; 23 ] in
        let ring, faulty = ffc_ring_and_faulty ~d ~n ~faults in
        let p = W.params ~d ~n in
        let spec = { E.op; ranks; chunk_words = cw; bidirectional = bidir } in
        let seeded ~ring ~rank ~chunk ~word =
          1 + (((ring * 211) + (rank * 17) + (chunk * 5) + (word * 3)) mod 83)
        in
        let re, pe =
          E.run_with_payload ~init:seeded ~p ~faulty ~rings:[ ring ] spec
        in
        let rf, pf =
          F.run_with_payload ~init:seeded ~p ~faulty ~rings:[ ring ] spec
        in
        same_report re rf && same_payload pe pf);
    (* Same pin over the Chapter-3 side: striped survivors of random
       link-fault draws. *)
    Test.make ~name:"fastpath = netsim (striped survivors)" ~count:20
      (pair (int_range 0 2) small_nat)
      (fun (nf, seed) ->
        let d = 4 and n = 2 in
        let all = Co.disjoint_hamiltonian_streams ~d ~n in
        let rng = Util.Rng.split seed 11 in
        let victims =
          List.filteri (fun i _ -> i < nf)
            (List.map (fun st ->
                 let u = Util.Rng.int rng st.Str.p.W.size in
                 (u, st.Str.succ u))
                all)
        in
        match
          Dhc.Edge_fault.surviving_disjoint_streams ~d ~n ~faults:victims
        with
        | [] -> true
        | sts ->
            let p = W.params ~d ~n in
            let rings = List.map Str.to_nodes sts in
            let spec =
              { E.op = S.Allreduce; ranks = 6; chunk_words = 2; bidirectional = false }
            in
            let re, pe =
              E.run_with_payload ~edge_faults:victims ~p
                ~faulty:(fun _ -> false) ~rings spec
            in
            let rf, pf =
              F.run_with_payload ~edge_faults:victims ~p
                ~faulty:(fun _ -> false) ~rings spec
            in
            same_report re rf && same_payload pe pf);
    (* The deterministic-commit contract: any ?domains splits commit
       bit-identical arenas. *)
    Test.make ~name:"fastpath ?domains 1/2/4 bit-identity" ~count:10
      (pair (int_range 0 2) (int_range 1 2))
      (fun (opi, cw) ->
        let op = List.nth [ S.Reduce_scatter; S.All_gather; S.Allreduce ] opi in
        let d = 4 and n = 2 in
        let rings = List.map Str.to_nodes (Co.disjoint_streams_upto ~d ~n ~k:3) in
        let p = W.params ~d ~n in
        let spec = { E.op; ranks = 8; chunk_words = cw; bidirectional = true } in
        let run domains =
          F.run_with_payload ~domains ~p ~faulty:(fun _ -> false) ~rings spec
        in
        let r1, p1 = run 1 in
        let r2, p2 = run 2 in
        let r4, p4 = run 4 in
        r1.E.verified
        && same_report r1 r2 && same_report r1 r4
        && same_payload p1 p2 && same_payload p1 p4);
  ]

let () =
  Alcotest.run "collective"
    [
      ( "schedule",
        [
          Alcotest.test_case "send/recv indices" `Quick test_schedule_indices;
          Alcotest.test_case "rank boundaries" `Quick test_schedule_boundaries;
          Alcotest.test_case "reference executor vs fold oracle" `Quick
            test_simulate_oracle;
        ] );
      ( "exec",
        [
          Alcotest.test_case "exact verification + invariants" `Quick
            test_exec_verifies;
          Alcotest.test_case "striping and bidirectional" `Quick
            test_exec_striped_and_bidir;
          Alcotest.test_case "domains bit-identity" `Quick
            test_exec_domains_bit_identical;
          Alcotest.test_case "validation" `Quick test_exec_validation;
        ] );
      ( "fastpath",
        [
          Alcotest.test_case "matches netsim across configs" `Quick
            test_fastpath_matches_netsim;
          Alcotest.test_case "closed-form rounds/congestion" `Quick
            test_fastpath_closed_form;
          Alcotest.test_case "clamp_ranks policy" `Quick test_clamp_ranks;
          Alcotest.test_case "illegal send at compile time" `Quick
            test_fastpath_illegal_send;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
