(* Tests for the public facade: end-to-end driver behaviour. *)

module W = Core.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fault_free_ring () =
  let p = W.params ~d:3 ~n:3 in
  let faults = [ W.of_string p "020"; W.of_string p "112" ] in
  match Core.fault_free_ring ~d:3 ~n:3 ~faults with
  | None -> Alcotest.fail "expected a ring"
  | Some ring ->
      check_int "21 nodes" 21 (Array.length ring);
      check_bool "valid in B(3,3)" true (Core.Cycle.is_cycle (Core.Graph.b p) ring);
      check_bool "avoids faults" true
        (Core.Cycle.avoids_nodes ring (fun v -> List.mem v faults))

let test_fault_free_ring_empty () =
  (* every node faulty *)
  Alcotest.(check bool) "none" true
    (Core.fault_free_ring ~d:2 ~n:2 ~faults:[ 0; 1; 3 ] = None)

let test_distributed_agrees () =
  let p = W.params ~d:3 ~n:3 in
  let faults = [ W.of_string p "020" ] in
  let cent = Option.get (Core.fault_free_ring ~d:3 ~n:3 ~faults) in
  let dist, stats = Option.get (Core.fault_free_ring_distributed ~d:3 ~n:3 ~faults ()) in
  Alcotest.(check (array int)) "same ring" cent dist;
  check_bool "rounds positive" true (stats.Core.Distributed.total_rounds > 0)

let test_length_guarantee () =
  check_int "B(4,6), f=2" 4084 (Core.ring_length_guarantee ~d:4 ~n:6 ~f:2);
  check_int "B(2,10), f=5" 974 (Core.ring_length_guarantee ~d:2 ~n:10 ~f:5)

let test_edge_fault_ring () =
  let p = W.params ~d:5 ~n:2 in
  let faults = [ (W.of_string p "01", W.of_string p "12") ] in
  match Core.hamiltonian_ring_avoiding_edge_faults ~d:5 ~n:2 ~faults with
  | None -> Alcotest.fail "expected HC"
  | Some ring ->
      check_bool "hamiltonian" true (Core.Cycle.is_hamiltonian (Core.Graph.b p) ring);
      check_bool "avoids fault" true
        (Core.Cycle.avoids_edges ring (fun e -> List.mem e faults))

let test_edge_fault_tolerance () =
  check_int "d=9" 7 (Core.edge_fault_tolerance 9);
  check_int "d=28 (psi wins)" 8 (Core.edge_fault_tolerance 28)

let test_disjoint_rings () =
  let rings = Core.disjoint_rings ~d:4 ~n:2 in
  check_int "psi(4) = 3 rings" 3 (List.length rings);
  check_bool "pairwise disjoint" true (Core.Cycle.pairwise_edge_disjoint rings)

let test_butterfly_ring () =
  let bf = Core.Butterfly_graph.create ~d:3 ~n:2 in
  let faults = [ (0, List.hd (Core.Butterfly_graph.successors bf 0)) ] in
  match Core.butterfly_ring_avoiding_edge_faults ~d:3 ~n:2 ~faults with
  | None -> Alcotest.fail "expected butterfly HC"
  | Some ring ->
      check_bool "hamiltonian" true
        (Core.Cycle.is_hamiltonian bf.Core.Butterfly_graph.graph ring);
      check_bool "avoids" true (Core.Cycle.avoids_edges ring (fun e -> List.mem e faults))

let test_de_bruijn_sequence () =
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      check_bool
        (Printf.sprintf "d=%d n=%d" d n)
        true
        (Core.Sequence.is_de_bruijn_sequence p (Core.de_bruijn_sequence ~d ~n)))
    [ (2, 3); (2, 8); (3, 4); (4, 3); (5, 2); (6, 2) ]

let test_route () =
  let p = W.params ~d:4 ~n:3 in
  let faults = [ W.of_string p "010"; W.of_string p "231" ] in
  let x = W.of_string p "122" and y = W.of_string p "332" in
  (match Core.route ~d:4 ~n:3 ~faults x y with
  | None -> Alcotest.fail "route must exist under 2 <= d-2 faults"
  | Some path ->
      check_int "starts at x" x (List.hd path);
      check_int "ends at y" y (List.nth path (List.length path - 1));
      check_bool "within 2n hops" true (List.length path <= 7);
      let flags = Core.Necklace.mark_faulty_necklaces p faults in
      check_bool "avoids faulty necklaces" true
        (List.for_all (fun v -> not flags.(v)) path));
  (* faulty endpoint *)
  check_bool "faulty endpoint" true (Core.route ~d:4 ~n:3 ~faults (List.hd faults) y = None)

let test_counts () =
  check_int "total B(2,12)" 352 (Core.necklace_count ~d:2 ~n:12);
  check_int "length 6" 9 (Core.necklace_count_of_length ~d:2 ~n:12 ~t:6)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "fault_free_ring" `Quick test_fault_free_ring;
          Alcotest.test_case "empty B*" `Quick test_fault_free_ring_empty;
          Alcotest.test_case "distributed agrees" `Quick test_distributed_agrees;
          Alcotest.test_case "length guarantee" `Quick test_length_guarantee;
          Alcotest.test_case "edge-fault ring" `Quick test_edge_fault_ring;
          Alcotest.test_case "edge-fault tolerance" `Quick test_edge_fault_tolerance;
          Alcotest.test_case "disjoint rings" `Quick test_disjoint_rings;
          Alcotest.test_case "butterfly ring" `Quick test_butterfly_ring;
          Alcotest.test_case "De Bruijn sequences" `Quick test_de_bruijn_sequence;
          Alcotest.test_case "routing" `Quick test_route;
          Alcotest.test_case "necklace counts" `Quick test_counts;
        ] );
    ]
