(* Tests for the De Bruijn substrate: words, necklaces, graphs, sequences. *)

module W = Debruijn.Word
module N = Debruijn.Necklace
module G = Debruijn.Graph
module S = Debruijn.Sequence
module D = Graphlib.Digraph
module T = Graphlib.Traversal
module C = Graphlib.Cycle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let p33 = W.params ~d:3 ~n:3
let p23 = W.params ~d:2 ~n:3
let p24 = W.params ~d:2 ~n:4
let p34 = W.params ~d:3 ~n:4

(* ------------------------------------------------------------------ *)
(* words *)

let test_params () =
  check_int "3^3" 27 p33.W.size;
  check_int "2^4" 16 p24.W.size;
  Alcotest.check_raises "d too small" (Invalid_argument "Word.params: d < 2") (fun () ->
      ignore (W.params ~d:1 ~n:3));
  Alcotest.check_raises "n too small" (Invalid_argument "Word.params: n < 1") (fun () ->
      ignore (W.params ~d:2 ~n:0));
  Alcotest.check_raises "overflow" (Invalid_argument "Word.params: d^n too large") (fun () ->
      ignore (W.params ~d:10 ~n:30))

let test_encode_decode () =
  let x = W.encode p33 [| 1; 1; 2 |] in
  check_int "encode 112 base 3" 14 x;
  Alcotest.(check (array int)) "decode" [| 1; 1; 2 |] (W.decode p33 x);
  check_int "encode 020" 6 (W.encode p33 [| 0; 2; 0 |]);
  Alcotest.(check string) "to_string" "020" (W.to_string p33 6);
  check_int "of_string" 14 (W.of_string p33 "112");
  List.iter
    (fun x -> check_int "roundtrip" x (W.encode p33 (W.decode p33 x)))
    (W.all p33)

let test_digits () =
  let x = W.of_string p34 "1202" in
  check_int "digit 1" 1 (W.digit p34 x 1);
  check_int "digit 2" 2 (W.digit p34 x 2);
  check_int "digit 4" 2 (W.digit p34 x 4);
  check_int "first" 1 (W.first_digit p34 x);
  check_int "last" 2 (W.last_digit p34 x);
  let p3 = W.params ~d:3 ~n:3 in
  check_int "prefix 120" (W.of_string p3 "120") (W.prefix p34 x);
  check_int "suffix 202" (W.of_string p3 "202") (W.suffix p34 x)

let test_cons_snoc () =
  let w = W.of_string (W.params ~d:3 ~n:2) "12" in
  check_int "cons" (W.of_string p33 "012") (W.cons p33 0 w);
  check_int "snoc" (W.of_string p33 "120") (W.snoc p33 w 0)

let test_rotations () =
  let x = W.of_string p34 "1202" in
  Alcotest.(check string) "rotl" "2021" (W.to_string p34 (W.rotl p34 x));
  (* The thesis: π³(1202) = π^{-1}(1202) = 2120. *)
  Alcotest.(check string) "rotl_by 3" "2120" (W.to_string p34 (W.rotl_by p34 3 x));
  Alcotest.(check string) "rotl_by -1 = rotl_by 3" "2120" (W.to_string p34 (W.rotl_by p34 (-1) x));
  check_int "full rotation identity" x (W.rotl_by p34 4 x);
  check_int "rotl_by 0" x (W.rotl_by p34 0 x)

let test_weight () =
  let x = W.of_string p34 "1120" in
  check_int "wt(1120)" 4 (W.weight p34 x);
  check_int "wt0" 1 (W.count_digit p34 0 x);
  check_int "wt1" 2 (W.count_digit p34 1 x);
  check_int "wt2" 1 (W.count_digit p34 2 x);
  check_int "wt(0000)" 0 (W.weight p34 (W.constant p34 0))

let test_period () =
  check_int "period 0101" 2 (W.period p24 (W.of_string p24 "0101"));
  check_int "period 0000" 1 (W.period p24 (W.of_string p24 "0000"));
  check_int "period 0011" 4 (W.period p24 (W.of_string p24 "0011"));
  check_bool "aperiodic" true (W.is_aperiodic p24 (W.of_string p24 "0011"));
  check_bool "periodic" false (W.is_aperiodic p24 (W.of_string p24 "0101"))

let test_constant_alternating () =
  Alcotest.(check string) "2222" "2222" (W.to_string p34 (W.constant p34 2));
  Alcotest.(check string) "alt even" "1212" (W.to_string p34 (W.alternating p34 1 2));
  Alcotest.(check string) "alt odd" "121" (W.to_string p33 (W.alternating p33 1 2))

let test_successors () =
  let x = W.of_string p33 "012" in
  Alcotest.(check (list string)) "succs" [ "120"; "121"; "122" ]
    (List.map (W.to_string p33) (W.successors p33 x));
  Alcotest.(check (list string)) "preds" [ "001"; "101"; "201" ]
    (List.map (W.to_string p33) (W.predecessors p33 x))

(* ------------------------------------------------------------------ *)
(* necklaces *)

let test_necklace_example () =
  (* N(1120) = [0112] = (1120, 1201, 2011, 0112) — the thesis's example. *)
  let x = W.of_string p34 "1120" in
  check_int "canonical" (W.of_string p34 "0112") (N.canonical p34 x);
  Alcotest.(check (list string)) "orbit from x" [ "1120"; "1201"; "2011"; "0112" ]
    (List.map (W.to_string p34) (N.nodes_from p34 x));
  Alcotest.(check (list string)) "orbit from rep" [ "0112"; "1120"; "1201"; "2011" ]
    (List.map (W.to_string p34) (N.nodes p34 x));
  check_int "length" 4 (N.length p34 x)

let test_necklace_short () =
  let x = W.of_string p24 "0101" in
  check_int "short necklace length" 2 (N.length p24 x);
  Alcotest.(check (list string)) "orbit" [ "0101"; "1010" ]
    (List.map (W.to_string p24) (N.nodes p24 x));
  check_int "constant necklace" 1 (N.length p24 (W.of_string p24 "1111"))

let test_necklace_partition () =
  (* Necklaces partition the node set, each of size dividing n. *)
  List.iter
    (fun p ->
      let reps = N.all_representatives p in
      let total = List.fold_left (fun acc r -> acc + N.length p r) 0 reps in
      check_int "partition covers all nodes" p.W.size total;
      List.iter
        (fun r ->
          check_bool "length divides n" true (p.W.n mod N.length p r = 0);
          List.iter
            (fun x -> check_int "canonical constant on orbit" r (N.canonical p x))
            (N.nodes p r))
        reps)
    [ p23; p24; p33; p34; W.params ~d:2 ~n:6; W.params ~d:4 ~n:3 ]

let test_necklace_same () =
  check_bool "same" true (N.same p34 (W.of_string p34 "1120") (W.of_string p34 "0112"));
  check_bool "diff" false (N.same p34 (W.of_string p34 "1120") (W.of_string p34 "1122"))

let test_necklace_counts () =
  (* B(2,3) has 4 necklaces: [000],[001],[011],[111]. *)
  check_int "B(2,3)" 4 (N.count p23);
  (* B(3,3): (1/3)(3·φ(3)... ) = (3^1·2 + 3^3·1)/3 = 11. *)
  check_int "B(3,3)" 11 (N.count p33);
  check_int "B(2,4)" 6 (N.count p24)

let test_mark_faulty () =
  let faults = [ W.of_string p33 "020"; W.of_string p33 "112" ] in
  let faulty = N.mark_faulty_necklaces p33 faults in
  let marked = List.filter (fun x -> faulty.(x)) (W.all p33) in
  check_int "two 3-necklaces marked" 6 (List.length marked);
  check_bool "rotation marked" true faulty.(W.of_string p33 "200");
  check_bool "unrelated not marked" false faulty.(W.of_string p33 "000")

(* ------------------------------------------------------------------ *)
(* graphs *)

let test_b_graph () =
  let g = G.b p23 in
  check_int "nodes" 8 (D.n_nodes g);
  check_int "edges (with loops)" 16 (D.n_edges g);
  check_bool "loop at 000" true (D.mem_edge g 0 0);
  check_bool "loop at 111" true (D.mem_edge g 7 7);
  (* edges of Figure 1.1(a): 000->001, 001->011, 100->001, ... *)
  let e a b = D.mem_edge g (W.of_string p23 a) (W.of_string p23 b) in
  check_bool "000->001" true (e "000" "001");
  check_bool "001->011" true (e "001" "011");
  check_bool "001->010" true (e "001" "010");
  check_bool "100->000" true (e "100" "000");
  check_bool "no 000->100" false (e "000" "100");
  check_bool "strongly connected" true (T.is_strongly_connected g (fun _ -> true))

let test_b_degrees () =
  List.iter
    (fun p ->
      let g = G.b p in
      for v = 0 to p.W.size - 1 do
        check_int "outdegree d" p.W.d (D.out_degree g v);
        check_int "indegree d" p.W.d (D.in_degree g v)
      done)
    [ p23; p33; p24 ]

let test_b_diameter () =
  (* diam B(d,n) = n. *)
  check_int "diam B(2,3)" 3 (T.diameter_from_all (G.b p23));
  check_int "diam B(3,3)" 3 (T.diameter_from_all (G.b p33));
  check_int "diam B(2,4)" 4 (T.diameter_from_all (G.b p24))

let test_ub_census () =
  (* [PR82]: UB(d,n) has d nodes of degree 2d−2, d(d−1) of degree 2d−1,
     and dⁿ − d² of degree 2d. *)
  List.iter
    (fun p ->
      let census = G.degree_census (G.ub p) in
      let d = p.W.d in
      let expected =
        List.filter
          (fun (_, c) -> c > 0)
          [ ((2 * d) - 2, d); ((2 * d) - 1, d * (d - 1)); (2 * d, p.W.size - (d * d)) ]
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "census d=%d n=%d" p.W.d p.W.n)
        (List.sort compare expected) census)
    [ p23; p24; p33; p34; W.params ~d:4 ~n:3 ]

let test_ub_symmetric () =
  let g = G.ub p23 in
  D.iter_edges (fun u v -> check_bool "symmetric" true (D.mem_edge g v u)) g;
  check_bool "no loops" true (not (D.mem_edge g 0 0))

let test_line_graph () =
  (* B(d,n+1) = L(B(d,n)): edge-as-node round trip and adjacency. *)
  let p = p23 in
  let g = G.b p in
  let g' = G.b p24 in
  D.iter_edges
    (fun u v ->
      let z = G.edge_as_higher_node p (u, v) in
      let u', v' = G.higher_node_as_edge p z in
      check_int "roundtrip u" u u';
      check_int "roundtrip v" v v')
    g;
  (* Adjacency in the line graph = node adjacency upstairs. *)
  D.iter_edges
    (fun u v ->
      List.iter
        (fun w ->
          let z1 = G.edge_as_higher_node p (u, v) in
          let z2 = G.edge_as_higher_node p (v, w) in
          check_bool "line graph edge" true (D.mem_edge g' z1 z2))
        (D.succs g v))
    g

let test_cycle_to_lower_circuit () =
  (* The thesis's example: (012,122,221,212,120,201) in B(3,3) maps to
     the circuit (01,12,22,21,12,20,01) in B(3,2). *)
  let c = Array.map (W.of_string p33) [| "012"; "122"; "221"; "212"; "120"; "201" |] in
  check_bool "is cycle in B(3,3)" true (C.is_cycle (G.b p33) c);
  let p32 = W.params ~d:3 ~n:2 in
  let circuit = G.cycle_to_lower_circuit p33 c in
  Alcotest.(check (list string)) "circuit" [ "01"; "12"; "22"; "21"; "12"; "20"; "01" ]
    (List.map (W.to_string p32) circuit);
  check_bool "valid circuit downstairs" true (Graphlib.Euler.is_circuit (G.b p32) circuit)

(* ------------------------------------------------------------------ *)
(* sequences *)

let test_sequence_windows () =
  (* [0,1,2,1,2] denotes the 5-cycle (012,121,212,120,201) in B(3,3). *)
  let c = [| 0; 1; 2; 1; 2 |] in
  Alcotest.(check (list string)) "windows" [ "012"; "121"; "212"; "120"; "201" ]
    (List.map (W.to_string p33) (Array.to_list (S.nodes_of_sequence p33 c)));
  check_bool "is cycle sequence" true (S.is_cycle_sequence p33 c);
  check_bool "cycle in graph" true (C.is_cycle (G.b p33) (S.cycle_of_sequence p33 c))

let test_sequence_roundtrip () =
  let c = [| 0; 1; 2; 1; 2 |] in
  Alcotest.(check (array int)) "sequence_of_cycle inverse" c
    (S.sequence_of_cycle p33 (S.cycle_of_sequence p33 c))

let test_sequence_not_cycle () =
  check_bool "repeated window" false (S.is_cycle_sequence p33 [| 0; 1; 2; 0; 1; 2 |]);
  check_bool "empty" false (S.is_cycle_sequence p33 [||])

let test_de_bruijn_sequence () =
  (* The classic binary De Bruijn sequence of order 3. *)
  let c = [| 0; 0; 0; 1; 0; 1; 1; 1 |] in
  check_bool "de bruijn" true (S.is_de_bruijn_sequence p23 c);
  check_bool "short not" false (S.is_de_bruijn_sequence p23 [| 0; 0; 1; 1 |]);
  let cyc = S.cycle_of_sequence p23 c in
  check_bool "hamiltonian" true (C.is_hamiltonian (G.b p23) cyc)

let test_sequence_edge_disjoint () =
  (* Two length-4 cycles in B(2,2): [0,0,1,1] uses edges 001,011,110,100;
     [0,1,0,1]... is not a cycle (windows repeat).  Use B(2,2)'s two
     2-cycles instead: [0,1] (01,10) and loops are excluded, so compare
     [0,0,1,1] with itself rotated (same edges). *)
  let p22 = W.params ~d:2 ~n:2 in
  let a = [| 0; 0; 1; 1 |] in
  check_bool "self not disjoint" false (S.edge_disjoint p22 a a);
  check_bool "rotation not disjoint" false (S.edge_disjoint p22 a (S.rotate a 1));
  let b = [| 0; 1 |] in
  check_bool "disjoint" true (S.edge_disjoint p22 a b)

let test_sequence_rotate_equal () =
  let a = [| 1; 2; 3; 4 |] in
  Alcotest.(check (array int)) "rotate" [| 3; 4; 1; 2 |] (S.rotate a 2);
  check_bool "cyclic equal" true (S.equal_cyclically a [| 4; 1; 2; 3 |]);
  check_bool "not equal" false (S.equal_cyclically a [| 1; 2; 4; 3 |]);
  check_bool "diff lengths" false (S.equal_cyclically a [| 1; 2 |])

let test_add_scalar () =
  let f = Galois.Gf.create 3 in
  let c = [| 0; 1; 2; 1; 2 |] in
  Alcotest.(check (array int)) "s + C over GF(3)" [| 1; 2; 0; 2; 0 |]
    (S.add_scalar (Galois.Gf.add f) c 1)

let test_de_bruijn_is_eulerian () =
  (* B(d,n) is balanced and connected, hence Eulerian; its Euler circuit
     traverses each edge once — i.e. it reads out a De Bruijn sequence
     of order n+1 (the classic line-graph route to existence). *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = G.b p in
      check_bool "eulerian" true (Graphlib.Euler.is_eulerian g);
      match Graphlib.Euler.euler_circuit g with
      | None -> Alcotest.fail "circuit expected"
      | Some circuit ->
          check_int "edge count" (D.n_edges g) (List.length circuit - 1);
          check_bool "valid" true (Graphlib.Euler.is_circuit g circuit);
          (* map the circuit's edges to nodes of B(d,n+1): they form a
             Hamiltonian cycle there *)
          let p' = W.params ~d ~n:(n + 1) in
          let rec edges acc = function
            | a :: (b :: _ as rest) -> edges (G.edge_as_higher_node p (a, b) :: acc) rest
            | _ -> List.rev acc
          in
          let upstairs = Array.of_list (edges [] circuit) in
          check_bool "lifts to an HC of B(d,n+1)" true
            (C.is_hamiltonian (G.b p') upstairs))
    [ (2, 3); (2, 4); (3, 2); (3, 3); (4, 2) ]

let test_large_word_sizes () =
  (* the encoding stays exact at the top of the supported range *)
  let p = W.params ~d:2 ~n:20 in
  check_int "2^20" (1 lsl 20) p.W.size;
  let x = p.W.size - 1 in
  check_int "rotl fixes all-ones" x (W.rotl p x);
  check_int "weight" 20 (W.weight p x);
  let p3 = W.params ~d:3 ~n:12 in
  let y = W.encode p3 (Array.init 12 (fun i -> i mod 3)) in
  check_int "period of repeating pattern" 3 (W.period p3 y);
  check_int "necklace length" 3 (N.length p3 y)

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  let params_gen =
    oneofl [ (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (4, 2); (4, 3); (5, 2) ]
  in
  [
    Test.make ~name:"rotl preserves weight and digit counts" ~count:500
      (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        W.weight p (W.rotl p x) = W.weight p x
        && List.for_all
             (fun a -> W.count_digit p a (W.rotl p x) = W.count_digit p a x)
             (List.init d Fun.id));
    Test.make ~name:"rotl_by n is identity" ~count:500 (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        W.rotl_by p n x = x);
    Test.make ~name:"decode gives valid digits" ~count:500 (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        Array.for_all (fun c -> c >= 0 && c < d) (W.decode p x));
    Test.make ~name:"successor/predecessor duality" ~count:500
      (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        List.for_all (fun y -> List.mem x (W.predecessors p y)) (W.successors p x));
    Test.make ~name:"canonical is minimal rotation" ~count:500
      (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        let c = N.canonical p x in
        List.for_all (fun y -> c <= y) (N.nodes_from p x));
    Test.make ~name:"necklace orbit under rotl is closed" ~count:500
      (pair params_gen (int_range 0 100000))
      (fun ((d, n), x) ->
        let p = W.params ~d ~n in
        let x = x mod p.W.size in
        let orbit = N.nodes_from p x in
        List.for_all (fun y -> N.same p x y) orbit);
    Test.make ~name:"sequence/cycle roundtrip" ~count:300
      (pair params_gen (int_range 0 1000))
      (fun ((d, n), seed) ->
        (* take the necklace cycle of a random node as a cycle sequence *)
        let p = W.params ~d ~n in
        let x = seed mod p.W.size in
        let cyc = Array.of_list (N.nodes_from p x) in
        let seq = S.sequence_of_cycle p cyc in
        S.cycle_of_sequence p seq = cyc);
  ]

let () =
  Alcotest.run "debruijn"
    [
      ( "word",
        [
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "digits" `Quick test_digits;
          Alcotest.test_case "cons/snoc" `Quick test_cons_snoc;
          Alcotest.test_case "rotations" `Quick test_rotations;
          Alcotest.test_case "weight" `Quick test_weight;
          Alcotest.test_case "period" `Quick test_period;
          Alcotest.test_case "constant/alternating" `Quick test_constant_alternating;
          Alcotest.test_case "successors" `Quick test_successors;
        ] );
      ( "necklace",
        [
          Alcotest.test_case "thesis example N(1120)" `Quick test_necklace_example;
          Alcotest.test_case "short necklaces" `Quick test_necklace_short;
          Alcotest.test_case "partition" `Quick test_necklace_partition;
          Alcotest.test_case "same" `Quick test_necklace_same;
          Alcotest.test_case "counts" `Quick test_necklace_counts;
          Alcotest.test_case "mark faulty" `Quick test_mark_faulty;
        ] );
      ( "graph",
        [
          Alcotest.test_case "B(2,3) structure (Fig 1.1)" `Quick test_b_graph;
          Alcotest.test_case "regular degrees" `Quick test_b_degrees;
          Alcotest.test_case "diameter" `Quick test_b_diameter;
          Alcotest.test_case "UB census (PR82)" `Quick test_ub_census;
          Alcotest.test_case "UB symmetric" `Quick test_ub_symmetric;
          Alcotest.test_case "line graph" `Quick test_line_graph;
          Alcotest.test_case "cycle to lower circuit" `Quick test_cycle_to_lower_circuit;
          Alcotest.test_case "Eulerian / sequence lift" `Quick test_de_bruijn_is_eulerian;
          Alcotest.test_case "large word sizes" `Quick test_large_word_sizes;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "windows (thesis 5-cycle)" `Quick test_sequence_windows;
          Alcotest.test_case "roundtrip" `Quick test_sequence_roundtrip;
          Alcotest.test_case "non-cycles" `Quick test_sequence_not_cycle;
          Alcotest.test_case "de bruijn sequence" `Quick test_de_bruijn_sequence;
          Alcotest.test_case "edge disjoint" `Quick test_sequence_edge_disjoint;
          Alcotest.test_case "rotate/equal" `Quick test_sequence_rotate_equal;
          Alcotest.test_case "add scalar" `Quick test_add_scalar;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
