(* Tests for the bounded backtracking cycle searcher. *)

module H = Hamsearch.Search
module D = Graphlib.Digraph
module C = Graphlib.Cycle
module W = Debruijn.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ring n = D.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_ring () =
  (match H.hamiltonian (ring 6) with
  | H.Found c -> Alcotest.(check (array int)) "the ring itself" [| 0; 1; 2; 3; 4; 5 |] c
  | _ -> Alcotest.fail "expected HC");
  (* the only cycle lengths in a directed 6-ring are 6 *)
  check_bool "no short cycle" true (H.cycle ~length:3 (ring 6) = H.Not_found)

let test_path_has_no_cycle () =
  let path = D.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check_bool "no HC" true (H.hamiltonian path = H.Not_found);
  check_bool "no cycle at all" true (H.cycle ~length:2 path = H.Not_found)

let test_loop () =
  let g = D.of_edges 2 [ (0, 0); (0, 1); (1, 0) ] in
  (match H.cycle ~length:1 g with
  | H.Found c -> Alcotest.(check (array int)) "loop" [| 0 |] c
  | _ -> Alcotest.fail "expected loop");
  match H.cycle ~length:2 g with
  | H.Found c -> check_bool "2-cycle" true (C.is_cycle g c)
  | _ -> Alcotest.fail "expected 2-cycle"

let test_avoid_nodes () =
  (* complete digraph on 4 nodes; avoid node 3 -> HC on {0,1,2} *)
  let g =
    D.of_successors 4 (fun v -> List.filter (fun w -> w <> v) [ 0; 1; 2; 3 ])
  in
  match H.hamiltonian ~avoid_nodes:(fun v -> v = 3) g with
  | H.Found c ->
      check_int "3 nodes" 3 (Array.length c);
      check_bool "avoids" true (C.avoids_nodes c (fun v -> v = 3));
      check_bool "cycle" true (C.is_cycle g c)
  | _ -> Alcotest.fail "expected HC on the sub-complete graph"

let test_avoid_edges () =
  (* a 4-ring with a chord: avoiding a ring edge forces using the chord
     path, which breaks Hamiltonicity *)
  let g = D.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  check_bool "with all edges" true
    (match H.hamiltonian g with H.Found _ -> true | _ -> false);
  check_bool "avoiding (1,2) kills it" true
    (H.hamiltonian ~avoid_edges:(fun e -> e = (1, 2)) g = H.Not_found)

let test_budget () =
  (* a tiny budget must report Exhausted, not a wrong answer *)
  let p = W.params ~d:2 ~n:4 in
  let g = Debruijn.Graph.b p in
  check_bool "exhausted" true (H.hamiltonian ~budget:5 g = H.Exhausted)

let test_de_bruijn_hamiltonian () =
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      match H.hamiltonian g with
      | H.Found c -> check_bool "valid HC" true (C.is_hamiltonian g c)
      | _ -> Alcotest.fail (Printf.sprintf "B(%d,%d) should have an HC" d n))
    [ (2, 3); (2, 4); (3, 2); (3, 3); (4, 2) ]

let test_exact_lengths () =
  (* B(2,4) is pancyclic: every length from 1 to 16. *)
  let p = W.params ~d:2 ~n:4 in
  let g = Debruijn.Graph.b p in
  for t = 1 to 16 do
    match H.cycle ~length:t g with
    | H.Found c ->
        check_int "exact length" t (Array.length c);
        check_bool "valid" true (C.is_cycle g c)
    | _ -> Alcotest.fail (Printf.sprintf "no %d-cycle in B(2,4)" t)
  done

let complete_digraph n =
  D.of_successors n (fun v -> List.filter (fun w -> w <> v) (List.init n Fun.id))

let test_tillson () =
  (* Tillson's theorem: the complete digraph K*_n decomposes into n−1
     Hamiltonian cycles iff n ∉ {4, 6}.  The searcher must prove the
     n = 4 exception exhaustively and construct the n = 3, 5
     decompositions. *)
  (match H.disjoint_hamiltonian_cycles ~k:3 (complete_digraph 4) with
  | None, false -> ()  (* conclusive NO *)
  | None, true -> Alcotest.fail "K*_4 search should not exhaust"
  | Some _, _ -> Alcotest.fail "K*_4 does not decompose (Tillson)");
  (match H.disjoint_hamiltonian_cycles ~k:2 (complete_digraph 3) with
  | Some cs, _ ->
      check_int "2 cycles" 2 (List.length cs);
      check_bool "disjoint" true (C.pairwise_edge_disjoint cs)
  | None, _ -> Alcotest.fail "K*_3 decomposes");
  match H.disjoint_hamiltonian_cycles ~budget:5_000_000 ~k:4 (complete_digraph 5) with
  | Some cs, _ ->
      check_int "4 cycles" 4 (List.length cs);
      check_bool "disjoint" true (C.pairwise_edge_disjoint cs);
      check_bool "all hamiltonian" true
        (List.for_all (fun c -> C.is_hamiltonian (complete_digraph 5) c) cs)
  | None, _ -> Alcotest.fail "K*_5 decomposes (Tillson)"

let test_disjoint_impossible () =
  (* a directed 4-ring has exactly one HC, so k=2 is impossible —
     and conclusively so (exhausted must be false) *)
  match H.disjoint_hamiltonian_cycles ~k:2 (ring 4) with
  | None, false -> ()
  | None, true -> Alcotest.fail "should not exhaust on a 4-ring"
  | Some _, _ -> Alcotest.fail "4-ring cannot have 2 disjoint HCs"

let test_disjoint_matches_construction () =
  (* the searcher should find at least psi(d) disjoint HCs wherever the
     Chapter 3 construction does *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let k = Dhc.Psi.psi d in
      match H.disjoint_hamiltonian_cycles ~budget:5_000_000 ~k g with
      | Some cs, _ ->
          check_int "k cycles" k (List.length cs);
          check_bool "disjoint" true (C.pairwise_edge_disjoint cs)
      | None, _ -> Alcotest.fail (Printf.sprintf "searcher lost to construction on B(%d,%d)" d n))
    [ (2, 3); (3, 2); (4, 2); (5, 2) ]

let test_open_q2_witnesses () =
  (* the Chapter 5 empirical wins: B(3,2) and B(3,3) admit d−1 = 2
     disjoint HCs even though psi(3) = 1 *)
  List.iter
    (fun (d, n, budget) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      match H.disjoint_hamiltonian_cycles ~budget ~k:2 g with
      | Some cs, _ ->
          check_bool "verified" true
            (C.pairwise_edge_disjoint cs && List.for_all (fun c -> C.is_hamiltonian g c) cs)
      | None, _ -> Alcotest.fail "expected 2 disjoint HCs")
    [ (3, 2, 1_000_000); (3, 3, 5_000_000) ]

let test_best_theorem_counts () =
  (* BEST-theorem corollary: B(d,n) has exactly (d!)^(d^{n−1}) / dⁿ
     Hamiltonian cycles (i.e. De Bruijn sequences, up to rotation). *)
  let factorial k = List.fold_left ( * ) 1 (List.init k (fun i -> i + 1)) in
  List.iter
    (fun (d, n, budget) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let expected =
        Numtheory.pow (factorial d) (Numtheory.pow d (n - 1)) / p.W.size
      in
      match H.count_cycles ~budget g with
      | Some got -> check_int (Printf.sprintf "B(%d,%d)" d n) expected got
      | None -> Alcotest.fail "count should complete within budget")
    [ (2, 3, 100_000); (2, 4, 500_000); (2, 5, 5_000_000); (3, 2, 100_000);
      (4, 2, 10_000_000) ]

let test_count_zero_and_budget () =
  check_bool "path has no cycles" true (H.count_cycles (D.of_edges 3 [ (0, 1); (1, 2) ]) = Some 0);
  check_bool "4-ring has one HC" true (H.count_cycles (ring 4) = Some 1);
  check_bool "tiny budget gives None" true
    (H.count_cycles ~budget:3 (Debruijn.Graph.b (W.params ~d:2 ~n:4)) = None)

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"found cycles are always valid" ~count:100
      (pair (oneofl [ (2, 3); (2, 4); (3, 2); (3, 3) ]) (int_range 1 30))
      (fun ((d, n), t) ->
        let p = W.params ~d ~n in
        let g = Debruijn.Graph.b p in
        match H.cycle ~budget:500_000 ~length:t g with
        | H.Found c -> Array.length c = t && C.is_cycle g c
        | H.Not_found -> t > p.W.size
        | H.Exhausted -> true);
    Test.make ~name:"avoid constraints are honored" ~count:80
      (pair (oneofl [ (2, 4); (3, 3) ]) (int_range 0 100))
      (fun ((d, n), seed) ->
        let p = W.params ~d ~n in
        let g = Debruijn.Graph.b p in
        let bad_node = seed mod p.W.size in
        match H.hamiltonian ~budget:500_000 ~avoid_nodes:(fun v -> v = bad_node) g with
        | H.Found c -> C.avoids_nodes c (fun v -> v = bad_node)
        | _ -> true);
  ]

let () =
  Alcotest.run "hamsearch"
    [
      ( "cycle",
        [
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "path" `Quick test_path_has_no_cycle;
          Alcotest.test_case "loop and 2-cycle" `Quick test_loop;
          Alcotest.test_case "avoid nodes" `Quick test_avoid_nodes;
          Alcotest.test_case "avoid edges" `Quick test_avoid_edges;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "De Bruijn HCs" `Quick test_de_bruijn_hamiltonian;
          Alcotest.test_case "pancyclic lengths" `Quick test_exact_lengths;
          Alcotest.test_case "BEST theorem counts" `Quick test_best_theorem_counts;
          Alcotest.test_case "count edge cases" `Quick test_count_zero_and_budget;
        ] );
      ( "disjoint",
        [
          Alcotest.test_case "Tillson theorem (K*_3,4,5)" `Quick test_tillson;
          Alcotest.test_case "impossible is conclusive" `Quick test_disjoint_impossible;
          Alcotest.test_case "matches the construction" `Quick test_disjoint_matches_construction;
          Alcotest.test_case "open question 2 witnesses" `Quick test_open_q2_witnesses;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
