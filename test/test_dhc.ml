(* Tests for Chapter 3: disjoint Hamiltonian cycles and edge faults. *)

module G = Galois.Gf
module GP = Galois.Gf_poly
module W = Debruijn.Word
module S = Debruijn.Sequence
module C = Graphlib.Cycle
module L = Dhc.Lfsr
module SC = Dhc.Shift_cycles
module St = Dhc.Strategies
module Co = Dhc.Compose
module P = Dhc.Psi
module EF = Dhc.Edge_fault
module M = Dhc.Mdb
module Str = Dhc.Stream
module R = Dhc.Reference
module Ca = Dhc.Campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The thesis's Example 3.1 setup: GF(5), p(x) = x² − x − 3. *)
let gf5 = G.create 5
let example_3_1_poly = GP.of_coeffs gf5 [ G.of_int gf5 (-3); G.of_int gf5 (-1); 1 ]

(* ------------------------------------------------------------------ *)
(* Lfsr *)

let test_example_3_1_sequence () =
  let lfsr = L.of_poly gf5 example_3_1_poly in
  let c = L.maximal_cycle ~init:[| 0; 1 |] lfsr in
  Alcotest.(check (array int)) "the thesis's maximal cycle in B(5,2)"
    [| 0; 1; 1; 4; 2; 4; 0; 2; 2; 3; 4; 3; 0; 4; 4; 1; 3; 1; 0; 3; 3; 2; 1; 2 |]
    c;
  check_bool "satisfies recurrence" true (L.satisfies_recurrence lfsr c)

let test_lfsr_rejects_non_primitive () =
  (* x² + 1 over GF(5) is not primitive. *)
  let bad = GP.of_coeffs gf5 [ 1; 0; 1 ] in
  Alcotest.check_raises "non-primitive rejected"
    (Invalid_argument "Lfsr.of_poly: polynomial is not primitive") (fun () ->
      ignore (L.of_poly gf5 bad))

let test_maximal_cycle_properties () =
  (* A maximal cycle visits every node except 0ⁿ, over several fields. *)
  List.iter
    (fun (d, n) ->
      let field = G.create d in
      let lfsr = L.make field ~n in
      let c = L.maximal_cycle lfsr in
      let p = W.params ~d ~n in
      check_int "period" (p.W.size - 1) (Array.length c);
      check_bool "is a cycle" true (S.is_cycle_sequence p c);
      let nodes = S.nodes_of_sequence p c in
      check_bool "omits 0^n only" true
        (not (Array.exists (fun v -> v = 0) nodes)
        && Array.length nodes = p.W.size - 1))
    [ (2, 3); (2, 5); (3, 2); (3, 3); (4, 2); (5, 2); (7, 2); (8, 2); (9, 2) ]

let test_lfsr_bad_init () =
  let lfsr = L.of_poly gf5 example_3_1_poly in
  Alcotest.check_raises "zero init rejected"
    (Invalid_argument "Lfsr.maximal_cycle: init must be nonzero") (fun () ->
      ignore (L.maximal_cycle ~init:[| 0; 0 |] lfsr));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Lfsr.maximal_cycle: init length") (fun () ->
      ignore (L.maximal_cycle ~init:[| 1 |] lfsr))

(* ------------------------------------------------------------------ *)
(* Shift_cycles: Lemmas 3.1–3.3 *)

let test_shifted_are_cycles () =
  List.iter
    (fun (d, n) ->
      let t = SC.make ~d ~n in
      let p = t.SC.p in
      List.iter
        (fun s ->
          let c = SC.shifted t s in
          check_bool "Lemma 3.1: s+C is a cycle" true (S.is_cycle_sequence p c);
          (* Lemma 3.2: affine recurrence with constant s(1 − ω). *)
          let f = t.SC.lfsr.L.field in
          let affine = G.mul f s (G.sub f 1 t.SC.lfsr.L.omega) in
          check_bool "Lemma 3.2: affine recurrence" true
            (L.satisfies_recurrence t.SC.lfsr ~affine c);
          (* s + C omits exactly sⁿ. *)
          let nodes = S.nodes_of_sequence p c in
          check_bool "omits s^n" true
            (not (Array.exists (fun v -> v = W.constant p s) nodes)))
        (List.init d Fun.id))
    [ (2, 4); (3, 3); (4, 2); (5, 2); (7, 2) ]

let test_shifted_edge_disjoint_partition () =
  (* Lemma 3.3 + the partition claim: the d cycles are pairwise
     edge-disjoint and cover all d(dⁿ−1) non-loop edges. *)
  List.iter
    (fun (d, n) ->
      let t = SC.make ~d ~n in
      let p = t.SC.p in
      let all_windows =
        List.concat_map
          (fun s -> S.edge_windows p (SC.shifted t s))
          (List.init d Fun.id)
      in
      let distinct = List.sort_uniq compare all_windows in
      check_int "pairwise disjoint (no duplicate edge)" (List.length all_windows)
        (List.length distinct);
      check_int "covers all non-loop edges" (d * (p.W.size - 1)) (List.length distinct))
    [ (2, 4); (3, 3); (4, 2); (5, 2); (8, 2); (9, 2) ]

let test_owner_of_edge () =
  List.iter
    (fun (d, n) ->
      let t = SC.make ~d ~n in
      let p = t.SC.p in
      List.iter
        (fun s ->
          let cyc = S.cycle_of_sequence p (SC.shifted t s) in
          List.iter
            (fun e -> check_int "owner" s (SC.owner_of_edge t e))
            (C.edges_of_cycle cyc))
        (List.init d Fun.id))
    [ (3, 3); (4, 2); (5, 2) ]

let test_alpha_equations () =
  (* Eq. 3.3 consistency: α̂ = a₀α + s(1 − a₀), and the k ↔ α̂ relation. *)
  List.iter
    (fun d ->
      let t = SC.make ~d ~n:2 in
      let f = t.SC.lfsr.L.field in
      let a0 = t.SC.lfsr.L.coeffs.(0) in
      List.iter
        (fun s ->
          List.iter
            (fun k ->
              if k <> s then begin
                let a_hat = SC.alpha_hat t ~s ~k in
                let a = SC.alpha_for t ~s ~alpha_hat:a_hat in
                (* forward check of Eq. 3.3 *)
                let rhs = G.add f (G.mul f a0 a) (G.mul f s (G.sub f 1 a0)) in
                check_int "Eq 3.3" a_hat rhs;
                check_bool "alpha <> s" true (a <> s)
              end)
            (G.elements f))
        (G.elements f))
    [ 3; 4; 5; 7; 9 ]

let test_hamiltonize () =
  List.iter
    (fun (d, n) ->
      let t = SC.make ~d ~n in
      let p = t.SC.p in
      let g = Debruijn.Graph.b p in
      List.iter
        (fun s ->
          List.iter
            (fun k ->
              if k <> s then begin
                let h = SC.hamiltonize t ~s ~k in
                check_bool "H_s is a De Bruijn sequence" true (S.is_de_bruijn_sequence p h);
                check_bool "Hamiltonian" true
                  (C.is_hamiltonian g (S.cycle_of_sequence p h))
              end)
            (List.init d Fun.id))
        (List.init d Fun.id))
    [ (2, 3); (3, 2); (4, 2); (5, 2); (3, 3) ]

let test_hamiltonize_new_edges_location () =
  (* The two new edges of H_s live in k + C and (2s − k) + C. *)
  let t = SC.make ~d:5 ~n:2 in
  let f = t.SC.lfsr.L.field in
  let p = t.SC.p in
  List.iter
    (fun s ->
      List.iter
        (fun k ->
          if k <> s then begin
            let a_hat = SC.alpha_hat t ~s ~k in
            let a = SC.alpha_for t ~s ~alpha_hat:a_hat in
            let sn = W.constant p s in
            let exit_node = W.encode p [| a; s |] in
            let entry_node = W.encode p [| s; a_hat |] in
            check_int "s^n alpha_hat in k+C" k (SC.owner_of_edge t (sn, entry_node));
            check_int "alpha s^n in (2s-k)+C"
              (G.sub f (G.add f s s) k)
              (SC.owner_of_edge t (exit_node, sn))
          end)
        (G.elements f))
    (G.elements f)

let test_hamiltonize_k_eq_s () =
  let t = SC.make ~d:3 ~n:2 in
  Alcotest.check_raises "k = s rejected"
    (Invalid_argument "Shift_cycles.hamiltonize: k must differ from s") (fun () ->
      ignore (SC.hamiltonize t ~s:1 ~k:1))

(* ------------------------------------------------------------------ *)
(* Strategies and the thesis's Example 3.4 *)

let test_example_3_4 () =
  (* d = 5, n = 2 with the thesis's polynomial: λ = 2 (2 = λ¹, odd), so
     f(x) = 2x; selected shifts {1, 4}; H₁ and H₄ as printed. *)
  let t = SC.make_with_poly ~d:5 ~n:2 example_3_1_poly in
  let choice = St.choose ~p:5 in
  (match choice with
  | St.S3 { lambda; a } ->
      check_int "2 = lambda^a odd" 2 (Numtheory.pow_mod lambda a 5);
      check_int "a odd" 1 (a mod 2)
  | _ -> Alcotest.fail "expected S3 for p = 5");
  let f = St.replacement_function t choice in
  let shifts = St.selected_shifts gf5 choice in
  Alcotest.(check (list int)) "shifts {1,4}" [ 1; 4 ] shifts;
  let h1 = SC.hamiltonize t ~s:1 ~k:(f 1) in
  let h4 = SC.hamiltonize t ~s:4 ~k:(f 4) in
  check_bool "H1 matches thesis" true
    (S.equal_cyclically h1
       [| 1; 2; 2; 0; 3; 0; 1; 1; 3; 3; 4; 0; 4; 1; 0; 0; 2; 4; 2; 1; 4; 4; 3; 2; 3 |]);
  check_bool "H4 matches thesis" true
    (S.equal_cyclically h4
       [| 4; 0; 0; 3; 1; 3; 4; 1; 1; 2; 3; 2; 4; 3; 3; 0; 2; 0; 4; 4; 2; 2; 1; 0; 1 |]);
  check_bool "disjoint" true (S.edge_disjoint (W.params ~d:5 ~n:2) h1 h4)

let test_strategy_choices () =
  check_bool "p=2 uses S1" true (St.choose ~p:2 = St.S1);
  (* p = 13: thesis shows both conditions hold; (13−1)/2 = 6 even, so S2
     must be chosen (it admits H₀). *)
  (match St.choose ~p:13 with
  | St.S2 { lambda; a; b } ->
      check_int "2 = l^a + l^b" 2
        ((Numtheory.pow_mod lambda a 13 + Numtheory.pow_mod lambda b 13) mod 13);
      check_int "a odd" 1 (a mod 2);
      check_int "b odd" 1 (b mod 2)
  | _ -> Alcotest.fail "expected S2 for p = 13");
  (* p = 5: only condition (a) per the thesis. *)
  check_bool "p=5 condition (b) fails" false (St.condition_b_holds ~p:5);
  check_bool "p=13 condition (b) holds" true (St.condition_b_holds ~p:13);
  (* p ≡ ±1 (mod 8) implies condition (b) (2 is a QR). *)
  List.iter
    (fun p ->
      if p mod 8 = 1 || p mod 8 = 7 then
        check_bool (Printf.sprintf "p=%d" p) true (St.condition_b_holds ~p))
    [ 7; 17; 23; 31 ]

let test_replacement_function_fixed_point_free () =
  List.iter
    (fun d ->
      let t = SC.make ~d ~n:2 in
      let field = t.SC.lfsr.L.field in
      let p = match Numtheory.is_prime_power d with Some (p, _) -> p | None -> assert false in
      let f = St.replacement_function t (St.choose ~p) in
      List.iter
        (fun x -> check_bool "f(x) <> x" true (f x <> x))
        (G.elements field))
    [ 2; 3; 4; 5; 7; 8; 9; 11; 13; 16; 25; 27 ]

let test_disjoint_hcs_prime_powers () =
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let hcs = St.disjoint_hamiltonian_cycles ~d ~n in
      check_int "count = psi" (P.psi d) (List.length hcs);
      let cycles = List.map (S.cycle_of_sequence p) hcs in
      List.iter
        (fun c -> check_bool "hamiltonian" true (C.is_hamiltonian g c))
        cycles;
      check_bool "pairwise disjoint" true (C.pairwise_edge_disjoint cycles))
    [ (2, 4); (3, 3); (4, 2); (4, 3); (5, 2); (7, 2); (8, 2); (9, 2); (11, 2); (13, 2) ]

(* ------------------------------------------------------------------ *)
(* Compose: Example 3.5 and the general construction *)

let test_example_3_5 () =
  let a = [| 0; 0; 1; 1 |] and b = [| 0; 0; 2; 2; 1; 2; 0; 1; 1 |] in
  let ab = Co.product ~s:2 ~t:3 a b in
  Alcotest.(check (array int)) "the thesis's (A,B) in B(6,2)"
    [| 0;0;5;5;1;2;3;4;1;0;3;5;2;1;5;3;1;1;3;3;2;2;4;5;0;1;4;3;0;2;5;4;2;0;4;4 |]
    ab;
  check_bool "is a Hamiltonian cycle of B(6,2)" true
    (S.is_de_bruijn_sequence (W.params ~d:6 ~n:2) ab)

let test_product_errors () =
  Alcotest.check_raises "not coprime"
    (Invalid_argument "Compose.product: s and t must be coprime") (fun () ->
      ignore (Co.product ~s:2 ~t:4 [| 0; 0; 1; 1 |] [| 0 |]));
  Alcotest.check_raises "bad lengths"
    (Invalid_argument "Compose.product: lengths are not s^n and t^n for a common n")
    (fun () -> ignore (Co.product ~s:2 ~t:3 [| 0; 0; 1; 1 |] [| 0; 1; 2 |]))

let test_disjoint_hcs_composite () =
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let hcs = Co.disjoint_hamiltonian_cycles ~d ~n in
      check_int "count = psi" (P.psi d) (List.length hcs);
      let cycles = List.map (S.cycle_of_sequence p) hcs in
      List.iter (fun c -> check_bool "hamiltonian" true (C.is_hamiltonian g c)) cycles;
      check_bool "pairwise disjoint" true (C.pairwise_edge_disjoint cycles))
    [ (6, 2); (10, 2); (12, 2); (15, 2); (6, 3); (20, 2) ]

(* ------------------------------------------------------------------ *)
(* Psi: Tables 3.1 / 3.2 *)

let test_table_3_1 () =
  let expected =
    [ (2, 1); (3, 1); (4, 3); (5, 2); (6, 1); (7, 3); (8, 7); (9, 4); (10, 2);
      (11, 5); (12, 3); (13, 7); (14, 3); (15, 2); (16, 15); (17, 9); (18, 4);
      (19, 9); (20, 6); (21, 3); (22, 5); (23, 11); (24, 7); (25, 12); (26, 7);
      (27, 13); (28, 9); (29, 15); (30, 2); (31, 15); (32, 31); (33, 5);
      (34, 9); (35, 6); (36, 12); (37, 19); (38, 9) ]
  in
  List.iter
    (fun (d, want) -> check_int (Printf.sprintf "psi(%d)" d) want (P.psi d))
    expected

let test_phi_bound () =
  (* φ(pᵉ) = pᵉ − 2; sanity values for composites. *)
  List.iter
    (fun (d, want) -> check_int (Printf.sprintf "phi(%d)" d) want (P.phi_bound d))
    [ (2, 0); (3, 1); (4, 2); (5, 3); (6, 1); (7, 5); (8, 6); (9, 7); (10, 3);
      (12, 3); (15, 4); (30, 4); (36, 9) ]

let test_table_3_2 () =
  (* MAX(ψ−1, φ): spot checks plus the thesis's remark that d = 28 is
     the sole value ≤ 35 where ψ(d)−1 beats φ(d). *)
  check_int "d=28" 8 (P.max_tolerance 28);
  check_bool "28 is psi-dominated" true (P.psi 28 - 1 > P.phi_bound 28);
  for d = 2 to 35 do
    if d <> 28 then
      check_int
        (Printf.sprintf "phi dominates at d=%d" d)
        (P.phi_bound d) (P.max_tolerance d)
  done;
  (* Prime powers attain the absolute optimum d − 2. *)
  List.iter
    (fun d -> check_int (Printf.sprintf "optimal at prime power %d" d) (d - 2) (P.max_tolerance d))
    [ 3; 4; 5; 7; 8; 9; 11; 13; 16; 25; 27; 32 ]

let test_phi_full_table () =
  (* φ(d) = Σpᵢᵉⁱ − 2k for every d ≤ 32, worked by hand from the
     factorization (the Table 3.2 column). *)
  List.iter
    (fun (d, want) ->
      check_int (Printf.sprintf "phi(%d)" d) want (P.phi_bound d);
      let b = P.bounds d in
      check_int "bounds.phi" want b.P.phi;
      check_int "bounds.psi" (P.psi d) b.P.psi;
      check_int "bounds.max_" (P.max_tolerance d) b.P.max_)
    [ (2, 0); (3, 1); (4, 2); (5, 3); (6, 1); (7, 5); (8, 6); (9, 7); (10, 3);
      (11, 9); (12, 3); (13, 11); (14, 5); (15, 4); (16, 14); (17, 15); (18, 7);
      (19, 17); (20, 5); (21, 6); (22, 9); (23, 21); (24, 7); (25, 23); (26, 11);
      (27, 25); (28, 7); (29, 27); (30, 4); (31, 29); (32, 30) ]

let test_max_full_table () =
  (* MAX(ψ(d)−1, φ(d)) for every d ≤ 32: equals φ everywhere except
     d = 28 where ψ − 1 = 8 wins (the thesis's remark). *)
  List.iter
    (fun (d, want) -> check_int (Printf.sprintf "MAX(%d)" d) want (P.max_tolerance d))
    [ (2, 0); (3, 1); (4, 2); (5, 3); (6, 1); (7, 5); (8, 6); (9, 7); (10, 3);
      (11, 9); (12, 3); (13, 11); (14, 5); (15, 4); (16, 14); (17, 15); (18, 7);
      (19, 17); (20, 5); (21, 6); (22, 9); (23, 21); (24, 7); (25, 23); (26, 11);
      (27, 25); (28, 8); (29, 27); (30, 4); (31, 29); (32, 30) ]

let test_corollary_3_1 () =
  for d = 2 to 40 do
    check_bool
      (Printf.sprintf "psi(%d) >= corollary bound" d)
      true
      (P.psi d >= P.psi_lower_bound_corollary d)
  done

(* ------------------------------------------------------------------ *)
(* Edge faults: Proposition 3.3 / 3.4 *)

let random_nonloop_edges rng p f =
  let rec grow acc =
    if List.length acc >= f then acc
    else begin
      let u = Util.Rng.int rng p.W.size in
      let a = Util.Rng.int rng p.W.d in
      let v = W.snoc p (W.suffix p u) a in
      if u <> v && not (List.mem (u, v) acc) then grow ((u, v) :: acc) else grow acc
    end
  in
  grow []

let test_prop_3_3_random () =
  let rng = Util.Rng.create 5 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let phi = P.phi_bound d in
      for _ = 1 to 30 do
        let f = 1 + Util.Rng.int rng (max 1 phi) in
        let f = min f phi in
        if f >= 1 then begin
          let faults = random_nonloop_edges rng p f in
          match EF.hc_avoiding ~d ~n ~faults with
          | None -> Alcotest.fail (Printf.sprintf "no HC found d=%d n=%d f=%d" d n f)
          | Some hc ->
              let cyc = S.cycle_of_sequence p hc in
              check_bool "hamiltonian" true (C.is_hamiltonian g cyc);
              check_bool "avoids faults" true
                (C.avoids_edges cyc (fun e -> List.mem e faults))
        end
      done)
    [ (3, 3); (4, 2); (4, 3); (5, 2); (6, 2); (8, 2); (9, 2); (10, 2); (12, 2); (15, 2) ]

let test_prop_3_3_worst_case_pack () =
  (* d−2 of the d−1 non-loop edges into 0ⁿ fail: the construction must
     still find an HC (optimal for prime powers). *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let faults = EF.worst_case_edge_faults ~d ~n (d - 2) in
      match EF.hc_avoiding ~d ~n ~faults with
      | None -> Alcotest.fail "should tolerate d-2 targeted faults"
      | Some hc ->
          let cyc = S.cycle_of_sequence p hc in
          check_bool "valid" true
            (C.is_hamiltonian g cyc && C.avoids_edges cyc (fun e -> List.mem e faults)))
    [ (3, 3); (4, 2); (5, 2); (7, 2); (8, 2); (9, 2) ]

let test_d_minus_1_faults_impossible () =
  (* Removing all d−1 non-loop edges into 0ⁿ leaves only the loop, so no
     HC can exist; the construction must return None. *)
  List.iter
    (fun (d, n) ->
      let faults = EF.worst_case_edge_faults ~d ~n (d - 1) in
      check_bool "no HC possible" true (EF.hc_avoiding ~d ~n ~faults = None);
      check_bool "disjoint route also fails" true
        (EF.hc_avoiding_via_disjoint ~d ~n ~faults = None))
    [ (3, 2); (4, 2); (5, 2) ]

let test_prop_3_4_psi_route () =
  (* d = 28 would be the ψ showcase but is too big to enumerate here;
     use d = 4 (ψ−1 = 2 = φ) and check the disjoint-HC route tolerates
     ψ−1 arbitrary faults. *)
  let rng = Util.Rng.create 17 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let g = Debruijn.Graph.b p in
      let f = P.psi d - 1 in
      if f >= 1 then
        for _ = 1 to 20 do
          let faults = random_nonloop_edges rng p f in
          match EF.best_hc_avoiding ~d ~n ~faults with
          | None -> Alcotest.fail "psi route failed"
          | Some hc ->
              let cyc = S.cycle_of_sequence p hc in
              check_bool "valid" true
                (C.is_hamiltonian g cyc && C.avoids_edges cyc (fun e -> List.mem e faults))
        done)
    [ (4, 2); (5, 2); (8, 2); (9, 2) ]

let test_via_node_masking () =
  (* The Chapter 3 strawman: masking endpoints always yields a valid
     (non-Hamiltonian) ring, strictly shorter than the Prop 3.3 HC. *)
  let d = 5 and n = 3 in
  let p = W.params ~d ~n in
  let g = Debruijn.Graph.b p in
  let rng = Util.Rng.create 41 in
  for _ = 1 to 10 do
    let faults = random_nonloop_edges rng p 3 in
    (match EF.via_node_masking ~d ~n ~faults with
    | None -> Alcotest.fail "masking should leave survivors"
    | Some ring ->
        check_bool "valid cycle" true (C.is_cycle g ring);
        check_bool "avoids fault endpoints" true
          (C.avoids_nodes ring (fun v ->
               List.exists (fun (a, b) -> v = a || v = b) faults));
        check_bool "strictly shorter than Hamiltonian" true
          (Array.length ring < p.W.size));
    match EF.hc_avoiding ~d ~n ~faults with
    | Some hc -> check_int "construction keeps everyone" p.W.size (Array.length hc)
    | None -> Alcotest.fail "construction should succeed at f = 3 <= phi(5)"
  done

let test_fault_validation () =
  Alcotest.check_raises "non-edge rejected"
    (Invalid_argument "Edge_fault: fault is not a De Bruijn edge") (fun () ->
      ignore (EF.hc_avoiding ~d:3 ~n:2 ~faults:[ (0, 8) ]))

(* ------------------------------------------------------------------ *)
(* Streams: the O(n)-memory engine *)

let test_edge_codes () =
  let p = W.params ~d:3 ~n:3 in
  for c = 0 to (p.W.size * p.W.d) - 1 do
    let u, v = W.edge_of_code p c in
    check_int "roundtrip" c (W.edge_code p u v)
  done;
  Alcotest.check_raises "non-edge rejected"
    (Invalid_argument "Word.edge_code: not a De Bruijn edge") (fun () ->
      ignore (W.edge_code p 0 (p.W.size - 1)))

let test_stream_matches_materialized () =
  List.iter
    (fun (d, n) ->
      let t = SC.make ~d ~n in
      let p = t.SC.p in
      List.iter
        (fun s ->
          Alcotest.(check (array int)) "s+C node order"
            (S.nodes_of_sequence p (SC.shifted t s))
            (Str.to_nodes (Str.of_shift t s));
          List.iter
            (fun k ->
              if k <> s then begin
                let st = Str.hamiltonize t ~s ~k in
                Alcotest.(check (array int)) "H_s digits" (SC.hamiltonize t ~s ~k)
                  (Str.to_sequence st);
                check_bool "stream is Hamiltonian (O(1)-memory walk)" true
                  (Str.is_hamiltonian st);
                check_bool "de Bruijn walk" true (Str.is_de_bruijn_walk st)
              end)
            (List.init d Fun.id))
        (List.init d Fun.id))
    [ (2, 4); (3, 2); (3, 3); (5, 2); (8, 2); (9, 2) ]

let test_disjoint_streams_match_and_disjoint () =
  List.iter
    (fun (d, n) ->
      let cycles = Co.disjoint_hamiltonian_cycles ~d ~n in
      let streams = Co.disjoint_hamiltonian_streams ~d ~n in
      check_int "count = psi" (P.psi d) (List.length streams);
      List.iter2
        (fun c st -> Alcotest.(check (array int)) "same digits" c (Str.to_sequence st))
        cycles streams;
      (* Pairwise disjointness established by walk + successor probe,
         never materializing an edge set. *)
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b -> check_bool "edge disjoint" true (Str.edge_disjoint a b))
              rest;
            pairs rest
      in
      pairs streams)
    [ (2, 6); (4, 2); (6, 2); (9, 2); (12, 2) ]

let test_disjoint_streams_upto () =
  (* Every prefix size k in [1, ψ(d)] yields exactly k pairwise
     edge-disjoint Hamiltonian streams; k outside that range fails
     cleanly. *)
  List.iter
    (fun (d, n) ->
      let psi = P.psi d in
      for k = 1 to psi do
        let sts = Co.disjoint_streams_upto ~d ~n ~k in
        check_int "count = k" k (List.length sts);
        List.iter
          (fun st -> check_bool "hamiltonian" true (Str.is_hamiltonian st))
          sts;
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b -> check_bool "edge disjoint" true (Str.edge_disjoint a b))
                rest;
              pairs rest
        in
        pairs sts
      done;
      Alcotest.check_raises "k = 0 rejected"
        (Invalid_argument
           (Printf.sprintf
              "Compose.disjoint_streams_upto: k = 0 outside [1, psi(%d) = %d]" d
              psi)) (fun () -> ignore (Co.disjoint_streams_upto ~d ~n ~k:0));
      Alcotest.check_raises "k = psi + 1 rejected"
        (Invalid_argument
           (Printf.sprintf
              "Compose.disjoint_streams_upto: k = %d outside [1, psi(%d) = %d]"
              (psi + 1) d psi)) (fun () ->
          ignore (Co.disjoint_streams_upto ~d ~n ~k:(psi + 1))))
    [ (2, 5); (4, 2); (4, 3); (9, 2) ]

let test_surviving_disjoint_streams () =
  (* Faulting j distinct rings' edges kills exactly those j rings: the
     survivors avoid the fault set and keep their pairwise
     disjointness. *)
  let d = 4 and n = 3 in
  let psi = P.psi d in
  let all = Co.disjoint_hamiltonian_streams ~d ~n in
  check_int "no faults: all survive" psi
    (List.length (EF.surviving_disjoint_streams ~d ~n ~faults:[]));
  let edge_of st =
    let u = st.Str.start in
    (u, st.Str.succ u)
  in
  List.iteri
    (fun j _ ->
      let faults = List.map edge_of (List.filteri (fun i _ -> i <= j) all) in
      let survivors = EF.surviving_disjoint_streams ~d ~n ~faults in
      check_int "one ring killed per faulted ring"
        (psi - j - 1)
        (List.length survivors);
      List.iter
        (fun st ->
          check_bool "survivor avoids all faults" true
            (List.for_all (fun (u, v) -> not (Str.contains_edge st u v)) faults))
        survivors)
    all

let test_large_fault_set () =
  (* Fault every edge of the shifted cycle 1 + C of B(4,6): 4095 faults,
     vastly beyond φ(4) = 2, yet all owned by s = 1 — the construction
     must route around them via another shift.  With the old O(f) list
     scans this is quadratic; with the bitset probe it is instant. *)
  let d = 4 and n = 6 in
  let t = SC.make ~d ~n in
  let p = t.SC.p in
  let faults = C.edges_of_cycle (S.cycle_of_sequence p (SC.shifted t 1)) in
  check_int "4^6 - 1 faults" (p.W.size - 1) (List.length faults);
  (match EF.hc_avoiding_stream ~d ~n ~faults with
  | None -> Alcotest.fail "should survive a fully-faulted shifted cycle"
  | Some st ->
      check_bool "hamiltonian" true (Str.is_hamiltonian st);
      let fs = EF.Faults.make p faults in
      check_bool "avoids all 4095 faults" true (Str.avoids st (EF.Faults.mem fs)));
  (* The probe structure agrees with the naive list scan. *)
  let fs = EF.Faults.make p faults in
  check_int "count" (p.W.size - 1) (EF.Faults.count fs);
  let rng = Util.Rng.create 7 in
  for _ = 1 to 1000 do
    let u, v = W.edge_of_code p (Util.Rng.int rng (p.W.size * p.W.d)) in
    check_bool "probe = list scan" (List.mem (u, v) faults) (EF.Faults.mem fs u v)
  done

let test_faults_hashtable_regime () =
  (* B(2,28): 2^29 edge codes exceed the bitset cap, so Faults falls
     back to a hashtable — membership must be unaffected. *)
  let p = W.params ~d:2 ~n:28 in
  let faults = List.map (W.edge_of_code p) [ 0; 12345; 400_000_000 ] in
  let fs = EF.Faults.make p faults in
  List.iter (fun (u, v) -> check_bool "present" true (EF.Faults.mem fs u v)) faults;
  let u, v = W.edge_of_code p 999_999 in
  check_bool "absent" false (EF.Faults.mem fs u v)

let test_mdb_streams () =
  let t = M.build ~d:5 ~n:2 in
  List.iter2
    (fun c st ->
      Alcotest.(check (array int)) "nodes" c (Str.to_nodes st);
      check_bool "cycle" true (Str.is_cycle st))
    t.M.cycles (M.stream_cycles t)

(* ------------------------------------------------------------------ *)
(* Campaign *)

let test_campaign_guarantee () =
  (* Below MAX(ψ−1, φ) every trial must produce a full Hamiltonian
     ring (Propositions 3.3/3.4). *)
  List.iter
    (fun d ->
      let mt = P.max_tolerance d in
      let pts = Ca.run ~trials:8 ~fmax:mt ~d ~n:2 () in
      check_int "points" (mt + 1) (List.length pts);
      let size = (W.params ~d ~n:2).W.size in
      List.iter
        (fun (pt : Ca.point) ->
          check_int (Printf.sprintf "d=%d f=%d all succeed" d pt.Ca.f) pt.Ca.trials
            pt.Ca.successes;
          check_int "success split" pt.Ca.successes
            (pt.Ca.via_construction + pt.Ca.via_disjoint);
          check_bool "full rings" true
            (pt.Ca.mean_ring_length = float_of_int size))
        pts)
    [ 3; 4; 5; 6; 8; 9; 10 ]

let test_campaign_deterministic_across_domains () =
  let strip (pt : Ca.point) =
    ( pt.Ca.f, pt.Ca.successes, pt.Ca.via_construction, pt.Ca.via_disjoint,
      pt.Ca.masked_fallbacks, pt.Ca.mean_ring_length )
  in
  let a = Ca.run ~trials:6 ~fmax:4 ~d:6 ~n:2 () in
  let b = Ca.run ~domains:3 ~trials:6 ~fmax:4 ~d:6 ~n:2 () in
  check_bool "domains don't change statistics" true
    (List.map strip a = List.map strip b)

(* ------------------------------------------------------------------ *)
(* MB(d,n): Hamiltonian decompositions *)

let test_mdb_sizes () =
  List.iter
    (fun (d, n) ->
      let t = M.build ~d ~n in
      check_int "d cycles" d (List.length t.M.cycles);
      List.iter
        (fun c -> check_int "cycle covers all nodes" (t.M.p.W.size) (Array.length c))
        t.M.cycles;
      check_bool (Printf.sprintf "verify MB(%d,%d)" d n) true (M.verify t))
    [ (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (3, 4); (5, 2); (5, 3); (7, 2); (9, 2) ]

let test_mdb_example_3_6 () =
  (* d = 2, n = 3: the thesis's explicit decomposition exists; check the
     structural facts it states: H₀ = C + 000 inserted between 100 and
     001; H₁ passes 010 → 000 → 111 → 101 style reroutes; both HCs. *)
  let t = M.build ~d:2 ~n:3 in
  let p = t.M.p in
  let h0 = List.nth t.M.cycles 0 in
  let zero = W.of_string p "000" in
  let i = ref (-1) in
  Array.iteri (fun j v -> if v = zero then i := j) h0;
  let len = Array.length h0 in
  check_int "000 preceded by 100" (W.of_string p "100") h0.((!i + len - 1) mod len);
  check_int "000 followed by 001" (W.of_string p "001") h0.((!i + 1) mod len);
  check_int "3 new edges overall" 3 (M.new_edge_count t)

let test_mdb_new_edge_counts () =
  (* Odd prime powers: 2 rerouted edges per cycle, all new → 2d; binary:
     exactly 3 new edges (Example 3.6). *)
  List.iter
    (fun (d, n, want) -> check_int (Printf.sprintf "MB(%d,%d)" d n) want (M.new_edge_count (M.build ~d ~n)))
    [ (2, 4, 3); (3, 3, 6); (5, 2, 10); (7, 2, 14); (9, 2, 18) ]

let test_mdb_errors () =
  Alcotest.check_raises "d=2 n=2 impossible"
    (Invalid_argument "Mdb.build: the binary construction requires n >= 3") (fun () ->
      ignore (M.build ~d:2 ~n:2));
  Alcotest.check_raises "composite d rejected"
    (Invalid_argument "Mdb.build: d must be 2 or an odd prime power") (fun () ->
      ignore (M.build ~d:6 ~n:2));
  Alcotest.check_raises "even prime power rejected"
    (Invalid_argument "Mdb.build: d must be 2 or an odd prime power") (fun () ->
      ignore (M.build ~d:4 ~n:2))

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  let pp_gen = oneofl [ (3, 2); (3, 3); (4, 2); (5, 2); (7, 2); (8, 2); (9, 2) ] in
  [
    Test.make ~name:"H_s is Hamiltonian for random (s,k)" ~count:100
      (pair pp_gen (pair (int_range 0 100) (int_range 0 100)))
      (fun ((d, n), (s0, k0)) ->
        let t = SC.make ~d ~n in
        let p = t.SC.p in
        let s = s0 mod d in
        let k = k0 mod d in
        QCheck.assume (s <> k);
        S.is_de_bruijn_sequence p (SC.hamiltonize t ~s ~k));
    Test.make ~name:"Lemma 3.4 conflict predicate is symmetric" ~count:200
      (triple (int_range 0 100) (int_range 0 100) (int_range 0 100))
      (fun (x, y, seed) ->
        let d = 9 in
        let t = SC.make ~d ~n:2 in
        let field = t.SC.lfsr.L.field in
        let x = x mod d and y = y mod d in
        (* a random fixed-point-free f from the seed *)
        let f v = (v + 1 + (seed mod (d - 1))) mod d in
        QCheck.assume (List.for_all (fun v -> f v <> v) (G.elements field));
        SC.hs_conflicts t ~f x y = SC.hs_conflicts t ~f y x);
    Test.make ~name:"streaming engine = frozen Reference" ~count:60
      (pair
         (oneofl
            [ (2, 4); (3, 3); (4, 2); (5, 2); (6, 2); (8, 2); (9, 2); (10, 2); (12, 2) ])
         (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let p = W.params ~d ~n in
        let rng = Util.Rng.create seed in
        let bound = p.W.size * p.W.d in
        let f = Util.Rng.int rng (min bound (P.max_tolerance d + 3)) in
        let faults =
          List.map (W.edge_of_code p) (Util.Rng.sample_distinct rng ~k:f ~bound)
        in
        EF.hc_avoiding ~d ~n ~faults = R.hc_avoiding ~d ~n ~faults
        && EF.hc_avoiding_via_disjoint ~d ~n ~faults
           = R.hc_avoiding_via_disjoint ~d ~n ~faults
        && EF.best_hc_avoiding ~d ~n ~faults = R.best_hc_avoiding ~d ~n ~faults);
    Test.make ~name:"streamed H_s pairwise disjointness = materialized" ~count:40
      (pair (oneofl [ (3, 3); (4, 2); (5, 2); (7, 2); (9, 2) ])
         (pair (int_range 0 100) (int_range 0 100)))
      (fun ((d, n), (i, j)) ->
        let streams = St.disjoint_hamiltonian_streams ~d ~n in
        let cycles = St.disjoint_hamiltonian_cycles ~d ~n in
        let len = List.length streams in
        let i = i mod len and j = j mod len in
        QCheck.assume (i <> j);
        let p = W.params ~d ~n in
        Str.edge_disjoint (List.nth streams i) (List.nth streams j)
        = S.edge_disjoint p (List.nth cycles i) (List.nth cycles j));
    Test.make ~name:"product of HCs is an HC" ~count:40
      (pair (int_range 0 2) (int_range 0 1))
      (fun (i, j) ->
        let has = St.disjoint_hamiltonian_cycles ~d:4 ~n:2 in
        let hbs = St.disjoint_hamiltonian_cycles ~d:3 ~n:2 in
        let a = List.nth has (i mod List.length has) in
        let b = List.nth hbs (j mod List.length hbs) in
        S.is_de_bruijn_sequence (W.params ~d:12 ~n:2) (Co.product ~s:4 ~t:3 a b));
  ]

let () =
  Alcotest.run "dhc"
    [
      ( "lfsr",
        [
          Alcotest.test_case "Example 3.1 sequence" `Quick test_example_3_1_sequence;
          Alcotest.test_case "rejects non-primitive" `Quick test_lfsr_rejects_non_primitive;
          Alcotest.test_case "maximal cycle properties" `Quick test_maximal_cycle_properties;
          Alcotest.test_case "bad init" `Quick test_lfsr_bad_init;
        ] );
      ( "shift-cycles",
        [
          Alcotest.test_case "Lemmas 3.1/3.2 (cycles, recurrence)" `Quick test_shifted_are_cycles;
          Alcotest.test_case "Lemma 3.3 (edge-disjoint partition)" `Quick
            test_shifted_edge_disjoint_partition;
          Alcotest.test_case "owner of edge" `Quick test_owner_of_edge;
          Alcotest.test_case "Eq. 3.3" `Quick test_alpha_equations;
          Alcotest.test_case "hamiltonize" `Quick test_hamiltonize;
          Alcotest.test_case "new edge locations" `Quick test_hamiltonize_new_edges_location;
          Alcotest.test_case "k = s rejected" `Quick test_hamiltonize_k_eq_s;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "Example 3.4 (B(5,2))" `Quick test_example_3_4;
          Alcotest.test_case "strategy selection" `Quick test_strategy_choices;
          Alcotest.test_case "f is fixed-point free" `Quick
            test_replacement_function_fixed_point_free;
          Alcotest.test_case "disjoint HCs (prime powers)" `Quick test_disjoint_hcs_prime_powers;
        ] );
      ( "compose",
        [
          Alcotest.test_case "Example 3.5" `Quick test_example_3_5;
          Alcotest.test_case "errors" `Quick test_product_errors;
          Alcotest.test_case "disjoint HCs (composite)" `Quick test_disjoint_hcs_composite;
        ] );
      ( "psi",
        [
          Alcotest.test_case "Table 3.1" `Quick test_table_3_1;
          Alcotest.test_case "phi bound" `Quick test_phi_bound;
          Alcotest.test_case "Table 3.2 / d=28" `Quick test_table_3_2;
          Alcotest.test_case "phi full table d<=32" `Quick test_phi_full_table;
          Alcotest.test_case "MAX full table d<=32" `Quick test_max_full_table;
          Alcotest.test_case "Corollary 3.1" `Quick test_corollary_3_1;
        ] );
      ( "edge-fault",
        [
          Alcotest.test_case "Prop 3.3 random" `Quick test_prop_3_3_random;
          Alcotest.test_case "Prop 3.3 worst-case pack" `Quick test_prop_3_3_worst_case_pack;
          Alcotest.test_case "d-1 faults impossible" `Quick test_d_minus_1_faults_impossible;
          Alcotest.test_case "Prop 3.4 psi route" `Quick test_prop_3_4_psi_route;
          Alcotest.test_case "node masking strawman" `Quick test_via_node_masking;
          Alcotest.test_case "validation" `Quick test_fault_validation;
        ] );
      ( "stream",
        [
          Alcotest.test_case "edge codes roundtrip" `Quick test_edge_codes;
          Alcotest.test_case "streams match materialized" `Quick
            test_stream_matches_materialized;
          Alcotest.test_case "disjoint families match + walk-disjoint" `Quick
            test_disjoint_streams_match_and_disjoint;
          Alcotest.test_case "disjoint prefix families (upto k)" `Quick
            test_disjoint_streams_upto;
          Alcotest.test_case "surviving disjoint streams" `Quick
            test_surviving_disjoint_streams;
          Alcotest.test_case "4095-fault set via bitset probe" `Quick
            test_large_fault_set;
          Alcotest.test_case "hashtable regime" `Quick test_faults_hashtable_regime;
          Alcotest.test_case "MB cycles as streams" `Quick test_mdb_streams;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "guaranteed regime" `Quick test_campaign_guarantee;
          Alcotest.test_case "domains-invariant statistics" `Quick
            test_campaign_deterministic_across_domains;
        ] );
      ( "mdb",
        [
          Alcotest.test_case "decompositions verify" `Quick test_mdb_sizes;
          Alcotest.test_case "Example 3.6 structure" `Quick test_mdb_example_3_6;
          Alcotest.test_case "new edge counts" `Quick test_mdb_new_edge_counts;
          Alcotest.test_case "errors" `Quick test_mdb_errors;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
