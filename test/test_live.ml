(* Tests for Ffc.Live: the incremental ring-repair engine.

   The load-bearing property is the churn oracle: after EVERY event of a
   random fault/repair sequence, the engine's entire observable state —
   membership, root, |B*|, ecc, BFS distances, the successor map and the
   materialized ring — must be bit-identical to a full Embed.embed
   recompute on the current fault set, with and without a shared
   workspace and across ?domains. *)

module W = Debruijn.Word
module B = Ffc.Bstar
module E = Ffc.Embed
module Sp = Ffc.Spanning
module Lv = Ffc.Live

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* the oracle *)

let oracle_agrees ?(materialize = true) (live : Lv.t) p faults =
  match E.embed ~root_hint:1 p ~faults with
  | None -> Lv.is_empty live
  | Some e ->
      let b = e.E.bstar in
      let tree = e.E.modified.Sp.tree in
      Lv.root live = b.B.root
      && Lv.size live = b.B.size
      && Lv.ecc live = tree.Sp.ecc
      && (let ok = ref true in
          for v = 0 to p.W.size - 1 do
            if Lv.in_bstar live v <> (b.B.in_bstar.{v} <> 0) then ok := false;
            if Lv.successor live v <> e.E.successor.{v} then ok := false;
            if b.B.in_bstar.{v} <> 0 && Lv.dist live v <> tree.Sp.dist.{v} then
              ok := false
          done;
          !ok)
      && ((not materialize) || Lv.ring live = Some e.E.cycle)

(* One churn sequence: a birth-death chain around [target] outstanding
   faults, oracle-checked after every event.  Returns false on the
   first divergence (or rejected event). *)
let churn_agrees ?ws ?domains p ~seed ~events ~target =
  let rng = Util.Rng.create seed in
  let live = Lv.create ~root_hint:1 ?ws ?domains p ~faults:[] in
  let active = ref [] in
  let nf = ref 0 in
  let ok = ref true in
  let e = ref 0 in
  while !ok && !e < events do
    let do_fault =
      !nf < p.W.size && (!nf = 0 || Util.Rng.int rng (target + !nf) < target)
    in
    let ev =
      if do_fault then begin
        let v = ref (Util.Rng.int rng p.W.size) in
        while Lv.is_faulty live !v do
          v := Util.Rng.int rng p.W.size
        done;
        active := !v :: !active;
        incr nf;
        Lv.Fault !v
      end
      else begin
        let i = Util.Rng.int rng !nf in
        let v = List.nth !active i in
        active := List.filteri (fun j _ -> j <> i) !active;
        decr nf;
        Lv.Repair v
      end
    in
    (match Lv.apply live ev with
    | Ok _ -> ()
    | Error _ -> ok := false);
    if !ok then ok := oracle_agrees live p !active;
    incr e
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* unit tests *)

let p33 = W.params ~d:3 ~n:3

let test_create_matches_oracle () =
  let faults = [ W.of_string p33 "020"; W.of_string p33 "112" ] in
  let live = Lv.create ~root_hint:1 p33 ~faults in
  check_bool "initial state = oracle" true (oracle_agrees live p33 faults);
  check_int "21 nodes" 21 (Lv.size live);
  check_int "two faults" 2 (Lv.fault_count live);
  check_bool "faults listed" true (Lv.current_faults live = List.sort compare faults)

let test_invalid_events_rejected () =
  let live = Lv.create ~root_hint:1 p33 ~faults:[] in
  (match Lv.apply live (Lv.Repair 3) with
  | Error (Lv.Not_faulty 3) -> ()
  | _ -> Alcotest.fail "repair of a healthy node must be rejected");
  (match Lv.apply live (Lv.Fault (-1)) with
  | Error (Lv.Out_of_range -1) -> ()
  | _ -> Alcotest.fail "negative node must be rejected");
  (match Lv.apply live (Lv.Fault p33.W.size) with
  | Error (Lv.Out_of_range _) -> ()
  | _ -> Alcotest.fail "overflowing node must be rejected");
  check_bool "rejections touch nothing" true (oracle_agrees live p33 []);
  (match Lv.apply live (Lv.Fault 5) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "healthy fault accepted");
  (match Lv.apply live (Lv.Fault 5) with
  | Error (Lv.Already_faulty 5) -> ()
  | _ -> Alcotest.fail "fault of a dead node must be rejected");
  let s = Lv.stats live in
  check_int "four rejections" 4 s.Lv.rejected;
  check_int "one accepted event" 1 s.Lv.events;
  check_bool "state still = oracle" true (oracle_agrees live p33 [ 5 ])

let test_necklace_mate_is_unchanged () =
  (* 001 and 010 share a necklace: the second fault changes no
     membership, so the engine must absorb it as pure bookkeeping — and
     the repair of only one of them must leave B* unchanged too. *)
  let live = Lv.create ~root_hint:1 p33 ~faults:[] in
  let v1 = W.of_string p33 "001" and v2 = W.of_string p33 "010" in
  (match Lv.apply live (Lv.Fault v1) with
  | Ok Lv.Recomputed -> ()
  | Ok _ -> Alcotest.fail "killing the hint's necklace must recompute"
  | Error _ -> Alcotest.fail "rejected");
  (match Lv.apply live (Lv.Fault v2) with
  | Ok Lv.Unchanged -> ()
  | _ -> Alcotest.fail "necklace mate must be Unchanged");
  check_bool "after mates" true (oracle_agrees live p33 [ v1; v2 ]);
  (match Lv.apply live (Lv.Repair v2) with
  | Ok Lv.Unchanged -> ()
  | _ -> Alcotest.fail "partial repair must be Unchanged");
  check_bool "after partial repair" true (oracle_agrees live p33 [ v1 ]);
  let s = Lv.stats live in
  check_int "events" 3 s.Lv.events;
  check_int "patched+recomputed+unchanged = events" s.Lv.events
    (s.Lv.patched + s.Lv.recomputed + s.Lv.unchanged)

let test_fault_far_from_root_patches () =
  (* B(2,8): faulting a high node away from root 1's necklace must take
     the incremental path and still agree with the oracle. *)
  let p = W.params ~d:2 ~n:8 in
  let live = Lv.create ~root_hint:1 p ~faults:[] in
  let v = W.of_string p "11010110" in
  (match Lv.apply live (Lv.Fault v) with
  | Ok Lv.Patched -> ()
  | Ok Lv.Recomputed -> Alcotest.fail "expected the incremental path"
  | Ok Lv.Unchanged -> Alcotest.fail "a live necklace died: not Unchanged"
  | Error _ -> Alcotest.fail "rejected");
  check_bool "patched state = oracle" true (oracle_agrees live p [ v ]);
  (match Lv.apply live (Lv.Repair v) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "repair rejected");
  check_bool "repaired state = oracle" true (oracle_agrees live p []);
  check_int "ring is Hamiltonian again" p.W.size (Lv.ring_length live)

let test_empty_to_full_cycle () =
  (* Kill every necklace of B(2,2), then revive: the engine must pass
     through the empty state and come back. *)
  let p = W.params ~d:2 ~n:2 in
  let live = Lv.create ~root_hint:1 p ~faults:[ 0; 1; 3 ] in
  check_bool "empty" true (Lv.is_empty live);
  check_bool "no ring" true (Lv.ring live = None);
  check_bool "empty = oracle" true (oracle_agrees live p [ 0; 1; 3 ]);
  (match Lv.apply live (Lv.Repair 1) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "repair from empty rejected");
  check_bool "revived = oracle" true (oracle_agrees live p [ 0; 3 ])

let test_stats_accounting () =
  let p = W.params ~d:2 ~n:6 in
  let live = Lv.create ~root_hint:1 p ~faults:[] in
  check_bool "one churn pass" true
    (churn_agrees p ~seed:42 ~events:40 ~target:4);
  ignore live

(* ------------------------------------------------------------------ *)
(* crash-path hardening (the PR's satellite): malformed pipeline inputs
   surface as Pipeline_error.Error, not Failure/assert *)

let test_malformed_bstar_typed_error () =
  (* A B* record whose [faults] list disagrees with its membership
     arrays: node 2 is declared faulty though it lies inside the
     fault-free B(2,3) membership.  The simulated engines then never
     reach the root's necklace (2 blocks the probe relay through
     {1,2,4}), the successor walk runs off the schedule's reach, and
     both must refuse with the typed error — never a bare [Failure] or
     an out-of-bounds crash. *)
  let p = W.params ~d:2 ~n:3 in
  let healthy = Option.get (B.compute ~root_hint:1 p ~faults:[]) in
  let mangled = { healthy with B.faults = [ 2 ] } in
  (match Ffc.Selftimed.run mangled with
  | _ -> Alcotest.fail "Selftimed accepted a malformed B*"
  | exception Ffc.Pipeline_error.Error err ->
      check_bool "selftimed error names its stage" true
        (String.length (Ffc.Pipeline_error.to_string err) > 0)
  | exception Failure _ -> Alcotest.fail "Selftimed crash path still raises Failure");
  match Ffc.Distributed.run mangled with
  | _ -> Alcotest.fail "Distributed accepted a malformed B*"
  | exception Ffc.Pipeline_error.Error err ->
      check_bool "distributed error names its stage" true
        (String.length (Ffc.Pipeline_error.to_string err) > 0)
  | exception Failure _ -> Alcotest.fail "Distributed crash path still raises Failure"

let test_campaign_records_errors () =
  (* The campaign aggregates typed errors instead of crashing; on
     well-formed inputs the count is zero. *)
  let pts = Ffc.Campaign.run ~trials:5 ~fs:[ 1; 2 ] ~d:3 ~n:3 () in
  List.iter
    (fun (pt : Ffc.Campaign.point) -> check_int "no errors" 0 pt.Ffc.Campaign.errors)
    pts

(* ------------------------------------------------------------------ *)
(* churn campaign determinism *)

let deterministic_fields (c : Ffc.Campaign.churn_point) =
  ( c.Ffc.Campaign.target_f,
    c.Ffc.Campaign.ctrials,
    c.Ffc.Campaign.events,
    c.Ffc.Campaign.cfaults,
    c.Ffc.Campaign.crepairs,
    c.Ffc.Campaign.patched,
    c.Ffc.Campaign.recomputed,
    c.Ffc.Campaign.cunchanged,
    c.Ffc.Campaign.cerrors,
    c.Ffc.Campaign.mean_ring_length,
    c.Ffc.Campaign.min_ring_length,
    c.Ffc.Campaign.mean_live_faults )

let test_churn_campaign_deterministic () =
  let run ?domains ?reuse () =
    List.map deterministic_fields
      (Ffc.Campaign.churn ?domains ?reuse ~trials:4 ~events:30
         ~targets:[ 1; 3 ] ~d:3 ~n:3 ())
  in
  let base = run () in
  check_bool "domains:2 bit-identical" true (base = run ~domains:2 ());
  check_bool "reuse:false bit-identical" true (base = run ~reuse:false ());
  List.iter
    (fun (_, _, events, cf, cr, pat, rc, un, errs, _, _, _) ->
      check_int "no errors" 0 errs;
      check_int "events partition" (4 * events) (cf + cr);
      check_int "outcomes partition" (4 * events) (pat + rc + un))
    base

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  let scenario =
    Gen.(
      oneofl [ (2, 4); (2, 5); (2, 6); (2, 7); (3, 3); (3, 4); (4, 2); (4, 3); (5, 2) ]
      >>= fun (d, n) ->
      int_range 1 5 >>= fun target ->
      int_range 0 1000000 >>= fun seed -> return (d, n, target, seed))
  in
  let events = 25 in
  [
    Test.make ~name:"live churn = batch recompute after every event" ~count:120
      (make scenario) (fun (d, n, target, seed) ->
        let p = W.params ~d ~n in
        churn_agrees p ~seed ~events ~target);
    (* One workspace per (d, n), shared across the whole run: the
       engine's batch fallbacks must coexist with arena reuse. *)
    (let cache = Hashtbl.create 8 in
     Test.make ~name:"live churn with shared workspace = fresh" ~count:80
       (make scenario) (fun (d, n, target, seed) ->
         let p = W.params ~d ~n in
         let ws =
           match Hashtbl.find_opt cache (d, n) with
           | Some ws -> ws
           | None ->
               let ws = Ffc.Workspace.create p in
               Hashtbl.add cache (d, n) ws;
               ws
         in
         churn_agrees ~ws p ~seed ~events ~target));
    Test.make ~name:"live churn at domains:2 = sequential" ~count:30
      (make scenario) (fun (d, n, target, seed) ->
        let p = W.params ~d ~n in
        churn_agrees ~domains:2 p ~seed ~events ~target);
  ]

let () =
  Alcotest.run "live"
    [
      ( "engine",
        [
          Alcotest.test_case "create matches oracle" `Quick test_create_matches_oracle;
          Alcotest.test_case "invalid events rejected" `Quick test_invalid_events_rejected;
          Alcotest.test_case "necklace mates are Unchanged" `Quick
            test_necklace_mate_is_unchanged;
          Alcotest.test_case "far fault takes the patched path" `Quick
            test_fault_far_from_root_patches;
          Alcotest.test_case "empty and back" `Quick test_empty_to_full_cycle;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        ] );
      ( "crash-paths",
        [
          Alcotest.test_case "malformed B* raises the typed error" `Quick
            test_malformed_bstar_typed_error;
          Alcotest.test_case "campaign records errors" `Quick test_campaign_records_errors;
        ] );
      ( "churn-campaign",
        [
          Alcotest.test_case "deterministic across domains/reuse" `Quick
            test_churn_campaign_deterministic;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
