(* Tests for the number-theory substrate. *)

module N = Numtheory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* gcd / lcm / pow *)

let test_gcd_basic () =
  check_int "gcd 12 18" 6 (N.gcd 12 18);
  check_int "gcd 0 0" 0 (N.gcd 0 0);
  check_int "gcd 0 7" 7 (N.gcd 0 7);
  check_int "gcd 7 0" 7 (N.gcd 7 0);
  check_int "gcd 1 999" 1 (N.gcd 1 999);
  check_int "gcd negative" 6 (N.gcd (-12) 18);
  check_int "gcd both negative" 6 (N.gcd (-12) (-18));
  check_int "gcd coprime" 1 (N.gcd 35 64)

let test_lcm_basic () =
  check_int "lcm 4 6" 12 (N.lcm 4 6);
  check_int "lcm 0 5" 0 (N.lcm 0 5);
  check_int "lcm 7 7" 7 (N.lcm 7 7);
  check_int "lcm coprime" 15 (N.lcm 3 5);
  (* The butterfly Φ-map length: LCM(k,n). *)
  check_int "lcm 4 3 (Lemma 3.9 example)" 12 (N.lcm 4 3)

let test_pow () =
  check_int "2^10" 1024 (N.pow 2 10);
  check_int "x^0" 1 (N.pow 99 0);
  check_int "0^0" 1 (N.pow 0 0);
  check_int "3^7" 2187 (N.pow 3 7);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Numtheory.pow: negative exponent")
    (fun () -> ignore (N.pow 2 (-1)))

let test_pow_mod () =
  check_int "2^10 mod 1000" 24 (N.pow_mod 2 10 1000);
  check_int "fermat 3^(p-1) mod p" 1 (N.pow_mod 3 12 13);
  check_int "mod 1" 0 (N.pow_mod 5 3 1);
  check_int "negative base" (N.pow_mod 4 3 7) (N.pow_mod (-3) 3 7)

(* ------------------------------------------------------------------ *)
(* primes / factorization *)

let test_is_prime () =
  let primes = [ 2; 3; 5; 7; 11; 13; 97; 101; 7919 ] in
  List.iter (fun p -> check_bool (string_of_int p) true (N.is_prime p)) primes;
  let composites = [ -7; 0; 1; 4; 9; 15; 91; 1001; 7917 ] in
  List.iter (fun c -> check_bool (string_of_int c) false (N.is_prime c)) composites

let test_factorize () =
  Alcotest.(check (list (pair int int))) "12" [ (2, 2); (3, 1) ] (N.factorize 12);
  Alcotest.(check (list (pair int int))) "1" [] (N.factorize 1);
  Alcotest.(check (list (pair int int))) "prime" [ (97, 1) ] (N.factorize 97);
  Alcotest.(check (list (pair int int))) "360" [ (2, 3); (3, 2); (5, 1) ] (N.factorize 360);
  Alcotest.(check (list (pair int int))) "2^20-1" [ (3, 1); (5, 2); (11, 1); (31, 1); (41, 1) ]
    (N.factorize (N.pow 2 20 - 1))

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (N.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (N.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 13 ] (N.divisors 13);
  check_int "count d(360)" 24 (List.length (N.divisors 360))

let test_is_prime_power () =
  Alcotest.(check (option (pair int int))) "8" (Some (2, 3)) (N.is_prime_power 8);
  Alcotest.(check (option (pair int int))) "7" (Some (7, 1)) (N.is_prime_power 7);
  Alcotest.(check (option (pair int int))) "81" (Some (3, 4)) (N.is_prime_power 81);
  Alcotest.(check (option (pair int int))) "6" None (N.is_prime_power 6);
  Alcotest.(check (option (pair int int))) "1" None (N.is_prime_power 1);
  Alcotest.(check (option (pair int int))) "0" None (N.is_prime_power 0);
  Alcotest.(check (option (pair int int))) "12" None (N.is_prime_power 12)

(* ------------------------------------------------------------------ *)
(* mobius / phi *)

let test_mobius () =
  let expected = [ (1, 1); (2, -1); (3, -1); (4, 0); (5, -1); (6, 1); (7, -1); (8, 0); (9, 0); (10, 1); (12, 0); (30, -1); (105, -1); (210, 1) ] in
  List.iter (fun (n, m) -> check_int (string_of_int n) m (N.mobius n)) expected

let test_euler_phi () =
  let expected = [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 4); (6, 2); (9, 6); (10, 4); (12, 4); (36, 12); (97, 96); (100, 40) ] in
  List.iter (fun (n, m) -> check_int (string_of_int n) m (N.euler_phi n)) expected

let test_mobius_sum_identity () =
  (* sum of mu(d) over divisors d of n equals [n = 1] *)
  for n = 1 to 200 do
    let s = N.sum_over_divisors n N.mobius in
    check_int (Printf.sprintf "mobius sum n=%d" n) (if n = 1 then 1 else 0) s
  done

let test_phi_sum_identity () =
  (* sum of phi(d) over divisors d of n equals n *)
  for n = 1 to 200 do
    check_int (Printf.sprintf "phi sum n=%d" n) n (N.sum_over_divisors n N.euler_phi)
  done

(* ------------------------------------------------------------------ *)
(* primitive roots / discrete logs / orders *)

let test_primitive_root () =
  check_int "p=2" 1 (N.primitive_root 2);
  check_int "p=3" 2 (N.primitive_root 3);
  check_int "p=5" 2 (N.primitive_root 5);
  check_int "p=7" 3 (N.primitive_root 7);
  check_int "p=13 (least)" 2 (N.primitive_root 13);
  check_int "p=41" 6 (N.primitive_root 41)

let test_is_primitive_root () =
  (* The thesis (Example 3.3) uses 7 as a primitive root of Z_13. *)
  check_bool "7 primitive mod 13" true (N.is_primitive_root 7 13);
  check_bool "3 not primitive mod 13" false (N.is_primitive_root 3 13);
  (* Example 3.4 uses 3 as primitive root of Z_5. *)
  check_bool "3 primitive mod 5" true (N.is_primitive_root 3 5);
  check_bool "4 not primitive mod 5" false (N.is_primitive_root 4 5)

let test_discrete_log () =
  (* 2 ≡ 7^11 + ... — just check basic logs *)
  Alcotest.(check (option int)) "log_2 8 mod 13" (Some 3) (N.discrete_log 2 8 13);
  Alcotest.(check (option int)) "log of 1" (Some 0) (N.discrete_log 5 1 7);
  Alcotest.(check (option int)) "log exists for subgroup member" (Some 2) (N.discrete_log 4 2 7);
  (* 4 generates {1,4,2} mod 7, which does not contain 3. *)
  Alcotest.(check (option int)) "no log (non-generator)" None (N.discrete_log 4 3 7)

let test_lemma_3_5_examples () =
  (* Lemma 3.5 cases quoted by the thesis:
     p = 13: 7 is a primitive root and 2 ≡ 7^11 ≡ 7 + 7^9 (mod 13). *)
  check_int "7^11 mod 13" 2 (N.pow_mod 7 11 13);
  check_int "7 + 7^9 mod 13" 2 ((7 + N.pow_mod 7 9 13) mod 13);
  (* 2 is a QR mod p iff p ≡ ±1 (mod 8). *)
  List.iter
    (fun p ->
      let qr = N.quadratic_residue 2 p in
      let expect = p mod 8 = 1 || p mod 8 = 7 in
      check_bool (Printf.sprintf "QR(2) mod %d" p) expect qr)
    [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ]

let test_order_mod () =
  check_int "ord 2 mod 7" 3 (N.order_mod 2 7);
  check_int "ord 3 mod 7" 6 (N.order_mod 3 7);
  check_int "ord 1 mod 5" 1 (N.order_mod 1 5);
  check_int "ord 2 mod 9" 6 (N.order_mod 2 9)

(* ------------------------------------------------------------------ *)
(* binomial / multinomial *)

let test_binomial () =
  check_int "C(12,4)" 495 (N.binomial 12 4);
  check_int "C(6,2)" 15 (N.binomial 6 2);
  check_int "C(3,1)" 3 (N.binomial 3 1);
  check_int "C(n,0)" 1 (N.binomial 9 0);
  check_int "C(n,n)" 1 (N.binomial 9 9);
  check_int "out of range" 0 (N.binomial 5 7);
  check_int "negative k" 0 (N.binomial 5 (-1))

let test_binomial_pascal () =
  for n = 1 to 25 do
    for k = 1 to n - 1 do
      check_int
        (Printf.sprintf "pascal %d %d" n k)
        (N.binomial (n - 1) (k - 1) + N.binomial (n - 1) k)
        (N.binomial n k)
    done
  done

let test_multinomial () =
  (* The thesis's type example: 312211 has type [0;3;2;1] and there are
     6!/(0!3!2!1!) = 60 words of that type. *)
  check_int "type [0;3;2;1]" 60 (N.multinomial [ 0; 3; 2; 1 ]);
  check_int "binomial special case" (N.binomial 10 4) (N.multinomial [ 6; 4 ]);
  check_int "empty" 1 (N.multinomial []);
  check_int "single" 1 (N.multinomial [ 5 ])

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"gcd divides both" ~count:500
      (pair (int_range 1 100000) (int_range 1 100000))
      (fun (a, b) ->
        let g = N.gcd a b in
        g > 0 && a mod g = 0 && b mod g = 0);
    Test.make ~name:"gcd*lcm = a*b" ~count:500
      (pair (int_range 1 10000) (int_range 1 10000))
      (fun (a, b) -> N.gcd a b * N.lcm a b = a * b);
    Test.make ~name:"factorize reconstructs" ~count:500 (int_range 1 1000000)
      (fun n -> List.fold_left (fun acc (p, e) -> acc * N.pow p e) 1 (N.factorize n) = n);
    Test.make ~name:"factors are prime" ~count:300 (int_range 2 1000000)
      (fun n -> List.for_all (fun (p, _) -> N.is_prime p) (N.factorize n));
    Test.make ~name:"phi multiplicative on coprime" ~count:300
      (pair (int_range 1 1000) (int_range 1 1000))
      (fun (a, b) ->
        QCheck.assume (N.gcd a b = 1);
        N.euler_phi (a * b) = N.euler_phi a * N.euler_phi b);
    Test.make ~name:"pow_mod agrees with pow" ~count:300
      (triple (int_range 0 30) (int_range 0 10) (int_range 1 1000))
      (fun (b, e, m) -> N.pow_mod b e m = N.pow b e mod m);
    Test.make ~name:"divisors all divide" ~count:300 (int_range 1 100000)
      (fun n -> List.for_all (fun t -> n mod t = 0) (N.divisors n));
    Test.make ~name:"order divides phi" ~count:300 (pair (int_range 2 500) (int_range 2 500))
      (fun (a, m) ->
        QCheck.assume (N.gcd a m = 1 && m >= 2);
        N.euler_phi m mod N.order_mod a m = 0);
  ]

let () =
  Alcotest.run "numtheory"
    [
      ( "gcd-lcm-pow",
        [
          Alcotest.test_case "gcd" `Quick test_gcd_basic;
          Alcotest.test_case "lcm" `Quick test_lcm_basic;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "pow_mod" `Quick test_pow_mod;
        ] );
      ( "primes",
        [
          Alcotest.test_case "is_prime" `Quick test_is_prime;
          Alcotest.test_case "factorize" `Quick test_factorize;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "is_prime_power" `Quick test_is_prime_power;
        ] );
      ( "mobius-phi",
        [
          Alcotest.test_case "mobius values" `Quick test_mobius;
          Alcotest.test_case "phi values" `Quick test_euler_phi;
          Alcotest.test_case "mobius sum identity" `Quick test_mobius_sum_identity;
          Alcotest.test_case "phi sum identity" `Quick test_phi_sum_identity;
        ] );
      ( "mod-arithmetic",
        [
          Alcotest.test_case "primitive_root" `Quick test_primitive_root;
          Alcotest.test_case "is_primitive_root" `Quick test_is_primitive_root;
          Alcotest.test_case "discrete_log" `Quick test_discrete_log;
          Alcotest.test_case "lemma 3.5 arithmetic" `Quick test_lemma_3_5_examples;
          Alcotest.test_case "order_mod" `Quick test_order_mod;
        ] );
      ( "combinatorics",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "pascal" `Quick test_binomial_pascal;
          Alcotest.test_case "multinomial" `Quick test_multinomial;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
