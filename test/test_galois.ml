(* Tests for finite fields GF(p^e) and polynomial arithmetic. *)

module P = Galois.Poly_zp
module G = Galois.Gf
module GP = Galois.Gf_poly

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Poly_zp *)

let test_poly_normalize () =
  Alcotest.(check (array int)) "strip zeros" [| 1; 2 |] (P.normalize 5 [| 1; 2; 0; 0 |]);
  Alcotest.(check (array int)) "mod p" [| 2; 1 |] (P.normalize 3 [| 5; 4; 3 |]);
  Alcotest.(check (array int)) "zero" [||] (P.normalize 3 [| 3; 6; 9 |]);
  Alcotest.(check (array int)) "negative" [| 2 |] (P.normalize 3 [| -1 |])

let test_poly_arith () =
  let p = 5 in
  let a = P.of_coeffs p [ 1; 2; 3 ] and b = P.of_coeffs p [ 4; 3 ] in
  Alcotest.(check (array int)) "add" [| 0; 0; 3 |] (P.add p a b);
  Alcotest.(check (array int)) "sub" [| 2; 4; 3 |] (P.sub p a b);
  Alcotest.(check (array int)) "mul" [| 4; 1; 3; 4 |] (P.mul p a b);
  check_int "degree" 2 (P.degree a);
  check_int "degree zero" (-1) (P.degree P.zero);
  check_int "eval" ((1 + (2 * 2) + (3 * 4)) mod 5) (P.eval p a 2)

let test_poly_divmod () =
  let p = 7 in
  let a = P.of_coeffs p [ 3; 1; 4; 1; 5 ] and b = P.of_coeffs p [ 2; 0; 1 ] in
  let q, r = P.divmod p a b in
  Alcotest.(check (array int)) "a = q*b + r" a (P.add p (P.mul p q b) r);
  check_bool "deg r < deg b" true (P.degree r < P.degree b);
  Alcotest.check_raises "divide by zero" Division_by_zero (fun () ->
      ignore (P.divmod p a P.zero))

let test_poly_gcd () =
  let p = 5 in
  (* (x+1)(x+2) and (x+1)(x+3) have gcd x+1. *)
  let f1 = P.mul p (P.of_coeffs p [ 1; 1 ]) (P.of_coeffs p [ 2; 1 ]) in
  let f2 = P.mul p (P.of_coeffs p [ 1; 1 ]) (P.of_coeffs p [ 3; 1 ]) in
  Alcotest.(check (array int)) "gcd" [| 1; 1 |] (P.gcd p f1 f2);
  Alcotest.(check (array int)) "gcd coprime" [| 1 |]
    (P.gcd p (P.of_coeffs p [ 1; 1 ]) (P.of_coeffs p [ 2; 1 ]))

let test_poly_irreducible () =
  (* x^2 + x + 1 irreducible over Z_2; x^2 + 1 = (x+1)^2 reducible. *)
  check_bool "x2+x+1 over Z2" true (P.is_irreducible 2 (P.of_coeffs 2 [ 1; 1; 1 ]));
  check_bool "x2+1 over Z2" false (P.is_irreducible 2 (P.of_coeffs 2 [ 1; 0; 1 ]));
  (* x^2 - x - 3 = x^2 + 4x + 2 over Z_5: the thesis's Example 3.1 primitive polynomial. *)
  check_bool "x2-x-3 over Z5 irreducible" true (P.is_irreducible 5 (P.of_coeffs 5 [ -3; -1; 1 ]));
  check_bool "x2-x-3 over Z5 primitive" true (P.is_primitive 5 (P.of_coeffs 5 [ -3; -1; 1 ]));
  (* x^3 + x + 1 primitive over Z_2 (the classic LFSR). *)
  check_bool "x3+x+1 over Z2" true (P.is_primitive 2 (P.of_coeffs 2 [ 1; 1; 0; 1 ]));
  (* x^4 + x^3 + x^2 + x + 1 irreducible over Z_2 but NOT primitive
     (order of x is 5, not 15). *)
  let f = P.of_coeffs 2 [ 1; 1; 1; 1; 1 ] in
  check_bool "x4+..+1 irreducible" true (P.is_irreducible 2 f);
  check_bool "x4+..+1 not primitive" false (P.is_primitive 2 f)

let test_poly_count_irreducibles () =
  (* The number of monic irreducible polynomials of degree n over Z_p is
     (1/n) * sum over divisors t of n of mu(n/t) p^t - Gauss formula, an
     independent check of the Rabin test. *)
  let count_irr p n = List.length (List.filter (P.is_irreducible p) (P.all_monic p n)) in
  let gauss p n =
    Numtheory.sum_over_divisors n (fun t -> Numtheory.mobius (n / t) * Numtheory.pow p t) / n
  in
  List.iter
    (fun (p, n) ->
      check_int (Printf.sprintf "p=%d n=%d" p n) (gauss p n) (count_irr p n))
    [ (2, 2); (2, 3); (2, 4); (2, 5); (3, 2); (3, 3); (5, 2); (7, 2) ]

let test_poly_count_primitives () =
  (* There are φ(p^n − 1)/n monic primitive polynomials of degree n. *)
  let count_prim p n = List.length (List.filter (P.is_primitive p) (P.all_monic p n)) in
  List.iter
    (fun (p, n) ->
      let expected = Numtheory.euler_phi (Numtheory.pow p n - 1) / n in
      check_int (Printf.sprintf "p=%d n=%d" p n) expected (count_prim p n))
    [ (2, 2); (2, 3); (2, 4); (3, 2); (3, 3); (5, 2) ]

(* ------------------------------------------------------------------ *)
(* Gf *)

let small_fields = [ 2; 3; 4; 5; 7; 8; 9; 11; 13; 16; 25; 27; 32; 49; 64; 81 ]

let test_field_create () =
  List.iter
    (fun d ->
      let f = G.create d in
      check_int (Printf.sprintf "order %d" d) d (G.order f))
    small_fields;
  Alcotest.check_raises "6 not a prime power"
    (Invalid_argument "Gf.create: order is not a prime power") (fun () -> ignore (G.create 6))

let test_field_axioms () =
  List.iter
    (fun d ->
      let f = G.create d in
      let elts = G.elements f in
      (* additive identity, inverses, commutativity *)
      List.iter
        (fun a ->
          check_int "a+0" a (G.add f a 0);
          check_int "a-a" 0 (G.sub f a a);
          check_int "a + (-a)" 0 (G.add f a (G.neg f a));
          check_int "1*a" a (G.mul f a 1);
          check_int "0*a" 0 (G.mul f a 0))
        elts;
      List.iter
        (fun a ->
          check_int "a * a^{-1}" 1 (G.mul f a (G.inv f a));
          check_int "a^(d-1)" 1 (G.pow f a (d - 1)))
        (G.nonzero f);
      (* distributivity, checked exhaustively on small fields *)
      if d <= 9 then
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check_int "comm add" (G.add f a b) (G.add f b a);
                check_int "comm mul" (G.mul f a b) (G.mul f b a);
                List.iter
                  (fun c ->
                    check_int "assoc add" (G.add f (G.add f a b) c) (G.add f a (G.add f b c));
                    check_int "assoc mul" (G.mul f (G.mul f a b) c) (G.mul f a (G.mul f b c));
                    check_int "distrib" (G.mul f a (G.add f b c))
                      (G.add f (G.mul f a b) (G.mul f a c)))
                  elts)
              elts)
          elts)
    small_fields

let test_field_generator () =
  List.iter
    (fun d ->
      let f = G.create d in
      let g = G.generator f in
      check_int (Printf.sprintf "generator order, d=%d" d) (d - 1) (G.elt_order f g);
      (* powers of g enumerate all nonzero elements *)
      let seen = Hashtbl.create d in
      for i = 0 to d - 2 do
        Hashtbl.replace seen (G.pow f g i) ()
      done;
      check_int "powers cover nonzero" (d - 1) (Hashtbl.length seen))
    small_fields

let test_field_log () =
  List.iter
    (fun d ->
      let f = G.create d in
      let g = G.generator f in
      List.iter
        (fun a -> check_int "g^log a = a" a (G.pow f g (G.log f a)))
        (G.nonzero f))
    small_fields

let test_gf4_example () =
  (* The thesis's Example 3.2: in GF(4) = {0, 1, ζ, ζ²} with ζ a root of
     x² + x + 1: 1 + ζ = ζ², 1 + ζ² = ζ, ζ + ζ² = 1, ζ³ = 1. *)
  let f = G.create 4 in
  let zeta = G.generator f in
  let zeta2 = G.mul f zeta zeta in
  check_int "1 + z = z^2" zeta2 (G.add f 1 zeta);
  check_int "1 + z^2 = z" zeta (G.add f 1 zeta2);
  check_int "z + z^2 = 1" 1 (G.add f zeta zeta2);
  check_int "z^3 = 1" 1 (G.mul f zeta zeta2);
  check_bool "char 2" true (G.has_characteristic_2 f);
  check_int "x + x = 0 in char 2" 0 (G.add f zeta zeta)

let test_prime_subfield () =
  let f = G.create 9 in
  (* 0,1,2 form Z_3 inside GF(9) under add. *)
  check_int "1+1" 2 (G.add f 1 1);
  check_int "1+2" 0 (G.add f 1 2);
  check_int "2*2 = 1 (mod 3 scalars)" (G.of_int f 4) (G.mul f 2 2);
  check_int "of_int wraps" 1 (G.of_int f 4);
  check_int "of_int negative" 2 (G.of_int f (-1));
  check_int "scalar_mul 2 a = a+a" (G.add f 5 5) (G.scalar_mul f 2 5)

(* ------------------------------------------------------------------ *)
(* Gf_poly *)

let test_gfpoly_arith () =
  let f = G.create 4 in
  let a = GP.of_coeffs f [ 1; 2; 3 ] and b = GP.of_coeffs f [ 2; 1 ] in
  let q, r = GP.divmod f a b in
  Alcotest.(check (array int)) "a = qb + r" a (GP.add f (GP.mul f q b) r);
  check_bool "deg r < deg b" true (GP.degree r < GP.degree b)

let test_gfpoly_primitive_search () =
  (* x² − x − ζ primitive over GF(4): the thesis's Example 3.2 uses the
     recurrence c_{2+i} = c_{1+i} + ζ·cᵢ.  We verify that at least the
     canonical search finds some primitive polynomial and that its order
     is q²−1. *)
  List.iter
    (fun (q, n) ->
      let f = G.create q in
      let m = GP.find_primitive f n in
      check_bool (Printf.sprintf "q=%d n=%d primitive" q n) true (GP.is_primitive f m);
      check_int
        (Printf.sprintf "q=%d n=%d order of x" q n)
        (Numtheory.pow q n - 1)
        (GP.order_of_x f m))
    [ (2, 3); (3, 2); (4, 2); (5, 2); (7, 2); (8, 2); (9, 2); (2, 5); (3, 3); (4, 3) ]

let test_gfpoly_example_3_2 () =
  (* x² + x + ζ over GF(4) — the thesis writes x² − x − ζ; characteristic
     2 makes them equal.  ζ is the generator. *)
  let f = G.create 4 in
  let zeta = G.generator f in
  let m = GP.of_coeffs f [ zeta; 1; 1 ] in
  check_bool "x^2+x+z primitive over GF(4)" true (GP.is_primitive f m)

let test_gfpoly_example_3_1 () =
  (* p(x) = x² − x − 3 over GF(5) is primitive (Example 3.1). *)
  let f = G.create 5 in
  let m = GP.of_coeffs f [ G.of_int f (-3); G.of_int f (-1); 1 ] in
  check_bool "x^2-x-3 primitive over GF(5)" true (GP.is_primitive f m)

let test_gfpoly_irreducible_counts () =
  (* Gauss's count over GF(4): (1/2)(4² − 4) = 6 monic irreducible
     quadratics. *)
  let f = G.create 4 in
  let count = List.length (List.filter (GP.is_irreducible f) (GP.all_monic f 2)) in
  check_int "irreducible quadratics over GF(4)" 6 count

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  let field_gen = oneofl small_fields in
  [
    Test.make ~name:"field add/sub roundtrip" ~count:500
      (triple field_gen (int_range 0 1000) (int_range 0 1000))
      (fun (d, a, b) ->
        let f = G.create d in
        let a = a mod d and b = b mod d in
        G.sub f (G.add f a b) b = a);
    Test.make ~name:"field mul/div roundtrip" ~count:500
      (triple field_gen (int_range 0 1000) (int_range 1 1000))
      (fun (d, a, b) ->
        let f = G.create d in
        let a = a mod d and b = 1 + (b mod (d - 1)) in
        G.div f (G.mul f a b) b = a);
    Test.make ~name:"frobenius additive in char p" ~count:500
      (triple field_gen (int_range 0 1000) (int_range 0 1000))
      (fun (d, a, b) ->
        let f = G.create d in
        let p = match Numtheory.is_prime_power d with Some (p, _) -> p | None -> assert false in
        let a = a mod d and b = b mod d in
        G.pow f (G.add f a b) p = G.add f (G.pow f a p) (G.pow f b p));
    Test.make ~name:"poly mul degree adds" ~count:300
      (pair (list_of_size (Gen.int_range 1 6) (int_range 0 4)) (list_of_size (Gen.int_range 1 6) (int_range 0 4)))
      (fun (a, b) ->
        let p = 5 in
        let fa = P.of_coeffs p a and fb = P.of_coeffs p b in
        QCheck.assume (not (P.is_zero fa) && not (P.is_zero fb));
        P.degree (P.mul p fa fb) = P.degree fa + P.degree fb);
  ]

let () =
  Alcotest.run "galois"
    [
      ( "poly_zp",
        [
          Alcotest.test_case "normalize" `Quick test_poly_normalize;
          Alcotest.test_case "arith" `Quick test_poly_arith;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "gcd" `Quick test_poly_gcd;
          Alcotest.test_case "irreducible/primitive" `Quick test_poly_irreducible;
          Alcotest.test_case "irreducible counts (Gauss)" `Quick test_poly_count_irreducibles;
          Alcotest.test_case "primitive counts" `Quick test_poly_count_primitives;
        ] );
      ( "gf",
        [
          Alcotest.test_case "create" `Quick test_field_create;
          Alcotest.test_case "axioms" `Quick test_field_axioms;
          Alcotest.test_case "generator" `Quick test_field_generator;
          Alcotest.test_case "log" `Quick test_field_log;
          Alcotest.test_case "GF(4) table (Example 3.2)" `Quick test_gf4_example;
          Alcotest.test_case "prime subfield" `Quick test_prime_subfield;
        ] );
      ( "gf_poly",
        [
          Alcotest.test_case "arith" `Quick test_gfpoly_arith;
          Alcotest.test_case "primitive search" `Quick test_gfpoly_primitive_search;
          Alcotest.test_case "Example 3.2 polynomial" `Quick test_gfpoly_example_3_2;
          Alcotest.test_case "Example 3.1 polynomial" `Quick test_gfpoly_example_3_1;
          Alcotest.test_case "irreducible counts over GF(4)" `Quick test_gfpoly_irreducible_counts;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
