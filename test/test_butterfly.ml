(* Tests for section 3.4: butterfly graphs and the Phi embedding. *)

module W = Debruijn.Word
module BG = Butterfly.Graph
module BE = Butterfly.Embed
module C = Graphlib.Cycle
module DG = Graphlib.Digraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let f23 = BG.create ~d:2 ~n:3

let test_structure () =
  check_int "24 nodes in F(2,3)" 24 (BG.n_nodes f23);
  (* every node has out-degree d and in-degree d *)
  for v = 0 to BG.n_nodes f23 - 1 do
    check_int "outdeg" 2 (DG.out_degree f23.BG.graph v);
    check_int "indeg" 2 (DG.in_degree f23.BG.graph v)
  done;
  (* level increments by 1 mod n along every edge *)
  DG.iter_edges
    (fun u v -> check_int "level step" ((BG.level f23 u + 1) mod 3) (BG.level f23 v))
    f23.BG.graph

let test_edges_change_one_digit () =
  let p = f23.BG.p in
  DG.iter_edges
    (fun u v ->
      let k = BG.level f23 u in
      let cu = W.decode p (BG.column f23 u) and cv = W.decode p (BG.column f23 v) in
      Array.iteri
        (fun j (a : int) ->
          if j <> k then check_int "digit unchanged off-level" a cv.(j))
        cu)
    f23.BG.graph

let test_figure_3_4_sample_edges () =
  (* Figure 3.4: (0,000) connects to level-1 columns 000 and 100
     (digit 0 replaced). *)
  let enc l c = BG.encode f23 ~level:l ~column:(W.of_string f23.BG.p c) in
  Alcotest.(check (list int)) "succ of (0,000)"
    [ enc 1 "000"; enc 1 "100" ]
    (BG.successors f23 (enc 0 "000"));
  Alcotest.(check (list int)) "succ of (2,110)"
    [ enc 0 "110"; enc 0 "111" ]
    (BG.successors f23 (enc 2 "110"))

let test_s_class_partition () =
  (* The classes S_x partition the butterfly nodes: every butterfly node
     belongs to exactly one class (Figure 3.5 / [ABR90]). *)
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let p = t.BG.p in
      let counts = Hashtbl.create 64 in
      for v = 0 to BG.n_nodes t - 1 do
        let x = BG.de_bruijn_class t v in
        check_int "s_node roundtrip" v (BG.s_node t (BG.level t v) x);
        Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
      done;
      check_int "d^n classes" p.W.size (Hashtbl.length counts);
      Hashtbl.iter (fun _ c -> check_int "n nodes per class" p.W.n c) counts)
    [ (2, 3); (3, 2); (2, 4); (3, 3) ]

let test_lemma_3_8 () =
  (* If (x,y) is a De Bruijn edge then level-i of S_x connects to
     level-(i+1) of S_y. *)
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let p = t.BG.p in
      let b = Debruijn.Graph.b p in
      DG.iter_edges
        (fun x y ->
          for i = 0 to n - 1 do
            check_bool "butterfly edge exists" true
              (DG.mem_edge t.BG.graph (BG.s_node t i x) (BG.s_node t ((i + 1) mod n) y))
          done)
        b)
    [ (2, 3); (3, 2); (2, 4) ]

let test_edge_projection () =
  (* Converse direction: every butterfly edge projects to a De Bruijn
     edge, consistently with s_node. *)
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let p = t.BG.p in
      let b = Debruijn.Graph.b p in
      DG.iter_edges
        (fun u v ->
          let x, y = BG.edge_to_de_bruijn t (u, v) in
          check_bool "projects to B edge" true (DG.mem_edge b x y))
        t.BG.graph)
    [ (2, 3); (3, 2); (3, 4) ]

let test_lemma_3_9_example () =
  (* The thesis's example: the 4-cycle (110,100,001,011) of B(2,3) maps
     to a 12-cycle in F(2,3). *)
  let p = f23.BG.p in
  let c = Array.map (W.of_string p) [| "110"; "100"; "001"; "011" |] in
  check_bool "is a B(2,3) cycle" true (C.is_cycle (Debruijn.Graph.b p) c);
  let bc = BE.phi f23 c in
  check_int "LCM(4,3) = 12" 12 (Array.length bc);
  check_bool "is a butterfly cycle" true (C.is_cycle f23.BG.graph bc);
  (* First few nodes as printed in the thesis: (0,110), (1,010), (2,010),
     (0,011) … *)
  let enc l s = BG.encode f23 ~level:l ~column:(W.of_string p s) in
  check_int "start (0,110)" (enc 0 "110") bc.(0);
  check_int "then (1,010)" (enc 1 "010") bc.(1);
  check_int "then (2,010)" (enc 2 "010") bc.(2);
  check_int "then (0,011)" (enc 0 "011") bc.(3)

let test_phi_preserves_cycles () =
  (* Lemma 3.9 over every necklace of a few graphs. *)
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let p = t.BG.p in
      List.iter
        (fun r ->
          let c = Array.of_list (Debruijn.Necklace.nodes p r) in
          let bc = BE.phi t c in
          check_int "length LCM(k,n)" (Numtheory.lcm (Array.length c) n) (Array.length bc);
          check_bool "cycle in butterfly" true (C.is_cycle t.BG.graph bc))
        (Debruijn.Necklace.all_representatives p))
    [ (2, 3); (3, 2); (2, 5); (3, 4) ]

let test_hamiltonian_when_coprime () =
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      match BE.hamiltonian_cycle t with
      | None -> Alcotest.fail "expected an HC"
      | Some hc ->
          check_int "covers all nodes" (BG.n_nodes t) (Array.length hc);
          check_bool "hamiltonian" true (C.is_hamiltonian t.BG.graph hc))
    [ (2, 3); (3, 2); (2, 5); (3, 4); (5, 2); (4, 3) ]

let test_no_hc_when_not_coprime () =
  let t = BG.create ~d:2 ~n:4 in
  check_bool "gcd(2,4) != 1" true (BE.hamiltonian_cycle t = None);
  Alcotest.(check (list (array int))) "no disjoint HCs" [] (BE.disjoint_hamiltonian_cycles t)

let test_prop_3_6_disjoint () =
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let hcs = BE.disjoint_hamiltonian_cycles t in
      check_int "psi(d) cycles" (Dhc.Psi.psi d) (List.length hcs);
      List.iter
        (fun hc -> check_bool "hamiltonian" true (C.is_hamiltonian t.BG.graph hc))
        hcs;
      check_bool "pairwise disjoint" true (C.pairwise_edge_disjoint hcs))
    [ (3, 2); (5, 2); (4, 3); (2, 3); (8, 3); (9, 2) ]

let test_prop_3_5_fault_tolerance () =
  let rng = Util.Rng.create 31 in
  List.iter
    (fun (d, n) ->
      let t = BG.create ~d ~n in
      let tol = Dhc.Psi.max_tolerance d in
      if tol >= 1 then
        for _ = 1 to 15 do
          let f = 1 + Util.Rng.int rng tol in
          (* random butterfly edges *)
          let rec pick acc =
            if List.length acc >= f then acc
            else begin
              let u = Util.Rng.int rng (BG.n_nodes t) in
              let succs = BG.successors t u in
              let v = List.nth succs (Util.Rng.int rng (List.length succs)) in
              if List.mem (u, v) acc then pick acc else pick ((u, v) :: acc)
            end
          in
          let faults = pick [] in
          match BE.hc_avoiding t ~faults with
          | None -> Alcotest.fail (Printf.sprintf "no HC for F(%d,%d)" d n)
          | Some hc ->
              check_bool "hamiltonian" true (C.is_hamiltonian t.BG.graph hc);
              check_bool "avoids faults" true
                (C.avoids_edges hc (fun e -> List.mem e faults))
        done)
    [ (3, 2); (5, 2); (4, 3); (9, 2); (5, 3) ]

let test_encode_bounds () =
  Alcotest.check_raises "bad level" (Invalid_argument "Butterfly.encode: level") (fun () ->
      ignore (BG.encode f23 ~level:3 ~column:0));
  Alcotest.check_raises "bad column" (Invalid_argument "Butterfly.encode: column")
    (fun () -> ignore (BG.encode f23 ~level:0 ~column:9));
  Alcotest.check_raises "non-edge projection"
    (Invalid_argument "Butterfly.edge_to_de_bruijn: not a butterfly edge") (fun () ->
      ignore (BG.edge_to_de_bruijn f23 (0, 0)))

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"s_node / de_bruijn_class roundtrip" ~count:300
      (pair (oneofl [ (2, 3); (3, 2); (2, 4); (3, 4); (4, 3) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let t = BG.create ~d ~n in
        let v = seed mod BG.n_nodes t in
        BG.s_node t (BG.level t v) (BG.de_bruijn_class t v) = v);
    Test.make ~name:"phi of a necklace is a valid butterfly cycle" ~count:200
      (pair (oneofl [ (2, 3); (3, 2); (2, 4); (3, 4) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let t = BG.create ~d ~n in
        let p = t.BG.p in
        let x = seed mod p.W.size in
        let c = Array.of_list (Debruijn.Necklace.nodes p x) in
        let bc = BE.phi t c in
        Array.length bc = Numtheory.lcm (Array.length c) n
        && C.is_cycle t.BG.graph bc);
    Test.make ~name:"butterfly edges project to De Bruijn edges" ~count:300
      (pair (oneofl [ (2, 3); (3, 2); (3, 3) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let t = BG.create ~d ~n in
        let b = Debruijn.Graph.b t.BG.p in
        let u = seed mod BG.n_nodes t in
        List.for_all
          (fun v ->
            let x, y = BG.edge_to_de_bruijn t (u, v) in
            DG.mem_edge b x y)
          (BG.successors t u));
  ]

let () =
  Alcotest.run "butterfly"
    [
      ( "graph",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "edges change one digit" `Quick test_edges_change_one_digit;
          Alcotest.test_case "Figure 3.4 edges" `Quick test_figure_3_4_sample_edges;
          Alcotest.test_case "S-class partition (Fig 3.5)" `Quick test_s_class_partition;
          Alcotest.test_case "Lemma 3.8" `Quick test_lemma_3_8;
          Alcotest.test_case "edge projection" `Quick test_edge_projection;
          Alcotest.test_case "encode bounds" `Quick test_encode_bounds;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "Lemma 3.9 example (12-cycle)" `Quick test_lemma_3_9_example;
          Alcotest.test_case "phi preserves cycles" `Quick test_phi_preserves_cycles;
          Alcotest.test_case "HC when gcd(d,n)=1" `Quick test_hamiltonian_when_coprime;
          Alcotest.test_case "no HC otherwise" `Quick test_no_hc_when_not_coprime;
          Alcotest.test_case "Prop 3.6 disjoint HCs" `Quick test_prop_3_6_disjoint;
          Alcotest.test_case "Prop 3.5 fault tolerance" `Quick test_prop_3_5_fault_tolerance;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
