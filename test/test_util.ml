(* Tests for Util.Rng: splitmix64 substreams and sampling helpers. *)

module Rng = Util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let stream rng k = List.init k (fun _ -> Rng.next rng)

let test_split_deterministic () =
  (* Equal (seed, index) gives the identical substream. *)
  let a = stream (Rng.split 0x5eed 7) 16 in
  let b = stream (Rng.split 0x5eed 7) 16 in
  check_bool "same substream" true (a = b)

let test_split_distinct_indices () =
  (* Distinct indices of one seed — and the same index of different
     seeds — give distinct substreams.  Compare stream prefixes, not
     states (the state is private). *)
  let prefixes =
    List.init 64 (fun i -> stream (Rng.split 0x5eed i) 4)
    @ [ stream (Rng.split 0xbeef 0) 4 ]
  in
  let tbl = Hashtbl.create 128 in
  List.iter (fun s -> Hashtbl.replace tbl s ()) prefixes;
  check_int "all prefixes distinct" (List.length prefixes) (Hashtbl.length tbl)

let test_split_decorrelated_from_create () =
  (* split must not degenerate to create (seed + index): that would make
     adjacent substreams shifted copies of one master stream. *)
  let a = stream (Rng.split 1 0) 8 in
  let b = stream (Rng.create 2) 8 in
  check_bool "split 1 0 <> create 2" true (a <> b)

let test_split_negative_index () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split: negative index") (fun () ->
      ignore (Rng.split 0 (-1)))

let test_int_range () =
  let rng = Rng.split 42 0 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  check_bool "all residues hit" true (Array.for_all Fun.id seen)

let test_sample_distinct () =
  let rng = Rng.split 42 1 in
  for k = 0 to 20 do
    let xs = Rng.sample_distinct rng ~k ~bound:20 in
    check_int "k samples" k (List.length xs);
    check_bool "sorted distinct in range" true
      (List.sort_uniq compare xs = xs && List.for_all (fun x -> x >= 0 && x < 20) xs)
  done

(* Golden pins of the unbiased draw sequences: every campaign statistic
   in the repo is a function of these, so a silent change to the
   rejection sampler would shift all committed baselines and cram pins.
   The values were produced by this implementation and are frozen. *)

let test_int_golden () =
  let rng = Rng.split 0x5eed 3 in
  let xs = List.init 12 (fun _ -> Rng.int rng 1000) in
  check_bool "12 draws at bound 1000" true
    (xs = [ 654; 558; 633; 360; 371; 569; 80; 805; 893; 902; 966; 400 ])

let test_int_bound_one_consumes_nothing () =
  (* bound = 1 is answered without advancing the state — campaigns rely
     on this when a degenerate bound appears mid-stream. *)
  let rng = Rng.split 0x5eed 6 in
  check_int "only residue" 0 (Rng.int rng 1);
  let after = Rng.next rng in
  let fresh = Rng.next (Rng.split 0x5eed 6) in
  check_bool "state untouched" true (Int64.equal after fresh)

let test_sample_distinct_golden () =
  let rng = Rng.split 0x5eed 4 in
  check_bool "Floyd sample" true
    (Rng.sample_distinct rng ~k:6 ~bound:100 = [ 2; 38; 41; 58; 70; 84 ])

let test_shuffle_golden () =
  let rng = Rng.split 0x5eed 5 in
  let arr = Array.init 10 Fun.id in
  Rng.shuffle rng arr;
  check_bool "Fisher-Yates order" true
    (arr = [| 6; 7; 1; 2; 9; 3; 0; 5; 8; 4 |])

let test_shuffle_permutes () =
  let rng = Rng.split 42 2 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check_bool "a permutation" true (sorted = Array.init 50 Fun.id);
  check_bool "actually moved" true (arr <> Array.init 50 Fun.id)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
          Alcotest.test_case "split distinct" `Quick test_split_distinct_indices;
          Alcotest.test_case "split decorrelated" `Quick
            test_split_decorrelated_from_create;
          Alcotest.test_case "split negative index" `Quick test_split_negative_index;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int golden draws" `Quick test_int_golden;
          Alcotest.test_case "int bound 1 is free" `Quick
            test_int_bound_one_consumes_nothing;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "sample_distinct golden" `Quick
            test_sample_distinct_golden;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          Alcotest.test_case "shuffle golden" `Quick test_shuffle_golden;
        ] );
    ]
