(* Tests for Kautz digraphs. *)

module K = Kautz
module D = Graphlib.Digraph
module T = Graphlib.Traversal
module C = Graphlib.Cycle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sizes = [ (2, 1); (2, 2); (2, 3); (2, 4); (3, 2); (3, 3); (4, 2); (4, 3); (5, 2) ]

let test_size () =
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      check_int
        (Printf.sprintf "K(%d,%d)" d n)
        ((d + 1) * Numtheory.pow d (n - 1))
        k.K.size;
      check_int "graph nodes" k.K.size (D.n_nodes k.K.graph))
    sizes

let test_regular () =
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      for v = 0 to k.K.size - 1 do
        check_int "out" d (D.out_degree k.K.graph v);
        check_int "in" d (D.in_degree k.K.graph v)
      done)
    sizes

let test_no_loops () =
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      for v = 0 to k.K.size - 1 do
        check_bool "loop-free" false (D.mem_edge k.K.graph v v)
      done)
    sizes

let test_diameter () =
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      check_int (Printf.sprintf "diam K(%d,%d)" d n) n (K.diameter k))
    [ (2, 1); (2, 2); (2, 3); (2, 4); (3, 2); (3, 3); (4, 2) ]

let test_strongly_connected () =
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      check_bool "strong" true (T.is_strongly_connected k.K.graph (fun _ -> true)))
    sizes

let test_encode_decode () =
  let k = K.create ~d:3 ~n:3 in
  for v = 0 to k.K.size - 1 do
    let letters = K.decode k v in
    check_int "roundtrip" v (K.encode k letters);
    (* adjacent letters distinct, letters in range *)
    Array.iteri
      (fun i x ->
        check_bool "range" true (x >= 0 && x <= 3);
        if i > 0 then check_bool "adjacent distinct" true (x <> letters.(i - 1)))
      letters
  done;
  Alcotest.check_raises "repeated letters rejected"
    (Invalid_argument "Kautz.encode: adjacent letters equal") (fun () ->
      ignore (K.encode k [| 0; 0; 1 |]))

let test_successor_semantics () =
  (* x₁…xₙ → x₂…xₙa with a ≠ xₙ *)
  let k = K.create ~d:3 ~n:3 in
  for v = 0 to k.K.size - 1 do
    let lv = K.decode k v in
    List.iter
      (fun w ->
        let lw = K.decode k w in
        check_int "shift 1" lv.(1) lw.(0);
        check_int "shift 2" lv.(2) lw.(1);
        check_bool "new letter differs" true (lw.(2) <> lv.(2)))
      (K.successors k v)
  done

let test_line_graph () =
  (* K(d,n+1) = L(K(d,n)) *)
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      let k' = K.create ~d ~n:(n + 1) in
      (* bijection: every edge maps to a distinct node of K(d,n+1) *)
      let seen = Hashtbl.create 256 in
      D.iter_edges
        (fun u v ->
          let z = K.edge_as_higher_node k (u, v) in
          check_bool "unseen" false (Hashtbl.mem seen z);
          Hashtbl.add seen z ())
        k.K.graph;
      check_int "edge count = node count above" k'.K.size (Hashtbl.length seen);
      (* adjacency preserved *)
      D.iter_edges
        (fun u v ->
          List.iter
            (fun w ->
              check_bool "line adjacency" true
                (D.mem_edge k'.K.graph
                   (K.edge_as_higher_node k (u, v))
                   (K.edge_as_higher_node k (v, w))))
            (D.succs k.K.graph v))
        k.K.graph)
    [ (2, 1); (2, 2); (3, 2) ]

let test_hamiltonian () =
  (* Kautz graphs are Hamiltonian (line graphs of Eulerian graphs). *)
  List.iter
    (fun (d, n) ->
      let k = K.create ~d ~n in
      match Hamsearch.Search.hamiltonian ~budget:3_000_000 k.K.graph with
      | Hamsearch.Search.Found c ->
          check_bool "valid" true (C.is_hamiltonian k.K.graph c)
      | _ -> Alcotest.fail (Printf.sprintf "K(%d,%d) should be Hamiltonian" d n))
    [ (2, 2); (2, 3); (3, 2); (2, 4); (3, 3); (4, 2) ]

let test_k32_decomposition () =
  (* the open-problems bench finding: K(3,2) decomposes into 3 HCs *)
  let k = K.create ~d:3 ~n:2 in
  match Hamsearch.Search.disjoint_hamiltonian_cycles ~budget:5_000_000 ~k:3 k.K.graph with
  | Some cs, _ ->
      check_int "3 cycles" 3 (List.length cs);
      check_bool "disjoint" true (C.pairwise_edge_disjoint cs);
      (* 3 disjoint HCs of 12 nodes use all 36 = 12·3 edges: a full
         Hamiltonian decomposition *)
      check_int "full decomposition" (D.n_edges k.K.graph)
        (3 * D.n_nodes k.K.graph)
  | None, _ -> Alcotest.fail "K(3,2) decomposes into 3 HCs"

let test_k22_single_hc_only () =
  let k = K.create ~d:2 ~n:2 in
  match Hamsearch.Search.disjoint_hamiltonian_cycles ~budget:2_000_000 ~k:2 k.K.graph with
  | None, false -> ()  (* conclusive: no 2 disjoint HCs *)
  | None, true -> Alcotest.fail "budget should suffice for K(2,2)"
  | Some _, _ -> Alcotest.fail "K(2,2) has only 1 HC in any disjoint family"

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"decode/encode roundtrip" ~count:300
      (pair (oneofl [ (2, 2); (2, 4); (3, 3); (4, 2); (5, 2) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let k = K.create ~d ~n in
        let v = seed mod k.K.size in
        K.encode k (K.decode k v) = v);
    Test.make ~name:"successors satisfy the Kautz constraint" ~count:300
      (pair (oneofl [ (2, 3); (3, 2); (3, 3); (4, 2) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let k = K.create ~d ~n in
        let v = seed mod k.K.size in
        List.for_all
          (fun w ->
            let l = K.decode k w in
            Array.for_all Fun.id
              (Array.mapi (fun i x -> i = 0 || x <> l.(i - 1)) l))
          (K.successors k v));
    Test.make ~name:"edge lift lands in K(d,n+1)" ~count:200
      (pair (oneofl [ (2, 2); (3, 2) ]) (int_range 0 1_000_000))
      (fun ((d, n), seed) ->
        let k = K.create ~d ~n in
        let k' = K.create ~d ~n:(n + 1) in
        let v = seed mod k.K.size in
        List.for_all
          (fun w ->
            let z = K.edge_as_higher_node k (v, w) in
            z >= 0 && z < k'.K.size)
          (K.successors k v));
  ]

let () =
  Alcotest.run "kautz"
    [
      ( "structure",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "regular" `Quick test_regular;
          Alcotest.test_case "no loops" `Quick test_no_loops;
          Alcotest.test_case "diameter = n" `Quick test_diameter;
          Alcotest.test_case "strongly connected" `Quick test_strongly_connected;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "successor semantics" `Quick test_successor_semantics;
          Alcotest.test_case "line graph" `Quick test_line_graph;
        ] );
      ( "hamiltonicity",
        [
          Alcotest.test_case "Hamiltonian" `Quick test_hamiltonian;
          Alcotest.test_case "K(3,2) full decomposition" `Quick test_k32_decomposition;
          Alcotest.test_case "K(2,2) single HC" `Quick test_k22_single_hc_only;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
