(* Tests for Chapter 2: the fault-free cycle algorithm. *)

module W = Debruijn.Word
module Nk = Debruijn.Necklace
module B = Ffc.Bstar
module A = Ffc.Adjacency
module Sp = Ffc.Spanning
module E = Ffc.Embed
module Dist = Ffc.Distributed
module Fa = Graphlib.Flatarr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let p33 = W.params ~d:3 ~n:3

let example_faults = [ W.of_string p33 "020"; W.of_string p33 "112" ]

let example_bstar () =
  Option.get (B.compute ~root_hint:(W.of_string p33 "000") p33 ~faults:example_faults)

(* ------------------------------------------------------------------ *)
(* B* *)

let test_bstar_example () =
  let b = example_bstar () in
  check_int "21 nodes survive" 21 b.B.size;
  check_int "root is 000" (W.of_string p33 "000") b.B.root;
  check_bool "faulty node flagged" true (b.B.necklace_faulty.{W.of_string p33 "020"} <> 0);
  check_bool "rotation of faulty flagged" true (b.B.necklace_faulty.{W.of_string p33 "200"} <> 0);
  check_bool "live node kept" true (b.B.in_bstar.{W.of_string p33 "012"} <> 0);
  check_bool "strongly connected" true (B.is_strongly_connected b);
  check_int "9 live necklaces" 9 (B.necklace_count b)

let test_bstar_no_faults () =
  let b = Option.get (B.compute p33 ~faults:[]) in
  check_int "everything" 27 b.B.size;
  check_int "root is minimal rep" 0 b.B.root

let test_bstar_all_faulty () =
  let p = W.params ~d:2 ~n:2 in
  (* Faults covering all four necklaces of B(2,2). *)
  let faults = List.map (W.of_string p) [ "00"; "01"; "11" ] in
  check_bool "empty" true (B.compute p ~faults = None)

let test_bstar_component_of () =
  (* d=2, wt(x)=1 fault isolates 0^n's side: removing N(0...01)
     disconnects node 0000... from the rest?  Per Prop 2.3, removing a
     weight-1 necklace leaves the weight-0 node isolated. *)
  let p = W.params ~d:2 ~n:4 in
  let fault = W.of_string p "0001" in
  let big = Option.get (B.compute p ~faults:[ fault ]) in
  (* 16 − 4 (faulty necklace) − 1 (isolated 0000) = 11 *)
  check_int "largest component size" 11 big.B.size;
  let isolated = B.component_of p ~faults:[ fault ] (W.of_string p "0000") in
  check_int "0000 isolated" 1 (Option.get isolated).B.size;
  check_bool "faulty node has no component" true
    (B.component_of p ~faults:[ fault ] fault = None)

let test_bstar_component_members_order () =
  (* Same scenario as component_of: B(2,4), faulty necklace of 0001 =
     {1, 2, 4, 8}, isolating 0000.  component_members must return the
     symmetric-BFS discovery order (successors then predecessors per
     node) in O(component), not a filter over the full node list —
     which would come back ascending. *)
  let p = W.params ~d:2 ~n:4 in
  let faults = [ W.of_string p "0001" ] in
  Alcotest.(check (array int)) "isolated node" [| 0 |]
    (B.component_members p ~faults 0);
  Alcotest.(check (array int)) "discovery order from 1111"
    [| 15; 14; 7; 12; 13; 3; 11; 9; 6; 10; 5 |]
    (B.component_members p ~faults 15);
  Alcotest.(check (array int)) "faulty node" [||] (B.component_members p ~faults 1)

let test_bstar_root_hint () =
  let b =
    Option.get (B.compute ~root_hint:(W.of_string p33 "221") p33 ~faults:example_faults)
  in
  (* hint 221 normalizes to its necklace representative 122. *)
  check_int "root canonicalized" (W.of_string p33 "122") b.B.root

let test_bstar_eccentricity () =
  let b = example_bstar () in
  let ecc = B.eccentricity_of_root b in
  check_bool "ecc within [n, 2n]" true (ecc >= 3 && ecc <= 6);
  check_bool "diameter >= ecc" true (B.diameter b >= ecc)

(* ------------------------------------------------------------------ *)
(* N* (Figure 2.3) *)

let test_adjacency_figure_2_3 () =
  let b = example_bstar () in
  let adj = A.build b in
  check_int "9 necklaces" 9 (Array.length adj.A.reps);
  let idx s = A.index_of_rep adj (W.of_string p33 s) in
  let labels a bb = List.map (W.to_string (W.params ~d:3 ~n:2)) (A.labels_between adj (idx a) (idx bb)) in
  (* Edges of Figure 2.3, derived by hand from the definition: an edge
     labeled w joins two live necklaces holding αw and βw, α ≠ β.
     E.g. suffix 10 is held by 010 ∈ [001], 110 ∈ [011], 210 ∈ [021] —
     a 10-labeled triangle. *)
  Alcotest.(check (list string)) "[000]-[001]" [ "00" ] (labels "000" "001");
  Alcotest.(check (list string)) "[001]-[011]" [ "01"; "10" ] (labels "001" "011");
  Alcotest.(check (list string)) "[011]-[111]" [ "11" ] (labels "011" "111");
  Alcotest.(check (list string)) "[001]-[021]" [ "10" ] (labels "001" "021");
  Alcotest.(check (list string)) "[011]-[021]" [ "10" ] (labels "011" "021");
  Alcotest.(check (list string)) "[021]-[022]" [ "02" ] (labels "021" "022");
  Alcotest.(check (list string)) "[021]-[122]" [ "21" ] (labels "021" "122");
  Alcotest.(check (list string)) "[012]-[022]" [ "20" ] (labels "012" "022");
  Alcotest.(check (list string)) "[012]-[122]" [ "12" ] (labels "012" "122");
  Alcotest.(check (list string)) "[122]-[222]" [ "22" ] (labels "122" "222");
  Alcotest.(check (list string)) "[011]-[012]" [ "01" ] (labels "011" "012");
  (* Symmetry of N*. *)
  let edges = A.edges adj in
  List.iter
    (fun (i, j, w) ->
      check_bool "antiparallel twin" true (List.mem (j, i, w) edges))
    edges;
  check_bool "connected" true (A.is_connected adj);
  (* no edges between non-adjacent necklaces *)
  Alcotest.(check (list string)) "[000]-[111]" [] (labels "000" "111")

let test_adjacency_entry_exit () =
  let b = example_bstar () in
  let adj = A.build b in
  let p2 = W.params ~d:3 ~n:2 in
  let idx s = A.index_of_rep adj (W.of_string p33 s) in
  (* necklace [011] contains 101 = α·01 with α=1 (exit for w=01) and
     011 = 01·β with β=1 (entry for w=01). *)
  Alcotest.(check (option int)) "exit 101" (Some (W.of_string p33 "101"))
    (A.node_with_suffix adj (idx "011") (W.of_string p2 "01"));
  Alcotest.(check (option int)) "entry 011" (Some (W.of_string p33 "011"))
    (A.node_with_prefix adj (idx "011") (W.of_string p2 "01"));
  Alcotest.(check (option int)) "no exit for foreign w" None
    (A.node_with_suffix adj (idx "000") (W.of_string p2 "12"))

let test_adjacency_unique_alpha_w () =
  (* A necklace contains at most one node αw for a given w (weight
     argument in §2.2) — check exhaustively on a fault-free B(3,3). *)
  let b = Option.get (B.compute p33 ~faults:[]) in
  let adj = A.build b in
  let p2 = W.params ~d:3 ~n:2 in
  Array.iteri
    (fun i _ ->
      for w = 0 to p2.W.size - 1 do
        let hits =
          List.filter
            (fun a -> adj.A.idx_of_node.{W.cons p33 a w} = i)
            [ 0; 1; 2 ]
        in
        check_bool "at most one" true (List.length hits <= 1)
      done)
    adj.A.reps

(* ------------------------------------------------------------------ *)
(* spanning tree and modified tree *)

let test_spanning_height_one () =
  let b = example_bstar () in
  let t = Sp.build (A.build b) in
  check_bool "height one" true (Sp.check_height_one t);
  check_int "spanning: 8 tree edges for 9 necklaces" 8 (List.length (Sp.tree_edges t))

let test_spanning_height_one_random () =
  let rng = Util.Rng.create 7 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 25 do
        let f = 1 + Util.Rng.int rng (d + 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> ()
        | Some b ->
            let t = Sp.build (A.build b) in
            check_bool "height one" true (Sp.check_height_one t);
            let m = Sp.modify t in
            check_bool "spanning subgraph" true (Sp.is_spanning_subgraph m)
      done)
    [ (2, 5); (3, 3); (4, 2); (5, 2); (3, 4) ]

let test_modified_groups () =
  let b = example_bstar () in
  let m = Sp.modify (Sp.build (A.build b)) in
  (* Every group has ≥ 2 members and every member has exactly one
     outgoing w-edge. *)
  List.iter
    (fun (w, members) ->
      check_bool "group size" true (List.length members >= 2);
      List.iter
        (fun idx ->
          check_bool "has out edge" true (Option.is_some (Sp.out_edge m idx w)))
        members)
    (Sp.groups m);
  (* D has as many edges as T edges plus one per group (cycle closing). *)
  let d_edges = Sp.d_edge_count m in
  let t_edges = List.length (Sp.tree_edges m.Sp.tree) in
  check_int "edge count" (t_edges + List.length (Sp.groups m)) d_edges

(* ------------------------------------------------------------------ *)
(* the embedding: Example 2.1 and bounds *)

let test_example_2_1_cycle () =
  let e = E.of_bstar (example_bstar ()) in
  let expected =
    [ "000"; "001"; "011"; "111"; "110"; "101"; "012"; "122"; "222"; "221"; "212";
      "120"; "201"; "010"; "102"; "022"; "220"; "202"; "021"; "210"; "100" ]
  in
  Alcotest.(check (list string)) "the thesis's 21-cycle"
    expected
    (List.map (W.to_string p33) (Array.to_list e.E.cycle));
  check_bool "verified" true (E.verify e)

let test_example_2_1_successors () =
  (* §2.2: "node 120 is followed by its necklace successor 201 …
     node 101 is followed by 012". *)
  let e = E.of_bstar (example_bstar ()) in
  let succ s = e.E.successor.{W.of_string p33 s} in
  check_int "succ 120 = 201" (W.of_string p33 "201") (succ "120");
  check_int "succ 101 = 012" (W.of_string p33 "012") (succ "101")

let test_embed_no_faults () =
  (* With no faults the FFC algorithm produces a full Hamiltonian cycle
     of B(d,n) — a De Bruijn sequence. *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let e = Option.get (E.embed p ~faults:[]) in
      check_int "full length" p.W.size (E.length e);
      check_bool "verified" true (E.verify e);
      let seq = Debruijn.Sequence.sequence_of_cycle p e.E.cycle in
      check_bool "De Bruijn sequence" true (Debruijn.Sequence.is_de_bruijn_sequence p seq))
    [ (2, 3); (2, 4); (2, 5); (2, 6); (3, 3); (4, 2); (4, 3); (5, 2); (3, 4) ]

let test_prop_2_2_bound () =
  (* f ≤ d−2 node failures: cycle length ≥ dⁿ − nf, exhaustively for all
     single faults and randomly for larger f. *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for fault = 0 to p.W.size - 1 do
        let e = Option.get (E.embed p ~faults:[ fault ]) in
        check_bool "single-fault bound" true (E.length e >= E.length_lower_bound p 1);
        check_bool "verified" true (E.verify e)
      done)
    [ (3, 3); (4, 2); (4, 3); (5, 2) ];
  let rng = Util.Rng.create 11 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 40 do
        let f = 1 + Util.Rng.int rng (d - 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        let e = Option.get (E.embed p ~faults) in
        check_bool "bound" true (E.length e >= E.length_lower_bound p f);
        check_bool "verified" true (E.verify e)
      done)
    [ (4, 3); (5, 2); (5, 3); (6, 2); (7, 2) ]

let test_prop_2_2_diameter () =
  (* With f ≤ d−2 the diameter of B* is at most 2n. *)
  let rng = Util.Rng.create 13 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 15 do
        let f = 1 + Util.Rng.int rng (d - 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> Alcotest.fail "B* should be nonempty under d-2 faults"
        | Some b ->
            check_bool "diameter <= 2n" true (B.diameter b <= 2 * n);
            (* B* contains all live necklaces: size = dⁿ − NF. *)
            let nf =
              List.length (List.filter (fun v -> b.B.necklace_faulty.{v} <> 0) (W.all p))
            in
            check_int "no fragmentation" (p.W.size - nf) b.B.size
      done)
    [ (4, 3); (5, 2); (6, 2); (7, 2); (5, 3) ]

let test_prop_2_3_binary_single_fault () =
  (* d = 2, f = 1: cycle length ≥ 2ⁿ − (n+1), for every possible fault. *)
  List.iter
    (fun n ->
      let p = W.params ~d:2 ~n in
      for fault = 0 to p.W.size - 1 do
        let e = Option.get (E.embed p ~faults:[ fault ]) in
        check_bool
          (Printf.sprintf "n=%d fault=%s" n (W.to_string p fault))
          true
          (E.length e >= p.W.size - (n + 1));
        check_bool "verified" true (E.verify e)
      done)
    [ 3; 4; 5; 6; 7; 8 ]

let test_worst_case_optimality () =
  (* The adversarial pattern F = {α^{n−1}(d−1)} achieves exactly
     dⁿ − nf: each faulty node is on a full-length necklace, and no
     cycle can do better (line-graph argument, §2.5). *)
  List.iter
    (fun (d, n, f) ->
      let p = W.params ~d ~n in
      let faults = E.worst_case_faults p f in
      check_int "f distinct faults" f (List.length (List.sort_uniq compare faults));
      let e = Option.get (E.embed p ~faults) in
      check_int
        (Printf.sprintf "d=%d n=%d f=%d" d n f)
        (E.length_lower_bound p f) (E.length e);
      check_bool "verified" true (E.verify e))
    [ (3, 3, 1); (4, 3, 2); (5, 2, 3); (5, 3, 3); (6, 2, 4); (7, 2, 5) ]

let test_worst_case_faults_boundary () =
  (* The adversarial family is only meaningful for f ≤ d − 2 (Prop 2.2
     / §2.5); the boundary is accepted and still achieves the bound
     exactly, one past it is rejected. *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      let f = d - 2 in
      let faults = E.worst_case_faults p f in
      check_int "f = d-2 accepted" f (List.length faults);
      let e = Option.get (E.embed p ~faults) in
      check_int
        (Printf.sprintf "bound attained at f = d-2 on B(%d,%d)" d n)
        (E.length_lower_bound p f) (E.length e);
      check_bool "f = d-1 rejected" true
        (match E.worst_case_faults p (d - 1) with
        | exception Invalid_argument _ -> true
        | _ -> false);
      check_bool "f = d rejected" true
        (match E.worst_case_faults p d with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ (3, 3); (4, 3); (6, 2) ];
  (* f = 0 stays legal and kills nobody. *)
  check_int "f = 0 is the empty pack" 0
    (List.length (E.worst_case_faults (W.params ~d:2 ~n:4) 0))

let test_pancyclic_best_case () =
  (* Best case: if the f faults all sit on one short necklace the cycle
     can be much longer than dⁿ − nf.  E.g. faults on N(0101) in B(2,4)
     kill only 2 nodes. *)
  let p = W.params ~d:2 ~n:4 in
  let faults = [ W.of_string p "0101"; W.of_string p "1010" ] in
  let e = Option.get (E.embed p ~faults) in
  check_int "loses only the short necklace" (16 - 2) (E.length e)

(* ------------------------------------------------------------------ *)
(* distributed implementation *)

let test_distributed_matches_example () =
  let b = example_bstar () in
  let cent = E.of_bstar b in
  let dist = Dist.run b in
  Alcotest.(check (array int)) "identical successor maps" (Fa.to_array cent.E.successor)
    dist.Dist.successor;
  Alcotest.(check (array int)) "identical cycles" cent.E.cycle dist.Dist.cycle

let test_distributed_matches_random () =
  let rng = Util.Rng.create 23 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 12 do
        let f = 1 + Util.Rng.int rng (d + 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> ()
        | Some b ->
            let cent = E.of_bstar b in
            let dist = Dist.run b in
            Alcotest.(check (array int)) "successor maps" (Fa.to_array cent.E.successor)
              dist.Dist.successor
      done)
    [ (2, 5); (2, 7); (3, 3); (3, 4); (4, 3); (5, 2) ]

let test_distributed_round_complexity () =
  (* Θ(n) phases: probe takes exactly n rounds; the whole run is within
     ecc(R) + 3n + c rounds. *)
  let rng = Util.Rng.create 29 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 8 do
        let f = 1 + Util.Rng.int rng (max 1 (d - 2)) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> ()
        | Some b ->
            let dist = Dist.run b in
            let s = dist.Dist.stats in
            (* executed-round counts: each phase includes its round-0
               compute step, so probe = n + 1, broadcast <= ecc + 2. *)
            check_int "probe = n+1 rounds" (n + 1) s.Dist.probe_rounds;
            let ecc = B.eccentricity_of_root b in
            check_bool "broadcast within ecc+2" true (s.Dist.broadcast_rounds <= ecc + 2);
            check_bool "total O(K + n)" true (s.Dist.total_rounds <= ecc + (3 * n) + 9)
      done)
    [ (3, 3); (4, 3); (5, 2); (2, 6) ]

let test_selftimed_matches () =
  (* the fixed-schedule single-program protocol agrees with both the
     centralized algorithm and the orchestrated protocol under the
     f <= d-2 guarantee *)
  let rng = Util.Rng.create 61 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 10 do
        let f = 1 + Util.Rng.int rng (d - 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> ()
        | Some b ->
            let cent = E.of_bstar b in
            let st = Ffc.Selftimed.run b in
            Alcotest.(check (array int)) "successors" (Fa.to_array cent.E.successor)
              st.Ffc.Selftimed.successor;
            Alcotest.(check (array int)) "cycle" cent.E.cycle st.Ffc.Selftimed.cycle
      done)
    [ (3, 3); (4, 3); (5, 2); (5, 3); (6, 2) ]

let test_selftimed_schedule () =
  (* the round count is a fixed function of n, whatever the faults *)
  let p = W.params ~d:5 ~n:3 in
  let lengths =
    List.map
      (fun faults ->
        let b = Option.get (B.compute p ~faults) in
        (Ffc.Selftimed.run b).Ffc.Selftimed.total_rounds)
      [ [ 0 ]; [ 7; 99 ]; [ 1; 2; 3 ] ]
  in
  List.iter
    (fun r ->
      check_bool "within schedule + wind-down" true
        (r <= Ffc.Selftimed.schedule_length ~n:3 + 2))
    lengths;
  check_int "same rounds for all fault patterns" 1
    (List.length (List.sort_uniq compare lengths))

let test_probe_phase_flags () =
  let b = example_bstar () in
  let flags, rounds = Dist.live_necklace_flags b in
  check_int "probe rounds = n+1" 4 rounds;
  Array.iteri
    (fun v live ->
      let faulty_v = List.mem v b.B.faults in
      if faulty_v then check_bool "faulty silent" false live
      else check_bool "flag matches necklace fault" (b.B.necklace_faulty.{v} = 0) live)
    flags

let test_lemma_2_1_arc_structure () =
  (* Lemma 2.1/2.2: H traverses each necklace in contiguous arcs, one
     per outgoing D-edge of that necklace (the incoming→outgoing paths
     of the proof).  Verify the arc count against the modified tree. *)
  let rng = Util.Rng.create 43 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 15 do
        let f = 1 + Util.Rng.int rng (d + 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match B.compute p ~faults with
        | None -> ()
        | Some b ->
            let e = E.of_bstar b in
            let m = e.E.modified in
            let adj = m.Sp.tree.Sp.adj in
            let cyc = e.E.cycle in
            let k = Array.length cyc in
            (* arcs per necklace: positions where H enters the necklace *)
            let entries = Array.make (Array.length adj.A.reps) 0 in
            Array.iteri
              (fun i v ->
                let prev = cyc.(((i - 1) mod k + k) mod k) in
                let nv = adj.A.idx_of_node.{v} and np = adj.A.idx_of_node.{prev} in
                if nv <> np then entries.(nv) <- entries.(nv) + 1)
              cyc;
            (* expected: the number of distinct w with an outgoing D-edge
               (single-necklace B* has zero D-edges and one "arc") *)
            let out_degrees = Array.make (Array.length adj.A.reps) 0 in
            for x = 0 to Fa.length m.Sp.succ_override - 1 do
              if m.Sp.succ_override.{x} >= 0 then begin
                let i = adj.A.idx_of_node.{x} in
                out_degrees.(i) <- out_degrees.(i) + 1
              end
            done;
            Array.iteri
              (fun idx _ ->
                let out_degree = out_degrees.(idx) in
                let expected = max out_degree (if Array.length adj.A.reps = 1 then 0 else out_degree) in
                if Array.length adj.A.reps > 1 then
                  check_int "arcs = D out-degree" expected entries.(idx))
              adj.A.reps
      done)
    [ (3, 3); (4, 3); (2, 6); (5, 2) ]

let test_table_2_2_regression () =
  (* a deterministic, seeded slice of the Table 2.2 experiment pinned as
     a regression value: |component(R)| for B(4,5), f = 5, seed 4501 *)
  let p = W.params ~d:4 ~n:5 in
  let rng = Util.Rng.create 4501 in
  let faults = Util.Rng.sample_distinct rng ~k:5 ~bound:p.W.size in
  let r = 1 in
  let b = Option.get (B.component_of p ~faults r) in
  (* dⁿ − nf = 999 when all five faults land on distinct full necklaces *)
  check_bool "size within [999, 1004]" true (b.B.size >= 999 && b.B.size <= 1004);
  check_bool "strongly connected" true (B.is_strongly_connected b)

(* ------------------------------------------------------------------ *)
(* routing (Proposition 2.2's constructive core) *)

module R = Ffc.Routing

let test_path_p_shape () =
  let p = p33 in
  let x = W.of_string p "012" in
  Alcotest.(check (list string)) "P_1 from 012" [ "012"; "121"; "211"; "111" ]
    (List.map (W.to_string p) (R.path_p p x 1));
  (* every P_a is a valid path ending at a^n *)
  List.iter
    (fun a ->
      let path = R.path_p p x a in
      check_bool "valid" true (R.verify_path p path);
      check_int "length n+1" 4 (List.length path);
      check_int "ends at a^n" (W.constant p a) (List.nth path 3))
    [ 0; 1; 2 ]

let test_path_q_shape () =
  let p = p33 in
  let y = W.of_string p "201" in
  let path = R.path_q p 0 2 y in
  Alcotest.(check (list string)) "Q_2 from 000 to 201"
    [ "000"; "002"; "022"; "220"; "201" ]
    (List.map (W.to_string p) path);
  check_bool "valid" true (R.verify_path p path)

let test_p_paths_necklace_disjoint () =
  (* the proof's first claim: interiors of the P_a are pairwise
     necklace-disjoint, for every source x *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      List.iter
        (fun x ->
          let interiors =
            List.map (fun a -> R.interior_necklaces p (R.path_p p x a)) (List.init d Fun.id)
          in
          let all = List.concat interiors in
          check_int
            (Printf.sprintf "x=%s" (W.to_string p x))
            (List.length all)
            (List.length (List.sort_uniq compare all)))
        (W.all p))
    [ (3, 3); (4, 2); (2, 4) ]

let test_q_paths_necklace_disjoint () =
  (* second claim: interiors of the Q_i (fixed a) are pairwise
     necklace-disjoint, for every target y *)
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      List.iter
        (fun y ->
          List.iter
            (fun a ->
              let interiors =
                List.map
                  (fun i -> R.interior_necklaces p (R.path_q p a i y))
                  (List.init (d - 1) (fun i -> i + 1))
              in
              let all = List.concat interiors in
              check_int "disjoint"
                (List.length all)
                (List.length (List.sort_uniq compare all)))
            (List.init d Fun.id))
        (W.all p))
    [ (3, 3); (4, 2) ]

let test_route_under_faults () =
  let rng = Util.Rng.create 37 in
  List.iter
    (fun (d, n) ->
      let p = W.params ~d ~n in
      for _ = 1 to 60 do
        let f = if d > 2 then 1 + Util.Rng.int rng (d - 2) else 0 in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        let flags = Nk.mark_faulty_necklaces p faults in
        let x = Util.Rng.int rng p.W.size and y = Util.Rng.int rng p.W.size in
        if (not flags.(x)) && not flags.(y) then begin
          match R.route p ~faulty_necklace:(fun v -> flags.(v)) x y with
          | None -> Alcotest.fail "route must exist under d-2 necklace faults"
          | Some path ->
              check_bool "valid edges" true (R.verify_path p path);
              check_bool "fault-free" true (List.for_all (fun v -> not flags.(v)) path);
              check_int "starts at x" x (List.hd path);
              check_int "ends at y" y (List.nth path (List.length path - 1));
              check_bool "length <= 2n" true (List.length path <= (2 * n) + 1)
        end
      done)
    [ (3, 3); (4, 3); (5, 2); (5, 3); (7, 2) ]

let test_route_edge_cases () =
  let p = p33 in
  let no_fault _ = false in
  Alcotest.(check (option (list int))) "x = y" (Some [ 5 ]) (R.route p ~faulty_necklace:no_fault 5 5);
  (* faulty endpoint *)
  check_bool "faulty source" true (R.route p ~faulty_necklace:(fun v -> v = 5) 5 7 = None);
  (* route to a constant node *)
  (match R.route p ~faulty_necklace:no_fault (W.of_string p "012") (W.of_string p "222") with
  | Some path -> check_bool "valid" true (R.verify_path p path)
  | None -> Alcotest.fail "route to 222 must exist");
  (* route from a constant node *)
  match R.route p ~faulty_necklace:no_fault (W.of_string p "000") (W.of_string p "121") with
  | Some path ->
      check_bool "valid" true (R.verify_path p path);
      (* loop erasure must have produced a simple path *)
      check_int "simple" (List.length path) (List.length (List.sort_uniq compare path))
  | None -> Alcotest.fail "route from 000 must exist"

(* ------------------------------------------------------------------ *)
(* million-node acceptance run — a few seconds of work, so only when
   asked for explicitly (NETSIM_BIG=1); `bench scale` always runs the
   same check.  Distributed FFC on B(2,17) (131072 nodes, one fault)
   must reproduce the centralized construction exactly. *)

let test_distributed_b217 () =
  match Sys.getenv_opt "NETSIM_BIG" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> (
      let p = W.params ~d:2 ~n:17 in
      match B.compute p ~faults:[ 1 ] with
      | None -> Alcotest.fail "B(2,17) f=1: no live necklace"
      | Some b ->
          let emb = E.of_bstar b in
          let dist = Dist.run ~domains:2 b in
          Alcotest.(check bool)
            "successor maps identical" true
            (dist.Dist.successor = Fa.to_array emb.E.successor);
          Alcotest.(check bool)
            "cycles identical" true
            (dist.Dist.cycle = emb.E.cycle))

(* B(2,20) (1M nodes, one fault) through the implicit pipeline — the
   flat-state acceptance run, gated like the netsim one. *)
let test_implicit_b220 () =
  match Sys.getenv_opt "NETSIM_BIG" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> (
      let p = W.params ~d:2 ~n:20 in
      match E.embed p ~faults:[ 1 ] with
      | None -> Alcotest.fail "B(2,20) f=1: no live necklace"
      | Some e ->
          check_bool "verify" true (E.verify e);
          check_int "cycle covers B*" e.E.bstar.B.size (E.length e))

(* B(2,27) (134M nodes, one fault) — the multicore acceptance instance
   from the work-stealing PR.  The off-heap arena keeps the OCaml heap
   flat (~zero minor words per node); wall-clock is dominated by the
   parallel BFS.  Nightly big-instances job only. *)
let test_embed_b227 () =
  match Sys.getenv_opt "NETSIM_BIG" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> (
      let p = W.params ~d:2 ~n:27 in
      match E.embed ~domains:4 p ~faults:[ 1 ] with
      | None -> Alcotest.fail "B(2,27) f=1: no live necklace"
      | Some e ->
          check_bool "verify" true (E.verify e);
          check_int "cycle covers B*" e.E.bstar.B.size (E.length e);
          check_bool "Prop 2.3 bound" true (E.length e >= p.W.size - 28))

(* ?domains:2 must be bit-identical to the sequential run; B(2,13) is
   the smallest binary instance whose middle BFS levels exceed
   Itopo.par_threshold, so the parallel expansion genuinely fires. *)
let test_embed_domains_identical () =
  let p = W.params ~d:2 ~n:13 in
  let faults = [ 1 ] in
  let seq = Option.get (E.embed p ~faults) in
  let par = Option.get (E.embed ~domains:2 p ~faults) in
  check_bool "successor maps identical" true (seq.E.successor = par.E.successor);
  check_bool "cycles identical" true (seq.E.cycle = par.E.cycle)

(* ------------------------------------------------------------------ *)
(* workspace arena *)

(* Compare a workspace run against the fresh-allocation pipeline on
   every observable: the ws embed's fields alias arena storage, so all
   comparisons happen before the workspace's next use. *)
let check_ws_matches_fresh ?domains p ws faults =
  match (E.embed ?domains p ~faults, E.embed ?domains ~ws p ~faults) with
  | None, None -> ()
  | Some fresh, Some wse ->
      check_int "root" fresh.E.bstar.B.root wse.E.bstar.B.root;
      check_int "size" fresh.E.bstar.B.size wse.E.bstar.B.size;
      check_bool "in_bstar" true (fresh.E.bstar.B.in_bstar = wse.E.bstar.B.in_bstar);
      check_bool "successor" true (fresh.E.successor = wse.E.successor);
      check_bool "cycle" true (fresh.E.cycle = wse.E.cycle);
      check_int "ecc" fresh.E.modified.Sp.tree.Sp.ecc wse.E.modified.Sp.tree.Sp.ecc;
      check_bool "ws verify" true (E.verify ~ws wse)
  | Some _, None -> Alcotest.fail "ws embed lost the ring"
  | None, Some _ -> Alcotest.fail "ws embed invented a ring"

let test_ws_back_to_back () =
  (* One arena, consecutive embeds with different fault sets (including
     none and a B*-shrinking batch): stale state from one trial must not
     leak into the next. *)
  let p = W.params ~d:3 ~n:4 in
  let ws = Ffc.Workspace.create p in
  List.iter
    (check_ws_matches_fresh p ws)
    [
      [ W.of_string p "0201" ];
      [];
      [ W.of_string p "0201"; W.of_string p "1122"; W.of_string p "0001" ];
      List.init 20 (fun i -> (7 * i) mod p.W.size);
      [];
    ]

let test_ws_wrong_params () =
  let ws = Ffc.Workspace.create (W.params ~d:3 ~n:4) in
  Alcotest.check_raises "d/n mismatch"
    (Invalid_argument "Ffc.Workspace: workspace built for a different (d, n)")
    (fun () -> ignore (E.embed ~ws (W.params ~d:2 ~n:6) ~faults:[]))

let test_ws_domains_identical () =
  (* B(2,13): big enough that Itopo's parallel BFS expansion fires, so
     the arena and the domain path are exercised together. *)
  let p = W.params ~d:2 ~n:13 in
  let ws = Ffc.Workspace.create p in
  check_ws_matches_fresh ~domains:2 p ws [ 1; 500; 8000 ];
  check_ws_matches_fresh ~domains:2 p ws [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* campaign *)

let strip_measurements (pt : Ffc.Campaign.point) =
  { pt with Ffc.Campaign.wall_s = 0.; minor_words_per_trial = 0.; major_words_per_trial = 0. }

let test_campaign_identity () =
  (* The bit-identity contract: statistics depend only on (seed, f,
     trial) — not on domain count, and not on whether trials reuse the
     arena or allocate fresh. *)
  let run ?domains ?reuse () =
    List.map strip_measurements
      (Ffc.Campaign.run ?domains ?reuse ~trials:6 ~seed:0xabc ~fs:[ 1; 3; 7 ]
         ~d:3 ~n:3 ())
  in
  let seq = run () in
  check_bool "domains:2 identical" true (run ~domains:2 () = seq);
  check_bool "domains:4 identical" true (run ~domains:4 () = seq);
  check_bool "reuse:false identical" true (run ~reuse:false () = seq)

let test_campaign_bounds () =
  (* In the guaranteed regimes every trial must meet the bound, and the
     campaign must mark exactly those regimes applicable. *)
  let pts = Ffc.Campaign.run ~trials:10 ~fs:[ 1; 2; 3 ] ~d:4 ~n:4 () in
  List.iter
    (fun (pt : Ffc.Campaign.point) ->
      if pt.Ffc.Campaign.f <= 2 then begin
        check_int "bound applies (f <= d-2)" pt.Ffc.Campaign.trials
          pt.Ffc.Campaign.bound_applicable;
        check_int "bound holds" pt.Ffc.Campaign.trials pt.Ffc.Campaign.bound_ok;
        check_int "all embedded" pt.Ffc.Campaign.trials pt.Ffc.Campaign.embedded
      end
      else check_int "no bound at f = d-1" 0 pt.Ffc.Campaign.bound_applicable;
      check_int "all verified" pt.Ffc.Campaign.embedded pt.Ffc.Campaign.verified)
    pts

let test_campaign_binary_single_fault () =
  (* Proposition 2.3: d = 2, f = 1 is covered even though d − 2 < 1. *)
  let p = W.params ~d:2 ~n:8 in
  (match Ffc.Campaign.length_bound p 1 with
  | Some b -> check_int "2^8 - 9" (p.W.size - 9) b
  | None -> Alcotest.fail "Proposition 2.3 bound missing at d = 2, f = 1");
  Alcotest.(check bool)
    "no bound at f = 2" true
    (Option.is_none (Ffc.Campaign.length_bound p 2));
  let pts = Ffc.Campaign.run ~trials:10 ~fs:[ 1 ] ~d:2 ~n:8 () in
  List.iter
    (fun (pt : Ffc.Campaign.point) ->
      check_int "applicable" pt.Ffc.Campaign.trials pt.Ffc.Campaign.bound_applicable;
      check_int "holds" pt.Ffc.Campaign.trials pt.Ffc.Campaign.bound_ok)
    pts

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  let scenario =
    Gen.(
      oneofl [ (2, 5); (2, 6); (3, 3); (3, 4); (4, 2); (4, 3); (5, 2) ] >>= fun (d, n) ->
      int_range 1 6 >>= fun f ->
      int_range 0 1000000 >>= fun seed -> return (d, n, f, seed))
  in
  [
    Test.make ~name:"FFC output is always a fault-free cycle of B*" ~count:150
      (make scenario) (fun (d, n, f, seed) ->
        let p = W.params ~d ~n in
        let rng = Util.Rng.create seed in
        let f = min f (p.W.size - 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match E.embed p ~faults with
        | None -> true
        | Some e -> E.verify e);
    Test.make ~name:"cycle length = |B*| always" ~count:150 (make scenario)
      (fun (d, n, f, seed) ->
        let p = W.params ~d ~n in
        let rng = Util.Rng.create seed in
        let f = min f (p.W.size - 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match E.embed p ~faults with
        | None -> true
        | Some e -> E.length e = e.E.bstar.B.size);
    Test.make ~name:"implicit pipeline = frozen list-based reference" ~count:150
      (make scenario) (fun (d, n, f, seed) ->
        let p = W.params ~d ~n in
        let rng = Util.Rng.create seed in
        let f = min f (p.W.size - 1) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match (E.embed p ~faults, Ffc.Reference.embed p ~faults) with
        | None, None -> true
        | Some e, Some r ->
            e.E.bstar.B.root = r.Ffc.Reference.root
            && e.E.bstar.B.size = r.Ffc.Reference.size
            && Fa.Byte.to_bool_array e.E.bstar.B.in_bstar = r.Ffc.Reference.in_bstar
            && Fa.to_array e.E.successor = r.Ffc.Reference.successor
            && e.E.cycle = r.Ffc.Reference.cycle
        | _ -> false);
    Test.make ~name:"length >= d^n - nf whenever f <= d-2" ~count:150 (make scenario)
      (fun (d, n, f, seed) ->
        let p = W.params ~d ~n in
        let rng = Util.Rng.create seed in
        let f = min f (max 0 (d - 2)) in
        QCheck.assume (f >= 1);
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
        match E.embed p ~faults with
        | None -> false
        | Some e -> E.length e >= E.length_lower_bound p f);
    (* One workspace per (d, n), cached across the whole qcheck run —
       every case after the first per instance is a genuine arena
       *reuse*, so stale-state leaks are what this property hunts. *)
    (let cache = Hashtbl.create 8 in
     Test.make ~name:"workspace pipeline = fresh pipeline" ~count:150
       (make scenario) (fun (d, n, f, seed) ->
         let p = W.params ~d ~n in
         let ws =
           match Hashtbl.find_opt cache (d, n) with
           | Some ws -> ws
           | None ->
               let ws = Ffc.Workspace.create p in
               Hashtbl.add cache (d, n) ws;
               ws
         in
         let rng = Util.Rng.create seed in
         let f = min f (p.W.size - 1) in
         let faults = Util.Rng.sample_distinct rng ~k:f ~bound:p.W.size in
         match (E.embed p ~faults, E.embed ~ws p ~faults) with
         | None, None -> true
         | Some fresh, Some wse ->
             fresh.E.bstar.B.root = wse.E.bstar.B.root
             && fresh.E.bstar.B.size = wse.E.bstar.B.size
             && fresh.E.bstar.B.in_bstar = wse.E.bstar.B.in_bstar
             && fresh.E.successor = wse.E.successor
             && fresh.E.cycle = wse.E.cycle
             && fresh.E.modified.Sp.tree.Sp.ecc = wse.E.modified.Sp.tree.Sp.ecc
             && E.verify ~ws wse
         | _ -> false));
  ]

let () =
  Alcotest.run "ffc"
    [
      ( "bstar",
        [
          Alcotest.test_case "example 2.1 B*" `Quick test_bstar_example;
          Alcotest.test_case "no faults" `Quick test_bstar_no_faults;
          Alcotest.test_case "all faulty" `Quick test_bstar_all_faulty;
          Alcotest.test_case "component_of / isolation" `Quick test_bstar_component_of;
          Alcotest.test_case "component_members discovery order" `Quick
            test_bstar_component_members_order;
          Alcotest.test_case "root hint" `Quick test_bstar_root_hint;
          Alcotest.test_case "eccentricity" `Quick test_bstar_eccentricity;
        ] );
      ( "adjacency",
        [
          Alcotest.test_case "Figure 2.3" `Quick test_adjacency_figure_2_3;
          Alcotest.test_case "entry/exit nodes" `Quick test_adjacency_entry_exit;
          Alcotest.test_case "unique alpha-w per necklace" `Quick test_adjacency_unique_alpha_w;
        ] );
      ( "spanning",
        [
          Alcotest.test_case "height-one (example)" `Quick test_spanning_height_one;
          Alcotest.test_case "height-one (random)" `Quick test_spanning_height_one_random;
          Alcotest.test_case "modified tree groups" `Quick test_modified_groups;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "Example 2.1 cycle" `Quick test_example_2_1_cycle;
          Alcotest.test_case "Example 2.1 successors" `Quick test_example_2_1_successors;
          Alcotest.test_case "no faults = De Bruijn sequence" `Quick test_embed_no_faults;
          Alcotest.test_case "Prop 2.2 length bound" `Quick test_prop_2_2_bound;
          Alcotest.test_case "Prop 2.2 diameter/size" `Quick test_prop_2_2_diameter;
          Alcotest.test_case "Prop 2.3 binary single fault" `Quick test_prop_2_3_binary_single_fault;
          Alcotest.test_case "worst-case optimality" `Quick test_worst_case_optimality;
          Alcotest.test_case "worst-case fault-pack boundary" `Quick test_worst_case_faults_boundary;
          Alcotest.test_case "best case (short necklace)" `Quick test_pancyclic_best_case;
          Alcotest.test_case "Lemma 2.1 arc structure" `Quick test_lemma_2_1_arc_structure;
          Alcotest.test_case "Table 2.2 regression slice" `Quick test_table_2_2_regression;
          Alcotest.test_case "domains:2 bit-identical" `Quick test_embed_domains_identical;
          Alcotest.test_case "B(2,20) implicit acceptance (NETSIM_BIG=1)" `Slow
            test_implicit_b220;
          Alcotest.test_case "B(2,27) multicore acceptance (NETSIM_BIG=1)" `Slow
            test_embed_b227;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "back-to-back reuse" `Quick test_ws_back_to_back;
          Alcotest.test_case "wrong params rejected" `Quick test_ws_wrong_params;
          Alcotest.test_case "ws + domains:2 bit-identical" `Quick
            test_ws_domains_identical;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bit-identical across domains/reuse" `Quick
            test_campaign_identity;
          Alcotest.test_case "Prop 2.2 bounds hold" `Quick test_campaign_bounds;
          Alcotest.test_case "Prop 2.3 d=2 f=1" `Quick test_campaign_binary_single_fault;
        ] );
      ( "routing",
        [
          Alcotest.test_case "P_a shape" `Quick test_path_p_shape;
          Alcotest.test_case "Q_i shape" `Quick test_path_q_shape;
          Alcotest.test_case "P paths necklace-disjoint" `Quick test_p_paths_necklace_disjoint;
          Alcotest.test_case "Q paths necklace-disjoint" `Quick test_q_paths_necklace_disjoint;
          Alcotest.test_case "route under faults" `Quick test_route_under_faults;
          Alcotest.test_case "route edge cases" `Quick test_route_edge_cases;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "matches centralized (example)" `Quick test_distributed_matches_example;
          Alcotest.test_case "matches centralized (random)" `Quick test_distributed_matches_random;
          Alcotest.test_case "round complexity" `Quick test_distributed_round_complexity;
          Alcotest.test_case "self-timed matches" `Quick test_selftimed_matches;
          Alcotest.test_case "self-timed fixed schedule" `Quick test_selftimed_schedule;
          Alcotest.test_case "probe flags" `Quick test_probe_phase_flags;
          Alcotest.test_case "B(2,17) matches centralized (NETSIM_BIG=1)" `Slow
            test_distributed_b217;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
