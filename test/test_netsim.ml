(* Tests for the synchronous message-passing simulator.

   [Netsim.Simulator] is the optimized worklist engine; [Netsim.Reference]
   is the seed full-scan implementation kept as an executable spec.  The
   qcheck suite at the bottom checks that the two agree on random
   protocols over random B(d,n) topologies with random fault sets. *)

module D = Graphlib.Digraph
module T = Graphlib.Traversal
module S = Netsim.Simulator
module R = Netsim.Reference

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_faults _ = false

(* A flooding protocol computing BFS distance from a root: state is the
   best-known distance (max_int = unknown); the root seeds at round 0
   and every improvement is re-broadcast to all out-neighbors. *)
let flood_protocol root g : (int, int) S.protocol =
  {
    initial = (fun v -> if v = root then 0 else max_int);
    step =
      (fun ~round v state inbox ->
        let best = List.fold_left (fun acc (_, d) -> min acc (d + 1)) state inbox in
        let improved = best < state in
        let should_broadcast = improved || (round = 0 && v = root) in
        let sends =
          if should_broadcast then List.map (fun w -> (w, best)) (D.succs g v) else []
        in
        (best, sends));
    wants_step = (fun _ -> false);
  }

let ring n = D.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_flood_ring () =
  let g = ring 8 in
  let r = S.run ~topology:g ~faulty:no_faults (flood_protocol 0 g) in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5; 6; 7 |] r.S.states;
  (* Node 7 improves in round 7 (= eccentricity) and re-broadcasts; its
     message is delivered back to node 0 in round 8, the last round
     with activity — so rounds 0..8, i.e. 9 executed rounds. *)
  check_int "rounds = eccentricity + 2" 9 r.S.rounds;
  check_int "trace has one entry per round" 9 (Array.length r.S.trace);
  check_int "round 0 steps everyone" 8 r.S.trace.(0).S.active;
  check_int "last round delivers one message" 1 r.S.trace.(8).S.delivered_in_round

let test_flood_matches_bfs () =
  (* Random-ish graph, compare protocol result with centralized BFS. *)
  let edges =
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (4, 0); (2, 5); (5, 6); (6, 2); (4, 7); (7, 8); (8, 9); (9, 4); (1, 9) ]
  in
  let g = D.of_edges 10 edges in
  let r = S.run ~topology:g ~faulty:no_faults (flood_protocol 0 g) in
  let expected = T.bfs_dist g 0 in
  Array.iteri
    (fun v d ->
      let got = if r.S.states.(v) = max_int then -1 else r.S.states.(v) in
      check_int (Printf.sprintf "node %d" v) d got)
    expected

let test_flood_with_fault () =
  (* Killing node 3 on a line 0->1->2->3->4 stops the flood at 2. *)
  let g = D.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let r = S.run ~topology:g ~faulty:(fun v -> v = 3) (flood_protocol 0 g) in
  check_int "node 2 reached" 2 r.S.states.(2);
  check_bool "node 4 not reached" true (r.S.states.(4) = max_int);
  (* Faulty node's state stays initial. *)
  check_bool "faulty state untouched" true (r.S.states.(3) = max_int)

let test_faulty_source_sends_nothing () =
  let g = ring 4 in
  let r = S.run ~topology:g ~faulty:(fun v -> v = 0) (flood_protocol 0 g) in
  check_bool "nobody reached" true (Array.for_all (fun s -> s = max_int || s = 0) r.S.states);
  check_int "no deliveries" 0 r.S.delivered

let test_all_faulty () =
  let g = ring 4 in
  let r = S.run ~topology:g ~faulty:(fun _ -> true) (flood_protocol 0 g) in
  check_int "zero rounds executed" 0 r.S.rounds;
  check_int "empty trace" 0 (Array.length r.S.trace)

let test_illegal_send () =
  let g = D.of_edges 3 [ (0, 1) ] in
  let proto : (unit, int) S.protocol =
    {
      initial = (fun _ -> ());
      step = (fun ~round:_ v () _ -> if v = 0 then ((), [ (2, 0) ]) else ((), []));
      wants_step = (fun _ -> false);
    }
  in
  check_bool "raises" true
    (match S.run ~topology:g ~faulty:no_faults proto with
    | exception S.Illegal_send { src = 0; dst = 2; _ } -> true
    | _ -> false)

let test_divergence_guard () =
  let g = ring 3 in
  (* A protocol that always wants to step never quiesces. *)
  let proto : (unit, int) S.protocol =
    {
      initial = (fun _ -> ());
      step = (fun ~round:_ _ () _ -> ((), []));
      wants_step = (fun _ -> true);
    }
  in
  check_bool "did not converge" true
    (match S.run ~max_rounds:10 ~topology:g ~faulty:no_faults proto with
    | exception S.Did_not_converge 10 -> true
    | _ -> false)

(* Pin the round-accounting semantics: [rounds] is the number of
   executed rounds, and [max_rounds] admits exactly [max_rounds] of
   them (not max_rounds + 1, the seed's off-by-one). *)
let token_protocol n : (bool, unit) S.protocol =
  {
    initial = (fun _ -> false);
    step =
      (fun ~round v seen inbox ->
        if round = 0 && v = 0 then (true, [ (1, ()) ])
        else
          match inbox with
          | [] -> (seen, [])
          | _ :: _ ->
              if seen then (seen, [])  (* token returned to the start *)
              else (true, [ ((v + 1) mod n, ()) ]));
    wants_step = (fun _ -> false);
  }

let test_round_accounting () =
  (* Token once around a ring of 5: activity in rounds 0..5, so exactly
     6 executed rounds. *)
  let g = ring 5 in
  let r = S.run ~topology:g ~faulty:no_faults (token_protocol 5) in
  check_int "rounds = executed count" 6 r.S.rounds;
  check_int "trace length = rounds" 6 (Array.length r.S.trace)

let test_max_rounds_budget () =
  let g = ring 5 in
  (* The run needs 6 rounds: a budget of 6 succeeds... *)
  let r = S.run ~max_rounds:6 ~topology:g ~faulty:no_faults (token_protocol 5) in
  check_int "fits the budget exactly" 6 r.S.rounds;
  (* ...and a budget of 5 must raise — the seed guard would have let
     this through (it admitted max_rounds + 1 executed rounds). *)
  check_bool "budget of 5 raises" true
    (match S.run ~max_rounds:5 ~topology:g ~faulty:no_faults (token_protocol 5) with
    | exception S.Did_not_converge 5 -> true
    | _ -> false)

let test_message_accounting () =
  (* Token passing once around a ring of 5: exactly 5 deliveries. *)
  let g = ring 5 in
  let r = S.run ~topology:g ~faulty:no_faults (token_protocol 5) in
  check_int "deliveries" 5 r.S.delivered;
  check_int "max inflight" 1 r.S.max_inflight;
  check_int "port load 1 (single-port compatible)" 1 r.S.max_port_load;
  check_bool "all saw token" true (Array.for_all Fun.id r.S.states)

let test_multiport () =
  (* A star center sending to all leaves in one round: multi-port
     semantics deliver all k messages in the same round. *)
  let k = 6 in
  let g = D.of_edges (k + 1) (List.init k (fun i -> (0, i + 1))) in
  let proto : (bool, unit) S.protocol =
    {
      initial = (fun v -> v = 0);
      step =
        (fun ~round v seen inbox ->
          if round = 0 && v = 0 then (true, List.init k (fun i -> (i + 1, ())))
          else if inbox <> [] then (true, [])
          else (seen, []));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  check_bool "all leaves got it" true (Array.for_all Fun.id r.S.states);
  check_int "seed round + one delivery round" 2 r.S.rounds;
  check_int "k messages in one round" k r.S.max_inflight;
  (* the star center used k ports at once; under single-port hardware
     the same protocol would need k rounds (the thesis's factor-d) *)
  check_int "port load" k r.S.max_port_load

let test_inbox_sorted_by_source () =
  (* Node 3 receives from 0,1,2 simultaneously; inbox must be sorted. *)
  let g = D.of_edges 4 [ (0, 3); (1, 3); (2, 3) ] in
  let proto : (int list, int) S.protocol =
    {
      initial = (fun _ -> []);
      step =
        (fun ~round v state inbox ->
          if round = 0 && v < 3 then (state, [ (3, v * 10) ])
          else if inbox <> [] then (List.map fst inbox, [])
          else (state, []));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  Alcotest.(check (list int)) "sources in order" [ 0; 1; 2 ] r.S.states.(3)

let test_same_source_keeps_send_order () =
  (* Two messages from the same source in one round arrive in send
     order — the seed sorted (src, payload) pairs, which would have
     reordered these by payload. *)
  let g = D.of_edges 2 [ (0, 1); (0, 1) ] in
  let proto : (int list, int) S.protocol =
    {
      initial = (fun _ -> []);
      step =
        (fun ~round v state inbox ->
          if round = 0 && v = 0 then (state, [ (1, 9); (1, 1) ])
          else if inbox <> [] then (List.map snd inbox, [])
          else (state, []));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  Alcotest.(check (list int)) "send order, not payload order" [ 9; 1 ] r.S.states.(1)

let test_functional_payload () =
  (* Regression: the seed sorted inboxes with polymorphic [compare]
     over (src, payload) pairs, so a payload containing a closure
     raised [Invalid_argument "compare: functional value"] as soon as
     one node received two messages.  The engine must never compare
     payloads. *)
  let g = D.of_edges 3 [ (0, 2); (0, 2); (1, 2) ] in
  let proto : (int, int -> int) S.protocol =
    {
      initial = (fun _ -> 0);
      step =
        (fun ~round v acc inbox ->
          let acc = List.fold_left (fun a (_, f) -> f a) acc inbox in
          let sends =
            if round = 0 && v = 0 then [ (2, fun x -> x + 3); (2, fun x -> x * 7) ]
            else if round = 0 && v = 1 then [ (2, fun x -> x * 2) ]
            else []
          in
          (acc, sends));
      wants_step = (fun _ -> false);
    }
  in
  let r = S.run ~topology:g ~faulty:no_faults proto in
  (* inbox sorted by src, same-src in send order: ((0 + 3) * 7) * 2. *)
  check_int "closures applied in source order" 42 r.S.states.(2);
  check_bool "seed implementation raised on this protocol" true
    (match R.run ~topology:g ~faulty:no_faults proto with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_parallel_matches_sequential () =
  (* B(2,11): 2048 nodes, above the parallel threshold, so domains are
     actually exercised; the run must be bit-identical. *)
  let p = Debruijn.Word.params ~d:2 ~n:11 in
  let g = Debruijn.Graph.b p in
  let faulty v = v mod 97 = 3 in
  let seq = S.run ~topology:g ~faulty (flood_protocol 1 g) in
  let par = S.run ~domains:4 ~topology:g ~faulty (flood_protocol 1 g) in
  Alcotest.(check (array int)) "states" seq.S.states par.S.states;
  check_int "rounds" seq.S.rounds par.S.rounds;
  check_int "delivered" seq.S.delivered par.S.delivered;
  check_int "max_inflight" seq.S.max_inflight par.S.max_inflight;
  check_int "max_port_load" seq.S.max_port_load par.S.max_port_load

(* ------------------------------------------------------------------ *)
(* qcheck: the worklist engine agrees with the seed full-scan engine on
   random protocols over random B(d,n) topologies with random faults.

   The random protocol family is a deterministic "gossip" machine: the
   state is an accumulator folded over received (src, payload) pairs, a
   node re-broadcasts to a pseudo-randomly chosen subset of its
   out-neighbors while its hop budget lasts, and some nodes keep
   requesting steps (wants_step) for a bounded number of extra rounds.
   Every behavior is a pure function of (protocol seed, round, node,
   state, inbox), so both engines see the same protocol; each node
   sends at most one message per neighbor per round, so the seed's
   (src, payload) inbox order coincides with the fixed by-src order. *)

let mix seed a b c =
  (* splitmix-style avalanche, cheap and deterministic *)
  let h = ref (seed lxor (a * 0x9e3779b9) lxor (b * 0x85ebca6b) lxor (c * 0xc2b2ae35)) in
  h := (!h lxor (!h lsr 16)) * 0x45d9f3b land max_int;
  h := (!h lxor (!h lsr 13)) * 0x45d9f3b land max_int;
  !h lxor (!h lsr 16)

type gossip = { acc : int; steps : int }

let gossip_protocol pseed g hop_budget eager_budget : (gossip, int) S.protocol =
  {
    initial = (fun v -> { acc = mix pseed v 0 0; steps = 0 });
    step =
      (fun ~round v st inbox ->
        let acc =
          List.fold_left (fun a (src, m) -> mix pseed a src m) st.acc inbox
        in
        let st = { acc; steps = st.steps + 1 } in
        let sends =
          if round < hop_budget then
            List.filter_map
              (fun w ->
                if mix pseed acc w round land 3 <> 0 then
                  Some (w, mix pseed v w round land 0xffff)
                else None)
              (D.succs g v)
          else []
        in
        (st, sends));
    wants_step =
      (fun st -> st.steps <= eager_budget && st.acc land 7 = 0);
  }

let agreement_prop (d, n, pseed, nfaults) =
  let p = Debruijn.Word.params ~d ~n in
  let g = Debruijn.Graph.b p in
  let faults =
    List.init nfaults (fun i -> mix pseed i 1 2 mod p.Debruijn.Word.size)
  in
  let faulty v = List.mem v faults in
  let hop_budget = 1 + (pseed mod (2 * n)) in
  let eager_budget = pseed mod 3 in
  let proto = gossip_protocol pseed g hop_budget eager_budget in
  let a = S.run ~max_rounds:1000 ~topology:g ~faulty proto in
  let b = R.run ~max_rounds:1000 ~topology:g ~faulty proto in
  let live_exists =
    List.exists (fun v -> not (faulty v)) (Debruijn.Word.all p)
  in
  a.S.states = b.R.states
  && a.S.delivered = b.R.delivered
  && a.S.max_inflight = b.R.max_inflight
  && a.S.max_port_load = b.R.max_port_load
  && (if live_exists then a.S.rounds = b.R.rounds + 1 else a.S.rounds = 0)
  && Array.length a.S.trace = a.S.rounds

let qcheck_agreement =
  let gen =
    QCheck.Gen.(
      let* d = int_range 2 4 in
      let* n = int_range 1 4 in
      let* pseed = int_range 1 (1 lsl 28) in
      let size = int_of_float (float_of_int d ** float_of_int n) in
      let* nfaults = int_range 0 (max 1 (size / 2)) in
      return (d, n, pseed, nfaults))
  in
  QCheck.Test.make ~count:300
    ~name:"worklist engine = seed full-scan engine (random gossip protocols)"
    (QCheck.make gen) agreement_prop

let qcheck_parallel_agreement =
  (* Same property, sequential vs 4 domains, on topologies big enough
     to cross the parallel threshold. *)
  let gen =
    QCheck.Gen.(
      let* pseed = int_range 1 (1 lsl 28) in
      let* nfaults = int_range 0 40 in
      return (2, 11, pseed, nfaults))
  in
  let prop (d, n, pseed, nfaults) =
    let p = Debruijn.Word.params ~d ~n in
    let g = Debruijn.Graph.b p in
    let faults =
      List.init nfaults (fun i -> mix pseed i 1 2 mod p.Debruijn.Word.size)
    in
    let faulty v = List.mem v faults in
    let proto = gossip_protocol pseed g (1 + (pseed mod 6)) (pseed mod 3) in
    let a = S.run ~max_rounds:1000 ~topology:g ~faulty proto in
    let b = S.run ~domains:4 ~max_rounds:1000 ~topology:g ~faulty proto in
    a.S.states = b.S.states && a.S.delivered = b.S.delivered
    && a.S.rounds = b.S.rounds
  in
  QCheck.Test.make ~count:20 ~name:"parallel stepping is bit-identical"
    (QCheck.make gen) prop

let () =
  Alcotest.run "netsim"
    [
      ( "simulator",
        [
          Alcotest.test_case "flood on ring" `Quick test_flood_ring;
          Alcotest.test_case "flood matches BFS" `Quick test_flood_matches_bfs;
          Alcotest.test_case "fault blocks flood" `Quick test_flood_with_fault;
          Alcotest.test_case "faulty source is silent" `Quick test_faulty_source_sends_nothing;
          Alcotest.test_case "all faulty: zero rounds" `Quick test_all_faulty;
          Alcotest.test_case "illegal send" `Quick test_illegal_send;
          Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
          Alcotest.test_case "round accounting" `Quick test_round_accounting;
          Alcotest.test_case "max_rounds budget is exact" `Quick test_max_rounds_budget;
          Alcotest.test_case "message accounting" `Quick test_message_accounting;
          Alcotest.test_case "multi-port star" `Quick test_multiport;
          Alcotest.test_case "inbox sorted" `Quick test_inbox_sorted_by_source;
          Alcotest.test_case "same-source send order" `Quick test_same_source_keeps_send_order;
          Alcotest.test_case "functional payloads" `Quick test_functional_payload;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
        ] );
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest qcheck_agreement;
          QCheck_alcotest.to_alcotest qcheck_parallel_agreement;
        ] );
    ]
