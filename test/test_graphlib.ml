(* Tests for the generic digraph substrate. *)

module D = Graphlib.Digraph
module T = Graphlib.Traversal
module E = Graphlib.Euler
module C = Graphlib.Cycle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A directed 5-cycle. *)
let ring5 = D.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]

(* Two triangles sharing no node, plus an isolated node 6. *)
let two_triangles =
  D.of_edges 7 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]

let test_build () =
  check_int "nodes" 5 (D.n_nodes ring5);
  check_int "edges" 5 (D.n_edges ring5);
  Alcotest.(check (list int)) "succ 0" [ 1 ] (D.succs ring5 0);
  Alcotest.(check (list int)) "pred 0" [ 4 ] (D.preds ring5 0);
  check_bool "mem" true (D.mem_edge ring5 2 3);
  check_bool "not mem" false (D.mem_edge ring5 3 2);
  check_int "out degree" 1 (D.out_degree ring5 0);
  check_int "in degree" 1 (D.in_degree ring5 0)

let test_parallel_and_loops () =
  let g = D.of_edges 2 [ (0, 0); (0, 1); (0, 1) ] in
  check_int "edges counted with multiplicity" 3 (D.n_edges g);
  check_int "out degree with multiplicity" 3 (D.out_degree g 0);
  check_int "in degree of loop" 1 (D.in_degree g 0)

let test_remove_nodes () =
  let g = D.remove_nodes ring5 (fun v -> v = 2) in
  check_int "edges after removal" 3 (D.n_edges g);
  check_bool "edge into removed gone" false (D.mem_edge g 1 2);
  check_bool "edge out of removed gone" false (D.mem_edge g 2 3);
  check_bool "others kept" true (D.mem_edge g 0 1)

let test_remove_edges () =
  let g = D.remove_edges ring5 (fun e -> e = (1, 2)) in
  check_int "edges" 4 (D.n_edges g);
  check_bool "gone" false (D.mem_edge g 1 2)

let test_reverse () =
  let r = D.reverse ring5 in
  check_bool "reversed edge" true (D.mem_edge r 1 0);
  check_bool "original edge gone" false (D.mem_edge r 0 1);
  check_int "same count" 5 (D.n_edges r)

let test_balanced () =
  check_bool "ring balanced" true (D.is_balanced ring5);
  check_bool "path not balanced" false (D.is_balanced (D.of_edges 3 [ (0, 1); (1, 2) ]))

let test_bfs () =
  let dist = T.bfs_dist ring5 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist;
  let dist = T.bfs_dist two_triangles 0 in
  check_int "unreachable" (-1) dist.(3);
  check_int "self" 0 dist.(0)

let test_bfs_restricted () =
  let dist = T.bfs_dist_restricted ring5 (fun v -> v <> 2) 0 in
  check_int "reaches 1" 1 dist.(1);
  check_int "blocked" (-1) dist.(3)

let test_bfs_tree () =
  (* Diamond: 0 -> {1,2} -> 3: parent of 3 must be the minimal
     predecessor at depth 1, namely 1. *)
  let g = D.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let dist, parent = T.bfs_tree g 0 in
  check_int "dist 3" 2 dist.(3);
  check_int "parent of 3 minimal" 1 parent.(3);
  check_int "parent of root" (-1) parent.(0);
  check_int "parent of 1" 0 parent.(1)

let test_eccentricity () =
  check_int "ring ecc" 4 (T.eccentricity ring5 0);
  check_int "diameter" 4 (T.diameter_from_all ring5)

let test_weak_components () =
  let label, count = T.weak_components two_triangles in
  check_int "count (incl. isolated)" 3 count;
  check_bool "same comp" true (label.(0) = label.(2));
  check_bool "diff comp" true (label.(0) <> label.(3));
  check_bool "isolated its own" true (label.(6) <> label.(0) && label.(6) <> label.(3))

let test_largest_weak_component () =
  let g = D.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  Alcotest.(check (list int)) "largest" [ 0; 1; 2 ] (T.largest_weak_component g (fun _ -> true));
  Alcotest.(check (list int)) "with exclusion" [ 3; 4 ]
    (T.largest_weak_component g (fun v -> v >= 3));
  Alcotest.(check (list int)) "empty" [] (T.largest_weak_component g (fun _ -> false))

let test_scc () =
  let g = D.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  let comps = List.map (List.sort compare) (T.strongly_connected_components g) in
  let comps = List.sort compare comps in
  Alcotest.(check (list (list int))) "sccs" [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ] comps

let test_strongly_connected () =
  check_bool "ring" true (T.is_strongly_connected ring5 (fun _ -> true));
  check_bool "two triangles" false (T.is_strongly_connected two_triangles (fun _ -> true));
  check_bool "restricted triangle" true (T.is_strongly_connected two_triangles (fun v -> v < 3));
  check_bool "single node" true (T.is_strongly_connected ring5 (fun v -> v = 0))

let test_euler_ring () =
  check_bool "eulerian" true (E.is_eulerian ring5);
  match E.euler_circuit ring5 with
  | None -> Alcotest.fail "expected circuit"
  | Some c ->
      check_int "length" 6 (List.length c);
      check_bool "is circuit" true (E.is_circuit ring5 c)

let test_euler_eight () =
  (* Figure-eight: two loops sharing node 0; Eulerian. *)
  let g = D.of_edges 3 [ (0, 1); (1, 0); (0, 2); (2, 0) ] in
  match E.euler_circuit g with
  | None -> Alcotest.fail "expected circuit"
  | Some c ->
      check_int "uses all edges" 5 (List.length c);
      check_bool "valid" true (E.is_circuit g c)

let test_euler_none () =
  let path = D.of_edges 3 [ (0, 1); (1, 2) ] in
  check_bool "not eulerian" false (E.is_eulerian path);
  Alcotest.(check bool) "no circuit" true (E.euler_circuit path = None);
  (* Balanced but disconnected edges: no single Euler circuit. *)
  check_bool "two triangles not eulerian" false (E.is_eulerian two_triangles);
  Alcotest.(check bool) "no circuit for two triangles" true (E.euler_circuit two_triangles = None)

let test_circuit_partition () =
  let parts = E.circuit_partition two_triangles in
  check_int "two circuits" 2 (List.length parts);
  List.iter (fun c -> check_bool "each valid" true (E.is_circuit two_triangles c)) parts;
  let total = List.fold_left (fun acc c -> acc + List.length c - 1) 0 parts in
  check_int "edges covered" (D.n_edges two_triangles) total

let test_cycle_basic () =
  check_bool "ring cycle" true (C.is_cycle ring5 [| 0; 1; 2; 3; 4 |]);
  check_bool "rotated" true (C.is_cycle ring5 [| 2; 3; 4; 0; 1 |]);
  check_bool "wrong order" false (C.is_cycle ring5 [| 0; 2; 1; 3; 4 |]);
  check_bool "repeat" false (C.is_cycle ring5 [| 0; 1; 2; 3; 0 |]);
  check_bool "empty" false (C.is_cycle ring5 [||]);
  check_bool "hamiltonian" true (C.is_hamiltonian ring5 [| 0; 1; 2; 3; 4 |]);
  check_bool "not hamiltonian (subset)" false
    (C.is_hamiltonian two_triangles [| 0; 1; 2 |]);
  check_bool "hamiltonian on subset" true
    (C.is_hamiltonian two_triangles ~subset:(fun v -> v < 3) [| 0; 1; 2 |])

let test_cycle_loop () =
  let g = D.of_edges 1 [ (0, 0) ] in
  check_bool "self loop cycle" true (C.is_cycle g [| 0 |]);
  check_bool "no loop" false (C.is_cycle ring5 [| 0 |])

let test_cycle_edges () =
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2); (2, 0) ]
    (C.edges_of_cycle [| 0; 1; 2 |]);
  check_bool "disjoint" true (C.edge_disjoint [| 0; 1; 2 |] [| 3; 4; 5 |]);
  check_bool "not disjoint" false (C.edge_disjoint [| 0; 1; 2 |] [| 1; 2; 5 |]);
  check_bool "pairwise" true
    (C.pairwise_edge_disjoint [ [| 0; 1 |]; [| 2; 3 |]; [| 4; 5 |] ]);
  check_bool "pairwise fail" false
    (C.pairwise_edge_disjoint [ [| 0; 1 |]; [| 2; 3 |]; [| 0; 1; 2 |] ])

let test_cycle_avoid () =
  check_bool "avoids nodes" true (C.avoids_nodes [| 0; 1; 2 |] (fun v -> v > 5));
  check_bool "hits node" false (C.avoids_nodes [| 0; 1; 2 |] (fun v -> v = 1));
  check_bool "avoids edges" true (C.avoids_edges [| 0; 1; 2 |] (fun e -> e = (1, 0)));
  check_bool "hits wrap edge" false (C.avoids_edges [| 0; 1; 2 |] (fun e -> e = (2, 0)))

let test_cycle_rotate () =
  Alcotest.(check (array int)) "rotate" [| 2; 3; 4; 0; 1 |] (C.rotate_to [| 0; 1; 2; 3; 4 |] 2);
  check_int "successor" 3 (C.successor_in_cycle [| 0; 1; 2; 3; 4 |] 2);
  check_int "wrap successor" 0 (C.successor_in_cycle [| 0; 1; 2; 3; 4 |] 4);
  Alcotest.check_raises "absent" Not_found (fun () -> ignore (C.rotate_to [| 0; 1 |] 9))

let test_of_successor_map () =
  (match C.of_successor_map ~start:0 (fun v -> (v + 1) mod 5) with
  | Some c -> Alcotest.(check (array int)) "mod ring" [| 0; 1; 2; 3; 4 |] c
  | None -> Alcotest.fail "expected cycle");
  (* rho-shaped successor map never returns: 0 -> 1 -> 2 -> 1 *)
  Alcotest.(check bool) "rho fails" true
    (C.of_successor_map ~start:0 (fun v -> if v = 0 then 1 else if v = 1 then 2 else 1) = None)

let test_bfs_tree_unreachable () =
  (* 3 ⇄ 4 is a separate component: bfs_tree must leave parents at −1
     without ever scanning their predecessor lists. *)
  let g = D.of_edges 5 [ (0, 1); (1, 2); (3, 4); (4, 3) ] in
  let dist, parent = T.bfs_tree g 0 in
  check_int "unreached dist" (-1) dist.(3);
  check_int "unreached parent 3" (-1) parent.(3);
  check_int "unreached parent 4" (-1) parent.(4);
  check_int "reached parent" 1 parent.(2)

let test_bfs_tree_shared_preds () =
  (* Siblings 3 and 4 share predecessor set {1, 2}: both must pick the
     minimal predecessor 1; node 5 has only 2. *)
  let g = D.of_edges 6 [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 4); (2, 4); (2, 5) ] in
  let _, parent = T.bfs_tree g 0 in
  check_int "3 minimal parent" 1 parent.(3);
  check_int "4 minimal parent" 1 parent.(4);
  check_int "5 sole parent" 2 parent.(5);
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Traversal.bfs_tree: source out of range") (fun () ->
      ignore (T.bfs_tree g 6))

(* ------------------------------------------------------------------ *)
(* bitset *)

module BS = Graphlib.Bitset

let test_bitset_basic () =
  let b = BS.create 70 in
  check_int "length" 70 (BS.length b);
  check_bool "fresh empty" false (BS.mem b 0);
  List.iter (BS.add b) [ 0; 7; 8; 69 ];
  List.iter (fun i -> check_bool (string_of_int i) true (BS.mem b i)) [ 0; 7; 8; 69 ];
  check_bool "unset" false (BS.mem b 9);
  check_int "cardinal" 4 (BS.cardinal b);
  BS.remove b 7;
  check_bool "removed" false (BS.mem b 7);
  check_int "cardinal after remove" 3 (BS.cardinal b);
  BS.clear b;
  check_int "cleared" 0 (BS.cardinal b);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (BS.mem b 70));
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> BS.add b (-1))

(* ------------------------------------------------------------------ *)
(* csr *)

module Csr = Graphlib.Csr

let test_csr_ring () =
  let c = Csr.of_digraph ring5 in
  check_int "nodes" 5 (Csr.n_nodes c);
  check_int "edges" 5 (Csr.n_edges c);
  Alcotest.(check (list int)) "succs" [ 1 ] (Csr.succs c 0);
  Alcotest.(check (list int)) "preds" [ 4 ] (Csr.preds c 0);
  check_bool "mem" true (Csr.mem_edge c 2 3);
  check_bool "not mem" false (Csr.mem_edge c 3 2);
  check_int "out degree" 1 (Csr.out_degree c 0);
  check_int "in degree" 1 (Csr.in_degree c 0)

let test_csr_parallel_and_loops () =
  let b = Csr.Builder.create 2 in
  Csr.Builder.add_edge b 0 0;
  Csr.Builder.add_edge b 0 1;
  Csr.Builder.add_edge b 0 1;
  let c = Csr.Builder.build b in
  check_int "edges with multiplicity" 3 (Csr.n_edges c);
  Alcotest.(check (list int)) "succ order kept" [ 0; 1; 1 ] (Csr.succs c 0);
  check_int "in degree of loop" 1 (Csr.in_degree c 0);
  check_bool "reverse cached" true (Csr.reverse (Csr.reverse c) == c)

(* ------------------------------------------------------------------ *)
(* itopo: implicit-topology traversals *)

module It = Graphlib.Itopo
module Fa = Graphlib.Flatarr
module Sched = Graphlib.Sched

let isuccs g v f = List.iter f (D.succs g v)
let ipreds g v f = List.iter f (D.preds g v)

let test_itopo_bfs_ring () =
  let r = It.bfs ~n:5 ~succs:(isuccs ring5) 0 in
  Alcotest.(check (array int)) "dist" [| 0; 1; 2; 3; 4 |] (Fa.to_array r.It.dist);
  check_int "count" 5 r.It.count;
  Alcotest.(check (array int)) "order" [| 0; 1; 2; 3; 4 |]
    (Fa.sub_to_array r.It.order 0 r.It.count);
  check_int "ecc" 4 (It.eccentricity ~n:5 ~succs:(isuccs ring5) 0);
  (* keep predicate cuts the ring *)
  let r = It.bfs ~n:5 ~succs:(isuccs ring5) ~keep:(fun v -> v <> 2) 0 in
  check_int "blocked dist" (-1) r.It.dist.{3};
  check_int "blocked count" 2 r.It.count;
  (* source failing keep reaches nothing *)
  let r = It.bfs ~n:5 ~succs:(isuccs ring5) ~keep:(fun v -> v <> 0) 0 in
  check_int "dead source" 0 r.It.count

let test_itopo_component_members () =
  (* 0 → {1, 2}, 2 → 3: symmetric BFS from 3 discovers 3, then its
     predecessor 2, then 2's predecessor 0, then 0's successor 1 — the
     exact discovery order is part of the contract. *)
  let g = D.of_edges 4 [ (0, 1); (0, 2); (2, 3) ] in
  Alcotest.(check (array int)) "discovery order" [| 3; 2; 0; 1 |]
    (It.component_members ~n:4 ~succs:(isuccs g) ~preds:(ipreds g) 3);
  Alcotest.(check (array int)) "excluded source" [||]
    (It.component_members ~n:4 ~succs:(isuccs g) ~preds:(ipreds g)
       ~keep:(fun v -> v <> 3) 3)

let test_itopo_largest_weak () =
  let g = D.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  let sorted a = List.sort compare (Array.to_list a) in
  Alcotest.(check (list int)) "largest" [ 0; 1; 2 ]
    (sorted
       (It.largest_weak_component ~n:6 ~succs:(isuccs g) ~preds:(ipreds g) ()));
  Alcotest.(check (list int)) "with exclusion" [ 3; 4 ]
    (sorted
       (It.largest_weak_component ~n:6 ~succs:(isuccs g) ~preds:(ipreds g)
          ~keep:(fun v -> v >= 3) ()));
  Alcotest.(check (list int)) "empty" []
    (sorted
       (It.largest_weak_component ~n:6 ~succs:(isuccs g) ~preds:(ipreds g)
          ~keep:(fun _ -> false) ()))

let test_itopo_no_preds () =
  (* B*-style usage: every weak component strongly connected, so the
     successor-only sweep must find the same component set. *)
  let g = D.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3) ] in
  let sorted a = List.sort compare (Array.to_list a) in
  Alcotest.(check (list int)) "succ-only sweep" [ 0; 1; 2 ]
    (sorted
       (It.largest_weak_component ~n:6 ~succs:(isuccs g) ~preds:It.no_preds ()));
  check_bool "strongly connected" true
    (It.is_strongly_connected ~n:6 ~succs:(isuccs g) ~preds:(ipreds g)
       ~keep:(fun v -> v < 3) ());
  check_bool "not strongly connected" false
    (It.is_strongly_connected ~n:6 ~succs:(isuccs g) ~preds:(ipreds g) ())

let test_itopo_parallel_levels () =
  (* A graph wide enough to push levels past par_threshold so the
     domains > 1 path genuinely runs expand_par: star from 0 into
     10000 nodes, each fanning further via arithmetic jumps. *)
  let n = 30000 in
  let succs v f =
    if v = 0 then
      for i = 1 to 10000 do
        f i
      done
    else begin
      f (((v * 7) + 11) mod n);
      f (((v * 13) + 5) mod n)
    end
  in
  let seq = It.bfs ~n ~succs 0 in
  let par = It.bfs ~domains:4 ~n ~succs 0 in
  check_int "same count" seq.It.count par.It.count;
  Alcotest.(check (array int)) "same dist" (Fa.to_array seq.It.dist)
    (Fa.to_array par.It.dist);
  Alcotest.(check (array int)) "same order"
    (Fa.sub_to_array seq.It.order 0 seq.It.count)
    (Fa.sub_to_array par.It.order 0 par.It.count)

(* ------------------------------------------------------------------ *)
(* connectivity *)

module Conn = Graphlib.Connectivity

let test_connectivity_ring () =
  check_int "ring kappa" 1 (Conn.node_connectivity ring5);
  check_int "ring lambda" 1 (Conn.edge_connectivity ring5);
  check_int "disjoint paths on ring" 1 (Conn.max_edge_disjoint_paths ring5 0 3)

let test_connectivity_complete () =
  let k4 = D.of_successors 4 (fun v -> List.filter (fun w -> w <> v) [ 0; 1; 2; 3 ]) in
  check_int "complete digraph kappa = n-1" 3 (Conn.node_connectivity k4);
  check_int "complete digraph lambda" 3 (Conn.edge_connectivity k4);
  (* adjacent pair: the direct edge counts as exactly one path *)
  check_int "adjacent pair disjoint paths" 3 (Conn.max_node_disjoint_paths k4 0 1);
  check_int "ring adjacent pair" 1 (Conn.max_node_disjoint_paths ring5 0 1)

let test_connectivity_disconnected () =
  check_int "two triangles lambda" 0 (Conn.edge_connectivity two_triangles)

let test_connectivity_bidirected_cycle () =
  (* undirected 6-cycle: kappa = lambda = 2 *)
  let g =
    D.of_edges 6
      (List.concat_map (fun i -> [ (i, (i + 1) mod 6); ((i + 1) mod 6, i) ]) (List.init 6 Fun.id))
  in
  check_int "kappa" 2 (Conn.node_connectivity g);
  check_int "lambda" 2 (Conn.edge_connectivity g)

let test_connectivity_cut_vertex () =
  (* two triangles sharing node 0 (bidirected): kappa = 1 *)
  let tri a b c = [ (a, b); (b, a); (b, c); (c, b); (c, a); (a, c) ] in
  let g = D.of_edges 5 (tri 0 1 2 @ tri 0 3 4) in
  check_int "cut vertex" 1 (Conn.node_connectivity g);
  check_int "lambda 2" 2 (Conn.edge_connectivity g)

let test_connectivity_de_bruijn () =
  (* the thesis's Chapter 1/[EH85] reliability facts *)
  List.iter
    (fun (d, n) ->
      let p = Debruijn.Word.params ~d ~n in
      check_int
        (Printf.sprintf "kappa B(%d,%d) = d-1" d n)
        (d - 1)
        (Conn.node_connectivity (Debruijn.Graph.b p));
      check_int
        (Printf.sprintf "kappa UB(%d,%d) = 2d-2" d n)
        ((2 * d) - 2)
        (Conn.node_connectivity (Debruijn.Graph.ub p)))
    [ (2, 3); (3, 2); (4, 2) ]

(* ------------------------------------------------------------------ *)
(* properties *)

let random_graph_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    list_size (int_range 0 120) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun es -> return (n, es))

let arb_graph = QCheck.make random_graph_gen

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"bfs distances are monotone along edges" ~count:200 arb_graph
      (fun (n, es) ->
        let g = D.of_edges n es in
        let dist = T.bfs_dist g 0 in
        List.for_all
          (fun (u, v) -> dist.(u) < 0 || (dist.(v) >= 0 && dist.(v) <= dist.(u) + 1))
          es);
    Test.make ~name:"reverse twice is identity on edge multiset" ~count:200 arb_graph
      (fun (n, es) ->
        let g = D.of_edges n es in
        let norm g = List.sort compare (D.edges g) in
        norm (D.reverse (D.reverse g)) = norm g);
    Test.make ~name:"circuit_partition covers all edges of balanced graphs" ~count:200
      arb_graph
      (fun (n, es) ->
        (* symmetrize to force balance *)
        let es = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) es in
        let g = D.of_edges n es in
        let parts = E.circuit_partition g in
        List.for_all (E.is_circuit g) parts
        && List.fold_left (fun acc c -> acc + max 0 (List.length c - 1)) 0 parts
           = D.n_edges g);
    Test.make ~name:"scc partitions the nodes" ~count:200 arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let comps = T.strongly_connected_components g in
        let all = List.sort compare (List.concat comps) in
        all = List.init n Fun.id);
  ]

(* Agreement between the flat/implicit layer (Csr, Itopo) and the
   list-based reference layer (Digraph, Traversal) on random digraphs —
   the same pinning discipline test_netsim.ml uses for its engines. *)
let qsuite_compact =
  let open QCheck in
  let keep_of n v = v = 0 || (v * 31) mod n <> 1 in
  [
    Test.make ~name:"Csr.of_digraph preserves succ/pred lists" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let c = Csr.of_digraph g in
        Csr.n_nodes c = n
        && Csr.n_edges c = D.n_edges g
        && List.for_all
             (fun v -> Csr.succs c v = D.succs g v && Csr.preds c v = D.preds g v)
             (List.init n Fun.id));
    Test.make ~name:"Csr to_digraph round-trips the edge lists" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let g' = Csr.to_digraph (Csr.of_digraph g) in
        List.for_all (fun v -> D.succs g' v = D.succs g v) (List.init n Fun.id));
    Test.make ~name:"Itopo.bfs_dist = Traversal.bfs_dist" ~count:200 arb_graph
      (fun (n, es) ->
        let g = D.of_edges n es in
        It.bfs_dist ~n ~succs:(isuccs g) 0 = T.bfs_dist g 0);
    Test.make ~name:"Itopo.bfs_dist with keep = bfs_dist_restricted" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let keep = keep_of n in
        It.bfs_dist ~n ~succs:(isuccs g) ~keep 0 = T.bfs_dist_restricted g keep 0);
    Test.make ~name:"Itopo.eccentricity = Traversal.eccentricity" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        It.eccentricity ~n ~succs:(isuccs g) 0 = T.eccentricity g 0);
    Test.make ~name:"Itopo.largest_weak_component = Traversal's" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let keep = keep_of n in
        let mine =
          List.sort compare
            (Array.to_list
               (It.largest_weak_component ~n ~succs:(isuccs g) ~preds:(ipreds g)
                  ~keep ()))
        in
        mine = List.sort compare (T.largest_weak_component g keep));
    Test.make ~name:"Itopo.weak_labels induces Traversal's partition" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let mine = It.weak_labels ~n ~succs:(isuccs g) ~preds:(ipreds g) () in
        let reference, _ = T.weak_components g in
        let ids = List.init n Fun.id in
        (* same equivalence classes, and each label is the smallest member *)
        List.for_all
          (fun u ->
            mine.(u) <= u
            && mine.(mine.(u)) = mine.(u)
            && List.for_all
                 (fun v -> mine.(u) = mine.(v) = (reference.(u) = reference.(v)))
                 ids)
          ids);
    Test.make ~name:"Itopo.component_members = weak component of node" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let members =
          It.component_members ~n ~succs:(isuccs g) ~preds:(ipreds g) 0
        in
        let reference, _ = T.weak_components g in
        Array.length members > 0
        && members.(0) = 0
        && List.sort compare (Array.to_list members)
           = List.filter (fun v -> reference.(v) = reference.(0)) (List.init n Fun.id));
    Test.make ~name:"Itopo.is_strongly_connected = Traversal's" ~count:200
      arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let keep = keep_of n in
        It.is_strongly_connected ~n ~succs:(isuccs g) ~preds:(ipreds g) ()
        = T.is_strongly_connected g (fun _ -> true)
        && It.is_strongly_connected ~n ~succs:(isuccs g) ~preds:(ipreds g) ~keep ()
           = T.is_strongly_connected g keep);
    Test.make ~name:"Itopo.bfs ~domains:4 is bit-identical" ~count:100 arb_graph
      (fun (n, es) ->
        let g = D.of_edges n es in
        let seq = It.bfs ~n ~succs:(isuccs g) 0 in
        let par = It.bfs ~domains:4 ~n ~succs:(isuccs g) 0 in
        seq.It.dist = par.It.dist
        && seq.It.count = par.It.count
        && Fa.sub_to_array seq.It.order 0 seq.It.count
           = Fa.sub_to_array par.It.order 0 par.It.count);
    (* Adversarial chunk sizes: chunk = 1 drops the activation cutoff to
       4 frontier nodes, so tiny random graphs genuinely exercise the
       work-stealing expansion; chunk > n degenerates every level to a
       single chunk.  Results must be bit-identical across all of them
       and to the sequential run. *)
    Test.make ~name:"Itopo.bfs work-stealing determinism over chunk sizes"
      ~count:100 arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let seq = It.bfs ~n ~succs:(isuccs g) 0 in
        List.for_all
          (fun chunk ->
            List.for_all
              (fun domains ->
                let par = It.bfs ~domains ~chunk ~n ~succs:(isuccs g) 0 in
                seq.It.dist = par.It.dist
                && seq.It.count = par.It.count
                && Fa.sub_to_array seq.It.order 0 seq.It.count
                   = Fa.sub_to_array par.It.order 0 par.It.count)
              [ 2; 4 ])
          [ 1; 3; n + 7 ]);
    Test.make
      ~name:"Itopo.largest_weak_component chunk=1 parallel sweep identical"
      ~count:100 arb_graph (fun (n, es) ->
        let g = D.of_edges n es in
        let seq =
          It.largest_weak_component ~n ~succs:(isuccs g) ~preds:(ipreds g) ()
        in
        let par =
          It.largest_weak_component ~domains:4 ~chunk:1 ~n ~succs:(isuccs g)
            ~preds:(ipreds g) ()
        in
        seq = par);
  ]

(* ------------------------------------------------------------------ *)
(* flatarr: off-heap arrays and the arena carver *)

let test_flatarr_basics () =
  let a = Fa.make 5 (-1) in
  check_int "make fills" (-1) a.{3};
  a.{3} <- 42;
  check_int "set/get" 42 (Fa.get a 3);
  check_int "length" 5 (Fa.length a);
  Fa.fill_prefix a 2 7;
  Alcotest.(check (array int)) "fill_prefix" [| 7; 7; -1; 42; -1 |]
    (Fa.to_array a);
  let b = Fa.of_array [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "of_array/to_array round-trip" [| 1; 2; 3 |]
    (Fa.to_array b);
  Alcotest.(check (array int)) "sub_to_array" [| 2; 3 |] (Fa.sub_to_array b 1 2);
  let dst = Array.make 4 9 in
  Fa.blit_to_array b dst;
  Alcotest.(check (array int)) "blit_to_array prefix" [| 1; 2; 3; 9 |] dst;
  let c = Fa.create 5 in
  Fa.blit b c;
  check_int "blit prefix" 2 c.{1};
  let by = Fa.Byte.make 4 0 in
  by.{2} <- 1;
  Alcotest.(check (array bool)) "Byte.to_bool_array"
    [| false; false; true; false |]
    (Fa.Byte.to_bool_array by)

let test_flatarr_arena () =
  let words = 2 * Fa.Arena.aligned_words 10 in
  let bytes = Fa.Arena.aligned_bytes 100 in
  let a = Fa.Arena.create ~words ~bytes in
  let x = Fa.Arena.carve a 10 in
  let y = Fa.Arena.carve a 10 in
  check_int "zeroed" 0 x.{9};
  check_int "carve length" 10 (Fa.length y);
  check_int "words advance by aligned quanta"
    (2 * Fa.Arena.aligned_words 10)
    (Fa.Arena.words_used a);
  (* carved views are disjoint regions of one backing *)
  x.{9} <- 5;
  y.{0} <- 6;
  check_int "no overlap" 5 x.{9};
  let b = Fa.Arena.carve_byte a 100 in
  check_int "byte carve zeroed" 0 (Fa.Byte.get b 99);
  check_int "bytes used" (Fa.Arena.aligned_bytes 100) (Fa.Arena.bytes_used a);
  Alcotest.check_raises "word arena exhausted"
    (Invalid_argument "Flatarr.Arena.carve: arena exhausted") (fun () ->
      ignore (Fa.Arena.carve a 1));
  Alcotest.check_raises "byte arena exhausted"
    (Invalid_argument "Flatarr.Arena.carve_byte: arena exhausted") (fun () ->
      ignore (Fa.Arena.carve_byte a 1))

let test_itopo_ws_arena () =
  (* A workspace carved from an arena behaves exactly like a fresh one. *)
  let n = 64 in
  let arena =
    Fa.Arena.create ~words:(It.ws_arena_words n) ~bytes:0
  in
  let ws = It.ws_create ~arena n in
  check_int "arena fully consumed" (It.ws_arena_words n)
    (Fa.Arena.words_used arena);
  let succs v f = if v + 1 < n then f (v + 1) in
  let fresh = It.bfs ~n ~succs 0 in
  let arened = It.bfs ~ws ~n ~succs 0 in
  check_int "same count" fresh.It.count arened.It.count;
  Alcotest.(check (array int)) "same dist" (Fa.to_array fresh.It.dist)
    (Fa.to_array arened.It.dist)

(* ------------------------------------------------------------------ *)
(* sched: the work-stealing pool *)

let test_sched_parallel_for () =
  (* Every index executed exactly once, whatever the chunking. *)
  List.iter
    (fun domains ->
      Sched.with_pool ~domains (fun pool ->
          check_int "size" domains (Sched.size pool);
          List.iter
            (fun chunk ->
              let n = 1000 in
              let hits = Array.make n 0 in
              (* Disjoint writes per index: safe across domains. *)
              Sched.parallel_for pool ~chunk ~lo:0 ~hi:n (fun _ cl ch ->
                  for i = cl to ch - 1 do
                    hits.(i) <- hits.(i) + 1
                  done);
              check_bool
                (Printf.sprintf "all-once domains=%d chunk=%d" domains chunk)
                true
                (Array.for_all (fun c -> c = 1) hits))
            [ 1; 7; 64; 1000; 5000 ]))
    [ 1; 2; 4 ]

let test_sched_chunk_ranges () =
  Sched.with_pool ~domains:2 (fun pool ->
      let seen = Array.make 10 (-1) in
      Sched.parallel_for pool ~chunk:4 ~lo:3 ~hi:13 (fun c cl ch ->
          for i = cl to ch - 1 do
            seen.(i - 3) <- c
          done);
      (* chunk c covers [3 + 4c, min(13, 3 + 4c + 4)) *)
      Alcotest.(check (array int)) "chunk ordinals"
        [| 0; 0; 0; 0; 1; 1; 1; 1; 2; 2 |]
        seen)

let test_sched_exceptions () =
  Sched.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "worker exception propagates" Exit (fun () ->
          Sched.run pool (fun w -> if w = 3 then raise Exit));
      (* ... and the pool survives for the next job *)
      let total = Atomic.make 0 in
      Sched.run pool (fun _ -> ignore (Atomic.fetch_and_add total 1));
      check_int "pool usable after failure" 4 (Atomic.get total));
  Alcotest.check_raises "domains must be positive"
    (Invalid_argument "Sched.create: domains must be >= 1") (fun () ->
      ignore (Sched.create ~domains:0))

(* The parallel-activation contract (ISSUE 7 satellite): the cutoff is
   a named constant derived from the chunk size, and crossing it must
   not change results — pinned with a star graph whose single level
   sits exactly at / just below the threshold. *)
let test_itopo_par_threshold () =
  check_int "par_threshold derived from chunk size" (4 * It.chunk_size)
    It.par_threshold;
  let star width =
    let n = width + 1 in
    let succs v f =
      if v = 0 then
        for i = 1 to width do
          f i
        done
    in
    (n, succs)
  in
  List.iter
    (fun width ->
      let n, succs = star width in
      let seq = It.bfs ~n ~succs 0 in
      let par = It.bfs ~domains:4 ~n ~succs 0 in
      check_int
        (Printf.sprintf "count at width %d" width)
        seq.It.count par.It.count;
      check_bool
        (Printf.sprintf "dist identical at width %d" width)
        true
        (seq.It.dist = par.It.dist))
    [ It.par_threshold - 1; It.par_threshold; It.par_threshold + 1 ]

let () =
  Alcotest.run "graphlib"
    [
      ( "digraph",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "parallel edges and loops" `Quick test_parallel_and_loops;
          Alcotest.test_case "remove_nodes" `Quick test_remove_nodes;
          Alcotest.test_case "remove_edges" `Quick test_remove_edges;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "balanced" `Quick test_balanced;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "bfs restricted" `Quick test_bfs_restricted;
          Alcotest.test_case "bfs tree minimal parent" `Quick test_bfs_tree;
          Alcotest.test_case "bfs tree unreachable nodes" `Quick test_bfs_tree_unreachable;
          Alcotest.test_case "bfs tree shared predecessors" `Quick test_bfs_tree_shared_preds;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "weak components" `Quick test_weak_components;
          Alcotest.test_case "largest weak component" `Quick test_largest_weak_component;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "strongly connected" `Quick test_strongly_connected;
        ] );
      ( "euler",
        [
          Alcotest.test_case "ring" `Quick test_euler_ring;
          Alcotest.test_case "figure eight" `Quick test_euler_eight;
          Alcotest.test_case "non-eulerian" `Quick test_euler_none;
          Alcotest.test_case "circuit partition" `Quick test_circuit_partition;
        ] );
      ( "cycle",
        [
          Alcotest.test_case "basic" `Quick test_cycle_basic;
          Alcotest.test_case "loop" `Quick test_cycle_loop;
          Alcotest.test_case "edges" `Quick test_cycle_edges;
          Alcotest.test_case "avoid" `Quick test_cycle_avoid;
          Alcotest.test_case "rotate/successor" `Quick test_cycle_rotate;
          Alcotest.test_case "of_successor_map" `Quick test_of_successor_map;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "ring" `Quick test_connectivity_ring;
          Alcotest.test_case "complete digraph" `Quick test_connectivity_complete;
          Alcotest.test_case "disconnected" `Quick test_connectivity_disconnected;
          Alcotest.test_case "bidirected cycle" `Quick test_connectivity_bidirected_cycle;
          Alcotest.test_case "cut vertex" `Quick test_connectivity_cut_vertex;
          Alcotest.test_case "De Bruijn facts (EH85)" `Quick test_connectivity_de_bruijn;
        ] );
      ("bitset", [ Alcotest.test_case "basic" `Quick test_bitset_basic ]);
      ( "csr",
        [
          Alcotest.test_case "ring" `Quick test_csr_ring;
          Alcotest.test_case "parallel edges and loops" `Quick test_csr_parallel_and_loops;
        ] );
      ( "itopo",
        [
          Alcotest.test_case "bfs on ring" `Quick test_itopo_bfs_ring;
          Alcotest.test_case "component members order" `Quick test_itopo_component_members;
          Alcotest.test_case "largest weak component" `Quick test_itopo_largest_weak;
          Alcotest.test_case "no_preds sweep" `Quick test_itopo_no_preds;
          Alcotest.test_case "parallel levels bit-identical" `Quick test_itopo_parallel_levels;
          Alcotest.test_case "arena workspace" `Quick test_itopo_ws_arena;
          Alcotest.test_case "par_threshold boundary" `Quick test_itopo_par_threshold;
        ] );
      ( "flatarr",
        [
          Alcotest.test_case "basics" `Quick test_flatarr_basics;
          Alcotest.test_case "arena carving" `Quick test_flatarr_arena;
        ] );
      ( "sched",
        [
          Alcotest.test_case "parallel_for covers once" `Quick test_sched_parallel_for;
          Alcotest.test_case "chunk ranges" `Quick test_sched_chunk_ranges;
          Alcotest.test_case "exceptions" `Quick test_sched_exceptions;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
      ( "compact vs reference",
        List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite_compact );
    ]
