The psi / phi / MAX functions of Chapter 3 (Table 3.1 / 3.2 values):

  $ debruijn-rings psi 28
  psi(28) = 9
  phi(28) = 7
  MAX(psi-1, phi) = 8

  $ debruijn-rings psi 13
  psi(13) = 7
  phi(13) = 11
  MAX(psi-1, phi) = 11

Chapter 4 necklace counts (the thesis's worked examples):

  $ debruijn-rings count -d 2 -n 12
  352

  $ debruijn-rings count -d 2 -n 12 --length 6
  9

  $ debruijn-rings count -d 2 -n 12 --weight 4
  43

  $ debruijn-rings count -d 2 -n 12 --weight 4 --length 6
  2

Example 2.1: the 21-processor ring of B(3,3) minus {N(020), N(112)}:

  $ debruijn-rings ffc -d 3 -n 3 020 112
  # ring length 21 of 27 nodes (guarantee 21 for f = 2)
  000 001 011 111 110 101 012 122 222 221 212 120 201 010 102 022 220 202 021 210 100

The distributed protocol returns the same ring:

  $ debruijn-rings ffc -d 3 -n 3 --distributed 020 112 | tail -n 1
  000 001 011 111 110 101 012 122 222 221 212 120 201 010 102 022 220 202 021 210 100

... also when its big rounds are stepped in parallel on OCaml domains
(the simulator merges sends deterministically, so the run is
bit-identical):

  $ debruijn-rings ffc -d 3 -n 3 --distributed --domains 2 020 112 | tail -n 1
  000 001 011 111 110 101 012 122 222 221 212 120 201 010 102 022 220 202 021 210 100

Edge faults (Chapter 3): a Hamiltonian ring avoiding two links of B(5,2):

  $ debruijn-rings edge -d 5 -n 2 01-12 12-21 | head -n 1
  # tolerance MAX(psi-1, phi) = 3

The streaming Chapter-3 engine: the ring is built and verified through
successor arithmetic (no d^n array), and the route taken is reported:

  $ debruijn-rings dhc -d 3 -n 2 --fault 01-12
  # streaming ring of B(3,2): 9 nodes via construction, verified fault-free hamiltonian true
  01 11 10 02 22 21 12 20 00

  $ debruijn-rings dhc -d 2 -n 10 | head -n 1
  # streaming ring of B(2,10): 1024 nodes via construction, verified fault-free hamiltonian true

A seeded edge-fault campaign is fully reproducible, also across domains:

  $ debruijn-rings dhc -d 6 -n 2 --campaign --trials 5 --fmax 3
  # campaign on B(6,2): 5 trials per point, tolerance MAX(psi-1, phi) = 1
  #   f  success  construction  disjoint  masked  mean-ring-length
      0    5/5               5         0       0              36.0
      1    5/5               5         0       0              36.0
      2    5/5               5         0       0              36.0
      3    4/5               0         4       1              34.6

  $ debruijn-rings dhc -d 6 -n 2 --campaign --trials 5 --fmax 3 --domains 2 | tail -n 4
      0    5/5               5         0       0              36.0
      1    5/5               5         0       0              36.0
      2    5/5               5         0       0              36.0
      3    4/5               0         4       1              34.6

A node-fault campaign (Chapter 2, Tables 2.1/2.2 shape): arena-pooled
trials, Proposition 2.2/2.3 bound checks where applicable, and the same
bit-identity across domains:

  $ debruijn-rings ffc -d 3 -n 3 --campaign --trials 5 --fcounts 1,2
  # node-fault campaign on B(3,3): 5 trials per point, one workspace per domain
  #   f  embedded  verified     bound  mean-|B*|  mean-ring  mean-ecc  min-ring
      1     5/5            5       5/5       24.0       24.0      3.80        24
      2     5/5            5         -       20.6       20.6      4.40        20

  $ debruijn-rings ffc -d 3 -n 3 --campaign --trials 5 --fcounts 1,2 --domains 2 | tail -n 2
      1     5/5            5       5/5       24.0       24.0      3.80        24
      2     5/5            5         -       20.6       20.6      4.40        20

A fault/repair churn campaign through the incremental live engine: the
same statistics regardless of domain count:

  $ debruijn-rings ffc -d 2 -n 6 --churn --trials 4 --events 50 --fcounts 2,4
  # churn campaign on B(2,6): 4 trials x 50 events per target, one live engine per domain
  # target  faults  repairs  patched  recomp  unchg  errors  mean-ring  min-ring  live-f
         2     107       93      131      43     26       0       46.0        42     3.5
         4     108       92       92      67     41       0       41.0        25     4.0

  $ debruijn-rings ffc -d 2 -n 6 --churn --trials 4 --events 50 --fcounts 2,4 --domains 2 | tail -n 2
         2     107       93      131      43     26       0       46.0        42     3.5
         4     108       92       92      67     41       0       41.0        25     4.0

Disjoint rings (psi(4) = 3):

  $ debruijn-rings disjoint -d 4 -n 2 | head -n 1
  # 3 edge-disjoint Hamiltonian rings (psi(4) = 3)

Ring collectives over embedded rings: an allreduce on the FFC ring of
B(2,8) under two seeded node faults, exact-verified against the
rank-space reference execution:

  $ debruijn-rings collective -d 2 -n 8 --op allreduce --faults 2
  # allreduce over the FFC ring of B(2,8), 2 node fault(s)
  # rings 1  ranks 8  phases 14  rounds 432
  # delivered 3444  wire-words 13776  payload-words 32  max-link-load 14  max-port-load 1
  verified true  checksum 95144

Striping across the psi(4) = 3 edge-disjoint rings triples the payload
words moved in the same number of rounds:

  $ debruijn-rings collective -d 4 -n 3 --rings 3 --op rs
  # reduce-scatter striped over 3 edge-disjoint ring(s) of B(4,3), 0 link fault(s)
  # rings 3  ranks 8  phases 7  rounds 57
  # delivered 1344  wire-words 5376  payload-words 96  max-link-load 7  max-port-load 3
  verified true  checksum 167251

One seeded link fault kills one ring; the survivors still verify:

  $ debruijn-rings collective -d 4 -n 3 --rings 3 --op ar --faults 1
  # allreduce striped over 3 edge-disjoint ring(s) of B(4,3), 1 link fault(s)
  # rings 2  ranks 8  phases 14  rounds 113
  # delivered 1792  wire-words 7168  payload-words 64  max-link-load 14  max-port-load 2
  verified true  checksum 197216

... and parallel simulator stepping is bit-identical:

  $ debruijn-rings collective -d 4 -n 3 --rings 3 --op ar --faults 1 --domains 2
  # allreduce striped over 3 edge-disjoint ring(s) of B(4,3), 1 link fault(s)
  # rings 2  ranks 8  phases 14  rounds 113
  # delivered 1792  wire-words 7168  payload-words 64  max-link-load 14  max-port-load 2
  verified true  checksum 197216

Bidirectional striping doubles the logical rings (each direction
carries its own stripe over the symmetric closure):

  $ debruijn-rings collective -d 4 -n 3 --rings 2 --op ag --bidir
  # all-gather striped over 2 edge-disjoint ring(s) of B(4,3), 0 link fault(s)
  # rings 4  ranks 8  phases 7  rounds 57
  # delivered 1792  wire-words 7168  payload-words 128  max-link-load 14  max-port-load 2
  verified true  checksum 51216

The compiled fastpath executor reproduces the netsim report
byte-for-byte (same pins as the first collective above):

  $ debruijn-rings collective -d 2 -n 8 --op allreduce --faults 2 --engine fastpath
  # allreduce over the FFC ring of B(2,8), 2 node fault(s)
  # rings 1  ranks 8  phases 14  rounds 432
  # delivered 3444  wire-words 13776  payload-words 32  max-link-load 14  max-port-load 1
  verified true  checksum 95144

... including under parallel phase execution across domains:

  $ debruijn-rings collective -d 4 -n 3 --rings 3 --op ar --faults 1 --engine fastpath --domains 2
  # allreduce striped over 3 edge-disjoint ring(s) of B(4,3), 1 link fault(s)
  # rings 2  ranks 8  phases 14  rounds 113
  # delivered 1792  wire-words 7168  payload-words 64  max-link-load 14  max-port-load 2
  verified true  checksum 197216

Asking for more ranks than the ring has processors is an error unless
clamping is requested explicitly:

  $ debruijn-rings collective -d 2 -n 6 --op ag --ranks 99 2>&1
  error: Collective.Exec.run: spec.ranks 99 > ring length 64 (pass ~clamp_ranks:true to clamp)
  # all-gather over the FFC ring of B(2,6), 0 node fault(s)
  [2]

  $ debruijn-rings collective -d 2 -n 6 --op ag --ranks 99 --clamp-ranks --engine fastpath
  # all-gather over the FFC ring of B(2,6), 0 node fault(s)
  # rings 1  ranks 64  phases 63  rounds 64
  # delivered 4032  wire-words 16128  payload-words 256  max-link-load 63  max-port-load 1
  verified true  checksum 811328

Fault-tolerant routing (Proposition 2.2):

  $ debruijn-rings route -d 3 -n 3 012 221 --fault 020
  # 6 hops (bound 2n = 6)
  012 -> 121 -> 211 -> 112 -> 122 -> 222 -> 221

A dead endpoint is reported as an error:

  $ debruijn-rings route -d 3 -n 3 020 111
  # 5 hops (bound 2n = 6)
  020 -> 200 -> 000 -> 001 -> 011 -> 111

  $ debruijn-rings route -d 3 -n 3 020 111 --fault 020 2>&1
  no fault-free route (endpoint on a faulty necklace?)
  [1]
