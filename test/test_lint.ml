(* Regression tests for the debruijn-lint kernel-safety rules: generated
   fixture trees are linted with the real binary (path in the
   DEBRUIJN_LINT environment variable, wired by the dune action) and
   the exit code and reported rule/line pairs are checked against the
   generator's own accounting. *)

let lint_exe =
  match Sys.getenv_opt "DEBRUIJN_LINT" with
  | Some p when p <> "" ->
      if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  | _ -> failwith "DEBRUIJN_LINT not set; run via dune runtest"

let with_temp_dir f =
  let dir = Filename.temp_file "lintfix" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let write_file dir name contents =
  let oc = open_out (Filename.concat dir name) in
  output_string oc contents;
  close_out oc

(* Run the linter in --json mode on [dir]: (exit code, combined output). *)
let run_lint dir =
  let out = Filename.temp_file "lintout" ".json" in
  let cmd =
    Printf.sprintf "%s --json %s > %s 2>&1" (Filename.quote lint_exe)
      (Filename.quote dir) (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let lint_src src =
  with_temp_dir (fun dir ->
      write_file dir "gen.ml" src;
      run_lint dir)

let count_sub s sub =
  let ls = String.length s and lsub = String.length sub in
  let n = ref 0 in
  for i = 0 to ls - lsub do
    if String.sub s i lsub = sub then incr n
  done;
  !n

let has_finding out ~rule ~line =
  (* The emitter prints one finding per line, so rule and location of
     the same finding share a line of output. *)
  String.split_on_char '\n' out
  |> List.exists (fun l ->
         count_sub l (Printf.sprintf "\"rule\": \"%s\"" rule) > 0
         && count_sub l (Printf.sprintf "\"line\": %d" line) > 0)

let pad_lines pad = String.concat "" (List.init pad (fun _ -> "(* pad *)\n"))

(* --- R6: parallel disjoint-write ---------------------------------- *)

(* [k] writes in the loop body, at lines pad+4 .. pad+3+k; each targets
   slot 0 of the captured array (not chunk-derived) unless [safe]. *)
let r6_src ~pad ~k ~safe ~floating_proof =
  let writes =
    List.init k (fun j ->
        let stmt = if safe then "out.(i + 0) <- i" else "out.(0) <- i" in
        if j = k - 1 then "        " ^ stmt ^ "\n"
        else "        " ^ stmt ^ ";\n")
  in
  (if floating_proof then
     "[@@@lint.par_write \"qcheck fixture: serial pool\"]\n"
   else "")
  ^ pad_lines pad
  ^ "let sweep pool (out : int array) n =\n"
  ^ "  Sched.parallel_for pool ~chunk:8 ~lo:0 ~hi:n (fun _ci lo hi ->\n"
  ^ "      for i = lo to hi - 1 do\n" ^ String.concat "" writes ^ "      done)\n"

let r6_violations =
  QCheck.Test.make ~count:10 ~name:"R6 flags each non-derived write at its line"
    QCheck.(pair (int_range 0 6) (int_range 1 4))
    (fun (pad, k) ->
      let code, out =
        lint_src (r6_src ~pad ~k ~safe:false ~floating_proof:false)
      in
      code = 1
      && count_sub out "\"rule\": \"R6\"" = k
      && List.for_all
           (fun j -> has_finding out ~rule:"R6" ~line:(pad + 4 + j))
           (List.init k Fun.id))

let r6_chunk_derived_clean =
  QCheck.Test.make ~count:10 ~name:"R6 accepts chunk-derived writes"
    QCheck.(pair (int_range 0 6) (int_range 1 4))
    (fun (pad, k) ->
      let code, out =
        lint_src (r6_src ~pad ~k ~safe:true ~floating_proof:false)
      in
      code = 0 && count_sub out "\"rule\"" = 0)

let r6_par_write_suppresses =
  QCheck.Test.make ~count:10
    ~name:"R6 [@@@lint.par_write] silences the writes and stays live"
    QCheck.(pair (int_range 0 6) (int_range 1 4))
    (fun (pad, k) ->
      (* the proof also has to keep R8 quiet: a suppression that fires
         is not a dead suppression *)
      let code, out =
        lint_src (r6_src ~pad ~k ~safe:false ~floating_proof:true)
      in
      code = 0 && count_sub out "\"rule\"" = 0)

(* --- R7: zero-alloc hot scopes ------------------------------------ *)

(* One allocation construct in the loop body of a hot kernel, at line
   pad+3. *)
let r7_allocs = [ "(i, i + 1)"; "Array.make 2 0"; "[ i ]"; "Some i" ]

let r7_src ~pad ~alloc ~allowed =
  let site =
    match alloc with
    | None -> "i + 1"
    | Some a ->
        if allowed then "(" ^ a ^ " [@lint.allow \"R7 qcheck fixture\"])" else a
  in
  pad_lines pad ^ "let kernel n =\n" ^ "  (for i = 0 to n - 1 do\n"
  ^ "     ignore (" ^ site ^ ")\n" ^ "   done)\n" ^ "  [@lint.hot]\n"

let r7_violations =
  QCheck.Test.make ~count:16 ~name:"R7 flags the allocation at its line"
    QCheck.(pair (int_range 0 6) (int_range 0 3))
    (fun (pad, which) ->
      let alloc = List.nth r7_allocs which in
      let code, out =
        lint_src (r7_src ~pad ~alloc:(Some alloc) ~allowed:false)
      in
      code = 1
      && count_sub out "\"rule\": \"R7\"" = 1
      && has_finding out ~rule:"R7" ~line:(pad + 3))

let r7_alloc_free_clean =
  QCheck.Test.make ~count:10 ~name:"R7 accepts allocation-free kernels"
    QCheck.(int_range 0 6)
    (fun pad ->
      let code, out = lint_src (r7_src ~pad ~alloc:None ~allowed:false) in
      code = 0 && count_sub out "\"rule\"" = 0)

let r7_allow_suppresses =
  QCheck.Test.make ~count:16
    ~name:"R7 [@lint.allow] silences the site and stays live"
    QCheck.(pair (int_range 0 6) (int_range 0 3))
    (fun (pad, which) ->
      let alloc = List.nth r7_allocs which in
      let code, out =
        lint_src (r7_src ~pad ~alloc:(Some alloc) ~allowed:true)
      in
      code = 0 && count_sub out "\"rule\"" = 0)

(* --- R8: the audit sees a proof that proves nothing ---------------- *)

let r8_dead_proof () =
  let code, out =
    lint_src (r6_src ~pad:0 ~k:1 ~safe:true ~floating_proof:true)
  in
  Alcotest.(check int) "exit code" 1 code;
  Alcotest.(check bool) "one R8 finding" true
    (count_sub out "\"rule\": \"R8\"" = 1)

let qsuite =
  [
    r6_violations;
    r6_chunk_derived_clean;
    r6_par_write_suppresses;
    r7_violations;
    r7_alloc_free_clean;
    r7_allow_suppresses;
  ]

let () =
  Alcotest.run "lint"
    [
      ( "kernel-safety",
        List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite );
      ("audit", [ Alcotest.test_case "dead par_write proof" `Quick r8_dead_proof ]);
    ]
