(* Tests for Chapter 4: necklace counting. *)

module NC = Necklace_count.Count

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* The worked examples of §4.3 *)

let test_thesis_examples () =
  check_int "necklaces of length 6 in B(2,12)" 9 (NC.of_length ~d:2 ~n:12 ~t:6);
  check_int "total necklaces in B(2,12)" 352 (NC.total ~d:2 ~n:12);
  check_int "weight-4 length-6 necklaces in B(2,12)" 2
    (NC.of_weight_and_length ~d:2 ~n:12 ~k:4 ~t:6);
  check_int "weight-4 necklaces in B(2,12)" 43 (NC.of_weight ~d:2 ~n:12 ~k:4);
  check_int "weight-4 length-4 necklaces in B(3,4)" 4
    (NC.of_weight_and_length ~d:3 ~n:4 ~k:4 ~t:4)

let test_intermediate_arithmetic () =
  (* (1/6)[2μ(6)+2²μ(3)+2³μ(2)+2⁶μ(1)] = (2−4−8+64)/6 = 9 and
     (1/12)[2φ(12)+2²φ(6)+2³φ(4)+2⁴φ(3)+2⁶φ(2)+2¹²φ(1)]
     = (8+8+16+32+64+4096)/12 = 352 — the thesis's intermediate sums. *)
  check_int "length-6 numerator" 54 (2 - 4 - 8 + 64);
  check_int "total numerator" 4224 (8 + 8 + 16 + 32 + 64 + 4096);
  (* c₃(4,4) = 19 in the B(3,4) example *)
  check_int "c3(4,4)" 19 (NC.tuples_of_weight ~d:3 ~n:4 ~k:4)

(* ------------------------------------------------------------------ *)
(* closed forms vs exhaustive enumeration *)

let small_cases = [ (2, 4); (2, 6); (2, 8); (2, 12); (3, 3); (3, 4); (3, 6); (4, 3); (4, 4); (5, 2); (5, 4); (6, 2) ]

let test_of_length_vs_enumeration () =
  List.iter
    (fun (d, n) ->
      List.iter
        (fun t ->
          check_int
            (Printf.sprintf "d=%d n=%d t=%d" d n t)
            (NC.enumerate_of_length ~d ~n ~t)
            (NC.of_length ~d ~n ~t))
        (Numtheory.divisors n))
    small_cases

let test_total_vs_enumeration () =
  List.iter
    (fun (d, n) ->
      check_int (Printf.sprintf "d=%d n=%d" d n) (NC.enumerate_total ~d ~n)
        (NC.total ~d ~n))
    small_cases

let test_weight_vs_enumeration () =
  List.iter
    (fun (d, n) ->
      for k = 0 to n * (d - 1) do
        check_int
          (Printf.sprintf "d=%d n=%d k=%d" d n k)
          (NC.enumerate_of_weight ~d ~n ~k)
          (NC.of_weight ~d ~n ~k);
        List.iter
          (fun t ->
            check_int
              (Printf.sprintf "d=%d n=%d k=%d t=%d" d n k t)
              (NC.enumerate_of_weight_and_length ~d ~n ~k ~t)
              (NC.of_weight_and_length ~d ~n ~k ~t))
          (Numtheory.divisors n)
      done)
    [ (2, 4); (2, 6); (2, 12); (3, 4); (3, 6); (4, 3); (5, 4) ]

let test_type_vs_enumeration () =
  (* all types of B(3,4) and B(2,6) *)
  let all_types d n =
    let rec go d remaining =
      if d = 1 then [ [ remaining ] ]
      else
        List.concat_map
          (fun k -> List.map (fun rest -> k :: rest) (go (d - 1) (remaining - k)))
          (List.init (remaining + 1) Fun.id)
    in
    go d n
  in
  List.iter
    (fun (d, n) ->
      List.iter
        (fun counts ->
          check_int
            (Printf.sprintf "type %s" (String.concat "," (List.map string_of_int counts)))
            (NC.enumerate_of_type ~d ~n ~counts)
            (NC.of_type ~n ~counts))
        (all_types d n))
    [ (2, 6); (3, 4); (4, 3) ]

let test_type_by_length () =
  (* [0101] has type [2;2] in B(2,4): one necklace of length 2. *)
  check_int "alternating type length 2" 1 (NC.of_type_and_length ~n:4 ~counts:[ 2; 2 ] ~t:2);
  check_int "alternating type length 4" 1 (NC.of_type_and_length ~n:4 ~counts:[ 2; 2 ] ~t:4);
  check_int "total [2;2] necklaces" 2 (NC.of_type ~n:4 ~counts:[ 2; 2 ])

(* ------------------------------------------------------------------ *)
(* structural identities *)

let test_weight_counts_sum_to_total () =
  (* Σ_k (necklaces of weight k) = total necklaces. *)
  List.iter
    (fun (d, n) ->
      let sum = ref 0 in
      for k = 0 to n * (d - 1) do
        sum := !sum + NC.of_weight ~d ~n ~k
      done;
      check_int (Printf.sprintf "d=%d n=%d" d n) (NC.total ~d ~n) !sum)
    small_cases

let test_length_counts_weighted_sum () =
  (* sum over divisors t of n of t * (necklaces of length t) = d^n. *)
  List.iter
    (fun (d, n) ->
      let sum =
        Numtheory.sum_over_divisors n (fun t -> t * NC.of_length ~d ~n ~t)
      in
      check_int (Printf.sprintf "d=%d n=%d" d n) (Numtheory.pow d n) sum)
    small_cases

let test_tuples_of_weight_identities () =
  (* Σ_k c_d(n,k) = dⁿ, and symmetry c_d(n,k) = c_d(n, n(d−1)−k). *)
  List.iter
    (fun (d, n) ->
      let sum = ref 0 in
      for k = 0 to n * (d - 1) do
        sum := !sum + NC.tuples_of_weight ~d ~n ~k;
        check_int "symmetry" (NC.tuples_of_weight ~d ~n ~k)
          (NC.tuples_of_weight ~d ~n ~k:((n * (d - 1)) - k))
      done;
      check_int "sum" (Numtheory.pow d n) !sum)
    [ (2, 5); (3, 4); (4, 3); (5, 3); (6, 2) ]

let test_binary_weight_is_binomial () =
  for n = 1 to 12 do
    for k = 0 to n do
      check_int "c2 = binomial" (Numtheory.binomial n k) (NC.tuples_of_weight ~d:2 ~n ~k)
    done
  done

let test_mac_mahon_agreement () =
  (* Total necklace count agrees with the classical MacMahon formula
     through a second route: Burnside over all rotations. *)
  List.iter
    (fun (d, n) ->
      let burnside =
        List.init n (fun i -> Numtheory.pow d (Numtheory.gcd (i + 1) n))
        |> List.fold_left ( + ) 0
      in
      check_int (Printf.sprintf "d=%d n=%d" d n) (burnside / n) (NC.total ~d ~n))
    small_cases

(* ------------------------------------------------------------------ *)
(* properties *)

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"of_length zero when t does not divide n" ~count:200
      (triple (int_range 2 5) (int_range 2 10) (int_range 1 10))
      (fun (d, n, t) ->
        QCheck.assume (n mod t <> 0);
        NC.of_length ~d ~n ~t = 0);
    Test.make ~name:"counts are non-negative" ~count:200
      (triple (int_range 2 5) (int_range 2 8) (int_range 0 30))
      (fun (d, n, k) -> NC.of_weight ~d ~n ~k >= 0 && NC.tuples_of_weight ~d ~n ~k >= 0);
    Test.make ~name:"weight gamma consistency on random cases" ~count:100
      (pair (int_range 2 4) (int_range 2 6))
      (fun (d, n) ->
        List.for_all
          (fun k -> NC.of_weight ~d ~n ~k = NC.enumerate_of_weight ~d ~n ~k)
          (List.init ((n * (d - 1)) + 1) Fun.id));
  ]

let () =
  Alcotest.run "necklace_count"
    [
      ( "thesis-examples",
        [
          Alcotest.test_case "section 4.3 values" `Quick test_thesis_examples;
          Alcotest.test_case "intermediate arithmetic" `Quick test_intermediate_arithmetic;
        ] );
      ( "vs-enumeration",
        [
          Alcotest.test_case "by length" `Quick test_of_length_vs_enumeration;
          Alcotest.test_case "total" `Quick test_total_vs_enumeration;
          Alcotest.test_case "by weight" `Quick test_weight_vs_enumeration;
          Alcotest.test_case "by type" `Quick test_type_vs_enumeration;
          Alcotest.test_case "type by length" `Quick test_type_by_length;
        ] );
      ( "identities",
        [
          Alcotest.test_case "weights sum to total" `Quick test_weight_counts_sum_to_total;
          Alcotest.test_case "lengths weighted-sum to d^n" `Quick test_length_counts_weighted_sum;
          Alcotest.test_case "c_d identities" `Quick test_tuples_of_weight_identities;
          Alcotest.test_case "binary weight = binomial" `Quick test_binary_weight_is_binomial;
          Alcotest.test_case "MacMahon agreement" `Quick test_mac_mahon_agreement;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
