(* R8: a suppression that silences no live finding is itself an
   error. *)
let safe x = (x + 1 [@lint.allow "R5 nothing here is unsafe"])
