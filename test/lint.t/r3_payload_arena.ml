(* Fixture: trips R3 only — a toplevel off-heap payload arena in the
   collective-buffer shape (plain [Flatarr.make], one flat int arena
   carved into per-rank slices).  At toplevel the slices are shared by
   every domain the simulator spawns; [Exec.run] keeps the arena local
   to the run for exactly this reason. *)
let payload = Flatarr.make (16 * 4) 0

let slice rank = Flatarr.sub payload (rank * 4) 4

let par f = Domain.join (Domain.spawn f)
