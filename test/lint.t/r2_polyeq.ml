(* Fixture: trips R2 only — polymorphic (=) with a structured operand. *)
let is_singleton xs = xs = [ 1 ]
