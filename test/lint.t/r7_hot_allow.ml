(* R7 escape: the same hot scope with a reasoned [@lint.allow] on each
   allocation site is clean. *)
let kernel (out : int array) n =
  (for i = 0 to n - 1 do
     let pair = ((i, i * i) [@lint.allow "R7 fixture: one pair per item"]) in
     let tmp =
       (Array.make 4 0 [@lint.allow "R7 fixture: scratch, hoisted in prod"])
     in
     out.(i) <- fst pair + tmp.(0)
   done)
  [@lint.hot]
