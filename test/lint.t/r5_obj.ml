(* Fixture: trips R5 only — unsafe cast. *)
let cast (x : int) : nativeint = Obj.magic x
