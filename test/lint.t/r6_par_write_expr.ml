(* R6 escape, expression form: the offending write carries its own
   [@lint.par_write "proof"]. *)
let total = ref 0

let sweep pool n =
  Sched.parallel_for pool ~chunk:64 ~lo:0 ~hi:n (fun _ci lo hi ->
      for i = lo to hi - 1 do
        ((total := !total + i)
        [@lint.par_write "fixture: the pool is single-domain here"])
      done)
