(* R7: allocation constructs inside a [@lint.hot] scope. *)
let kernel (out : int array) n =
  (for i = 0 to n - 1 do
     let pair = (i, i * i) in
     let tmp = Array.make 4 0 in
     out.(i) <- fst pair + tmp.(0)
   done)
  [@lint.hot]
