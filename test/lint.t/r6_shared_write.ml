(* R6: a parallel_for body that writes captured state — once at a fixed
   index, once through a captured ref cell. *)
let total = ref 0

let sweep pool (out : int array) n =
  Sched.parallel_for pool ~chunk:64 ~lo:0 ~hi:n (fun _ci lo hi ->
      for i = lo to hi - 1 do
        out.(0) <- out.(0) + i;
        total := !total + i
      done)
