(* Fixture: trips R3 only — a toplevel off-heap scratch array in a file
   that uses Domain.  Bigarray storage is unsynchronized shared memory;
   a toplevel Flatarr races exactly like a toplevel Array. *)
let scratch = Flatarr.Byte.make 1024 0

let read i = scratch.{i}

let par f = Domain.join (Domain.spawn f)
