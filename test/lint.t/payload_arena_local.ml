(* Fixture: clean — the same payload arena confined to the run that
   allocates it (the [Collective.Exec] discipline: each simulator step
   writes only the stepped node's own slice, and the arena never
   outlives the function).  R3 is about toplevel sharing, so a local
   arena needs no [@@lint.domain_safe]. *)
let run () =
  let payload = Flatarr.make (16 * 4) 0 in
  payload.{0} <- 1;
  payload.{0}

let par f = Domain.join (Domain.spawn f)
