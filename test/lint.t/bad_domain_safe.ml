(* Fixture: [@@lint.domain_safe] without a reason does not suppress and
   is itself reported. *)
let cache = Hashtbl.create 16 [@@lint.domain_safe]

let par f = Domain.join (Domain.spawn f)
