(* Fixture: trips R1 only — ambient PRNG. *)
let roll () = Random.int 6
