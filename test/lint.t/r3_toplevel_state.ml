(* Fixture: trips R3 only — mutable toplevel state in a file that uses
   Domain (the single-file fallback of the reachability analysis). *)
let cache : (int, int) Hashtbl.t = Hashtbl.create 16

let lookup k = Hashtbl.find_opt cache k

let par f = Domain.join (Domain.spawn f)
