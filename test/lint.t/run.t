The rule registry:

  $ debruijn-lint --list-rules
  R1  no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml
  R2  no polymorphic =/compare/Hashtbl.hash on structured values
  R3  no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])
  R4  arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws never escapes into data
  R5  no Obj.magic/%identity; no Printf in lib/

Each fixture trips exactly one rule, with the right id and location:

  $ debruijn-lint r1_random.ml
  r1_random.ml:2:14: [R1] Random.int: ambient PRNG breaks seeded reproducibility; use Util.Rng
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r2_polyeq.ml
  r2_polyeq.ml:2:25: [R2] polymorphic (=) on a structured value; pattern-match or use a typed equality
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_toplevel_state.ml
  r3_toplevel_state.ml:3:0: [R3] toplevel binding holds a mutable Hashtbl.create, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_flatarr_state.ml
  r3_flatarr_state.ml:4:0: [R3] toplevel binding holds an off-heap Flatarr.Byte.make, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_payload_arena.ml
  r3_payload_arena.ml:6:0: [R3] toplevel binding holds a mutable Flatarr.make, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

A payload arena confined to the function that allocates it (the
Collective.Exec buffer discipline) is clean without any annotation:

  $ debruijn-lint payload_arena_local.ml
  debruijn-lint: 1 file(s), 0 finding(s)
  $ debruijn-lint r4_arena_carve.ml
  r4_arena_carve.ml:3:18: [R4] Arena.carve: carving hands out aliasing views; arenas are carved only by the Workspace and Itopo scratch constructors
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r4_ws_escape.ml
  r4_ws_escape.ml:2:18: [R4] the ?ws arena handle escapes into a data structure; pass it as an argument or project the documented fields instead
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r4_workspace.ml
  r4_workspace.ml:3:13: [R4] Workspace.scratch: arena internals are private to the FFC pipeline; consume results through the documented record fields
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r5_obj.ml
  r5_obj.ml:2:33: [R5] Obj.magic: Obj breaks type safety
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

Every suppression form silences its finding:

  $ debruijn-lint suppressed.ml
  debruijn-lint: 1 file(s), 0 finding(s)

A [@@lint.domain_safe] without a reason suppresses nothing and is
itself reported:

  $ debruijn-lint bad_domain_safe.ml
  bad_domain_safe.ml:3:0: [R3] toplevel binding holds a mutable Hashtbl.create, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  bad_domain_safe.ml:3:30: [R3] [@lint.domain_safe] requires a non-empty reason string
  debruijn-lint: 1 file(s), 2 finding(s)
  [1]

Machine-readable output:

  $ debruijn-lint --json r5_obj.ml
  [
    {"rule": "R5", "file": "r5_obj.ml", "line": 2, "col": 33, "message": "Obj.magic: Obj breaks type safety"}
  ]
  [1]

Usage errors:

  $ debruijn-lint
  usage: debruijn-lint [--json] [--list-rules] PATH...
  [2]
  $ debruijn-lint --frobnicate lib
  debruijn-lint: unknown option --frobnicate
  usage: debruijn-lint [--json] [--list-rules] PATH...
  [2]
  $ debruijn-lint no/such/path
  debruijn-lint: no such path no/such/path
  [2]
