The rule registry:

  $ debruijn-lint --list-rules
  R1  no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml
  R2  no polymorphic =/compare/Hashtbl.hash on structured values
  R3  no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])
  R4  arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws never escapes into data
  R5  no Obj.magic/%identity; no Printf in lib/
  R6  parallel_for bodies write only worker-local state or chunk-derived indices ([@lint.par_write "proof"] to override)
  R7  [@lint.hot] scopes stay allocation-free (escape: [@lint.allow "R7 why"])
  R8  suppression audit: every lint attribute must silence a live finding (no escape hatch)

  $ debruijn-lint --list-rules --json
  [
    {"id": "R1", "summary": "no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml"},
    {"id": "R2", "summary": "no polymorphic =/compare/Hashtbl.hash on structured values"},
    {"id": "R3", "summary": "no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])"},
    {"id": "R4", "summary": "arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws never escapes into data"},
    {"id": "R5", "summary": "no Obj.magic/%identity; no Printf in lib/"},
    {"id": "R6", "summary": "parallel_for bodies write only worker-local state or chunk-derived indices ([@lint.par_write \"proof\"] to override)"},
    {"id": "R7", "summary": "[@lint.hot] scopes stay allocation-free (escape: [@lint.allow \"R7 why\"])"},
    {"id": "R8", "summary": "suppression audit: every lint attribute must silence a live finding (no escape hatch)"}
  ]

Each fixture trips exactly one rule, with the right id and location:

  $ debruijn-lint r1_random.ml
  r1_random.ml:2:14: [R1] Random.int: ambient PRNG breaks seeded reproducibility; use Util.Rng
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r2_polyeq.ml
  r2_polyeq.ml:2:25: [R2] polymorphic (=) on a structured value; pattern-match or use a typed equality
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_toplevel_state.ml
  r3_toplevel_state.ml:3:0: [R3] toplevel binding holds a mutable Hashtbl.create, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_flatarr_state.ml
  r3_flatarr_state.ml:4:0: [R3] toplevel binding holds an off-heap Flatarr.Byte.make, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r3_payload_arena.ml
  r3_payload_arena.ml:6:0: [R3] toplevel binding holds a mutable Flatarr.make, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

A payload arena confined to the function that allocates it (the
Collective.Exec buffer discipline) is clean without any annotation:

  $ debruijn-lint payload_arena_local.ml
  debruijn-lint: 1 file(s), 0 finding(s)
  $ debruijn-lint r4_arena_carve.ml
  r4_arena_carve.ml:3:18: [R4] Arena.carve: carving hands out aliasing views; arenas are carved only by the Workspace and Itopo scratch constructors
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r4_ws_escape.ml
  r4_ws_escape.ml:2:18: [R4] the ?ws arena handle escapes into a data structure; pass it as an argument or project the documented fields instead
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r4_workspace.ml
  r4_workspace.ml:3:13: [R4] Workspace.scratch: arena internals are private to the FFC pipeline; consume results through the documented record fields
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]
  $ debruijn-lint r5_obj.ml
  r5_obj.ml:2:33: [R5] Obj.magic: Obj breaks type safety
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

R6, the parallel disjoint-write check: a parallel_for body that writes
captured state at a fixed index, or through a captured ref, is flagged
at each write site (this is the build failure a deleted
[@lint.par_write] produces):

  $ debruijn-lint r6_shared_write.ml
  r6_shared_write.ml:8:8: [R6] Array.set writes captured state at an index not derived from the chunk parameters; prove disjointness with [@lint.par_write "proof"]
  r6_shared_write.ml:9:8: [R6] (:=) mutates state captured by the parallel_for body; keep writes worker-local or annotate [@lint.par_write "proof"]
  debruijn-lint: 1 file(s), 2 finding(s)
  [1]

All three [@lint.par_write "proof"] placements silence it — on the
offending expression, on an enclosing binding, and floating at file
scope:

  $ debruijn-lint r6_par_write_expr.ml
  debruijn-lint: 1 file(s), 0 finding(s)
  $ debruijn-lint r6_par_write_binding.ml
  debruijn-lint: 1 file(s), 0 finding(s)
  $ debruijn-lint r6_par_write_floating.ml
  debruijn-lint: 1 file(s), 0 finding(s)

A [@lint.par_write] without a reason suppresses nothing and is itself
reported:

  $ debruijn-lint r6_par_write_noreason.ml
  r6_par_write_noreason.ml:8:8: [R6] (:=) mutates state captured by the parallel_for body; keep writes worker-local or annotate [@lint.par_write "proof"]
  r6_par_write_noreason.ml:8:31: [R6] [@lint.par_write] requires a non-empty reason string
  debruijn-lint: 1 file(s), 2 finding(s)
  [1]

R7, the zero-alloc hot-path check: allocation constructs inside a
[@lint.hot] scope are flagged per site (this is the build failure one
new allocation in a hot kernel produces), and a reasoned [@lint.allow
"R7 why"] on each site clears them:

  $ debruijn-lint r7_hot_alloc.ml
  r7_hot_alloc.ml:4:16: [R7] tuple construction inside a [@lint.hot] scope; hoist it out of the hot path or annotate [@lint.allow "R7 why"]
  r7_hot_alloc.ml:5:15: [R7] Array.make allocates inside a [@lint.hot] scope; hoist it out of the hot path or annotate [@lint.allow "R7 why"]
  debruijn-lint: 1 file(s), 2 finding(s)
  [1]
  $ debruijn-lint r7_hot_allow.ml
  debruijn-lint: 1 file(s), 0 finding(s)

R8, the suppression audit: an [@lint.allow] that silences no live
finding is itself an error, at the attribute's location:

  $ debruijn-lint r8_dead_allow.ml
  r8_dead_allow.ml:3:20: [R8] dead suppression: this [@lint.allow] never silences a live R5 finding; delete the attribute or narrow its rule list
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

The same audit applies to [@lint.par_write]: one attached where no
parallel write needs it goes dead and is reported (see
r6_par_write_expr.ml for the live counterpart):

  $ cat > dead_par_write.ml <<'EOF'
  > let f pool n =
  >   Sched.parallel_for pool ~chunk:8 ~lo:0 ~hi:n
  >     ((fun _ci lo hi -> ignore (lo + hi))
  >     [@lint.par_write "nothing shared is written here"])
  > EOF
  $ debruijn-lint dead_par_write.ml
  dead_par_write.ml:4:4: [R8] dead suppression: this [@lint.par_write] never silences a live R6 finding; delete the attribute or narrow its rule list
  debruijn-lint: 1 file(s), 1 finding(s)
  [1]

Every suppression form silences its finding:

  $ debruijn-lint suppressed.ml
  debruijn-lint: 1 file(s), 0 finding(s)

A [@@lint.domain_safe] without a reason suppresses nothing and is
itself reported:

  $ debruijn-lint bad_domain_safe.ml
  bad_domain_safe.ml:3:0: [R3] toplevel binding holds a mutable Hashtbl.create, shared under Domain.spawn; hoist it into the runtime state or annotate [@@lint.domain_safe "why"]
  bad_domain_safe.ml:3:30: [R3] [@lint.domain_safe] requires a non-empty reason string
  debruijn-lint: 1 file(s), 2 finding(s)
  [1]

Path allowlists match by normalized path, not raw string, so the R1
carve-out for lib/util/rng.ml holds from any invocation root:

  $ mkdir -p proj/lib/util
  $ cat > proj/lib/util/rng.ml <<'EOF'
  > let roll st = Random.State.int st 6
  > EOF
  $ debruijn-lint proj
  debruijn-lint: 1 file(s), 0 finding(s)
  $ cat > proj/lib/util/other.ml <<'EOF'
  > let roll () = Random.int 6
  > EOF
  $ debruijn-lint proj
  proj/lib/util/other.ml:1:14: [R1] Random.int: ambient PRNG breaks seeded reproducibility; use Util.Rng
  debruijn-lint: 2 file(s), 1 finding(s)
  [1]

Machine-readable output:

  $ debruijn-lint --json r5_obj.ml
  [
    {"rule": "R5", "file": "r5_obj.ml", "line": 2, "col": 33, "message": "Obj.magic: Obj breaks type safety"}
  ]
  [1]

SARIF for code-scanning upload (note the 1-based startColumn):

  $ debruijn-lint --sarif r5_obj.ml
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "debruijn-lint",
            "rules": [
              {"id": "R0", "shortDescription": {"text": "malformed lint attribute"}},
              {"id": "R1", "shortDescription": {"text": "no Stdlib.Random / Unix.gettimeofday outside Util.Rng and bench/jrec.ml"}},
              {"id": "R2", "shortDescription": {"text": "no polymorphic =/compare/Hashtbl.hash on structured values"}},
              {"id": "R3", "shortDescription": {"text": "no mutable toplevel state in Domain-reachable code (annotate with [@@lint.domain_safe])"}},
              {"id": "R4", "shortDescription": {"text": "arena confinement: Workspace internals and Arena carving stay in the pipeline; ?ws never escapes into data"}},
              {"id": "R5", "shortDescription": {"text": "no Obj.magic/%identity; no Printf in lib/"}},
              {"id": "R6", "shortDescription": {"text": "parallel_for bodies write only worker-local state or chunk-derived indices ([@lint.par_write \"proof\"] to override)"}},
              {"id": "R7", "shortDescription": {"text": "[@lint.hot] scopes stay allocation-free (escape: [@lint.allow \"R7 why\"])"}},
              {"id": "R8", "shortDescription": {"text": "suppression audit: every lint attribute must silence a live finding (no escape hatch)"}}
            ]
          }
        },
        "results": [
          {"ruleId": "R5", "level": "error", "message": {"text": "Obj.magic: Obj breaks type safety"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "r5_obj.ml"}, "region": {"startLine": 2, "startColumn": 34}}}]}
        ]
      }
    ]
  }
  [1]

Usage errors:

  $ debruijn-lint
  usage: debruijn-lint [--json|--sarif] [--list-rules] PATH...
  [2]
  $ debruijn-lint --frobnicate lib
  debruijn-lint: unknown option --frobnicate
  usage: debruijn-lint [--json|--sarif] [--list-rules] PATH...
  [2]
  $ debruijn-lint no/such/path
  debruijn-lint: no such path no/such/path
  [2]
