(* Fixture: trips R4 only — Workspace internals accessed outside the
   FFC pipeline files. *)
let peek w = Ffc.Workspace.scratch w
