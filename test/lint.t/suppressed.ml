(* Fixture: every violation above, silenced by its suppression form —
   expression-level [@lint.allow], module-wide [@@@lint.allow], and
   binding-level [@@lint.domain_safe].  Expected findings: none. *)

[@@@lint.allow "R2,R4 fixture: module-wide allowance"]

let roll () = (Random.int 6 [@lint.allow "R1 fixture: expression allowance"])

let is_singleton xs = xs = [ 1 ]

let pack ?ws () = (ws, 0)

let cache : (int, int) Hashtbl.t = Hashtbl.create 16
[@@lint.domain_safe "fixture: populated before any spawn"]

let par f = Domain.join (Domain.spawn f)
