(* R6 escape, floating form: a file-scope [@@@lint.par_write] covers
   every parallel body below it. *)
[@@@lint.par_write "fixture: whole-file disjointness argued offline"]

let total = ref 0

let sweep pool n =
  Sched.parallel_for pool ~chunk:64 ~lo:0 ~hi:n (fun _ci lo hi ->
      for i = lo to hi - 1 do
        total := !total + i
      done)
