(* R6 escape, binding form: [@@lint.par_write] on a let inside the body
   covers the writes in that binding's right-hand side. *)
let sweep pool (out : int array) n =
  Sched.parallel_for pool ~chunk:64 ~lo:0 ~hi:n (fun _ci lo hi ->
      let bump i =
        out.(0) <- out.(0) + i
        [@@lint.par_write "fixture: slot 0 is owned by chunk 0 alone"]
      in
      for i = lo to hi - 1 do
        bump i
      done)
