(* A [@lint.par_write] without a reason suppresses nothing and is
   itself reported. *)
let total = ref 0

let sweep pool n =
  Sched.parallel_for pool ~chunk:64 ~lo:0 ~hi:n (fun _ci lo hi ->
      for i = lo to hi - 1 do
        ((total := !total + i) [@lint.par_write])
      done)
