(* Fixture: trips R4 only — the ?ws arena handle packaged into a tuple. *)
let pack ?ws () = (ws, 0)
