(* Fixture: trips R4 only — carving an arena outside the workspace /
   Itopo scratch constructors. *)
let steal arena = Flatarr.Arena.carve arena 64
