(* Tests for the hypercube baseline. *)

module Cu = Hypercube.Cube
module R = Hypercube.Ring
module C = Graphlib.Cycle
module DG = Graphlib.Digraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_graph () =
  let g = Cu.graph 4 in
  check_int "16 nodes" 16 (DG.n_nodes g);
  check_int "directed edges" (2 * Cu.n_edges_undirected 4) (DG.n_edges g);
  for v = 0 to 15 do
    check_int "degree n" 4 (DG.out_degree g v)
  done;
  check_bool "symmetric" true (DG.mem_edge g 3 7 && DG.mem_edge g 7 3);
  check_bool "no far edges" false (DG.mem_edge g 0 3)

let test_edge_count_comparison () =
  (* The thesis's Chapter 2 aside: Q₁₂ has 24,576 undirected edges while
     the 4096-node De Bruijn graph has 16,384 directed edges. *)
  check_int "Q12 edges" 24576 (Cu.n_edges_undirected 12);
  let p = Debruijn.Word.params ~d:4 ~n:6 in
  check_int "B(4,6) edges" 16384 (DG.n_edges (Debruijn.Graph.b p))

let test_gray_cycle () =
  List.iter
    (fun n ->
      let c = Cu.gray_cycle n in
      check_int "length" (1 lsl n) (Array.length c);
      check_bool "hamiltonian" true (C.is_hamiltonian (Cu.graph n) c))
    [ 2; 3; 4; 5; 8 ]

let test_gray_cycle_through () =
  let n = 5 in
  let g = Cu.graph n in
  List.iter
    (fun (u, v) ->
      let c = Cu.gray_cycle_through ~n (u, v) in
      check_bool "hamiltonian" true (C.is_hamiltonian g c);
      (* the pair appears consecutively somewhere *)
      let ok = List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) (C.edges_of_cycle c) in
      check_bool "contains edge" true ok)
    [ (0, 1); (5, 7); (12, 28); (31, 30); (16, 0) ];
  Alcotest.check_raises "not an edge"
    (Invalid_argument "Cube.gray_cycle_through: not a hypercube edge") (fun () ->
      ignore (Cu.gray_cycle_through ~n (0, 3)))

let test_ring_no_faults () =
  List.iter
    (fun n ->
      match R.embed ~n ~faults:[] with
      | None -> Alcotest.fail "expected gray cycle"
      | Some c ->
          check_int "full length" (1 lsl n) (Array.length c);
          check_bool "valid" true (R.verify ~n ~faults:[] c))
    [ 2; 3; 5; 8 ]

let test_ring_single_fault_exhaustive () =
  List.iter
    (fun n ->
      for fault = 0 to (1 lsl n) - 1 do
        match R.embed ~n ~faults:[ fault ] with
        | None -> Alcotest.fail (Printf.sprintf "n=%d fault=%d" n fault)
        | Some c ->
            check_bool "valid" true (R.verify ~n ~faults:[ fault ] c);
            check_bool "length >= 2^n - 2" true
              (Array.length c >= R.target_length ~n ~f:1)
      done)
    [ 3; 4; 5; 6 ]

let test_ring_random_faults () =
  let rng = Util.Rng.create 71 in
  List.iter
    (fun n ->
      for _ = 1 to 50 do
        let f = 1 + Util.Rng.int rng (n - 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:(1 lsl n) in
        match R.embed ~n ~faults with
        | None -> Alcotest.fail (Printf.sprintf "n=%d f=%d failed" n f)
        | Some c ->
            check_bool "valid" true (R.verify ~n ~faults c);
            check_bool "meets 2^n - 2f" true (Array.length c >= R.target_length ~n ~f)
      done)
    [ 4; 5; 6; 8; 10 ]

let test_thesis_comparison_instance () =
  (* 4096-node hypercube with 2 faults: fault-free cycle of length
     4092. *)
  let faults = [ 0b000011110000; 0b101010101010 ] in
  match R.embed ~n:12 ~faults with
  | None -> Alcotest.fail "Q12 embedding failed"
  | Some c ->
      check_bool "valid" true (R.verify ~n:12 ~faults c);
      check_int "length 4092" 4092 (Array.length c)

let test_adjacent_faults () =
  (* Adjacent fault pairs are a classic adversarial case for the merge:
     exhaust all adjacent pairs in Q5. *)
  let n = 5 in
  for u = 0 to (1 lsl n) - 1 do
    List.iter
      (fun v ->
        if v > u then begin
          let faults = [ u; v ] in
          match R.embed ~n ~faults with
          | None -> Alcotest.fail (Printf.sprintf "adjacent pair %d,%d" u v)
          | Some c ->
              check_bool "valid" true (R.verify ~n ~faults c);
              check_bool "length" true (Array.length c >= R.target_length ~n ~f:2)
        end)
      (Cu.neighbors ~n u)
  done

let test_verify_rejects () =
  check_bool "wrong edge" false (R.verify ~n:3 ~faults:[] [| 0; 3; 1 |]);
  check_bool "fault on cycle" false (R.verify ~n:3 ~faults:[ 1 ] [| 0; 1; 3; 2 |]);
  check_bool "good cycle" true (R.verify ~n:3 ~faults:[] [| 0; 1; 3; 2 |])

let qsuite =
  let open QCheck in
  [
    Test.make ~name:"ring embedding meets the WC92 bound" ~count:80
      (pair (int_range 4 9) (int_range 0 1000000))
      (fun (n, seed) ->
        let rng = Util.Rng.create seed in
        let f = 1 + Util.Rng.int rng (n - 2) in
        let faults = Util.Rng.sample_distinct rng ~k:f ~bound:(1 lsl n) in
        match R.embed ~n ~faults with
        | None -> false
        | Some c -> R.verify ~n ~faults c && Array.length c >= R.target_length ~n ~f);
  ]

let () =
  Alcotest.run "hypercube"
    [
      ( "cube",
        [
          Alcotest.test_case "graph" `Quick test_graph;
          Alcotest.test_case "edge-count comparison" `Quick test_edge_count_comparison;
          Alcotest.test_case "gray cycle" `Quick test_gray_cycle;
          Alcotest.test_case "gray cycle through edge" `Quick test_gray_cycle_through;
        ] );
      ( "ring",
        [
          Alcotest.test_case "no faults" `Quick test_ring_no_faults;
          Alcotest.test_case "single fault (exhaustive)" `Quick test_ring_single_fault_exhaustive;
          Alcotest.test_case "random faults" `Quick test_ring_random_faults;
          Alcotest.test_case "thesis comparison (Q12)" `Quick test_thesis_comparison_instance;
          Alcotest.test_case "adjacent fault pairs" `Quick test_adjacent_faults;
          Alcotest.test_case "verify rejects" `Quick test_verify_rejects;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qsuite);
    ]
