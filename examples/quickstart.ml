(* Quickstart: embed a ring in a faulty De Bruijn network.

   Reproduces the thesis's Example 2.1: nodes 020 and 112 fail in the
   27-node network B(3,3); the FFC algorithm joins the nine surviving
   necklaces into a 21-node ring.

   Run with:  dune exec examples/quickstart.exe *)

module W = Core.Word

let () =
  let d = 3 and n = 3 in
  let p = W.params ~d ~n in
  let faults = [ W.of_string p "020"; W.of_string p "112" ] in
  Printf.printf "Network: B(%d,%d) with %d processors\n" d n p.W.size;
  Printf.printf "Faulty processors: %s\n\n"
    (String.concat ", " (List.map (W.to_string p) faults));
  match Core.fault_free_ring ~d ~n ~faults with
  | None -> print_endline "No processor survived!"
  | Some ring ->
      Printf.printf "Fault-free ring of %d processors (guarantee: >= %d):\n  %s\n\n"
        (Array.length ring)
        (Core.ring_length_guarantee ~d ~n ~f:(List.length faults))
        (String.concat " -> " (List.map (W.to_string p) (Array.to_list ring)));
      (* Every ring edge is a physical link of the network: *)
      let g = Core.Graph.b p in
      assert (Core.Cycle.is_cycle g ring);
      (* ... and the same ring emerges from the distributed protocol: *)
      let dist, stats = Option.get (Core.fault_free_ring_distributed ~d ~n ~faults ()) in
      assert (dist = ring);
      Printf.printf
        "Distributed protocol found the same ring in %d communication rounds\n"
        stats.Core.Distributed.total_rounds;
      Printf.printf "  (probe %d + broadcast %d + choose %d + exchange %d + membership %d)\n"
        stats.Core.Distributed.probe_rounds stats.Core.Distributed.broadcast_rounds
        stats.Core.Distributed.choose_rounds stats.Core.Distributed.exchange_rounds
        stats.Core.Distributed.membership_rounds
