(* Fault injection: an operator's view of a degrading 1024-node network.

   Processors of B(4,5) fail one by one; after each failure the network
   re-runs the distributed FFC protocol and reports the surviving ring.
   This is the live version of the thesis's Table 2.2 experiment.

   Run with:  dune exec examples/fault_injection.exe [seed] *)

module W = Core.Word
module S = Core.Simulator

let print_phase_trace stats =
  Printf.printf "\n  round-by-round trace of the first re-embedding:\n";
  Printf.printf "  %-11s %4s %8s %10s %10s %10s\n" "phase" "rnd" "active"
    "delivered" "sent" "wall";
  List.iter
    (fun (phase, trace) ->
      Array.iteri
        (fun r (m : S.round_metrics) ->
          Printf.printf "  %-11s %4d %8d %10d %10d %8.1fus\n"
            (if r = 0 then phase else "")
            r m.S.active m.S.delivered_in_round m.S.sent (m.S.wall_ns /. 1e3))
        trace)
    stats.Core.Distributed.phase_traces;
  print_newline ()

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2024 in
  let d = 4 and n = 5 in
  let p = W.params ~d ~n in
  let rng = Core.Rng.create seed in
  Printf.printf "B(%d,%d): %d processors, injecting faults one at a time (seed %d)\n\n"
    d n p.W.size seed;
  Printf.printf "%6s  %12s  %12s  %8s  %8s  %9s\n" "faults" "ring length" "guarantee"
    "rounds" "msgs" "lost/flt";
  let faults = ref [] in
  let continue = ref true in
  while !continue && List.length !faults < 16 do
    (* a fresh fault on a processor that is still alive *)
    let rec fresh () =
      let v = Core.Rng.int rng p.W.size in
      if List.mem v !faults then fresh () else v
    in
    faults := fresh () :: !faults;
    let f = List.length !faults in
    match Core.fault_free_ring_distributed ~d ~n ~faults:!faults () with
    | None ->
        Printf.printf "%6d  network destroyed\n" f;
        continue := false
    | Some (ring, stats) ->
        let len = Array.length ring in
        let lost = p.W.size - len in
        Printf.printf "%6d  %12d  %12d  %8d  %8d  %9.1f\n" f len
          (Core.ring_length_guarantee ~d ~n ~f)
          stats.Core.Distributed.total_rounds stats.Core.Distributed.messages
          (float_of_int lost /. float_of_int f);
        if f = 1 then print_phase_trace stats
  done;
  Printf.printf
    "\n('lost/flt' is the average number of ring slots lost per fault; the\n\
    \ thesis's worst case is n = %d, and short faulty necklaces lose fewer.)\n"
    n
