(* All-to-all broadcast over disjoint Hamiltonian rings (the Chapter 3
   motivation).

   Every processor must deliver a t-unit message to every other
   processor, and each link carries one unit per round.  A single ring
   forces each node to drain (N−1)·t units through one in-link; the
   ψ(d) edge-disjoint rings of Chapter 3 spread the units across ψ(d)
   link-disjoint rings running concurrently.

   The experiment runs both schedules on the synchronous network
   simulator over B(4,3) (64 nodes, ψ(4) = 3 disjoint rings) and
   reports the measured round counts.

   Run with:  dune exec examples/broadcast.exe *)

module W = Core.Word
module S = Netsim.Simulator

type part = { origin : int; index : int } [@@warning "-69"] (* [index] is read only through the polymorphic Hashtbl hash of [part] *)

type state = {
  seen : (part, unit) Hashtbl.t;
  queues : part Queue.t array;  (* one FIFO per ring *)
}

(* All-to-all broadcast over the given rings: part [i] of each node's
   message travels ring [i mod rings].  Returns (rounds, complete). *)
let run_broadcast p ~rings ~parts =
  let nring = List.length rings in
  let succ = Array.of_list (List.map (fun ring -> Graphlib.Cycle.edges_of_cycle ring) rings) in
  let succ_fn =
    Array.map
      (fun edges ->
        let tbl = Hashtbl.create 128 in
        List.iter (fun (u, v) -> Hashtbl.replace tbl u v) edges;
        fun v -> Hashtbl.find tbl v)
      succ
  in
  let proto : (state, int * part) S.protocol =
    {
      initial =
        (fun v ->
          let st = { seen = Hashtbl.create 64; queues = Array.init nring (fun _ -> Queue.create ()) } in
          for i = 0 to parts - 1 do
            let part = { origin = v; index = i } in
            Hashtbl.replace st.seen part ();
            Queue.push part st.queues.(i mod nring)
          done;
          st);
      step =
        (fun ~round:_ v st inbox ->
          List.iter
            (fun (_, (r, part)) ->
              if not (Hashtbl.mem st.seen part) then begin
                Hashtbl.replace st.seen part ();
                if part.origin <> v then Queue.push part st.queues.(r)
              end)
            inbox;
          (* one unit per ring link per round *)
          let sends = ref [] in
          Array.iteri
            (fun r q ->
              if not (Queue.is_empty q) then begin
                let part = Queue.pop q in
                if succ_fn.(r) v <> v then sends := (succ_fn.(r) v, (r, part)) :: !sends
              end)
            st.queues;
          (st, !sends));
      wants_step = (fun st -> Array.exists (fun q -> not (Queue.is_empty q)) st.queues);
    }
  in
  let g = Core.Graph.b p in
  let result = S.run ~max_rounds:(parts * p.W.size * 4) ~topology:g ~faulty:(fun _ -> false) proto in
  let complete =
    Array.for_all
      (fun st -> Hashtbl.length st.seen = p.W.size * parts)
      result.S.states
  in
  (result.S.rounds, complete)

let () =
  let d = 4 and n = 3 in
  let p = W.params ~d ~n in
  let rings = Core.disjoint_rings ~d ~n in
  let t = List.length rings in
  Printf.printf "B(%d,%d): %d nodes, psi(%d) = %d edge-disjoint Hamiltonian rings\n\n"
    d n p.W.size d t;
  assert (Core.Cycle.pairwise_edge_disjoint rings);
  let parts = t in
  let single_rounds, ok1 = run_broadcast p ~rings:[ List.hd rings ] ~parts in
  Printf.printf "all-to-all broadcast, %d-unit messages over ONE ring:  %4d rounds%s\n"
    parts single_rounds (if ok1 then "" else "  (INCOMPLETE)");
  let multi_rounds, ok2 = run_broadcast p ~rings ~parts in
  Printf.printf "  same traffic over %d disjoint rings:                 %4d rounds%s\n" t
    multi_rounds (if ok2 then "" else "  (INCOMPLETE)");
  assert (ok1 && ok2);
  Printf.printf "\nspeedup: %.2fx (ideal %dx; each message is split across the rings\n"
    (float_of_int single_rounds /. float_of_int multi_rounds) t;
  Printf.printf "as in the [LS90] wormhole all-to-all scheme cited by the thesis)\n"
