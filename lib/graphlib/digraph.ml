type t = {
  succ : int list array;
  mutable pred : int list array option;  (* built lazily *)
  n_edges : int;
}

module Builder = struct
  type graph = t
  type t = { adj : int list array; mutable edges : int }

  let create n =
    if n < 0 then invalid_arg "Digraph.Builder.create: negative size";
    { adj = Array.make n []; edges = 0 }

  let add_edge b u v =
    let n = Array.length b.adj in
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Digraph.Builder.add_edge: out of range";
    b.adj.(u) <- v :: b.adj.(u);
    b.edges <- b.edges + 1

  let build b : graph =
    (* Reverse each list so successors come out in insertion order —
       deterministic traversals depend on it. *)
    { succ = Array.map List.rev b.adj; pred = None; n_edges = b.edges }
end

let of_edges n es =
  let b = Builder.create n in
  List.iter (fun (u, v) -> Builder.add_edge b u v) es;
  Builder.build b

let of_successors n f =
  let b = Builder.create n in
  for u = 0 to n - 1 do
    List.iter (fun v -> Builder.add_edge b u v) (f u)
  done;
  Builder.build b

let n_nodes g = Array.length g.succ
let n_edges g = g.n_edges
let succs g u = g.succ.(u)

let build_preds g =
  match g.pred with
  | Some p -> p
  | None ->
      let p = Array.make (n_nodes g) [] in
      for u = n_nodes g - 1 downto 0 do
        List.iter (fun v -> p.(v) <- u :: p.(v)) (List.rev g.succ.(u))
      done;
      (* Each pred list is now in increasing-source insertion order. *)
      g.pred <- Some p;
      p

let preds g u = (build_preds g).(u)
let out_degree g u = List.length g.succ.(u)
let in_degree g u = List.length (preds g u)
let mem_edge g u v = List.mem v g.succ.(u)

let iter_edges f g =
  Array.iteri (fun u vs -> List.iter (fun v -> f u v) vs) g.succ

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun u v -> acc := f !acc u v) g;
  !acc

let edges g = List.rev (fold_edges (fun acc u v -> (u, v) :: acc) [] g)

let remove_nodes g faulty =
  let b = Builder.create (n_nodes g) in
  iter_edges (fun u v -> if not (faulty u || faulty v) then Builder.add_edge b u v) g;
  Builder.build b

let remove_edges g bad =
  let b = Builder.create (n_nodes g) in
  iter_edges (fun u v -> if not (bad (u, v)) then Builder.add_edge b u v) g;
  Builder.build b

let reverse g =
  let b = Builder.create (n_nodes g) in
  iter_edges (fun u v -> Builder.add_edge b v u) g;
  Builder.build b

let undirected_view g =
  let b = Builder.create (n_nodes g) in
  iter_edges
    (fun u v ->
      Builder.add_edge b u v;
      if u <> v then Builder.add_edge b v u)
    g;
  Builder.build b

let is_balanced g =
  let n = n_nodes g in
  let rec check u = u >= n || (in_degree g u = out_degree g u && check (u + 1)) in
  check 0
