(* Chunked work-stealing scheduler over index ranges.

   A [pool] owns [domains − 1] long-lived worker domains parked on a
   condition variable; [run] publishes a job (an epoch bump under the
   mutex), participates as worker 0, and barriers until every worker
   has finished.  Amortizing [Domain.spawn] across the many parallel
   regions of one traversal (every BFS level is a region) is the point:
   spawning per level cost 20–50 µs per domain per level.

   [parallel_for] is the only work distributor: the range is cut into
   fixed-size chunks, chunks are pre-partitioned contiguously across
   workers, and each worker claims chunks through an atomic cursor —
   its own first, then (work stealing) from every other worker's
   cursor in round-robin order.  [Atomic.fetch_and_add] makes every
   claim unique, so each chunk index executes exactly once, on exactly
   one domain; {e which} domain is nondeterministic, so determinism is
   the caller's job — have the body write only to chunk-indexed slots
   and merge sequentially in chunk order (what Itopo's BFS does).

   A worker exception is stashed and re-raised from [run] after the
   barrier (first one wins); the protocol itself never wedges. *)

type pool = {
  size : int;  (* participating domains, including the caller *)
  mutex : Mutex.t;
  start : Condition.t;  (* a new epoch was published *)
  finish : Condition.t;  (* a worker finished the current epoch *)
  mutable epoch : int;
  mutable job : (int -> unit) option;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop pool me =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !seen do
      Condition.wait pool.start pool.mutex
    done;
    if pool.stop then begin
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      let outcome =
        match job with
        | None -> None
        | Some f -> ( try f me; None with exn -> Some exn)
      in
      Mutex.lock pool.mutex;
      (match (outcome, pool.failure) with
      | Some e, None -> pool.failure <- Some e
      | _ -> ());
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.finish;
      Mutex.unlock pool.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Sched.create: domains must be >= 1";
  let pool =
    {
      size = domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finish = Condition.create ();
      epoch = 0;
      job = None;
      pending = 0;
      failure = None;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size pool = pool.size

let shutdown pool =
  match pool.workers with
  | [] -> ()
  | workers ->
      Mutex.lock pool.mutex;
      pool.stop <- true;
      Condition.broadcast pool.start;
      Mutex.unlock pool.mutex;
      List.iter Domain.join workers;
      pool.workers <- []

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.mutex;
    pool.job <- Some f;
    pool.failure <- None;
    pool.pending <- pool.size - 1;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.start;
    Mutex.unlock pool.mutex;
    let mine = try f 0; None with exn -> Some exn in
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.finish pool.mutex
    done;
    pool.job <- None;
    let theirs = pool.failure in
    pool.failure <- None;
    Mutex.unlock pool.mutex;
    (match mine with Some e -> raise e | None -> ());
    match theirs with Some e -> raise e | None -> ()
  end

let parallel_for pool ~chunk ~lo ~hi body =
  if chunk < 1 then invalid_arg "Sched.parallel_for: chunk must be >= 1";
  let span = hi - lo in
  if span > 0 then begin
    let nchunks = (span + chunk - 1) / chunk in
    let exec c =
      let cl = lo + (c * chunk) in
      body c cl (min hi (cl + chunk))
    in
    if pool.size = 1 || nchunks = 1 then
      for c = 0 to nchunks - 1 do
        exec c
      done
    else begin
      let k = pool.size in
      (* Contiguous pre-partition: worker w owns chunk indices
         [w·nchunks/k, (w+1)·nchunks/k).  Each cursor is claimed with
         fetch_and_add by its owner and, once a thief runs dry, by
         anyone — over-increments past the limit are harmless. *)
      let cursors = Array.init k (fun w -> Atomic.make (w * nchunks / k)) in
      run pool (fun me ->
          let drain w =
            let limit = (w + 1) * nchunks / k in
            let continue = ref true in
            while !continue do
              let c = Atomic.fetch_and_add cursors.(w) 1 in
              if c < limit then exec c else continue := false
            done
          in
          drain me;
          for off = 1 to k - 1 do
            drain ((me + off) mod k)
          done)
    end
  end
