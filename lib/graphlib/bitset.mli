(** Dense bitsets over [0 .. len−1], backed by [Bytes].

    One bit per element — the visited marks of the implicit-topology
    traversals ({!Itopo}) live here instead of in [bool array]s, an 8×
    space saving that matters at De Bruijn sizes (B(2,22) is 4M+
    nodes). *)

type t

val create : int -> t
(** All-zero set over [0 .. len−1]. *)

val length : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val clear : t -> unit
(** Reset every bit — O(len/8), for reuse across traversals. *)

val cardinal : t -> int
