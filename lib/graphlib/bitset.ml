type t = { bits : Bytes.t; len : int }

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((len + 7) lsr 3) '\000'; len }

let length t = t.len

(* Kept out of line so [mem]/[add] stay small enough to inline into the
   traversal hot loops even without flambda. *)
let[@inline never] out_of_range () = invalid_arg "Bitset: index out of range"

let[@inline] check t i = if i < 0 || i >= t.len then out_of_range ()

let[@inline] mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@inline] add t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* popcount via the 8-entry-per-byte table would be overkill here: the
   only callers count once per traversal, so a per-byte loop is fine. *)
let cardinal t =
  let count = ref 0 in
  for i = 0 to t.len - 1 do
    if Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then
      incr count
  done;
  !count
