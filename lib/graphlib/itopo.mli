(** Traversals over {e implicit} topologies.

    Every algorithm here takes the graph as neighbor-iterator closures
    instead of a materialized {!Digraph.t}: [succs v f] must call [f] on
    each successor of [v] (in a fixed order), likewise [preds].  For De
    Bruijn graphs the iterators are pure arithmetic
    ([Debruijn.Word.iter_succs]), so million-node traversals run without
    building any adjacency structure at all.  State is flat and
    off-heap: distances and discovery order in {!Flatarr.t}s (the BFS
    queue {e is} the discovery-order array — every node is pushed at
    most once, so no ring buffer is needed), visited marks in
    {!Bitset}.

    [?domains:k] expands large BFS levels through a chunked
    work-stealing pool ({!Sched}): the level is cut into
    {!chunk_size}-position chunks, gathered concurrently (workers read
    the visited marks read-only, stashing candidates per chunk), then
    committed sequentially in ascending chunk order — the exact
    candidate-consideration sequence of the sequential loop, so results
    are bit-identical to [domains = 1] for {e every} domain count,
    chunk size and steal schedule (DESIGN.md §6b). *)

type iter = int -> (int -> unit) -> unit
(** [iter v f] calls [f] on each neighbor of [v], in a deterministic
    order.  [f] may be invoked on nodes failing the traversal's [?keep]
    predicate — filtering happens at the traversal layer. *)

val no_preds : iter
(** An empty predecessor iterator, recognized {e physically} by the
    component sweeps: when the caller knows every weak component of the
    induced subgraph is strongly connected (true for B\u{2217}, whose removed
    set is a union of necklaces), passing [no_preds] makes the sweep
    walk [succs] alone — half the edge work and no wrapper closure. *)

val chunk_size : int
(** Frontier positions per work-stealing chunk (512).  The default
    granule of parallel level expansion: big enough that an atomic
    claim amortizes to noise, small enough that a level of a few
    thousand nodes still load-balances. *)

val par_threshold : int
(** [4 * chunk_size].  Levels narrower than this run sequentially even
    when [domains > 1]: with fewer than four chunks there is nothing to
    steal and the round barrier dominates.  Overriding [?chunk] moves
    the cutoff in lockstep ([4 * chunk]) — so [~chunk:1] exercises the
    full parallel machinery on graphs only a few nodes wide, which is
    how the qcheck determinism suites reach it. *)

type bfs = {
  dist : Flatarr.t;  (** distance from the source; [-1] if unreached *)
  order : Flatarr.t;
      (** [order.{0 .. count−1}] are the reached nodes in discovery
          order (nondecreasing distance); entries beyond [count] are
          meaningless *)
  count : int;  (** number of reached nodes *)
}

type ws
(** Reusable traversal scratch (visited bitset + full-size dist/order
    arrays) for a fixed node count.  Passing [?ws] to a traversal makes
    it allocation-free: the returned {!bfs} record {e aliases} the
    workspace arrays, so its contents are only valid until the next
    traversal that uses the same workspace.  Results are bit-identical
    to the fresh-allocation path — each traversal resets exactly the
    workspace state it reads. *)

val ws_create : ?arena:Flatarr.Arena.arena -> int -> ws
(** [ws_create n] — workspace for traversals over node ids
    [0 .. n−1].  The 2n-word dist/order storage is off-heap: freshly
    allocated, or carved from [?arena] (exactly {!ws_arena_words}[ n]
    words — how [Ffc.Workspace] folds the traversal scratch into its
    single backing allocation). *)

val ws_arena_words : int -> int
(** Arena words consumed by [ws_create ~arena n]. *)

val bfs :
  ?domains:int ->
  ?chunk:int ->
  ?ws:ws ->
  n:int ->
  succs:iter ->
  ?keep:(int -> bool) ->
  int ->
  bfs
(** [bfs ~n ~succs src] — BFS from [src] over node ids [0 .. n−1].
    [?keep] restricts to an induced subgraph; a source failing [keep]
    reaches nothing ([count = 0]).  With [?ws] the result's [dist] and
    [order] point into the workspace (valid until its next use).
    [?chunk] (default {!chunk_size}) overrides the work-stealing
    granule — results are bit-identical for every value ≥ 1. *)

val bfs_dist :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  succs:iter ->
  ?keep:(int -> bool) ->
  int ->
  int array
(** The distance array of {!bfs}, copied to the heap. *)

val eccentricity :
  ?domains:int ->
  ?chunk:int ->
  ?ws:ws ->
  n:int ->
  succs:iter ->
  ?keep:(int -> bool) ->
  int ->
  int
(** Maximum finite BFS distance from the node (directed); [0] if the
    source reaches nothing. *)

val component_members :
  n:int -> succs:iter -> preds:iter -> ?keep:(int -> bool) -> int -> int array
(** Weakly-connected component of the node (BFS over the symmetric
    closure), in BFS discovery order.  Costs O(component) words beyond
    the n-bit visited set, so probing a small component of a huge graph
    is cheap.  Empty if the node fails [keep]. *)

val largest_weak_component :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  int array
(** Largest weakly-connected node set of the induced subgraph, in BFS
    discovery order from its smallest member; size ties break toward
    the component containing the smallest node (both as in
    {!Traversal.largest_weak_component}).  Empty iff no node passes
    [keep]. *)

val largest_weak_component_span :
  ?domains:int ->
  ?chunk:int ->
  ws:ws ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  Flatarr.t * int * int
(** Allocation-free {!largest_weak_component}: returns
    [(order, start, size)] where [order.{start .. start+size−1}] is the
    largest component in BFS discovery order.  [order] is the
    workspace's order array — the span is valid until the workspace's
    next use.  Same contents and tie-breaks as the copying variant. *)

val weak_labels :
  n:int -> succs:iter -> preds:iter -> ?keep:(int -> bool) -> unit -> int array
(** Labels every kept node with the smallest node of its weak component
    ([-1] for nodes failing [keep]). *)

val is_strongly_connected :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  bool
(** Is the induced subgraph strongly connected?  (Vacuously true on
    ≤ 1 node.)  Forward + backward reachability from one kept node. *)
