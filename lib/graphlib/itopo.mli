(** Traversals over {e implicit} topologies.

    Every algorithm here takes the graph as neighbor-iterator closures
    instead of a materialized {!Digraph.t}: [succs v f] must call [f] on
    each successor of [v] (in a fixed order), likewise [preds].  For De
    Bruijn graphs the iterators are pure arithmetic
    ([Debruijn.Word.iter_succs]), so million-node traversals run without
    building any adjacency structure at all.  State is flat: distances
    and discovery order in [int array]s (the BFS queue {e is} the
    discovery-order array — every node is pushed at most once, so no
    ring buffer is needed), visited marks in {!Bitset}.

    [?domains:k] switches large BFS levels to level-synchronous parallel
    expansion: workers read the visited marks read-only and stash
    candidates per chunk, then a sequential merge dedupes them in the
    exact order the sequential loop would consider them — results are
    bit-identical to [domains = 1] (same contract as
    [Netsim.Simulator]'s parallel stepping). *)

type iter = int -> (int -> unit) -> unit
(** [iter v f] calls [f] on each neighbor of [v], in a deterministic
    order.  [f] may be invoked on nodes failing the traversal's [?keep]
    predicate — filtering happens at the traversal layer. *)

val no_preds : iter
(** An empty predecessor iterator, recognized {e physically} by the
    component sweeps: when the caller knows every weak component of the
    induced subgraph is strongly connected (true for B\u{2217}, whose removed
    set is a union of necklaces), passing [no_preds] makes the sweep
    walk [succs] alone — half the edge work and no wrapper closure. *)

type bfs = {
  dist : int array;  (** distance from the source; [-1] if unreached *)
  order : int array;
      (** [order.(0 .. count−1)] are the reached nodes in discovery
          order (nondecreasing distance); entries beyond [count] are
          meaningless *)
  count : int;  (** number of reached nodes *)
}

type ws
(** Reusable traversal scratch (visited bitset + full-size dist/order
    arrays) for a fixed node count.  Passing [?ws] to a traversal makes
    it allocation-free: the returned {!bfs} record {e aliases} the
    workspace arrays, so its contents are only valid until the next
    traversal that uses the same workspace.  Results are bit-identical
    to the fresh-allocation path — each traversal resets exactly the
    workspace state it reads. *)

val ws_create : int -> ws
(** [ws_create n] — workspace for traversals over node ids
    [0 .. n−1].  Allocates 2n+O(n/bits) words once. *)

val bfs :
  ?domains:int ->
  ?ws:ws ->
  n:int ->
  succs:iter ->
  ?keep:(int -> bool) ->
  int ->
  bfs
(** [bfs ~n ~succs src] — BFS from [src] over node ids [0 .. n−1].
    [?keep] restricts to an induced subgraph; a source failing [keep]
    reaches nothing ([count = 0]).  With [?ws] the result's [dist] and
    [order] point into the workspace (valid until its next use). *)

val bfs_dist :
  ?domains:int -> n:int -> succs:iter -> ?keep:(int -> bool) -> int -> int array
(** Just the distance array of {!bfs}. *)

val eccentricity :
  ?domains:int ->
  ?ws:ws ->
  n:int ->
  succs:iter ->
  ?keep:(int -> bool) ->
  int ->
  int
(** Maximum finite BFS distance from the node (directed); [0] if the
    source reaches nothing. *)

val component_members :
  n:int -> succs:iter -> preds:iter -> ?keep:(int -> bool) -> int -> int array
(** Weakly-connected component of the node (BFS over the symmetric
    closure), in BFS discovery order.  Costs O(component) words beyond
    the n-bit visited set, so probing a small component of a huge graph
    is cheap.  Empty if the node fails [keep]. *)

val largest_weak_component :
  ?domains:int ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  int array
(** Largest weakly-connected node set of the induced subgraph, in BFS
    discovery order from its smallest member; size ties break toward
    the component containing the smallest node (both as in
    {!Traversal.largest_weak_component}).  Empty iff no node passes
    [keep]. *)

val largest_weak_component_span :
  ?domains:int ->
  ws:ws ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  int array * int * int
(** Allocation-free {!largest_weak_component}: returns
    [(order, start, size)] where [order.(start .. start+size−1)] is the
    largest component in BFS discovery order.  [order] is the
    workspace's order array — the span is valid until the workspace's
    next use.  Same contents and tie-breaks as the copying variant. *)

val weak_labels :
  n:int -> succs:iter -> preds:iter -> ?keep:(int -> bool) -> unit -> int array
(** Labels every kept node with the smallest node of its weak component
    ([-1] for nodes failing [keep]). *)

val is_strongly_connected :
  ?domains:int ->
  n:int ->
  succs:iter ->
  preds:iter ->
  ?keep:(int -> bool) ->
  unit ->
  bool
(** Is the induced subgraph strongly connected?  (Vacuously true on
    ≤ 1 node.)  Forward + backward reachability from one kept node. *)
