let bfs_dist_restricted g keep src =
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Traversal.bfs: source out of range";
  if not (keep src) then invalid_arg "Traversal.bfs: source excluded by predicate";
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if keep v && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      (Digraph.succs g u)
  done;
  dist

let bfs_dist g src = bfs_dist_restricted g (fun _ -> true) src

let bfs_tree g src =
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n then
    invalid_arg "Traversal.bfs_tree: source out of range";
  let dist = Array.make n (-1) in
  (* Flat queue doubling as discovery order — so the parent scan below
     can visit exactly the reached nodes, never touching the
     predecessor lists of unreachable ones. *)
  let order = Array.make n 0 in
  let count = ref 0 in
  dist.(src) <- 0;
  order.(0) <- src;
  count := 1;
  let head = ref 0 in
  while !head < !count do
    let u = order.(!head) in
    incr head;
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          order.(!count) <- v;
          incr count
        end)
      (Digraph.succs g u)
  done;
  let parent = Array.make n (-1) in
  for i = 1 to !count - 1 do
    let v = order.(i) in
    (* Minimal predecessor at the previous BFS level: this is the
       paper's tie-break, and it is what makes sibling De Bruijn nodes
       wα, wβ share a parent (they share their full predecessor set). *)
    let best = ref max_int in
    List.iter
      (fun u -> if dist.(u) = dist.(v) - 1 && u < !best then best := u)
      (Digraph.preds g v);
    if !best < max_int then parent.(v) <- !best
  done;
  (dist, parent)

let eccentricity g src =
  Array.fold_left max 0 (bfs_dist g src)

let diameter_from_all g =
  let n = Digraph.n_nodes g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    let d = bfs_dist g v in
    let reaches_all = Array.for_all (fun x -> x >= 0) d in
    if reaches_all then best := max !best (Array.fold_left max 0 d)
  done;
  !best

let weak_components g =
  let u = Digraph.undirected_view g in
  let n = Digraph.n_nodes u in
  let label = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) < 0 then begin
      let id = !count in
      incr count;
      let q = Queue.create () in
      label.(v) <- id;
      Queue.push v q;
      while not (Queue.is_empty q) do
        let a = Queue.pop q in
        List.iter
          (fun b ->
            if label.(b) < 0 then begin
              label.(b) <- id;
              Queue.push b q
            end)
          (Digraph.succs u a)
      done
    end
  done;
  (label, !count)

let largest_weak_component g keep =
  let n = Digraph.n_nodes g in
  (* Component labels over the induced symmetric closure. *)
  let label = Array.make n (-1) in
  let sizes = ref [] in
  let count = ref 0 in
  let undirected_neighbors v =
    List.filter keep (Digraph.succs g v) @ List.filter keep (Digraph.preds g v)
  in
  for v = 0 to n - 1 do
    if keep v && label.(v) < 0 then begin
      let id = !count in
      incr count;
      let size = ref 0 in
      let q = Queue.create () in
      label.(v) <- id;
      Queue.push v q;
      while not (Queue.is_empty q) do
        let a = Queue.pop q in
        incr size;
        List.iter
          (fun b ->
            if label.(b) < 0 then begin
              label.(b) <- id;
              Queue.push b q
            end)
          (undirected_neighbors a)
      done;
      sizes := (id, !size) :: !sizes
    end
  done;
  match !sizes with
  | [] -> []
  | sizes ->
      (* Smallest id wins ties, i.e. the component of the smallest node. *)
      let best, _ =
        List.fold_left
          (fun (bid, bsz) (id, sz) -> if sz > bsz || (sz = bsz && id < bid) then (id, sz) else (bid, bsz))
          (max_int, -1) sizes
      in
      List.filter (fun v -> label.(v) = best) (List.init n Fun.id)

let strongly_connected_components g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let comps = ref [] in
  (* Iterative Tarjan to avoid stack overflow on large graphs. *)
  let strongconnect v =
    let call_stack = ref [ (v, Digraph.succs g v) ] in
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while not (List.is_empty !call_stack) do
      match !call_stack with
      | [] -> ()
      | (u, remaining) :: rest -> (
          match remaining with
          | [] ->
              call_stack := rest;
              (match rest with
              | (parent, _) :: _ -> low.(parent) <- min low.(parent) low.(u)
              | [] -> ());
              if low.(u) = index.(u) then begin
                let rec pop acc =
                  match !stack with
                  | [] -> acc
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      if w = u then w :: acc else pop (w :: acc)
                in
                comps := pop [] :: !comps
              end
          | w :: ws ->
              call_stack := (u, ws) :: rest;
              if index.(w) < 0 then begin
                index.(w) <- !next;
                low.(w) <- !next;
                incr next;
                stack := w :: !stack;
                on_stack.(w) <- true;
                call_stack := (w, Digraph.succs g w) :: !call_stack
              end
              else if on_stack.(w) then low.(u) <- min low.(u) index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !comps

let is_strongly_connected g keep =
  let nodes = List.filter keep (List.init (Digraph.n_nodes g) Fun.id) in
  match nodes with
  | [] | [ _ ] -> true
  | src :: _ ->
      let forward = bfs_dist_restricted g keep src in
      let backward = bfs_dist_restricted (Digraph.reverse g) keep src in
      List.for_all (fun v -> forward.(v) >= 0 && backward.(v) >= 0) nodes
