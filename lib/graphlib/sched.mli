(** Chunked work-stealing scheduler over index ranges.

    A {!pool} owns [domains − 1] long-lived worker domains parked on a
    condition variable; {!run} publishes a job and barriers until every
    participant (the caller is worker 0) finishes, so the cost of
    [Domain.spawn] is paid once per pool instead of once per parallel
    region — a BFS runs one region {e per level}.

    {!parallel_for} distributes a range cut into fixed-size chunks:
    chunks are pre-partitioned contiguously across workers and claimed
    through per-worker atomic cursors — each worker drains its own
    cursor, then steals from the others round-robin.  Every claim is an
    [Atomic.fetch_and_add], so each chunk executes exactly once but on
    a nondeterministic domain; callers wanting deterministic results
    must write only to chunk-indexed slots and merge sequentially in
    chunk order (the contract [Itopo]'s BFS follows — DESIGN.md §6b). *)

type pool

val create : domains:int -> pool
(** [create ~domains] spawns [domains − 1] workers.  [domains = 1] is
    a valid degenerate pool: everything runs on the caller, no domains
    are spawned.  @raise Invalid_argument when [domains < 1]. *)

val size : pool -> int
(** Participating domains, including the caller. *)

val shutdown : pool -> unit
(** Stop and join the workers.  Idempotent.  A pool must not be used
    after shutdown. *)

val with_pool : domains:int -> (pool -> 'a) -> 'a
(** [create] / [shutdown] bracketed with [Fun.protect]. *)

val run : pool -> (int -> unit) -> unit
(** [run pool f] executes [f w] on every participant, [w] ∈
    [0 .. size−1] ([f 0] on the caller), and returns after all have
    finished.  If any participant raises, one such exception is
    re-raised here {e after} the barrier (the pool stays usable). *)

val parallel_for :
  pool -> chunk:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
(** [parallel_for pool ~chunk ~lo ~hi body] covers [\[lo, hi)] with
    chunks of [chunk] indices and calls [body c cl ch] exactly once per
    chunk, where [c] is the chunk's ordinal and [\[cl, ch)] ⊆
    [\[lo, hi)] its index range.  Chunks run concurrently via work
    stealing; see the determinism contract above.
    @raise Invalid_argument when [chunk < 1]. *)
