type iter = int -> (int -> unit) -> unit

type bfs = { dist : Flatarr.t; order : Flatarr.t; count : int }

(* Reusable traversal scratch: one visited bitset plus full-size
   distance/order arrays, sized for a fixed node count [n].  The
   dist/order arrays are off-heap ({!Flatarr}) — optionally carved out
   of a caller-supplied arena — so a traversal's 2n-word working set
   never enters the GC.  Every traversal that accepts [?ws] resets
   exactly the state it uses (bitset clear is O(n/8); the dist fill is
   O(n)), so reuse across traversals is bit-identical to fresh
   allocation. *)
type ws = { wn : int; wvisited : Bitset.t; wdist : Flatarr.t; worder : Flatarr.t }

let ws_arena_words n = 2 * Flatarr.Arena.aligned_words n

let ws_create ?arena n =
  if n < 0 then invalid_arg "Itopo.ws_create: negative size";
  let dist, order =
    match arena with
    | None -> (Flatarr.make n (-1), Flatarr.make n 0)
    | Some a ->
        let d = Flatarr.Arena.carve a n in
        Flatarr.fill d (-1);
        (d, Flatarr.Arena.carve a n)
  in
  { wn = n; wvisited = Bitset.create n; wdist = dist; worder = order }

let ws_check ws n =
  if ws.wn <> n then invalid_arg "Itopo: workspace sized for a different n"

let keep_all = fun _ -> true

(* Physically-recognized empty predecessor iterator: when a caller knows
   every weak component is already strongly connected (so directed
   reachability covers it), passing [no_preds] lets the component sweeps
   walk [succs] alone instead of a wrapper that calls both closures. *)
let no_preds : iter = fun _ _ -> ()

let symmetric ~succs ~preds : iter =
  if preds == no_preds then succs
  else
    fun u f ->
      succs u f;
      preds u f

(* A BFS level is expanded in parallel in units of [chunk_size]
   frontier positions; below [par_threshold] frontier nodes the level
   runs sequentially even when [domains > 1] — with fewer than four
   chunks there is nothing to steal and the barrier (~1 µs per round
   plus worker wake-up) dominates.  The activation cutoff scales with
   the chunk size: overriding [?chunk] moves it in lockstep, which is
   also what lets the qcheck suites drive the full parallel machinery
   on tiny graphs ([chunk = 1] activates at 4 frontier nodes). *)
let chunk_size = 512
let par_threshold = 4 * chunk_size

(* Candidate buffers for at most this many chunks are in flight per
   round: a round gathers up to [chunks_per_round] chunks in parallel,
   then commits them sequentially in ascending chunk order.  Bounding
   the round keeps candidate storage O(chunks_per_round · chunk)
   regardless of frontier width, and the buffers are reused across
   rounds and levels. *)
let chunks_per_round = 64

(* Per-slot candidate buffer lengths are strided 8 words (64 bytes)
   apart so two domains finishing adjacent slots never write the same
   cache line. *)
let len_stride = 8

type expand = {
  pool : Sched.pool;
  chunk : int;
  bufs : int array array;  (* [chunks_per_round] growable candidate buffers *)
  lens : int array;  (* slot s length at [s * len_stride] *)
}

let make_expand ~domains ~chunk =
  {
    pool = Sched.create ~domains;
    chunk;
    bufs = Array.init chunks_per_round (fun _ -> Array.make 256 0);
    lens = Array.make (chunks_per_round * len_stride) 0;
  }

(* Lazy pool: a traversal that never meets [par_threshold] must not pay
   for spawning domains.  The pool is created on first parallel level
   and shut down by the traversal's [Fun.protect]. *)
type par = { pdomains : int; pchunk : int; mutable pexp : expand option }

let par_get p =
  match p.pexp with
  | Some e -> e
  | None ->
      let e = make_expand ~domains:p.pdomains ~chunk:p.pchunk in
      p.pexp <- Some e;
      e

let with_par ~domains ~chunk f =
  if domains < 1 then invalid_arg "Itopo: domains must be >= 1";
  if chunk < 1 then invalid_arg "Itopo: chunk must be >= 1";
  let p = { pdomains = domains; pchunk = chunk; pexp = None } in
  Fun.protect
    ~finally:(fun () ->
      match p.pexp with
      | Some e -> Sched.shutdown e.pool
      | None -> ())
    (fun () -> f p)

(* The visited bitset doubles as the keep mask: nodes failing [keep]
   are pre-marked once, so the per-candidate test in the hot loops is a
   single bit probe instead of a bit probe plus a closure call. *)
let masked_visited ?ws ~n ~keep () =
  let visited =
    match ws with
    | None -> Bitset.create n
    | Some w ->
        ws_check w n;
        Bitset.clear w.wvisited;
        w.wvisited
  in
  if keep != keep_all then
    for v = 0 to n - 1 do
      if not (keep v) then Bitset.add visited v
    done;
  visited

let order_array ?ws ~n () =
  match ws with None -> Flatarr.make n 0 | Some w -> w.worder

let dist_array ?ws ~n () =
  match ws with
  | None -> Flatarr.make n (-1)
  | Some w ->
      Flatarr.fill w.wdist (-1);
      w.wdist

(* Gather the candidates of chunk [order.{clo .. chi−1}] into slot
   [slot]'s buffer.  Runs on an arbitrary domain: it only READS the
   visited bits (the sequential commit below is the sole writer) and
   writes nothing shared except its own slot's buffer and length.  A
   buffer growth republishes the pointer into [bufs] — made visible to
   the committing domain by the round barrier. *)
let gather exp ~succs ~visited ~(order : Flatarr.t) slot clo chi =
  let buf =
    (ref exp.bufs.(slot)
    [@lint.allow "R7 two scratch refs per chunk gather, amortized over the chunk"])
  in
  let len =
    (ref 0
    [@lint.allow "R7 two scratch refs per chunk gather, amortized over the chunk"])
  in
  let push v =
    if !len = Array.length !buf then begin
      let b =
        (Array.make (2 * !len) 0
        [@lint.allow
          "R7 candidate-buffer growth doubles and republishes into bufs, \
           so the cost amortizes to O(1) words per candidate"])
      in
      Array.blit !buf 0 b 0 !len;
      buf := b;
      exp.bufs.(slot) <- b
    end;
    !buf.(!len) <- v;
    incr len
  [@@lint.allow "R7 one push closure per chunk gather, amortized over the chunk"]
  in
  for i = clo to chi - 1 do
    succs order.{i}
      ((fun v -> if not (Bitset.mem visited v) then push v)
      [@lint.allow
        "R7 per-frontier-node filter closure, deliberately NOT hoisted: \
         its steady minor-heap trickle keeps GC pause boundaries where \
         the per-event latency baselines pinned them (hoisting batches \
         the pauses into single events)"])
  done;
  exp.lens.(slot * len_stride) <- !len
[@@lint.hot]

(* Expand one BFS level [order.{lo..hi-1}] in parallel, in rounds of at
   most [chunks_per_round] chunks.  Within a round the chunks are
   gathered by the work-stealing pool (any domain, any interleaving),
   then committed sequentially in ascending chunk order with the
   visited re-check — exactly the (frontier-position, successor-order)
   sequence the sequential loop considers candidates in, so frontier
   contents, discovery order and distances are bit-identical to
   [domains = 1] whatever the chunk size or steal schedule. *)
let expand_level exp ~succs ~visited ~commit ~order lo hi =
  let chunk = exp.chunk in
  let nchunks = (hi - lo + chunk - 1) / chunk in
  let round_start = ref 0 in
  while !round_start < nchunks do
    let round = min chunks_per_round (nchunks - !round_start) in
    let base = lo + (!round_start * chunk) in
    Sched.parallel_for exp.pool ~chunk:1 ~lo:0 ~hi:round (fun slot _ _ ->
        let clo = base + (slot * chunk) in
        (gather exp ~succs ~visited ~order slot clo (min hi (clo + chunk))
        [@lint.par_write
          "gather writes only bufs.(slot) and lens.(slot * len_stride), \
           and slot is this chunk's ordinal — one writer per slot; \
           visited/order are read-only here (the sequential commit \
           below is the sole writer)"]));
    for slot = 0 to round - 1 do
      let buf = exp.bufs.(slot) in
      let len = exp.lens.(slot * len_stride) in
      for i = 0 to len - 1 do
        let v = buf.(i) in
        if not (Bitset.mem visited v) then commit v
      done
    done;
    round_start := !round_start + round
  done

let bfs ?(domains = 1) ?(chunk = chunk_size) ?ws ~n ~succs ?(keep = keep_all)
    src =
  if src < 0 || src >= n then invalid_arg "Itopo.bfs: source out of range";
  with_par ~domains ~chunk (fun p ->
      let dist = dist_array ?ws ~n () in
      let order = order_array ?ws ~n () in
      let count = ref 0 in
      let visited = masked_visited ?ws ~n ~keep () in
      if not (Bitset.mem visited src) then begin
        Bitset.add visited src;
        dist.{src} <- 0;
        order.{0} <- src;
        count := 1;
        let level_start = ref 0 in
        let d = ref 0 in
        (* Hoisted out of the level loop: allocating these closures per
           level (let alone per node, as a lambda in the inner loop
           would) accounted for megawords of minor garbage per
           traversal. *)
        let commit v =
          Bitset.add visited v;
          dist.{v} <- !d;
          order.{!count} <- v;
          incr count
        in
        let consider v = if not (Bitset.mem visited v) then commit v in
        while !level_start < !count do
          let lo = !level_start and hi = !count in
          level_start := hi;
          incr d;
          if domains > 1 && hi - lo >= 4 * chunk then
            expand_level (par_get p) ~succs ~visited ~commit ~order lo hi
          else
            for i = lo to hi - 1 do
              succs order.{i} consider
            done
        done
      end;
      { dist; order; count = !count })

let bfs_dist ?domains ?chunk ~n ~succs ?keep src =
  Flatarr.to_array (bfs ?domains ?chunk ~n ~succs ?keep src).dist

let eccentricity ?domains ?chunk ?ws ~n ~succs ?keep src =
  let r = bfs ?domains ?chunk ?ws ~n ~succs ?keep src in
  (* BFS discovers nodes by nondecreasing distance, so the last
     discovery is the farthest. *)
  if r.count = 0 then 0 else r.dist.{r.order.{r.count - 1}}

(* Visited-bitset BFS (no distances) appending discoveries to [order]
   from position [!count]; [visited] must already have [src] unmarked
   and every excluded node pre-marked ({!masked_visited}).  Shared by
   the component sweeps so that one bitset + one order array span every
   seed. *)
let flood ~par:p ~succs ~visited ~(order : Flatarr.t) ~count src =
  Bitset.add visited src;
  order.{!count} <- src;
  incr count;
  let level_start = ref (!count - 1) in
  let commit v =
    Bitset.add visited v;
    order.{!count} <- v;
    incr count
  in
  let consider v = if not (Bitset.mem visited v) then commit v in
  while !level_start < !count do
    let lo = !level_start and hi = !count in
    level_start := hi;
    if p.pdomains > 1 && hi - lo >= 4 * p.pchunk then
      expand_level (par_get p) ~succs ~visited ~commit ~order lo hi
    else
      for i = lo to hi - 1 do
        succs order.{i} consider
      done
  done

let component_members ~n ~succs ~preds ?(keep = keep_all) src =
  if src < 0 || src >= n then
    invalid_arg "Itopo.component_members: source out of range";
  if not (keep src) then [||]
  else begin
    let both = symmetric ~succs ~preds in
    let visited = masked_visited ~n ~keep () in
    (* Growable order so a small component on a huge graph costs
       O(component) words beyond the bitset. *)
    let buf = ref (Array.make 64 0) in
    let len = ref 0 in
    Bitset.add visited src;
    !buf.(0) <- src;
    len := 1;
    let head = ref 0 in
    let consider v =
      if not (Bitset.mem visited v) then begin
        Bitset.add visited v;
        if !len = Array.length !buf then begin
          let b = Array.make (2 * !len) 0 in
          Array.blit !buf 0 b 0 !len;
          buf := b
        end;
        !buf.(!len) <- v;
        incr len
      end
    in
    while !head < !len do
      let u = !buf.(!head) in
      incr head;
      both u consider
    done;
    Array.sub !buf 0 !len
  end

(* Shared sweep: floods every component into [order] and returns the
   span (start, size) of the largest one.  Each component occupies a
   contiguous segment of [order], already in BFS discovery order from
   its smallest member (seeds ascend). *)
let lwc_sweep ~par ~n ~both ~visited ~order =
  let count = ref 0 in
  let best_start = ref 0 and best_size = ref 0 in
  for seed = 0 to n - 1 do
    if not (Bitset.mem visited seed) then begin
      let start = !count in
      flood ~par ~succs:both ~visited ~order ~count seed;
      let size = !count - start in
      (* strict [>]: ties go to the earlier seed, i.e. the component
         containing the smallest node — matching
         Traversal.largest_weak_component. *)
      if size > !best_size then begin
        best_size := size;
        best_start := start
      end
    end
  done;
  (!best_start, !best_size)

let largest_weak_component ?(domains = 1) ?(chunk = chunk_size) ~n ~succs
    ~preds ?(keep = keep_all) () =
  with_par ~domains ~chunk (fun par ->
      let both = symmetric ~succs ~preds in
      let visited = masked_visited ~n ~keep () in
      let order = Flatarr.make n 0 in
      let start, size = lwc_sweep ~par ~n ~both ~visited ~order in
      Flatarr.sub_to_array order start size)

let largest_weak_component_span ?(domains = 1) ?(chunk = chunk_size) ~ws ~n
    ~succs ~preds ?(keep = keep_all) () =
  with_par ~domains ~chunk (fun par ->
      let both = symmetric ~succs ~preds in
      let visited = masked_visited ~ws ~n ~keep () in
      let order = ws.worder in
      let start, size = lwc_sweep ~par ~n ~both ~visited ~order in
      (order, start, size))

let weak_labels ~n ~succs ~preds ?(keep = keep_all) () =
  let both = symmetric ~succs ~preds in
  let visited = masked_visited ~n ~keep () in
  let order = Flatarr.make n 0 in
  let count = ref 0 in
  let label = Array.make n (-1) in
  let par = { pdomains = 1; pchunk = chunk_size; pexp = None } in
  for seed = 0 to n - 1 do
    if not (Bitset.mem visited seed) then begin
      let start = !count in
      flood ~par ~succs:both ~visited ~order ~count seed;
      for i = start to !count - 1 do
        label.(order.{i}) <- seed
      done
    end
  done;
  label

let is_strongly_connected ?domains ?chunk ~n ~succs ~preds ?(keep = keep_all)
    () =
  let root = ref (-1) in
  let kept = ref 0 in
  for v = n - 1 downto 0 do
    if keep v then begin
      root := v;
      incr kept
    end
  done;
  !kept <= 1
  ||
  let fwd = bfs ?domains ?chunk ~n ~succs ~keep !root in
  fwd.count = !kept
  &&
  let bwd = bfs ?domains ?chunk ~n ~succs:preds ~keep !root in
  bwd.count = !kept
