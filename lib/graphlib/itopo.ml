type iter = int -> (int -> unit) -> unit

type bfs = { dist : int array; order : int array; count : int }

(* Reusable traversal scratch: one visited bitset plus full-size
   distance/order arrays, sized for a fixed node count [n].  Every
   traversal that accepts [?ws] resets exactly the state it uses
   (bitset clear is O(n/8); the dist fill is O(n)), so reuse across
   traversals is bit-identical to fresh allocation. *)
type ws = { wn : int; wvisited : Bitset.t; wdist : int array; worder : int array }

let ws_create n =
  if n < 0 then invalid_arg "Itopo.ws_create: negative size";
  { wn = n; wvisited = Bitset.create n; wdist = Array.make n (-1); worder = Array.make n 0 }

let ws_check ws n =
  if ws.wn <> n then invalid_arg "Itopo: workspace sized for a different n"

let keep_all = fun _ -> true

(* Physically-recognized empty predecessor iterator: when a caller knows
   every weak component is already strongly connected (so directed
   reachability covers it), passing [no_preds] lets the component sweeps
   walk [succs] alone instead of a wrapper that calls both closures. *)
let no_preds : iter = fun _ _ -> ()

let symmetric ~succs ~preds : iter =
  if preds == no_preds then succs
  else
    fun u f ->
      succs u f;
      preds u f

(* Below this many frontier nodes a level is expanded sequentially even
   when [domains > 1]: spawning is ~20–50 µs per domain and would
   dominate small levels (same threshold rationale as
   Netsim.Simulator.par_threshold). *)
let par_threshold = 2048

(* The visited bitset doubles as the keep mask: nodes failing [keep]
   are pre-marked once, so the per-candidate test in the hot loops is a
   single bit probe instead of a bit probe plus a closure call. *)
let masked_visited ?ws ~n ~keep () =
  let visited =
    match ws with
    | None -> Bitset.create n
    | Some w ->
        ws_check w n;
        Bitset.clear w.wvisited;
        w.wvisited
  in
  if keep != keep_all then
    for v = 0 to n - 1 do
      if not (keep v) then Bitset.add visited v
    done;
  visited

let order_array ?ws ~n () =
  match ws with None -> Array.make n 0 | Some w -> w.worder

let dist_array ?ws ~n () =
  match ws with
  | None -> Array.make n (-1)
  | Some w ->
      Array.fill w.wdist 0 n (-1);
      w.wdist

(* Expand one BFS level [order.(lo..hi-1)] in parallel.  Workers only
   READ the visited bits, stashing candidate discoveries per chunk;
   [commit] then dedupes sequentially in (chunk, frontier-position,
   successor-order) order — exactly the order the sequential loop
   considers candidates — so frontier contents, discovery order and
   distances are bit-identical to the sequential expansion. *)
let expand_par ~domains ~succs ~visited ~commit ~(order : int array) lo hi =
  let k = hi - lo in
  let chunk = (k + domains - 1) / domains in
  let results = Array.make domains [||] in
  let worker j =
    let clo = lo + (j * chunk) and chi = min hi (lo + ((j + 1) * chunk)) in
    if clo < chi then begin
      let buf = ref (Array.make 256 0) in
      let len = ref 0 in
      let push v =
        if !len = Array.length !buf then begin
          let b = Array.make (2 * !len) 0 in
          Array.blit !buf 0 b 0 !len;
          buf := b
        end;
        !buf.(!len) <- v;
        incr len
      in
      for i = clo to chi - 1 do
        succs order.(i) (fun v -> if not (Bitset.mem visited v) then push v)
      done;
      results.(j) <- Array.sub !buf 0 !len
    end
  in
  let spawned =
    List.init (domains - 1) (fun j -> Domain.spawn (fun () -> worker (j + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  Array.iter
    (Array.iter (fun v -> if not (Bitset.mem visited v) then commit v))
    results

let bfs ?(domains = 1) ?ws ~n ~succs ?(keep = keep_all) src =
  if src < 0 || src >= n then invalid_arg "Itopo.bfs: source out of range";
  let dist = dist_array ?ws ~n () in
  let order = order_array ?ws ~n () in
  let count = ref 0 in
  let visited = masked_visited ?ws ~n ~keep () in
  if not (Bitset.mem visited src) then begin
    Bitset.add visited src;
    dist.(src) <- 0;
    order.(0) <- src;
    count := 1;
    let level_start = ref 0 in
    let d = ref 0 in
    (* Hoisted out of the level loop: allocating these closures per
       level (let alone per node, as a lambda in the inner loop would)
       accounted for megawords of minor garbage per traversal. *)
    let commit v =
      Bitset.add visited v;
      dist.(v) <- !d;
      order.(!count) <- v;
      incr count
    in
    let consider v = if not (Bitset.mem visited v) then commit v in
    while !level_start < !count do
      let lo = !level_start and hi = !count in
      level_start := hi;
      incr d;
      if domains > 1 && hi - lo >= par_threshold then
        expand_par ~domains ~succs ~visited ~commit ~order lo hi
      else
        for i = lo to hi - 1 do
          succs order.(i) consider
        done
    done
  end;
  { dist; order; count = !count }

let bfs_dist ?domains ~n ~succs ?keep src =
  (bfs ?domains ~n ~succs ?keep src).dist

let eccentricity ?domains ?ws ~n ~succs ?keep src =
  let r = bfs ?domains ?ws ~n ~succs ?keep src in
  (* BFS discovers nodes by nondecreasing distance, so the last
     discovery is the farthest. *)
  if r.count = 0 then 0 else r.dist.(r.order.(r.count - 1))

(* Visited-bitset BFS (no distances) appending discoveries to [order]
   from position [!count]; [visited] must already have [src] unmarked
   and every excluded node pre-marked ({!masked_visited}).  Shared by
   the component sweeps so that one bitset + one order array span every
   seed. *)
let flood ~domains ~succs ~visited ~(order : int array) ~count src =
  Bitset.add visited src;
  order.(!count) <- src;
  incr count;
  let level_start = ref (!count - 1) in
  let commit v =
    Bitset.add visited v;
    order.(!count) <- v;
    incr count
  in
  let consider v = if not (Bitset.mem visited v) then commit v in
  while !level_start < !count do
    let lo = !level_start and hi = !count in
    level_start := hi;
    if domains > 1 && hi - lo >= par_threshold then
      expand_par ~domains ~succs ~visited ~commit ~order lo hi
    else
      for i = lo to hi - 1 do
        succs order.(i) consider
      done
  done

let component_members ~n ~succs ~preds ?(keep = keep_all) src =
  if src < 0 || src >= n then
    invalid_arg "Itopo.component_members: source out of range";
  if not (keep src) then [||]
  else begin
    let both = symmetric ~succs ~preds in
    let visited = masked_visited ~n ~keep () in
    (* Growable order so a small component on a huge graph costs
       O(component) words beyond the bitset. *)
    let buf = ref (Array.make 64 0) in
    let len = ref 0 in
    Bitset.add visited src;
    !buf.(0) <- src;
    len := 1;
    let head = ref 0 in
    let consider v =
      if not (Bitset.mem visited v) then begin
        Bitset.add visited v;
        if !len = Array.length !buf then begin
          let b = Array.make (2 * !len) 0 in
          Array.blit !buf 0 b 0 !len;
          buf := b
        end;
        !buf.(!len) <- v;
        incr len
      end
    in
    while !head < !len do
      let u = !buf.(!head) in
      incr head;
      both u consider
    done;
    Array.sub !buf 0 !len
  end

(* Shared sweep: floods every component into [order] and returns the
   span (start, size) of the largest one.  Each component occupies a
   contiguous segment of [order], already in BFS discovery order from
   its smallest member (seeds ascend). *)
let lwc_sweep ~domains ~n ~both ~visited ~order =
  let count = ref 0 in
  let best_start = ref 0 and best_size = ref 0 in
  for seed = 0 to n - 1 do
    if not (Bitset.mem visited seed) then begin
      let start = !count in
      flood ~domains ~succs:both ~visited ~order ~count seed;
      let size = !count - start in
      (* strict [>]: ties go to the earlier seed, i.e. the component
         containing the smallest node — matching
         Traversal.largest_weak_component. *)
      if size > !best_size then begin
        best_size := size;
        best_start := start
      end
    end
  done;
  (!best_start, !best_size)

let largest_weak_component ?(domains = 1) ~n ~succs ~preds ?(keep = keep_all) ()
    =
  let both = symmetric ~succs ~preds in
  let visited = masked_visited ~n ~keep () in
  let order = Array.make n 0 in
  let start, size = lwc_sweep ~domains ~n ~both ~visited ~order in
  Array.sub order start size

let largest_weak_component_span ?(domains = 1) ~ws ~n ~succs ~preds
    ?(keep = keep_all) () =
  let both = symmetric ~succs ~preds in
  let visited = masked_visited ~ws ~n ~keep () in
  let order = ws.worder in
  let start, size = lwc_sweep ~domains ~n ~both ~visited ~order in
  (order, start, size)

let weak_labels ~n ~succs ~preds ?(keep = keep_all) () =
  let both = symmetric ~succs ~preds in
  let visited = masked_visited ~n ~keep () in
  let order = Array.make n 0 in
  let count = ref 0 in
  let label = Array.make n (-1) in
  for seed = 0 to n - 1 do
    if not (Bitset.mem visited seed) then begin
      let start = !count in
      flood ~domains:1 ~succs:both ~visited ~order ~count seed;
      for i = start to !count - 1 do
        label.(order.(i)) <- seed
      done
    end
  done;
  label

let is_strongly_connected ?domains ~n ~succs ~preds ?(keep = keep_all) () =
  let root = ref (-1) in
  let kept = ref 0 in
  for v = n - 1 downto 0 do
    if keep v then begin
      root := v;
      incr kept
    end
  done;
  !kept <= 1
  ||
  let fwd = bfs ?domains ~n ~succs ~keep !root in
  fwd.count = !kept
  &&
  let bwd = bfs ?domains ~n ~succs:preds ~keep !root in
  bwd.count = !kept
