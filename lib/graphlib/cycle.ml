let is_simple_closed c =
  let k = Array.length c in
  k > 0
  &&
  let seen = Hashtbl.create (2 * k) in
  Array.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    c

let edges_of_cycle c =
  let k = Array.length c in
  List.init k (fun i -> (c.(i), c.((i + 1) mod k)))

let is_cycle g c =
  is_simple_closed c
  && List.for_all (fun (u, v) -> Digraph.mem_edge g u v) (edges_of_cycle c)

let is_hamiltonian g ?(subset = fun _ -> true) c =
  is_cycle g c
  &&
  let on_cycle = Hashtbl.create (2 * Array.length c) in
  Array.iter (fun v -> Hashtbl.add on_cycle v ()) c;
  let n = Digraph.n_nodes g in
  let rec check v =
    v >= n || ((not (subset v)) || Hashtbl.mem on_cycle v) && check (v + 1)
  in
  Array.for_all subset c && check 0

let edge_set_of_cycle c =
  let h = Hashtbl.create (2 * Array.length c) in
  List.iter (fun e -> Hashtbl.replace h e ()) (edges_of_cycle c);
  h

let edge_disjoint a b =
  let ea = edge_set_of_cycle a in
  not (List.exists (Hashtbl.mem ea) (edges_of_cycle b))

let rec pairwise_edge_disjoint = function
  | [] | [ _ ] -> true
  | c :: rest -> List.for_all (edge_disjoint c) rest && pairwise_edge_disjoint rest

let avoids_nodes c bad = not (Array.exists bad c)
let avoids_edges c bad = not (List.exists bad (edges_of_cycle c))

let index_of c v =
  let k = Array.length c in
  let rec go i = if i >= k then raise Not_found else if c.(i) = v then i else go (i + 1) in
  go 0

let mem c v = match index_of c v with _ -> true | exception Not_found -> false

let rotate_to c v =
  let k = Array.length c in
  let i = index_of c v in
  Array.init k (fun j -> c.((i + j) mod k))

let successor_in_cycle c v =
  let k = Array.length c in
  c.((index_of c v + 1) mod k)

let of_successor_map ~start succ =
  let seen = Hashtbl.create 64 in
  let rec go acc v steps =
    if steps > 1 lsl 30 then None
    else if v = start && steps > 0 then Some (Array.of_list (List.rev acc))
    else if Hashtbl.mem seen v then None
    else begin
      Hashtbl.add seen v ();
      go (v :: acc) (succ v) (steps + 1)
    end
  in
  go [] start 0

let of_successor_map_n ~n ~start succ =
  if start < 0 || start >= n then
    invalid_arg "Cycle.of_successor_map_n: start out of range";
  (* Flat variant of [of_successor_map]: a bitset instead of a Hashtbl,
     and the cycle accumulated directly into an array — following a
     Hamiltonian successor rule over millions of nodes stays
     allocation-light. *)
  let seen = Bitset.create n in
  (* A simple cycle has at most n nodes, so the buffer never grows. *)
  let buf = Array.make n 0 in
  let len = ref 0 in
  let rec go v =
    if v = start && !len > 0 then Some (Array.sub buf 0 !len)
    else if v < 0 || v >= n || Bitset.mem seen v then None
    else begin
      Bitset.add seen v;
      buf.(!len) <- v;
      incr len;
      go (succ v)
    end
  in
  go start

let of_successor_array_into ~seen ~(buf : int array) ~start (succ : int array) =
  let n = Array.length succ in
  if start < 0 || start >= n then
    invalid_arg "Cycle.of_successor_array_into: start out of range";
  if Bitset.length seen < n || Array.length buf < n then
    invalid_arg "Cycle.of_successor_array_into: scratch too small";
  (* Same walk as [of_successor_map_n] with the successor map given
     flat — the per-step closure call disappears, which matters when
     the step runs dⁿ times.  Caller-provided scratch makes the walk
     allocation-free: the cycle's nodes land in [buf.(0 .. len−1)]. *)
  Bitset.clear seen;
  let len = ref 0 in
  let rec go v =
    if v = start && !len > 0 then Some !len
    else if v < 0 || v >= n || Bitset.mem seen v then None
    else begin
      Bitset.add seen v;
      buf.(!len) <- v;
      incr len;
      go succ.(v)
    end
  in
  go start

let of_successor_flat_into ~seen ~(buf : Flatarr.t) ~start (succ : Flatarr.t) =
  let n = Flatarr.length succ in
  if start < 0 || start >= n then
    invalid_arg "Cycle.of_successor_flat_into: start out of range";
  if Bitset.length seen < n || Flatarr.length buf < n then
    invalid_arg "Cycle.of_successor_flat_into: scratch too small";
  (* [of_successor_array_into] with both the successor map and the node
     buffer off-heap — the walk the Bigarray-backed FFC workspace closes
     its ring with. *)
  Bitset.clear seen;
  let len = ref 0 in
  let rec go v =
    if v = start && !len > 0 then Some !len
    else if v < 0 || v >= n || Bitset.mem seen v then None
    else begin
      Bitset.add seen v;
      buf.{!len} <- v;
      incr len;
      go succ.{v}
    end
  in
  go start

let of_successor_flat_n ~start (succ : Flatarr.t) =
  let n = Flatarr.length succ in
  if start < 0 || start >= n then
    invalid_arg "Cycle.of_successor_flat_n: start out of range";
  let seen = Bitset.create n in
  let buf = Flatarr.create n in
  Option.map
    (fun len -> Flatarr.sub_to_array buf 0 len)
    (of_successor_flat_into ~seen ~buf ~start succ)

let of_successor_array_n ~start (succ : int array) =
  let n = Array.length succ in
  if start < 0 || start >= n then
    invalid_arg "Cycle.of_successor_array_n: start out of range";
  let seen = Bitset.create n in
  let buf = Array.make n 0 in
  Option.map
    (fun len -> Array.sub buf 0 len)
    (of_successor_array_into ~seen ~buf ~start succ)
