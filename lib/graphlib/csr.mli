(** Compact digraphs in compressed-sparse-row form.

    Two [int array]s (offsets + destinations) instead of {!Digraph}'s
    boxed successor lists — 2 words per edge, cache-linear iteration.
    For graphs that genuinely must be materialized (the necklace
    adjacency N*, whose edges come from a nontrivial construction);
    graphs with arithmetic neighbors should stay implicit via
    {!Itopo.iter} instead.

    Successor order is edge-insertion order per source and predecessor
    order is increasing-source insertion order, both matching
    {!Digraph}.  Parallel edges and loops are allowed.  The reverse CSR
    is built lazily on the first predecessor query and cached. *)

type t

module Builder : sig
  type csr := t
  type t

  val create : int -> t
  (** [create n] starts an empty graph on nodes [0 .. n−1]. *)

  val add_edge : t -> int -> int -> unit
  (** Append a directed edge; duplicates are kept. *)

  val build : t -> csr
end

val of_edge_arrays : n:int -> src:int array -> dst:int array -> t
(** Build directly from parallel edge arrays (consumed by counting
    sort; the arrays are not retained). *)

val n_nodes : t -> int
val n_edges : t -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_succs : t -> int -> (int -> unit) -> unit
(** Zero-allocation successor iteration; [fun v f -> iter_succs t v f]
    is an {!Itopo.iter}. *)

val iter_preds : t -> int -> (int -> unit) -> unit
val succs : t -> int -> int list
val preds : t -> int -> int list
val mem_edge : t -> int -> int -> bool
val iter_edges : (int -> int -> unit) -> t -> unit

val reverse : t -> t
(** The reverse graph (cached; [reverse (reverse t) == t]). *)

val of_digraph : Digraph.t -> t
val to_digraph : t -> Digraph.t
