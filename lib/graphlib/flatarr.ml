(* Off-heap flat int arrays (Bigarray-backed) and the arena carver.

   The pipeline's working set is ~8 words per node; as ordinary [int
   array]s those words live on the OCaml heap, where every major slice
   walks them and every fresh trial re-pays the allocation.  A
   [Bigarray.Array1] of kind [int] holds the same unboxed 63-bit ints
   in malloc'd storage the GC never scans, and its [.{i}] access
   compiles to a bounds-checked load — the same cost profile as [.(i)]
   on a heap array.  [Byte] is the one-byte variant for 0/1 flags.

   [create] does NOT zero (Bigarray gives raw storage); use [make], or
   rely on the pipeline's reset-before-read discipline (DESIGN.md §5).

   [Arena] carves many arrays out of two backing allocations (words and
   bytes) at 64-byte-separated offsets, so regions written by different
   domains never share a cache line and a whole workspace is one
   allocation instead of a dozen. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make n v =
  let a = create n in
  Bigarray.Array1.fill a v;
  a

let length (a : t) = Bigarray.Array1.dim a
let get (a : t) i = a.{i}
let set (a : t) i v = a.{i} <- v
let fill (a : t) v = Bigarray.Array1.fill a v

let fill_prefix (a : t) len v =
  Bigarray.Array1.fill (Bigarray.Array1.sub a 0 len) v

let of_array (src : int array) =
  let n = Array.length src in
  let a = create n in
  for i = 0 to n - 1 do
    a.{i} <- src.(i)
  done;
  a

let sub_to_array (a : t) pos len =
  Array.init len (fun i -> a.{pos + i})

let to_array (a : t) = sub_to_array a 0 (length a)

let blit (src : t) (dst : t) =
  Bigarray.Array1.blit src (Bigarray.Array1.sub dst 0 (length src))

let blit_to_array (a : t) (dst : int array) =
  let n = length a in
  if Array.length dst < n then invalid_arg "Flatarr.blit_to_array: dst too small";
  for i = 0 to n - 1 do
    dst.(i) <- a.{i}
  done

module Byte = struct
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n : t = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

  let make n v =
    let a = create n in
    Bigarray.Array1.fill a v;
    a

  let length (a : t) = Bigarray.Array1.dim a
  let get (a : t) i = a.{i}
  let set (a : t) i v = a.{i} <- v
  let fill (a : t) v = Bigarray.Array1.fill a v
  let to_bool_array (a : t) = Array.init (length a) (fun i -> a.{i} <> 0)
end

module Arena = struct
  (* 64 bytes = one cache line on every machine we target. *)
  let align_bytes = 64
  let align_words = align_bytes / 8

  let aligned_words n = (n + align_words - 1) / align_words * align_words
  let aligned_bytes n = (n + align_bytes - 1) / align_bytes * align_bytes

  type arena = {
    words : t;
    bytes : Byte.t;
    mutable wnext : int;
    mutable bnext : int;
  }

  let create ~words ~bytes =
    let a = { words = create words; bytes = Byte.create bytes; wnext = 0; bnext = 0 } in
    (* One-time zeroing: carved views start in a defined state, like
       [make].  Stages still reset what they read before every use. *)
    fill a.words 0;
    Byte.fill a.bytes 0;
    a

  let carve a n =
    let off = a.wnext in
    if n < 0 || off + n > length a.words then
      invalid_arg "Flatarr.Arena.carve: arena exhausted";
    a.wnext <- off + aligned_words n;
    Bigarray.Array1.sub a.words off n

  let carve_byte a n =
    let off = a.bnext in
    if n < 0 || off + n > Byte.length a.bytes then
      invalid_arg "Flatarr.Arena.carve_byte: arena exhausted";
    a.bnext <- off + aligned_bytes n;
    Bigarray.Array1.sub a.bytes off n

  let words_used a = a.wnext
  let bytes_used a = a.bnext
end
