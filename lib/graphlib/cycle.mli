(** Cycle validation and manipulation.

    Throughout the reproduction a cycle is an [int array] of {e distinct}
    nodes [|v₀; …; v_{k−1}|] with edges v₀→v₁→…→v_{k−1}→v₀ (the closing
    edge is implicit, matching the thesis's circular-sequence notation). *)

val is_cycle : Digraph.t -> int array -> bool
(** All nodes distinct and every consecutive pair (including the wrap)
    is an edge.  Singleton cycles require a loop edge; the empty array
    is not a cycle. *)

val is_simple_closed : int array -> bool
(** Just the distinctness/nonemptiness part (no graph needed). *)

val is_hamiltonian : Digraph.t -> ?subset:(int -> bool) -> int array -> bool
(** [is_hamiltonian g c] — [c] is a cycle visiting every node of [g]
    ([?subset] restricts "every node" to those satisfying the predicate,
    as needed for Hamiltonicity of the faulty subgraph B-star). *)

val edges_of_cycle : int array -> (int * int) list
(** The k directed edges of the cycle, including the wrap edge. *)

val edge_set_of_cycle : int array -> (int * int, unit) Hashtbl.t

val edge_disjoint : int array -> int array -> bool
(** No directed edge (including wrap edges) occurs in both cycles. *)

val pairwise_edge_disjoint : int array list -> bool

val avoids_nodes : int array -> (int -> bool) -> bool
(** No node of the cycle satisfies the predicate. *)

val avoids_edges : int array -> ((int * int) -> bool) -> bool

val rotate_to : int array -> int -> int array
(** [rotate_to c v] re-roots the cycle so it starts at [v].
    @raise Not_found when [v] is not on the cycle. *)

val mem : int array -> int -> bool

val successor_in_cycle : int array -> int -> int
(** The node following [v] on the cycle. @raise Not_found if absent. *)

val of_successor_map : start:int -> (int -> int) -> int array option
(** Follow a successor function from [start] until it returns to
    [start], failing with [None] if a node repeats before closing or
    after 2{^30} steps. *)

val of_successor_map_n : n:int -> start:int -> (int -> int) -> int array option
(** Flat-state variant of {!of_successor_map} for node ids in [0 .. n−1]
    (bitset + array instead of a Hashtbl — use it whenever [n] is
    known).  Additionally fails with [None] if the successor function
    ever leaves the id range. *)

val of_successor_array_n : start:int -> int array -> int array option
(** {!of_successor_map_n} with the successor map as a flat array
    ([n = Array.length succ]); negative entries fail the walk, so −1
    works as "no successor". *)

val of_successor_array_into :
  seen:Bitset.t -> buf:int array -> start:int -> int array -> int option
(** Allocation-free {!of_successor_array_n} into caller scratch: [seen]
    is cleared, the walk's nodes land in [buf.(0 .. len−1)], and the
    result is [Some len] iff the walk closes into a simple cycle.  Both
    scratch structures must span at least [Array.length succ]. *)

val of_successor_flat_n : start:int -> Flatarr.t -> int array option
(** {!of_successor_array_n} over an off-heap successor map (the cycle
    itself still comes back as a fresh heap array). *)

val of_successor_flat_into :
  seen:Bitset.t -> buf:Flatarr.t -> start:int -> Flatarr.t -> int option
(** {!of_successor_array_into} with the successor map and node buffer
    both off-heap. *)
