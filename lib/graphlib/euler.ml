let edges_in_one_component g =
  let label, _ = Traversal.weak_components g in
  let witness = ref (-1) in
  try
    Digraph.iter_edges
      (fun u _ ->
        if !witness < 0 then witness := label.(u)
        else if label.(u) <> !witness then raise Exit)
      g;
    true
  with Exit -> false

let is_eulerian g = Digraph.is_balanced g && edges_in_one_component g

(* Hierholzer from [start], consuming edges from the mutable copy [adj].
   Returns the circuit as a node list starting and ending at [start]. *)
let hierholzer adj start =
  let path = ref [] in
  let stack = ref [ start ] in
  while not (List.is_empty !stack) do
    match !stack with
    | [] -> ()
    | v :: rest -> (
        match adj.(v) with
        | [] ->
            path := v :: !path;
            stack := rest
        | w :: ws ->
            adj.(v) <- ws;
            stack := w :: !stack)
  done;
  !path

let euler_circuit g =
  if Digraph.n_edges g = 0 then Some []
  else if not (is_eulerian g) then None
  else begin
    let adj = Array.init (Digraph.n_nodes g) (Digraph.succs g) in
    let start =
      let rec find v = if not (List.is_empty adj.(v)) then v else find (v + 1) in
      find 0
    in
    Some (hierholzer adj start)
  end

let circuit_partition g =
  if not (Digraph.is_balanced g) then invalid_arg "Euler.circuit_partition: not balanced";
  let adj = Array.init (Digraph.n_nodes g) (Digraph.succs g) in
  let circuits = ref [] in
  for v = 0 to Digraph.n_nodes g - 1 do
    while not (List.is_empty adj.(v)) do
      circuits := hierholzer adj v :: !circuits
    done
  done;
  List.rev !circuits

let is_circuit g path =
  match path with
  | [] -> true
  | [ _ ] -> false
  | first :: _ ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
      last path = first
      &&
      (* In a multigraph a circuit may use a repeated edge once per
         copy, so bound usage by the edge's multiplicity. *)
      let capacity = Hashtbl.create 64 in
      Digraph.iter_edges
        (fun u v ->
          Hashtbl.replace capacity (u, v)
            (1 + Option.value ~default:0 (Hashtbl.find_opt capacity (u, v))))
        g;
      let rec check = function
        | a :: (b :: _ as tl) -> (
            match Hashtbl.find_opt capacity (a, b) with
            | Some c when c > 0 ->
                Hashtbl.replace capacity (a, b) (c - 1);
                check tl
            | _ -> false)
        | _ -> true
      in
      check path
