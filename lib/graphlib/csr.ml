type t = {
  n : int;
  off : int array; (* length n+1; succs of v are dst.(off.(v) .. off.(v+1)-1) *)
  dst : int array;
  mutable rev : t option; (* reverse CSR, built on first preds query *)
}

module Builder = struct
  type t = {
    n : int;
    mutable src : int array;
    mutable tgt : int array;
    mutable len : int;
  }

  let create n =
    if n < 0 then invalid_arg "Csr.Builder.create: negative size";
    { n; src = Array.make 16 0; tgt = Array.make 16 0; len = 0 }

  let add_edge b u v =
    if u < 0 || u >= b.n || v < 0 || v >= b.n then
      invalid_arg "Csr.Builder.add_edge: node out of range";
    if b.len = Array.length b.src then begin
      let cap = 2 * b.len in
      let src = Array.make cap 0 and tgt = Array.make cap 0 in
      Array.blit b.src 0 src 0 b.len;
      Array.blit b.tgt 0 tgt 0 b.len;
      b.src <- src;
      b.tgt <- tgt
    end;
    b.src.(b.len) <- u;
    b.tgt.(b.len) <- v;
    b.len <- b.len + 1

  (* Stable counting sort of the edge list by [key]: per-key insertion
     order is preserved, so successor order matches Digraph's
     (edge-insertion order per source). *)
  let sort_by n key other len =
    let off = Array.make (n + 1) 0 in
    for i = 0 to len - 1 do
      off.(key.(i) + 1) <- off.(key.(i) + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let dst = Array.make len 0 in
    let cursor = Array.copy off in
    for i = 0 to len - 1 do
      let k = key.(i) in
      dst.(cursor.(k)) <- other.(i);
      cursor.(k) <- cursor.(k) + 1
    done;
    (off, dst)

  let build b =
    let off, dst = sort_by b.n b.src b.tgt b.len in
    { n = b.n; off; dst; rev = None }
end

let of_edge_arrays ~n ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Csr.of_edge_arrays: length mismatch";
  let off, dst = Builder.sort_by n src dst (Array.length src) in
  { n; off; dst; rev = None }

let n_nodes t = t.n
let n_edges t = Array.length t.dst
let out_degree t v = t.off.(v + 1) - t.off.(v)

let iter_succs t v f =
  for i = t.off.(v) to t.off.(v + 1) - 1 do
    f t.dst.(i)
  done

let succs t v =
  List.init (out_degree t v) (fun i -> t.dst.(t.off.(v) + i))

let reverse t =
  match t.rev with
  | Some r -> r
  | None ->
      (* Counting sort by destination is stable on source order, so
         predecessors come back in increasing-source insertion order —
         the same order Digraph.preds yields. *)
      let m = n_edges t in
      let src = Array.make m 0 in
      for v = 0 to t.n - 1 do
        for i = t.off.(v) to t.off.(v + 1) - 1 do
          src.(i) <- v
        done
      done;
      let off, dst = Builder.sort_by t.n t.dst src m in
      let r = { n = t.n; off; dst; rev = Some t } in
      t.rev <- Some r;
      r

let iter_preds t v f = iter_succs (reverse t) v f
let preds t v = succs (reverse t) v
let in_degree t v = out_degree (reverse t) v

let iter_edges f t =
  for v = 0 to t.n - 1 do
    for i = t.off.(v) to t.off.(v + 1) - 1 do
      f v t.dst.(i)
    done
  done

let mem_edge t u v =
  let found = ref false in
  iter_succs t u (fun w -> if w = v then found := true);
  !found

let of_digraph g =
  let n = Digraph.n_nodes g in
  let b = Builder.create n in
  Digraph.iter_edges (fun u v -> Builder.add_edge b u v) g;
  Builder.build b

let to_digraph t =
  let b = Digraph.Builder.create t.n in
  iter_edges (fun u v -> Digraph.Builder.add_edge b u v) t;
  Digraph.Builder.build b
