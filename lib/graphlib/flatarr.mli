(** Off-heap flat int arrays and the workspace arena carver.

    [t] is a [Bigarray.Array1] of kind [int] (unboxed 63-bit ints in
    malloc'd storage): the GC never scans or moves its contents, so the
    pipeline's ~8-words-per-node working set costs the collector
    nothing.  Access with the standard bigarray syntax [a.{i}] /
    [a.{i} <- v] (bounds-checked, same cost profile as [.(i)] on a
    heap array), or the named {!get}/{!set}.

    {b [create] does not zero}: Bigarray hands back raw storage.  Use
    {!make}, or rely on the reset-before-read discipline the pipeline
    stages already follow (DESIGN.md §5/§6b). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Uninitialized off-heap array of [n] ints. *)

val make : int -> int -> t
(** [make n v] — like [Array.make]: [n] ints, all set to [v]. *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val fill : t -> int -> unit

val fill_prefix : t -> int -> int -> unit
(** [fill_prefix a len v] sets [a.{0 .. len−1}] to [v] — the
    workspace's necklace-level arrays have fault-free capacity but only
    their live prefix is ever (re)set and read. *)

val of_array : int array -> t
val to_array : t -> int array

val sub_to_array : t -> int -> int -> int array
(** [sub_to_array a pos len] — heap copy of [a.{pos .. pos+len−1}]. *)

val blit : t -> t -> unit
(** Copy every element of the source into the (at least as long)
    destination's prefix. *)

val blit_to_array : t -> int array -> unit
(** Copy every element into the (at least as long) heap array — how
    [Ffc.Live] snapshots workspace-aliased results it must outlive. *)

(** One-byte 0/1 flag arrays (kind [int8_unsigned]): the off-heap
    replacement for the pipeline's node-level [bool array]s, at 1/8 the
    footprint of a word-per-flag layout. *)
module Byte : sig
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : int -> t
  (** Uninitialized. *)

  val make : int -> int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val fill : t -> int -> unit

  val to_bool_array : t -> bool array
  (** [true] where nonzero — for consumers (and oracles) that still
      speak [bool array]. *)
end

(** Sub-arena carving: many arrays out of two backing allocations.

    Every carve starts at a 64-byte-separated offset, so two carved
    regions never share a cache line {e relative to the backing} —
    domains writing disjoint carves cannot false-share.  Carving is
    append-only and permanent (an arena is sized exactly once, by
    [Ffc.Workspace.create]); carving past the backing raises. *)
module Arena : sig
  type arena

  val create : words:int -> bytes:int -> arena
  (** Backings of [words] ints and [bytes] bytes, zeroed once. *)

  val carve : arena -> int -> t
  (** The next [n]-int region (a view into the word backing).
      @raise Invalid_argument when the backing is exhausted. *)

  val carve_byte : arena -> int -> Byte.t

  val aligned_words : int -> int
  (** Words actually consumed by an [n]-word carve (rounded up to the
      64-byte alignment quantum) — for sizing the backing as a sum. *)

  val aligned_bytes : int -> int
  val words_used : arena -> int
  val bytes_used : arena -> int
end
