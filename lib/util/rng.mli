(** A tiny deterministic PRNG (splitmix64) for reproducible experiments.

    The thesis's simulation tables (2.1/2.2) were produced with random
    fault distributions; we replace the unspecified generator with a
    seeded splitmix64 so every table in this reproduction is exactly
    re-runnable. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : int -> int -> t
(** [split seed index] — the [index]-th substream of [seed]
    ([index ≥ 0]): a fresh generator deterministic in [(seed, index)]
    whose stream is decorrelated from every other index (states are
    splitmix64-finalized gamma hops, not consecutive integers).  Both
    campaign engines derive their per-trial generators this way so a
    trial's outcome is independent of trial scheduling order. *)

val next : t -> int64
(** Raw 64-bit step. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [0, bound), [bound ≥ 1]
    (Lemire-style rejection sampling on the top bits of {!next} — no
    modulo bias at any bound).  [bound = 1] returns 0 without consuming
    a raw step; any other bound consumes ≥ 1 step, so streams are
    reproducible but not aligned across different bounds. *)

val sample_distinct : t -> k:int -> bound:int -> int list
(** [k] distinct integers uniform over [0, bound), sorted increasingly.
    @raise Invalid_argument if [k > bound] or [k < 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
