type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer, Steele et al. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split seed index =
  if index < 0 then invalid_arg "Rng.split: negative index";
  (* The index-th substream: seed the child with the mixed (index+1)-th
     gamma hop of a master stream starting at [seed].  The finalizer
     scatters consecutive indices across the state space, so adjacent
     substreams are uncorrelated in a way [create (seed + index)]'s
     overlapping streams are not. *)
  { state = mix (Int64.add (Int64.of_int seed) (Int64.mul gamma (Int64.of_int (index + 1)))) }

(* Bits needed to represent [x] (x ≥ 1): the rejection window below is
   the smallest power of two ≥ bound. *)
let rec bit_width acc x = if x = 0 then acc else bit_width (acc + 1) (x lsr 1)

let int t bound =
  if bound < 1 then invalid_arg "Rng.int: bound < 1";
  (* Lemire-style rejection sampling: draw the top k bits of a raw step,
     where 2^(k−1) < bound ≤ 2^k, and reject draws ≥ bound.  Every
     residue is hit by the same number of raw states, so the result is
     exactly uniform — the old path (top 62 bits mod bound) favored
     small residues, with bias growing with bound.  k ≤ 62 because
     [bound] is an OCaml int, so the shift below stays in range; the
     top bits of splitmix64 are the best-mixed, and each round keeps
     them with probability > 1/2 (expected < 2 draws). *)
  if bound = 1 then 0
  else begin
    let k = bit_width 0 (bound - 1) in
    let rec draw () =
      let x = Int64.to_int (Int64.shift_right_logical (next t) (64 - k)) in
      if x < bound then x else draw ()
    in
    draw ()
  end

let sample_distinct t ~k ~bound =
  if k < 0 || k > bound then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: k distinct values without building [0,bound). *)
  let chosen = Hashtbl.create (2 * k) in
  for j = bound - k to bound - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j () else Hashtbl.replace chosen r ()
  done;
  List.sort Int.compare (Hashtbl.fold (fun x () acc -> x :: acc) chosen [])

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
