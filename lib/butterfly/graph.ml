module W = Debruijn.Word
module DG = Graphlib.Digraph

type t = {
  p : W.params;
  graph : DG.t;
}

let encode_raw p ~level ~column = (level * p.W.size) + column
let level_raw p v = v / p.W.size
let column_raw p v = v mod p.W.size

(* Replace digit k (0-indexed) of the column. *)
let set_digit p x k a =
  let digits = W.decode p x in
  digits.(k) <- a;
  W.encode p digits

let successors_raw p v =
  let k = level_raw p v and x = column_raw p v in
  let k' = (k + 1) mod p.W.n in
  List.init p.W.d (fun a -> encode_raw p ~level:k' ~column:(set_digit p x k a))

let create ~d ~n =
  if n < 2 then invalid_arg "Butterfly.create: n must be >= 2";
  let p = W.params ~d ~n in
  let graph = DG.of_successors (n * p.W.size) (successors_raw p) in
  { p; graph }

let encode t ~level ~column =
  if level < 0 || level >= t.p.W.n then invalid_arg "Butterfly.encode: level";
  if column < 0 || column >= t.p.W.size then invalid_arg "Butterfly.encode: column";
  encode_raw t.p ~level ~column

let level t v = level_raw t.p v
let column t v = column_raw t.p v
let n_nodes t = t.p.W.n * t.p.W.size
let successors t v = successors_raw t.p v

let s_node t i x =
  (* S_x^i = (i, π^{−i}(x)). *)
  encode_raw t.p ~level:i ~column:(W.rotl_by t.p (-i) x)

let de_bruijn_class t v = W.rotl_by t.p (level t v) (column t v)

let edge_to_de_bruijn t (a, b) =
  if not (List.mem b (successors t a)) then
    invalid_arg "Butterfly.edge_to_de_bruijn: not a butterfly edge";
  (de_bruijn_class t a, de_bruijn_class t b)

let to_string t v =
  Fmt.str "(%d,%s)" (level t v) (W.to_string t.p (column t v))
