module Word = Debruijn.Word
module Necklace = Debruijn.Necklace
module Graph = Debruijn.Graph
module Sequence = Debruijn.Sequence
module Digraph = Graphlib.Digraph
module Simulator = Netsim.Simulator
module Cycle = Graphlib.Cycle
module Bstar = Ffc.Bstar
module Embed = Ffc.Embed
module Ffc_workspace = Ffc.Workspace
module Ffc_campaign = Ffc.Campaign
module Ffc_live = Ffc.Live
module Pipeline_error = Ffc.Pipeline_error
module Distributed = Ffc.Distributed
module Selftimed = Ffc.Selftimed
module Routing = Ffc.Routing
module Shift_cycles = Dhc.Shift_cycles
module Strategies = Dhc.Strategies
module Edge_fault = Dhc.Edge_fault
module Psi = Dhc.Psi
module Mdb = Dhc.Mdb
module Stream = Dhc.Stream
module Campaign = Dhc.Campaign
module Butterfly_graph = Butterfly.Graph
module Butterfly_embed = Butterfly.Embed
module Count = Necklace_count.Count
module Hypercube_ring = Hypercube.Ring
module Rng = Util.Rng
module Compose = Dhc.Compose
module Collective_schedule = Collective.Schedule
module Collective_exec = Collective.Exec
module Collective_fastpath = Collective.Fastpath

type collective_engine = Netsim | Fastpath

let collective_run ~engine ?domains ?edge_faults ?clamp_ranks ~p ~faulty
    ~rings spec =
  match engine with
  | Netsim ->
      Collective.Exec.run ?domains ?edge_faults ?clamp_ranks ~p ~faulty ~rings
        spec
  | Fastpath ->
      Collective.Fastpath.run ?domains ?edge_faults ?clamp_ranks ~p ~faulty
        ~rings spec

let fault_free_ring ~d ~n ~faults =
  let p = Word.params ~d ~n in
  Option.map (fun e -> e.Ffc.Embed.cycle) (Ffc.Embed.embed p ~faults)

let fault_free_ring_distributed ?domains ~d ~n ~faults () =
  let p = Word.params ~d ~n in
  Option.map
    (fun bstar ->
      let r = Ffc.Distributed.run ?domains bstar in
      (r.Ffc.Distributed.cycle, r.Ffc.Distributed.stats))
    (Ffc.Bstar.compute p ~faults)

let ring_length_guarantee ~d ~n ~f =
  Ffc.Embed.length_lower_bound (Word.params ~d ~n) f

let hamiltonian_ring_avoiding_edge_faults ~d ~n ~faults =
  let p = Word.params ~d ~n in
  Option.map
    (Sequence.cycle_of_sequence p)
    (Dhc.Edge_fault.best_hc_avoiding ~d ~n ~faults)

let edge_fault_tolerance = Dhc.Psi.max_tolerance

let disjoint_rings ~d ~n =
  let p = Word.params ~d ~n in
  List.map (Sequence.cycle_of_sequence p) (Dhc.Compose.disjoint_hamiltonian_cycles ~d ~n)

let butterfly_ring_avoiding_edge_faults ~d ~n ~faults =
  let bf = Butterfly.Graph.create ~d ~n in
  Butterfly.Embed.hc_avoiding bf ~faults

let de_bruijn_sequence ~d ~n =
  let p = Word.params ~d ~n in
  match Ffc.Embed.embed p ~faults:[] with
  | Some e -> Sequence.sequence_of_cycle p e.Ffc.Embed.cycle
  | None -> assert false

let route ~d ~n ~faults x y =
  let p = Word.params ~d ~n in
  let flags = Necklace.mark_faulty_necklaces p faults in
  Ffc.Routing.route p ~faulty_necklace:(fun v -> flags.(v)) x y

let necklace_count ~d ~n = Necklace_count.Count.total ~d ~n
let necklace_count_of_length ~d ~n ~t = Necklace_count.Count.of_length ~d ~n ~t

let collective_over_fault_free_ring ?domains ?(engine = Netsim)
    ?(bidirectional = false) ?clamp_ranks ~d ~n ~faults ~op ~ranks
    ~chunk_words () =
  let p = Word.params ~d ~n in
  Option.map
    (fun e ->
      let flags = Necklace.mark_faulty_necklaces p faults in
      collective_run ~engine ?domains ?clamp_ranks ~p
        ~faulty:(fun v -> flags.(v))
        ~rings:[ e.Ffc.Embed.cycle ]
        { Collective.Exec.op; ranks; chunk_words; bidirectional })
    (Ffc.Embed.embed p ~faults)

let striped_collective_over_disjoint_rings ?domains ?(engine = Netsim)
    ?(bidirectional = false) ?clamp_ranks ?(edge_faults = []) ~d ~n ~k ~op
    ~ranks ~chunk_words () =
  let p = Word.params ~d ~n in
  let streams =
    match edge_faults with
    | [] -> Dhc.Compose.disjoint_streams_upto ~d ~n ~k
    | _ ->
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | st :: rest -> st :: take (k - 1) rest
        in
        take k
          (Dhc.Edge_fault.surviving_disjoint_streams ~d ~n ~faults:edge_faults)
  in
  match streams with
  | [] -> None
  | _ ->
      let rings = List.map Dhc.Stream.to_nodes streams in
      Some
        (collective_run ~engine ?domains ~edge_faults ?clamp_ranks ~p
           ~faulty:(fun _ -> false)
           ~rings
           { Collective.Exec.op; ranks; chunk_words; bidirectional })
