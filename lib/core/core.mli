(** Fault-tolerant ring embedding in De Bruijn networks — public façade.

    This module gathers the whole reproduction of Rowley & Bose behind
    one door.  The sub-libraries remain directly usable
    ({!Debruijn.Word}, {!Ffc.Embed}, {!Dhc.Strategies}, …); [Core]
    re-exports them and offers one-call drivers for the common tasks:

    {ul
    {- {!fault_free_ring}: Chapter 2 — the longest ring avoiding faulty
       {e processors} (length ≥ dⁿ − nf for f ≤ d−2);}
    {- {!fault_free_ring_distributed}: the same ring computed by the
       network-level protocol, with its round statistics;}
    {- {!hamiltonian_ring_avoiding_edge_faults}: Chapter 3 — a
       Hamiltonian ring avoiding faulty {e links}
       (f ≤ MAX(ψ(d)−1, φ(d)));}
    {- {!disjoint_rings}: ψ(d) edge-disjoint Hamiltonian rings;}
    {- {!butterfly_ring_avoiding_edge_faults}: §3.4 — the butterfly
       extension;}
    {- {!de_bruijn_sequence}: a dⁿ-ary De Bruijn sequence;}
    {- necklace counting re-exports (Chapter 4).}} *)

module Word = Debruijn.Word
module Necklace = Debruijn.Necklace
module Graph = Debruijn.Graph
module Sequence = Debruijn.Sequence
module Digraph = Graphlib.Digraph
module Simulator = Netsim.Simulator
module Cycle = Graphlib.Cycle
module Bstar = Ffc.Bstar
module Embed = Ffc.Embed
module Ffc_workspace = Ffc.Workspace
module Ffc_campaign = Ffc.Campaign
module Ffc_live = Ffc.Live
module Pipeline_error = Ffc.Pipeline_error
module Distributed = Ffc.Distributed
module Selftimed = Ffc.Selftimed
module Routing = Ffc.Routing
module Shift_cycles = Dhc.Shift_cycles
module Strategies = Dhc.Strategies
module Edge_fault = Dhc.Edge_fault
module Psi = Dhc.Psi
module Mdb = Dhc.Mdb
module Stream = Dhc.Stream
module Campaign = Dhc.Campaign
module Butterfly_graph = Butterfly.Graph
module Butterfly_embed = Butterfly.Embed
module Count = Necklace_count.Count
module Hypercube_ring = Hypercube.Ring
module Rng = Util.Rng
module Compose = Dhc.Compose
module Collective_schedule = Collective.Schedule
module Collective_exec = Collective.Exec
module Collective_fastpath = Collective.Fastpath

val fault_free_ring :
  d:int -> n:int -> faults:int list -> int array option
(** The FFC algorithm (Chapter 2): a ring over every node of the largest
    component left after deleting the faulty necklaces.  Nodes are codes
    in [0, dⁿ); see {!Word} for digit conversions.  [None] when no node
    survives. *)

val fault_free_ring_distributed :
  ?domains:int ->
  d:int ->
  n:int ->
  faults:int list ->
  unit ->
  (int array * Ffc.Distributed.stats) option
(** The same ring, computed by message passing on the synchronous
    network simulator; the stats report rounds and per-round metrics
    per protocol phase.  [domains > 1] steps the big simulator rounds
    in parallel on OCaml 5 domains (bit-identical results). *)

val ring_length_guarantee : d:int -> n:int -> f:int -> int
(** dⁿ − n·f — the Proposition 2.2 floor (valid for f ≤ d−2). *)

val hamiltonian_ring_avoiding_edge_faults :
  d:int -> n:int -> faults:(int * int) list -> int array option
(** Proposition 3.3/3.4: a Hamiltonian ring (as a node cycle) avoiding
    the given faulty links, guaranteed for
    |faults| ≤ MAX(ψ(d)−1, φ(d)), n ≥ 2. *)

val edge_fault_tolerance : int -> int
(** MAX(ψ(d)−1, φ(d)). *)

val disjoint_rings : d:int -> n:int -> int array list
(** ψ(d) pairwise edge-disjoint Hamiltonian rings of B(d,n) as node
    cycles (n ≥ 2). *)

val butterfly_ring_avoiding_edge_faults :
  d:int -> n:int -> faults:(int * int) list -> int array option
(** Proposition 3.5, for gcd(d,n) = 1: a Hamiltonian ring of the
    butterfly F(d,n) avoiding the given faulty butterfly links. *)

val de_bruijn_sequence : d:int -> n:int -> int array
(** A De Bruijn sequence of order n over d letters (as digits), obtained
    from the FFC algorithm with no faults — i.e. by necklace joining, in
    the style of [FM78, Ra181]. *)

val route : d:int -> n:int -> faults:int list -> int -> int -> int list option
(** A fault-free path of length ≤ 2n between two live processors,
    avoiding every faulty necklace — the constructive routing of
    Proposition 2.2's proof.  Guaranteed when |faults| ≤ d−2. *)

val necklace_count : d:int -> n:int -> int
(** Chapter 4: total number of necklaces. *)

val necklace_count_of_length : d:int -> n:int -> t:int -> int

type collective_engine = Netsim | Fastpath
    (** Which executor drives a collective: [Netsim] simulates every
        relay hop message-by-message over {!Collective.Exec};
        [Fastpath] runs the compiled zero-copy kernel of
        {!Collective.Fastpath}.  Identical reports for identical
        inputs — the agreement is qcheck-pinned. *)

val collective_over_fault_free_ring :
  ?domains:int ->
  ?engine:collective_engine ->
  ?bidirectional:bool ->
  ?clamp_ranks:bool ->
  d:int ->
  n:int ->
  faults:int list ->
  op:Collective.Schedule.op ->
  ranks:int ->
  chunk_words:int ->
  unit ->
  Collective.Exec.report option
(** One-call driver for the Chapter-2 setting: embed the FFC ring
    avoiding the faulty processors, then run the given collective over
    it with the chosen [engine] (default [Netsim]), exact-verifying
    the reduced values.  [None] when no ring survives the fault set. *)

val striped_collective_over_disjoint_rings :
  ?domains:int ->
  ?engine:collective_engine ->
  ?bidirectional:bool ->
  ?clamp_ranks:bool ->
  ?edge_faults:(int * int) list ->
  d:int ->
  n:int ->
  k:int ->
  op:Collective.Schedule.op ->
  ranks:int ->
  chunk_words:int ->
  unit ->
  Collective.Exec.report option
(** One-call driver for the Chapter-3 setting: take [k] of the ψ(d)
    pairwise edge-disjoint Hamiltonian rings (the survivors of
    [edge_faults], when given) and stripe one collective across all of
    them in a single run of the chosen [engine] — k× the application
    bytes per step of the single-ring schedule.  [None] when no ring
    survives.
    @raise Invalid_argument if [edge_faults] is empty and k is outside
    [1, ψ(d)]. *)
