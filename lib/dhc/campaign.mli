(** Randomized edge-fault campaigns: the Chapter-3 analogue of the
    thesis's simulation tables.

    For each fault count f the campaign samples f distinct edges of
    B(d,n) uniformly (by {!Debruijn.Word.edge_code}) and asks the
    streaming engine for a fault-free Hamiltonian ring, recording which
    route succeeded — the Proposition 3.3 construction or the ψ(d)
    disjoint-family pick — and the ring length achieved.  Sweeping f
    from 0 past MAX(ψ(d)−1, φ(d)) shows the guaranteed regime (100%
    success) giving way to best-effort behaviour. *)

type point = {
  f : int;  (** number of random edge faults injected *)
  trials : int;
  successes : int;  (** trials that produced a fault-free Hamiltonian ring *)
  via_construction : int;  (** … via the Proposition 3.3 construction *)
  via_disjoint : int;  (** … via a fault-free member of the ψ(d) family *)
  masked_fallbacks : int;
      (** failed trials recovered by node masking (non-Hamiltonian ring;
          only attempted for dⁿ ≤ 65536) *)
  mean_ring_length : float;
      (** over all trials; dⁿ on success, the masked ring length on
          fallback, 0 on total failure *)
  wall_s : float;
  minor_words_per_trial : float;
      (** steady-state minor-heap words allocated by one trial (minimum
          across the point's trials, read in the trial's own domain) *)
  major_words_per_trial : float;  (** likewise for the major heap *)
}

val run :
  ?domains:int ->
  ?trials:int ->
  ?seed:int ->
  ?fmax:int ->
  d:int ->
  n:int ->
  unit ->
  point list
(** Points for f = 0, 1, …, fmax (default 2·MAX(ψ(d)−1, φ(d)) + 2,
    clamped to the edge count dⁿ·d).  [?domains] parallelizes the
    trials of each point; per-trial seeds are derived from [seed], [f]
    and the trial index, so every field except [wall_s] and the
    measured allocation counters is independent of [domains].
    Defaults: 20 trials, seed 0x5eed. *)
