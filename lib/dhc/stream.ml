module W = Debruijn.Word

type t = {
  p : W.params;
  start : int;
  length : int;
  succ : int -> int;
}

let of_shift sc s =
  let lfsr = sc.Shift_cycles.lfsr in
  let p = sc.Shift_cycles.p in
  {
    p;
    start = Shift_cycles.start_node sc s;
    length = p.W.size - 1;
    succ = Lfsr.successor_fun lfsr ~shift:s;
  }

let hamiltonize sc ~s ~k =
  let exit_node, sn, entry_node = Shift_cycles.insertion_nodes sc ~s ~k in
  let base = of_shift sc s in
  let base_succ = base.succ in
  {
    p = base.p;
    (* Start at the exit node so the node order matches the materialized
       [Shift_cycles.hamiltonize] rotation: exit, sⁿ, entry, …. *)
    start = exit_node;
    length = base.p.W.size;
    succ =
      (fun x -> if x = exit_node then sn else if x = sn then entry_node else base_succ x);
  }

let product ~s ~t a b =
  if Numtheory.gcd s t <> 1 then invalid_arg "Stream.product: s and t must be coprime";
  if a.p.W.d <> s || b.p.W.d <> t || a.p.W.n <> b.p.W.n then
    invalid_arg "Stream.product: factor parameters mismatch";
  let n = a.p.W.n in
  let p = W.params ~d:(s * t) ~n in
  let d = p.W.d in
  (* v ↦ (v_A, v_B): split every digit vᵢ = aᵢ·t + bᵢ of the B(st,n)
     code into base-s and base-t codes, and zip back after stepping each
     factor — the Rees product as a successor transformer (Lemma 3.6). *)
  let proj_hi v =
    let u = ref 0 and y = ref v and m = ref 1 in
    for _ = 1 to n do
      u := !u + (!y mod d / t * !m);
      m := !m * s;
      y := !y / d
    done;
    !u
  in
  let proj_lo v =
    let w = ref 0 and y = ref v and m = ref 1 in
    for _ = 1 to n do
      w := !w + (!y mod d mod t * !m);
      m := !m * t;
      y := !y / d
    done;
    !w
  in
  let zip u w =
    let v = ref 0 and yu = ref u and yw = ref w and m = ref 1 in
    for _ = 1 to n do
      v := !v + (((!yu mod s * t) + (!yw mod t)) * !m);
      m := !m * d;
      yu := !yu / s;
      yw := !yw / t
    done;
    !v
  in
  let sa = a.succ and sb = b.succ in
  {
    p;
    start = zip a.start b.start;
    length = a.length * b.length;
    succ = (fun v -> zip (sa (proj_hi v)) (sb (proj_lo v)));
  }

let of_cycle p nodes =
  let len = Array.length nodes in
  if len = 0 then invalid_arg "Stream.of_cycle: empty cycle";
  let tbl = Hashtbl.create (2 * len) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem tbl v then invalid_arg "Stream.of_cycle: repeated node";
      Hashtbl.replace tbl v nodes.((i + 1) mod len))
    nodes;
  {
    p;
    start = nodes.(0);
    length = len;
    succ =
      (fun v ->
        match Hashtbl.find_opt tbl v with
        | Some w -> w
        | None -> invalid_arg "Stream.of_cycle: node not on the cycle");
  }

let iter t f =
  let v = ref t.start in
  for _ = 1 to t.length do
    f !v;
    v := t.succ !v
  done

let fold_edges t ~init ~f =
  let acc = ref init and v = ref t.start in
  for _ = 1 to t.length do
    let w = t.succ !v in
    acc := f !acc !v w;
    v := w
  done;
  !acc

let to_nodes t =
  let v = ref t.start in
  Array.init t.length (fun _ ->
      let x = !v in
      v := t.succ x;
      x)

let to_sequence t =
  let v = ref t.start in
  Array.init t.length (fun _ ->
      let x = !v in
      v := t.succ x;
      W.first_digit t.p x)

let first_return t ~max_steps =
  let v = ref (t.succ t.start) and steps = ref 1 in
  while !v <> t.start && !steps < max_steps do
    v := t.succ !v;
    incr steps
  done;
  if !v = t.start then Some !steps else None

let is_cycle t =
  match first_return t ~max_steps:(t.length + 1) with
  | Some steps -> steps = t.length
  | None -> false

let is_hamiltonian t = t.length = t.p.W.size && is_cycle t

let is_de_bruijn_walk t =
  (* Every step must be a genuine De Bruijn edge — prefix of the target
     equals suffix of the source — checked by word arithmetic alone. *)
  fold_edges t ~init:true ~f:(fun ok u v -> ok && W.suffix t.p u = W.prefix t.p v)

let avoids t is_fault =
  let ok = ref true and v = ref t.start in
  (try
     for _ = 1 to t.length do
       let w = t.succ !v in
       if is_fault !v w then begin
         ok := false;
         raise Exit
       end;
       v := w
     done
   with Exit -> ());
  !ok

let contains_edge t u v =
  (* Valid for Hamiltonian streams, where every node lies on the cycle;
     then u → v is an edge of the cycle iff v is u's successor. *)
  t.succ u = v

let edge_disjoint a b =
  if a.length <> a.p.W.size || b.length <> b.p.W.size then
    invalid_arg "Stream.edge_disjoint: requires Hamiltonian streams";
  let sb = b.succ in
  fold_edges a ~init:true ~f:(fun ok u v -> ok && sb u <> v)
