(** The counting functions of Chapter 3: ψ(d) (disjoint HCs obtained by
    the constructions, Proposition 3.1/3.2 and Table 3.1), the
    edge-fault tolerance φ(d) = Σ pᵢᵉⁱ − 2k (Proposition 3.3, written
    cp(d) in the thesis), and MAX(ψ(d)−1, φ(d)) (Proposition 3.4 and
    Table 3.2). *)

val psi_prime_power : int -> int -> int
(** [psi_prime_power p e] = pᵉ − 1 when p = 2; (pᵉ+1)/2 when (p−1)/2 is
    even and condition (b) of Lemma 3.5 holds; (pᵉ−1)/2 otherwise. *)

val psi : int -> int
(** ψ(d) = ∏ ψ(pᵢᵉⁱ) over the factorization of d ≥ 2. *)

val phi_bound : int -> int
(** φ(d) = p₁ᵉ¹ + … + p_kᵉᵏ − 2k: the number of edge faults tolerated by
    the Proposition 3.3 construction. *)

val max_tolerance : int -> int
(** MAX(ψ(d) − 1, φ(d)) — Proposition 3.4's fault bound. *)

type bounds = { psi : int; phi : int; max_ : int }
(** One row of Tables 3.1–3.2: ψ(d), φ(d) and MAX(ψ(d)−1, φ(d)). *)

val bounds : int -> bounds
(** All three tolerance figures for d in one call. *)

val psi_lower_bound_corollary : int -> int
(** Corollary 3.1's closed form 2^{−k}·∏(pᵢᵉⁱ − 1) rounded up — a lower
    bound on ψ(d) exposed for cross-checking. *)
