module G = Galois.Gf
module W = Debruijn.Word
module Seq_ = Debruijn.Sequence
module DG = Graphlib.Digraph
module C = Graphlib.Cycle

type t = {
  p : W.params;
  cycles : int array list;
  graph : DG.t;
}

(* Insert [node] into [cycle] right after position [i]. *)
let insert_after cycle i node =
  let k = Array.length cycle in
  Array.init (k + 1) (fun j ->
      if j <= i then cycle.(j) else if j = i + 1 then node else cycle.(j - 1))

let find_index cycle x =
  let rec go i =
    if i >= Array.length cycle then raise Not_found
    else if cycle.(i) = x then i
    else go (i + 1)
  in
  go 0

(* Fallback for the rare boundary cases where no p-edge is usable (the
   concrete one is d = 3, n = 2, where every primitive quadratic has
   a₀ = 1 and hence every p-edge's rerouting collides with a real
   De Bruijn edge).  Reroute, for each s, an arbitrary edge of s + C
   through sⁿ and test the resulting decomposition outright: note the
   valid solutions here are subtler than the thesis's — a rerouted edge
   may coincide with a B(d,n) edge that another cycle dropped, which
   both preserves disjointness and restores the UB adjacency.  The
   search is exhaustive and therefore gated to tiny graphs. *)
let generic_reroute (t : Shift_cycles.t) field =
  let p = t.Shift_cycles.p in
  let d = G.order field in
  if p.W.size > 16 then
    failwith "Mdb: no usable p-edge and graph too large for exhaustive fallback";
  let cycles = Array.init d (fun s -> Seq_.nodes_of_sequence p (Shift_cycles.shifted t s)) in
  let len = Array.length cycles.(0) in
  let const s = W.constant p s in
  let build choice = List.mapi (fun s i -> insert_after cycles.(s) i (const s)) choice in
  let ub = Debruijn.Graph.ub p in
  let check cs =
    let bld = DG.Builder.create p.W.size in
    List.iter
      (fun cyc -> List.iter (fun (u, v) -> DG.Builder.add_edge bld u v) (C.edges_of_cycle cyc))
      cs;
    let g = DG.Builder.build bld in
    C.pairwise_edge_disjoint cs
    && List.for_all (fun cyc -> C.is_hamiltonian g cyc) cs
    &&
    let ok = ref true in
    DG.iter_edges
      (fun u v -> if u < v && not (DG.mem_edge g u v || DG.mem_edge g v u) then ok := false)
      ub;
    !ok
  in
  let rec search s acc =
    if s = d then
      let cs = build (List.rev acc) in
      if check cs then Some cs else None
    else
      List.find_map (fun i -> search (s + 1) (i :: acc)) (List.init len Fun.id)
  in
  match search 0 [] with
  | None -> failwith "Mdb: no Hamiltonian decomposition found"
  | Some cs -> (p, cs)

let build_odd_prime_power ~d ~n =
  let field = G.create d in
  (* Find a maximal cycle C carrying a usable p-edge (αβ̃ → βα̃): a
     length-(n+1) alternating window.  For n = 2 the rerouted edges
     (α+s)(β+s) → ss and ss → (β+s)(α+s) are genuine De Bruijn edges
     exactly when β = 0 (independent of s), which would collide with
     another H_{s'}; insist on β ≠ 0 there — any p-edge works for
     n ≥ 3.  Different primitive polynomials distribute the p-edges
     differently, so search over all of them. *)
  (* A p-edge found with pattern (α', β') on s₀ + C corresponds to the
     base pattern (α' − s₀, β' − s₀) on C; the rerouted edges of every
     H_s avoid B(d,n) iff the base β = β' − s₀ is nonzero (only needed
     for n = 2), so scan every shifted cycle, not just C. *)
  let try_poly poly =
    let t = Shift_cycles.make_with_poly ~d ~n poly in
    let p = t.Shift_cycles.p in
    let scan_shift s0 =
      let nodes = Seq_.nodes_of_sequence p (Shift_cycles.shifted t s0) in
      let len = Array.length nodes in
      let is_p_edge_start i =
        let u = nodes.(i) in
        let alpha = W.digit p u 1 and beta = W.digit p u 2 in
        alpha <> beta
        && (n > 2 || G.sub field beta s0 <> 0)
        && u = W.alternating p alpha beta
        && nodes.((i + 1) mod len) = W.alternating p beta alpha
      in
      let rec find i =
        if i >= len then None else if is_p_edge_start i then Some i else find (i + 1)
      in
      Option.map
        (fun i ->
          let u = nodes.(i) in
          ( G.sub field (W.digit p u 1) s0,
            G.sub field (W.digit p u 2) s0 ))
        (find 0)
    in
    Option.map (fun ab -> (t, ab)) (List.find_map scan_shift (G.elements field))
  in
  let primitives =
    List.filter (Galois.Gf_poly.is_primitive field) (Galois.Gf_poly.all_monic field n)
  in
  match List.find_map try_poly primitives with
  | None ->
      (* Tiny boundary cases (e.g. d = 3, n = 2, where every primitive
         quadratic has a₀ = 1 and hence every p-edge collides): fall
         back to a backtracking search over generalized reroutings —
         any edge of s + C may be routed through sⁿ as long as the two
         new edges are not De Bruijn edges and don't collide across
         shifts. *)
      generic_reroute (Shift_cycles.make ~d ~n) field
  | Some (t, (alpha, beta)) ->
      let p = t.Shift_cycles.p in
      let cycles =
        List.map
          (fun s ->
            let nodes = Seq_.nodes_of_sequence p (Shift_cycles.shifted t s) in
            let a' = G.add field alpha s and b' = G.add field beta s in
            let u = W.alternating p a' b' in
            let i = find_index nodes u in
            (* Replace the p-edge u → v by u → sⁿ → v. *)
            insert_after nodes i (W.constant p s))
          (G.elements field)
      in
      (p, cycles)

let build_binary ~n =
  let t = Shift_cycles.make ~d:2 ~n in
  let p = t.Shift_cycles.p in
  let c0 = Seq_.nodes_of_sequence p (Lazy.force t.Shift_cycles.base) in
  let c1 = Seq_.nodes_of_sequence p (Shift_cycles.shifted t 1) in
  let zero = W.constant p 0 and one = W.constant p 1 in
  (* H₀: insert 0ⁿ between 10ⁿ⁻¹ and 0ⁿ⁻¹1 on C. *)
  let ten = W.cons p 1 (W.prefix p zero) in
  let h0 = insert_after c0 (find_index c0 ten) zero in
  (* H₁: delete 0ⁿ from 1+C, then reroute its alternating p-edge
     through 0ⁿ and 1ⁿ. *)
  let without_zero =
    let i = find_index c1 zero in
    Array.init (Array.length c1 - 1) (fun j -> if j < i then c1.(j) else c1.(j + 1))
  in
  (* The p-edge of 1+C is whichever of (01̃ → 10̃), (10̃ → 01̃) it holds. *)
  let e01 = W.alternating p 0 1 and e10 = W.alternating p 1 0 in
  let len = Array.length without_zero in
  let idx_of u v =
    let i = find_index without_zero u in
    if without_zero.((i + 1) mod len) = v then Some i else None
  in
  let i, u2 =
    match (idx_of e01 e10, idx_of e10 e01) with
    | Some i, _ -> (i, e10)
    | None, Some i -> (i, e01)
    | None, None -> failwith "Mdb: no alternating p-edge in 1+C"
  in
  ignore u2;
  let h1 = insert_after (insert_after without_zero i zero) (i + 1) one in
  (p, [ h0; h1 ])

let build ~d ~n =
  if n < 2 then invalid_arg "Mdb.build: n must be >= 2";
  if d = 2 && n < 3 then
    (* The edge 1ⁿ → 10̃ added by the binary construction is a real
       De Bruijn edge when n = 2, so the decomposition needs n ≥ 3. *)
    invalid_arg "Mdb.build: the binary construction requires n >= 3";
  let p, cycles =
    if d = 2 then build_binary ~n
    else
      match Numtheory.is_prime_power d with
      | Some (pr, _) when pr <> 2 -> build_odd_prime_power ~d ~n
      | _ -> invalid_arg "Mdb.build: d must be 2 or an odd prime power"
  in
  let bld = DG.Builder.create p.W.size in
  List.iter
    (fun cyc -> List.iter (fun (u, v) -> DG.Builder.add_edge bld u v) (C.edges_of_cycle cyc))
    cycles;
  { p; cycles; graph = DG.Builder.build bld }

let contains_ub t =
  let ub = Debruijn.Graph.ub t.p in
  let ok = ref true in
  DG.iter_edges
    (fun u v ->
      if u < v && not (DG.mem_edge t.graph u v || DG.mem_edge t.graph v u) then ok := false)
    ub;
  !ok

let verify t =
  List.for_all (fun c -> C.is_hamiltonian t.graph c) t.cycles
  && C.pairwise_edge_disjoint t.cycles
  && (let n = DG.n_nodes t.graph in
      let rec regular v =
        v >= n
        || (DG.out_degree t.graph v = t.p.W.d
           && DG.in_degree t.graph v = t.p.W.d
           && regular (v + 1))
      in
      regular 0)
  && contains_ub t

let new_edge_count t =
  let b = Debruijn.Graph.b t.p in
  DG.fold_edges (fun acc u v -> if DG.mem_edge b u v then acc else acc + 1) 0 t.graph

(* MB cycles contain the extra nodes sⁿ routed mid-cycle, so they don't
   admit the LFSR successor form; expose them through the table-backed
   stream adapter instead. *)
let stream_cycles t = List.map (Stream.of_cycle t.p) t.cycles
