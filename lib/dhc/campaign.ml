module W = Debruijn.Word

type point = {
  f : int;
  trials : int;
  successes : int;
  via_construction : int;
  via_disjoint : int;
  masked_fallbacks : int;
  mean_ring_length : float;
  wall_s : float;
  minor_words_per_trial : float;
  major_words_per_trial : float;
}

(* Per-trial generators are substreams of (campaign seed, f, trial)
   alone — Util.Rng.split, the seeding scheme shared with
   Ffc.Campaign — so the per-trial fault samples, and hence every
   statistic except wall_s, are bit-identical at any ?domains. *)
let trial_rng ~seed ~f ~trial = Util.Rng.split seed ((1_000_003 * f) + trial)

(* Node masking materializes B* over all dⁿ nodes; past this size the
   fallback costs more than the datum is worth, so failures just score
   ring length 0. *)
let masking_size_limit = 65536

let run_trial ~d ~n ~f rng =
  let p = W.params ~d ~n in
  let codes = Util.Rng.sample_distinct rng ~k:f ~bound:(p.W.size * p.W.d) in
  let faults = List.map (W.edge_of_code p) codes in
  match Edge_fault.hc_avoiding_stream ~d ~n ~faults with
  | Some st -> (`Construction, st.Stream.length)
  | None -> (
      match Edge_fault.hc_avoiding_via_disjoint_stream ~d ~n ~faults with
      | Some st -> (`Disjoint, st.Stream.length)
      | None ->
          if p.W.size <= masking_size_limit then
            match Edge_fault.via_node_masking ~d ~n ~faults with
            | Some c -> (`Masked, Array.length c)
            | None -> (`Failed, 0)
          else (`Failed, 0))

let map_trials ~domains ~trials f =
  if domains <= 1 then Array.init trials f
  else begin
    let out = Array.make trials (`Failed, 0) in
    let workers =
      List.init (min domains trials) (fun w ->
          Domain.spawn (fun () ->
              let i = ref w in
              while !i < trials do
                out.(!i) <- f !i;
                i := !i + domains
              done))
    in
    List.iter Domain.join workers;
    out
  end

let point ~domains ~trials ~seed ~d ~n f =
  let t0 = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) in
  let minor = Array.make trials 0. in
  let major = Array.make trials 0. in
  (* GC counters are read around each trial, in the trial's own domain
     (Gc.counters is domain-local; map_trials runs a trial wholly in
     one worker). *)
  let outcomes =
    map_trials ~domains ~trials (fun trial ->
        let m0, _, j0 = Gc.counters () in
        let outcome = run_trial ~d ~n ~f (trial_rng ~seed ~f ~trial) in
        let m1, _, j1 = Gc.counters () in
        minor.(trial) <- m1 -. m0;
        major.(trial) <- j1 -. j0;
        outcome)
  in
  let wall_s = (Unix.gettimeofday () [@lint.allow "R1 wall_s is a reported statistic, never branched on"]) -. t0 in
  let count o0 =
    Array.fold_left (fun acc (o, _) -> if o = o0 then acc + 1 else acc) 0 outcomes
  in
  let via_construction = count `Construction in
  let via_disjoint = count `Disjoint in
  let total_len = Array.fold_left (fun acc (_, l) -> acc + l) 0 outcomes in
  {
    f;
    trials;
    successes = via_construction + via_disjoint;
    via_construction;
    via_disjoint;
    masked_fallbacks = count `Masked;
    mean_ring_length = float_of_int total_len /. float_of_int trials;
    wall_s;
    (* Steady-state allocation: the minimum across trials, for the same
       reason as Ffc.Campaign — the runtime occasionally books a
       nondeterministic GC-internal burst into one trial's window, and
       the min is the stable "one more trial" figure. *)
    minor_words_per_trial = Array.fold_left min minor.(0) minor;
    major_words_per_trial = Array.fold_left min major.(0) major;
  }

let run ?(domains = 1) ?(trials = 20) ?(seed = 0x5eed) ?fmax ~d ~n () =
  if trials < 1 then invalid_arg "Campaign.run: trials < 1";
  let p = W.params ~d ~n in
  let fmax =
    match fmax with
    | Some f when f < 0 -> invalid_arg "Campaign.run: fmax < 0"
    | Some f -> min f (p.W.size * p.W.d)
    | None -> min ((2 * Psi.max_tolerance d) + 2) (p.W.size * p.W.d)
  in
  List.init (fmax + 1) (fun f -> point ~domains ~trials ~seed ~d ~n f)
