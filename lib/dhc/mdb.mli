(** The modified De Bruijn graph MB(d,n) and its Hamiltonian
    decomposition (§3.2.3).

    B(d,n) itself cannot be decomposed into HCs (loops, and at best d−1
    disjoint HCs exist).  MB(d,n) reroutes one parallel edge (p-edge)
    per shifted cycle through the missing constant node so that the d
    cycles {H_s} become Hamiltonian and partition all dⁿ·d edges:

    - d an odd prime power: pick a p-edge E = (αβ̃, βα̃) on C; in s + C
      replace E+s by the two edges ((α+s)(β+s)̃ → sⁿ) and
      (sⁿ → (β+s)(α+s)̃).
    - d = 2: insert 0ⁿ into C between 10ⁿ⁻¹ and 0ⁿ⁻¹1; delete 0ⁿ from
      1+C and reroute its alternating p-edge through 0ⁿ and 1ⁿ
      (Example 3.6).

    The resulting multigraph is d-in d-out regular and its undirected
    version contains UB(d,n). *)

type t = {
  p : Debruijn.Word.params;
  cycles : int array list;  (** d Hamiltonian node-cycles covering every edge *)
  graph : Graphlib.Digraph.t;  (** MB(d,n): the union of the cycles' edges *)
}

val build : d:int -> n:int -> t
(** Requires d = 2 with n ≥ 3, or an odd prime power d with n ≥ 2 (for
    n = 2 a p-edge with β ≠ 0 is selected so the rerouted edges stay
    outside B(d,2); for d = 2, n = 2 the construction is impossible
    because 1ⁿ → 10̃ is a real De Bruijn edge).
    @raise Invalid_argument otherwise. *)

val verify : t -> bool
(** All cycles Hamiltonian in [graph], pairwise edge-disjoint, the graph
    d-regular (in and out), and UMB ⊇ UB. *)

val contains_ub : t -> bool
(** Every UB(d,n) adjacency appears (in some orientation) in MB. *)

val new_edge_count : t -> int
(** Number of MB edges that are not B(d,n) edges. *)

val stream_cycles : t -> Stream.t list
(** The decomposition's cycles as {!Stream.t}s (table-backed: MB cycles
    reroute through the constant nodes, so they have no LFSR successor
    form). *)
