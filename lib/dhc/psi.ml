module N = Numtheory

let psi_prime_power p e =
  let d = N.pow p e in
  if p = 2 then d - 1
  else if (p - 1) / 2 mod 2 = 0 && Strategies.condition_b_holds ~p then (d + 1) / 2
  else (d - 1) / 2

let psi d =
  if d < 2 then invalid_arg "Psi.psi: d < 2";
  List.fold_left (fun acc (p, e) -> acc * psi_prime_power p e) 1 (N.factorize d)

let phi_bound d =
  if d < 2 then invalid_arg "Psi.phi_bound: d < 2";
  let fs = N.factorize d in
  List.fold_left (fun acc (p, e) -> acc + N.pow p e) 0 fs - (2 * List.length fs)

let max_tolerance d = max (psi d - 1) (phi_bound d)

type bounds = { psi : int; phi : int; max_ : int }

let bounds d =
  let psi = psi d and phi = phi_bound d in
  { psi; phi; max_ = max (psi - 1) phi }

let psi_lower_bound_corollary d =
  let fs = N.factorize d in
  let k = List.length fs in
  let prod = List.fold_left (fun acc (p, e) -> acc * (N.pow p e - 1)) 1 fs in
  (* ⌈prod / 2^k⌉ *)
  (prod + (1 lsl k) - 1) / (1 lsl k)
