(** Chapter-3 cycles as streams: a cycle of B(d,n) represented by its
    successor function instead of a dⁿ-length array.

    Every construction of §3.1–§3.3 — the maximal cycles s + C, their
    Hamiltonian extensions H_s, and Rees products across coprime factors
    — has a successor that is pure word/GF(d) register arithmetic, so a
    cycle is an O(n)-memory value: walking it costs O(n) table lookups
    per step and allocates nothing.  Materializing ψ(d) disjoint HCs of
    B(2,22) as arrays needs gigabytes; as streams they are a handful of
    closures. *)

type t = {
  p : Debruijn.Word.params;
  start : int;  (** a node on the cycle; walks and [to_nodes] begin here *)
  length : int;  (** number of nodes on the cycle (dⁿ − 1 or dⁿ) *)
  succ : int -> int;  (** the successor function; total on [0, dⁿ) *)
}

val of_shift : Shift_cycles.t -> int -> t
(** s + C as a stream (length dⁿ − 1, omits sⁿ); node order matches
    [Shift_cycles.shifted] under the default LFSR seed. *)

val hamiltonize : Shift_cycles.t -> s:int -> k:int -> t
(** H_s with replacement cycle k ≠ s, as a successor transformer over
    {!of_shift}: two overrides route exit → sⁿ → entry (Eq. 3.3).  Node
    order matches [Shift_cycles.hamiltonize].
    @raise Invalid_argument if k = s. *)

val product : s:int -> t:int -> t -> t -> t
(** The Rees product (A,B) (Lemma 3.6) as a successor transformer:
    project a B(st,n) node onto its base-s and base-t digit planes, step
    each factor, zip back.  Node order matches [Compose.product].
    @raise Invalid_argument unless gcd(s,t) = 1 and the factors are
    streams over B(s,n) and B(t,n). *)

val of_cycle : Debruijn.Word.params -> int array -> t
(** Adapt a materialized node cycle (successor via hashtable) — the
    bridge for constructions with no arithmetic successor, e.g. the
    [Mdb] fallback decompositions.
    @raise Invalid_argument on a repeated node, and the stream's [succ]
    raises on nodes off the cycle. *)

val iter : t -> (int -> unit) -> unit
(** Visit the [length] nodes from [start], allocation-free. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Fold over the [length] edges (u, succ u) from [start]. *)

val to_nodes : t -> int array
(** Materialize the node cycle (for tests and small instances). *)

val to_sequence : t -> int array
(** Materialize the digit sequence (first digit of each node) — the
    format of the seed Chapter-3 API. *)

val first_return : t -> max_steps:int -> int option
(** Steps until the walk first re-enters [start], if ≤ [max_steps] —
    O(1) memory.  In a functional graph this is exactly the length of
    the cycle through [start]. *)

val is_cycle : t -> bool
(** First return occurs at exactly [length] steps. *)

val is_hamiltonian : t -> bool
(** [is_cycle] and [length] = dⁿ: visits every node, O(1) memory. *)

val is_de_bruijn_walk : t -> bool
(** Every step is a De Bruijn edge (suffix/prefix arithmetic). *)

val avoids : t -> (int -> int -> bool) -> bool
(** [avoids t is_fault]: no edge of the walk satisfies [is_fault u v];
    stops at the first hit. *)

val contains_edge : t -> int -> int -> bool
(** For Hamiltonian streams: is u → v an edge of the cycle?  One [succ]
    probe — the O(1) survivor test of Proposition 3.4. *)

val edge_disjoint : t -> t -> bool
(** Pairwise edge-disjointness of two Hamiltonian streams by walking one
    and probing the other's successor — O(dⁿ·n) time, O(1) memory.
    @raise Invalid_argument if either stream is not full-length. *)
