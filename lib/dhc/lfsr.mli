(** Linear feedback shift registers over GF(d) and maximal cycles (§3.1).

    A sequence C with c_{n+i} = a_{n−1}c_{n−1+i} + … + a₀cᵢ over GF(d)
    and primitive characteristic polynomial
    p(x) = xⁿ − a_{n−1}x^{n−1} − … − a₀ has period dⁿ − 1 and visits
    every node of B(d,n) except 0ⁿ — a {e maximal cycle}. *)

type t = {
  field : Galois.Gf.t;
  n : int;
  charpoly : Galois.Gf_poly.t;  (** monic primitive, degree n *)
  coeffs : int array;  (** a₀ … a_{n−1}, field elements *)
  omega : int;  (** ω = a₀ + … + a_{n−1} *)
}

val of_poly : Galois.Gf.t -> Galois.Gf_poly.t -> t
(** Build from a given primitive polynomial.
    @raise Invalid_argument if the polynomial is not primitive. *)

val make : Galois.Gf.t -> n:int -> t
(** Use the least primitive polynomial of degree n over the field. *)

val next : t -> int array -> int -> int
(** [next t c i] computes c_{n+i} from the previous n entries
    [c.(i) … c.(i+n−1)]. *)

val maximal_cycle : ?init:int array -> t -> int array
(** The full period-(dⁿ−1) sequence; [init] gives the first n entries
    (nonzero; default 0,…,0,1).
    @raise Invalid_argument if [init] is all-zero or has wrong length. *)

val successor_fun : t -> shift:int -> int -> int
(** [successor_fun t ~shift] is the successor function of the cycle
    shift + C on B(d,n) node codes: x₁…xₙ ↦ x₂…xₙc with
    c = Σ aⱼxⱼ₊₁ + shift·(1 − ω) (Lemma 3.2).  The tap multiplications
    and field additions are pre-tabulated; partially apply it once per
    walk and each call is an O(n) loop of array lookups with no
    allocation. *)

val successor : t -> shift:int -> int -> int
(** One-off {!successor_fun} application (rebuilds the tables; use
    [successor_fun] in loops). *)

val satisfies_recurrence : t -> ?affine:int -> int array -> bool
(** Does the circular sequence satisfy
    c_{n+i} = Σ aⱼc_{j+i} + [affine] (cyclically)?  [affine] defaults
    to 0; Lemma 3.2 gives affine = s(1 − ω) for s + C. *)
