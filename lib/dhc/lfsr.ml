module G = Galois.Gf
module GP = Galois.Gf_poly

type t = {
  field : G.t;
  n : int;
  charpoly : GP.t;
  coeffs : int array;
  omega : int;
}

let of_poly field poly =
  if not (GP.is_primitive field poly) then
    invalid_arg "Lfsr.of_poly: polynomial is not primitive";
  let n = GP.degree poly in
  (* p(x) = xⁿ − a_{n−1}x^{n−1} − … − a₀, so aᵢ = −(coefficient of xⁱ). *)
  let coeffs = Array.init n (fun i -> G.neg field (GP.coeff poly i)) in
  let omega = G.sum field (Array.to_list coeffs) in
  { field; n; charpoly = poly; coeffs; omega }

let make field ~n = of_poly field (GP.find_primitive field n)

let next t c i =
  let f = t.field in
  let acc = ref 0 in
  for j = 0 to t.n - 1 do
    acc := G.add f !acc (G.mul f t.coeffs.(j) c.(i + j))
  done;
  !acc

let maximal_cycle ?init t =
  let d = G.order t.field in
  let period = Numtheory.pow d t.n - 1 in
  let init =
    match init with
    | None ->
        let a = Array.make t.n 0 in
        a.(t.n - 1) <- 1;
        a
    | Some a ->
        if Array.length a <> t.n then invalid_arg "Lfsr.maximal_cycle: init length";
        if Array.for_all (fun x -> x = 0) a then
          invalid_arg "Lfsr.maximal_cycle: init must be nonzero";
        a
  in
  let c = Array.make (period + t.n) 0 in
  Array.blit init 0 c 0 t.n;
  for i = 0 to period - 1 do
    c.(t.n + i) <- next t c i
  done;
  (* The tail wraps onto the head by maximality; return one period. *)
  Array.sub c 0 period

(* The recurrence as a function on node codes: the node x₁…xₙ of B(d,n)
   holding a length-n window of s + C is followed by x₂…xₙc where
   c = Σ aⱼxⱼ₊₁ + s(1 − ω).  Everything is integer/table arithmetic, so
   a walk of the whole cycle allocates nothing. *)
let successor_fun t ~shift =
  let f = t.field in
  let d = G.order f in
  let affine = G.mul f shift (G.sub f 1 t.omega) in
  let add = G.add_fun f in
  let rows = Array.map (G.mul_row f) t.coeffs in
  let n = t.n in
  let stride = Numtheory.pow d (n - 1) in
  fun x ->
    let acc = ref affine and y = ref x in
    for j = n - 1 downto 0 do
      acc := add !acc rows.(j).(!y mod d);
      y := !y / d
    done;
    (x mod stride * d) + !acc

let successor t ~shift x = successor_fun t ~shift x

let satisfies_recurrence t ?(affine = 0) c =
  let f = t.field in
  let k = Array.length c in
  let ok = ref (k > 0) in
  for i = 0 to k - 1 do
    let acc = ref affine in
    for j = 0 to t.n - 1 do
      acc := G.add f !acc (G.mul f t.coeffs.(j) c.((i + j) mod k))
    done;
    if c.((i + t.n) mod k) <> !acc then ok := false
  done;
  !ok
