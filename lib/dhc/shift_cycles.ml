module G = Galois.Gf
module W = Debruijn.Word
module Seq_ = Debruijn.Sequence

type t = {
  lfsr : Lfsr.t;
  p : W.params;
  base : int array Lazy.t;
}

let make_with_poly ~d ~n poly =
  if n < 2 then invalid_arg "Shift_cycles.make: n must be >= 2";
  let field = G.create d in
  let lfsr = Lfsr.of_poly field poly in
  if Galois.Gf_poly.degree poly <> n then
    invalid_arg "Shift_cycles.make_with_poly: degree mismatch";
  let p = W.params ~d ~n in
  { lfsr; p; base = lazy (Lfsr.maximal_cycle lfsr) }

let make ~d ~n =
  if n < 2 then invalid_arg "Shift_cycles.make: n must be >= 2";
  let field = G.create d in
  make_with_poly ~d ~n (Galois.Gf_poly.find_primitive field n)

let field t = t.lfsr.Lfsr.field
let shifted t s = Seq_.add_scalar (G.add (field t)) (Lazy.force t.base) s
let omega t = t.lfsr.Lfsr.omega
let a0 t = t.lfsr.Lfsr.coeffs.(0)

let alpha_hat t ~s ~k =
  let f = field t in
  let one_minus_omega = G.sub f 1 (omega t) in
  G.add f (G.mul f s (omega t)) (G.mul f k one_minus_omega)

let alpha_for t ~s ~alpha_hat =
  let f = field t in
  G.add f s (G.mul f (G.inv f (a0 t)) (G.sub f alpha_hat s))

(* The three nodes of the H_s insertion α sⁿ α̂ (Eq. 3.3): the exit node
   α s^{n−1}, the inserted constant sⁿ, and the entry node s^{n−1} α̂.
   Shared by the materializing [hamiltonize] path, the streaming engine,
   and the edge-fault survivor probes. *)
let insertion_nodes t ~s ~k =
  if s = k then invalid_arg "Shift_cycles.insertion_nodes: k must differ from s";
  let n = t.lfsr.Lfsr.n in
  let a_hat = alpha_hat t ~s ~k in
  let a = alpha_for t ~s ~alpha_hat:a_hat in
  let digits = Array.make n s in
  digits.(0) <- a;
  let exit_node = W.encode t.p digits in
  digits.(0) <- s;
  digits.(n - 1) <- a_hat;
  let entry_node = W.encode t.p digits in
  (exit_node, W.constant t.p s, entry_node)

let start_node t s =
  (* The node holding the first window of s + C under the default LFSR
     seed 0…01, i.e. position 0 of [shifted t s] as a node sequence. *)
  let f = field t in
  let n = t.lfsr.Lfsr.n in
  let digits = Array.make n s in
  digits.(n - 1) <- G.add f s 1;
  W.encode t.p digits

let owner_of_window t w =
  let f = field t in
  let n = t.lfsr.Lfsr.n in
  if Array.length w <> n + 1 then invalid_arg "Shift_cycles.owner_of_window: window length";
  let acc = ref 0 in
  for j = 0 to n - 1 do
    acc := G.add f !acc (G.mul f t.lfsr.Lfsr.coeffs.(j) w.(j))
  done;
  let one_minus_omega = G.sub f 1 (omega t) in
  (* 1 − ω ≠ 0: ω = 1 would make x = 1 a root of the primitive
     characteristic polynomial. *)
  G.mul f (G.sub f w.(n) !acc) (G.inv f one_minus_omega)

let owner_of_edge t (u, v) =
  let digits_u = W.decode t.p u in
  let w = Array.append digits_u [| W.last_digit t.p v |] in
  if W.suffix t.p u <> W.prefix t.p v then
    invalid_arg "Shift_cycles.owner_of_edge: not a De Bruijn edge";
  owner_of_window t w

let hamiltonize t ~s ~k =
  if s = k then invalid_arg "Shift_cycles.hamiltonize: k must differ from s";
  let seq = shifted t s in
  let len = Array.length seq in
  let n = t.lfsr.Lfsr.n in
  let a_hat = alpha_hat t ~s ~k in
  let a = alpha_for t ~s ~alpha_hat:a_hat in
  (* Locate the unique window α s^{n−1} α̂. *)
  let matches i =
    seq.(i) = a
    && seq.((i + n) mod len) = a_hat
    &&
    let rec run j = j >= n || (seq.((i + j) mod len) = s && run (j + 1)) in
    run 1
  in
  let rec find i =
    if i >= len then failwith "Shift_cycles.hamiltonize: window not found"
    else if matches i then i
    else find (i + 1)
  in
  let i = find 0 in
  let rot = Seq_.rotate seq i in
  Array.concat [ Array.sub rot 0 n; [| s |]; Array.sub rot n (len - n) ]

let hs_conflicts t ~f x y =
  let fl = field t in
  (* 2x − f(x), computed in the field. *)
  let refl z = G.sub fl (G.add fl z z) (f z) in
  y = f x || y = refl x || x = f y || x = refl y
