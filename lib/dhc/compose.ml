module N = Numtheory

(* Common n with |a| = s^n and |b| = t^n, or raise. *)
let infer_n ~s ~t a b =
  let rec log_base base x acc =
    if x = 1 then Some acc
    else if x mod base = 0 then log_base base (x / base) (acc + 1)
    else None
  in
  match (log_base s (Array.length a) 0, log_base t (Array.length b) 0) with
  | Some na, Some nb when na = nb && na >= 1 -> na
  | _ -> invalid_arg "Compose.product: lengths are not s^n and t^n for a common n"

let product ~s ~t a b =
  if N.gcd s t <> 1 then invalid_arg "Compose.product: s and t must be coprime";
  let n = infer_n ~s ~t a b in
  ignore n;
  let la = Array.length a and lb = Array.length b in
  let len = la * lb in
  Array.init len (fun i -> (a.(i mod la) * t) + b.(i mod lb))

let split_digit ~t v = (v / t, v mod t)

let rec disjoint_hamiltonian_cycles ~d ~n =
  match N.factorize d with
  | [] | [ _ ] -> Strategies.disjoint_hamiltonian_cycles ~d ~n
  | (p, e) :: _ ->
      (* Peel one prime power t = p^e off d = s·t and combine all pairs
         (Proposition 3.2). *)
      let t = N.pow p e in
      let s = d / t in
      let as_ = disjoint_hamiltonian_cycles ~d:s ~n in
      let bs = Strategies.disjoint_hamiltonian_cycles ~d:t ~n in
      List.concat_map (fun a -> List.map (fun b -> product ~s ~t a b) bs) as_

(* The same family as streams: identical recursion, so the i-th stream
   is the i-th materialized cycle with the same node order. *)
let rec disjoint_hamiltonian_streams ~d ~n =
  match N.factorize d with
  | [] | [ _ ] -> Strategies.disjoint_hamiltonian_streams ~d ~n
  | (p, e) :: _ ->
      let t = N.pow p e in
      let s = d / t in
      let as_ = disjoint_hamiltonian_streams ~d:s ~n in
      let bs = Strategies.disjoint_hamiltonian_streams ~d:t ~n in
      List.concat_map (fun a -> List.map (fun b -> Stream.product ~s ~t a b) bs) as_

(* Bounded enumeration: the guarantee of Propositions 3.1/3.2 is exactly
   ψ(d) members, so asking for more is a caller error, reported eagerly
   rather than by returning a short list the caller would mis-stripe
   over.  Building the family is O(ψ(d)) closures, so constructing it
   fully and slicing costs nothing measurable. *)
let disjoint_streams_upto ~d ~n ~k =
  let psi = Psi.psi d in
  if k < 1 || k > psi then
    invalid_arg
      (Fmt.str "Compose.disjoint_streams_upto: k = %d outside [1, psi(%d) = %d]"
         k d psi);
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | st :: rest -> st :: take (k - 1) rest
  in
  take k (disjoint_hamiltonian_streams ~d ~n)
