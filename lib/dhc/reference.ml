(* The seed Chapter-3 edge-fault engine, frozen verbatim as an
   executable specification: association-list fault scans, materialized
   dⁿ-length cycles, List.mem per edge.  The streaming [Edge_fault]
   engine is pinned against it by the qcheck suite (identical outputs on
   small d, n) and measured against it by `bench/main.exe -- dhc`. *)

module N = Numtheory
module W = Debruijn.Word

type fault = int * int

let validate_faults p faults =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= p.W.size || v < 0 || v >= p.W.size then
        invalid_arg "Edge_fault: fault node out of range";
      if W.suffix p u <> W.prefix p v then
        invalid_arg "Edge_fault: fault is not a De Bruijn edge")
    faults

let rec hc_avoiding ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  match N.factorize d with
  | [] -> invalid_arg "Edge_fault.hc_avoiding: d < 2"
  | [ _ ] -> prime_power_case ~d ~n ~faults
  | (pr, e) :: _ ->
      let t = N.pow pr e in
      let s = d / t in
      let p_s = W.params ~d:s ~n and p_t = W.params ~d:t ~n in
      (* Project a node of B(st,n) onto its B(s,n) / B(t,n) parts via
         the digit map v = a·t + b. *)
      let project q f node =
        W.encode q (Array.map f (W.decode p node))
      in
      let a_of (u, v) = (project p_s (fun x -> x / t) u, project p_s (fun x -> x / t) v) in
      let b_of (u, v) = (project p_t (fun x -> x mod t) u, project p_t (fun x -> x mod t) v) in
      (* Route up to φ(s) faults to the A side, the rest to B. *)
      let cap = Psi.phi_bound s in
      let rec split i = function
        | [] -> ([], [])
        | f :: rest ->
            let xs, ys = split (i + 1) rest in
            if i < cap then (f :: xs, ys) else (xs, f :: ys)
      in
      let fa, fb = split 0 faults in
      Option.bind (hc_avoiding ~d:s ~n ~faults:(List.map a_of fa)) (fun a ->
          Option.map
            (fun b -> Compose.product ~s ~t a b)
            (hc_avoiding ~d:t ~n ~faults:(List.map b_of fb)))

and prime_power_case ~d ~n ~faults =
  let t = Shift_cycles.make ~d ~n in
  let p = t.Shift_cycles.p in
  let owners = List.map (Shift_cycles.owner_of_edge t) faults in
  let is_fault e = List.mem e faults in
  let s_candidates =
    List.filter (fun s -> not (List.mem s owners)) (List.init d Fun.id)
  in
  let sn s = W.constant p s in
  let try_s s =
    let exit_node alpha =
      (* α s^{n−1} *)
      let digits = Array.make n s in
      digits.(0) <- alpha;
      W.encode p digits
    in
    let entry_node alpha_hat =
      (* s^{n−1} α̂ *)
      let digits = Array.make n s in
      digits.(n - 1) <- alpha_hat;
      W.encode p digits
    in
    let try_k k =
      if k = s then None
      else begin
        let a_hat = Shift_cycles.alpha_hat t ~s ~k in
        let a = Shift_cycles.alpha_for t ~s ~alpha_hat:a_hat in
        let e1 = (exit_node a, sn s) and e2 = (sn s, entry_node a_hat) in
        if is_fault e1 || is_fault e2 then None
        else Some (Shift_cycles.hamiltonize t ~s ~k)
      end
    in
    List.find_map try_k (List.init d Fun.id)
  in
  List.find_map try_s s_candidates

let hc_avoiding_via_disjoint ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  let hcs = Compose.disjoint_hamiltonian_cycles ~d ~n in
  let avoids seq =
    let cyc = Debruijn.Sequence.cycle_of_sequence p seq in
    Graphlib.Cycle.avoids_edges cyc (fun e -> List.mem e faults)
  in
  List.find_opt avoids hcs

let best_hc_avoiding ~d ~n ~faults =
  match hc_avoiding ~d ~n ~faults with
  | Some hc -> Some hc
  | None -> hc_avoiding_via_disjoint ~d ~n ~faults
