(** The family {s + C | s ∈ GF(d)} of edge-disjoint (dⁿ−1)-cycles and
    the Hamiltonian extensions H_s (§3.2.1).

    - Lemma 3.1: s + C is a cycle;
    - Lemma 3.2: it satisfies the affine recurrence with constant
      s(1 − ω);
    - Lemma 3.3: the d cycles are pairwise edge-disjoint (they partition
      the non-loop edges of B(d,n));
    - s + C omits exactly the node sⁿ, which can be inserted by
      replacing the (n+1)-window α s^{n−1} α̂ with α sⁿ α̂ where
      (Eq. 3.3) α̂ = a₀α + s(1 − a₀); picking the companion cycle
      k + C containing the new edge sⁿα̂ fixes α̂ = sω + k(1 − ω). *)

type t = {
  lfsr : Lfsr.t;
  p : Debruijn.Word.params;
  base : int array Lazy.t;
      (** the maximal cycle C — lazy so stream-only users (successor
          arithmetic) never pay the dⁿ materialization *)
}

val make : d:int -> n:int -> t
(** @raise Invalid_argument unless d is a prime power ≥ 2 and n ≥ 2. *)

val make_with_poly : d:int -> n:int -> Galois.Gf_poly.t -> t
(** Use a caller-supplied primitive polynomial of degree n (e.g. the
    thesis's Example 3.1 polynomial x² − x − 3 over GF(5)). *)

val shifted : t -> int -> int array
(** s + C as a sequence. *)

val omega : t -> int
val a0 : t -> int

val alpha_hat : t -> s:int -> k:int -> int
(** α̂ = sω + k(1 − ω): the digit following sⁿ in k + C. *)

val alpha_for : t -> s:int -> alpha_hat:int -> int
(** α = s + a₀^{-1}(α̂ − s), inverting Eq. 3.3. *)

val insertion_nodes : t -> s:int -> k:int -> int * int * int
(** [(exit, sⁿ, entry)] — the nodes α s^{n−1}, sⁿ, s^{n−1} α̂ of the H_s
    insertion with replacement cycle k (Eq. 3.3): H_s reroutes the
    s + C edge exit → entry as exit → sⁿ → entry.
    @raise Invalid_argument if k = s. *)

val start_node : t -> int -> int
(** The node at position 0 of [shifted t s] viewed as a node sequence
    (the default-seed window s…s(s+1)). *)

val owner_of_window : t -> int array -> int
(** [owner_of_window t w] for an (n+1)-digit window: the unique s with
    w appearing in s + C (assuming w is not a loop window sⁿ⁺¹);
    computed from the affine recurrence as
    s = (w_n − Σ aⱼwⱼ)·(1 − ω)^{-1}. *)

val owner_of_edge : t -> int * int -> int
(** Same, for an edge given as a node pair of B(d,n). *)

val hamiltonize : t -> s:int -> k:int -> int array
(** H_s with replacement cycle k ≠ s: the sequence of length dⁿ whose
    cycle is Hamiltonian in B(d,n); its two new edges α sⁿ and sⁿ α̂
    lie in k + C and (2s − k) + C respectively.
    @raise Invalid_argument if k = s. *)

val hs_conflicts : t -> f:(int -> int) -> int -> int -> bool
(** Lemma 3.4 predicate: do H_x and H_y (built with replacement
    function f) share an edge?  y ∈ {f(x), 2x − f(x)} ∨
    x ∈ {f(y), 2y − f(y)}. *)
