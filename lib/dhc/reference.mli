(** The seed Chapter-3 edge-fault engine, frozen as the oracle.

    Everything here is the pre-streaming implementation kept verbatim:
    cycles are materialized dⁿ-length arrays and every fault check is an
    association-list scan.  {!Edge_fault} (the streaming engine) must
    agree with it output-for-output on small instances — pinned by the
    qcheck suite in [test/test_dhc.ml] — and is benchmarked against it
    by `bench/main.exe -- dhc`. *)

type fault = int * int

val validate_faults : Debruijn.Word.params -> fault list -> unit

val hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** Proposition 3.3 construction, seed implementation (digit sequence of
    length dⁿ). *)

val hc_avoiding_via_disjoint : d:int -> n:int -> faults:fault list -> int array option
(** Proposition 3.4 ψ-route, seed implementation. *)

val best_hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** {!hc_avoiding} with {!hc_avoiding_via_disjoint} fallback. *)
