(** Strategies 1–3 (§3.2.1): choosing the replacement function f so that
    a large subset of {H_s} is pairwise edge-disjoint.

    For d = pᵉ:
    - {b Strategy 1} (p = 2): f(x) = 0 for x ≠ 0.  Since 2 = 0 in
      characteristic 2, H_x and H_y conflict only through 0, giving the
      d−1 disjoint HCs {H_s | s ≠ 0} — optimal.
    - {b Strategy 2} (2 = λ^A + λ^B in ℤ_p, A and B odd, λ a primitive
      root): f(x) = λ^A·x for x ≠ 0, f(0) = λ.  Conflicts stay inside
      cosets of J = ⟨λ⟩ and flip parity of the λ-exponent, so the even
      powers in each coset — (d−1)/2 cycles — are disjoint, and H₀ can
      be added when (p−1)/2 is even.
    - {b Strategy 3} (2 = λ^A, A odd): same shape without H₀.

    Lemma 3.5 guarantees one of the two odd-p conditions holds for any
    odd prime. *)

type choice =
  | S1  (** p = 2 *)
  | S2 of { lambda : int; a : int; b : int }  (** 2 = λ^a + λ^b, a b odd *)
  | S3 of { lambda : int; a : int }  (** 2 = λ^a, a odd *)

val choose : p:int -> choice
(** Select a strategy for the prime [p]: S1 for 2; otherwise prefer S2
    when it exists with (p−1)/2 even (so H₀ can join), searching over
    all primitive roots; S3 or S2 otherwise.
    @raise Invalid_argument if [p] is not prime. *)

val condition_b_holds : p:int -> bool
(** Does some primitive root λ of ℤ_p give 2 = λ^A + λ^B with odd A, B? *)

val replacement_function : Shift_cycles.t -> choice -> int -> int
(** The f of the chosen strategy, as a function on field elements
    (f(0) is λ for S2/S3 and unspecified-but-total 1 for S1, whose H₀
    is never used). *)

val selected_shifts : Galois.Gf.t -> choice -> int list
(** The set {s | H_s ∈ L} of shifts whose Hamiltonian cycles are
    pairwise disjoint: nonzero elements for S1; even-λ-power coset
    members (plus 0 when admissible) for S2/S3. *)

val disjoint_shift_pairs : d:int -> n:int -> Shift_cycles.t * (int * int) list
(** The shift-cycle family and the ψ(d) pairs (s, f(s)) that the chosen
    strategy makes pairwise disjoint — the shared core of the
    materializing and streaming constructions below. *)

val disjoint_hamiltonian_cycles : d:int -> n:int -> int array list
(** ψ(d)-many pairwise edge-disjoint Hamiltonian cycles of B(d,n), as
    sequences of length dⁿ — for prime-power d, n ≥ 2 (Proposition 3.1;
    use {!Compose} for general d). *)

val disjoint_hamiltonian_streams : d:int -> n:int -> Stream.t list
(** The same ψ(d) cycles as O(n)-memory streams, in the same order with
    the same node order. *)
