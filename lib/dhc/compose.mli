(** The Rees product of Hamiltonian cycles (Lemmas 3.6/3.7) and disjoint
    HCs for arbitrary d (Proposition 3.2).

    For gcd(s,t) = 1, HCs A of B(s,n) and B of B(t,n) combine into the
    HC (A,B) of B(st,n) whose i-th element is a_{i mod sⁿ}·t +
    b_{i mod tⁿ}; products are disjoint as soon as one factor pair is. *)

val product : s:int -> t:int -> int array -> int array -> int array
(** [product ~s ~t a b] — [a] must have length sⁿ and [b] length tⁿ for
    a common n, and gcd(s,t) = 1.
    @raise Invalid_argument otherwise. *)

val split_digit : t:int -> int -> int * int
(** [split_digit ~t v] = (v / t, v mod t): the inverse digit map used to
    project edges of B(st,n) to their factor edges. *)

val disjoint_hamiltonian_cycles : d:int -> n:int -> int array list
(** ψ(d) pairwise edge-disjoint HCs of B(d,n) for any d ≥ 2, n ≥ 2,
    built by composing the prime-power families over the factorization
    of d. *)

val disjoint_hamiltonian_streams : d:int -> n:int -> Stream.t list
(** The same ψ(d) cycles as O(n)-memory {!Stream.t}s (same order, same
    node order): materializing the family costs ψ(d)·dⁿ words, the
    streams a handful of closures each. *)

val disjoint_streams_upto : d:int -> n:int -> k:int -> Stream.t list
(** The first [k] members of {!disjoint_hamiltonian_streams} — the
    enumeration the multi-ring collective stripes over.  Every returned
    pair is edge-disjoint ({!Stream.edge_disjoint}); the family is
    guaranteed for exactly ψ(d) members, so the enumeration fails
    cleanly past it.
    @raise Invalid_argument unless 1 ≤ k ≤ ψ(d). *)
