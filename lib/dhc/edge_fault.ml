module N = Numtheory
module W = Debruijn.Word

type fault = int * int

let validate_faults p faults =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= p.W.size || v < 0 || v >= p.W.size then
        invalid_arg "Edge_fault: fault node out of range";
      if W.suffix p u <> W.prefix p v then
        invalid_arg "Edge_fault: fault is not a De Bruijn edge")
    faults

module Faults = struct
  type repr = Bits of Graphlib.Bitset.t | Table of (int, unit) Hashtbl.t

  type t = { p : W.params; count : int; repr : repr }

  (* Past 2^27 edge codes the dense bitset would cost > 16 MB even for a
     handful of faults; switch to a hashtable there. *)
  let bitset_code_limit = 1 lsl 27

  let make p faults =
    validate_faults p faults;
    let codes = List.map (fun (u, v) -> W.edge_code p u v) faults in
    let repr =
      if p.W.size * p.W.d <= bitset_code_limit then begin
        let b = Graphlib.Bitset.create (p.W.size * p.W.d) in
        List.iter (Graphlib.Bitset.add b) codes;
        Bits b
      end
      else begin
        let h = Hashtbl.create ((2 * List.length codes) + 1) in
        List.iter (fun c -> Hashtbl.replace h c ()) codes;
        Table h
      end
    in
    { p; count = List.length faults; repr }

  let count t = t.count

  let mem_code t c =
    match t.repr with
    | Bits b -> Graphlib.Bitset.mem b c
    | Table h -> Hashtbl.mem h c

  (* (u, v) must be a De Bruijn edge; its code is u·d + vₙ. *)
  let mem t u v = mem_code t ((u * t.p.W.d) + (v mod t.p.W.d))
end

(* ------------------------------------------------------------------ *)
(* Proposition 3.3, streaming: prime-power leaves pick a fault-free
   s + C by owner lookup and probe the two insertion edges in O(1);
   composite d recurses over the factorization with the Rees product as
   a successor transformer.  The search order (s ascending over
   non-owners, k ascending) is exactly [Reference]'s, so outputs are
   identical node-for-node. *)

let rec hc_avoiding_stream ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  match N.factorize d with
  | [] -> invalid_arg "Edge_fault.hc_avoiding: d < 2"
  | [ _ ] -> prime_power_stream ~d ~n ~faults
  | (pr, e) :: _ ->
      let t = N.pow pr e in
      let s = d / t in
      let p_s = W.params ~d:s ~n and p_t = W.params ~d:t ~n in
      (* Project a node of B(st,n) onto its B(s,n) / B(t,n) parts via
         the digit map v = a·t + b. *)
      let project q f node = W.encode q (Array.map f (W.decode p node)) in
      let a_of (u, v) = (project p_s (fun x -> x / t) u, project p_s (fun x -> x / t) v) in
      let b_of (u, v) = (project p_t (fun x -> x mod t) u, project p_t (fun x -> x mod t) v) in
      (* Route up to φ(s) faults to the A side, the rest to B. *)
      let cap = Psi.phi_bound s in
      let rec split i = function
        | [] -> ([], [])
        | f :: rest ->
            let xs, ys = split (i + 1) rest in
            if i < cap then (f :: xs, ys) else (xs, f :: ys)
      in
      let fa, fb = split 0 faults in
      Option.bind (hc_avoiding_stream ~d:s ~n ~faults:(List.map a_of fa)) (fun a ->
          Option.map
            (fun b -> Stream.product ~s ~t a b)
            (hc_avoiding_stream ~d:t ~n ~faults:(List.map b_of fb)))

and prime_power_stream ~d ~n ~faults =
  let t = Shift_cycles.make ~d ~n in
  let p = t.Shift_cycles.p in
  let fs = Faults.make p faults in
  (* A shifted cycle is usable iff it owns no fault: one O(n) owner
     computation per fault, then O(1) flag reads — no list scans. *)
  let owner_faulty = Array.make d false in
  List.iter (fun e -> owner_faulty.(Shift_cycles.owner_of_edge t e) <- true) faults;
  let try_s s =
    let rec try_k k =
      if k >= d then None
      else if k = s then try_k (k + 1)
      else
        let exit_node, sn, entry_node = Shift_cycles.insertion_nodes t ~s ~k in
        if Faults.mem fs exit_node sn || Faults.mem fs sn entry_node then try_k (k + 1)
        else Some (Stream.hamiltonize t ~s ~k)
    in
    try_k 0
  in
  let rec try_shift s =
    if s >= d then None
    else if owner_faulty.(s) then try_shift (s + 1)
    else match try_s s with Some st -> Some st | None -> try_shift (s + 1)
  in
  try_shift 0

let hc_avoiding_via_disjoint_stream ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  let streams = Compose.disjoint_hamiltonian_streams ~d ~n in
  (* Survivor selection by word arithmetic: a Hamiltonian stream carries
     the fault u → v iff succ u = v, so each candidate costs O(f·n)
     probes instead of a dⁿ walk. *)
  List.find_opt
    (fun st -> List.for_all (fun (u, v) -> not (Stream.contains_edge st u v)) faults)
    streams

let best_hc_avoiding_stream ~d ~n ~faults =
  match hc_avoiding_stream ~d ~n ~faults with
  | Some st -> Some st
  | None -> hc_avoiding_via_disjoint_stream ~d ~n ~faults

(* Every member of the ψ(d) family that avoids the whole fault set —
   the rings a striped collective can still drive.  Same O(f·n)-probe
   screening as [hc_avoiding_via_disjoint_stream], kept in family order
   so stripe indices are stable across fault sets. *)
let surviving_disjoint_streams ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  List.filter
    (fun st -> List.for_all (fun (u, v) -> not (Stream.contains_edge st u v)) faults)
    (Compose.disjoint_hamiltonian_streams ~d ~n)

(* ------------------------------------------------------------------ *)
(* Materializing wrappers — the seed API, same outputs as [Reference]
   (digit sequences of length dⁿ). *)

let hc_avoiding ~d ~n ~faults =
  Option.map Stream.to_sequence (hc_avoiding_stream ~d ~n ~faults)

let hc_avoiding_via_disjoint ~d ~n ~faults =
  Option.map Stream.to_sequence (hc_avoiding_via_disjoint_stream ~d ~n ~faults)

let best_hc_avoiding ~d ~n ~faults =
  Option.map Stream.to_sequence (best_hc_avoiding_stream ~d ~n ~faults)

let via_node_masking ~d ~n ~faults =
  let p = W.params ~d ~n in
  validate_faults p faults;
  let masked = List.sort_uniq Int.compare (List.concat_map (fun (u, v) -> [ u; v ]) faults) in
  Option.map (fun e -> e.Ffc.Embed.cycle) (Ffc.Embed.embed p ~faults:masked)

let worst_case_edge_faults ~d ~n f =
  if f < 0 || f > d - 1 then invalid_arg "Edge_fault.worst_case_edge_faults";
  let p = W.params ~d ~n in
  let zero = W.constant p 0 in
  List.init f (fun i ->
      let a = i + 1 in
      (W.cons p a (W.prefix p zero), zero))
