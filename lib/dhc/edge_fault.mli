(** Fault-free Hamiltonian cycles under edge failures (§3.3), streaming.

    Proposition 3.3 (constructive): B(d,n) admits an HC avoiding any
    f ≤ φ(d) = Σpᵢᵉⁱ − 2k faulty edges.
    - Prime-power d: the d cycles s + C are edge-disjoint, so some s + C
      is fault-free; of its d−1 insertion pairs {αᵢsⁿ, sⁿα̂ᵢ} a fault
      kills at most one, so some pair survives and H_s is fault-free.
    - Composite d = s·t (coprime): every edge of (A,B) projects to an
      edge of A and an edge of B; route each fault to one side, at most
      φ(s) to A and φ(t) to B, and recurse.

    Proposition 3.4 adds the alternative of picking a fault-free member
    of the ψ(d) disjoint HCs, tolerating ψ(d)−1 faults.

    This engine works over {!Stream.t} successor functions: the search
    touches only the f faults and O(d) insertion-edge probes, never a
    dⁿ array, so rings of million-edge networks fit in O(n) memory.
    Outputs are pinned node-for-node to the frozen seed implementation
    in {!Reference}. *)

type fault = int * int
(** A faulty edge as a node pair of B(d,n). *)

val validate_faults : Debruijn.Word.params -> fault list -> unit
(** @raise Invalid_argument if a fault has a node out of range or is not
    a De Bruijn edge. *)

(** Constant-time fault-set membership.

    Edges are keyed by {!Debruijn.Word.edge_code}: a dense
    {!Graphlib.Bitset} when the code space dⁿ·d is small enough
    (≤ 2²⁷), a hashtable beyond that — either way [mem] is O(1), not an
    O(f) association-list scan. *)
module Faults : sig
  type t

  val make : Debruijn.Word.params -> fault list -> t
  (** Validates the faults and builds the probe structure. *)

  val count : t -> int

  val mem : t -> int -> int -> bool
  (** [mem t u v] — (u, v) must be a De Bruijn edge. *)

  val mem_code : t -> int -> bool
  (** Membership by pre-computed {!Debruijn.Word.edge_code}. *)
end

(** {1 Streaming engine} *)

val hc_avoiding_stream : d:int -> n:int -> faults:fault list -> Stream.t option
(** The Proposition 3.3 construction as an O(n)-memory stream; [None] if
    the search fails (guaranteed to succeed for |faults| ≤ φ(d); may
    also succeed beyond).  Requires n ≥ 2.  Same search order — hence
    same answer — as {!Reference.hc_avoiding}. *)

val hc_avoiding_via_disjoint_stream : d:int -> n:int -> faults:fault list -> Stream.t option
(** Pick a fault-free member of the ψ(d) disjoint HC streams — handles
    up to ψ(d)−1 faults.  Each candidate is screened with O(1) successor
    probes per fault ({!Stream.contains_edge}), not a dⁿ walk. *)

val best_hc_avoiding_stream : d:int -> n:int -> faults:fault list -> Stream.t option
(** Try {!hc_avoiding_stream}, falling back to
    {!hc_avoiding_via_disjoint_stream} — realizes the MAX(ψ(d)−1, φ(d))
    bound of Proposition 3.4. *)

val surviving_disjoint_streams :
  d:int -> n:int -> faults:fault list -> Stream.t list
(** The members of the ψ(d) disjoint family ({!Compose.disjoint_streams_upto})
    avoiding every given fault, in family order — what the multi-ring
    striped collective runs over under link failures.  With f faults at
    least ψ(d) − f members survive (each fault kills at most one ring).
    Screening is O(ψ(d)·f·n) successor probes, never a dⁿ walk. *)

(** {1 Materializing wrappers (the seed API)} *)

val hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** {!hc_avoiding_stream} materialized to a digit sequence of length
    dⁿ. *)

val hc_avoiding_via_disjoint : d:int -> n:int -> faults:fault list -> int array option
(** {!hc_avoiding_via_disjoint_stream} materialized. *)

val best_hc_avoiding : d:int -> n:int -> faults:fault list -> int array option
(** {!best_hc_avoiding_stream} materialized. *)

val via_node_masking : d:int -> n:int -> faults:fault list -> int array option
(** The strawman the chapter opens with: declare every endpoint of a
    faulty link faulty and fall back to the Chapter 2 node-fault
    algorithm.  Always succeeds when anything survives, but needlessly
    drops live processors — the ring is not Hamiltonian.  Exposed for
    the ablation benchmark comparing it against {!hc_avoiding}. *)

val worst_case_edge_faults : d:int -> n:int -> int -> fault list
(** [worst_case_edge_faults ~d ~n f] gives f of the d−1 non-loop edges
    terminating at node 0ⁿ — removing all d−1 of them makes the graph
    non-Hamiltonian, so d−2 is the best possible tolerance. *)
