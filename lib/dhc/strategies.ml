module G = Galois.Gf
module N = Numtheory

type choice =
  | S1
  | S2 of { lambda : int; a : int; b : int }
  | S3 of { lambda : int; a : int }

let primitive_roots p =
  List.filter (fun g -> N.is_primitive_root g p) (List.init (p - 1) (fun i -> i + 1))

let find_s2 p =
  (* 2 = λ^A + λ^B with A, B odd, for some primitive root λ. *)
  let try_lambda lambda =
    let rec go a =
      if a > p - 2 then None
      else
        let rem = ((2 - N.pow_mod lambda a p) mod p + p) mod p in
        let next () = go (a + 2) in
        if rem = 0 then next ()
        else
          match N.discrete_log lambda rem p with
          | Some b when b mod 2 = 1 -> Some (S2 { lambda; a; b })
          | _ -> next ()
    in
    go 1
  in
  List.find_map try_lambda (primitive_roots p)

let find_s3 p =
  let try_lambda lambda =
    match N.discrete_log lambda 2 p with
    | Some a when a mod 2 = 1 -> Some (S3 { lambda; a })
    | _ -> None
  in
  List.find_map try_lambda (primitive_roots p)

let condition_b_holds ~p = Option.is_some (find_s2 p)

let choose ~p =
  if not (N.is_prime p) then invalid_arg "Strategies.choose: p not prime";
  if p = 2 then S1
  else
    match (find_s2 p, find_s3 p) with
    | Some s2, _ when (p - 1) / 2 mod 2 = 0 -> s2  (* H₀ can be added *)
    | _, Some s3 -> s3
    | Some s2, None -> s2
    | None, None -> assert false (* Lemma 3.5 *)

let replacement_function (t : Shift_cycles.t) choice x =
  let f = t.Shift_cycles.lfsr.Lfsr.field in
  match choice with
  | S1 -> if x = 0 then 1 else 0
  | S2 { lambda; a; _ } | S3 { lambda; a } ->
      if x = 0 then G.of_int f lambda
      else G.mul f (G.pow f (G.of_int f lambda) a) x

let selected_shifts field choice =
  match choice with
  | S1 -> G.nonzero field
  | S2 { lambda; _ } | S3 { lambda; _ } ->
      let d = G.order field in
      let p = match N.is_prime_power d with Some (p, _) -> p | None -> assert false in
      let lam = G.of_int field lambda in
      (* Partition GF(d)* into cosets of J = ⟨λ⟩ and keep the elements at
         even λ-exponents relative to the coset base.  The coset of 1
         must use base 1 so that λ and −λ (odd powers) stay excluded,
         which is what lets H₀ join in Strategy 2. *)
      let assigned = Hashtbl.create d in
      let shifts = ref [] in
      let process base =
        if not (Hashtbl.mem assigned base) then begin
          let x = ref base in
          for j = 0 to p - 2 do
            Hashtbl.replace assigned !x ();
            if j mod 2 = 0 then shifts := !x :: !shifts;
            x := G.mul field !x lam
          done
        end
      in
      process 1;
      List.iter process (G.nonzero field);
      let with_zero =
        match choice with
        | S2 _ when (p - 1) / 2 mod 2 = 0 -> 0 :: !shifts
        | _ -> !shifts
      in
      List.sort Int.compare with_zero

let disjoint_shift_pairs ~d ~n =
  let t = Shift_cycles.make ~d ~n in
  let field = t.Shift_cycles.lfsr.Lfsr.field in
  let p = match N.is_prime_power d with Some (p, _) -> p | None -> assert false in
  let choice = choose ~p in
  let f = replacement_function t choice in
  (t, List.map (fun s -> (s, f s)) (selected_shifts field choice))

let disjoint_hamiltonian_cycles ~d ~n =
  let t, pairs = disjoint_shift_pairs ~d ~n in
  List.map (fun (s, k) -> Shift_cycles.hamiltonize t ~s ~k) pairs

let disjoint_hamiltonian_streams ~d ~n =
  let t, pairs = disjoint_shift_pairs ~d ~n in
  List.map (fun (s, k) -> Stream.hamiltonize t ~s ~k) pairs
