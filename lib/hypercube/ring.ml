let target_length ~n ~f = (1 lsl n) - (2 * f)

(* ------------------------------------------------------------------ *)
(* Exhaustive base case: a simple cycle of length ≥ target avoiding the
   faults, by depth-first path extension.  Used only for n ≤ 4. *)

let brute n faults target =
  let size = 1 lsl n in
  let faulty = Array.make size false in
  List.iter (fun v -> faulty.(v) <- true) faults;
  let target = max target 4 in
  if target > size - List.length faults then None
  else begin
    let on_path = Array.make size false in
    let path = ref [] in
    let exception Found of int array in
    let rec extend v len start =
      on_path.(v) <- true;
      path := v :: !path;
      List.iter
        (fun w ->
          if (not faulty.(w)) && not on_path.(w) then extend w (len + 1) start
          else if w = start && len >= target then
            raise (Found (Array.of_list (List.rev !path))))
        (Cube.neighbors ~n v);
      on_path.(v) <- false;
      path := List.tl !path
    in
    try
      for start = 0 to size - 1 do
        if not faulty.(start) then extend start 1 start
      done;
      None
    with Found c -> Some c
  end

(* ------------------------------------------------------------------ *)
(* Merge two subcube cycles (given in full-cube codes, one per half of
   dimension i) along a matching pair of cross edges. *)

let splice c0 j seg =
  let k0 = Array.length c0 in
  Array.concat
    [ Array.sub c0 0 (j + 1); seg; Array.sub c0 (j + 1) (k0 - j - 1) ]

let merge i c0 c1 =
  let len1 = Array.length c1 in
  let pos = Hashtbl.create (2 * len1) in
  Array.iteri (fun idx v -> Hashtbl.replace pos v idx) c1;
  let bit = 1 lsl i in
  let k0 = Array.length c0 in
  let rec try_edge j =
    if j >= k0 then None
    else begin
      let u = c0.(j) and v = c0.((j + 1) mod k0) in
      match (Hashtbl.find_opt pos (u lxor bit), Hashtbl.find_opt pos (v lxor bit)) with
      | Some a, Some b when (a + 1) mod len1 = b ->
          (* u′ immediately precedes v′: walk c1 backwards from a. *)
          let seg = Array.init len1 (fun s -> c1.(((a - s) mod len1 + len1) mod len1)) in
          Some (splice c0 j seg)
      | Some a, Some b when (b + 1) mod len1 = a ->
          let seg = Array.init len1 (fun s -> c1.((a + s) mod len1)) in
          Some (splice c0 j seg)
      | _ -> try_edge (j + 1)
    end
  in
  try_edge 0

let compress i x = ((x lsr (i + 1)) lsl i) lor (x land ((1 lsl i) - 1))
let expand i b y = ((y lsr i) lsl (i + 1)) lor (b lsl i) lor (y land ((1 lsl i) - 1))

let rec go n faults =
  let f = List.length faults in
  if n < 2 then None
  else if f = 0 then Some (Cube.gray_cycle n)
  else if n <= 4 then brute n faults (target_length ~n ~f)
  else begin
    let split i =
      List.partition (fun x -> (x lsr i) land 1 = 0) faults
    in
    let dims =
      List.sort
        (fun i j ->
          let balance k =
            let a, b = split k in
            max (List.length a) (List.length b)
          in
          Int.compare (balance i) (balance j))
        (List.init n Fun.id)
    in
    List.find_map (fun i -> attempt n i (split i)) dims
  end

and attempt n i (f0, f1) =
  let lift b cycle = Array.map (expand i b) cycle in
  let sub_faults fs = List.map (compress i) fs in
  match (f0, f1) with
  | [], _ ->
      (* Clean half 0: embed the faulty half first, then route a Gray
         cycle of half 0 through the partners of one of its edges so the
         merge is guaranteed. *)
      Option.bind (go (n - 1) (sub_faults f1)) (fun c1 ->
          let c1 = lift 1 c1 in
          let x = compress i c1.(0) and y = compress i c1.(1) in
          let c0 = lift 0 (Cube.gray_cycle_through ~n:(n - 1) (x, y)) in
          merge i c0 c1)
  | _, [] ->
      Option.bind (go (n - 1) (sub_faults f0)) (fun c0 ->
          let c0 = lift 0 c0 in
          let x = compress i c0.(0) and y = compress i c0.(1) in
          let c1 = lift 1 (Cube.gray_cycle_through ~n:(n - 1) (x, y)) in
          merge i c0 c1)
  | _ ->
      Option.bind (go (n - 1) (sub_faults f0)) (fun c0 ->
          Option.bind (go (n - 1) (sub_faults f1)) (fun c1 ->
              merge i (lift 0 c0) (lift 1 c1)))

let embed ~n ~faults =
  let size = 1 lsl n in
  let faults = List.sort_uniq Int.compare faults in
  List.iter
    (fun v -> if v < 0 || v >= size then invalid_arg "Ring.embed: fault out of range")
    faults;
  go n faults

let verify ~n ~faults c =
  Graphlib.Cycle.is_cycle (Cube.graph n) c
  && Graphlib.Cycle.avoids_nodes c (fun v -> List.mem v faults)
