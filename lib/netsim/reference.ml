(* The seed (pre-worklist) simulator, kept verbatim as an executable
   specification: every round does a full O(n) scan, inboxes are linked
   lists sorted with polymorphic [compare], and quiescence detection
   re-scans all nodes.  The qcheck suite checks that {!Simulator.run}
   agrees with this on random protocols, and the bechamel benchmarks
   measure the worklist rewrite against it.

   Known seed quirks, deliberately preserved here (and fixed in
   {!Simulator}): the inbox sort compares [(src, payload)] pairs with
   polymorphic [compare] (raises on functional payloads); the
   [max_rounds] guard admits [max_rounds + 1] executed rounds; [rounds]
   records the last active round index, not the executed-round count. *)

type 'm outgoing = int * 'm

type ('s, 'm) protocol = ('s, 'm) Simulator.protocol = {
  initial : int -> 's;
  step : round:int -> int -> 's -> (int * 'm) list -> 's * 'm outgoing list;
  wants_step : 's -> bool;
}

type 's result = {
  rounds : int;
  states : 's array;
  delivered : int;
  max_inflight : int;
  max_port_load : int;
}

let run ?max_rounds ~topology ~faulty proto =
  let n = Graphlib.Digraph.n_nodes topology in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 64) in
  let live v = not (faulty v) in
  let states = Array.init n proto.initial in
  (* inboxes.(v) holds (src, payload) pairs, most recent first. *)
  let inboxes : (int * 'm) list array = Array.make n [] in
  let delivered = ref 0 in
  let max_inflight = ref 0 in
  let max_port_load = ref 0 in
  let rounds = ref 0 in
  let finished = ref false in
  let round = ref 0 in
  while not !finished do
    if !round > max_rounds then raise (Simulator.Did_not_converge max_rounds);
    (* Decide who steps this round: round 0 everyone; later, nodes with
       mail or an explicit wish. *)
    let inflight = ref 0 in
    let next_inboxes = Array.make n [] in
    let any_activity = ref false in
    for v = 0 to n - 1 do
      if live v then begin
        let inbox = List.sort compare inboxes.(v) in
        let should_step = !round = 0 || inbox <> [] || proto.wants_step states.(v) in
        if should_step then begin
          any_activity := true;
          delivered := !delivered + List.length inbox;
          inflight := !inflight + List.length inbox;
          let state', sends = proto.step ~round:!round v states.(v) inbox in
          states.(v) <- state';
          max_port_load := max !max_port_load (List.length sends);
          List.iter
            (fun (dst, payload) ->
              if not (Graphlib.Digraph.mem_edge topology v dst) then
                raise (Simulator.Illegal_send { round = !round; src = v; dst });
              if live dst then next_inboxes.(dst) <- (v, payload) :: next_inboxes.(dst))
            sends
        end
      end
    done;
    max_inflight := max !max_inflight !inflight;
    Array.blit next_inboxes 0 inboxes 0 n;
    if !any_activity then rounds := !round;
    (* Stop when the network is quiescent: no mail in flight and nobody
       volunteers to step. *)
    let mail = Array.exists (fun l -> l <> []) inboxes in
    let eager = ref false in
    for v = 0 to n - 1 do
      if live v && proto.wants_step states.(v) then eager := true
    done;
    if (not mail) && not !eager then finished := true else incr round
  done;
  {
    rounds = !rounds;
    states;
    delivered = !delivered;
    max_inflight = !max_inflight;
    max_port_load = !max_port_load;
  }
