(** The seed full-scan simulator, preserved as an executable
    specification and benchmark baseline.

    This is the pre-worklist implementation of {!Simulator.run},
    verbatim: per-round O(n) scans over all nodes, linked-list inboxes
    sorted with polymorphic [compare] over [(src, payload)] pairs, and
    quiescence detection that re-scans the whole network.  It exists so
    that

    - the property tests can check the optimized {!Simulator.run}
      against the original semantics on random protocols, and
    - the bechamel benchmarks can measure the worklist rewrite against
      the seed hot path.

    Do not use it for new work; its round accounting and inbox ordering
    carry the seed's bugs (see {!Simulator} for the fixed semantics):
    [rounds] is the last {e active} round index (one less than the
    executed-round count whenever any node is live), the [max_rounds]
    guard admits [max_rounds + 1] executed rounds, and sorting inboxes
    by [(src, payload)] raises on payloads containing closures. *)

type 'm outgoing = int * 'm

type ('s, 'm) protocol = ('s, 'm) Simulator.protocol = {
  initial : int -> 's;
  step : round:int -> int -> 's -> (int * 'm) list -> 's * 'm outgoing list;
  wants_step : 's -> bool;
}

type 's result = {
  rounds : int;  (** last round index with activity (seed semantics) *)
  states : 's array;
  delivered : int;
  max_inflight : int;
  max_port_load : int;
}

val run :
  ?max_rounds:int ->
  topology:Graphlib.Digraph.t ->
  faulty:(int -> bool) ->
  ('s, 'm) protocol ->
  's result
(** Seed semantics; raises {!Simulator.Illegal_send} and
    {!Simulator.Did_not_converge} like the seed did. *)
