type 'm outgoing = int * 'm

type ('s, 'm) protocol = {
  initial : int -> 's;
  step : round:int -> int -> 's -> (int * 'm) list -> 's * 'm outgoing list;
  wants_step : 's -> bool;
}

type round_metrics = {
  active : int;
  delivered_in_round : int;
  sent : int;
  payload_words : int;
  wall_ns : float;
}

type 's result = {
  rounds : int;
  states : 's array;
  delivered : int;
  max_inflight : int;
  max_port_load : int;
  payload_total : int;
  trace : round_metrics array;
}

exception Illegal_send of { round : int; src : int; dst : int }
exception Did_not_converge of int

(* ------------------------------------------------------------------ *)
(* Flat, reusable per-node mailboxes: parallel (srcs, msgs) growth
   arrays.  [clear] only resets the length, so the backing store is
   reused round after round — no per-round allocation proportional to
   the network size, only to the traffic.  Cleared slots keep their old
   payload references until overwritten; peak retention is bounded by
   the peak per-node traffic of the run. *)

type 'm mailbox = {
  mutable srcs : int array;
  mutable msgs : 'm array;
  mutable mlen : int;
}

let mb_create () = { srcs = [||]; msgs = [||]; mlen = 0 }

let mb_push mb src msg =
  let cap = Array.length mb.srcs in
  if mb.mlen = cap then begin
    let cap' = if cap = 0 then 4 else 2 * cap in
    let srcs' = Array.make cap' src and msgs' = Array.make cap' msg in
    Array.blit mb.srcs 0 srcs' 0 mb.mlen;
    Array.blit mb.msgs 0 msgs' 0 mb.mlen;
    mb.srcs <- srcs';
    mb.msgs <- msgs'
  end;
  mb.srcs.(mb.mlen) <- src;
  mb.msgs.(mb.mlen) <- msg;
  mb.mlen <- mb.mlen + 1

let mb_clear mb = mb.mlen <- 0

(* Inbox as the protocol sees it: (src, payload) list in push order.
   Pushes happen in ascending-sender order (the worklist is sorted
   before stepping), so the list is sorted by source with same-source
   messages in send order — no comparison of payloads ever happens. *)
let mb_to_list mb =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((mb.srcs.(i), mb.msgs.(i)) :: acc)
  in
  build (mb.mlen - 1) []

(* A growable int vector for the round worklists. *)
type vec = { mutable a : int array; mutable vlen : int }

let vec_create () = { a = [||]; vlen = 0 }

let vec_push v x =
  let cap = Array.length v.a in
  if v.vlen = cap then begin
    let cap' = if cap = 0 then 16 else 2 * cap in
    let a' = Array.make cap' x in
    Array.blit v.a 0 a' 0 v.vlen;
    v.a <- a'
  end;
  v.a.(v.vlen) <- x;
  v.vlen <- v.vlen + 1

let int_cmp (x : int) (y : int) = if x < y then -1 else if x > y then 1 else 0

let vec_sort v =
  if v.vlen = Array.length v.a then Array.sort int_cmp v.a
  else begin
    let s = Array.sub v.a 0 v.vlen in
    Array.sort int_cmp s;
    Array.blit s 0 v.a 0 v.vlen
  end

(* ------------------------------------------------------------------ *)

(* Below this many active nodes a round is stepped sequentially even
   when [domains > 1]: spawning is ~20–50 µs per domain and would
   dominate small rounds. *)
let par_threshold = 1024

let now_ns () =
  (Unix.gettimeofday () [@lint.allow "R1 per-round wall-clock trace metrics: reported, never branched on"]) *. 1e9

(* Default payload sizing: every message counts as zero words, so
   protocols that predate the accounting keep reporting 0 — the metric
   is strictly opt-in. *)
let zero_payload _ = 0

let run ?max_rounds ?(domains = 1) ?(payload_words = zero_payload) ~topology
    ~faulty proto =
  let n = Graphlib.Digraph.n_nodes topology in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 64) in
  let domains = max 1 domains in
  let live v = not (faulty v) in
  let states = Array.init n proto.initial in
  let cur = ref (Array.init n (fun _ -> mb_create ())) in
  let nxt = ref (Array.init n (fun _ -> mb_create ())) in
  (* Worklist of the round being executed (sorted ascending before the
     step sweep) and the one being accumulated for the next round.
     [scheduled] marks membership in [nextw]; a node appears at most
     once however many messages it receives. *)
  let work = ref (vec_create ()) in
  let nextw = ref (vec_create ()) in
  let scheduled = Array.make n false in
  for v = 0 to n - 1 do
    if live v then vec_push !work v
  done;
  (* The initial worklist is built in node order. *)
  let work_sorted = ref true in
  let delivered = ref 0 in
  let max_inflight = ref 0 in
  let max_port_load = ref 0 in
  let payload_total = ref 0 in
  let trace = ref [] in
  let executed = ref 0 in
  let finished = ref false in
  while not !finished do
    if !work.vlen = 0 then finished := true
    else begin
      (* The guard runs before the round executes, so a run performs at
         most [max_rounds] rounds (indices 0 .. max_rounds − 1). *)
      if !executed >= max_rounds then raise (Did_not_converge max_rounds);
      let t0 = now_ns () in
      let r = !executed in
      if not !work_sorted then vec_sort !work;
      let wa = !work.a and k = !work.vlen in
      let cur_boxes = !cur and nxt_boxes = !nxt in
      let round_delivered = ref 0 and round_sent = ref 0 in
      let round_payload = ref 0 in
      (* Deliver the sends of node [v] (stepped this round) and schedule
         the recipients.  Called in ascending-sender order, which keeps
         every next-round inbox sorted by source. *)
      let apply v (state', sends) =
        let mb = cur_boxes.(v) in
        round_delivered := !round_delivered + mb.mlen;
        mb_clear mb;
        states.(v) <- state';
        let port = ref 0 in
        List.iter
          (fun (dst, payload) ->
            incr port;
            if not (Graphlib.Digraph.mem_edge topology v dst) then
              raise (Illegal_send { round = r; src = v; dst });
            if live dst then begin
              round_payload := !round_payload + payload_words payload;
              mb_push nxt_boxes.(dst) v payload;
              if not scheduled.(dst) then begin
                scheduled.(dst) <- true;
                vec_push !nextw dst
              end
            end)
          sends;
        round_sent := !round_sent + !port;
        max_port_load := max !max_port_load !port;
        if (not scheduled.(v)) && proto.wants_step states.(v) then begin
          scheduled.(v) <- true;
          vec_push !nextw v
        end
      in
      if domains > 1 && k >= par_threshold then begin
        (* Parallel stepping: [step] is a function of the round number
           and the node's own (state, inbox), all frozen at round
           start, so stepping distinct nodes commutes.  Sends are
           merged sequentially afterwards, in worklist order, to keep
           the execution bit-identical to the sequential mode. *)
        let results = Array.make k (Error Exit) in
        let chunk = (k + domains - 1) / domains in
        let worker lo hi =
          for i = lo to hi - 1 do
            let v = wa.(i) in
            results.(i) <-
              (try Ok (proto.step ~round:r v states.(v) (mb_to_list cur_boxes.(v)))
               with e -> Error e)
          done
        in
        let spawned =
          List.init (domains - 1) (fun j ->
              let lo = (j + 1) * chunk in
              let hi = min k (lo + chunk) in
              Domain.spawn (fun () -> if lo < hi then worker lo hi))
        in
        worker 0 (min k chunk);
        List.iter Domain.join spawned;
        for i = 0 to k - 1 do
          match results.(i) with
          | Ok res -> apply wa.(i) res
          | Error e -> raise e
        done
      end
      else
        for i = 0 to k - 1 do
          let v = wa.(i) in
          apply v (proto.step ~round:r v states.(v) (mb_to_list cur_boxes.(v)))
        done;
      delivered := !delivered + !round_delivered;
      max_inflight := max !max_inflight !round_delivered;
      payload_total := !payload_total + !round_payload;
      trace :=
        {
          active = k;
          delivered_in_round = !round_delivered;
          sent = !round_sent;
          payload_words = !round_payload;
          wall_ns = now_ns () -. t0;
        }
        :: !trace;
      (* Swap mailbox generations and worklists; every stepped node's
         current mailbox was cleared above, so [nxt] is all-empty after
         the swap.  Quiescence is the next worklist being empty — no
         O(n) rescan. *)
      let t = !cur in
      cur := !nxt;
      nxt := t;
      let tw = !work in
      tw.vlen <- 0;
      work := !nextw;
      nextw := tw;
      (* Clear the membership flags and establish sort order for the
         new worklist.  Dense rounds (≥ n/4 nodes scheduled) rebuild it
         by a linear scan of the flags — O(n), cache-friendly, and
         sorted for free — instead of paying the O(k log k) sort; on
         an all-active workload that is the difference between this
         engine and the seed's full scan. *)
      let w = !work in
      if 4 * w.vlen >= n then begin
        w.vlen <- 0;
        for v = 0 to n - 1 do
          if scheduled.(v) then begin
            scheduled.(v) <- false;
            vec_push w v
          end
        done;
        work_sorted := true
      end
      else begin
        for i = 0 to w.vlen - 1 do
          scheduled.(w.a.(i)) <- false
        done;
        work_sorted := false
      end;
      incr executed
    end
  done;
  {
    rounds = !executed;
    states;
    delivered = !delivered;
    max_inflight = !max_inflight;
    max_port_load = !max_port_load;
    payload_total = !payload_total;
    trace = Array.of_list (List.rev !trace);
  }
