(** A synchronous, round-based message-passing network simulator.

    This is the machine model the thesis assumes for its network-level
    algorithm: processors are graph nodes; in each communication step a
    node may send one message to {e each} of its neighbors (multi-port
    communication) and receives everything sent to it in the previous
    step; faulty processors are total failures — they neither compute
    nor route (their in- and out-edges are dead).

    The simulator charges one round per communication step, so a
    protocol's [rounds] statistic is directly comparable with the
    thesis's step bounds (Θ(n) for the FFC algorithm under f ≤ d−2
    faults, O(K + n) in general).

    Execution model:
    - Round 0: every live node runs [step] with an empty inbox (it may
      send its first messages).
    - Round r ≥ 1: messages sent in round r−1 are delivered; each live
      node with a nonempty inbox — plus any node that [wants_step] —
      runs [step].  Nodes that neither hold mail nor want to step are
      not visited at all (the engine keeps an active-node worklist, so
      a round costs O(active + messages), not O(network)).
    - The run ends when no messages are in flight and no node wants to
      step, or when [max_rounds] is hit.

    Round accounting (pinned by the unit tests):
    - [rounds] is the {e number of rounds executed}, i.e. the number of
      times the engine ran a step sweep.  A run whose last activity is
      in round index r reports [rounds = r + 1] (round indices are
      0-based).  A run over an all-faulty or empty network reports 0.
    - [max_rounds] is a hard budget on executed rounds: the run
      executes at most [max_rounds] rounds (indices
      [0 .. max_rounds − 1]) and raises {!Did_not_converge} the moment
      a [max_rounds + 1]-th round would start. *)

type 'm outgoing = int * 'm
(** (destination, payload).  The destination must be an out-neighbor of
    the sender in the topology, else the send is rejected. *)

type ('s, 'm) protocol = {
  initial : int -> 's;  (** initial state per node id *)
  step : round:int -> int -> 's -> (int * 'm) list -> 's * 'm outgoing list;
      (** [step ~round v state inbox] — inbox is [(source, payload)]
          sorted by source id; several messages from the same source
          arrive in their send order.  Payloads are never compared or
          hashed by the engine, so they may contain closures.  Returns
          the new state and sends. *)
  wants_step : 's -> bool;
      (** Request a step next round even with an empty inbox — used for
          spontaneous phase transitions (e.g. a timeout after n rounds). *)
}

type round_metrics = {
  active : int;  (** nodes stepped in this round *)
  delivered_in_round : int;  (** messages delivered in this round *)
  sent : int;  (** messages sent in this round (incl. drops to faulty nodes) *)
  payload_words : int;
      (** payload words accepted for delivery this round, as sized by
          the [?payload_words] argument of {!run}; 0 when the caller
          did not supply a sizing function *)
  wall_ns : float;  (** wall-clock nanoseconds spent executing the round *)
}

type 's result = {
  rounds : int;  (** number of rounds executed (see round accounting above) *)
  states : 's array;  (** final state of every node (faulty included, at their initial state) *)
  delivered : int;  (** total messages delivered over the run *)
  max_inflight : int;  (** peak messages delivered in a single round *)
  max_port_load : int;
      (** peak messages sent by one node in one round — 1 under
          single-port communication; the thesis's "factor of d" remark
          (§2.4) corresponds to a multi-port protocol with load d being
          serialized over d single-port rounds *)
  payload_total : int;
      (** sum of [payload_words] over the trace — the wire traffic of
          the run in words, the figure the collective benchmarks turn
          into bytes/step *)
  trace : round_metrics array;
      (** per-round metrics, [trace.(r)] for round index r;
          [Array.length trace = rounds] *)
}

exception Illegal_send of { round : int; src : int; dst : int }
(** Raised when a node tries to send to a non-neighbor. *)

exception Did_not_converge of int
(** Raised when the [max_rounds] budget is exhausted; carries the
    limit. *)

val run :
  ?max_rounds:int ->
  ?domains:int ->
  ?payload_words:('m -> int) ->
  topology:Graphlib.Digraph.t ->
  faulty:(int -> bool) ->
  ('s, 'm) protocol ->
  's result
(** Execute the protocol on all non-faulty nodes of the topology.
    [max_rounds] defaults to [4 * n_nodes + 64].  Messages sent to or
    from faulty nodes are silently dropped — receivers cannot tell a
    dead neighbor from a silent one, exactly as in the thesis's fault
    model.

    [domains] (default 1) enables parallel stepping on OCaml 5
    domains: rounds with at least ~1000 active nodes are split across
    [domains] domains, stepped concurrently, and their sends merged
    deterministically in node order — the result is bit-identical to
    the sequential mode.  Requires [step] to be safe to run
    concurrently for {e distinct} nodes (pure, or mutating only the
    stepped node's own state), which holds for every protocol in this
    repository.  Rounds below the threshold run sequentially, so small
    protocols pay no spawn overhead.

    [payload_words] sizes a message's payload in words for the traffic
    accounting ([round_metrics.payload_words] / [payload_total]); it is
    called once per message accepted for delivery, from the
    coordinating domain.  Defaults to [fun _ -> 0]. *)
