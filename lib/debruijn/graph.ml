let b p = Graphlib.Digraph.of_successors p.Word.size (Word.successors p)

let iter_succs = Word.iter_succs
let iter_preds = Word.iter_preds

let iter_ub_neighbors p x f =
  (* Successors first, then the predecessors that are not also
     successors — y is both iff prefix y = suffix x — with loops
     dropped; each UB neighbor is emitted exactly once. *)
  let s = Word.suffix p x in
  Word.iter_succs p x (fun y -> if y <> x then f y);
  Word.iter_preds p x (fun y -> if y <> x && Word.prefix p y <> s then f y)

let ub p =
  let n = p.Word.size in
  let bld = Graphlib.Digraph.Builder.create n in
  let seen = Hashtbl.create (4 * n) in
  for x = 0 to n - 1 do
    List.iter
      (fun y ->
        if x <> y then begin
          let key = (min x y, max x y) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            Graphlib.Digraph.Builder.add_edge bld x y;
            Graphlib.Digraph.Builder.add_edge bld y x
          end
        end)
      (Word.successors p x)
  done;
  Graphlib.Digraph.Builder.build bld

let degree_census g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graphlib.Digraph.n_nodes g - 1 do
    let d = Graphlib.Digraph.out_degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  List.sort
    (fun (d1, c1) (d2, c2) ->
      match Int.compare d1 d2 with 0 -> Int.compare c1 c2 | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let edge_as_higher_node p (x, y) =
  if not (List.mem y (Word.successors p x)) then invalid_arg "Graph.edge_as_higher_node: not an edge";
  (* x = x₁…xₙ, y = x₂…xₙa: the (n+1)-word is x followed by a. *)
  (x * p.Word.d) + Word.last_digit p y

let higher_node_as_edge p z =
  if z < 0 || z >= p.Word.size * p.Word.d then invalid_arg "Graph.higher_node_as_edge";
  (z / p.Word.d, z mod p.Word.size)

let cycle_to_lower_circuit p c =
  if p.Word.n < 2 then invalid_arg "Graph.cycle_to_lower_circuit: n < 2";
  let firsts = Array.to_list (Array.map (Word.prefix p) c) in
  match firsts with
  | [] -> []
  | first :: _ -> firsts @ [ first ]
