(** Necklaces: the rotation-closed cycles N(x) that partition B(d,n).

    N(x) is the cycle (x, π(x), π²(x), …) obtained by rotating the
    digits of a node; it is written [y] where y is the minimal node on
    it (minimal as a base-d numeral — the thesis's representative).
    Necklaces have length dividing n and partition the node set; they
    are the unit of failure for the FFC algorithm (a necklace is faulty
    iff it contains a faulty node). *)

val canonical : Word.params -> int -> int
(** The representative: the minimal rotation of the node. *)

val nodes : Word.params -> int -> int list
(** The nodes of N(x) in traversal order starting from the
    representative: [y; π(y); …; π^{t−1}(y)] where t = period. *)

val nodes_from : Word.params -> int -> int list
(** Same cycle but starting from the given node itself. *)

val iter_nodes_from : Word.params -> int -> (int -> unit) -> unit
(** Allocation-free {!nodes_from} — the walk the implicit FFC pipeline
    uses to index necklaces without listing them. *)

val length : Word.params -> int -> int
(** Cardinality of N(x) = period of x. *)

val same : Word.params -> int -> int -> bool
(** Do two nodes lie on the same necklace? *)

val successor : Word.params -> int -> int
(** The necklace successor of x, i.e. π(x) — the thesis's "wα follows
    αw". *)

val all_representatives : Word.params -> int list
(** All necklace representatives in increasing order. *)

val count : Word.params -> int
(** Number of necklaces (cross-checked against Chapter 4's formula in
    the tests). *)

val representatives_of_nodes : Word.params -> int list -> int list
(** Deduplicated sorted representatives of the necklaces meeting the
    given node list. *)

val mark_faulty_necklaces : Word.params -> int list -> bool array
(** [mark_faulty_necklaces p faults] flags every node lying on a
    necklace that contains a faulty node — the node set removed from
    B(d,n) to form B*. *)

val mark_faulty_necklaces_into : Word.params -> int list -> bool array -> unit
(** Allocation-free {!mark_faulty_necklaces} into a caller buffer of
    length dⁿ (cleared first) — same marked set. *)
