let window p c i =
  let k = Array.length c in
  if k = 0 then invalid_arg "Sequence.window: empty sequence";
  let rec go acc j =
    if j = p.Word.n then acc else go ((acc * p.Word.d) + c.((i + j) mod k)) (j + 1)
  in
  go 0 0

let nodes_of_sequence p c = Array.init (Array.length c) (window p c)

let is_cycle_sequence p c =
  Array.length c > 0
  &&
  let seen = Hashtbl.create (2 * Array.length c) in
  Array.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    (nodes_of_sequence p c)

let is_de_bruijn_sequence p c =
  Array.length c = p.Word.size && is_cycle_sequence p c

let cycle_of_sequence p c =
  if not (is_cycle_sequence p c) then invalid_arg "Sequence.cycle_of_sequence: repeated window";
  nodes_of_sequence p c

let sequence_of_cycle p cyc = Array.map (Word.first_digit p) cyc

let edge_windows p c =
  let k = Array.length c in
  let q = Word.params ~d:p.Word.d ~n:(p.Word.n + 1) in
  List.sort Int.compare (List.init k (fun i -> window q c i))

let edge_disjoint p a b =
  let wa = edge_windows p a in
  let tbl = Hashtbl.create (2 * List.length wa) in
  List.iter (fun w -> Hashtbl.replace tbl w ()) wa;
  not (List.exists (Hashtbl.mem tbl) (edge_windows p b))

let add_scalar add c s = Array.map (fun ci -> add ci s) c

let rotate c i =
  let k = Array.length c in
  if k = 0 then c
  else
    let i = ((i mod k) + k) mod k in
    Array.init k (fun j -> c.((i + j) mod k))

let equal_cyclically a b =
  Array.length a = Array.length b
  && (Array.length a = 0
     || List.exists (fun i -> rotate a i = b) (List.init (Array.length a) Fun.id))
