let canonical p x =
  let rec go best cur i =
    if i = 0 then best
    else
      let cur = Word.rotl p cur in
      go (min best cur) cur (i - 1)
  in
  go x x (p.Word.n - 1)

let length p x = Word.period p x

let nodes_from p x =
  let t = length p x in
  let rec go acc cur i = if i = t then List.rev acc else go (cur :: acc) (Word.rotl p cur) (i + 1) in
  go [] x 0

let nodes p x = nodes_from p (canonical p x)

let iter_nodes_from p x f =
  (* Rotate until the walk returns to [x]: that happens after exactly
     period-many steps, so each necklace node is visited once and
     nothing is allocated. *)
  let rec go cur =
    f cur;
    let nxt = Word.rotl p cur in
    if nxt <> x then go nxt
  in
  go x

let same p x y = canonical p x = canonical p y

let successor = Word.rotl

let all_representatives p =
  List.filter (fun x -> canonical p x = x) (Word.all p)

let count p = List.length (all_representatives p)

let representatives_of_nodes p xs =
  List.sort_uniq Int.compare (List.map (canonical p) xs)

let mark_faulty_necklaces_into p faults buf =
  if Array.length buf <> p.Word.size then
    invalid_arg "Necklace.mark_faulty_necklaces_into: buffer sized wrong";
  Array.fill buf 0 p.Word.size false;
  (* Walk each faulty node's rotation cycle directly — no canonical
     search, no lists: the marked set is the same either way. *)
  List.iter (fun x -> iter_nodes_from p x (fun y -> buf.(y) <- true)) faults

let mark_faulty_necklaces p faults =
  let faulty = Array.make p.Word.size false in
  mark_faulty_necklaces_into p faults faulty;
  faulty
