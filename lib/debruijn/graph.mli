(** The De Bruijn digraph B(d,n) and undirected UB(d,n) as {!Digraph.t}
    values on node codes, plus the line-graph correspondence
    B(d,n) = L(B(d,n−1)) used in the worst-case optimality argument of
    §2.5. *)

val b : Word.params -> Graphlib.Digraph.t
(** B(d,n): dⁿ nodes, edges x₁…xₙ → x₂…xₙa for every digit a (the d
    constant nodes carry loops). *)

val ub : Word.params -> Graphlib.Digraph.t
(** UB(d,n): loops deleted, orientation removed, parallel edges merged.
    Represented as a symmetric digraph with one edge per direction. *)

val iter_succs : Word.params -> int -> (int -> unit) -> unit
(** Arithmetic edge iterators — B(d,n)/UB(d,n) as implicit topologies
    for [Graphlib.Itopo], no graph built.  [iter_succs] and
    [iter_preds] are {!Word.iter_succs}/{!Word.iter_preds} re-exported
    under the graph-flavored name. *)

val iter_preds : Word.params -> int -> (int -> unit) -> unit

val iter_ub_neighbors : Word.params -> int -> (int -> unit) -> unit
(** The UB(d,n) neighbors of a node, each exactly once, loops dropped
    (successors in digit order, then non-successor predecessors). *)

val degree_census : Graphlib.Digraph.t -> (int * int) list
(** Sorted [(degree, how_many)] pairs of out-degrees — for UB this
    checks the [PR82] census: d nodes of degree 2d−2, d(d−1) of degree
    2d−1 and dⁿ − d² of degree 2d. *)

val edge_as_higher_node : Word.params -> int * int -> int
(** The line-graph correspondence: the edge x₁…x_{n} → x₂…x_{n}a of
    B(d,n) is the node x₁…xₙa of B(d,n+1).  The argument [params] are
    those of B(d,n); the result is a node code of B(d,n+1). *)

val higher_node_as_edge : Word.params -> int -> int * int
(** Inverse direction: a node x₁…x_{n+1} of B(d,n+1) (params again of
    B(d,n)) is the edge x₁…xₙ → x₂…x_{n+1} of B(d,n). *)

val cycle_to_lower_circuit : Word.params -> int array -> int list
(** A cycle in B(d,n) (params of B(d,n)) maps to the closed circuit in
    B(d,n−1) whose node sequence is the (n−1)-prefixes; requires n ≥ 2.
    The result repeats its first node at the end. *)
