(** d-ary words of length n, encoded as integers.

    A node x₁x₂…xₙ of B(d,n) (x₁ the most significant digit, matching
    the thesis's ordering of n-tuples as base-d numbers) is encoded as
    the integer Σ xᵢ·d^(n−i).  All functions take the parameters [d]
    (alphabet size ≥ 2) and [n] (word length ≥ 1) explicitly. *)

type params = { d : int; n : int; size : int (** dⁿ *) }

val params : d:int -> n:int -> params
(** @raise Invalid_argument unless d ≥ 2, n ≥ 1 and dⁿ fits an int. *)

val encode : params -> int array -> int
(** Digits x₁…xₙ (each in [0,d)) to the integer code. *)

val decode : params -> int -> int array
(** Integer code to digit array of length n. *)

val digit : params -> int -> int -> int
(** [digit p x i] is xᵢ for 1 ≤ i ≤ n (the thesis indexes digits from 1). *)

val first_digit : params -> int -> int
(** x₁. *)

val last_digit : params -> int -> int
(** xₙ. *)

val prefix : params -> int -> int
(** x₁…x_{n−1} as an (n−1)-digit code — a word of ℤ_d^{n−1}. *)

val suffix : params -> int -> int
(** x₂…xₙ as an (n−1)-digit code. *)

val cons : params -> int -> int -> int
(** [cons p a w] is the n-digit word a·w for an (n−1)-digit [w]. *)

val snoc : params -> int -> int -> int
(** [snoc p w a] is the n-digit word w·a for an (n−1)-digit [w]. *)

val rotl : params -> int -> int
(** Left rotation π¹: x₁x₂…xₙ ↦ x₂…xₙx₁. *)

val rotl_by : params -> int -> int -> int
(** πⁱ for any integer i (negative = right rotation). *)

val weight : params -> int -> int
(** wt(x): the sum of the digits. *)

val count_digit : params -> int -> int -> int
(** [count_digit p a x] is wt_a(x): the number of occurrences of digit a. *)

val period : params -> int -> int
(** The least t > 0 with πᵗ(x) = x; always divides n. *)

val is_aperiodic : params -> int -> bool

val constant : params -> int -> int
(** [constant p a] is the word aⁿ. *)

val alternating : params -> int -> int -> int
(** [alternating p a b] is the thesis's n-tuple "ab…ab" (n even) or
    "ab…aba" (n odd) — αβ with the value of n implicit. *)

val successors : params -> int -> int list
(** De Bruijn successors x₂…xₙ·a for a = 0..d−1, in digit order. *)

val predecessors : params -> int -> int list
(** De Bruijn predecessors a·x₁…x_{n−1}, in digit order. *)

val iter_succs : params -> int -> (int -> unit) -> unit
(** [iter_succs p x f] calls [f] on the d successors in the same order
    as {!successors}, allocating nothing ([fun x f -> iter_succs p x f]
    is a [Graphlib.Itopo.iter]).  No range check on [x]. *)

val iter_preds : params -> int -> (int -> unit) -> unit
(** Likewise for {!predecessors}. *)

val edge_code : params -> int -> int -> int
(** [edge_code p u v] packs the De Bruijn edge u → v into the integer
    u·d + vₙ ∈ [0, dⁿ·d) — the (n+1)-digit window as a number, the key
    the flat fault tables ({!Dhc.Edge_fault}) index by.
    @raise Invalid_argument if u → v is not a De Bruijn edge. *)

val edge_of_code : params -> int -> int * int
(** Inverse of {!edge_code}. *)

val to_string : params -> int -> string
(** Digits concatenated, e.g. ["0112"]. *)

val of_string : params -> string -> int
(** Inverse of [to_string] for digits 0-9 (d ≤ 10). *)

val all : params -> int list
(** All dⁿ words in increasing order. *)
