type params = { d : int; n : int; size : int }

let params ~d ~n =
  if d < 2 then invalid_arg "Word.params: d < 2";
  if n < 1 then invalid_arg "Word.params: n < 1";
  (* Guard against overflow: dⁿ must fit comfortably in an int. *)
  let rec pow acc i =
    if i = 0 then acc
    else if acc > max_int / d then invalid_arg "Word.params: d^n too large"
    else pow (acc * d) (i - 1)
  in
  { d; n; size = pow 1 n }

let check p x =
  if x < 0 || x >= p.size then invalid_arg "Word: code out of range"

let encode p digits =
  if Array.length digits <> p.n then invalid_arg "Word.encode: wrong length";
  Array.fold_left
    (fun acc c ->
      if c < 0 || c >= p.d then invalid_arg "Word.encode: digit out of range";
      (acc * p.d) + c)
    0 digits

let decode p x =
  check p x;
  let digits = Array.make p.n 0 in
  let rec fill x i =
    if i >= 0 then begin
      digits.(i) <- x mod p.d;
      fill (x / p.d) (i - 1)
    end
  in
  fill x (p.n - 1);
  digits

let digit p x i =
  check p x;
  if i < 1 || i > p.n then invalid_arg "Word.digit: index out of range";
  x / Numtheory.pow p.d (p.n - i) mod p.d

let first_digit p x = check p x; x / (p.size / p.d)
let last_digit p x = check p x; x mod p.d
let prefix p x = check p x; x / p.d
let suffix p x = check p x; x mod (p.size / p.d)

let cons p a w =
  if a < 0 || a >= p.d then invalid_arg "Word.cons: digit out of range";
  if w < 0 || w >= p.size / p.d then invalid_arg "Word.cons: word out of range";
  (a * (p.size / p.d)) + w

let snoc p w a =
  if a < 0 || a >= p.d then invalid_arg "Word.snoc: digit out of range";
  if w < 0 || w >= p.size / p.d then invalid_arg "Word.snoc: word out of range";
  (w * p.d) + a

let rotl p x = check p x; (x mod (p.size / p.d) * p.d) + (x / (p.size / p.d))

let rotl_by p i x =
  let i = ((i mod p.n) + p.n) mod p.n in
  let rec go x i = if i = 0 then x else go (rotl p x) (i - 1) in
  go x i

let weight p x =
  let rec go x acc = if x = 0 then acc else go (x / p.d) (acc + (x mod p.d)) in
  check p x;
  go x 0

let count_digit p a x =
  check p x;
  if a < 0 || a >= p.d then invalid_arg "Word.count_digit: digit out of range";
  let rec go x i acc =
    if i = 0 then acc else go (x / p.d) (i - 1) (if x mod p.d = a then acc + 1 else acc)
  in
  go x p.n 0

let period p x =
  (* The period divides n, so only rotations by divisors of n matter. *)
  let rec find = function
    | [] -> p.n
    | t :: rest -> if rotl_by p t x = x then t else find rest
  in
  find (Numtheory.divisors p.n)

let is_aperiodic p x = period p x = p.n

let constant p a =
  if a < 0 || a >= p.d then invalid_arg "Word.constant: digit out of range";
  a * (p.size - 1) / (p.d - 1)

let alternating p a b =
  let digits = Array.init p.n (fun i -> if i mod 2 = 0 then a else b) in
  encode p digits

let successors p x =
  let s = suffix p x in
  List.init p.d (fun a -> snoc p s a)

let predecessors p x =
  let w = prefix p x in
  List.init p.d (fun a -> cons p a w)

(* Allocation-free counterparts of [successors]/[predecessors], in the
   same digit order — the {!Graphlib.Itopo.iter}s that let traversals
   run on B(d,n) without materializing it. *)
let iter_succs p x f =
  let base = x mod (p.size / p.d) * p.d in
  for a = 0 to p.d - 1 do
    f (base + a)
  done

let iter_preds p x f =
  let w = x / p.d in
  let stride = p.size / p.d in
  for a = 0 to p.d - 1 do
    f ((a * stride) + w)
  done

let edge_code p u v =
  check p u;
  check p v;
  if suffix p u <> prefix p v then invalid_arg "Word.edge_code: not a De Bruijn edge";
  (u * p.d) + last_digit p v

let edge_of_code p c =
  if c < 0 || c >= p.size * p.d then invalid_arg "Word.edge_of_code: out of range";
  let u = c / p.d and a = c mod p.d in
  (u, snoc p (suffix p u) a)

let to_string p x =
  String.concat "" (Array.to_list (Array.map string_of_int (decode p x)))

let of_string p s =
  if String.length s <> p.n then invalid_arg "Word.of_string: wrong length";
  encode p (Array.init p.n (fun i -> Char.code s.[i] - Char.code '0'))

let all p = List.init p.size Fun.id
