type t = {
  p : int;
  e : int;
  d : int;
  modulus : Poly_zp.t;
  exp : int array;
  log : int array;
}

type elt = int

(* Encode a polynomial over Z_p of degree < e as a base-p integer. *)
let encode p (f : Poly_zp.t) =
  Array.fold_right (fun c acc -> (acc * p) + c) f 0

let decode p e code =
  let f = Array.make e 0 in
  let rec fill c i = if i < e then (f.(i) <- c mod p; fill (c / p) (i + 1)) in
  fill code 0;
  Poly_zp.normalize p f

let create d =
  match Numtheory.is_prime_power d with
  | None -> invalid_arg "Gf.create: order is not a prime power"
  | Some (p, e) ->
      let modulus =
        if e = 1 then Poly_zp.of_coeffs p [ p - Numtheory.primitive_root p; 1 ]
        else Poly_zp.find_primitive p e
      in
      (* The class of x is a generator because the modulus is primitive;
         for e = 1 the modulus is x − g so x ≡ g, the primitive root. *)
      let exp = Array.make (d - 1) 0 in
      let log = Array.make d 0 in
      let g = Poly_zp.rem p Poly_zp.x modulus in
      let cur = ref (Poly_zp.rem p Poly_zp.one modulus) in
      for i = 0 to d - 2 do
        let code = encode p !cur in
        exp.(i) <- code;
        log.(code) <- i;
        cur := Poly_zp.mul_mod p modulus !cur g
      done;
      { p; e; d; modulus; exp; log }

let order f = f.d
let elements f = List.init f.d Fun.id
let nonzero f = List.init (f.d - 1) (fun i -> i + 1)
let generator f = f.exp.(if f.d = 2 then 0 else 1)

let check f a =
  if a < 0 || a >= f.d then invalid_arg "Gf: element out of range"

let add f a b =
  check f a; check f b;
  (* Carry-free base-p addition of the coefficient vectors. *)
  let rec go a b mul acc =
    if a = 0 && b = 0 then acc
    else go (a / f.p) (b / f.p) (mul * f.p) (acc + (((a mod f.p) + (b mod f.p)) mod f.p * mul))
  in
  go a b 1 0

let neg f a =
  check f a;
  let rec go a mul acc =
    if a = 0 then acc
    else go (a / f.p) (mul * f.p) (acc + ((f.p - (a mod f.p)) mod f.p * mul))
  in
  go a 1 0

let sub f a b = add f a (neg f b)

let mul f a b =
  check f a; check f b;
  if a = 0 || b = 0 then 0
  else f.exp.((f.log.(a) + f.log.(b)) mod (f.d - 1))

let inv f a =
  check f a;
  if a = 0 then raise Division_by_zero;
  f.exp.((f.d - 1 - f.log.(a)) mod (f.d - 1))

let div f a b = mul f a (inv f b)

let pow f a k =
  check f a;
  if a = 0 then (
    if k < 0 then raise Division_by_zero else if k = 0 then 1 else 0)
  else
    let m = f.d - 1 in
    f.exp.(((f.log.(a) * (((k mod m) + m) mod m)) mod m + m) mod m)

let of_int f k = ((k mod f.p) + f.p) mod f.p

let scalar_mul f k a = mul f (of_int f k) a

let log f a =
  check f a;
  if a = 0 then raise Division_by_zero;
  f.log.(a)

let elt_order f a =
  if a = 0 then invalid_arg "Gf.elt_order: zero";
  (f.d - 1) / Numtheory.gcd (f.d - 1) (log f a)

let mul_row f a =
  check f a;
  Array.init f.d (fun x -> mul f a x)

let add_fun f =
  (* Tabulate + for small fields: the LFSR successor walks do d·n field
     additions per million nodes, and the carry-free base-p loop in
     [add] is the hot instruction there.  64×64 ints is 32 KB — cheap;
     past that fall back to the loop. *)
  if f.d <= 64 then begin
    let m = Array.init f.d (fun a -> Array.init f.d (fun b -> add f a b)) in
    fun a b -> m.(a).(b)
  end
  else add f

let sum f = List.fold_left (add f) 0
let product f = List.fold_left (mul f) 1
let has_characteristic_2 f = f.p = 2
let to_string _ a = string_of_int a

(* Re-expose decode for the sibling Gf_poly module via a non-mli value
   would not compile; keep decode internal and unused publicly. *)
let _ = decode
