(** The Galois field GF(p{^e}).

    Chapter 3 of the thesis works over GF(d) for a prime power d = p{^e}:
    maximal cycles are linear recurrences over GF(d) with a primitive
    characteristic polynomial, and the disjoint-Hamiltonian-cycle
    strategies manipulate field elements directly.

    Elements are represented as integers in [0, d): the element with
    polynomial representation c₀ + c₁α + … + c_{e−1}α^{e−1} (α a root of
    the defining primitive polynomial) is encoded as the base-p numeral
    Σ cᵢ pⁱ.  In particular 0 and 1 are the additive and multiplicative
    identities, and the integers 0..p−1 encode the prime subfield. *)

type t = private {
  p : int;  (** characteristic *)
  e : int;  (** extension degree *)
  d : int;  (** order, p{^e} *)
  modulus : Poly_zp.t;  (** defining primitive polynomial of degree e over ℤ_p *)
  exp : int array;  (** exp.(i) = g{^i} for the canonical generator g, length d−1 *)
  log : int array;  (** log.(g{^i}) = i; log.(0) is unused *)
}

type elt = int
(** A field element, an integer in [0, d). *)

val create : int -> t
(** [create d] builds GF(d) for a prime power [d], choosing the least
    primitive polynomial of degree e over ℤ_p as modulus (for e = 1 the
    modulus is x − g with g the least primitive root).
    @raise Invalid_argument if [d] is not a prime power ≥ 2. *)

val order : t -> int
(** The number of elements, d. *)

val elements : t -> elt list
(** All elements, [0; 1; …; d−1]. *)

val nonzero : t -> elt list
(** All nonzero elements. *)

val generator : t -> elt
(** A fixed generator of the multiplicative group. *)

val add : t -> elt -> elt -> elt
val sub : t -> elt -> elt -> elt
val neg : t -> elt -> elt
val mul : t -> elt -> elt -> elt

val inv : t -> elt -> elt
(** @raise Division_by_zero on 0. *)

val div : t -> elt -> elt -> elt
val pow : t -> elt -> int -> elt
(** [pow f a k] with [k] any integer (negative allowed for nonzero [a]). *)

val of_int : t -> int -> elt
(** Embed an integer via reduction mod p into the prime subfield. *)

val scalar_mul : t -> int -> elt -> elt
(** [scalar_mul f k a] is the sum of [k] copies of [a] — equivalently
    [mul f (of_int f k) a]. *)

val log : t -> elt -> int
(** Discrete log base [generator].  @raise Division_by_zero on 0. *)

val elt_order : t -> elt -> int
(** Multiplicative order of a nonzero element. *)

val mul_row : t -> elt -> int array
(** [mul_row f a] is the length-d table [x ↦ a·x], turning repeated
    multiplications by a fixed element (the LFSR taps) into array
    indexing. *)

val add_fun : t -> elt -> elt -> elt
(** Addition as a (possibly tabulated) closure: for d ≤ 64 a d×d matrix
    lookup, else {!add}.  Build it once per walk, outside hot loops. *)

val sum : t -> elt list -> elt
val product : t -> elt list -> elt

val has_characteristic_2 : t -> bool

val to_string : t -> elt -> string
(** Render an element as its integer code (the thesis's d-ary digit). *)
