type t = int array

let zero : t = [||] [@@lint.domain_safe "constant polynomial, never written"]
let one : t = [| 1 |] [@@lint.domain_safe "constant polynomial, never written"]
let x : t = [| 0; 1 |] [@@lint.domain_safe "constant polynomial, never written"]

let normalize p (f : t) : t =
  let n = Array.length f in
  let reduced = Array.map (fun c -> ((c mod p) + p) mod p) f in
  let rec last i = if i < 0 then -1 else if reduced.(i) <> 0 then i else last (i - 1) in
  let d = last (n - 1) in
  Array.sub reduced 0 (d + 1)

let of_coeffs p cs = normalize p (Array.of_list cs)
let degree (f : t) = Array.length f - 1
let is_zero (f : t) = Array.length f = 0
let equal (a : t) (b : t) = a = b
let leading (f : t) = if is_zero f then 0 else f.(Array.length f - 1)
let coeff (f : t) i = if i >= 0 && i < Array.length f then f.(i) else 0

let add p a b =
  let n = max (Array.length a) (Array.length b) in
  normalize p (Array.init n (fun i -> coeff a i + coeff b i))

let neg p a = normalize p (Array.map (fun c -> p - c) a)
let sub p a b = add p a (neg p b)

let scale p k a =
  let k = ((k mod p) + p) mod p in
  normalize p (Array.map (fun c -> c * k) a)

let mul p a b =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (degree a + degree b + 1) 0 in
    Array.iteri
      (fun i ai -> if ai <> 0 then Array.iteri (fun j bj -> out.(i + j) <- (out.(i + j) + (ai * bj)) mod p) b)
      a;
    normalize p out
  end

(* Inverse of a nonzero scalar mod prime p via Fermat. *)
let inv_scalar p c = Numtheory.pow_mod c (p - 2) p

let divmod p a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let binv = inv_scalar p (leading b) in
  let r = Array.copy a in
  let q = Array.make (max 0 (degree a - db + 1)) 0 in
  (* Standard long division; r shrinks from the top. *)
  let rec top i = if i < 0 then -1 else if r.(i) mod p <> 0 then i else top (i - 1) in
  let rec loop () =
    let dr = top (Array.length r - 1) in
    if dr < db then ()
    else begin
      let c = r.(dr) mod p * binv mod p in
      q.(dr - db) <- c;
      for j = 0 to db do
        r.(dr - db + j) <- (((r.(dr - db + j) - (c * b.(j))) mod p) + (p * p)) mod p
      done;
      loop ()
    end
  in
  Array.iteri (fun i c -> r.(i) <- ((c mod p) + p) mod p) r;
  loop ();
  (normalize p q, normalize p r)

let rem p a b = snd (divmod p a b)
let mul_mod p m a b = rem p (mul p a b) m

let pow_mod p m f e =
  if e < 0 then invalid_arg "Poly_zp.pow_mod: negative exponent";
  let rec go acc f e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul_mod p m acc f) (mul_mod p m f f) (e asr 1)
    else go acc (mul_mod p m f f) (e asr 1)
  in
  go (rem p one m) (rem p f m) e

let monic p f = if is_zero f then f else scale p (inv_scalar p (leading f)) f

let rec gcd p a b = if is_zero b then monic p a else gcd p b (rem p a b)

let eval p f v =
  let v = ((v mod p) + p) mod p in
  Array.fold_right (fun c acc -> ((acc * v) + c) mod p) f 0

let is_irreducible p f =
  let n = degree f in
  if n <= 0 then false
  else if n = 1 then true
  else begin
    let f = monic p f in
    (* x^(p^k) mod f computed by repeated p-th powering. *)
    let frobenius_iterate k =
      let rec go acc i = if i = k then acc else go (pow_mod p f acc p) (i + 1) in
      go (rem p x f) 0
    in
    if not (equal (frobenius_iterate n) (rem p x f)) then false
    else
      List.for_all
        (fun (q, _) ->
          let g = sub p (frobenius_iterate (n / q)) x in
          equal (gcd p g f) one)
        (Numtheory.factorize n)
  end

let is_primitive p f =
  let n = degree f in
  n >= 1 && coeff f 0 <> 0 && is_irreducible p f
  &&
  let order = Numtheory.pow p n - 1 in
  equal (pow_mod p f x order) one
  && List.for_all
       (fun (q, _) -> not (equal (pow_mod p f x (order / q)) one))
       (Numtheory.factorize order)

let all_monic p n =
  if n < 0 then []
  else begin
    let count = Numtheory.pow p n in
    List.init count (fun code ->
        let f = Array.make (n + 1) 0 in
        f.(n) <- 1;
        let rec fill c i = if i < n then (f.(i) <- c mod p; fill (c / p) (i + 1)) in
        fill code 0;
        normalize p f)
  end

let find_primitive p n =
  match List.find_opt (is_primitive p) (all_monic p n) with
  | Some f -> f
  | None -> raise Not_found

let to_string f =
  if is_zero f then "0"
  else
    let terms = ref [] in
    Array.iteri
      (fun i c ->
        if c <> 0 then
          let t =
            match i with
            | 0 -> string_of_int c
            | 1 -> if c = 1 then "x" else Fmt.str "%dx" c
            | _ -> if c = 1 then Fmt.str "x^%d" i else Fmt.str "%dx^%d" c i
          in
          terms := t :: !terms)
      f;
    String.concat " + " !terms
