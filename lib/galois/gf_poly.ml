type t = int array

let zero : t = [||] [@@lint.domain_safe "constant polynomial, never written"]
let one : t = [| 1 |] [@@lint.domain_safe "constant polynomial, never written"]
let x : t = [| 0; 1 |] [@@lint.domain_safe "constant polynomial, never written"]

let normalize _f (p : t) : t =
  let n = Array.length p in
  let rec last i = if i < 0 then -1 else if p.(i) <> 0 then i else last (i - 1) in
  Array.sub p 0 (last (n - 1) + 1)

let of_coeffs f cs =
  let arr = Array.of_list cs in
  Array.iter (fun c -> if c < 0 || c >= Gf.order f then invalid_arg "Gf_poly.of_coeffs") arr;
  normalize f arr

let degree (p : t) = Array.length p - 1
let is_zero (p : t) = Array.length p = 0
let equal (a : t) (b : t) = a = b
let coeff (p : t) i = if i >= 0 && i < Array.length p then p.(i) else 0
let leading (p : t) = if is_zero p then 0 else p.(Array.length p - 1)

let add f a b =
  let n = max (Array.length a) (Array.length b) in
  normalize f (Array.init n (fun i -> Gf.add f (coeff a i) (coeff b i)))

let neg f a = Array.map (Gf.neg f) a
let sub f a b = add f a (neg f b)

let scale f k a = normalize f (Array.map (Gf.mul f k) a)

let mul f a b =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (degree a + degree b + 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri (fun j bj -> out.(i + j) <- Gf.add f out.(i + j) (Gf.mul f ai bj)) b)
      a;
    normalize f out
  end

let divmod f a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let binv = Gf.inv f (leading b) in
  let r = Array.copy a in
  let q = Array.make (max 0 (degree a - db + 1)) 0 in
  let rec top i = if i < 0 then -1 else if r.(i) <> 0 then i else top (i - 1) in
  let rec loop () =
    let dr = top (Array.length r - 1) in
    if dr < db then ()
    else begin
      let c = Gf.mul f r.(dr) binv in
      q.(dr - db) <- c;
      for j = 0 to db do
        r.(dr - db + j) <- Gf.sub f r.(dr - db + j) (Gf.mul f c b.(j))
      done;
      loop ()
    end
  in
  loop ();
  (normalize f q, normalize f r)

let rem f a b = snd (divmod f a b)
let mul_mod f m a b = rem f (mul f a b) m

let pow_mod f m p e =
  if e < 0 then invalid_arg "Gf_poly.pow_mod: negative exponent";
  let rec go acc p e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul_mod f m acc p) (mul_mod f m p p) (e asr 1)
    else go acc (mul_mod f m p p) (e asr 1)
  in
  go (rem f one m) (rem f p m) e

let monic f p = if is_zero p then p else scale f (Gf.inv f (leading p)) p

let rec gcd f a b = if is_zero b then monic f a else gcd f b (rem f a b)

let eval f p v =
  Array.fold_right (fun c acc -> Gf.add f (Gf.mul f acc v) c) p 0

let is_irreducible f p =
  let n = degree p in
  if n <= 0 then false
  else if n = 1 then true
  else begin
    let q = Gf.order f in
    let p = monic f p in
    let frobenius_iterate k =
      let rec go acc i = if i = k then acc else go (pow_mod f p acc q) (i + 1) in
      go (rem f x p) 0
    in
    if not (equal (frobenius_iterate n) (rem f x p)) then false
    else
      List.for_all
        (fun (pr, _) ->
          let g = sub f (frobenius_iterate (n / pr)) x in
          equal (gcd f g p) one)
        (Numtheory.factorize n)
  end

let order_of_x f m =
  if coeff m 0 = 0 then invalid_arg "Gf_poly.order_of_x: x divides modulus";
  let bound = Numtheory.pow (Gf.order f) (degree m) - 1 in
  let divisors = Numtheory.divisors bound in
  match List.find_opt (fun t -> equal (pow_mod f m x t) (rem f one m)) divisors with
  | Some t -> t
  | None -> raise Not_found

let is_primitive f p =
  let n = degree p in
  n >= 1 && coeff p 0 <> 0
  && equal p (monic f p)
  && is_irreducible f p
  &&
  let order = Numtheory.pow (Gf.order f) n - 1 in
  equal (pow_mod f p x order) one
  && List.for_all
       (fun (q, _) -> not (equal (pow_mod f p x (order / q)) one))
       (Numtheory.factorize order)

let monic_of_code f n code =
  let q = Gf.order f in
  let p = Array.make (n + 1) 0 in
  p.(n) <- 1;
  let rec fill c i = if i < n then (p.(i) <- c mod q; fill (c / q) (i + 1)) in
  fill code 0;
  normalize f p

let all_monic f n =
  if n < 0 then []
  else List.init (Numtheory.pow (Gf.order f) n) (monic_of_code f n)

(* Scan codes lazily (same order as [all_monic], so the polynomial found
   is unchanged): materializing all qⁿ candidates first costs gigabytes
   at q = 2, n = 22 when the answer is among the first few dozen. *)
let find_primitive f n =
  let count = Numtheory.pow (Gf.order f) n in
  let rec go code =
    if code >= count then raise Not_found
    else
      let p = monic_of_code f n code in
      if is_primitive f p then p else go (code + 1)
  in
  go 0

let to_string _f p =
  if is_zero p then "0"
  else
    let terms = ref [] in
    Array.iteri
      (fun i c ->
        if c <> 0 then
          let t =
            match i with
            | 0 -> string_of_int c
            | 1 -> if c = 1 then "x" else Fmt.str "%d·x" c
            | _ -> if c = 1 then Fmt.str "x^%d" i else Fmt.str "%d·x^%d" c i
          in
          terms := t :: !terms)
      p;
    String.concat " + " !terms
