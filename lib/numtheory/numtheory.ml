(* Elementary number theory used throughout the reproduction.  See the
   interface for the contract of each function. *)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let pow b e =
  if e < 0 then invalid_arg "Numtheory.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let pow_mod b e m =
  if e < 0 then invalid_arg "Numtheory.pow_mod: negative exponent";
  if m < 1 then invalid_arg "Numtheory.pow_mod: modulus < 1";
  let b = ((b mod m) + m) mod m in
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b mod m) (b * b mod m) (e asr 1)
    else go acc (b * b mod m) (e asr 1)
  in
  go (1 mod m) b e

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let rec loop i = if i * i > n then true else if n mod i = 0 then false else loop (i + 2) in
    loop 3

let factorize n =
  if n < 1 then invalid_arg "Numtheory.factorize: n < 1";
  let rec strip n p e = if n mod p = 0 then strip (n / p) p (e + 1) else (n, e) in
  let rec go n p acc =
    if n = 1 then List.rev acc
    else if p * p > n then List.rev ((n, 1) :: acc)
    else
      let n', e = strip n p 0 in
      let acc = if e > 0 then (p, e) :: acc else acc in
      go n' (if p = 2 then 3 else p + 2) acc
  in
  go n 2 []

let divisors n =
  let fs = factorize n in
  let ds =
    List.fold_left
      (fun ds (p, e) ->
        List.concat_map
          (fun d ->
            let rec powers acc pk i = if i > e then List.rev acc else powers ((d * pk) :: acc) (pk * p) (i + 1) in
            powers [] 1 0)
          ds)
      [ 1 ] fs
  in
  List.sort Int.compare ds

let num_distinct_prime_factors n = List.length (factorize n)

let mobius n =
  let fs = factorize n in
  if List.exists (fun (_, e) -> e > 1) fs then 0
  else if List.length fs mod 2 = 0 then 1
  else -1

let euler_phi n =
  List.fold_left (fun acc (p, e) -> acc * (p - 1) * pow p (e - 1)) 1 (factorize n)

let is_prime_power d =
  if d < 2 then None
  else
    match factorize d with
    | [ (p, e) ] -> Some (p, e)
    | _ -> None

let order_mod a m =
  if m < 2 then invalid_arg "Numtheory.order_mod: modulus < 2";
  let a = ((a mod m) + m) mod m in
  if gcd a m <> 1 then invalid_arg "Numtheory.order_mod: not a unit";
  (* The order divides φ(m); check divisors of φ(m) in increasing order. *)
  let phi = euler_phi m in
  let rec find = function
    | [] -> phi
    | t :: rest -> if pow_mod a t m = 1 then t else find rest
  in
  find (divisors phi)

let is_primitive_root g p =
  let g = ((g mod p) + p) mod p in
  g <> 0 && order_mod g p = p - 1

let primitive_root p =
  if not (is_prime p) then invalid_arg "Numtheory.primitive_root: not prime";
  if p = 2 then 1
  else
    let rec find g = if is_primitive_root g p then g else find (g + 1) in
    find 2

let discrete_log g y p =
  let g = ((g mod p) + p) mod p and y = ((y mod p) + p) mod p in
  let rec loop k acc =
    if k >= p - 1 then None else if acc = y then Some k else loop (k + 1) (acc * g mod p)
  in
  loop 0 (1 mod p)

let binomial n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1

let multinomial ks =
  List.iter (fun k -> if k < 0 then invalid_arg "Numtheory.multinomial: negative part") ks;
  (* Multiply the telescoping binomials C(k₀,k₀)·C(k₀+k₁,k₁)·… to stay in
     integer arithmetic throughout. *)
  let _, acc =
    List.fold_left (fun (n, acc) k -> (n + k, acc * binomial (n + k) k)) (0, 1) ks
  in
  acc

let quadratic_residue a p =
  if p < 3 || not (is_prime p) then invalid_arg "Numtheory.quadratic_residue: p must be an odd prime";
  let a = ((a mod p) + p) mod p in
  if a = 0 then invalid_arg "Numtheory.quadratic_residue: a ≡ 0";
  pow_mod a ((p - 1) / 2) p = 1

let sum_over_divisors n f = List.fold_left (fun acc t -> acc + f t) 0 (divisors n)
