module W = Debruijn.Word
module Fa = Graphlib.Flatarr
module Sched = Graphlib.Sched

(* Nodes per chunk of the port-load sweep: big enough that the
   per-chunk scratch arrays amortize to nothing, small enough to
   load-balance across domains. *)
let port_chunk = 4096

(* Peak sends by one node in one round, in closed form.

   Every ring membership of a node — position i of ring j, i.e. offset
   h into rank segment [seg] — emits exactly [phases] sends, the
   phase-p send leaving at round h + Σ_{q=0}^{p−1} len[(seg−1−q) mod R]
   (the phase-0 wave reaches offset h at round h; each later phase is
   delayed by the arrival of the previous one, which crosses the
   predecessor segments in order).  The port load of the node at some
   round is the number of its memberships whose send-round sequences
   collide there, so the peak is the deepest multi-way collision.

   A single driven ring can never collide with itself (one membership
   per node), and when every segment has the same length the sequences
   are h + p·len — two memberships collide iff their offsets are equal
   (|h−h'| < len forces h = h'), which is a plain equality count.  The
   general k-way merge only runs for non-uniform boundaries, and only
   on nodes with more memberships than the best collision found so
   far. *)
let max_port_load pool (c : Compile.t) ~phases =
  if c.Compile.nrings = 1 then 1
  else begin
    let size = c.Compile.p.W.size in
    let nrings = c.Compile.nrings in
    let length = c.Compile.length in
    let ranks = c.Compile.ranks in
    let seg_len = c.Compile.seg_len in
    let seg_pref = c.Compile.seg_pref in
    (* CSR of (segment, offset) memberships per node. *)
    let heads = Fa.make (size + 1) 0 in
    Array.iter
      (fun cycle ->
        Array.iter (fun v -> heads.{v + 1} <- heads.{v + 1} + 1) cycle)
      c.Compile.cycles;
    for v = 1 to size do
      heads.{v} <- heads.{v} + heads.{v - 1}
    done;
    let ent_seg = Fa.create (nrings * length) in
    let ent_off = Fa.create (nrings * length) in
    let cursor = Fa.create size in
    for v = 0 to size - 1 do
      cursor.{v} <- heads.{v}
    done;
    Array.iter
      (fun cycle ->
        let seg = ref 0 in
        for i = 0 to length - 1 do
          while !seg < ranks - 1 && i >= seg_pref.{!seg + 1} do
            incr seg
          done;
          let v = cycle.(i) in
          let idx = cursor.{v} in
          cursor.{v} <- idx + 1;
          ent_seg.{idx} <- !seg;
          ent_off.{idx} <- i - seg_pref.{!seg}
        done)
      c.Compile.cycles;
    let uniform =
      let l0 = seg_len.{0} in
      let u = ref true in
      for r = 1 to ranks - 1 do
        if seg_len.{r} <> l0 then u := false
      done;
      !u
    in
    let nchunks = (size + port_chunk - 1) / port_chunk in
    let maxima = Array.make nchunks 1 in
    Sched.parallel_for pool ~chunk:port_chunk ~lo:0 ~hi:size
      (fun ci lo hi ->
        let best = ref 1 in
        let vals = Array.make nrings 0 in
        let ptr = Array.make nrings 0 in
        let nxt = Array.make nrings 0 in
        for v = lo to hi - 1 do
          let e0 = heads.{v} and e1 = heads.{v + 1} in
          let deg = e1 - e0 in
          (* A node's collision depth is at most its membership count. *)
          if deg > !best then
            if uniform then
              for a = e0 to e1 - 1 do
                let cnt = ref 0 in
                for b = e0 to e1 - 1 do
                  if ent_off.{b} = ent_off.{a} then incr cnt
                done;
                if !cnt > !best then best := !cnt
              done
            else begin
              let live = ref deg in
              for e = 0 to deg - 1 do
                ptr.(e) <- 0;
                vals.(e) <- ent_off.{e0 + e};
                let s = ent_seg.{e0 + e} in
                nxt.(e) <- (if s = 0 then ranks - 1 else s - 1)
              done;
              while !live > 0 do
                let mn = ref max_int in
                for e = 0 to deg - 1 do
                  if ptr.(e) < phases && vals.(e) < !mn then mn := vals.(e)
                done;
                let cnt = ref 0 in
                for e = 0 to deg - 1 do
                  if ptr.(e) < phases && vals.(e) = !mn then begin
                    incr cnt;
                    ptr.(e) <- ptr.(e) + 1;
                    if ptr.(e) = phases then decr live
                    else begin
                      vals.(e) <- vals.(e) + seg_len.{nxt.(e)};
                      nxt.(e) <- (if nxt.(e) = 0 then ranks - 1 else nxt.(e) - 1)
                    end
                  end
                done;
                if !cnt > !best then best := !cnt
              done
            end
        done;
        maxima.(ci) <- !best);
    Array.fold_left max 1 maxima
  end

let run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
    (spec : Exec.spec) =
  let op = spec.Exec.op in
  let cw = spec.Exec.chunk_words in
  let c =
    Compile.lower ~what:"Collective.Fastpath.run" ~clamp_ranks ~edge_faults
      ~bidirectional:spec.Exec.bidirectional ~ranks:spec.Exec.ranks
      ~chunk_words:cw ~p ~faulty ~rings
  in
  let nrings = c.Compile.nrings in
  let length = c.Compile.length in
  let ranks = c.Compile.ranks in
  let ph = Schedule.phases op ~ranks in
  (* Same flat payload arena, layout and initial contents as
     [Exec.run] — rank r of ring j owns the [ranks·cw]-word slice at
     [((j·ranks) + r)·ranks·cw] — so the two executors' final arenas
     can be compared word for word. *)
  let buf = Fa.make (nrings * ranks * ranks * cw) 0 in
  let base_of ~ring ~rank = ((ring * ranks) + rank) * ranks * cw in
  for j = 0 to nrings - 1 do
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for ch = 0 to ranks - 1 do
        for w = 0 to cw - 1 do
          buf.{base + (ch * cw) + w} <-
            Exec.initial_word op ~init ~ring:j ~rank:r ~chunk:ch ~word:w
        done
      done
    done
  done;
  let items = nrings * ranks in
  let port =
    Sched.with_pool ~domains (fun pool ->
        let kchunk = max 1 (items / (8 * Sched.size pool)) in
        (* The schedule as an array kernel: in phase p, the (ring j,
           rank r) work item moves chunk (r−p−1) mod R from its
           predecessor's slice into its own, reducing in place during
           the reduce-scatter phases.  The predecessor's phase-p write
           lands in chunk (r−p−2) mod R — a different chunk, since
           consecutive chunks differ by 1 mod R ≥ 2 — so every phase's
           work items touch pairwise disjoint destinations and read
           phase-stable sources: any (domains, chunk) split commits
           bit-identical words, with zero allocation per hop. *)
        for phase = 0 to ph - 1 do
          let red = Schedule.reduces op ~ranks ~phase in
          Sched.parallel_for pool ~chunk:kchunk ~lo:0 ~hi:items
            ((fun _ci lo hi ->
              for item = lo to hi - 1 do
                let j = item / ranks in
                let r = item mod ranks in
                let chunk = Schedule.recv_chunk ~ranks ~rank:r ~phase in
                let pred = if r = 0 then ranks - 1 else r - 1 in
                (* [base_of] inlined: every destination index is then
                   a visible function of the chunk-range parameters,
                   so R6 verifies the kernel with no annotation. *)
                let src = (((j * ranks) + pred) * ranks * cw) + (chunk * cw) in
                let dst = (((j * ranks) + r) * ranks * cw) + (chunk * cw) in
                if red then
                  for w = 0 to cw - 1 do
                    buf.{dst + w} <- buf.{dst + w} + buf.{src + w}
                  done
                else
                  for w = 0 to cw - 1 do
                    buf.{dst + w} <- buf.{src + w}
                  done
              done)
            [@lint.hot])
        done;
        max_port_load pool c ~phases:ph)
  in
  (* Exact verification against the rank-space reference execution —
     the same oracle, and the same traversal order for the checksum,
     as [Exec.run]. *)
  let verified = ref true in
  let checksum = ref 0 in
  for j = 0 to nrings - 1 do
    let expect =
      Schedule.simulate op ~ranks ~chunk_words:cw
        ~init:(fun ~rank ~chunk ~word -> init ~ring:j ~rank ~chunk ~word)
    in
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for i = 0 to (ranks * cw) - 1 do
        let got = buf.{base + i} in
        checksum := !checksum + got;
        if got <> expect.(r).(i) then verified := false
      done
    done
  done;
  (* Counters in closed form, matching the simulator's accounting:
     every phase moves one chunk across all L edges of every ring
     (each hop is one delivery of one cw-word message), rounds come
     from the self-timed arrival recurrence, and link sharing from the
     packed edge keys. *)
  let delivered = nrings * ph * length in
  let wire_words = delivered * cw in
  let rounds = Compile.completion_rounds c ~phases:ph in
  let msgs = Schedule.segment_messages op ~ranks in
  let max_share = Compile.max_edge_share c in
  let payload_words = nrings * Schedule.payload_words op ~ranks ~chunk_words:cw in
  let report =
    {
      Exec.rings = nrings;
      ranks;
      phases = ph;
      rounds;
      delivered;
      wire_words;
      payload_words;
      bytes_per_step =
        8.0 *. float_of_int payload_words /. float_of_int (max 1 rounds);
      max_link_load = max_share * msgs;
      max_port_load = port;
      verified = !verified;
      checksum = !checksum;
    }
  in
  (report, buf)

let run ?(domains = 1) ?(edge_faults = []) ?(clamp_ranks = false)
    ?(init = Exec.default_init) ~p ~faulty ~rings spec =
  fst
    (run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
       spec)

let run_with_payload ?(domains = 1) ?(edge_faults = []) ?(clamp_ranks = false)
    ?(init = Exec.default_init) ~p ~faulty ~rings spec =
  let report, buf =
    run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
      spec
  in
  (report, Fa.to_array buf)
