(** Lowering ring collectives to flat tables — the shared front end of
    both executors.

    {!lower} validates a (rings, rank-boundary) configuration once and
    compiles it into flat arrays: per-rank successor ranks, segment
    hop-lengths and their prefix sums ({!Graphlib.Flatarr} storage),
    plus the packed directed-edge keys of every driven ring.  The
    Netsim executor ({!Exec}) uses the tables for its role maps and
    congestion accounting; the compiled executor ({!Fastpath}) runs the
    whole schedule off them without ever materializing the network.

    The closed-form accounting helpers ({!completion_rounds},
    {!max_edge_share}) reproduce the simulator's self-timed pipelining
    figures exactly; the agreement is qcheck-pinned against
    {!Netsim.Simulator} runs in the test suite. *)

(** Constant-time membership for directed-edge fault sets, keyed by the
    packed integer u·dⁿ + v — the same hashed/packed-key trick as
    {!Dhc.Edge_fault.Faults}, but accepting arbitrary node pairs (a
    fault that is not a real De Bruijn edge simply never matches).
    Replaces the O(E·|F|) [List.exists] probe inside
    {!Graphlib.Digraph.remove_edges} predicates. *)
module Fault_probe : sig
  type t

  val make : size:int -> bidirectional:bool -> (int * int) list -> t
  (** [make ~size ~bidirectional faults] — under [bidirectional] each
      fault kills both directions of the link.  Pairs with a node
      outside [0, size) are kept out of the table (they cannot name a
      real edge, so they must never match one). *)

  val mem : t -> int -> int -> bool
  val is_empty : t -> bool
end

val resolve_ranks :
  what:string -> clamp_ranks:bool -> ranks:int -> length:int -> int * bool
(** The rank-count policy shared by both executors: [ranks > length]
    raises [Invalid_argument] unless [clamp_ranks] is set, in which
    case the count is clamped to [length] and the returned flag is
    [true] (the clamp is surfaced to callers through the report's
    [ranks] field).  A resolved count below 2 always raises.  [what]
    prefixes the error messages. *)

type t = {
  p : Debruijn.Word.params;
  nrings : int;  (** driven rings, reversed directions appended *)
  length : int;  (** ring length L *)
  ranks : int;  (** logical ranks R, after any clamp *)
  clamped : bool;
  cycles : int array array;  (** all driven node cycles, row-per-ring *)
  bounds : int array;  (** rank → ring position ({!Schedule.boundaries}) *)
  succ_rank : Graphlib.Flatarr.t;  (** rank → successor rank, (r+1) mod R *)
  seg_len : Graphlib.Flatarr.t;  (** rank r → hops from rank r to rank r+1 *)
  seg_pref : Graphlib.Flatarr.t;
      (** R+1 prefix sums of [seg_len]; [seg_pref.{r}] = hops before
          rank r (= [bounds.(r)]), [seg_pref.{R}] = L *)
  keys : int array;
      (** packed directed-edge keys u·dⁿ + v of every ring edge,
          ring-major — [[||]] when [nrings = 1] (a cycle of distinct
          nodes cannot repeat a directed edge, so the deepest sharing
          is 1 without sorting anything) *)
  probe : Fault_probe.t;  (** the compiled [edge_faults] probe *)
}

val lower :
  what:string ->
  clamp_ranks:bool ->
  edge_faults:(int * int) list ->
  bidirectional:bool ->
  ranks:int ->
  chunk_words:int ->
  p:Debruijn.Word.params ->
  faulty:(int -> bool) ->
  rings:int array list ->
  t
(** Validate and compile.  Checks (same contract, and same
    [Invalid_argument] messages modulo the [what] prefix, as the
    historical {!Exec.run} front end): at least one ring, all of equal
    length ≥ 2, [chunk_words ≥ 1], every ring node in range, non-faulty
    and visited at most once per ring, and {!resolve_ranks}.

    Edges are then screened arithmetically: consecutive ring nodes must
    be De Bruijn-adjacent (suffix(u) = prefix(v), either direction
    under [bidirectional]) and must not hit the [edge_faults] probe.  A
    bad edge raises {!Netsim.Simulator.Illegal_send} carrying the round
    at which the simulator would first attempt that send — the phase-0
    chunk wave reaches offset h of every segment at round h, so the
    earliest offending (round, src) is exact; with several bad edges at
    the same (round, src) the lowest-indexed ring wins. *)

val completion_rounds : t -> phases:int -> int
(** Rounds to quiescence of the self-timed execution, in closed form.

    Rank r's phase-p receive lands at round A_r(p) = Σ_{i=0}^{p}
    len[(r−1−i) mod R]: its predecessor's phase-p send leaves at round
    A_{r−1}(p−1) (phase-0 at round 0) and takes one round per hop of
    the segment.  The run's last activity is the latest final receive,
    and the simulator counts executed rounds, so the total is
    max_r A_r(phases−1) + 1 — evaluated per rank via the [seg_pref]
    prefix sums extended periodically (any R consecutive segments sum
    to L). *)

val max_edge_share : t -> int
(** The deepest ring-sharing of any directed link: the longest run of
    equal packed edge keys (1 for a single ring or any edge-disjoint
    family).  Sorts [keys] in place on first use. *)
