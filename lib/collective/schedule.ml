type op = Reduce_scatter | All_gather | Allreduce

let op_to_string = function
  | Reduce_scatter -> "reduce-scatter"
  | All_gather -> "all-gather"
  | Allreduce -> "allreduce"

let op_of_string = function
  | "reduce-scatter" | "rs" -> Some Reduce_scatter
  | "all-gather" | "ag" -> Some All_gather
  | "allreduce" | "ar" -> Some Allreduce
  | _ -> None

let check_ranks ranks =
  if ranks < 2 then invalid_arg "Schedule: ranks must be >= 2"

let phases op ~ranks =
  check_ranks ranks;
  match op with
  | Reduce_scatter | All_gather -> ranks - 1
  | Allreduce -> 2 * (ranks - 1)

(* (x mod m + m) mod m without the double division: rank − phase can
   only be negative by at most [phases] < 2·ranks, so two conditional
   adds suffice. *)
let modp x m =
  let x = if x < 0 then x + m else x in
  let x = if x < 0 then x + m else x in
  x mod m

let send_chunk ~ranks ~rank ~phase = modp (rank - phase) ranks
let recv_chunk ~ranks ~rank ~phase = modp (rank - phase - 1) ranks

let reduces op ~ranks ~phase =
  match op with
  | Reduce_scatter -> true
  | All_gather -> false
  | Allreduce -> phase < ranks - 1

let owned_chunk ~ranks ~rank = (rank + 1) mod ranks

let boundaries ~ranks ~length =
  check_ranks ranks;
  if ranks > length then invalid_arg "Schedule.boundaries: ranks > ring length";
  Array.init ranks (fun j -> j * length / ranks)

let segment_messages op ~ranks = phases op ~ranks

let payload_words op ~ranks ~chunk_words =
  ignore (phases op ~ranks);
  ranks * chunk_words

(* ------------------------------------------------------------------ *)
(* Rank-space reference executor: phase-synchronous loops over heap
   buffers.  All-gather starts from per-rank ownership (chunk r live at
   rank r, the rest zero); the reducing operations start from the full
   init everywhere. *)

let simulate op ~ranks ~chunk_words ~init =
  let ph = phases op ~ranks in
  if chunk_words < 1 then invalid_arg "Schedule.simulate: chunk_words < 1";
  let buf =
    Array.init ranks (fun r ->
        Array.init (ranks * chunk_words) (fun i ->
            let chunk = i / chunk_words and word = i mod chunk_words in
            match op with
            | All_gather -> if chunk = r then init ~rank:r ~chunk ~word else 0
            | Reduce_scatter | Allreduce -> init ~rank:r ~chunk ~word))
  in
  for phase = 0 to ph - 1 do
    (* Sends are read out of the phase-start buffers before any receive
       lands, exactly like the message-passing execution. *)
    let in_flight =
      Array.init ranks (fun r ->
          let c = send_chunk ~ranks ~rank:r ~phase in
          Array.sub buf.(r) (c * chunk_words) chunk_words)
    in
    for r = 0 to ranks - 1 do
      let from = (r - 1 + ranks) mod ranks in
      let c = recv_chunk ~ranks ~rank:r ~phase in
      let data = in_flight.(from) in
      let red = reduces op ~ranks ~phase in
      for w = 0 to chunk_words - 1 do
        let i = (c * chunk_words) + w in
        buf.(r).(i) <- (if red then buf.(r).(i) + data.(w) else data.(w))
      done
    done
  done;
  buf
