(** Ring-collective schedules in rank space — pure arithmetic, no
    materialized graphs.

    A collective runs over a logical ring of [ranks] participants
    (mapped onto an embedded ring by {!boundaries}; the physical hops
    between consecutive ranks are relayed, see {!Exec}).  The payload is
    divided into [ranks] chunks; in every phase each rank sends exactly
    one chunk to its ring successor and receives one from its
    predecessor — the classic bandwidth-optimal ring schedule both
    SNIPPETS.md exemplars implement.

    All three operations share one index formula.  In phase s
    (0-based), rank r sends chunk (r − s) mod R and receives chunk
    (r − s − 1) mod R:

    - {e reduce-scatter} runs phases 0 … R−2, accumulating every
      receive; afterwards rank r holds the fully reduced chunk
      (r + 1) mod R ({!owned_chunk});
    - {e all-gather} runs the same phases, storing instead of
      accumulating (rank r starts owning chunk r);
    - {e allreduce} is reduce-scatter followed by all-gather,
      phases 0 … 2R−3 — the same send formula extends across the
      boundary because the chunk finished by the last reduce-scatter
      receive is exactly the next one to broadcast.

    Everything here is total arithmetic on (op, ranks, rank, phase), so
    a schedule is never stored: executors ask per step. *)

type op = Reduce_scatter | All_gather | Allreduce

val op_to_string : op -> string
(** ["reduce-scatter"], ["all-gather"], ["allreduce"]. *)

val op_of_string : string -> op option

val phases : op -> ranks:int -> int
(** R − 1 for the one-pass operations, 2(R − 1) for allreduce.
    @raise Invalid_argument unless ranks ≥ 2. *)

val send_chunk : ranks:int -> rank:int -> phase:int -> int
(** The chunk [rank] sends to its successor in [phase]:
    (rank − phase) mod ranks.  Total in phase ≥ 0; callers stop at
    {!phases}. *)

val recv_chunk : ranks:int -> rank:int -> phase:int -> int
(** The chunk [rank] receives in [phase] — [send_chunk] of its ring
    predecessor, i.e. (rank − phase − 1) mod ranks. *)

val reduces : op -> ranks:int -> phase:int -> bool
(** Whether the phase-[phase] receive is accumulated (reduce-scatter
    half) or stored (all-gather half). *)

val owned_chunk : ranks:int -> rank:int -> int
(** The chunk fully reduced at [rank] once reduce-scatter completes:
    (rank + 1) mod ranks. *)

val boundaries : ranks:int -> length:int -> int array
(** Rank-to-ring-position map: rank j sits at ring position
    ⌊j·length/ranks⌋.  Strictly increasing, so ranks are distinct ring
    nodes and every inter-rank segment is non-empty.
    @raise Invalid_argument unless 2 ≤ ranks ≤ length. *)

val segment_messages : op -> ranks:int -> int
(** Messages crossing {e each} ring edge over a full run.  Every phase
    moves one chunk across every inter-rank segment, and each edge
    belongs to exactly one segment, so the per-edge load is uniform and
    equals {!phases} — the figure the congestion accounting multiplies
    by ring-sharing counts. *)

val payload_words : op -> ranks:int -> chunk_words:int -> int
(** Application payload transported end-to-end by one run over one
    ring: ranks·chunk_words (the vector that gets reduced and/or
    gathered).  What bytes/step is measured against. *)

val simulate : op -> ranks:int -> chunk_words:int ->
  init:(rank:int -> chunk:int -> word:int -> int) -> int array array
(** Reference executor in rank space: run the schedule sequentially on
    heap buffers and return the final [ranks] buffers (each
    ranks·chunk_words words, chunk-major).  The oracle the netsim
    execution and the qcheck properties are checked against — a few
    dozen lines of obviously-sequential folds, no simulator. *)
