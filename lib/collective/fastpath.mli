(** Compiled zero-copy executor for ring collectives — the fastpath.

    Same inputs, same {!Exec.report}, same payload arena as {!Exec.run},
    without the network: {!Compile.lower} flattens the (rings,
    rank-boundary) configuration into segment tables once, then the
    schedule runs as an array kernel directly on the payload arena —
    phase p moves chunk (r−p−1) mod R from each rank's predecessor
    slice into its own, reducing in place during the reduce-scatter
    phases.  Relay hops are pure routing (the shared-relay observation:
    a relay never transforms payload), so they are {e accounted}, never
    simulated: rounds, delivered hops, wire words, per-link congestion
    and port load all come from closed-form arithmetic over segment
    lengths and the {!Schedule} phase structure, reproducing
    {!Netsim.Simulator}'s self-timed pipelining figures exactly.

    The equivalence is enforced three ways: the same word-for-word
    verification against {!Schedule.simulate} that Exec performs, a
    qcheck suite pinning report counters and final arenas identical to
    Exec across ops × ranks × chunk_words × bidirectional × fault
    draws, and the bench harness comparing the two engines on every
    matrix point.  What changes is cost: zero allocation per hop, and
    work proportional to ranks·phases·chunk_words instead of
    rings·length·phases messages — B(2,22) (4.2M-node) rings become
    interactive.

    Parallelism: work items are (ring, rank) pairs distributed with
    {!Graphlib.Sched.parallel_for} under the deterministic-commit
    discipline — each phase's items write pairwise disjoint arena
    chunks and read phase-stable sources, so results are bit-identical
    for any [?domains] (same contract as Exec, qcheck-pinned). *)

val run :
  ?domains:int ->
  ?edge_faults:(int * int) list ->
  ?clamp_ranks:bool ->
  ?init:(ring:int -> rank:int -> chunk:int -> word:int -> int) ->
  p:Debruijn.Word.params ->
  faulty:(int -> bool) ->
  rings:int array list ->
  Exec.spec ->
  Exec.report
(** Drop-in replacement for {!Exec.run}: identical validation
    (including [Invalid_argument] messages, modulo the
    ["Collective.Fastpath.run"] prefix), identical
    {!Netsim.Simulator.Illegal_send} on a ring crossing a missing or
    faulted edge — raised at compile time, carrying the round at which
    the simulator would first attempt that send — and an identical
    report for identical inputs. *)

val run_with_payload :
  ?domains:int ->
  ?edge_faults:(int * int) list ->
  ?clamp_ranks:bool ->
  ?init:(ring:int -> rank:int -> chunk:int -> word:int -> int) ->
  p:Debruijn.Word.params ->
  faulty:(int -> bool) ->
  rings:int array list ->
  Exec.spec ->
  Exec.report * int array
(** [run] plus a heap snapshot of the final payload arena — what the
    agreement qcheck compares word-for-word against
    {!Exec.run_with_payload}. *)
