module W = Debruijn.Word
module Fa = Graphlib.Flatarr

module Fault_probe = struct
  (* [table = None] is the common fault-free case: [mem] must cost one
     branch, not a hash probe, because Exec runs it per topology edge. *)
  type t = { size : int; table : (int, unit) Hashtbl.t option }

  let make ~size ~bidirectional faults =
    let in_range v = v >= 0 && v < size in
    let live = List.filter (fun (u, v) -> in_range u && in_range v) faults in
    match live with
    | [] -> { size; table = None }
    | _ ->
        let h = Hashtbl.create ((2 * List.length live) + 1) in
        List.iter
          (fun (u, v) ->
            Hashtbl.replace h ((u * size) + v) ();
            if bidirectional then Hashtbl.replace h ((v * size) + u) ())
          live;
        { size; table = Some h }

  let mem t u v =
    match t.table with
    | None -> false
    | Some h -> Hashtbl.mem h ((u * t.size) + v)

  let is_empty t = match t.table with None -> true | Some _ -> false
end

let resolve_ranks ~what ~clamp_ranks ~ranks ~length =
  let resolved, clamped =
    if ranks > length then
      if clamp_ranks then (length, true)
      else
        invalid_arg
          (what ^ ": spec.ranks " ^ string_of_int ranks ^ " > ring length "
         ^ string_of_int length ^ " (pass ~clamp_ranks:true to clamp)")
    else (ranks, false)
  in
  if resolved < 2 then invalid_arg (what ^ ": ranks < 2");
  (resolved, clamped)

type t = {
  p : W.params;
  nrings : int;
  length : int;
  ranks : int;
  clamped : bool;
  cycles : int array array;
  bounds : int array;
  succ_rank : Fa.t;
  seg_len : Fa.t;
  seg_pref : Fa.t;
  keys : int array;
  probe : Fault_probe.t;
}

let lower ~what ~clamp_ranks ~edge_faults ~bidirectional ~ranks ~chunk_words ~p
    ~faulty ~rings =
  (match rings with [] -> invalid_arg (what ^ ": no rings") | _ -> ());
  if chunk_words < 1 then invalid_arg (what ^ ": chunk_words < 1");
  let forward = Array.of_list rings in
  let length = Array.length forward.(0) in
  Array.iter
    (fun c ->
      if Array.length c <> length then
        invalid_arg (what ^ ": rings of unequal length"))
    forward;
  if length < 2 then invalid_arg (what ^ ": ring shorter than 2");
  let cycles =
    if bidirectional then
      Array.append forward
        (Array.map
           (fun c -> Array.init length (fun i -> c.(length - 1 - i)))
           forward)
    else forward
  in
  let nrings = Array.length cycles in
  let ranks, clamped = resolve_ranks ~what ~clamp_ranks ~ranks ~length in
  let bounds = Schedule.boundaries ~ranks ~length in
  let succ_rank = Fa.create ranks in
  let seg_len = Fa.create ranks in
  let seg_pref = Fa.create (ranks + 1) in
  for r = 0 to ranks - 1 do
    succ_rank.{r} <- (r + 1) mod ranks;
    seg_pref.{r} <- bounds.(r);
    let stop = if r = ranks - 1 then length else bounds.(r + 1) in
    seg_len.{r} <- stop - bounds.(r)
  done;
  seg_pref.{ranks} <- length;
  let probe = Fault_probe.make ~size:p.W.size ~bidirectional edge_faults in
  let keys = if nrings = 1 then [||] else Array.make (nrings * length) 0 in
  let visited = Fa.Byte.make p.W.size 0 in
  let adjacent u v =
    W.suffix p u = W.prefix p v
    || (bidirectional && W.suffix p v = W.prefix p u)
  in
  (* Earliest (round, src, ring) at which the simulator would attempt a
     send across a missing or faulted edge: the phase-0 chunk wave
     advances through every segment in lock-step, reaching segment
     offset h at round h, and an upstream bad edge always has a smaller
     offset than anything it blocks. *)
  let bad_round = ref max_int in
  let bad_src = ref 0 in
  let bad_dst = ref 0 in
  Array.iter
    (fun cycle ->
      Array.iter
        (fun v ->
          if v < 0 || v >= p.W.size then
            invalid_arg (what ^ ": ring node out of range");
          if faulty v then invalid_arg (what ^ ": ring touches a faulty node");
          if Fa.Byte.get visited v <> 0 then
            invalid_arg (what ^ ": ring revisits a node");
          Fa.Byte.set visited v 1)
        cycle;
      Array.iter (fun v -> Fa.Byte.set visited v 0) cycle)
    cycles;
  Array.iteri
    (fun j cycle ->
      let seg = ref 0 in
      for i = 0 to length - 1 do
        while !seg < ranks - 1 && i >= seg_pref.{!seg + 1} do
          incr seg
        done;
        let u = cycle.(i) and v = cycle.((i + 1) mod length) in
        if nrings > 1 then keys.((j * length) + i) <- (u * p.W.size) + v;
        if (not (adjacent u v)) || Fault_probe.mem probe u v then begin
          let h = i - seg_pref.{!seg} in
          if h < !bad_round || (h = !bad_round && u < !bad_src) then begin
            bad_round := h;
            bad_src := u;
            bad_dst := v
          end
        end
      done)
    cycles;
  if !bad_round < max_int then
    raise
      (Netsim.Simulator.Illegal_send
         { round = !bad_round; src = !bad_src; dst = !bad_dst });
  {
    p;
    nrings;
    length;
    ranks;
    clamped;
    cycles;
    bounds;
    succ_rank;
    seg_len;
    seg_pref;
    keys;
    probe;
  }

let completion_rounds t ~phases =
  let ranks = t.ranks in
  (* T(x) = hops from rank 0's boundary to the boundary x segments
     later, extended periodically: any full lap of R segments is L. *)
  let tfun x =
    let q = if x >= 0 then x / ranks else -(((-x) + ranks - 1) / ranks) in
    let m = x - (q * ranks) in
    (q * t.length) + t.seg_pref.{m}
  in
  let worst = ref 0 in
  for r = 0 to ranks - 1 do
    (* A_r(phases-1) = T(r) - T(r - phases): the sum of the [phases]
       segment lengths feeding rank r's receives. *)
    let arrival = tfun r - tfun (r - phases) in
    if arrival > !worst then worst := arrival
  done;
  !worst + 1

let max_edge_share t =
  if t.nrings = 1 then 1
  else begin
    Array.sort Int.compare t.keys;
    let best = ref 1 in
    let run = ref 1 in
    for i = 1 to Array.length t.keys - 1 do
      if t.keys.(i) = t.keys.(i - 1) then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 1
    done;
    !best
  end
