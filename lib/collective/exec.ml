module W = Debruijn.Word
module Fa = Graphlib.Flatarr

type spec = {
  op : Schedule.op;
  ranks : int;
  chunk_words : int;
  bidirectional : bool;
}

type report = {
  rings : int;
  ranks : int;
  phases : int;
  rounds : int;
  delivered : int;
  wire_words : int;
  payload_words : int;
  bytes_per_step : float;
  max_link_load : int;
  max_port_load : int;
  verified : bool;
  checksum : int;
}

(* Per-node, per-ring role.  [base] is the word offset of the rank's
   buffer slice in the run's flat payload arena; [phase] counts the
   receives completed, which is also the index of the next send. *)
type role =
  | Off
  | Relay of { next : int }
  | Rank of { rank : int; next : int; base : int; mutable phase : int }

type nstate = { mutable started : bool; roles : role array }
type msg = { ring : int; chunk : int; data : int array }

let default_init ~ring ~rank ~chunk ~word =
  1 + (((ring * 1009) + (rank * 31) + (chunk * 7) + word) mod 97)

(* The initial buffer contents per operation: the reducing operations
   start from the full vector everywhere; all-gather starts from
   per-rank ownership (chunk r live at rank r, the rest zero) — the
   same convention as [Schedule.simulate]. *)
let initial_word op ~init ~ring ~rank ~chunk ~word =
  match (op : Schedule.op) with
  | All_gather -> if chunk = rank then init ~ring ~rank ~chunk ~word else 0
  | Reduce_scatter | Allreduce -> init ~ring ~rank ~chunk ~word

let run ?(domains = 1) ?(edge_faults = []) ?(init = default_init) ~p ~faulty
    ~rings spec =
  (match rings with [] -> invalid_arg "Collective.Exec.run: no rings" | _ -> ());
  if spec.chunk_words < 1 then invalid_arg "Collective.Exec.run: chunk_words < 1";
  let cycles = Array.of_list rings in
  let length = Array.length cycles.(0) in
  Array.iter
    (fun c ->
      if Array.length c <> length then
        invalid_arg "Collective.Exec.run: rings of unequal length")
    cycles;
  if length < 2 then invalid_arg "Collective.Exec.run: ring shorter than 2";
  (* Reverse directions are extra logical rings over the symmetric
     closure: same nodes, reversed edge set, their own payload stripe. *)
  let cycles =
    if spec.bidirectional then
      Array.append cycles
        (Array.map
           (fun c -> Array.init length (fun i -> c.(length - 1 - i)))
           cycles)
    else cycles
  in
  let nrings = Array.length cycles in
  let ranks = min spec.ranks length in
  if ranks < 2 then invalid_arg "Collective.Exec.run: ranks < 2";
  let cw = spec.chunk_words in
  let ph = Schedule.phases spec.op ~ranks in
  let bounds = Schedule.boundaries ~ranks ~length in
  (* Flat payload arena: rank r of ring j owns the [ranks·cw]-word
     slice at [((j·ranks) + r)·ranks·cw].  A step writes only the
     stepped node's own slice — the ?domains safety contract. *)
  let buf = Fa.make (nrings * ranks * ranks * cw) 0 in
  let base_of ~ring ~rank = ((ring * ranks) + rank) * ranks * cw in
  for j = 0 to nrings - 1 do
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for c = 0 to ranks - 1 do
        for w = 0 to cw - 1 do
          buf.{base + (c * cw) + w} <-
            initial_word spec.op ~init ~ring:j ~rank:r ~chunk:c ~word:w
        done
      done
    done
  done;
  (* Node → role tables, one pair of flat maps per ring. *)
  let rank_of = Array.init nrings (fun _ -> Array.make p.W.size (-1)) in
  let next_of = Array.init nrings (fun _ -> Array.make p.W.size (-1)) in
  Array.iteri
    (fun j cycle ->
      Array.iteri
        (fun i v ->
          if v < 0 || v >= p.W.size then
            invalid_arg "Collective.Exec.run: ring node out of range";
          if faulty v then invalid_arg "Collective.Exec.run: ring touches a faulty node";
          if next_of.(j).(v) >= 0 then
            invalid_arg "Collective.Exec.run: ring revisits a node";
          next_of.(j).(v) <- cycle.((i + 1) mod length))
        cycle;
      Array.iteri (fun r pos -> rank_of.(j).(cycle.(pos)) <- r) bounds)
    cycles;
  (* Topology: the implicit De Bruijn edge set, materialized once for
     the simulator's neighbor check; symmetric closure under
     bidirectional traffic; faulty links removed (so a ring crossing
     one would be caught as an illegal send, not silently excused). *)
  let topology =
    let g = Graphlib.Digraph.of_successors p.W.size (W.successors p) in
    let g = if spec.bidirectional then Graphlib.Digraph.undirected_view g else g in
    match edge_faults with
    | [] -> g
    | _ ->
        Graphlib.Digraph.remove_edges g (fun (u, v) ->
            List.exists
              (fun (fu, fv) ->
                (u = fu && v = fv) || (spec.bidirectional && u = fv && v = fu))
              edge_faults)
  in
  (* One send: copy the chunk out of the rank's slice into a fresh
     array, so later slice writes never mutate in-flight payloads. *)
  let mk_send ~next ~ring ~base ~phase ~rank =
    let chunk = Schedule.send_chunk ~ranks ~rank ~phase in
    let data = Array.init cw (fun w -> buf.{base + (chunk * cw) + w}) in
    (next, { ring; chunk; data })
  in
  let proto =
    {
      Netsim.Simulator.initial =
        (fun v ->
          let roles =
            Array.init nrings (fun j ->
                let r = rank_of.(j).(v) in
                if r >= 0 then
                  Rank
                    {
                      rank = r;
                      next = next_of.(j).(v);
                      base = base_of ~ring:j ~rank:r;
                      phase = 0;
                    }
                else if next_of.(j).(v) >= 0 then Relay { next = next_of.(j).(v) }
                else Off)
          in
          { started = false; roles });
      step =
        (fun ~round:_ _v st inbox ->
          let sends = ref [] in
          if not st.started then begin
            st.started <- true;
            Array.iteri
              (fun j role ->
                match role with
                | Rank rk ->
                    sends :=
                      mk_send ~next:rk.next ~ring:j ~base:rk.base ~phase:0
                        ~rank:rk.rank
                      :: !sends
                | Relay _ | Off -> ())
              st.roles
          end;
          List.iter
            (fun (_src, m) ->
              match st.roles.(m.ring) with
              | Relay { next } -> sends := (next, m) :: !sends
              | Rank rk ->
                  let red = Schedule.reduces spec.op ~ranks ~phase:rk.phase in
                  let off = rk.base + (m.chunk * cw) in
                  for w = 0 to cw - 1 do
                    buf.{off + w} <-
                      (if red then buf.{off + w} + m.data.(w) else m.data.(w))
                  done;
                  rk.phase <- rk.phase + 1;
                  if rk.phase < ph then
                    sends :=
                      mk_send ~next:rk.next ~ring:m.ring ~base:rk.base
                        ~phase:rk.phase ~rank:rk.rank
                      :: !sends
              | Off -> ())
            inbox;
          (st, List.rev !sends));
      wants_step = (fun st -> not st.started);
    }
  in
  let res =
    Netsim.Simulator.run ~domains
      ~payload_words:(fun m -> Array.length m.data)
      ~topology ~faulty proto
  in
  (* Exact verification against the rank-space reference execution —
     the sequential-fold oracle. *)
  let verified = ref true in
  let checksum = ref 0 in
  for j = 0 to nrings - 1 do
    let expect =
      Schedule.simulate spec.op ~ranks ~chunk_words:cw
        ~init:(fun ~rank ~chunk ~word -> init ~ring:j ~rank ~chunk ~word)
    in
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for i = 0 to (ranks * cw) - 1 do
        let got = buf.{base + i} in
        checksum := !checksum + got;
        if got <> expect.(r).(i) then verified := false
      done
    done
  done;
  (* Arithmetic congestion accounting: each ring edge carries exactly
     [segment_messages] messages, so the peak directed-link load is
     that figure times the deepest ring-sharing of any edge.  Sharing
     is counted by sorting the packed edge keys of every ring. *)
  let msgs = Schedule.segment_messages spec.op ~ranks in
  let keys = Array.make (nrings * length) 0 in
  Array.iteri
    (fun j cycle ->
      Array.iteri
        (fun i u ->
          keys.((j * length) + i) <-
            (u * p.W.size) + cycle.((i + 1) mod length))
        cycle)
    cycles;
  Array.sort Int.compare keys;
  let max_share = ref 0 and run_len = ref 0 in
  Array.iteri
    (fun i k ->
      if i > 0 && keys.(i - 1) = k then incr run_len else run_len := 1;
      if !run_len > !max_share then max_share := !run_len)
    keys;
  let payload_words = nrings * Schedule.payload_words spec.op ~ranks ~chunk_words:cw in
  {
    rings = nrings;
    ranks;
    phases = ph;
    rounds = res.Netsim.Simulator.rounds;
    delivered = res.Netsim.Simulator.delivered;
    wire_words = res.Netsim.Simulator.payload_total;
    payload_words;
    bytes_per_step =
      8.0 *. float_of_int payload_words
      /. float_of_int (max 1 res.Netsim.Simulator.rounds);
    max_link_load = !max_share * msgs;
    max_port_load = res.Netsim.Simulator.max_port_load;
    verified = !verified;
    checksum = !checksum;
  }
