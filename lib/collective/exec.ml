module W = Debruijn.Word
module Fa = Graphlib.Flatarr

type spec = {
  op : Schedule.op;
  ranks : int;
  chunk_words : int;
  bidirectional : bool;
}

type report = {
  rings : int;
  ranks : int;
  phases : int;
  rounds : int;
  delivered : int;
  wire_words : int;
  payload_words : int;
  bytes_per_step : float;
  max_link_load : int;
  max_port_load : int;
  verified : bool;
  checksum : int;
}

(* Per-node, per-ring role.  [base] is the word offset of the rank's
   buffer slice in the run's flat payload arena; [phase] counts the
   receives completed, which is also the index of the next send. *)
type role =
  | Off
  | Relay of { next : int }
  | Rank of { rank : int; next : int; base : int; mutable phase : int }

(* [free] recycles the chunk arrays of consumed receives into the
   node's own later sends — each rank allocates at most two [cw]-word
   arrays over the whole run instead of one per phase.  The pool is
   private to the node state, so the simulator's ?domains stepping
   never shares a buffer across domains. *)
type nstate = {
  mutable started : bool;
  roles : role array;
  mutable free : int array list;
}

type msg = { ring : int; chunk : int; data : int array }

let default_init ~ring ~rank ~chunk ~word =
  1 + (((ring * 1009) + (rank * 31) + (chunk * 7) + word) mod 97)

(* The initial buffer contents per operation: the reducing operations
   start from the full vector everywhere; all-gather starts from
   per-rank ownership (chunk r live at rank r, the rest zero) — the
   same convention as [Schedule.simulate]. *)
let initial_word op ~init ~ring ~rank ~chunk ~word =
  match (op : Schedule.op) with
  | All_gather -> if chunk = rank then init ~ring ~rank ~chunk ~word else 0
  | Reduce_scatter | Allreduce -> init ~ring ~rank ~chunk ~word

let run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
    spec =
  let c =
    Compile.lower ~what:"Collective.Exec.run" ~clamp_ranks ~edge_faults
      ~bidirectional:spec.bidirectional ~ranks:spec.ranks
      ~chunk_words:spec.chunk_words ~p ~faulty ~rings
  in
  let cycles = c.Compile.cycles in
  let nrings = c.Compile.nrings in
  let length = c.Compile.length in
  let ranks = c.Compile.ranks in
  let bounds = c.Compile.bounds in
  let cw = spec.chunk_words in
  let ph = Schedule.phases spec.op ~ranks in
  (* Flat payload arena: rank r of ring j owns the [ranks·cw]-word
     slice at [((j·ranks) + r)·ranks·cw].  A step writes only the
     stepped node's own slice — the ?domains safety contract. *)
  let buf = Fa.make (nrings * ranks * ranks * cw) 0 in
  let base_of ~ring ~rank = ((ring * ranks) + rank) * ranks * cw in
  for j = 0 to nrings - 1 do
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for ch = 0 to ranks - 1 do
        for w = 0 to cw - 1 do
          buf.{base + (ch * cw) + w} <-
            initial_word spec.op ~init ~ring:j ~rank:r ~chunk:ch ~word:w
        done
      done
    done
  done;
  (* Node → role tables, one pair of flat maps per ring (membership
     already validated by [Compile.lower]). *)
  let rank_of = Array.init nrings (fun _ -> Array.make p.W.size (-1)) in
  let next_of = Array.init nrings (fun _ -> Array.make p.W.size (-1)) in
  Array.iteri
    (fun j cycle ->
      Array.iteri
        (fun i v -> next_of.(j).(v) <- cycle.((i + 1) mod length))
        cycle;
      Array.iteri (fun r pos -> rank_of.(j).(cycle.(pos)) <- r) bounds)
    cycles;
  (* Topology: the implicit De Bruijn edge set, materialized once for
     the simulator's neighbor check; symmetric closure under
     bidirectional traffic; faulty links removed through the O(1)
     packed-key probe (so a ring crossing one would be caught as an
     illegal send, not silently excused). *)
  let topology =
    let g = Graphlib.Digraph.of_successors p.W.size (W.successors p) in
    let g = if spec.bidirectional then Graphlib.Digraph.undirected_view g else g in
    if Compile.Fault_probe.is_empty c.Compile.probe then g
    else
      Graphlib.Digraph.remove_edges g (fun (u, v) ->
          Compile.Fault_probe.mem c.Compile.probe u v)
  in
  (* One send: copy the chunk out of the rank's slice into a pooled
     array, so later slice writes never mutate in-flight payloads. *)
  let mk_send st ~next ~ring ~base ~phase ~rank =
    let chunk = Schedule.send_chunk ~ranks ~rank ~phase in
    let data =
      match st.free with
      | d :: rest ->
          st.free <- rest;
          d
      | [] ->
          (Array.make cw 0
          [@lint.allow
            "R7 pool miss: at most two cw-word arrays per rank over the whole \
             run, recycled through st.free thereafter"])
    in
    for w = 0 to cw - 1 do
      data.(w) <- buf.{base + (chunk * cw) + w}
    done;
    ((next, { ring; chunk; data })
    [@lint.allow
      "R7 the (dest, message) pair and the message record are the simulator's \
       wire format — one fixed-size box pair per send"])
  [@@lint.hot]
  in
  let proto =
    {
      Netsim.Simulator.initial =
        (fun v ->
          let roles =
            Array.init nrings (fun j ->
                let r = rank_of.(j).(v) in
                if r >= 0 then
                  Rank
                    {
                      rank = r;
                      next = next_of.(j).(v);
                      base = base_of ~ring:j ~rank:r;
                      phase = 0;
                    }
                else if next_of.(j).(v) >= 0 then Relay { next = next_of.(j).(v) }
                else Off)
          in
          { started = false; roles; free = [] });
      step =
        ((fun ~round:_ _v st inbox ->
           let sends =
             (ref []
             [@lint.allow
               "R7 send-list accumulator: one cell per step, demanded by the \
                (state, sends) simulator API"])
           in
           (if not st.started then begin
              st.started <- true;
              Array.iteri
                (fun j role ->
                  match role with
                  | Rank rk ->
                      sends :=
                        mk_send st ~next:rk.next ~ring:j ~base:rk.base ~phase:0
                          ~rank:rk.rank
                        :: !sends
                  | Relay _ | Off -> ())
                st.roles
            end)
           [@lint.allow
             "R7 start-up branch: runs once per node before the steady state, \
              off the hot path"];
           List.iter
             ((fun (_src, m) ->
                match st.roles.(m.ring) with
                | Relay { next } ->
                    sends :=
                      (((next, m) :: !sends)
                      [@lint.allow
                        "R7 relay hop: the forwarded message is reused as-is; \
                         the cons and address pair are the send-list API"])
                | Rank rk ->
                    let red = Schedule.reduces spec.op ~ranks ~phase:rk.phase in
                    let off = rk.base + (m.chunk * cw) in
                    for w = 0 to cw - 1 do
                      buf.{off + w} <-
                        (if red then buf.{off + w} + m.data.(w) else m.data.(w))
                    done;
                    (* The payload has been folded into the arena; the
                       array is ours to recycle (the next send reads the
                       arena, not the consumed message). *)
                    st.free <-
                      ((m.data :: st.free)
                      [@lint.allow
                        "R7 recycling-pool push: one cons per consumed message \
                         saves allocating a cw-word payload array"]);
                    rk.phase <- rk.phase + 1;
                    if rk.phase < ph then
                      sends :=
                        ((mk_send st ~next:rk.next ~ring:m.ring ~base:rk.base
                            ~phase:rk.phase ~rank:rk.rank
                          :: !sends)
                        [@lint.allow
                          "R7 the per-phase send must enter the round's \
                           send list; one cons per phase advance"])
                | Off -> ())
             [@lint.allow
               "R7 inbox traversal closure: one block per step capturing this \
                step's state, amortized over the per-hop word copies"])
             inbox;
           ((st, List.rev !sends)
           [@lint.allow
             "R7 the (state, sends) return pair and send-order reversal are \
              the simulator contract; both are proportional to this step's \
              sends, not the payload"]))
        [@lint.hot]);
      wants_step = (fun st -> not st.started);
    }
  in
  let res =
    Netsim.Simulator.run ~domains
      ~payload_words:(fun m -> Array.length m.data)
      ~topology ~faulty proto
  in
  (* Exact verification against the rank-space reference execution —
     the sequential-fold oracle. *)
  let verified = ref true in
  let checksum = ref 0 in
  for j = 0 to nrings - 1 do
    let expect =
      Schedule.simulate spec.op ~ranks ~chunk_words:cw
        ~init:(fun ~rank ~chunk ~word -> init ~ring:j ~rank ~chunk ~word)
    in
    for r = 0 to ranks - 1 do
      let base = base_of ~ring:j ~rank:r in
      for i = 0 to (ranks * cw) - 1 do
        let got = buf.{base + i} in
        checksum := !checksum + got;
        if got <> expect.(r).(i) then verified := false
      done
    done
  done;
  (* Arithmetic congestion accounting: each ring edge carries exactly
     [segment_messages] messages, so the peak directed-link load is
     that figure times the deepest ring-sharing of any edge
     ([Compile.max_edge_share] over the packed edge keys). *)
  let msgs = Schedule.segment_messages spec.op ~ranks in
  let max_share = Compile.max_edge_share c in
  let payload_words = nrings * Schedule.payload_words spec.op ~ranks ~chunk_words:cw in
  let report =
    {
      rings = nrings;
      ranks;
      phases = ph;
      rounds = res.Netsim.Simulator.rounds;
      delivered = res.Netsim.Simulator.delivered;
      wire_words = res.Netsim.Simulator.payload_total;
      payload_words;
      bytes_per_step =
        8.0 *. float_of_int payload_words
        /. float_of_int (max 1 res.Netsim.Simulator.rounds);
      max_link_load = max_share * msgs;
      max_port_load = res.Netsim.Simulator.max_port_load;
      verified = !verified;
      checksum = !checksum;
    }
  in
  (report, buf)

let run ?(domains = 1) ?(edge_faults = []) ?(clamp_ranks = false)
    ?(init = default_init) ~p ~faulty ~rings spec =
  fst
    (run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
       spec)

let run_with_payload ?(domains = 1) ?(edge_faults = []) ?(clamp_ranks = false)
    ?(init = default_init) ~p ~faulty ~rings spec =
  let report, buf =
    run_internal ~domains ~edge_faults ~clamp_ranks ~init ~p ~faulty ~rings
      spec
  in
  (report, Fa.to_array buf)
