(** Execute ring-collective schedules over {!Netsim.Simulator} on
    embedded rings of B(d,n).

    The caller supplies the rings as node cycles — the FFC-embedded
    ring under node faults (Chapter 2, {!Ffc.Embed}), or up to ψ(d)
    pairwise edge-disjoint Hamiltonian cycles under link faults
    (Chapter 3, {!Dhc.Compose.disjoint_streams_upto}).  Each ring
    carries an independent stripe of the payload, so k edge-disjoint
    rings move k× the application bytes in the same number of
    simulator rounds — the multi-ring striped allreduce.

    Mapping onto the network: {!Schedule.boundaries} places [ranks]
    logical participants at evenly spaced ring positions; the ring
    nodes between two consecutive ranks are {e relays} that forward
    payload hop by hop along ring edges (shared-relay traffic in the
    style of Albader et al.).  Ranks are self-timed: a rank's phase-s
    send is triggered by its phase-(s−1) receive, so the whole run
    pipelines — chunks stream through every segment concurrently and a
    full allreduce costs ≈ 2·L rounds on an L-node ring, independent
    of the rank count.

    Payload words live in one off-heap {!Graphlib.Flatarr} buffer
    carved into per-(ring, rank) slices; a step writes only the
    stepped node's own slice, which is what makes the protocol safe
    under the simulator's [?domains] parallel stepping (bit-identical
    results, same contract as every other protocol in the repo).

    Verification is exact: the final buffer of every rank is compared
    word-for-word against the rank-space reference execution
    ({!Schedule.simulate}), itself a sequential fold of the integer
    payloads — no floating point, no tolerance. *)

type spec = {
  op : Schedule.op;
  ranks : int;
      (** logical participants per ring; more ranks than ring nodes is
          an error unless the run is passed [~clamp_ranks:true] *)
  chunk_words : int;  (** words per message — the per-link per-round capacity *)
  bidirectional : bool;
      (** also drive every ring in the reverse direction with its own
          stripe (full-duplex links: the topology becomes the
          symmetric closure, and the reversed ring uses only reversed
          edges, so the two directions never share a directed link) *)
}

type report = {
  rings : int;  (** logical rings driven; directions count separately *)
  ranks : int;  (** effective ranks per ring (after any requested clamp) *)
  phases : int;  (** schedule phases per ring ({!Schedule.phases}) *)
  rounds : int;  (** simulator rounds to quiescence *)
  delivered : int;  (** message hops (simulator [delivered]) *)
  wire_words : int;
      (** words that crossed links — simulator payload accounting;
          equals [delivered · chunk_words] *)
  payload_words : int;
      (** application payload transported end-to-end:
          rings · ranks · chunk_words *)
  bytes_per_step : float;
      (** effective goodput, 8·[payload_words] / [rounds] — the figure
          the striped variant multiplies by k *)
  max_link_load : int;
      (** peak messages carried by one directed link over the run,
          from the arithmetic congestion accounting: each ring edge
          carries exactly {!Schedule.segment_messages} messages, so
          the peak is that figure times the deepest ring-sharing of
          any link (1 for edge-disjoint rings) *)
  max_port_load : int;  (** peak sends by one node in one round (simulator) *)
  verified : bool;  (** exact match against {!Schedule.simulate} *)
  checksum : int;  (** sum of all final payload words, for bit-identity pins *)
}

val run :
  ?domains:int ->
  ?edge_faults:(int * int) list ->
  ?clamp_ranks:bool ->
  ?init:(ring:int -> rank:int -> chunk:int -> word:int -> int) ->
  p:Debruijn.Word.params ->
  faulty:(int -> bool) ->
  rings:int array list ->
  spec ->
  report
(** Drive one collective over every given ring simultaneously in a
    single simulator run.

    Requirements (checked by {!Compile.lower}): at least one ring; all
    rings the same length L ≥ 2 (they stripe one payload, so they must
    agree on rank geometry); no ring visits a node twice or touches a
    node satisfying [faulty]; consecutive ring nodes must be De
    Bruijn-adjacent (raises {!Netsim.Simulator.Illegal_send} with the
    round the simulator would first attempt the send).  [spec.ranks >
    L] raises [Invalid_argument] unless [clamp_ranks] is set, in which
    case the count is clamped to L (the report's [ranks] field carries
    the effective value); the resolved count must be ≥ 2;
    [chunk_words ≥ 1].

    [edge_faults] removes the given directed De Bruijn edges from the
    topology (both directions under [bidirectional]) through an O(1)
    packed-key probe — a ring crossing a dead link makes the run raise
    {!Netsim.Simulator.Illegal_send}, so a clean return {e proves} the
    rings avoid the fault set.

    [init] gives the integer payload (defaults to {!default_init});
    [domains] is passed to the simulator and is bit-identical by its
    contract. *)

val run_with_payload :
  ?domains:int ->
  ?edge_faults:(int * int) list ->
  ?clamp_ranks:bool ->
  ?init:(ring:int -> rank:int -> chunk:int -> word:int -> int) ->
  p:Debruijn.Word.params ->
  faulty:(int -> bool) ->
  rings:int array list ->
  spec ->
  report * int array
(** [run] plus a heap snapshot of the final payload arena (ring-major,
    then rank-major, then chunk-major slices of [chunk_words] words) —
    the word-for-word comparison target of the Fastpath agreement
    qcheck. *)

val default_init : ring:int -> rank:int -> chunk:int -> word:int -> int
(** The default integer payload: a fixed arithmetic mix of the
    coordinates, [1 + ((ring·1009 + rank·31 + chunk·7 + word) mod 97)].
    Exposed so other executors and tests can reproduce the exact
    default arena. *)

val initial_word :
  Schedule.op ->
  init:(ring:int -> rank:int -> chunk:int -> word:int -> int) ->
  ring:int ->
  rank:int ->
  chunk:int ->
  word:int ->
  int
(** The initial arena contents per operation — the reducing operations
    start from the full vector everywhere; all-gather starts from
    per-rank ownership (chunk r live at rank r, the rest zero), the
    same convention as {!Schedule.simulate}.  Shared with {!Fastpath}
    so both executors fill bit-identical arenas. *)
