(** Typed, recoverable errors for the FFC pipeline's defensive paths.

    Proposition 2.1 guarantees the modified-tree successor map closes
    into a Hamiltonian cycle of B\u{2217}, so the closure checks in
    {!Embed}, {!Distributed} and {!Selftimed} should never fire on a
    well-formed input — but a live service cannot crash the whole
    process on a [failwith] if they ever do (corrupted state handed to
    {!Embed.of_bstar}, a distributed schedule cut short, …).  Those
    paths raise {!Error} instead, and the drivers that run many trials
    ({!Campaign}, {!Live}) catch exactly this exception and record a
    failed trial / fall back to a full recompute. *)

type t = {
  stage : string;  (** pipeline stage, e.g. ["Embed"] or ["Selftimed"] *)
  reason : string;
}

exception Error of t

val raise_error : stage:string -> string -> 'a
(** [raise_error ~stage reason] raises {!Error}.  A printer is
    registered, so an uncaught escape still renders readably. *)

val to_string : t -> string
