(** Randomized node-fault campaigns: the Table 2.1/2.2 experiments at
    arbitrary scale.

    For each fault count f the campaign samples f distinct nodes of
    B(d,n) uniformly, runs the full FFC pipeline (rooted at the
    thesis's R = 0…01 when alive), and records |B*|, the ring length,
    ecc(R), a full arithmetic verification, and the Proposition 2.2/2.3
    length-bound checks — len ≥ dⁿ − nf when f ≤ d−2, and
    len ≥ 2ⁿ − (n+1) for d = 2, f = 1.

    Trials reuse one {!Workspace.t} per domain (workspaces are created
    once per [run]), so a steady-state trial allocates almost nothing
    beyond its result ring; [~reuse:false] runs the identical trials
    through the fresh-allocation path, as the benchmarked baseline.
    Statistics are bit-identical across [?domains] and [?reuse] — only
    the wall/GC figures differ. *)

type point = {
  f : int;  (** number of random node faults injected *)
  trials : int;
  embedded : int;  (** trials with a nonempty B* (an embedding exists) *)
  verified : int;  (** trials whose ring passed [Embed.verify] *)
  errors : int;
      (** trials aborted by a typed {!Pipeline_error.Error} — recorded
          as failed trials, never crashing the sweep (always 0 on the
          well-formed B* the pipeline itself produces) *)
  bound_applicable : int;
      (** [trials] when a Proposition 2.2/2.3 bound covers this (d, f);
          0 otherwise *)
  bound_ok : int;  (** trials whose ring met the applicable bound *)
  mean_bstar_size : float;  (** over all trials; 0 counts for failures *)
  mean_ring_length : float;
  mean_ecc : float;  (** mean ecc(R) within B*, from the spanning BFS *)
  min_ring_length : int;
  wall_s : float;
  minor_words_per_trial : float;
      (** steady-state minor-heap words per trial — the minimum across
          the point's trials, which sheds the runtime's occasional
          GC-internal allocation bursts; the workspace path's headline
          figure *)
  major_words_per_trial : float;
      (** same minimum; includes the trial's result ring *)
}

val length_bound : Debruijn.Word.params -> int -> int option
(** The applicable Proposition 2.2/2.3 lower bound on ring length, or
    [None] when neither proposition covers (d, f). *)

val run :
  ?domains:int ->
  ?trials:int ->
  ?seed:int ->
  ?fs:int list ->
  ?reuse:bool ->
  d:int ->
  n:int ->
  unit ->
  point list
(** One point per fault count in [fs] (default [[1; 5; 10; 30; 50]]
    filtered to ≤ dⁿ — the thesis's Table 2.1/2.2 rows).  [?domains]
    runs trials strided across that many domains, one workspace each;
    per-trial generators come from [Util.Rng.split] on [(seed, f,
    trial)], so every field except [wall_s] and the GC counters is
    independent of [domains] and [reuse].  Defaults: 20 trials, seed
    0x5eed, workspace reuse on. *)

(** {2 Churn campaigns}

    The {!Live} engine under sustained fault/repair churn.  Each trial
    starts from the fault-free B(d,n) and runs [events] steps of a
    birth-death chain that hovers around [target] outstanding faults:
    with f faults outstanding the next event is a fault of a uniform
    healthy node with probability target/(target + f) and the repair of
    a uniform outstanding fault otherwise.  Every event flows through
    {!Live.apply}; the point records how many events the engine patched
    incrementally versus recomputed, the per-event latency spread and
    the steady-state per-event allocation. *)

type churn_point = {
  target_f : int;  (** the chain's equilibrium fault count *)
  ctrials : int;
  events : int;  (** events per trial *)
  cfaults : int;  (** fault events, summed over trials *)
  crepairs : int;  (** repair events, summed over trials *)
  patched : int;  (** events repaired incrementally *)
  recomputed : int;  (** events that fell back to the batch pipeline *)
  cunchanged : int;  (** events absorbed as pure bookkeeping *)
  cerrors : int;  (** trials aborted by {!Pipeline_error.Error} *)
  mean_ring_length : float;  (** final ring length, mean over trials *)
  min_ring_length : int;
  mean_live_faults : float;  (** outstanding faults at trial end *)
  cwall_s : float;
  median_event_s : float;  (** median {!Live.apply} latency *)
  max_event_s : float;
  minor_words_per_event : float;
      (** steady-state minor-heap words per event (minimum across
          trials, as {!point.minor_words_per_trial}) *)
  major_words_per_event : float;
}

(** Every [churn_point] field except [cwall_s], the [*_event_s]
    latencies and the GC figures is a pure function of (seed, target,
    trial count, event count) — bit-identical across [?domains] and
    [?reuse], which the tests pin. *)

val churn :
  ?domains:int ->
  ?trials:int ->
  ?seed:int ->
  ?targets:int list ->
  ?events:int ->
  ?reuse:bool ->
  d:int ->
  n:int ->
  unit ->
  churn_point list
(** One point per equilibrium target (default [[1; 5; 10; 30; 50]]
    filtered to ≤ dⁿ).  [?domains] strides trials across domains with
    one {!Live.t} and one workspace each; [~reuse:false] drops the
    workspaces (the batch fallbacks then allocate their own arenas).
    Defaults: 10 trials, 100 events, seed 0x5eed. *)
