(** Randomized node-fault campaigns: the Table 2.1/2.2 experiments at
    arbitrary scale.

    For each fault count f the campaign samples f distinct nodes of
    B(d,n) uniformly, runs the full FFC pipeline (rooted at the
    thesis's R = 0…01 when alive), and records |B*|, the ring length,
    ecc(R), a full arithmetic verification, and the Proposition 2.2/2.3
    length-bound checks — len ≥ dⁿ − nf when f ≤ d−2, and
    len ≥ 2ⁿ − (n+1) for d = 2, f = 1.

    Trials reuse one {!Workspace.t} per domain (workspaces are created
    once per [run]), so a steady-state trial allocates almost nothing
    beyond its result ring; [~reuse:false] runs the identical trials
    through the fresh-allocation path, as the benchmarked baseline.
    Statistics are bit-identical across [?domains] and [?reuse] — only
    the wall/GC figures differ. *)

type point = {
  f : int;  (** number of random node faults injected *)
  trials : int;
  embedded : int;  (** trials with a nonempty B* (an embedding exists) *)
  verified : int;  (** trials whose ring passed [Embed.verify] *)
  bound_applicable : int;
      (** [trials] when a Proposition 2.2/2.3 bound covers this (d, f);
          0 otherwise *)
  bound_ok : int;  (** trials whose ring met the applicable bound *)
  mean_bstar_size : float;  (** over all trials; 0 counts for failures *)
  mean_ring_length : float;
  mean_ecc : float;  (** mean ecc(R) within B*, from the spanning BFS *)
  min_ring_length : int;
  wall_s : float;
  minor_words_per_trial : float;
      (** steady-state minor-heap words per trial — the minimum across
          the point's trials, which sheds the runtime's occasional
          GC-internal allocation bursts; the workspace path's headline
          figure *)
  major_words_per_trial : float;
      (** same minimum; includes the trial's result ring *)
}

val length_bound : Debruijn.Word.params -> int -> int
(** The applicable Proposition 2.2/2.3 lower bound on ring length, or
    −1 when neither proposition covers (d, f). *)

val run :
  ?domains:int ->
  ?trials:int ->
  ?seed:int ->
  ?fs:int list ->
  ?reuse:bool ->
  d:int ->
  n:int ->
  unit ->
  point list
(** One point per fault count in [fs] (default [[1; 5; 10; 30; 50]]
    filtered to ≤ dⁿ — the thesis's Table 2.1/2.2 rows).  [?domains]
    runs trials strided across that many domains, one workspace each;
    per-trial generators come from [Util.Rng.split] on [(seed, f,
    trial)], so every field except [wall_s] and the GC counters is
    independent of [domains] and [reuse].  Defaults: 20 trials, seed
    0x5eed, workspace reuse on. *)
