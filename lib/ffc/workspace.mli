(** Preallocated off-heap scratch arena for repeated FFC embeddings on
    one (d, n).

    A workspace bundles every scratch structure the four pipeline
    stages need — traversal state ({!Graphlib.Itopo.ws}), the necklace
    index, adjacency/spanning buffers, the succ-override tree and the
    ring-walk scratch — sized once by {!create} and reused across
    trials via the [?ws] argument of [Bstar.compute], [Embed.embed]
    etc.  All of it lives in {e one} {!Graphlib.Flatarr.Arena}: two
    [Bigarray] backing allocations (words + flag bytes) the GC never
    scans, each region carved at a 64-byte-separated offset so no two
    arrays — nor two domains' workspaces — share a cache line.  A
    steady-state trial then allocates almost nothing beyond the
    returned ring (see DESIGN.md §5 and §6b for the
    ownership/reset/layout contract).

    Reuse discipline:
    - each stage resets exactly the scratch it reads before writing,
      so results are {e bit-identical} to the fresh-allocation path
      (qcheck-pinned in [test_ffc.ml]);
    - the structures returned by a [?ws] run ({!Bstar.t},
      {!Adjacency.t}, {!Spanning.tree}, the [successor] array of
      {!Embed.t}) {e alias} workspace arrays: they are only valid until
      the workspace's next use.  The returned [cycle] is the one
      freshly-allocated result and survives;
    - a workspace is single-threaded state — campaigns give each domain
      its own.  The parallel BFS levels of a [?ws] + [?domains] run
      only ever hand {e read-only} views of workspace storage to other
      domains. *)

type t = {
  p : Debruijn.Word.params;
  max_necklaces : int;
      (** necklace count of the fault-free B(d,n) — capacity of the
          necklace-level arrays (any B* has at most this many) *)
  arena : Graphlib.Flatarr.Arena.arena;
      (** the backing storage every array below is carved from —
          exposed for size introspection ([words_used]/[bytes_used]) *)
  (* node-level scratch, dⁿ entries *)
  necklace_faulty : Graphlib.Flatarr.Byte.t;  (** owned by [Bstar.compute] *)
  in_bstar : Graphlib.Flatarr.Byte.t;  (** owned by [Bstar.compute] *)
  idx_of_node : Graphlib.Flatarr.t;  (** owned by [Adjacency.build] *)
  node_parent : Graphlib.Flatarr.t;  (** owned by [Spanning.build] *)
  succ_override : Graphlib.Flatarr.t;  (** owned by [Spanning.modify] *)
  successor : Graphlib.Flatarr.t;  (** owned by [Embed.successor_map] *)
  cycle_buf : Graphlib.Flatarr.t;  (** owned by [Embed.of_bstar]'s ring walk *)
  cycle_seen : Graphlib.Bitset.t;
      (** shared by the ring walk and [Embed.verify] *)
  it : Graphlib.Itopo.ws;
      (** shared by every BFS/component sweep — so [Spanning.tree]'s
          [dist] is clobbered by any later traversal with the same
          workspace *)
  (* necklace-level scratch, [max_necklaces] entries unless noted *)
  reps_buf : Graphlib.Flatarr.t;  (** owned by [Adjacency.build] *)
  parent : Graphlib.Flatarr.t;  (** owned by [Spanning.build] *)
  label : Graphlib.Flatarr.t;  (** owned by [Spanning.build] *)
  chosen : Graphlib.Flatarr.t;  (** owned by [Spanning.build] *)
  nscratch : Graphlib.Flatarr.t;  (** [max_necklaces + 1]; [Spanning.modify] *)
  bucket_next : Graphlib.Flatarr.t;  (** owned by [Spanning.modify] *)
  (* (n−1)-suffix-level scratch, dⁿ⁻¹ entries *)
  bucket_par : Graphlib.Flatarr.t;  (** owned by [Spanning.modify] *)
  bucket_head : Graphlib.Flatarr.t;  (** owned by [Spanning.modify] *)
}

val create : Debruijn.Word.params -> t
(** Allocate the whole arena for (d, n): ~9 words per node plus ~5 per
    necklace, in two backing allocations.  O(dⁿ) time (one
    necklace-counting sweep). *)

val check : t -> Debruijn.Word.params -> unit
(** @raise Invalid_argument when the workspace was built for a
    different (d, n). *)
