module W = Debruijn.Word
module Nk = Debruijn.Necklace
module Fa = Graphlib.Flatarr
module Csr = Graphlib.Csr

type t = {
  bstar : Bstar.t;
  reps : int array;
  idx_of_node : Fa.t;
  graph : Csr.t Lazy.t;
}

(* Module-level recursion: a capturing [let rec] inside the loops below
   would heap-allocate one closure per necklace (the compiler cannot
   statically allocate closures with free variables), which dominated
   the pipeline's minor allocation; static functions cost nothing. *)
let rec assign_necklace (idx_of_node : Fa.t) stride d i x y =
  idx_of_node.{y} <- i;
  let y' = (y mod stride * d) + (y / stride) in
  if y' <> x then assign_necklace idx_of_node stride d i x y'

let rec exit_scan p (idx_of_node : Fa.t) idx w a =
  if a >= p.W.d then -1
  else
    let x = W.cons p a w in
    if idx_of_node.{x} = idx then x else exit_scan p idx_of_node idx w (a + 1)

let rec entry_scan p (idx_of_node : Fa.t) idx w b =
  if b >= p.W.d then -1
  else
    let x = W.snoc p w b in
    if idx_of_node.{x} = idx then x else entry_scan p idx_of_node idx w (b + 1)

let build ?ws (bstar : Bstar.t) =
  let p = bstar.Bstar.p in
  let size = p.W.size in
  let in_bstar = bstar.Bstar.in_bstar in
  (* One ascending pass: the first live node of each necklace is its
     minimal rotation, i.e. the representative, so the index is built
     without computing canonical forms or listing all of B(d,n).  The
     workspace rep buffer is already sized for every necklace of
     B(d,n), so it never grows; [reps] itself stays an exact-size heap
     copy either way — consumers use its length as the necklace
     count. *)
  let idx_of_node, growable =
    match ws with
    | None -> (Fa.make size (-1), true)
    | Some w ->
        Workspace.check w p;
        Fa.fill w.Workspace.idx_of_node (-1);
        (w.Workspace.idx_of_node, false)
  in
  let reps_buf =
    ref (match ws with None -> Fa.create 64 | Some w -> w.Workspace.reps_buf)
  in
  let count = ref 0 in
  let d = p.W.d in
  let stride = size / d in
  for x = 0 to size - 1 do
    if in_bstar.{x} <> 0 && idx_of_node.{x} < 0 then begin
      if growable && !count = Fa.length !reps_buf then begin
        let b = Fa.create (2 * !count) in
        Fa.blit !reps_buf b;
        reps_buf := b
      end;
      !reps_buf.{!count} <- x;
      (* Inlined necklace walk (rotate left until back at x). *)
      assign_necklace idx_of_node stride d !count x x;
      incr count
    end
  done;
  let reps = Fa.sub_to_array !reps_buf 0 !count in
  (* N* itself (unlabeled, on necklace indices) is only needed by
     consumers that genuinely walk it — build it on demand.  Group live
     nodes by their (n−1)-suffix w: the nodes {αw} with a common w
     induce a w-labeled clique (all pairs, both directions) between
     their — necessarily distinct — necklaces. *)
  let graph =
    lazy
      (let bld = Csr.Builder.create (Array.length reps) in
       let wsize = size / p.W.d in
       let members = Array.make p.W.d 0 in
       for w = 0 to wsize - 1 do
         let k = ref 0 in
         for a = 0 to p.W.d - 1 do
           let x = W.cons p a w in
           if in_bstar.{x} <> 0 then begin
             members.(!k) <- idx_of_node.{x};
             incr k
           end
         done;
         for i = 0 to !k - 1 do
           for j = i + 1 to !k - 1 do
             Csr.Builder.add_edge bld members.(i) members.(j);
             Csr.Builder.add_edge bld members.(j) members.(i)
           done
         done
       done;
       Csr.Builder.build bld)
  in
  { bstar; reps; idx_of_node; graph }

let edges t =
  let p = t.bstar.Bstar.p in
  let in_bstar = t.bstar.Bstar.in_bstar in
  let wsize = p.W.size / p.W.d in
  let members = Array.make p.W.d 0 in
  let acc = ref [] in
  for w = wsize - 1 downto 0 do
    let k = ref 0 in
    for a = 0 to p.W.d - 1 do
      let x = W.cons p a w in
      if in_bstar.{x} <> 0 then begin
        members.(!k) <- t.idx_of_node.{x};
        incr k
      end
    done;
    for i = 0 to !k - 1 do
      for j = i + 1 to !k - 1 do
        acc := (members.(i), members.(j), w) :: (members.(j), members.(i), w)
               :: !acc
      done
    done
  done;
  !acc

let index_of_rep t rep =
  let rec go i =
    if i >= Array.length t.reps then raise Not_found
    else if t.reps.(i) = rep then i
    else go (i + 1)
  in
  go 0

let rep_of_index t i = t.reps.(i)

(* Int-returning (−1 = absent) forms of the suffix/prefix lookups: the
   modify hot loop runs them per w-edge, so no options (and, via the
   static scans above, no closures) there. *)
let exit_node t idx w = exit_scan t.bstar.Bstar.p t.idx_of_node idx w 0
let entry_node t idx w = entry_scan t.bstar.Bstar.p t.idx_of_node idx w 0

let node_with_suffix t idx w =
  match exit_node t idx w with x when x < 0 -> None | x -> Some x

let node_with_prefix t idx w =
  match entry_node t idx w with x when x < 0 -> None | x -> Some x

let labels_between t i j =
  (* Arithmetic: a w-edge [X]→[Y] needs the exit node αw on [X] and an
     entry βw (β ≠ α) on [Y]; each necklace holds at most one node per
     suffix w, so walking [X] enumerates every candidate w once. *)
  let p = t.bstar.Bstar.p in
  if i < 0 || i >= Array.length t.reps || j < 0 || j >= Array.length t.reps
  then []
  else begin
    let acc = ref [] in
    Nk.iter_nodes_from p t.reps.(i) (fun x ->
        let w = W.suffix p x in
        let alpha = W.first_digit p x in
        let hit = ref false in
        for b = 0 to p.W.d - 1 do
          if b <> alpha && t.idx_of_node.{W.cons p b w} = j then hit := true
        done;
        if !hit then acc := w :: !acc);
    List.sort Int.compare !acc
  end

let is_connected t =
  Array.length t.reps <= 1
  ||
  let g = Lazy.force t.graph in
  Graphlib.Itopo.is_strongly_connected ~n:(Csr.n_nodes g)
    ~succs:(fun v f -> Csr.iter_succs g v f)
    ~preds:(fun v f -> Csr.iter_preds g v f)
    ()
