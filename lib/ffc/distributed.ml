module W = Debruijn.Word
module Nk = Debruijn.Necklace
module S = Netsim.Simulator

type stats = {
  probe_rounds : int;
  broadcast_rounds : int;
  choose_rounds : int;
  exchange_rounds : int;
  membership_rounds : int;
  total_rounds : int;
  messages : int;
  port_load : int;
  phase_traces : (string * S.round_metrics array) list;
}

type t = {
  bstar : Bstar.t;
  successor : int array;
  cycle : int array;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Phase 1: necklace probe. *)

type probe_msg = { origin : int; hops : int }

let probe_phase ?domains (bstar : Bstar.t) =
  let p = bstar.Bstar.p in
  let faulty v = List.mem v bstar.Bstar.faults in
  let proto : (bool, probe_msg) S.protocol =
    {
      initial = (fun _ -> false);
      step =
        (fun ~round v live inbox ->
          let live = ref live in
          let sends = ref [] in
          if round = 0 then sends := [ (W.rotl p v, { origin = v; hops = 1 }) ];
          List.iter
            (fun (_, m) ->
              if m.origin = v then live := true
              else if m.hops < p.W.n then
                sends := (W.rotl p v, { origin = m.origin; hops = m.hops + 1 }) :: !sends)
            inbox;
          (!live, !sends));
      wants_step = (fun _ -> false);
    }
  in
  S.run ?domains ~topology:(Lazy.force bstar.Bstar.graph) ~faulty proto

let live_necklace_flags bstar =
  let r = probe_phase bstar in
  (r.S.states, r.S.rounds)

(* ------------------------------------------------------------------ *)
(* Phase 2: broadcast from R; fixes BFS distance and T′ parent. *)

type bcast_state = { dist : int; parent : int }

let broadcast_phase ?domains (bstar : Bstar.t) (live : bool array) =
  let p = bstar.Bstar.p in
  let root = bstar.Bstar.root in
  let faulty v = List.mem v bstar.Bstar.faults in
  let proto : (bcast_state, int) S.protocol =
    {
      initial = (fun v -> { dist = (if v = root then 0 else -1); parent = -1 });
      step =
        (fun ~round v st inbox ->
          if not live.(v) then (st, [])
          else if round = 0 && v = root then
            (st, List.map (fun s -> (s, 0)) (W.successors p v))
          else if st.dist >= 0 then (st, [])
          else
            match inbox with
            | [] -> (st, [])
            | (src0, d0) :: _ ->
                (* All simultaneous receipts carry the same distance;
                   the inbox is sorted so the head is the minimal
                   sender — exactly the thesis's tie-break. *)
                let st = { dist = d0 + 1; parent = src0 } in
                (st, List.map (fun s -> (s, st.dist)) (W.successors p v)));
      wants_step = (fun _ -> false);
    }
  in
  S.run ?domains ~topology:(Lazy.force bstar.Bstar.graph) ~faulty proto

(* ------------------------------------------------------------------ *)
(* Phase 3: elect the earliest-reached node Y of each necklace. *)

type candidate = { cdist : int; cnode : int; cparent : int }
type choose_msg = { cand : candidate; chops : int }

let better a b =
  if a.cdist <> b.cdist then a.cdist < b.cdist else a.cnode < b.cnode

let choose_phase ?domains (bstar : Bstar.t) (bc : bcast_state array) =
  let p = bstar.Bstar.p in
  let faulty v = List.mem v bstar.Bstar.faults in
  let participates v = bc.(v).dist >= 0 || v = bstar.Bstar.root in
  let own v = { cdist = bc.(v).dist; cnode = v; cparent = bc.(v).parent } in
  let proto : (candidate option, choose_msg) S.protocol =
    {
      initial = (fun v -> if participates v then Some (own v) else None);
      step =
        (fun ~round v st inbox ->
          match st with
          | None -> (None, [])
          | Some best ->
              let best = ref best in
              let sends = ref [] in
              if round = 0 then
                sends := [ (W.rotl p v, { cand = own v; chops = 1 }) ];
              List.iter
                (fun (_, m) ->
                  if better m.cand !best then best := m.cand;
                  if m.chops < p.W.n then
                    sends := (W.rotl p v, { cand = m.cand; chops = m.chops + 1 }) :: !sends)
                inbox;
              (Some !best, !sends));
      wants_step = (fun _ -> false);
    }
  in
  S.run ?domains ~topology:(Lazy.force bstar.Bstar.graph) ~faulty proto

(* ------------------------------------------------------------------ *)
(* Phases 4+5: exchange T_w announcements, then circulate membership. *)

type entry = { digit : int; rep : int }
type announce = { a_digit : int; child_rep : int; parent_rep : int }

(* fragment: label w → membership entries for a T_w this necklace is in *)
type fragment = (int * entry list) list

(* Declaration-order (digit, rep) lexicographic — the order polymorphic
   [compare] used to give, so merged fragments stay bit-identical. *)
let entry_compare a b =
  match Int.compare a.digit b.digit with 0 -> Int.compare a.rep b.rep | c -> c

let merge_entries es fs =
  List.sort_uniq entry_compare (es @ fs)

let merge_fragment (frag : fragment) w entries : fragment =
  let existing = Option.value ~default:[] (List.assoc_opt w frag) in
  (w, merge_entries existing entries) :: List.remove_assoc w frag

let merge_fragments (a : fragment) (b : fragment) : fragment =
  List.fold_left (fun acc (w, es) -> merge_fragment acc w es) a b

let exchange_phase ?domains (bstar : Bstar.t) (chosen : candidate option array) =
  let p = bstar.Bstar.p in
  let faulty v = List.mem v bstar.Bstar.faults in
  let root_rep = Nk.canonical p bstar.Bstar.root in
  let proto : (fragment, announce) S.protocol =
    {
      initial = (fun _ -> []);
      step =
        (fun ~round v frag inbox ->
          match chosen.(v) with
          | None -> (frag, [])
          | Some best ->
              let my_rep = Nk.canonical p v in
              let y = best.cnode in
              let sends = ref [] in
              let frag = ref frag in
              (if round = 0 then begin
                 (* The exit node αw = π⁻¹(Y) of each non-root necklace
                    announces to all its successors wγ. *)
                 if my_rep <> root_rep && W.rotl p v = y then begin
                   let parent_rep = Nk.canonical p best.cparent in
                   let msg =
                     { a_digit = W.first_digit p v; child_rep = my_rep; parent_rep }
                   in
                   sends := List.map (fun s -> (s, msg)) (W.successors p v)
                 end
               end);
              List.iter
                (fun (_, m) ->
                  let w = W.prefix p v in
                  let as_parent = m.parent_rep = my_rep in
                  let as_child = my_rep <> root_rep && v = y in
                  if as_parent || as_child then begin
                    let entries = [ { digit = m.a_digit; rep = m.child_rep } ] in
                    (* Self entry: in both roles the local digit is the
                       last digit of the receiving node wγ. *)
                    let entries = { digit = W.last_digit p v; rep = my_rep } :: entries in
                    (* A child also records its parent's entry. *)
                    let entries =
                      if as_child then
                        { digit = W.first_digit p best.cparent;
                          rep = Nk.canonical p best.cparent }
                        :: entries
                      else entries
                    in
                    frag := merge_fragment !frag w entries
                  end)
                inbox;
              (!frag, !sends));
      wants_step = (fun _ -> false);
    }
  in
  S.run ?domains ~topology:(Lazy.force bstar.Bstar.graph) ~faulty proto

type member_msg = { mfrag : fragment; mhops : int }

let membership_phase ?domains (bstar : Bstar.t) (chosen : candidate option array)
    (frags : fragment array) =
  let p = bstar.Bstar.p in
  let faulty v = List.mem v bstar.Bstar.faults in
  let proto : (fragment, member_msg) S.protocol =
    {
      initial = (fun v -> frags.(v));
      step =
        (fun ~round v frag inbox ->
          match chosen.(v) with
          | None -> (frag, [])
          | Some _ ->
              let frag = ref frag in
              let sends = ref [] in
              if round = 0 && not (List.is_empty frags.(v)) then
                sends := [ (W.rotl p v, { mfrag = frags.(v); mhops = 1 }) ];
              List.iter
                (fun (_, m) ->
                  frag := merge_fragments !frag m.mfrag;
                  if m.mhops < p.W.n then
                    sends := (W.rotl p v, { mfrag = m.mfrag; mhops = m.mhops + 1 }) :: !sends)
                inbox;
              (!frag, !sends));
      wants_step = (fun _ -> false);
    }
  in
  S.run ?domains ~topology:(Lazy.force bstar.Bstar.graph) ~faulty proto

(* ------------------------------------------------------------------ *)
(* Local successor computation and the driver. *)

let successor_of (p : W.params) v (frag : fragment) =
  let w = W.suffix p v in
  match List.assoc_opt w frag with
  | None -> W.rotl p v
  | Some entries ->
      let my_rep = Nk.canonical p v in
      let sorted = List.sort (fun a b -> Int.compare a.rep b.rep) entries in
      let arr = Array.of_list sorted in
      let k = Array.length arr in
      let rec find i = if arr.(i).rep = my_rep then i else find (i + 1) in
      let i = find 0 in
      let next = arr.((i + 1) mod k) in
      W.snoc p w next.digit

let run ?domains (bstar : Bstar.t) =
  let p = bstar.Bstar.p in
  let r1 = probe_phase ?domains bstar in
  let live = r1.S.states in
  let r2 = broadcast_phase ?domains bstar live in
  let bc = r2.S.states in
  let r3 = choose_phase ?domains bstar bc in
  let chosen = r3.S.states in
  let r4 = exchange_phase ?domains bstar chosen in
  let r5 = membership_phase ?domains bstar chosen r4.S.states in
  let frags = r5.S.states in
  let successor = Array.make p.W.size (-1) in
  for v = 0 to p.W.size - 1 do
    match chosen.(v) with
    | Some _ -> successor.(v) <- successor_of p v frags.(v)
    | None -> ()
  done;
  let cycle =
    match
      (* Ranged walk: a −1 successor (an unreached node) reads as
         non-closure rather than an out-of-bounds index. *)
      Graphlib.Cycle.of_successor_map_n ~n:p.W.size ~start:bstar.Bstar.root (fun v ->
          successor.(v))
    with
    | Some c -> c
    | None ->
        Pipeline_error.raise_error ~stage:"Distributed"
          "successor map did not close into a cycle"
  in
  let rs = [ r1.S.rounds; r2.S.rounds; r3.S.rounds; r4.S.rounds; r5.S.rounds ] in
  let stats =
    {
      probe_rounds = r1.S.rounds;
      broadcast_rounds = r2.S.rounds;
      choose_rounds = r3.S.rounds;
      exchange_rounds = r4.S.rounds;
      membership_rounds = r5.S.rounds;
      total_rounds = List.fold_left ( + ) 0 rs;
      messages =
        r1.S.delivered + r2.S.delivered + r3.S.delivered + r4.S.delivered
        + r5.S.delivered;
      port_load =
        List.fold_left max 0
          [
            r1.S.max_port_load; r2.S.max_port_load; r3.S.max_port_load;
            r4.S.max_port_load; r5.S.max_port_load;
          ];
      phase_traces =
        [
          ("probe", r1.S.trace); ("broadcast", r2.S.trace);
          ("choose", r3.S.trace); ("exchange", r4.S.trace);
          ("membership", r5.S.trace);
        ];
    }
  in
  { bstar; successor; cycle; stats }
