(** Steps 1 and 2 of the FFC algorithm: the spanning tree T of N\u{2217}
    whose w-subtrees T_w all have height one, and the modified tree D in
    which each T_w becomes a directed w-labeled cycle.

    T is derived from the broadcast tree T′ of B\u{2217} rooted at R:
    - T′: BFS with the "first receipt, minimal-predecessor tie-break"
      parent rule (Step 1.1);
    - T: per necklace, pick the earliest-reached node Y (ties toward the
      minimal node), let w = prefix(Y) and the parent necklace be the
      necklace of Y's T′-parent (Step 1.2).

    The height-one property of every T_w follows because sibling nodes
    wα and wβ share their full predecessor set, hence their T′ parent.

    The BFS runs over the arithmetic iterators (no graph is built) and
    accepts [?domains]: large levels expand through the work-stealing
    pool, and the T′ parent scan is chunked across it too (each slot is
    a pure function of the final dist array) — the result is
    bit-identical to the sequential run. *)

type tree = {
  adj : Adjacency.t;
  root_idx : int;  (** the necklace of R *)
  dist : Graphlib.Flatarr.t;
      (** node-level BFS distance from R inside B\u{2217} (−1 outside) *)
  ecc : int;
      (** eccentricity of R in B\u{2217} (max of [dist]) — a free by-product
          of the spanning BFS, so campaigns get ecc(R) without another
          traversal *)
  node_parent : Graphlib.Flatarr.t;
      (** node-level T′ parent (−1 for R / outside) *)
  parent : Graphlib.Flatarr.t;  (** necklace-level parent index (−1 for root) *)
  label : Graphlib.Flatarr.t;  (** w label of the parent edge (−1 for root) *)
  chosen : Graphlib.Flatarr.t;  (** per necklace: the earliest-reached node Y *)
}

val build : ?domains:int -> ?ws:Workspace.t -> Adjacency.t -> tree
(** With [?ws], [dist]/[node_parent]/[parent]/[label]/[chosen] alias
    workspace arrays (valid until its next use; in particular [dist]
    lives in the shared traversal scratch and is clobbered by any later
    BFS on the same workspace). *)

val check_height_one : tree -> bool
(** Every label class T_w has a single common parent — guaranteed by
    Lemma-level reasoning in the thesis; asserted in tests. *)

val tree_edges : tree -> (int * int * int) list
(** (parent idx, child idx, w) for every non-root necklace. *)

type modified = {
  tree : tree;
  succ_override : Graphlib.Flatarr.t;
      (** node-level D-edges: the unique exit node αw of a w-edge maps
          to the entry node wβ of the successor necklace on the
          w-cycle; −1 everywhere else (take the necklace successor).
          Replaces the seed's (idx, w)-keyed Hashtbl — a necklace has
          at most one node per suffix w, so the node {e is} the key. *)
}

val modify : ?ws:Workspace.t -> tree -> modified
(** Step 2: each T_w (parent and children) becomes the directed cycle
    that steps through its members in increasing representative order
    and wraps.  With [?ws], [succ_override] aliases the workspace. *)

val groups : modified -> (int * int list) list
(** Label w → members of T_w sorted by representative, for w ascending.
    Recomputed on demand — [modify] itself only materialises
    [succ_override]. *)

val out_edge : modified -> int -> int -> int option
(** [out_edge m idx w] — the successor necklace of [idx] on the
    w-cycle, if D carries that edge (the seed's [Hashtbl] lookup,
    recovered from [succ_override]). *)

val d_edge_count : modified -> int
(** Number of D-edges (Lemma 2.1 counts these against tree edges). *)

val is_spanning_subgraph : modified -> bool
(** Every D edge exists in N\u{2217} — exposed for tests. *)
