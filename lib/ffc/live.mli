(** Long-lived incremental ring repair: the FFC pipeline as a reactive
    engine.

    {!Embed.embed} answers "given this fault set, what is the ring?" in
    one batch pass — Θ(dⁿ) however small the change.  [Live] instead
    holds the current fault set, B\u{2217}, its BFS layering and the embedded
    ring as {e state}, and absorbs one [Fault]/[Repair] event at a time,
    patching only the region the event disturbs:

    - a fault splices the dead necklace out of the ring, re-layers the
      downstream nodes whose BFS level lost support (two-phase
      delete-and-relayer over the implicit De Bruijn edges), and cuts
      off any part of B\u{2217} the fault disconnected;
    - a repair grafts the revived necklace back, relaxing any shortcuts
      it opens through existing levels;
    - the necklace-level structure (chosen nodes Y, labels, T_w
      buckets, the cyclic D-edge overrides of §2.3) is then rebuilt for
      exactly the necklaces whose nodes — or whose parent pointers —
      moved.

    After every event the engine's state is {e bit-identical} to a full
    {!Embed.embed} recompute on the current fault set: same membership,
    distances, eccentricity, root and successor map (qcheck-pinned over
    random churn sequences in [test_live.ml]).  Events whose local
    analysis cannot guarantee that equivalence — the root's necklace
    dying, a revival that may re-root or merge excluded components, a
    B\u{2217} that stops being the unique largest component — fall back to
    the batch pipeline ({!outcome} reports which path ran).

    On B(2,22) a typical event touches a few dozen nodes: microseconds
    against the ~1.7 s batch recompute (see [bench live]).

    A [Live.t] owns all of its arrays; the optional workspace is used
    only for the embedded batch fallback, so one [Live.t] plus one
    {!Workspace.t} per domain is the intended churn-campaign setup. *)

type event =
  | Fault of int  (** the node becomes faulty *)
  | Repair of int  (** the node is repaired *)

type outcome =
  | Patched  (** incremental repair ran — Θ(affected region) *)
  | Recomputed  (** the batch pipeline ran — Θ(dⁿ) *)
  | Unchanged  (** B\u{2217} unaffected (bookkeeping only) *)

type error =
  | Out_of_range of int
  | Already_faulty of int  (** [Fault] of a node that is already down *)
  | Not_faulty of int  (** [Repair] of a node that was never faulted *)

type stats = {
  events : int;  (** accepted events *)
  fault_events : int;
  repair_events : int;
  rejected : int;  (** events refused with an {!error} *)
  patched : int;
  recomputed : int;
  unchanged : int;
  affected_nodes : int;
      (** cumulative membership/distance changes across patched events *)
  last_affected : int;  (** same, for the most recent patched event *)
}

type t

val create :
  ?root_hint:int ->
  ?domains:int ->
  ?ws:Workspace.t ->
  Debruijn.Word.params ->
  faults:int list ->
  t
(** Build the engine's initial state with one batch embedding of the
    given fault set (duplicates tolerated).  [root_hint], [domains] and
    [ws] are remembered and forwarded to every batch fallback, so the
    state stays comparable to [Embed.embed ?root_hint ?domains ?ws]
    throughout.
    @raise Invalid_argument on an out-of-range fault or a workspace
    built for a different (d, n). *)

val apply : t -> event -> (outcome, error) result
(** Absorb one event.  [Error] rejects the event {e without} touching
    any state: faulting a faulty node, repairing a healthy one and
    out-of-range nodes are reported, never raised.  Never raises on any
    event sequence — internal invariant checks fall back to the batch
    pipeline instead of asserting. *)

(** {2 Observers — all O(1) unless noted} *)

val params : t -> Debruijn.Word.params
val size : t -> int  (** |B\u{2217}| = current ring length *)

val ring_length : t -> int
val root : t -> int  (** −1 when B\u{2217} is empty *)

val ecc : t -> int  (** eccentricity of the root within B\u{2217} *)

val is_empty : t -> bool
val in_bstar : t -> int -> bool
val dist : t -> int -> int  (** BFS distance from the root; −1 outside B\u{2217} *)

val successor : t -> int -> int  (** ring successor; −1 outside B\u{2217} *)

val is_faulty : t -> int -> bool
val fault_count : t -> int
val current_faults : t -> int list  (** ascending; O(dⁿ) *)

val ring : t -> int array option
(** Materialize the ring from the root — a fresh array each call,
    equal to {!Embed.of_bstar}'s [cycle] on the same state; [None] when
    B\u{2217} is empty.  O(ring length).
    @raise Pipeline_error.Error if the successor map does not close —
    unreachable from {!apply}/{!create}, typed for uniformity. *)

val stats : t -> stats
