type t = { stage : string; reason : string }

exception Error of t

let raise_error ~stage reason = raise (Error { stage; reason })

let to_string { stage; reason } = "Ffc." ^ stage ^ ": " ^ reason

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)
