module W = Debruijn.Word
module Bs = Graphlib.Bitset
module Fa = Graphlib.Flatarr
module It = Graphlib.Itopo

type t = {
  p : W.params;
  max_necklaces : int;
  arena : Fa.Arena.arena;
  (* node-level scratch (dⁿ entries) *)
  necklace_faulty : Fa.Byte.t;
  in_bstar : Fa.Byte.t;
  idx_of_node : Fa.t;
  node_parent : Fa.t;
  succ_override : Fa.t;
  successor : Fa.t;
  cycle_buf : Fa.t;
  cycle_seen : Bs.t;
  it : It.ws;
  (* necklace-level scratch (max_necklaces entries unless noted) *)
  reps_buf : Fa.t;
  parent : Fa.t;
  label : Fa.t;
  chosen : Fa.t;
  nscratch : Fa.t;  (* max_necklaces + 1 *)
  bucket_next : Fa.t;
  (* (n−1)-suffix-level scratch (dⁿ⁻¹ entries) *)
  bucket_par : Fa.t;
  bucket_head : Fa.t;
}

(* Necklace count of the fault-free B(d,n) — an upper bound on the live
   necklace count of any B*.  Same ascending first-hit sweep as
   Adjacency.build: the first unseen node of each necklace is its
   minimal rotation. *)
let count_necklaces p =
  let size = p.W.size in
  let seen = Bs.create size in
  let d = p.W.d in
  let stride = size / d in
  let count = ref 0 in
  for x = 0 to size - 1 do
    if not (Bs.mem seen x) then begin
      incr count;
      let rec mark y =
        Bs.add seen y;
        let y' = (y mod stride * d) + (y / stride) in
        if y' <> x then mark y'
      in
      mark x
    end
  done;
  !count

let create p =
  let size = p.W.size in
  let wsize = size / p.W.d in
  let m = count_necklaces p in
  (* All word/byte scratch comes out of one arena: two backing
     allocations total, every region starting at a 64-byte-separated
     offset (Flatarr.Arena), so two campaign domains — each with its own
     workspace — or two arrays of one workspace never share a cache
     line.  The backing sizes are the exact sums of the aligned carve
     sizes below, in order. *)
  let aw = Fa.Arena.aligned_words in
  let words =
    (5 * aw size) + It.ws_arena_words size
    + (5 * aw m) + aw (m + 1) + (2 * aw wsize)
  in
  let bytes = 2 * Fa.Arena.aligned_bytes size in
  let arena = Fa.Arena.create ~words ~bytes in
  let carve n =
    let a = Fa.Arena.carve arena n in
    Fa.fill a (-1);
    a
  in
  {
    p;
    max_necklaces = m;
    arena;
    necklace_faulty = Fa.Arena.carve_byte arena size;
    in_bstar = Fa.Arena.carve_byte arena size;
    idx_of_node = carve size;
    node_parent = carve size;
    succ_override = carve size;
    successor = carve size;
    cycle_buf = carve size;
    cycle_seen = Bs.create size;
    it = It.ws_create ~arena size;
    reps_buf = carve m;
    parent = carve m;
    label = carve m;
    chosen = carve m;
    nscratch = carve (m + 1);
    bucket_next = carve m;
    bucket_par = carve wsize;
    bucket_head = carve wsize;
  }

let check t p =
  if t.p.W.d <> p.W.d || t.p.W.n <> p.W.n then
    invalid_arg "Ffc.Workspace: workspace built for a different (d, n)"
