module W = Debruijn.Word
module Bs = Graphlib.Bitset
module It = Graphlib.Itopo

type t = {
  p : W.params;
  max_necklaces : int;
  (* node-level scratch (dⁿ entries) *)
  necklace_faulty : bool array;
  in_bstar : bool array;
  idx_of_node : int array;
  node_parent : int array;
  succ_override : int array;
  successor : int array;
  cycle_buf : int array;
  cycle_seen : Bs.t;
  it : It.ws;
  (* necklace-level scratch (max_necklaces entries unless noted) *)
  reps_buf : int array;
  parent : int array;
  label : int array;
  chosen : int array;
  nscratch : int array;  (* max_necklaces + 1 *)
  bucket_next : int array;
  (* (n−1)-suffix-level scratch (dⁿ⁻¹ entries) *)
  bucket_par : int array;
  bucket_head : int array;
}

(* Necklace count of the fault-free B(d,n) — an upper bound on the live
   necklace count of any B*.  Same ascending first-hit sweep as
   Adjacency.build: the first unseen node of each necklace is its
   minimal rotation. *)
let count_necklaces p =
  let size = p.W.size in
  let seen = Bs.create size in
  let d = p.W.d in
  let stride = size / d in
  let count = ref 0 in
  for x = 0 to size - 1 do
    if not (Bs.mem seen x) then begin
      incr count;
      let rec mark y =
        Bs.add seen y;
        let y' = (y mod stride * d) + (y / stride) in
        if y' <> x then mark y'
      in
      mark x
    end
  done;
  !count

let create p =
  let size = p.W.size in
  let wsize = size / p.W.d in
  let m = count_necklaces p in
  {
    p;
    max_necklaces = m;
    necklace_faulty = Array.make size false;
    in_bstar = Array.make size false;
    idx_of_node = Array.make size (-1);
    node_parent = Array.make size (-1);
    succ_override = Array.make size (-1);
    successor = Array.make size (-1);
    cycle_buf = Array.make size 0;
    cycle_seen = Bs.create size;
    it = It.ws_create size;
    reps_buf = Array.make m 0;
    parent = Array.make m (-1);
    label = Array.make m (-1);
    chosen = Array.make m (-1);
    nscratch = Array.make (m + 1) 0;
    bucket_next = Array.make m (-1);
    bucket_par = Array.make wsize (-1);
    bucket_head = Array.make wsize (-1);
  }

let check t p =
  if t.p.W.d <> p.W.d || t.p.W.n <> p.W.n then
    invalid_arg "Ffc.Workspace: workspace built for a different (d, n)"
