(** The necklace adjacency graph N\u{2217} (Definition, §2.2).

    Nodes are the necklaces of B\u{2217}.  There is a directed edge labeled
    w ∈ ℤ_d^{n−1} from \[X\] to \[Y\] iff αw ∈ \[X\] and βw ∈ \[Y\] for some
    digits α ≠ β; every edge has an antiparallel twin with the same
    label.  A necklace contains at most one node of the form αw for a
    given w (nodes αw, βw with α ≠ β have different weights yet
    rotations preserve weight), which makes entry/exit points unique.

    The necklace index ([reps]/[idx_of_node]) is built in one ascending
    arithmetic pass; N\u{2217} itself is materialized lazily as a compact
    {!Graphlib.Csr.t} — the spanning/embedding stages never force it,
    they work on B\u{2217} directly. *)

type t = {
  bstar : Bstar.t;
  reps : int array;  (** necklace representatives in B\u{2217}, increasing *)
  idx_of_node : Graphlib.Flatarr.t;
      (** node → necklace index, −1 outside B\u{2217} (off-heap) *)
  graph : Graphlib.Csr.t Lazy.t;
      (** N\u{2217} on necklace indices, unlabeled; built on first force *)
}

val build : ?ws:Workspace.t -> Bstar.t -> t
(** With [?ws] the necklace index is built into workspace arrays
    ([idx_of_node] aliases the workspace; [reps] is still an exact-size
    fresh copy, since its length {e is} the necklace count
    everywhere). *)

val edges : t -> (int * int * int) list
(** The labeled edge list [(src idx, dst idx, label w)], both
    directions of every twin pair — recomputed arithmetically on each
    call (meant for tests/pretty-printing, not the hot path). *)

val index_of_rep : t -> int -> int
(** Necklace index of a representative. @raise Not_found if absent. *)

val rep_of_index : t -> int -> int

val node_with_suffix : t -> int -> int -> int option
(** [node_with_suffix t idx w] is the unique node αw (suffix w) on the
    necklace, if any — the potential exit point for w-edges. *)

val node_with_prefix : t -> int -> int -> int option
(** [node_with_prefix t idx w] is the unique node wβ (prefix w) on the
    necklace, if any — the potential entry point for w-edges. *)

val exit_node : t -> int -> int -> int
(** {!node_with_suffix} without the option: −1 when absent (the
    allocation-free form the modify stage runs per w-edge). *)

val entry_node : t -> int -> int -> int
(** {!node_with_prefix} without the option: −1 when absent. *)

val labels_between : t -> int -> int -> int list
(** All labels w of edges from one necklace index to another, sorted. *)

val is_connected : t -> bool
(** N\u{2217} is connected iff B\u{2217} was a single component — always true by
    construction; exposed for tests (forces [graph]). *)
