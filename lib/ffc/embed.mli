(** Step 3 of the FFC algorithm and the end-to-end driver.

    The successor of a node αw of B\u{2217} (α its first digit, w the
    (n−1)-suffix) is
    - the entry node wβ of \[Y\] when D carries a w-edge \[X\]→\[Y\] out of
      αw's necklace \[X\], and
    - its necklace successor wα otherwise.

    Proposition 2.1: following these successors yields a Hamiltonian
    cycle H of B\u{2217}; Proposition 2.2 bounds its length below by
    dⁿ − nf when f ≤ d−2. *)

type t = {
  bstar : Bstar.t;
  modified : Spanning.modified;
  successor : Graphlib.Flatarr.t;
      (** node → its successor in H, −1 outside B\u{2217} (off-heap) *)
  cycle : int array;  (** H, starting at the root R *)
}

val successor_map :
  ?domains:int -> ?ws:Workspace.t -> Spanning.modified -> Graphlib.Flatarr.t
(** [?domains] chunks the flat pass across the work-stealing pool
    (disjoint slots, bit-identical result). *)

val of_bstar : ?domains:int -> ?ws:Workspace.t -> Bstar.t -> t
(** Run steps 1–3 on an already-computed B\u{2217}.  [?domains]
    parallelizes the BFS levels (bit-identical result).
    @raise Pipeline_error.Error if the successor map does not close
    into a Hamiltonian cycle — impossible (Proposition 2.1) on a B\u{2217}
    produced by {!Bstar.compute}, and a typed, recoverable condition
    rather than a crash if a hand-built B\u{2217} is malformed. *)

val embed :
  ?root_hint:int ->
  ?domains:int ->
  ?ws:Workspace.t ->
  Debruijn.Word.params ->
  faults:int list ->
  t option
(** Full pipeline: compute B\u{2217}, build N\u{2217}, T, D, and H.  [None] when
    no live necklace remains.  Entirely implicit/flat — B(2,22) (4M
    nodes) embeds in seconds without materializing any graph.

    With [?ws] every intermediate lives in the workspace arena and the
    trial allocates almost nothing beyond [cycle] (which is always a
    fresh array); all fields except [cycle] alias workspace storage and
    are invalidated by the workspace's next use.  Contents are
    bit-identical to the fresh path. *)

val verify : ?ws:Workspace.t -> t -> bool
(** H is a Hamiltonian cycle of B\u{2217} avoiding all faulty necklaces
    (checked arithmetically; does not force [bstar.graph]).  [?ws]
    borrows the workspace's ring-walk bitset instead of allocating. *)

val length : t -> int

val length_lower_bound : Debruijn.Word.params -> int -> int
(** dⁿ − n·f — the Proposition 2.2 guarantee for f ≤ d−2 (and the
    benchmark tables' reference column for any f). *)

val worst_case_faults : Debruijn.Word.params -> int -> int list
(** The adversarial fault set {α^{n−1}(d−1) | 0 ≤ α ≤ f−1} from §2.5
    for which no cycle longer than dⁿ − nf exists.

    Only defined for 0 ≤ f ≤ d − 2: Proposition 2.2's guarantee (and
    the §2.5 optimality argument that makes this family "worst case")
    holds only in that regime — at f = d − 1 the pack would kill every
    in-neighbor of node 0ⁿ⁻¹(d−1)'s necklace and the length claim
    breaks down.
    @raise Invalid_argument when f < 0 or f > d − 2. *)
