(** The seed's list-based centralized FFC pipeline, frozen.

    {!Embed} now runs the Chapter-2 construction over implicit
    arithmetic topology with flat state; this module keeps the original
    Digraph/list/Hashtbl implementation reachable as the reference the
    fast path is pinned against — the qcheck agreement suite demands
    identical roots, successor maps and cycles on random (d, n, faults),
    and the bechamel [ffc/*] group uses it as the baseline. *)

type t = {
  p : Debruijn.Word.params;
  root : int;  (** the distinguished node R *)
  size : int;  (** |B\u{2217}| *)
  in_bstar : bool array;  (** node-level membership in B\u{2217} *)
  successor : int array;  (** node → successor in H, −1 outside B\u{2217} *)
  cycle : int array;  (** H, starting at the root *)
}

val embed : ?root_hint:int -> Debruijn.Word.params -> faults:int list -> t option
(** Same contract as [Embed.embed], original implementation. *)
