(* The seed's list-and-Hashtbl centralized pipeline, kept intact as the
   oracle the implicit pipeline (Bstar/Adjacency/Spanning/Embed) is
   pinned against, and as the bechamel baseline.  It materializes
   B(d,n) as a Digraph and mirrors the original stage logic verbatim;
   nothing here should be "optimized" — its value is being the old
   behavior. *)

module W = Debruijn.Word
module Nk = Debruijn.Necklace
module DG = Graphlib.Digraph
module Tr = Graphlib.Traversal

type t = {
  p : W.params;
  root : int;
  size : int;
  in_bstar : bool array;
  successor : int array;
  cycle : int array;
}

let embed ?root_hint p ~faults =
  let graph = Debruijn.Graph.b p in
  let necklace_faulty = Nk.mark_faulty_necklaces p faults in
  let members =
    Tr.largest_weak_component graph (fun v -> not necklace_faulty.(v))
  in
  match members with
  | [] -> None
  | _ ->
      let in_bstar = Array.make p.W.size false in
      List.iter (fun v -> in_bstar.(v) <- true) members;
      let root =
        match root_hint with
        | Some h when h >= 0 && h < p.W.size && in_bstar.(Nk.canonical p h) ->
            Nk.canonical p h
        | _ -> List.fold_left min max_int members
      in
      (* Necklace index. *)
      let reps =
        Array.of_list
          (List.filter (fun r -> in_bstar.(r)) (Nk.all_representatives p))
      in
      let index = Hashtbl.create (2 * Array.length reps) in
      Array.iteri (fun i r -> Hashtbl.add index r i) reps;
      let idx_of_node = Array.make p.W.size (-1) in
      Array.iter
        (fun r ->
          List.iter
            (fun x -> idx_of_node.(x) <- Hashtbl.find index r)
            (Nk.nodes p r))
        reps;
      let node_with_prefix idx w =
        let rec go b =
          if b >= p.W.d then None
          else
            let x = W.snoc p w b in
            if idx_of_node.(x) = idx then Some x else go (b + 1)
        in
        go 0
      in
      (* Steps 1.1/1.2: T′ then T. *)
      let in_b v = in_bstar.(v) in
      let dist = Tr.bfs_dist_restricted graph in_b root in
      let node_parent = Array.make p.W.size (-1) in
      for v = 0 to p.W.size - 1 do
        if in_b v && v <> root && dist.(v) > 0 then begin
          let best = ref max_int in
          List.iter
            (fun u ->
              if in_b u && dist.(u) = dist.(v) - 1 && u < !best then best := u)
            (DG.preds graph v);
          if !best < max_int then node_parent.(v) <- !best
        end
      done;
      let m = Array.length reps in
      let root_idx = idx_of_node.(root) in
      let parent = Array.make m (-1) in
      let label = Array.make m (-1) in
      let chosen = Array.make m (-1) in
      for i = 0 to m - 1 do
        let members = Nk.nodes p reps.(i) in
        let y =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some v
              | Some b ->
                  if dist.(v) < dist.(b) || (dist.(v) = dist.(b) && v < b) then
                    Some v
                  else Some b)
            None (List.sort compare members)
        in
        match y with
        | None -> assert false
        | Some y ->
            chosen.(i) <- y;
            if i <> root_idx then begin
              let par_node = node_parent.(y) in
              assert (par_node >= 0);
              parent.(i) <- idx_of_node.(par_node);
              label.(i) <- W.prefix p y
            end
      done;
      chosen.(root_idx) <- root;
      let tree_edges =
        List.filter_map
          (fun i ->
            if i = root_idx then None else Some (parent.(i), i, label.(i)))
          (List.init m Fun.id)
      in
      (* Step 2: w-cycles in increasing representative order. *)
      let by_label = Hashtbl.create 16 in
      List.iter
        (fun (par, child, w) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_label w) in
          let cur = if List.mem par cur then cur else par :: cur in
          Hashtbl.replace by_label w (child :: cur))
        tree_edges;
      let groups =
        Hashtbl.fold
          (fun w members acc ->
            ( w,
              List.sort (fun a b -> compare reps.(a) reps.(b)) members )
            :: acc)
          by_label []
        |> List.sort compare
      in
      let out_edge = Hashtbl.create 64 in
      List.iter
        (fun (w, members) ->
          let arr = Array.of_list members in
          let k = Array.length arr in
          Array.iteri
            (fun i idx -> Hashtbl.replace out_edge (idx, w) arr.((i + 1) mod k))
            arr)
        groups;
      (* Step 3: the successor rule. *)
      let successor = Array.make p.W.size (-1) in
      for x = 0 to p.W.size - 1 do
        if in_bstar.(x) then begin
          let w = W.suffix p x in
          let idx = idx_of_node.(x) in
          match Hashtbl.find_opt out_edge (idx, w) with
          | Some next_idx -> (
              match node_with_prefix next_idx w with
              | Some target -> successor.(x) <- target
              | None -> assert false)
          | None -> successor.(x) <- W.rotl p x
        end
      done;
      let cycle =
        match
          Graphlib.Cycle.of_successor_map ~start:root (fun v -> successor.(v))
        with
        | Some c -> c
        | None ->
            failwith "Ffc.Reference: successor map did not close into a cycle"
      in
      Some
        { p; root; size = List.length members; in_bstar; successor; cycle }
