(** B\u{2217}: the graph left after removing every faulty necklace.

    Given faults F = {F₁,…,F_f}, the FFC algorithm works in
    B\u{2217} = the largest component of B(d,n) − {N(F₁),…,N(F_f)}.
    Because the removed set is a union of necklaces, every weak
    component is strongly connected (any edge αw→wβ between two live
    necklaces is matched by the edge βw→wα in the other direction), so
    "component" is unambiguous.

    All computations here are {e implicit}: they traverse B(d,n) through
    the arithmetic neighbor iterators ([Debruijn.Word.iter_succs]), so
    nothing graph-shaped is allocated.  The [graph] field materializes
    the full B(d,n) as a [Digraph.t] lazily — only the netsim-backed
    distributed engines (which need a message topology) force it. *)

type t = {
  p : Debruijn.Word.params;
  graph : Graphlib.Digraph.t Lazy.t;
      (** the full B(d,n), materialized on first force *)
  faults : int list;  (** the faulty nodes as given *)
  necklace_faulty : Graphlib.Flatarr.Byte.t;
      (** node-level: nonzero iff the node lies on a faulty necklace *)
  in_bstar : Graphlib.Flatarr.Byte.t;
      (** node-level membership in B\u{2217} (nonzero iff member) — off-heap
          flag bytes, [m.{v} <> 0] to test *)
  size : int;  (** |B\u{2217}| — the fault-free cycle length *)
  root : int;  (** the distinguished node R with N(R) = \[R\] *)
}

val compute :
  ?root_hint:int ->
  ?domains:int ->
  ?ws:Workspace.t ->
  Debruijn.Word.params ->
  faults:int list ->
  t option
(** The largest component after removing faulty necklaces; [None] when
    every node is on a faulty necklace.  The root is the necklace
    representative of [root_hint] when that lies inside the chosen
    component (the thesis's tables use R = 0…01); otherwise the smallest
    necklace representative in the component.  Ties between equal-size
    components break toward the one containing the smallest node.
    [?domains] parallelizes the component BFS (bit-identical result).
    With [?ws] the sweep is allocation-free and the result's
    [necklace_faulty]/[in_bstar] alias workspace arrays (valid until
    the workspace's next use; contents bit-identical to fresh). *)

val component_of : Debruijn.Word.params -> faults:int list -> int -> t option
(** The component containing the given node, with that node's necklace
    representative as root; [None] if the node lies on a faulty
    necklace.  Used for the Table 2.1/2.2 experiments.  Costs
    O(component) beyond the fault marking, so probing a small component
    of a huge B(d,n) is cheap. *)

val component_members :
  Debruijn.Word.params -> faults:int list -> int -> int array
(** The members of that component in BFS discovery order from the node
    (symmetric closure, live nodes only); [[||]] if the node lies on a
    faulty necklace. *)

val nodes : t -> int list
(** Members of B\u{2217}, increasing. *)

val necklace_count : t -> int
(** Number of live necklaces inside B\u{2217}. *)

val eccentricity_of_root : ?domains:int -> ?ws:Workspace.t -> t -> int
(** max distance from the root within B\u{2217} — the broadcast round count
    of Step 1.1.  (With [?ws] this clobbers the workspace's traversal
    state, including any [Spanning.tree.dist] aliasing it.) *)

val diameter : t -> int
(** The thesis's K: the diameter of B\u{2217} (O(|B\u{2217}|·edges); meant for
    experiment sizes). *)

val is_strongly_connected : t -> bool
(** Sanity: B\u{2217} should always be strongly connected. *)
