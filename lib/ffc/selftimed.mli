(** A self-timed, single-program variant of the distributed FFC
    protocol.

    {!Distributed} runs the five phases as separate simulator runs with
    an external orchestrator deciding when each phase has finished.  A
    real synchronous machine has no such orchestrator: under the
    f ≤ d−2 regime of Proposition 2.2 the diameter of B\u{2217} is at most
    2n, so every phase can be given a {e fixed} round budget known to
    all processors in advance, and the whole algorithm becomes one
    program in which nodes switch phases by their local round counter:

    {v
    rounds [0, n]             necklace probe
    rounds [n, 3n+1]          broadcast flood from R
    rounds [3n+2, 4n+2]       choose-Y circulation
    rounds [4n+3, 4n+4]       T_w exchange
    rounds [4n+4, 5n+4]       membership circulation
    v}

    Total: 5n + 4 rounds, independent of the fault pattern — the
    strongest form of the thesis's Θ(n) claim.  The output successor
    map equals {!Embed.successor_map} whenever every live necklace is
    within distance 2n+1 of R (guaranteed for f ≤ d−2; for heavier
    fault patterns use {!Distributed}, which waits as long as needed). *)

type t = {
  bstar : Bstar.t;
  successor : int array;
  cycle : int array;
  total_rounds : int;
      (** executed simulator rounds — always 5n + 5 (the 5n + 4 rounds
          of the schedule plus the round-0 compute step), whatever the
          fault pattern *)
  messages : int;
  trace : Netsim.Simulator.round_metrics array;  (** per-round metrics *)
}

val schedule_length : n:int -> int
(** 5n + 4. *)

val run : ?domains:int -> Bstar.t -> t
(** Execute the self-timed protocol.  [domains] is passed to
    {!Netsim.Simulator.run} for parallel stepping of the big rounds.
    @raise Pipeline_error.Error if the successor map does not close
    into a cycle (possible only beyond the f ≤ d−2 guarantee, when
    2n+1 rounds do not suffice for the broadcast). *)
